// latency_sweep: the §4 sensitivity study as a library client — sweep
// inter-cluster wire latency and bandwidth and show how value prediction
// shields the clustered machine from slow wires (Figures 4a/4b).
//
//	go run ./examples/latency_sweep
package main

import (
	"fmt"
	"log"

	"clustervp"
)

func suiteIPC(cfg clustervp.Config) float64 {
	rs, err := clustervp.RunSuite(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	return clustervp.Aggregate(cfg.Name, rs).IPC()
}

func main() {
	fmt.Println("IPC vs inter-cluster latency (4 clusters, unbounded bandwidth)")
	fmt.Printf("%-10s %12s %12s %10s\n", "latency", "no predict", "VPB+stride", "VP shield")
	base1 := 0.0
	vp1 := 0.0
	for _, lat := range []int{1, 2, 4} {
		noVP := suiteIPC(clustervp.Preset(4).WithComm(lat, 0))
		vp := suiteIPC(clustervp.Preset(4).WithComm(lat, 0).
			WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB))
		if lat == 1 {
			base1, vp1 = noVP, vp
		}
		fmt.Printf("%-10d %12.3f %12.3f %9.1f%%\n", lat, noVP, vp, 100*(vp/noVP-1))
	}
	fmt.Printf("\nIPC lost going 1 -> 4 cycles: no-predict %.1f%%, with VP %.1f%%\n",
		100*(1-suiteIPC(clustervp.Preset(4).WithComm(4, 0))/base1),
		100*(1-suiteIPC(clustervp.Preset(4).WithComm(4, 0).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB))/vp1))

	fmt.Println("\nIPC vs bandwidth (latency 1):")
	fmt.Printf("%-16s %12s\n", "paths/cluster", "VPB+stride")
	for _, b := range []int{1, 2, 4, 0} {
		label := fmt.Sprint(b)
		if b == 0 {
			label = "unbounded"
		}
		fmt.Printf("%-16s %12.3f\n", label,
			suiteIPC(clustervp.Preset(4).WithComm(1, b).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)))
	}
}
