// Asymmetry sweep: build heterogeneous machines three ways — spec
// strings, explicit ClusterSpec values, and the WithAsymmetry builder —
// and read the per-cluster breakdown that shows capacity-weighted
// steering at work.
//
//	go run ./examples/asymmetry_sweep
package main

import (
	"fmt"
	"log"

	"clustervp"
)

func main() {
	kernel := "cjpeg"

	// 1. The compact spec-string grammar: one 4-wide cluster plus two
	// 2-wide ones ("big.LITTLE"). Width, IQ size and the rest of the
	// cluster derive from each segment; see ParseClusterSpecs.
	specs, err := clustervp.ParseClusterSpecs("4w16q:2w8q:2w8q")
	if err != nil {
		log.Fatal(err)
	}
	bigLittle := clustervp.FromSpecs(specs...).
		WithVP(clustervp.VPStride).
		WithSteering(clustervp.SteerVPB)

	// 2. Explicit specs, when the grammar's derived defaults are not
	// what you want: here the narrow cluster also pays an extra bypass
	// cycle and is capped to three register ports.
	wide := clustervp.DefaultSpec(4, 32)
	narrow := clustervp.DefaultSpec(2, 8)
	narrow.BypassLatency = 1
	narrow.RegPorts = 3
	graded := clustervp.FromSpecs(wide, narrow, narrow)

	// 3. The homogeneous reference: the paper's 4-cluster preset, which
	// is just four copies of one spec.
	preset := clustervp.Preset(4).
		WithVP(clustervp.VPStride).
		WithSteering(clustervp.SteerVPB)

	for _, m := range []struct {
		label string
		cfg   clustervp.Config
	}{
		{"big.LITTLE 4+2+2 (VPB+stride)", bigLittle},
		{"wire-graded 4+2b1+2b1", graded},
		{"homogeneous preset (VPB+stride)", preset},
	} {
		r, err := clustervp.Run(m.cfg, kernel, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s  %-14s IPC %.3f  comm/instr %.4f\n",
			m.label, m.cfg.SpecString(), r.IPC(), r.CommPerInstr())
		// The per-cluster breakdown: on a capacity-weighted machine the
		// wide cluster's dispatch share tracks its share of total issue
		// width, not 1/N.
		var shares []string
		for _, s := range r.DispatchShares() {
			shares = append(shares, fmt.Sprintf("%.0f%%", 100*s))
		}
		for c, pc := range r.PerCluster {
			fmt.Printf("    cluster %d %-8s dispatched %6d (%s)  issued %6d  mean IQ occ %.2f\n",
				c, pc.Spec, pc.Dispatched, shares[c], pc.Issued, pc.MeanIQOcc(r.Cycles))
		}
	}
}
