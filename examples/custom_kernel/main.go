// custom_kernel: write a new workload directly against the assembler
// API, run it functionally to validate, then measure it on the clustered
// machine — the workflow for extending the benchmark suite.
//
// The kernel is a pointer-chasing list traversal with a computed
// reduction: a classic case where value prediction of the chased pointer
// can break the serial load chain across clusters.
//
//	go run ./examples/custom_kernel
package main

import (
	"fmt"
	"log"

	"clustervp"
	"clustervp/internal/isa"
	"clustervp/internal/program"
	"clustervp/internal/trace"
)

func buildListWalk(nodes int) *program.Program {
	b := program.NewBuilder("listwalk")

	// Linked list laid out at a FIXED stride (as allocators tend to do):
	// node i at base + 32*i, fields {next, value}. A stride-predictable
	// next pointer is exactly what the paper's predictor exploits.
	base := b.Reserve(nodes * 32)
	_ = base
	// Initialize links functionally via code (keeps the example self-
	// contained): first a build loop, then the traversal.
	const (
		rI   = isa.R20
		rN   = isa.R21
		rCur = isa.R10
		rNxt = isa.R11
		rVal = isa.R1
		rSum = isa.R2
		rT   = isa.R5
	)
	b.Li(rI, 0)
	b.Li(rN, int64(nodes))
	b.Li(rCur, base)
	b.Label("build")
	{
		b.I(isa.ADDI, rNxt, rCur, 32) // next = this + 32
		b.Store(isa.SW, rNxt, rCur, 0)
		b.I(isa.SLLI, rVal, rI, 1)
		b.I(isa.XORI, rVal, rVal, 0x55)
		b.Store(isa.SW, rVal, rCur, 8)
		b.Mov(rCur, rNxt)
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "build")
	}
	// Traverse: sum += f(node.value); cur = node.next — the load of
	// next is on the critical path every iteration.
	b.Li(rI, 0)
	b.Li(rCur, base)
	b.Li(rSum, 0)
	b.Label("walk")
	{
		b.Load(isa.LW, rVal, rCur, 8)
		b.R(isa.MUL, rT, rVal, rVal)
		b.R(isa.ADD, rSum, rSum, rT)
		b.Load(isa.LW, rCur, rCur, 0) // chase the pointer
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "walk")
	}
	b.Store(isa.SW, rSum, isa.R0, 8)
	b.Halt()
	return b.MustBuild()
}

func main() {
	prog := buildListWalk(4000)

	// 1. Functional validation against a Go reference.
	exec := trace.NewExecutor(prog)
	if _, err := exec.Run(0); err != nil {
		log.Fatal(err)
	}
	var want int64
	for i := 0; i < 4000; i++ {
		v := int64(i)<<1 ^ 0x55
		want += v * v
	}
	got := int64(exec.Memory().Load64(8))
	if got != want {
		log.Fatalf("functional mismatch: got %d, want %d", got, want)
	}
	fmt.Printf("functional check OK: sum = %d\n\n", got)

	// 2. Timing: the pointer chase on 1 vs 4 clusters, with and without
	// value prediction.
	for _, c := range []struct {
		name string
		cfg  clustervp.Config
	}{
		{"1 cluster", clustervp.Preset(1)},
		{"4 clusters, no predict", clustervp.Preset(4)},
		{"4 clusters, VPB+stride", clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)},
	} {
		r, err := clustervp.RunProgram(c.cfg, buildListWalk(4000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s IPC=%.3f comm/instr=%.4f predicted=%d wrong=%d\n",
			c.name, r.IPC(), r.CommPerInstr(), r.PredictedOperandsUsed, r.PredictedOperandsWrong)
	}
}
