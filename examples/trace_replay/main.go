// Trace replay walkthrough: record a kernel's dynamic instruction
// stream into a versioned .cvt trace file, replay it through the timing
// simulator, and verify the replay is bit-identical to simulating the
// kernel in-process — the property that makes traces a cacheable,
// shareable experiment artifact (generate once, sweep many
// configurations over the same file, reproduce results anywhere).
//
// Run with: go run ./examples/trace_replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clustervp"
)

func main() {
	dir, err := os.MkdirTemp("", "trace_replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record: functionally execute the kernel once and stream its
	// dynamic instructions — operand values and all — into a .cvt file.
	const kernel = "gsmdec"
	path := filepath.Join(dir, kernel+".cvt")
	n, err := clustervp.WriteKernelTrace(path, kernel, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s: %d instructions in %d bytes (%.2f B/instr)\n\n",
		path, n, st.Size(), float64(st.Size())/float64(n))

	// 2. Sweep: replay the same file under several machine
	// configurations. The trace is read block by block, so this works
	// unchanged for million- or billion-instruction files.
	fmt.Printf("%-28s %8s %10s %8s\n", "configuration", "cycles", "IPC", "comm/i")
	for _, c := range []struct {
		name string
		cfg  clustervp.Config
	}{
		{"1 cluster", clustervp.Preset(1)},
		{"4 clusters", clustervp.Preset(4)},
		{"4 clusters + VP/VPB", clustervp.Preset(4).
			WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)},
	} {
		r, err := clustervp.RunTraceFile(c.cfg, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d %10.4f %8.4f\n", c.name, r.Cycles, r.IPC(), r.CommPerInstr())
	}

	// 3. Verify: the replay must match in-process simulation exactly —
	// same cycles, same counters, bit for bit.
	cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	replayed, err := clustervp.RunTraceFile(cfg, path)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := clustervp.Run(cfg, kernel, 1)
	if err != nil {
		log.Fatal(err)
	}
	if replayed.Cycles != direct.Cycles || replayed.Instructions != direct.Instructions ||
		replayed.BusTransfers != direct.BusTransfers || replayed.Reissues != direct.Reissues {
		log.Fatalf("replay diverged from in-process simulation:\nreplayed %+v\ndirect   %+v", replayed, direct)
	}
	fmt.Printf("\nreplay == in-process: %d cycles, %d instructions, %d transfers, %d reissues\n",
		replayed.Cycles, replayed.Instructions, replayed.BusTransfers, replayed.Reissues)

	// 4. Grids: MaterializeTraces does the recording automatically for a
	// whole experiment grid — each distinct workload is encoded once and
	// every configuration replays the shared file.
	jobs := []clustervp.Job{
		{Config: clustervp.Preset(1), Kernel: kernel, Scale: 1},
		{Config: clustervp.Preset(2), Kernel: kernel, Scale: 1},
		{Config: clustervp.Preset(4), Kernel: kernel, Scale: 1},
	}
	jobs, err = clustervp.MaterializeTraces(filepath.Join(dir, "grid"), jobs)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := clustervp.RunGrid(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngrid over one shared trace (%s):\n", jobs[0].Trace)
	for _, r := range rs {
		fmt.Printf("  %-10s IPC=%.4f\n", r.Job.Config.Name, r.Res.IPC())
	}
}
