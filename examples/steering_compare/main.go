// steering_compare: evaluate the three steering schemes of §3 (Baseline,
// Modified, VPB) across the whole MediaBench-like suite on the 4-cluster
// machine and show the communication/balance trade-off each makes.
//
//	go run ./examples/steering_compare
package main

import (
	"fmt"
	"log"

	"clustervp"
)

func main() {
	schemes := []struct {
		name string
		cfg  clustervp.Config
	}{
		{"baseline, no prediction", clustervp.Preset(4)},
		{"baseline + stride VP", clustervp.Preset(4).WithVP(clustervp.VPStride)},
		{"modified (M1+M2) + VP", clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerModified)},
		{"VPB + stride VP", clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)},
		{"VPB + perfect VP", clustervp.Preset(4).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB)},
	}

	fmt.Printf("%-26s %8s %12s %11s %10s\n", "steering", "IPC", "comm/instr", "imbalance", "reissues")
	for _, s := range schemes {
		rs, err := clustervp.RunSuite(s.cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		agg := clustervp.Aggregate(s.name, rs)
		fmt.Printf("%-26s %8.3f %12.4f %11.3f %10d\n",
			s.name, agg.IPC(), agg.CommPerInstr(), agg.Imbalance(), agg.Reissues)
	}

	fmt.Println("\nper-benchmark IPC, baseline vs VPB:")
	base, err := clustervp.RunSuite(clustervp.Preset(4), 1)
	if err != nil {
		log.Fatal(err)
	}
	vpb, err := clustervp.RunSuite(clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), 1)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range clustervp.Kernels() {
		delta := 100 * (vpb[i].IPC() - base[i].IPC()) / base[i].IPC()
		fmt.Printf("  %-12s %6.3f -> %6.3f  (%+5.1f%%)\n", name, base[i].IPC(), vpb[i].IPC(), delta)
	}
}
