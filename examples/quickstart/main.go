// Quickstart: simulate one benchmark on the paper's 4-cluster machine,
// with and without value prediction, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustervp"
)

func main() {
	kernel := "gsmdec" // GSM speech decoder: a serial IIR filter

	// The paper's Table 1 4-cluster machine, baseline steering, no VP.
	base, err := clustervp.Run(clustervp.Preset(4), kernel, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The same machine with the stride value predictor and the VPB
	// steering scheme (§3.3).
	vpb := clustervp.Preset(4).
		WithVP(clustervp.VPStride).
		WithSteering(clustervp.SteerVPB)
	pred, err := clustervp.Run(vpb, kernel, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A centralized reference for the IPCR ratio (§2.4).
	central, err := clustervp.Run(clustervp.Preset(1), kernel, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%d instructions)\n\n", kernel, base.Instructions)
	fmt.Printf("%-28s %10s %12s %8s\n", "configuration", "IPC", "comm/instr", "IPCR")
	fmt.Printf("%-28s %10.3f %12s %8s\n", "1 cluster", central.IPC(), "-", "1.000")
	fmt.Printf("%-28s %10.3f %12.4f %8.3f\n", "4 clusters, no prediction",
		base.IPC(), base.CommPerInstr(), clustervp.IPCR(base, central))
	fmt.Printf("%-28s %10.3f %12.4f %8.3f\n", "4 clusters, VPB + stride VP",
		pred.IPC(), pred.CommPerInstr(), clustervp.IPCR(pred, central))
	fmt.Printf("\nvalue predictor: %.1f%% of operands confident, hit ratio %.3f\n",
		100*pred.VP.ConfidentFraction(), pred.VP.HitRatio())
	fmt.Printf("communication reduced %.0f%% by predicting values across clusters\n",
		100*(1-pred.CommPerInstr()/base.CommPerInstr()))
}
