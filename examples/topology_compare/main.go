// topology_compare: the interconnect as an experiment axis — run one
// communication-bound kernel on the 4-cluster machine over all four
// network topologies (the paper's bus, plus ring / crossbar / mesh) at
// bounded bandwidth, and show how value prediction shields each fabric
// from its own contention and hop latency.
//
//	go run ./examples/topology_compare
package main

import (
	"fmt"
	"log"

	"clustervp"
)

func main() {
	kernel := "cjpeg" // integer DCT: communication-bound, fully VP-coverable

	fmt.Printf("%s on the 4-cluster machine, 1 path per port/link:\n\n", kernel)
	fmt.Printf("%-10s %8s %8s %12s %10s %10s\n",
		"topology", "IPC", "IPC+vp", "comm/instr", "stalls", "mean-hops")

	for _, topo := range []clustervp.TopologyKind{
		clustervp.TopoBus, clustervp.TopoRing, clustervp.TopoCrossbar, clustervp.TopoMesh,
	} {
		// Bandwidth bounded to one transfer per port/link per cycle, so
		// the fabrics actually differ; unbounded bandwidth would collapse
		// ring/crossbar/mesh contention to pure hop latency.
		base := clustervp.Preset(4).WithComm(1, 1).WithTopology(topo)
		plain, err := clustervp.Run(base, kernel, 1)
		if err != nil {
			log.Fatal(err)
		}
		vp, err := clustervp.Run(
			base.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), kernel, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.3f %8.3f %12.4f %10d %10.2f\n",
			topo, plain.IPC(), vp.IPC(), vp.CommPerInstr(), vp.BusStalls, vp.MeanHops())
	}

	fmt.Println("\nThe ring pays the most hops, the crossbar adds source-port")
	fmt.Println("arbitration, and the mesh sits between; value prediction cuts")
	fmt.Println("communication roughly in half on every fabric.")
}
