module clustervp

go 1.24
