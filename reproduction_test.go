// Package-level integration tests asserting the paper's headline
// claims hold on this reproduction. These are the acceptance tests of
// the whole repository: if one fails, some subsystem still runs but the
// paper's conclusion no longer emerges from the model.
package clustervp_test

import (
	"testing"

	"clustervp"
)

// commBound is the communication-bound integer half of the suite, where
// the paper's mechanism has full coverage (no FP operands on the
// critical paths). EXPERIMENTS.md reports suite-wide numbers alongside.
var commBound = []string{"cjpeg", "djpeg", "epicdec", "epicenc", "mpeg2enc", "pgpdec"}

func suiteOn(t *testing.T, cfg clustervp.Config, kernels []string) clustervp.Results {
	t.Helper()
	var rs []clustervp.Results
	for _, k := range kernels {
		r, err := clustervp.Run(cfg, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	return clustervp.Aggregate(cfg.Name, rs)
}

// TestHeadlineClaim asserts the paper's abstract: value prediction
// reduces the penalties caused by inter-cluster communication (the
// paper: by 18% on a 4-cluster machine; we require >= 10%), cutting the
// communication rate roughly in half, while the centralized machine
// benefits far less than the clustered one.
func TestHeadlineClaim(t *testing.T) {
	c1 := suiteOn(t, clustervp.Preset(1), commBound)
	c1v := suiteOn(t, clustervp.Preset(1).WithVP(clustervp.VPStride), commBound)
	c4 := suiteOn(t, clustervp.Preset(4), commBound)
	c4v := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), commBound)

	// Communication roughly halves (paper: 0.22 -> 0.11).
	commCut := 1 - c4v.CommPerInstr()/c4.CommPerInstr()
	if commCut < 0.40 {
		t.Errorf("communication cut = %.0f%%, want >= 40%% (paper: 50%%)", 100*commCut)
	}

	// The wire-delay penalty (1 - IPCR) shrinks by a substantial factor
	// (paper: 18%).
	penaltyBase := 1 - clustervp.IPCR(c4, c1)
	penaltyVPB := 1 - clustervp.IPCR(c4v, c1v)
	cut := 1 - penaltyVPB/penaltyBase
	if penaltyBase < 0.15 {
		t.Errorf("baseline wire-delay penalty = %.3f; clustering not costly enough to study", penaltyBase)
	}
	if cut < 0.10 {
		t.Errorf("penalty cut = %.1f%%, want >= 10%% (paper: 18%%)", 100*cut)
	}

	// The clustered machine gains more than the centralized one
	// (paper: +21% vs +2%).
	gain4 := c4v.IPC()/c4.IPC() - 1
	gain1 := c1v.IPC()/c1.IPC() - 1
	if gain4 <= gain1 {
		t.Errorf("4-cluster gain %.1f%% must exceed centralized gain %.1f%%", 100*gain4, 100*gain1)
	}
	t.Logf("penalty %.3f -> %.3f (cut %.1f%%), comm -%.0f%%, IPC gain 4c %.1f%% vs 1c %.1f%%",
		penaltyBase, penaltyVPB, 100*cut, 100*commCut, 100*gain4, 100*gain1)
}

// TestVPBBeatsBaselineSteering asserts §3.3: with the same predictor,
// VPB steering outperforms the prediction-blind baseline on both
// communication and IPC (4 clusters, full suite).
func TestVPBBeatsBaselineSteering(t *testing.T) {
	all := clustervp.Kernels()
	basePred := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPStride), all)
	vpb := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), all)
	if vpb.CommPerInstr() >= basePred.CommPerInstr() {
		t.Errorf("VPB comm %.4f must be below baseline+VP %.4f", vpb.CommPerInstr(), basePred.CommPerInstr())
	}
	if vpb.IPC() <= basePred.IPC() {
		t.Errorf("VPB IPC %.3f must beat baseline+VP %.3f", vpb.IPC(), basePred.IPC())
	}
}

// TestPerfectPredictionResidualIsFP asserts the paper's §3.3 note:
// with a perfect predictor communications are not zero, and the residue
// comes from FP values the predictor does not cover.
func TestPerfectPredictionResidualIsFP(t *testing.T) {
	intOnly := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB),
		[]string{"cjpeg", "gsmenc", "pgpdec"})
	fpHeavy := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB),
		[]string{"rasta", "mesaosdemo", "mesatexgen"})
	if intOnly.CommPerInstr() > 0.02 {
		t.Errorf("perfect prediction on integer kernels should leave ~0 comm, got %.4f", intOnly.CommPerInstr())
	}
	if fpHeavy.CommPerInstr() < intOnly.CommPerInstr() {
		t.Error("FP kernels must carry the residual communication")
	}
}

// TestFigure5ConfidentFraction asserts the predictor accounting matches
// Figure 5(b): roughly 42% of values not confident (paper) — we accept
// 30-55% — and a high hit ratio among confident predictions.
func TestFigure5ConfidentFraction(t *testing.T) {
	agg := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB),
		clustervp.Kernels())
	nc := 1 - agg.VP.ConfidentFraction()
	if nc < 0.30 || nc > 0.55 {
		t.Errorf("not-confident fraction = %.1f%%, paper reports 42%%", 100*nc)
	}
	if hr := agg.VP.HitRatio(); hr < 0.90 {
		t.Errorf("hit ratio = %.3f, paper reports >= 0.909", hr)
	}
}

// TestBandwidthConclusion asserts §4.2's cost-effectiveness conclusion:
// a single path per cluster performs within a few percent of unbounded
// bandwidth.
func TestBandwidthConclusion(t *testing.T) {
	unb := suiteOn(t, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), commBound)
	b1 := suiteOn(t, clustervp.Preset(4).WithComm(1, 1).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB), commBound)
	loss := 1 - b1.IPC()/unb.IPC()
	if loss > 0.05 {
		t.Errorf("single-path loss = %.1f%%, paper reports ~1%%", 100*loss)
	}
}

// TestLatencyConclusion asserts §4.1: quadrupling wire latency costs
// significant IPC, and more without prediction than with it.
func TestLatencyConclusion(t *testing.T) {
	ipc := func(lat int, vp bool) float64 {
		cfg := clustervp.Preset(4).WithComm(lat, 0)
		if vp {
			cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
		}
		return suiteOn(t, cfg, commBound).IPC()
	}
	lossNoVP := 1 - ipc(4, false)/ipc(1, false)
	lossVP := 1 - ipc(4, true)/ipc(1, true)
	if lossNoVP < 0.10 {
		t.Errorf("latency-4 loss without VP = %.1f%%, expected substantial (paper: 20%%)", 100*lossNoVP)
	}
	if lossVP >= lossNoVP {
		t.Errorf("VP must flatten the latency curve: %.1f%% with VP vs %.1f%% without", 100*lossVP, 100*lossNoVP)
	}
}
