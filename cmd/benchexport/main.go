// Command benchexport turns `go test -bench` output into the committed
// BENCH_*.json format and gates CI on performance regressions against a
// checked-in baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=100x -count=3 ./... | \
//	    benchexport -out BENCH_pr3.json -baseline BENCH_baseline.json -tolerance 0.2
//
// Repeated -count runs are merged (best ns/op, worst allocs/op). With
// -baseline, any benchmark whose ns/op regresses by more than
// -tolerance exits 1 and lists the offenders; -calibrate divides both
// sides by a named probe benchmark first, cancelling absolute machine
// speed so the gate compares shapes, not hardware.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clustervp/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchexport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "write merged results as JSON to this file")
	baseline := fs.String("baseline", "", "compare against this BENCH_*.json and fail on regression")
	tolerance := fs.Float64("tolerance", 0.2, "allowed ns/op regression fraction (0.2 = 20%)")
	calibrate := fs.String("calibrate", "", "benchmark name used to normalize machine speed before comparing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	recs, err := runner.ParseBench(src)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "error: no benchmark results found in input")
		return 1
	}
	fmt.Fprintf(stdout, "parsed %d benchmarks\n", len(recs))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		werr := runner.WriteBenchJSON(f, recs)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "error:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if *baseline != "" {
		base, err := runner.ReadBenchJSONFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if regs := runner.CompareBench(base, recs, *tolerance, *calibrate); len(regs) > 0 {
			fmt.Fprintf(stderr, "performance regressions against %s:\n", *baseline)
			for _, r := range regs {
				fmt.Fprintln(stderr, "  "+r)
			}
			return 1
		}
		fmt.Fprintf(stdout, "no ns/op regression beyond %.0f%% against %s\n", *tolerance*100, *baseline)
	}
	return 0
}
