package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustervp/internal/runner"
	"clustervp/internal/service"
)

// cli runs the command in-process and captures its streams and exit
// code, so the exit-status contract is tested without spawning builds.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSimulationErrorExitsNonZero is the regression test for the exit
// code fix: a valid workload whose simulation fails mid-run (here: an
// exhausted cycle budget) must exit 1 with the error on stderr, not 0.
func TestSimulationErrorExitsNonZero(t *testing.T) {
	code, _, stderr := cli(t, "-kernel", "cjpeg", "-maxcycles", "10")
	if code != 1 {
		t.Fatalf("mid-run simulation error exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "error:") || !strings.Contains(stderr, "exceeded") {
		t.Errorf("stderr does not describe the failure: %q", stderr)
	}
}

// TestCorruptTraceExitsNonZero drives the same contract through the
// trace-replay path: a truncated .cvt file fails mid-run with exit 1.
func TestCorruptTraceExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := runner.TracePath(dir, "rawcaudio", 1, 0)
	if _, err := runner.MaterializeTraces(dir, []runner.Job{{Kernel: "rawcaudio", Scale: 1}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.cvt")
	if err := os.WriteFile(trunc, data[:len(data)*2/3], 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := cli(t, "-trace-in", trunc, "-clusters", "2")
	if code != 1 {
		t.Fatalf("corrupt trace replay exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "trace") {
		t.Errorf("stderr does not mention the trace failure: %q", stderr)
	}
}

// TestBadEnumsExitTwo pins the command-line error code.
func TestBadEnumsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-vp", "psychic"},
		{"-steer", "sideways"},
		{"-topology", "donut"},
		{"-clusters", "3"},
		{"-clusters", "4w16q:"},
		{"-trace-in", "a.cvt", "-trace-out", "b.cvt"},
	} {
		if code, _, _ := cli(t, args...); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}
}

// TestEnumErrorListsAllEnumChoices is the shared enum-help contract: a
// bad or empty value on any one enum flag prints the valid choices for
// every enum flag, exactly once.
func TestEnumErrorListsAllEnumChoices(t *testing.T) {
	cases := [][]string{
		{"-vp", "psychic"},
		{"-vp", ""}, // bare/empty value
		{"-steer", "sideways"},
		{"-steer", ""},
		{"-topology", "donut"},
		{"-clusters", "zebra"},
		{"-vp"}, // flag with no argument at all
	}
	for _, args := range cases {
		code, _, stderr := cli(t, args...)
		if code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
			continue
		}
		for _, want := range []string{
			"-clusters", "4w16q:2w8q:2w8q",
			"-vp", "stride", "twodelta",
			"-steer", "baseline", "vpb", "depfifo",
			"-topology", "bus", "crossbar", "mesh",
		} {
			if !strings.Contains(stderr, want) {
				t.Errorf("%v: stderr missing %q:\n%s", args, want, stderr)
			}
		}
		if n := strings.Count(stderr, "valid enum flag values"); n != 1 {
			t.Errorf("%v: enum help printed %d times, want exactly once:\n%s", args, n, stderr)
		}
	}
}

// TestNonEnumErrorsSkipEnumHelp: errors belonging to numeric flags must
// not print the enum-choices table or blame -clusters.
func TestNonEnumErrorsSkipEnumHelp(t *testing.T) {
	for _, args := range [][]string{
		{"-vptable", "foo"}, // flag-package parse error on a non-enum flag whose name prefixes -vp
		{"-commlat", "0"},   // caught by whole-config validation
		{"-rename", "0"},
	} {
		code, _, stderr := cli(t, args...)
		if code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
		if strings.Contains(stderr, "valid enum flag values") {
			t.Errorf("%v: non-enum error printed the enum help:\n%s", args, stderr)
		}
		if strings.Contains(stderr, "invalid -clusters") {
			t.Errorf("%v: error misattributed to -clusters:\n%s", args, stderr)
		}
	}
}

// TestOversizedSpecRejected: spec strings cannot build machines past
// the 32-cluster mask limit or smuggle in overflowing repeat counts.
func TestOversizedSpecRejected(t *testing.T) {
	for _, spec := range []string{"2w16qx34", "2w8qx4294967295", "2w8qx99999999999999999999"} {
		code, _, stderr := cli(t, "-kernel", "cjpeg", "-clusters", spec)
		if code != 2 {
			t.Errorf("-clusters %s exited %d, want 2 (stderr: %s)", spec, code, stderr)
		}
	}
}

// TestClustersValueIsTrimmed: whitespace-padded preset counts and spec
// strings keep working (the preset check and MachineSpec.Build must
// both see the trimmed value).
func TestClustersValueIsTrimmed(t *testing.T) {
	for _, v := range []string{" 4", "4 ", " 2w16qx2 "} {
		code, _, stderr := cli(t, "-kernel", "rawcaudio", "-clusters", v)
		if code != 0 {
			t.Errorf("-clusters %q exited %d: %s", v, code, stderr)
		}
	}
}

// TestAsymmetricSpecRuns drives a heterogeneous -clusters machine end
// to end and checks the per-cluster breakdown reaches the JSON record.
func TestAsymmetricSpecRuns(t *testing.T) {
	code, stdout, stderr := cli(t,
		"-kernel", "rawcaudio", "-clusters", "4w16q:2w8q:2w8q", "-vp", "stride", "-steer", "vpb", "-json")
	if code != 0 {
		t.Fatalf("asymmetric run exited %d: %s", code, stderr)
	}
	var rec runner.Record
	if err := json.Unmarshal([]byte(stdout), &rec); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if rec.Clusters != 3 || rec.ClusterSpecs != "4w16q:2w8qx2" {
		t.Errorf("record clusters = %d %q, want 3 clusters of 4w16q:2w8qx2", rec.Clusters, rec.ClusterSpecs)
	}
	if len(rec.PerCluster) != 3 {
		t.Fatalf("per-cluster breakdown has %d entries, want 3", len(rec.PerCluster))
	}
	var total uint64
	for _, c := range rec.PerCluster {
		total += c.Dispatched
	}
	if total != rec.Instructions {
		t.Errorf("per-cluster dispatched sums to %d, want %d committed instructions", total, rec.Instructions)
	}
}

// startClusterd boots an in-process clusterd over httptest and returns
// its base URL.
func startClusterd(t *testing.T, opts service.Options) string {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRemoteMatchesLocalJSON is the -remote contract: submitting the
// identical run to a clusterd instance prints byte-identical JSON to
// local simulation — same stats.Results, same flattened Record.
func TestRemoteMatchesLocalJSON(t *testing.T) {
	base := startClusterd(t, service.Options{})
	for _, args := range [][]string{
		{"-kernel", "rawcaudio", "-clusters", "2", "-json"},
		{"-kernel", "gsmdec", "-clusters", "4", "-vp", "stride", "-steer", "vpb", "-json"},
		{"-kernel", "rawcaudio", "-clusters", "4w16q:2w8qx2", "-vp", "twodelta", "-topology", "ring", "-paths", "1", "-json"},
	} {
		code, local, stderr := cli(t, args...)
		if code != 0 {
			t.Fatalf("local %v exited %d: %s", args, code, stderr)
		}
		code, remote, stderr := cli(t, append(args, "-remote", base)...)
		if code != 0 {
			t.Fatalf("remote %v exited %d: %s", args, code, stderr)
		}
		if local != remote {
			t.Errorf("%v: remote JSON differs from local:\nlocal  %s\nremote %s", args, local, remote)
		}
	}
}

// TestRemoteMatchesLocalText covers the human-readable output path.
func TestRemoteMatchesLocalText(t *testing.T) {
	base := startClusterd(t, service.Options{})
	args := []string{"-kernel", "rawcaudio", "-clusters", "2", "-vp", "stride"}
	code, local, stderr := cli(t, args...)
	if code != 0 {
		t.Fatalf("local exited %d: %s", code, stderr)
	}
	code, remote, stderr := cli(t, append(args, "-remote", base)...)
	if code != 0 {
		t.Fatalf("remote exited %d: %s", code, stderr)
	}
	if local != remote {
		t.Errorf("remote text output differs from local:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
}

// TestRemoteTraceReplayMatchesLocal uploads the -trace-in file to the
// server and replays it by digest; the JSON must match local replay.
func TestRemoteTraceReplayMatchesLocal(t *testing.T) {
	base := startClusterd(t, service.Options{TraceDir: t.TempDir()})
	dir := t.TempDir()
	if _, err := runner.MaterializeTraces(dir, []runner.Job{{Kernel: "rawcaudio", Scale: 1}}); err != nil {
		t.Fatal(err)
	}
	path := runner.TracePath(dir, "rawcaudio", 1, 0)
	args := []string{"-trace-in", path, "-clusters", "2", "-json"}
	code, local, stderr := cli(t, args...)
	if code != 0 {
		t.Fatalf("local replay exited %d: %s", code, stderr)
	}
	code, remote, stderr := cli(t, append(args, "-remote", base)...)
	if code != 0 {
		t.Fatalf("remote replay exited %d: %s", code, stderr)
	}
	if local != remote {
		t.Errorf("remote trace replay differs from local:\nlocal  %s\nremote %s", local, remote)
	}
}

// TestRemoteFailuresExitOne: a failing remote job and an unreachable
// server both follow the simulation-error contract (stderr + exit 1).
func TestRemoteFailuresExitOne(t *testing.T) {
	base := startClusterd(t, service.Options{})
	code, _, stderr := cli(t, "-kernel", "cjpeg", "-maxcycles", "10", "-remote", base)
	if code != 1 || !strings.Contains(stderr, "exceeded") {
		t.Errorf("remote budget failure: code=%d stderr=%q, want 1 with the server error", code, stderr)
	}
	code, _, stderr = cli(t, "-kernel", "cjpeg", "-remote", "http://127.0.0.1:1")
	if code != 1 || !strings.Contains(stderr, "error:") {
		t.Errorf("unreachable server: code=%d stderr=%q, want 1", code, stderr)
	}
}

// TestRemoteTraceOutSavesTimeline: with -remote, -trace-out downloads
// the job's server-side span timeline as Chrome trace-event JSON. The
// file must parse and contain at least one complete ("ph":"X") event —
// the shape chrome://tracing and Perfetto load.
func TestRemoteTraceOutSavesTimeline(t *testing.T) {
	base := startClusterd(t, service.Options{})
	out := filepath.Join(t.TempDir(), "prof.json")
	code, _, stderr := cli(t, "-kernel", "rawcaudio", "-clusters", "2", "-remote", base, "-trace-out", out)
	if code != 0 {
		t.Fatalf("remote run exited %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("timeline file: %v", err)
	}
	var tl struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tl); err != nil {
		t.Fatalf("timeline is not Chrome trace JSON: %v", err)
	}
	complete := 0
	names := make(map[string]bool)
	for _, ev := range tl.TraceEvents {
		if ev.Ph == "X" {
			complete++
			names[ev.Name] = true
		}
	}
	if complete == 0 {
		t.Fatalf("timeline has no complete events: %s", raw)
	}
	for _, want := range []string{"queue.wait", "sim.run"} {
		if !names[want] {
			t.Errorf("timeline is missing a %q span; got %v", want, names)
		}
	}
}

// TestTraceOutThenInIdenticalCounters records a trace while simulating,
// replays it, and requires every exported counter to match — the CLI
// half of the bit-for-bit replay guarantee.
func TestTraceOutThenInIdenticalCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("two real simulations in -short mode")
	}
	dir := t.TempDir()
	cvt := filepath.Join(dir, "gsmdec.cvt")
	common := []string{"-clusters", "4", "-vp", "stride", "-steer", "vpb", "-json"}

	code, rec, stderr := cli(t, append([]string{"-kernel", "gsmdec", "-trace-out", cvt}, common...)...)
	if code != 0 {
		t.Fatalf("record run exited %d: %s", code, stderr)
	}
	code, rep, stderr := cli(t, append([]string{"-trace-in", cvt}, common...)...)
	if code != 0 {
		t.Fatalf("replay run exited %d: %s", code, stderr)
	}

	var a, b runner.Record
	if err := json.Unmarshal([]byte(rec), &a); err != nil {
		t.Fatalf("record output is not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(rep), &b); err != nil {
		t.Fatalf("replay output is not JSON: %v", err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.BusTransfers != b.BusTransfers || a.Reissues != b.Reissues || a.IPC != b.IPC {
		t.Errorf("replay diverged from recording:\nrecorded %+v\nreplayed %+v", a, b)
	}
	if a.Kernel != "gsmdec" || b.Kernel != "gsmdec" {
		t.Errorf("benchmark labels: recorded %q, replayed %q (want gsmdec)", a.Kernel, b.Kernel)
	}
}

// TestAPIKeyRequiresRemote: -api-key without -remote is a command-line
// error (exit 2), like the other flag-combination checks.
func TestAPIKeyRequiresRemote(t *testing.T) {
	code, _, stderr := cli(t, "-kernel", "rawcaudio", "-api-key", "some-key-0001")
	if code != 2 || !strings.Contains(stderr, "-api-key") {
		t.Errorf("-api-key without -remote: code=%d stderr=%q, want 2 naming the flag", code, stderr)
	}
}

// TestRemoteWithAPIKey drives -remote against a multi-tenant clusterd:
// keyless submission fails with the server's unauthorized error (exit
// 1), the flag authenticates, and CLUSTERSIM_API_KEY is the fallback.
func TestRemoteWithAPIKey(t *testing.T) {
	base := startClusterd(t, service.Options{
		Tenants: []service.Tenant{{Name: "alice", Key: "alice-key-0001"}},
	})
	args := []string{"-kernel", "rawcaudio", "-clusters", "2", "-remote", base}

	code, _, stderr := cli(t, args...)
	if code != 1 || !strings.Contains(stderr, "unauthorized") {
		t.Errorf("keyless remote run: code=%d stderr=%q, want 1 with unauthorized", code, stderr)
	}
	if code, _, stderr := cli(t, append(args, "-api-key", "alice-key-0001")...); code != 0 {
		t.Errorf("-api-key run exited %d: %s", code, stderr)
	}
	t.Setenv("CLUSTERSIM_API_KEY", "alice-key-0001")
	if code, _, stderr := cli(t, args...); code != 0 {
		t.Errorf("CLUSTERSIM_API_KEY run exited %d: %s", code, stderr)
	}
}
