package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustervp/internal/runner"
)

// cli runs the command in-process and captures its streams and exit
// code, so the exit-status contract is tested without spawning builds.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSimulationErrorExitsNonZero is the regression test for the exit
// code fix: a valid workload whose simulation fails mid-run (here: an
// exhausted cycle budget) must exit 1 with the error on stderr, not 0.
func TestSimulationErrorExitsNonZero(t *testing.T) {
	code, _, stderr := cli(t, "-kernel", "cjpeg", "-maxcycles", "10")
	if code != 1 {
		t.Fatalf("mid-run simulation error exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "error:") || !strings.Contains(stderr, "exceeded") {
		t.Errorf("stderr does not describe the failure: %q", stderr)
	}
}

// TestCorruptTraceExitsNonZero drives the same contract through the
// trace-replay path: a truncated .cvt file fails mid-run with exit 1.
func TestCorruptTraceExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := runner.TracePath(dir, "rawcaudio", 1, 0)
	if _, err := runner.MaterializeTraces(dir, []runner.Job{{Kernel: "rawcaudio", Scale: 1}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.cvt")
	if err := os.WriteFile(trunc, data[:len(data)*2/3], 0o666); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := cli(t, "-trace-in", trunc, "-clusters", "2")
	if code != 1 {
		t.Fatalf("corrupt trace replay exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "trace") {
		t.Errorf("stderr does not mention the trace failure: %q", stderr)
	}
}

// TestBadEnumsExitTwo pins the command-line error code.
func TestBadEnumsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-vp", "psychic"},
		{"-steer", "sideways"},
		{"-topology", "donut"},
		{"-clusters", "3"},
		{"-trace-in", "a.cvt", "-trace-out", "b.cvt"},
	} {
		if code, _, _ := cli(t, args...); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}
}

// TestTraceOutThenInIdenticalCounters records a trace while simulating,
// replays it, and requires every exported counter to match — the CLI
// half of the bit-for-bit replay guarantee.
func TestTraceOutThenInIdenticalCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("two real simulations in -short mode")
	}
	dir := t.TempDir()
	cvt := filepath.Join(dir, "gsmdec.cvt")
	common := []string{"-clusters", "4", "-vp", "stride", "-steer", "vpb", "-json"}

	code, rec, stderr := cli(t, append([]string{"-kernel", "gsmdec", "-trace-out", cvt}, common...)...)
	if code != 0 {
		t.Fatalf("record run exited %d: %s", code, stderr)
	}
	code, rep, stderr := cli(t, append([]string{"-trace-in", cvt}, common...)...)
	if code != 0 {
		t.Fatalf("replay run exited %d: %s", code, stderr)
	}

	var a, b runner.Record
	if err := json.Unmarshal([]byte(rec), &a); err != nil {
		t.Fatalf("record output is not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(rep), &b); err != nil {
		t.Fatalf("replay output is not JSON: %v", err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.BusTransfers != b.BusTransfers || a.Reissues != b.Reissues || a.IPC != b.IPC {
		t.Errorf("replay diverged from recording:\nrecorded %+v\nreplayed %+v", a, b)
	}
	if a.Kernel != "gsmdec" || b.Kernel != "gsmdec" {
		t.Errorf("benchmark labels: recorded %q, replayed %q (want gsmdec)", a.Kernel, b.Kernel)
	}
}
