// Command clustersim runs one benchmark under one machine configuration
// and prints the full statistics record.
//
// Usage:
//
//	clustersim -kernel gsmdec -clusters 4 -vp stride -steer vpb \
//	           -topology bus -commlat 1 -paths 0 -vptable 131072 -scale 1
//
// Examples:
//
//	clustersim -kernel cjpeg -clusters 1                      # centralized
//	clustersim -kernel cjpeg -clusters 4 -vp stride -steer vpb
//	clustersim -kernel mpeg2enc -clusters 4 -commlat 4        # slow wires
//	clustersim -kernel cjpeg -clusters 4 -topology mesh -paths 1
//
// Unknown enum values (-vp, -steer, -topology) and unsupported -clusters
// counts exit with status 2 and a message listing the valid choices.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"clustervp"
)

// fail prints the message and the flag usage, then exits with status 2
// (the flag package's own exit code for bad command lines).
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	kernel := flag.String("kernel", "gsmdec", "benchmark kernel (see -list)")
	list := flag.Bool("list", false, "list available kernels and exit")
	clusters := flag.Int("clusters", 4, "number of clusters (1, 2 or 4)")
	vp := flag.String("vp", "none", "value predictor: "+strings.Join(clustervp.VPs(), ", "))
	steerKind := flag.String("steer", "baseline", "steering: "+strings.Join(clustervp.Steerings(), ", "))
	topology := flag.String("topology", "bus", "interconnect topology: "+strings.Join(clustervp.Topologies(), ", "))
	commlat := flag.Int("commlat", 1, "inter-cluster communication latency per hop (cycles)")
	paths := flag.Int("paths", 0, "inter-cluster paths per cluster/link (0 = unbounded)")
	vptable := flag.Int("vptable", 128*1024, "value prediction table entries")
	rename := flag.Int("rename", 1, "rename/steer stage depth in cycles")
	scale := flag.Int("scale", 1, "workload scale factor")
	asJSON := flag.Bool("json", false, "emit the result as a single JSON object instead of text")
	flag.Parse()

	if *list {
		for _, k := range clustervp.KernelInfos() {
			fmt.Printf("%-12s %-12s %s\n", k.Name, k.Category, k.Description)
		}
		return
	}

	if *clusters != 1 && *clusters != 2 && *clusters != 4 {
		fail("unsupported -clusters %d (valid: 1, 2, 4)", *clusters)
	}
	vpKind, err := clustervp.ParseVP(strings.ToLower(*vp))
	if err != nil {
		fail("invalid -vp: %v", err)
	}
	steering, err := clustervp.ParseSteering(strings.ToLower(*steerKind))
	if err != nil {
		fail("invalid -steer: %v", err)
	}
	topo, err := clustervp.ParseTopology(strings.ToLower(*topology))
	if err != nil {
		fail("invalid -topology: %v", err)
	}

	cfg := clustervp.Preset(*clusters).
		WithComm(*commlat, *paths).
		WithVPTable(*vptable).
		WithVP(vpKind).
		WithSteering(steering).
		WithTopology(topo)
	cfg.RenameCycles = *rename

	r, err := clustervp.Run(cfg, *kernel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *asJSON {
		job := clustervp.Job{Config: cfg, Kernel: *kernel, Scale: *scale}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(clustervp.ToRecord(clustervp.JobResult{Job: job, Res: r})); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark            %s\n", r.Benchmark)
	fmt.Printf("configuration        %s (vp=%s steer=%s topology=%s commlat=%d paths=%d)\n",
		cfg.Name, vpKind, steering, topo, *commlat, *paths)
	fmt.Printf("cycles               %d\n", r.Cycles)
	fmt.Printf("instructions         %d\n", r.Instructions)
	fmt.Printf("IPC                  %.4f\n", r.IPC())
	fmt.Printf("copies               %d\n", r.Copies)
	fmt.Printf("verification-copies  %d\n", r.VerifyCopies)
	fmt.Printf("transfers            %d (%.4f per instruction, %.2f mean hops)\n",
		r.BusTransfers, r.CommPerInstr(), r.MeanHops())
	fmt.Printf("transfer stalls      %d\n", r.BusStalls)
	fmt.Printf("workload imbalance   %.4f (NREADY per cycle)\n", r.Imbalance())
	fmt.Printf("reissues             %d\n", r.Reissues)
	fmt.Printf("predicted operands   %d used, %d wrong\n", r.PredictedOperandsUsed, r.PredictedOperandsWrong)
	fmt.Printf("VP lookups           %d (%.1f%% confident, hit ratio %.3f)\n",
		r.VP.Lookups, 100*r.VP.ConfidentFraction(), r.VP.HitRatio())
	fmt.Printf("branch accuracy      %.4f (%d seen)\n", r.BranchAccuracy(), r.BranchSeen)
	fmt.Printf("cache misses         L1I=%d L1D=%d L2=%d\n", r.L1IMisses, r.L1DMisses, r.L2Misses)
	fmt.Printf("dispatch stalls      rob=%d iq=%d regs=%d\n",
		r.DispatchStallROB, r.DispatchStallIQ, r.DispatchStallRegs)
}
