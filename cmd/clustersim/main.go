// Command clustersim runs one benchmark under one machine configuration
// and prints the full statistics record.
//
// Usage:
//
//	clustersim -kernel gsmdec -clusters 4 -vp stride -steer vpb \
//	           -commlat 1 -paths 0 -vptable 131072 -scale 1
//
// Examples:
//
//	clustersim -kernel cjpeg -clusters 1                      # centralized
//	clustersim -kernel cjpeg -clusters 4 -vp stride -steer vpb
//	clustersim -kernel mpeg2enc -clusters 4 -commlat 4        # slow wires
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"clustervp"
)

func main() {
	kernel := flag.String("kernel", "gsmdec", "benchmark kernel (see -list)")
	list := flag.Bool("list", false, "list available kernels and exit")
	clusters := flag.Int("clusters", 4, "number of clusters (1, 2 or 4)")
	vp := flag.String("vp", "none", "value predictor: none, stride, twodelta, perfect")
	steerKind := flag.String("steer", "baseline", "steering: baseline, modified, vpb")
	commlat := flag.Int("commlat", 1, "inter-cluster communication latency (cycles)")
	paths := flag.Int("paths", 0, "inter-cluster paths per cluster (0 = unbounded)")
	vptable := flag.Int("vptable", 128*1024, "value prediction table entries")
	rename := flag.Int("rename", 1, "rename/steer stage depth in cycles")
	scale := flag.Int("scale", 1, "workload scale factor")
	asJSON := flag.Bool("json", false, "emit the result as a single JSON object instead of text")
	flag.Parse()

	if *list {
		for _, k := range clustervp.KernelInfos() {
			fmt.Printf("%-12s %-12s %s\n", k.Name, k.Category, k.Description)
		}
		return
	}

	cfg := clustervp.Preset(*clusters).WithComm(*commlat, *paths).WithVPTable(*vptable)
	cfg.RenameCycles = *rename
	switch strings.ToLower(*vp) {
	case "none":
	case "stride":
		cfg = cfg.WithVP(clustervp.VPStride)
	case "twodelta":
		cfg = cfg.WithVP(clustervp.VPTwoDelta)
	case "perfect":
		cfg = cfg.WithVP(clustervp.VPPerfect)
	default:
		fmt.Fprintf(os.Stderr, "unknown -vp %q\n", *vp)
		os.Exit(2)
	}
	switch strings.ToLower(*steerKind) {
	case "baseline":
	case "modified":
		cfg = cfg.WithSteering(clustervp.SteerModified)
	case "vpb":
		cfg = cfg.WithSteering(clustervp.SteerVPB)
	default:
		fmt.Fprintf(os.Stderr, "unknown -steer %q\n", *steerKind)
		os.Exit(2)
	}

	r, err := clustervp.Run(cfg, *kernel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *asJSON {
		job := clustervp.Job{Config: cfg, Kernel: *kernel, Scale: *scale}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(clustervp.ToRecord(clustervp.JobResult{Job: job, Res: r})); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark            %s\n", r.Benchmark)
	fmt.Printf("configuration        %s (vp=%s steer=%s commlat=%d paths=%d)\n",
		cfg.Name, *vp, *steerKind, *commlat, *paths)
	fmt.Printf("cycles               %d\n", r.Cycles)
	fmt.Printf("instructions         %d\n", r.Instructions)
	fmt.Printf("IPC                  %.4f\n", r.IPC())
	fmt.Printf("copies               %d\n", r.Copies)
	fmt.Printf("verification-copies  %d\n", r.VerifyCopies)
	fmt.Printf("bus transfers        %d (%.4f per instruction)\n", r.BusTransfers, r.CommPerInstr())
	fmt.Printf("bus stalls           %d\n", r.BusStalls)
	fmt.Printf("workload imbalance   %.4f (NREADY per cycle)\n", r.Imbalance())
	fmt.Printf("reissues             %d\n", r.Reissues)
	fmt.Printf("predicted operands   %d used, %d wrong\n", r.PredictedOperandsUsed, r.PredictedOperandsWrong)
	fmt.Printf("VP lookups           %d (%.1f%% confident, hit ratio %.3f)\n",
		r.VP.Lookups, 100*r.VP.ConfidentFraction(), r.VP.HitRatio())
	fmt.Printf("branch accuracy      %.4f (%d seen)\n", r.BranchAccuracy(), r.BranchSeen)
	fmt.Printf("cache misses         L1I=%d L1D=%d L2=%d\n", r.L1IMisses, r.L1DMisses, r.L2Misses)
	fmt.Printf("dispatch stalls      rob=%d iq=%d regs=%d\n",
		r.DispatchStallROB, r.DispatchStallIQ, r.DispatchStallRegs)
}
