// Command clustersim runs one benchmark under one machine configuration
// and prints the full statistics record.
//
// Usage:
//
//	clustersim -kernel gsmdec -clusters 4 -vp stride -steer vpb \
//	           -topology bus -commlat 1 -paths 0 -vptable 131072 -scale 1
//
// Examples:
//
//	clustersim -kernel cjpeg -clusters 1                      # centralized
//	clustersim -kernel cjpeg -clusters 4 -vp stride -steer vpb
//	clustersim -kernel cjpeg -clusters 4w16q:2w8q:2w8q        # asymmetric big/LITTLE
//	clustersim -kernel mpeg2enc -clusters 4 -commlat 4        # slow wires
//	clustersim -kernel cjpeg -clusters 4 -topology mesh -paths 1
//	clustersim -trace-in cjpeg.cvt -clusters 4 -vp stride     # replay a .cvt
//	clustersim -kernel cjpeg -trace-out cjpeg.cvt             # record while simulating
//	clustersim -kernel cjpeg -remote http://127.0.0.1:8090    # run on a clusterd server
//	clustersim -kernel cjpeg -remote http://127.0.0.1:8090 \
//	           -trace-out prof.json                           # + save the server-side timeline
//
// -remote submits the identical run to a clusterd instance (uploading
// the -trace-in file first when one is named) and prints exactly what
// the local run would print: both modes build their machine from the
// same config.MachineSpec, and the returned stats.Results record is
// rendered by the same code. Against a multi-tenant server, pass the
// tenant's API key with -api-key (or the CLUSTERSIM_API_KEY environment
// variable, which keeps the key out of shell history).
//
// -trace-out is mode-sensitive: locally it records the instruction
// stream as a .cvt container; with -remote it instead downloads the
// job's server-side span timeline as Chrome trace-event JSON
// (GET /v1/jobs/{id}/trace?format=chrome), ready to drop into
// chrome://tracing or https://ui.perfetto.dev. The timeline is saved
// even when the job fails — that is when you want it most.
//
// Unknown enum values (-vp, -steer, -topology) and unparsable -clusters
// machine descriptions exit with status 2 and one shared message
// listing the valid choices for every enum flag. Simulation failures —
// including corrupt or truncated trace files and exceeded -maxcycles
// budgets — print the error to stderr and exit 1; a failed remote job
// reports the server's error the same way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clustervp"
	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/service"
	"clustervp/internal/service/client"
	"clustervp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// enumFlags describes every enumerated flag once, so a bad value on any
// of them prints the valid choices for all of them — the user fixing
// one flag usually needs the neighbours too.
var enumFlags = []struct{ name, choices string }{
	{"-clusters", "1, 2, 4 (Table 1 presets), or a cluster spec string like 4w16q:2w8q:2w8q"},
	{"-vp", strings.Join(clustervp.VPs(), ", ")},
	{"-steer", strings.Join(clustervp.Steerings(), ", ")},
	{"-topology", strings.Join(clustervp.Topologies(), ", ")},
}

// printEnumHelp writes the shared valid-choices table.
func printEnumHelp(w io.Writer) {
	fmt.Fprintln(w, "valid enum flag values:")
	for _, f := range enumFlags {
		fmt.Fprintf(w, "  %-10s %s\n", f.name, f.choices)
	}
}

// enumFlagNamed reports whether the flag-package error text names one
// of the enum flags (e.g. "flag needs an argument: -vp" for a bare
// flag at the end of the command line). Matching is per whitespace
// token, not substring, so an error about -vptable does not read as
// one about -vp.
func enumFlagNamed(err error) bool {
	for _, tok := range strings.Fields(err.Error()) {
		tok = strings.TrimRight(tok, ":,")
		for _, f := range enumFlags {
			if tok == f.name {
				return true
			}
		}
	}
	return false
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "gsmdec", "benchmark kernel (see -list)")
	list := fs.Bool("list", false, "list available kernels and exit")
	clusters := fs.String("clusters", "4", "1, 2, 4 (presets) or a cluster spec string like 4w16q:2w8q:2w8q")
	vp := fs.String("vp", "none", "value predictor: "+strings.Join(clustervp.VPs(), ", "))
	steerKind := fs.String("steer", "baseline", "steering: "+strings.Join(clustervp.Steerings(), ", "))
	topology := fs.String("topology", "bus", "interconnect topology: "+strings.Join(clustervp.Topologies(), ", "))
	commlat := fs.Int("commlat", 1, "inter-cluster communication latency per hop (cycles)")
	paths := fs.Int("paths", 0, "inter-cluster paths per cluster/link (0 = unbounded)")
	vptable := fs.Int("vptable", 128*1024, "value prediction table entries")
	rename := fs.Int("rename", 1, "rename/steer stage depth in cycles")
	scale := fs.Int("scale", 1, "workload scale factor")
	seed := fs.Uint64("seed", 0, "re-seed the kernel's input data (0 = canonical)")
	maxCycles := fs.Int64("maxcycles", 0, "abort the simulation after this many cycles (0 = default budget)")
	traceIn := fs.String("trace-in", "", "replay this .cvt trace instead of synthesizing -kernel")
	traceOut := fs.String("trace-out", "", "record the instruction stream into this .cvt file; with -remote, save the job's Chrome trace timeline JSON here instead")
	asJSON := fs.Bool("json", false, "emit the result as a single JSON object instead of text")
	remote := fs.String("remote", "", "submit the run to a clusterd server at this base URL instead of simulating locally")
	apiKey := fs.String("api-key", "", "API key for a multi-tenant clusterd (requires -remote; also read from CLUSTERSIM_API_KEY)")
	if err := fs.Parse(args); err != nil {
		// A bare enum flag ("clustersim -vp") dies inside the flag
		// package; still surface the shared choices table.
		if enumFlagNamed(err) {
			printEnumHelp(stderr)
		}
		return 2
	}

	// fail: bad command line, exit 2 (the flag package's own code).
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, format+"\n", a...)
		fs.Usage()
		return 2
	}
	// failEnum: a bad enumerated value; print the shared choices table
	// (once, for all enum flags) instead of the full usage dump.
	failEnum := func(flagName string, err error) int {
		fmt.Fprintf(stderr, "invalid %s: %v\n", flagName, err)
		printEnumHelp(stderr)
		return 2
	}

	if *list {
		for _, k := range clustervp.KernelInfos() {
			fmt.Fprintf(stdout, "%-12s %-12s %s\n", k.Name, k.Category, k.Description)
		}
		return 0
	}

	// Individual enum validation first, so a bad value is attributed to
	// its flag and answered with the shared choices table.
	machine := strings.TrimSpace(*clusters)
	if _, err := config.ParseMachine(machine); err != nil {
		return failEnum("-clusters", err)
	}
	vpKind, err := clustervp.ParseVP(strings.ToLower(*vp))
	if err != nil {
		return failEnum("-vp", err)
	}
	steering, err := clustervp.ParseSteering(strings.ToLower(*steerKind))
	if err != nil {
		return failEnum("-steer", err)
	}
	topo, err := clustervp.ParseTopology(strings.ToLower(*topology))
	if err != nil {
		return failEnum("-topology", err)
	}
	// Locally -trace-out records the instruction stream, which a replay
	// (-trace-in) already has; remotely it saves the server's timeline,
	// which a replayed job has too, so the combination is fine there.
	if *remote == "" && *traceIn != "" && *traceOut != "" {
		return fail("-trace-in and -trace-out are mutually exclusive")
	}
	if *apiKey != "" && *remote == "" {
		return fail("-api-key only makes sense with -remote")
	}
	// MachineSpec treats zero as "keep the default", so flag values the
	// old builder chain would have rejected must be rejected here.
	if *commlat < 1 || *rename < 1 || *vptable < 1 || *scale < 1 || *maxCycles < 0 || *paths < 0 {
		return fail("invalid configuration: -commlat, -rename, -vptable and -scale must be >= 1; -paths and -maxcycles must be >= 0")
	}

	// Both the local and the remote path build the machine through the
	// same config.MachineSpec — what -remote submits is byte-for-byte
	// what runs locally.
	spec := config.MachineSpec{
		Clusters:       machine,
		VP:             strings.ToLower(*vp),
		Steering:       strings.ToLower(*steerKind),
		Topology:       strings.ToLower(*topology),
		CommLatency:    *commlat,
		CommPaths:      *paths,
		VPTableEntries: *vptable,
		RenameCycles:   *rename,
		MaxCycles:      *maxCycles,
	}
	cfg, err := spec.Build()
	if err != nil {
		// Whole-config validation catches bad combinations of the
		// numeric flags; those are not enum errors, so report them
		// neutrally rather than blaming -clusters.
		return fail("invalid configuration: %v", err)
	}

	// sim error: valid command line but the run failed (corrupt trace,
	// cycle budget, watchdog, remote failure) — report on stderr, exit 1.
	var r clustervp.Results
	if *remote != "" {
		key := *apiKey
		if key == "" {
			key = os.Getenv("CLUSTERSIM_API_KEY")
		}
		r, err = runRemote(*remote, key, spec, *kernel, *scale, *seed, *traceIn, *traceOut)
	} else {
		r, err = simulate(cfg, *kernel, *scale, *seed, *traceIn, *traceOut)
	}
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	if *asJSON {
		job := clustervp.Job{Config: cfg, Kernel: r.Benchmark, Scale: *scale, Seed: *seed, Trace: *traceIn}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(clustervp.ToRecord(clustervp.JobResult{Job: job, Res: r})); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "benchmark            %s\n", r.Benchmark)
	fmt.Fprintf(stdout, "configuration        %s (vp=%s steer=%s topology=%s commlat=%d paths=%d)\n",
		cfg.Name, vpKind, steering, topo, *commlat, *paths)
	fmt.Fprintf(stdout, "clusters             %d (%s)\n", cfg.NumClusters(), cfg.SpecString())
	fmt.Fprintf(stdout, "cycles               %d\n", r.Cycles)
	fmt.Fprintf(stdout, "instructions         %d\n", r.Instructions)
	fmt.Fprintf(stdout, "IPC                  %.4f\n", r.IPC())
	fmt.Fprintf(stdout, "copies               %d\n", r.Copies)
	fmt.Fprintf(stdout, "verification-copies  %d\n", r.VerifyCopies)
	fmt.Fprintf(stdout, "transfers            %d (%.4f per instruction, %.2f mean hops)\n",
		r.BusTransfers, r.CommPerInstr(), r.MeanHops())
	fmt.Fprintf(stdout, "transfer stalls      %d\n", r.BusStalls)
	fmt.Fprintf(stdout, "workload imbalance   %.4f (NREADY per cycle)\n", r.Imbalance())
	fmt.Fprintf(stdout, "reissues             %d\n", r.Reissues)
	fmt.Fprintf(stdout, "predicted operands   %d used, %d wrong\n", r.PredictedOperandsUsed, r.PredictedOperandsWrong)
	fmt.Fprintf(stdout, "VP lookups           %d (%.1f%% confident, hit ratio %.3f)\n",
		r.VP.Lookups, 100*r.VP.ConfidentFraction(), r.VP.HitRatio())
	fmt.Fprintf(stdout, "branch accuracy      %.4f (%d seen)\n", r.BranchAccuracy(), r.BranchSeen)
	fmt.Fprintf(stdout, "cache misses         L1I=%d L1D=%d L2=%d\n", r.L1IMisses, r.L1DMisses, r.L2Misses)
	fmt.Fprintf(stdout, "dispatch stalls      rob=%d iq=%d regs=%d\n",
		r.DispatchStallROB, r.DispatchStallIQ, r.DispatchStallRegs)
	for c, pc := range r.PerCluster {
		fmt.Fprintf(stdout, "cluster %-2d %-12s dispatched=%d issued=%d copies-out=%d mean-iq-occ=%.2f\n",
			c, pc.Spec, pc.Dispatched, pc.Issued, pc.CopiesOut, pc.MeanIQOcc(r.Cycles))
	}
	return 0
}

// runRemote submits the run to a clusterd server and waits for the
// result. A -trace-in file is uploaded to the server's
// content-addressed store first and referenced by digest, so the
// server replays exactly the bytes the local run would. A non-empty
// traceOut downloads the job's server-side span timeline as Chrome
// trace-event JSON afterwards — even for a failed job, whose timeline
// shows where it died.
func runRemote(base, apiKey string, spec config.MachineSpec, kernel string, scale int, seed uint64, traceIn, traceOut string) (clustervp.Results, error) {
	ctx := context.Background()
	var opts []client.Option
	if apiKey != "" {
		opts = append(opts, client.WithAPIKey(apiKey))
	}
	c := client.New(base, opts...)
	req := service.JobRequest{Machine: spec, Kernel: kernel, Scale: scale, Seed: seed}
	if traceIn != "" {
		digest, _, err := c.UploadTraceFile(ctx, traceIn)
		if err != nil {
			return clustervp.Results{}, fmt.Errorf("uploading %s: %w", traceIn, err)
		}
		req.Kernel = ""
		req.TraceDigest = digest
	}
	st, err := c.Run(ctx, req)
	if err != nil {
		return clustervp.Results{}, err
	}
	if traceOut != "" && st.ID != "" {
		if terr := saveRemoteTimeline(ctx, c, st.ID, traceOut); terr != nil {
			return clustervp.Results{}, fmt.Errorf("saving timeline %s: %w", traceOut, terr)
		}
	}
	if st.State != service.StateDone || st.Results == nil {
		return clustervp.Results{}, fmt.Errorf("remote job %s %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Results, nil
}

// saveRemoteTimeline writes one job's Chrome trace JSON to out.
func saveRemoteTimeline(ctx context.Context, c *client.Client, jobID, out string) error {
	raw, err := c.JobTraceChrome(ctx, jobID)
	if err != nil {
		return err
	}
	return os.WriteFile(out, raw, 0o644)
}

// simulate routes the three instruction-stream modes: replay a .cvt
// file, record one while simulating, or plain in-process synthesis.
func simulate(cfg clustervp.Config, kernel string, scale int, seed uint64, traceIn, traceOut string) (clustervp.Results, error) {
	switch {
	case traceIn != "":
		return clustervp.RunTraceFile(cfg, traceIn)
	case traceOut != "":
		return recordAndRun(cfg, kernel, scale, seed, traceOut)
	default:
		prog, err := clustervp.BuildKernelSeeded(kernel, scale, seed)
		if err != nil {
			return clustervp.Results{}, err
		}
		return clustervp.RunProgram(cfg, prog)
	}
}

// recordAndRun simulates the kernel while teeing the consumed
// instruction stream into a .cvt file; trace.FileWriter provides the
// atomic write, so a failed run leaves no partial trace.
func recordAndRun(cfg clustervp.Config, kernel string, scale int, seed uint64, out string) (clustervp.Results, error) {
	prog, err := clustervp.BuildKernelSeeded(kernel, scale, seed)
	if err != nil {
		return clustervp.Results{}, err
	}
	fw, err := trace.CreateFile(out, prog.Name, prog.Code)
	if err != nil {
		return clustervp.Results{}, err
	}
	defer fw.Abort()
	sim, err := core.NewFromSource(cfg, trace.Tee(trace.NewExecutor(prog), fw.Writer), prog.Name)
	if err != nil {
		return clustervp.Results{}, err
	}
	res, err := sim.Run()
	if err != nil {
		return res, err
	}
	return res, fw.Commit()
}
