// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 2-5, plus the §3.2 and §3.3 textual experiments),
// and the extensions beyond it (steering/predictor variants, and the
// interconnect-topology sweep).
//
// Usage:
//
//	experiments [-exp all|fig2|fig3|fig4a|fig4b|fig5|rename2|mod|ext|topo|asym]
//	            [-scale N] [-jobs N] [-out results.json]
//
// Each figure declares a grid of (configuration × kernel) jobs; all
// figures share one grid engine, so a configuration used by several
// figures (e.g. the centralized 1-cluster reference) is simulated
// exactly once per invocation. Per-job progress goes to stderr; -out
// dumps the full deduplicated result grid as JSON (or CSV with a .csv
// extension). Output is aligned text tables with the same rows/series
// the paper plots; EXPERIMENTS.md records a captured run against the
// paper's numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clustervp"
	"clustervp/internal/config"
	"clustervp/internal/stats"
)

// env is the shared state every experiment draws on: the memoizing grid
// engine, the workload scale, and the table output stream.
type env struct {
	eng   *clustervp.Engine
	scale int
	out   io.Writer
}

// experiment names one figure generator.
type experiment struct {
	name string
	f    func(*env) error
}

var experiments = []experiment{
	{"fig2", fig2}, {"fig3", fig3}, {"fig4a", fig4a}, {"fig4b", fig4b},
	{"fig5", fig5}, {"rename2", rename2}, {"mod", mod}, {"ext", ext},
	{"topo", topo}, {"asym", asym},
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, fig4a, fig4b, fig5, rename2, mod, ext, topo, asym")
	scale := flag.Int("scale", 1, "workload scale factor")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	out := flag.String("out", "", "dump the full result grid to this file (.json or .csv)")
	flag.Parse()

	e := &env{
		eng:   clustervp.NewEngineWithProgress(*jobs, os.Stderr),
		scale: *scale,
		out:   os.Stdout,
	}
	code, err := runExperiments(e, *exp, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
	}
	os.Exit(code)
}

// runExperiments drives the selected figures against e, optionally
// exporting the result grid to outPath, and returns the process exit
// code: 0 on success, 1 on simulation/export failure, 2 on a bad -exp.
func runExperiments(e *env, exp, outPath string) (int, error) {
	matched := false
	var firstErr error
	for _, x := range experiments {
		if exp != "all" && exp != x.name {
			continue
		}
		matched = true
		if err := x.f(e); err != nil {
			firstErr = fmt.Errorf("%s: %w", x.name, err)
			break
		}
	}
	if !matched {
		return 2, fmt.Errorf("unknown experiment %q", exp)
	}
	// Export whatever ran, even on failure, so CI can inspect partial
	// grids; the non-zero exit still gates the pipeline.
	if outPath != "" {
		if err := clustervp.ExportResults(outPath, e.eng.Snapshot()); err != nil {
			if firstErr != nil {
				firstErr = fmt.Errorf("%w (and exporting the partial grid failed: %v)", firstErr, err)
			} else {
				firstErr = err
			}
			return 1, firstErr
		}
	}
	if firstErr != nil {
		return 1, firstErr
	}
	return 0, nil
}

// suites runs the whole Table 2 kernel suite under every configuration
// as one batched grid and returns per-config result slices (suite
// order), maximizing worker-pool utilization across configurations.
func (e *env) suites(cfgs ...clustervp.Config) ([][]clustervp.Results, error) {
	kernels := clustervp.Kernels()
	rs := e.eng.Run(clustervp.GridSpec{
		Configs: cfgs,
		Kernels: kernels,
		Scales:  []int{e.scale},
	}.Jobs())
	if err := clustervp.FirstErr(rs); err != nil {
		return nil, err
	}
	out := make([][]clustervp.Results, len(cfgs))
	for i := range cfgs {
		per := make([]clustervp.Results, len(kernels))
		for k := range kernels {
			per[k] = rs[i*len(kernels)+k].Res
		}
		out[i] = per
	}
	return out, nil
}

// aggregates runs suites for the configurations and folds each into its
// suite-level record. A nil labels slice labels each aggregate with its
// configuration name (for figures that never display the label).
func (e *env) aggregates(labels []string, cfgs ...clustervp.Config) ([]clustervp.Results, error) {
	suites, err := e.suites(cfgs...)
	if err != nil {
		return nil, err
	}
	out := make([]clustervp.Results, len(cfgs))
	for i, s := range suites {
		label := cfgs[i].Name
		if labels != nil {
			label = labels[i]
		}
		out[i] = clustervp.Aggregate(label, s)
	}
	return out, nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// fig2 reproduces Figure 2: per-benchmark IPC for 1/2/4 clusters, with
// and without value prediction, under baseline steering.
func fig2(e *env) error {
	var labels []string
	var cfgs []clustervp.Config
	for _, n := range []int{1, 2, 4} {
		labels = append(labels, fmt.Sprintf("%dc", n), fmt.Sprintf("%dc+vp", n))
		cfgs = append(cfgs, clustervp.Preset(n), clustervp.Preset(n).WithVP(clustervp.VPStride))
	}
	results, err := e.suites(cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{Title: "Figure 2: IPC, baseline steering, with and without value prediction"}
	t.Header = append([]string{"benchmark"}, labels...)
	for k, name := range clustervp.Kernels() {
		row := []string{name}
		for i := range cfgs {
			row = append(row, f3(results[i][k].IPC()))
		}
		t.Add(row...)
	}
	avg := []string{"suite"}
	for i, l := range labels {
		avg = append(avg, f3(clustervp.Aggregate(l, results[i]).IPC()))
	}
	t.Add(avg...)
	fmt.Fprintln(e.out, t.String())
	return nil
}

// fig3 reproduces Figure 3: workload imbalance (a), communications per
// instruction (b) and normalized IPCR (c) for the four configurations —
// Baseline without and with prediction, VPB with prediction, VPB with
// perfect prediction — on 2 and 4 clusters.
func fig3(e *env) error {
	type cfgrow struct {
		label string
		mk    func(n int) clustervp.Config
	}
	rows := []cfgrow{
		{"Baseline-nopredict", func(n int) clustervp.Config { return clustervp.Preset(n) }},
		{"Baseline-predict", func(n int) clustervp.Config { return clustervp.Preset(n).WithVP(clustervp.VPStride) }},
		{"VPB-predict", func(n int) clustervp.Config {
			return clustervp.Preset(n).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
		}},
		{"VPB-perfectpredict", func(n int) clustervp.Config {
			return clustervp.Preset(n).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB)
		}},
	}
	// One grid: the three centralized references, then the 2- and
	// 4-cluster rows.
	labels := []string{"1c", "1c+vp", "1c+perf"}
	cfgs := []clustervp.Config{
		clustervp.Preset(1),
		clustervp.Preset(1).WithVP(clustervp.VPStride),
		clustervp.Preset(1).WithVP(clustervp.VPPerfect),
	}
	for _, n := range []int{2, 4} {
		for _, r := range rows {
			labels = append(labels, r.label)
			cfgs = append(cfgs, r.mk(n))
		}
	}
	aggs, err := e.aggregates(labels, cfgs...)
	if err != nil {
		return err
	}
	base1, base1vp, base1perf := aggs[0], aggs[1], aggs[2]

	t := stats.Table{
		Title:  "Figure 3: imbalance (a), communications/instruction (b), IPCR (c)",
		Header: []string{"config", "clusters", "imbalance", "comm/instr", "IPC", "IPCR"},
	}
	i := 3
	for _, n := range []int{2, 4} {
		for _, r := range rows {
			agg := aggs[i]
			i++
			// IPCR compares against the centralized machine with the
			// same predictor (§2.4 isolates cluster-specific benefits).
			ref := base1
			switch r.label {
			case "Baseline-predict", "VPB-predict":
				ref = base1vp
			case "VPB-perfectpredict":
				ref = base1perf
			}
			t.Add(r.label, fmt.Sprint(n), f3(agg.Imbalance()), f4(agg.CommPerInstr()),
				f3(agg.IPC()), f3(clustervp.IPCR(agg, ref)))
		}
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// fig4a reproduces Figure 4(a): IPC vs. communication latency 1/2/4, for
// 2 and 4 clusters, with and without prediction (VPB steering when
// predicting).
func fig4a(e *env) error {
	lats := []int{1, 2, 4}
	var cfgs []clustervp.Config
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			for _, lat := range lats {
				cfg := clustervp.Preset(n).WithComm(lat, 0)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	aggs, err := e.aggregates(nil, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Figure 4a: IPC vs. inter-cluster communication latency",
		Header: []string{"clusters", "predict", "lat=1", "lat=2", "lat=4"},
	}
	i := 0
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			row := []string{fmt.Sprint(n), fmt.Sprint(vp)}
			for range lats {
				row = append(row, f3(aggs[i].IPC()))
				i++
			}
			t.Add(row...)
		}
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// fig4b reproduces Figure 4(b): IPC vs. communication bandwidth (1, 2, 4
// paths per cluster, and unbounded).
func fig4b(e *env) error {
	bws := []int{1, 2, 4, 0}
	var cfgs []clustervp.Config
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			for _, b := range bws {
				cfg := clustervp.Preset(n).WithComm(1, b)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
				}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	aggs, err := e.aggregates(nil, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Figure 4b: IPC vs. inter-cluster communication bandwidth (paths/cluster)",
		Header: []string{"clusters", "predict", "B=1", "B=2", "B=4", "unbounded"},
	}
	i := 0
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			row := []string{fmt.Sprint(n), fmt.Sprint(vp)}
			for range bws {
				row = append(row, f3(aggs[i].IPC()))
				i++
			}
			t.Add(row...)
		}
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// fig5 reproduces Figure 5: IPC (a) and predictor accuracy (b) vs. the
// value prediction table size, on 4 clusters with VPB steering.
func fig5(e *env) error {
	// The paper sweeps 1K-128K against MediaBench's static footprint of
	// tens of thousands of instructions. Our kernels are a few hundred
	// static instructions, so destructive aliasing — the phenomenon the
	// figure measures — sets in below 1K; the sweep therefore extends
	// down to 16 entries to cover the same pressure ratios (DESIGN.md §3).
	sizes := []int{16, 64, 256, 1024, 4096, 16384, 128 * 1024}
	var cfgs []clustervp.Config
	for _, entries := range sizes {
		cfgs = append(cfgs, clustervp.Preset(4).
			WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB).WithVPTable(entries))
	}
	aggs, err := e.aggregates(nil, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Figure 5: value predictor table size (4 clusters, VPB)",
		Header: []string{"entries", "IPC", "hit-ratio", "confident%", "not-confident%"},
	}
	for i, entries := range sizes {
		label := fmt.Sprint(entries)
		if entries >= 1024 {
			label = fmt.Sprintf("%dK", entries/1024)
		}
		agg := aggs[i]
		t.Add(label, f3(agg.IPC()),
			f3(agg.VP.HitRatio()), f3(100*agg.VP.ConfidentFraction()),
			f3(100*(1-agg.VP.ConfidentFraction())))
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// rename2 reproduces the §3.3 experiment: a 2-cycle rename/steer stage on
// the 4-cluster VPB machine costs under ~2% IPC.
func rename2(e *env) error {
	cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	cfg2 := cfg
	cfg2.RenameCycles = 2
	aggs, err := e.aggregates([]string{"r1", "r2"}, cfg, cfg2)
	if err != nil {
		return err
	}
	a1, a2 := aggs[0], aggs[1]
	t := stats.Table{
		Title:  "§3.3: rename/steer pipeline depth (4 clusters, VPB + stride VP)",
		Header: []string{"rename-cycles", "IPC", "delta%"},
	}
	t.Add("1", f3(a1.IPC()), "0.0")
	t.Add("2", f3(a2.IPC()), fmt.Sprintf("%.1f", 100*(a2.IPC()-a1.IPC())/a1.IPC()))
	fmt.Fprintln(e.out, t.String())
	return nil
}

// mod reproduces the §3.2 observation: applying both steering
// modifications unconditionally yields a negligible improvement over the
// baseline scheme (imbalance falls, communication does not).
func mod(e *env) error {
	schemes := []struct {
		label string
		kind  config.SteeringKind
	}{
		{"Baseline", clustervp.SteerBaseline},
		{"Modified(M1+M2)", clustervp.SteerModified},
		{"VPB", clustervp.SteerVPB},
	}
	var labels []string
	var cfgs []clustervp.Config
	for _, s := range schemes {
		labels = append(labels, s.label)
		cfgs = append(cfgs, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(s.kind))
	}
	aggs, err := e.aggregates(labels, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "§3.2: unconditional steering modifications (4 clusters, stride VP)",
		Header: []string{"steering", "IPC", "imbalance", "comm/instr"},
	}
	for i, s := range schemes {
		agg := aggs[i]
		t.Add(s.label, f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()))
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// topo is the topology sweep, an extension beyond the paper: the
// 4-cluster machine on each interconnect topology, with bandwidth
// bounded to one path per port/link so contention differentiates the
// fabrics, with and without the paper's mechanism (stride VP + VPB
// steering). The paper's own fabric is the bus row; the unbounded bus
// rows anchor the sweep against the §4.2 isolation configuration.
func topo(e *env) error {
	type variant struct {
		label string
		mk    func() clustervp.Config
	}
	withVP := func(c clustervp.Config) clustervp.Config {
		return c.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	}
	base := func(t clustervp.TopologyKind) clustervp.Config {
		return clustervp.Preset(4).WithComm(1, 1).WithTopology(t)
	}
	var variants []variant
	for _, t := range []clustervp.TopologyKind{
		clustervp.TopoBus, clustervp.TopoRing, clustervp.TopoCrossbar, clustervp.TopoMesh,
	} {
		t := t
		variants = append(variants,
			variant{t.String(), func() clustervp.Config { return base(t) }},
			variant{t.String() + "+vp", func() clustervp.Config { return withVP(base(t)) }},
		)
	}
	variants = append(variants,
		variant{"bus-unbounded", func() clustervp.Config { return clustervp.Preset(4) }},
		variant{"bus-unbounded+vp", func() clustervp.Config { return withVP(clustervp.Preset(4)) }},
	)
	var labels []string
	var cfgs []clustervp.Config
	for _, v := range variants {
		labels = append(labels, v.label)
		cfgs = append(cfgs, v.mk())
	}
	aggs, err := e.aggregates(labels, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Topology sweep: 4 clusters, 1 path per port/link (B=1), suite aggregate",
		Header: []string{"topology", "IPC", "comm/instr", "stalls/instr", "mean-hops", "imbalance"},
	}
	for i, v := range variants {
		agg := aggs[i]
		t.Add(v.label, f3(agg.IPC()), f4(agg.CommPerInstr()),
			f4(float64(agg.BusStalls)/float64(agg.Instructions)),
			f3(agg.MeanHops()), f3(agg.Imbalance()))
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// ext runs the extensions beyond the paper's evaluation: the §5
// related-work steering baselines head-to-head, and the 2-delta
// predictor the conclusion anticipates.
func ext(e *env) error {
	steers := []struct {
		label string
		kind  config.SteeringKind
	}{
		{"steer:roundrobin", clustervp.SteerRoundRobin},
		{"steer:loadonly", clustervp.SteerLoadOnly},
		{"steer:depfifo", clustervp.SteerDepFIFO},
		{"steer:baseline", clustervp.SteerBaseline},
		{"steer:vpb", clustervp.SteerVPB},
	}
	vps := []struct {
		label   string
		kind    config.VPKind
		coverFP bool
	}{
		{"vp:stride", clustervp.VPStride, false},
		{"vp:twodelta", clustervp.VPTwoDelta, false},
		{"vp:stride+fp", clustervp.VPStride, true},
		{"vp:perfect", clustervp.VPPerfect, false},
		{"vp:perfect+fp", clustervp.VPPerfect, true},
	}
	var labels []string
	var cfgs []clustervp.Config
	for _, s := range steers {
		labels = append(labels, s.label)
		cfgs = append(cfgs, clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(s.kind))
	}
	for _, v := range vps {
		cfg := clustervp.Preset(4).WithVP(v.kind).WithSteering(clustervp.SteerVPB)
		cfg.VPCoverFP = v.coverFP
		labels = append(labels, v.label)
		cfgs = append(cfgs, cfg)
	}
	aggs, err := e.aggregates(labels, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Extensions: steering baselines (4 clusters, stride VP) and predictor variants (VPB)",
		Header: []string{"variant", "IPC", "imbalance", "comm/instr", "hit-ratio"},
	}
	for i, s := range steers {
		agg := aggs[i]
		t.Add(s.label, f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()), "-")
	}
	for i := range vps {
		agg := aggs[len(steers)+i]
		t.Add(labels[len(steers)+i], f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()), f3(agg.VP.HitRatio()))
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}

// asym is the heterogeneous-cluster sweep, an extension beyond the
// paper: machines of equal total issue width but different cluster
// shapes, with and without the paper's mechanism, measuring how the
// capacity-weighted steering spreads work (per-cluster dispatch shares)
// and what asymmetry costs or buys. The homogeneous 4-cluster preset
// anchors the sweep.
func asym(e *env) error {
	type variant struct {
		label string
		cfg   clustervp.Config
	}
	withVP := func(c clustervp.Config) clustervp.Config {
		return c.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	}
	shapes := []struct{ label, spec string }{
		{"4x2w (preset)", ""}, // Preset(4), the homogeneous reference
		{"big.LITTLE 4+2+2", "4w16q:2w8qx2"},
		{"dual-wide 2x4w", "4w16qx2"},
		{"extreme 6+2", "6w24q:2w8q"},
	}
	var variants []variant
	for _, s := range shapes {
		base := clustervp.Preset(4)
		if s.spec != "" {
			specs, err := clustervp.ParseClusterSpecs(s.spec)
			if err != nil {
				return err
			}
			base = clustervp.FromSpecs(specs...)
		}
		variants = append(variants,
			variant{s.label, base},
			variant{s.label + " +vp", withVP(base)},
		)
	}
	var labels []string
	var cfgs []clustervp.Config
	for _, v := range variants {
		labels = append(labels, v.label)
		cfgs = append(cfgs, v.cfg)
	}
	aggs, err := e.aggregates(labels, cfgs...)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Asymmetry sweep: equal-ish total width, different cluster shapes, suite aggregate",
		Header: []string{"machine", "clusters", "IPC", "imbalance", "comm/instr", "dispatch-shares"},
	}
	for i, v := range variants {
		agg := aggs[i]
		shares := "-"
		if ds := agg.DispatchShares(); ds != nil {
			parts := make([]string, len(ds))
			for j, s := range ds {
				parts[j] = fmt.Sprintf("%.0f%%", 100*s)
			}
			shares = strings.Join(parts, "/")
		}
		t.Add(v.label, cfgs[i].SpecString(), f3(agg.IPC()), f3(agg.Imbalance()),
			f4(agg.CommPerInstr()), shares)
	}
	fmt.Fprintln(e.out, t.String())
	return nil
}
