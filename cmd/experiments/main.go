// Command experiments regenerates every table and figure of the paper's
// evaluation (Figures 2-5, plus the §3.2 and §3.3 textual experiments).
//
// Usage:
//
//	experiments [-exp all|fig2|fig3|fig4a|fig4b|fig5|rename2|mod] [-scale N]
//
// Output is aligned text tables with the same rows/series the paper
// plots; EXPERIMENTS.md records a captured run against the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustervp"
	"clustervp/internal/config"
	"clustervp/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, fig4a, fig4b, fig5, rename2, mod, ext")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()

	run := func(name string, f func(int)) {
		if *exp == "all" || *exp == name {
			f(*scale)
		}
	}
	ok := false
	for _, e := range []struct {
		name string
		f    func(int)
	}{
		{"fig2", fig2}, {"fig3", fig3}, {"fig4a", fig4a}, {"fig4b", fig4b},
		{"fig5", fig5}, {"rename2", rename2}, {"mod", mod}, {"ext", ext},
	} {
		if *exp == "all" || *exp == e.name {
			ok = true
		}
		run(e.name, e.f)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func must(rs []clustervp.Results, err error) []clustervp.Results {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	return rs
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// fig2 reproduces Figure 2: per-benchmark IPC for 1/2/4 clusters, with
// and without value prediction, under baseline steering.
func fig2(scale int) {
	type cc struct {
		label string
		cfg   clustervp.Config
	}
	var cols []cc
	for _, n := range []int{1, 2, 4} {
		cols = append(cols,
			cc{fmt.Sprintf("%dc", n), clustervp.Preset(n)},
			cc{fmt.Sprintf("%dc+vp", n), clustervp.Preset(n).WithVP(clustervp.VPStride)},
		)
	}
	results := make([][]clustervp.Results, len(cols))
	for i, c := range cols {
		results[i] = must(clustervp.RunSuite(c.cfg, scale))
	}
	t := stats.Table{Title: "Figure 2: IPC, baseline steering, with and without value prediction"}
	t.Header = append([]string{"benchmark"}, func() []string {
		h := make([]string, len(cols))
		for i, c := range cols {
			h[i] = c.label
		}
		return h
	}()...)
	for k, name := range clustervp.Kernels() {
		row := []string{name}
		for i := range cols {
			row = append(row, f3(results[i][k].IPC()))
		}
		t.Add(row...)
	}
	avg := []string{"suite"}
	for i, c := range cols {
		avg = append(avg, f3(clustervp.Aggregate(c.label, results[i]).IPC()))
	}
	t.Add(avg...)
	fmt.Println(t.String())
}

// fig3 reproduces Figure 3: workload imbalance (a), communications per
// instruction (b) and normalized IPCR (c) for the four configurations —
// Baseline without and with prediction, VPB with prediction, VPB with
// perfect prediction — on 2 and 4 clusters.
func fig3(scale int) {
	type cfgrow struct {
		label string
		mk    func(n int) clustervp.Config
	}
	rows := []cfgrow{
		{"Baseline-nopredict", func(n int) clustervp.Config { return clustervp.Preset(n) }},
		{"Baseline-predict", func(n int) clustervp.Config { return clustervp.Preset(n).WithVP(clustervp.VPStride) }},
		{"VPB-predict", func(n int) clustervp.Config {
			return clustervp.Preset(n).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
		}},
		{"VPB-perfectpredict", func(n int) clustervp.Config {
			return clustervp.Preset(n).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB)
		}},
	}
	base1 := clustervp.Aggregate("1c", must(clustervp.RunSuite(clustervp.Preset(1), scale)))
	base1vp := clustervp.Aggregate("1c+vp", must(clustervp.RunSuite(clustervp.Preset(1).WithVP(clustervp.VPStride), scale)))
	base1perf := clustervp.Aggregate("1c+perf", must(clustervp.RunSuite(clustervp.Preset(1).WithVP(clustervp.VPPerfect), scale)))

	t := stats.Table{
		Title:  "Figure 3: imbalance (a), communications/instruction (b), IPCR (c)",
		Header: []string{"config", "clusters", "imbalance", "comm/instr", "IPC", "IPCR"},
	}
	for _, n := range []int{2, 4} {
		for _, r := range rows {
			agg := clustervp.Aggregate(r.label, must(clustervp.RunSuite(r.mk(n), scale)))
			// IPCR compares against the centralized machine with the
			// same predictor (§2.4 isolates cluster-specific benefits).
			ref := base1
			switch r.label {
			case "Baseline-predict", "VPB-predict":
				ref = base1vp
			case "VPB-perfectpredict":
				ref = base1perf
			}
			t.Add(r.label, fmt.Sprint(n), f3(agg.Imbalance()), f4(agg.CommPerInstr()),
				f3(agg.IPC()), f3(clustervp.IPCR(agg, ref)))
		}
	}
	fmt.Println(t.String())
}

// fig4a reproduces Figure 4(a): IPC vs. communication latency 1/2/4, for
// 2 and 4 clusters, with and without prediction (VPB steering when
// predicting).
func fig4a(scale int) {
	t := stats.Table{
		Title:  "Figure 4a: IPC vs. inter-cluster communication latency",
		Header: []string{"clusters", "predict", "lat=1", "lat=2", "lat=4"},
	}
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			row := []string{fmt.Sprint(n), fmt.Sprint(vp)}
			for _, lat := range []int{1, 2, 4} {
				cfg := clustervp.Preset(n).WithComm(lat, 0)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
				}
				agg := clustervp.Aggregate("x", must(clustervp.RunSuite(cfg, scale)))
				row = append(row, f3(agg.IPC()))
			}
			t.Add(row...)
		}
	}
	fmt.Println(t.String())
}

// fig4b reproduces Figure 4(b): IPC vs. communication bandwidth (1, 2, 4
// paths per cluster, and unbounded).
func fig4b(scale int) {
	t := stats.Table{
		Title:  "Figure 4b: IPC vs. inter-cluster communication bandwidth (paths/cluster)",
		Header: []string{"clusters", "predict", "B=1", "B=2", "B=4", "unbounded"},
	}
	for _, n := range []int{2, 4} {
		for _, vp := range []bool{true, false} {
			row := []string{fmt.Sprint(n), fmt.Sprint(vp)}
			for _, b := range []int{1, 2, 4, 0} {
				cfg := clustervp.Preset(n).WithComm(1, b)
				if vp {
					cfg = cfg.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
				}
				agg := clustervp.Aggregate("x", must(clustervp.RunSuite(cfg, scale)))
				row = append(row, f3(agg.IPC()))
			}
			t.Add(row...)
		}
	}
	fmt.Println(t.String())
}

// fig5 reproduces Figure 5: IPC (a) and predictor accuracy (b) vs. the
// value prediction table size, on 4 clusters with VPB steering.
func fig5(scale int) {
	t := stats.Table{
		Title:  "Figure 5: value predictor table size (4 clusters, VPB)",
		Header: []string{"entries", "IPC", "hit-ratio", "confident%", "not-confident%"},
	}
	// The paper sweeps 1K-128K against MediaBench's static footprint of
	// tens of thousands of instructions. Our kernels are a few hundred
	// static instructions, so destructive aliasing — the phenomenon the
	// figure measures — sets in below 1K; the sweep therefore extends
	// down to 16 entries to cover the same pressure ratios (DESIGN.md §3).
	for _, entries := range []int{16, 64, 256, 1024, 4096, 16384, 128 * 1024} {
		cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB).WithVPTable(entries)
		agg := clustervp.Aggregate("x", must(clustervp.RunSuite(cfg, scale)))
		label := fmt.Sprint(entries)
		if entries >= 1024 {
			label = fmt.Sprintf("%dK", entries/1024)
		}
		t.Add(label, f3(agg.IPC()),
			f3(agg.VP.HitRatio()), f3(100*agg.VP.ConfidentFraction()),
			f3(100*(1-agg.VP.ConfidentFraction())))
	}
	fmt.Println(t.String())
}

// rename2 reproduces the §3.3 experiment: a 2-cycle rename/steer stage on
// the 4-cluster VPB machine costs under ~2% IPC.
func rename2(scale int) {
	t := stats.Table{
		Title:  "§3.3: rename/steer pipeline depth (4 clusters, VPB + stride VP)",
		Header: []string{"rename-cycles", "IPC", "delta%"},
	}
	cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	a1 := clustervp.Aggregate("r1", must(clustervp.RunSuite(cfg, scale)))
	cfg2 := cfg
	cfg2.RenameCycles = 2
	a2 := clustervp.Aggregate("r2", must(clustervp.RunSuite(cfg2, scale)))
	t.Add("1", f3(a1.IPC()), "0.0")
	t.Add("2", f3(a2.IPC()), fmt.Sprintf("%.1f", 100*(a2.IPC()-a1.IPC())/a1.IPC()))
	fmt.Println(t.String())
}

// mod reproduces the §3.2 observation: applying both steering
// modifications unconditionally yields a negligible improvement over the
// baseline scheme (imbalance falls, communication does not).
func mod(scale int) {
	t := stats.Table{
		Title:  "§3.2: unconditional steering modifications (4 clusters, stride VP)",
		Header: []string{"steering", "IPC", "imbalance", "comm/instr"},
	}
	for _, s := range []struct {
		label string
		kind  config.SteeringKind
	}{
		{"Baseline", clustervp.SteerBaseline},
		{"Modified(M1+M2)", clustervp.SteerModified},
		{"VPB", clustervp.SteerVPB},
	} {
		cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(s.kind)
		agg := clustervp.Aggregate(s.label, must(clustervp.RunSuite(cfg, scale)))
		t.Add(s.label, f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()))
	}
	fmt.Println(t.String())
}

// ext runs the extensions beyond the paper's evaluation: the §5
// related-work steering baselines head-to-head, and the 2-delta
// predictor the conclusion anticipates.
func ext(scale int) {
	t := stats.Table{
		Title:  "Extensions: steering baselines (4 clusters, stride VP) and predictor variants (VPB)",
		Header: []string{"variant", "IPC", "imbalance", "comm/instr", "hit-ratio"},
	}
	for _, s := range []struct {
		label string
		kind  config.SteeringKind
	}{
		{"steer:roundrobin", clustervp.SteerRoundRobin},
		{"steer:loadonly", clustervp.SteerLoadOnly},
		{"steer:depfifo", clustervp.SteerDepFIFO},
		{"steer:baseline", clustervp.SteerBaseline},
		{"steer:vpb", clustervp.SteerVPB},
	} {
		cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(s.kind)
		agg := clustervp.Aggregate(s.label, must(clustervp.RunSuite(cfg, scale)))
		t.Add(s.label, f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()), "-")
	}
	for _, v := range []struct {
		label   string
		kind    config.VPKind
		coverFP bool
	}{
		{"vp:stride", clustervp.VPStride, false},
		{"vp:twodelta", clustervp.VPTwoDelta, false},
		{"vp:stride+fp", clustervp.VPStride, true},
		{"vp:perfect", clustervp.VPPerfect, false},
		{"vp:perfect+fp", clustervp.VPPerfect, true},
	} {
		cfg := clustervp.Preset(4).WithVP(v.kind).WithSteering(clustervp.SteerVPB)
		cfg.VPCoverFP = v.coverFP
		agg := clustervp.Aggregate(v.label, must(clustervp.RunSuite(cfg, scale)))
		t.Add(v.label, f3(agg.IPC()), f3(agg.Imbalance()), f4(agg.CommPerInstr()), f3(agg.VP.HitRatio()))
	}
	fmt.Println(t.String())
}
