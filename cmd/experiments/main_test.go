package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"clustervp"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
)

// stubEnv returns an env whose engine counts simulator invocations but
// runs a trivial stub instead of the real timing simulator, so figure
// plumbing and cross-figure memoization can be tested in milliseconds.
func stubEnv(calls *int64) *env {
	return &env{
		eng: runner.New(runner.Options{Workers: 4, Run: func(j runner.Job) (stats.Results, error) {
			atomic.AddInt64(calls, 1)
			return stats.Results{
				Config: j.Config.Name, Benchmark: j.Kernel,
				Cycles: 100, Instructions: 150,
			}, nil
		}}),
		scale: 1,
		out:   io.Discard,
	}
}

// TestSharedBaselinesSimulatedOnce verifies the -exp all contract: a
// configuration used by several figures (the 1-cluster references, the
// baseline clustered machines) is simulated exactly once per kernel.
func TestSharedBaselinesSimulatedOnce(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	k := int64(len(clustervp.Kernels()))

	// fig2: (1,2,4 clusters) × (no VP, stride VP) = 6 unique configs.
	if err := fig2(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 6*k {
		t.Fatalf("fig2 executed %d jobs, want %d", got, 6*k)
	}

	// fig3 declares 11 configs but shares 6 with fig2 (the 1c and 1c+vp
	// references and the 2/4-cluster baselines with and without VP), so
	// only 5 are new: 1c+perfect, and VPB with stride/perfect on 2 and
	// 4 clusters.
	if err := fig3(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 11*k {
		t.Fatalf("after fig3: executed %d jobs, want %d (shared baselines must not re-simulate)", got, 11*k)
	}

	// Re-running a whole figure is free.
	if err := fig3(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 11*k {
		t.Fatalf("re-running fig3 executed %d extra jobs, want 0", got-11*k)
	}
	if e.eng.Executed() != 11*k {
		t.Fatalf("Executed() = %d, want %d", e.eng.Executed(), 11*k)
	}
}

// TestAllExperimentsRunOnStub drives every figure through the stub
// engine, checking each completes and prints a table.
func TestAllExperimentsRunOnStub(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	var sb strings.Builder
	e.out = &sb
	code, err := runExperiments(e, "all", "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if n := strings.Count(sb.String(), "Figure"); n < 4 {
		t.Errorf("expected at least the 4 figure tables, got %d:\n%s", n, sb.String())
	}
}

// TestUnknownExperiment checks the CI-gating exit code contract.
func TestUnknownExperiment(t *testing.T) {
	var calls int64
	code, err := runExperiments(stubEnv(&calls), "nosuch", "")
	if code != 2 || err == nil {
		t.Fatalf("unknown experiment: code=%d err=%v, want code=2 and an error", code, err)
	}
	if calls != 0 {
		t.Errorf("unknown experiment still simulated %d jobs", calls)
	}
}

// TestOutExportsGrid checks -out dumps the full deduplicated grid as
// JSON that parses back, via the stub engine.
func TestOutExportsGrid(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	path := filepath.Join(t.TempDir(), "grid.json")
	code, err := runExperiments(e, "fig2", path)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []runner.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("-out emitted invalid JSON: %v", err)
	}
	if want := 6 * len(clustervp.Kernels()); len(recs) != want {
		t.Fatalf("exported %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Kernel == "" || r.Clusters < 1 || r.Err != "" {
			t.Errorf("bad record: %+v", r)
		}
	}
}

// TestOutJSONRealSimulation runs the cheapest real experiment end to
// end and parses the exported grid (the acceptance-criteria path).
func TestOutJSONRealSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	e := &env{eng: clustervp.NewEngine(0), scale: 1, out: io.Discard}
	path := filepath.Join(t.TempDir(), "rename2.json")
	code, err := runExperiments(e, "rename2", path)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []runner.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if want := 2 * len(clustervp.Kernels()); len(recs) != want {
		t.Fatalf("exported %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.IPC <= 0 || r.Cycles <= 0 || r.Err != "" {
			t.Errorf("suspicious record: %+v", r)
		}
	}
}
