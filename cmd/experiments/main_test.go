package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustervp"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
)

// stubEnv returns an env whose engine counts simulator invocations but
// runs a trivial stub instead of the real timing simulator, so figure
// plumbing and cross-figure memoization can be tested in milliseconds.
func stubEnv(calls *int64) *env {
	return &env{
		eng: runner.New(runner.Options{Workers: 4, Run: func(j runner.Job) (stats.Results, error) {
			atomic.AddInt64(calls, 1)
			return stats.Results{
				Config: j.Config.Name, Benchmark: j.Kernel,
				Cycles: 100, Instructions: 150,
			}, nil
		}}),
		scale: 1,
		out:   io.Discard,
	}
}

// TestSharedBaselinesSimulatedOnce verifies the -exp all contract: a
// configuration used by several figures (the 1-cluster references, the
// baseline clustered machines) is simulated exactly once per kernel.
func TestSharedBaselinesSimulatedOnce(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	k := int64(len(clustervp.Kernels()))

	// fig2: (1,2,4 clusters) × (no VP, stride VP) = 6 unique configs.
	if err := fig2(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 6*k {
		t.Fatalf("fig2 executed %d jobs, want %d", got, 6*k)
	}

	// fig3 declares 11 configs but shares 6 with fig2 (the 1c and 1c+vp
	// references and the 2/4-cluster baselines with and without VP), so
	// only 5 are new: 1c+perfect, and VPB with stride/perfect on 2 and
	// 4 clusters.
	if err := fig3(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 11*k {
		t.Fatalf("after fig3: executed %d jobs, want %d (shared baselines must not re-simulate)", got, 11*k)
	}

	// Re-running a whole figure is free.
	if err := fig3(e); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 11*k {
		t.Fatalf("re-running fig3 executed %d extra jobs, want 0", got-11*k)
	}
	if e.eng.Executed() != 11*k {
		t.Fatalf("Executed() = %d, want %d", e.eng.Executed(), 11*k)
	}
}

// TestJobsParallelismWithSharedBaselines verifies the -jobs contract
// on the -exp all shared-baseline path: a grid full of duplicate
// baseline jobs must still fan unique work out to the full -jobs
// worker bound — duplicates wait on the memo without occupying a
// worker — and must never exceed it. The stub simulator refuses to
// finish until `workers` simulations are in flight at once, so any
// serialization (e.g. a memo waiter holding a worker token) deadlocks
// the gate and fails the test instead of passing quietly at reduced
// parallelism.
func TestJobsParallelismWithSharedBaselines(t *testing.T) {
	const workers = 4
	var cur, peak int64
	full := make(chan struct{})
	var once sync.Once
	eng := runner.New(runner.Options{Workers: workers, Run: func(j runner.Job) (stats.Results, error) {
		n := atomic.AddInt64(&cur, 1)
		defer atomic.AddInt64(&cur, -1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		if n > workers {
			return stats.Results{}, fmt.Errorf("%d concurrent simulations exceed -jobs %d", n, workers)
		}
		if n == workers {
			once.Do(func() { close(full) })
		}
		select {
		case <-full:
		case <-time.After(10 * time.Second):
			return stats.Results{}, fmt.Errorf("parallelism stuck at %d of -jobs %d", atomic.LoadInt64(&peak), workers)
		}
		return stats.Results{Config: j.Config.Name, Benchmark: j.Kernel, Cycles: 100, Instructions: 150}, nil
	}})

	// The fig2 grid with every job declared three times over — the
	// worst-case shared-baseline shape: two duplicates per unique job
	// inside one Run call, racing the claimant.
	var cfgs []clustervp.Config
	for _, n := range []int{1, 2, 4} {
		cfgs = append(cfgs, clustervp.Preset(n), clustervp.Preset(n).WithVP(clustervp.VPStride))
	}
	jobs := clustervp.GridSpec{Configs: cfgs, Kernels: clustervp.Kernels(), Scales: []int{1}}.Jobs()
	tripled := append(append(append([]clustervp.Job(nil), jobs...), jobs...), jobs...)
	rs := eng.Run(tripled)
	if err := clustervp.FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got != workers {
		t.Errorf("peak concurrency %d, want the -jobs bound %d", got, workers)
	}
	if got, want := eng.Executed(), int64(len(jobs)); got != want {
		t.Errorf("executed %d simulations for %d unique jobs (duplicates must memoize)", got, want)
	}

	// A later figure re-declaring the same baselines (the -exp all
	// pattern) resolves entirely from the memo: no new simulations, and
	// results stay consistent.
	again := eng.Run(jobs)
	if err := clustervp.FirstErr(again); err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Executed(), int64(len(jobs)); got != want {
		t.Errorf("re-running shared baselines executed %d extra simulations", got-want)
	}
	for i, r := range again {
		if r.Res.Config != rs[i].Res.Config || r.Res.Benchmark != rs[i].Res.Benchmark ||
			r.Res.Cycles != rs[i].Res.Cycles {
			t.Errorf("job %d: memoized result differs from the original", i)
		}
	}
}

// TestAllExperimentsRunOnStub drives every figure through the stub
// engine, checking each completes and prints a table.
func TestAllExperimentsRunOnStub(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	var sb strings.Builder
	e.out = &sb
	code, err := runExperiments(e, "all", "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if n := strings.Count(sb.String(), "Figure"); n < 4 {
		t.Errorf("expected at least the 4 figure tables, got %d:\n%s", n, sb.String())
	}
}

// TestUnknownExperiment checks the CI-gating exit code contract.
func TestUnknownExperiment(t *testing.T) {
	var calls int64
	code, err := runExperiments(stubEnv(&calls), "nosuch", "")
	if code != 2 || err == nil {
		t.Fatalf("unknown experiment: code=%d err=%v, want code=2 and an error", code, err)
	}
	if calls != 0 {
		t.Errorf("unknown experiment still simulated %d jobs", calls)
	}
}

// TestOutExportsGrid checks -out dumps the full deduplicated grid as
// JSON that parses back, via the stub engine.
func TestOutExportsGrid(t *testing.T) {
	var calls int64
	e := stubEnv(&calls)
	path := filepath.Join(t.TempDir(), "grid.json")
	code, err := runExperiments(e, "fig2", path)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []runner.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("-out emitted invalid JSON: %v", err)
	}
	if want := 6 * len(clustervp.Kernels()); len(recs) != want {
		t.Fatalf("exported %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Kernel == "" || r.Clusters < 1 || r.Err != "" {
			t.Errorf("bad record: %+v", r)
		}
	}
}

// TestOutJSONRealSimulation runs the cheapest real experiment end to
// end and parses the exported grid (the acceptance-criteria path).
func TestOutJSONRealSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	e := &env{eng: clustervp.NewEngine(0), scale: 1, out: io.Discard}
	path := filepath.Join(t.TempDir(), "rename2.json")
	code, err := runExperiments(e, "rename2", path)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []runner.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if want := 2 * len(clustervp.Kernels()); len(recs) != want {
		t.Fatalf("exported %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.IPC <= 0 || r.Cycles <= 0 || r.Err != "" {
			t.Errorf("suspicious record: %+v", r)
		}
	}
}
