// Command tracegen inspects and exports the workload kernels: it lists
// the suite (Table 2), disassembles a kernel's static code, dumps a
// prefix of its dynamic trace with operand values, or encodes the full
// trace into a streaming .cvt file for later replay (clustersim
// -trace-in, grid Job.Trace, clustervp.RunTraceFile).
//
// Usage:
//
//	tracegen -list
//	tracegen -kernel cjpeg -disasm
//	tracegen -kernel cjpeg -trace 50
//	tracegen -kernel cjpeg -stats
//	tracegen -kernel cjpeg -out cjpeg.cvt              # scale 1 trace
//	tracegen -kernel cjpeg -n 1000000 -out cjpeg.cvt   # >= 1M instructions
//	tracegen -kernel cjpeg -seed 7 -out cjpeg-7.cvt    # re-seeded inputs
//
// -n picks the smallest workload scale whose dynamic instruction count
// reaches the target (kernels scale nearly linearly); -scale bypasses
// that and uses the given scale directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustervp"
	"clustervp/internal/isa"
	"clustervp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	list := fs.Bool("list", false, "list kernels (Table 2)")
	kernel := fs.String("kernel", "", "kernel name")
	disasm := fs.Bool("disasm", false, "print static disassembly")
	traceN := fs.Int("trace", 0, "print first N dynamic instructions")
	doStats := fs.Bool("stats", false, "print dynamic instruction mix")
	scale := fs.Int("scale", 0, "workload scale (0 = 1, or derived from -n)")
	n := fs.Uint64("n", 0, "scale the workload until the dynamic trace reaches at least N instructions")
	seed := fs.Uint64("seed", 0, "re-seed the kernel's input data (0 = canonical inputs)")
	out := fs.String("out", "", "encode the full dynamic trace into this .cvt file")
	fs.Parse(args)

	if *list {
		fmt.Fprintf(stdout, "%-12s %-12s %-8s %s\n", "name", "category", "fp", "description")
		for _, k := range clustervp.KernelInfos() {
			fmt.Fprintf(stdout, "%-12s %-12s %-8v %s\n", k.Name, k.Category, k.FPHeavy, k.Description)
		}
		return 0
	}
	if *kernel == "" {
		fmt.Fprintln(stderr, "need -kernel (or -list)")
		return 2
	}

	effScale := *scale
	if effScale < 1 {
		effScale = 1
	}
	if *n > 0 {
		if *scale > 0 {
			fmt.Fprintln(stderr, "-n and -scale are mutually exclusive")
			return 2
		}
		s, err := scaleForCount(*kernel, *seed, *n)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		effScale = s
	}
	prog, err := clustervp.BuildKernelSeeded(*kernel, effScale, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	switch {
	case *out != "":
		written, err := trace.WriteFile(*out, prog.Name, prog.Code, trace.NewExecutor(prog))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		st, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %d records at scale %d -> %s (%d bytes, %.2f B/record)\n",
			*kernel, written, effScale, *out, st.Size(), float64(st.Size())/float64(written))
		return 0

	case *disasm:
		for pc, in := range prog.Code {
			fmt.Fprintf(stdout, "%5d: %s\n", pc, in)
		}
		return 0

	case *traceN > 0:
		e := trace.NewExecutor(prog)
		var d trace.DynInst
		for i := 0; i < *traceN && e.Next(&d); i++ {
			line := fmt.Sprintf("%8d pc=%-5d %-28s", d.Seq, d.PC, d.Inst.String())
			for j, r := range d.Inst.Sources() {
				line += fmt.Sprintf(" %s=%d", r, int64(d.SrcVal[j]))
			}
			if _, ok := d.Inst.Dest(); ok {
				line += fmt.Sprintf(" -> %d", int64(d.DstVal))
			}
			if d.Info().IsLoad || d.Info().IsStore {
				line += fmt.Sprintf(" @%#x", d.Addr)
			}
			fmt.Fprintln(stdout, line)
		}
		return 0

	case *doStats:
		e := trace.NewExecutor(prog)
		var d trace.DynInst
		var total uint64
		byClass := map[isa.Class]uint64{}
		for e.Next(&d) {
			total++
			byClass[d.Info().Class]++
		}
		if err := e.Err(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %d dynamic instructions, %d static\n", *kernel, total, len(prog.Code))
		for _, c := range []isa.Class{isa.ClassIntALU, isa.ClassIntMulDiv, isa.ClassMem, isa.ClassFPALU, isa.ClassFPMulDiv} {
			fmt.Fprintf(stdout, "  %-10s %8d (%.1f%%)\n", c, byClass[c], 100*float64(byClass[c])/float64(total))
		}
		return 0
	}
	fmt.Fprintln(stderr, "nothing to do: pass -disasm, -trace N, -stats or -out FILE")
	return 2
}

// scaleForCount derives the smallest scale whose dynamic instruction
// count reaches target, from one cheap scale-1 measurement (kernel
// iteration counts scale linearly in the scale factor, so the estimate
// is refined at most a few times).
func scaleForCount(kernel string, seed, target uint64) (int, error) {
	perUnit, err := countAt(kernel, seed, 1)
	if err != nil {
		return 0, err
	}
	scale := int((target + perUnit - 1) / perUnit)
	if scale < 1 {
		scale = 1
	}
	for {
		got, err := countAt(kernel, seed, scale)
		if err != nil {
			return 0, err
		}
		if got >= target {
			return scale, nil
		}
		// Undershoot from sub-linear growth: bump proportionally.
		grow := int(uint64(scale) * (target - got) / got)
		if grow < 1 {
			grow = 1
		}
		scale += grow
	}
}

func countAt(kernel string, seed uint64, scale int) (uint64, error) {
	prog, err := clustervp.BuildKernelSeeded(kernel, scale, seed)
	if err != nil {
		return 0, err
	}
	e := trace.NewExecutor(prog)
	var d trace.DynInst
	var total uint64
	for e.Next(&d) {
		total++
	}
	if err := e.Err(); err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("tracegen: %s executed zero instructions", kernel)
	}
	return total, nil
}
