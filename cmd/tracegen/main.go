// Command tracegen inspects the workload kernels: it lists the suite
// (Table 2), disassembles a kernel's static code, or dumps a prefix of
// its dynamic trace with operand values — useful when developing new
// kernels or debugging predictor behaviour.
//
// Usage:
//
//	tracegen -list
//	tracegen -kernel cjpeg -disasm
//	tracegen -kernel cjpeg -trace 50
//	tracegen -kernel cjpeg -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"clustervp"
	"clustervp/internal/isa"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list kernels (Table 2)")
	kernel := flag.String("kernel", "", "kernel name")
	disasm := flag.Bool("disasm", false, "print static disassembly")
	traceN := flag.Int("trace", 0, "print first N dynamic instructions")
	doStats := flag.Bool("stats", false, "print dynamic instruction mix")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-12s %-8s %s\n", "name", "category", "fp", "description")
		for _, k := range clustervp.KernelInfos() {
			fmt.Printf("%-12s %-12s %-8v %s\n", k.Name, k.Category, k.FPHeavy, k.Description)
		}
		return
	}
	if *kernel == "" {
		fmt.Fprintln(os.Stderr, "need -kernel (or -list)")
		os.Exit(2)
	}
	prog, err := clustervp.BuildKernel(*kernel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *disasm {
		for pc, in := range prog.Code {
			fmt.Printf("%5d: %s\n", pc, in)
		}
		return
	}
	if *traceN > 0 {
		e := trace.NewExecutor(prog)
		var d trace.DynInst
		for i := 0; i < *traceN && e.Next(&d); i++ {
			line := fmt.Sprintf("%8d pc=%-5d %-28s", d.Seq, d.PC, d.Inst.String())
			for j, r := range d.Inst.Sources() {
				line += fmt.Sprintf(" %s=%d", r, int64(d.SrcVal[j]))
			}
			if _, ok := d.Inst.Dest(); ok {
				line += fmt.Sprintf(" -> %d", int64(d.DstVal))
			}
			if d.Info().IsLoad || d.Info().IsStore {
				line += fmt.Sprintf(" @%#x", d.Addr)
			}
			fmt.Println(line)
		}
		return
	}
	if *doStats {
		k, err := workload.ByName(*kernel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e := trace.NewExecutor(k.Build(*scale))
		var d trace.DynInst
		var total uint64
		byClass := map[isa.Class]uint64{}
		byOp := map[isa.Opcode]uint64{}
		for e.Next(&d) {
			total++
			byClass[d.Info().Class]++
			byOp[d.Inst.Op]++
		}
		if err := e.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d dynamic instructions, %d static\n", *kernel, total, len(prog.Code))
		for _, c := range []isa.Class{isa.ClassIntALU, isa.ClassIntMulDiv, isa.ClassMem, isa.ClassFPALU, isa.ClassFPMulDiv} {
			fmt.Printf("  %-10s %8d (%.1f%%)\n", c, byClass[c], 100*float64(byClass[c])/float64(total))
		}
		return
	}
	fmt.Fprintln(os.Stderr, "nothing to do: pass -disasm, -trace N or -stats")
	os.Exit(2)
}
