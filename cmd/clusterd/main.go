// Command clusterd is the simulation job server: a long-lived HTTP
// service that accepts simulation jobs and grids as JSON, executes
// them on a bounded worker pool with fingerprint deduplication, and
// persists every result in an on-disk content-addressed cache so
// identical work is never re-simulated across restarts or replicas
// sharing the data directory.
//
// Usage:
//
//	clusterd -addr 127.0.0.1:8090 -data ./clusterd-data
//	clusterd -addr 127.0.0.1:8090 -data ./clusterd-data -tenants tenants.json
//
// With -tenants the server runs multi-tenant: every request (except
// /v1/healthz and /metrics) must carry a configured API key, and each
// tenant's admission quotas are enforced at submit time. Without it the
// server runs open, as before.
//
// -pprof 127.0.0.1:6060 additionally serves net/http/pprof on that
// separate (keep it loopback) listener — off by default, and never
// exposed through the API address.
//
// Fleet mode: -coordinator turns the process into a fleet coordinator
// instead of a worker — it runs no simulations itself, but admits jobs
// once, shards them deterministically by fingerprint hash across the
// -replicas list, fails shards over around dead replicas, and serves
// the same API surface:
//
//	clusterd -coordinator -replicas http://10.0.0.1:8090,http://10.0.0.2:8090
//
// Point the replicas at one shared -data directory (or any shared
// cache backend) and a re-dispatched shard resolves from the result
// cache instead of re-simulating.
//
// Endpoints (see ARCHITECTURE.md "Service layer" for the full table):
//
//	POST /v1/jobs    POST /v1/grids    GET /v1/jobs/{id}
//	GET  /v1/jobs/{id}/events          POST /v1/traces
//	GET  /v1/jobs/{id}/trace           (?format=chrome|spans — span timeline)
//	GET  /v1/tracez                    (recent finished spans, server-wide)
//	GET  /v1/healthz                   GET /v1/statsz
//	GET  /metrics    (Prometheus text format)
//
// Every job carries a W3C trace id (continued from an inbound
// traceparent header, or freshly rooted) from HTTP admission through
// queue wait, dispatch and the simulation phases; /v1/jobs/{id}/trace
// renders the timeline, format=chrome ready for chrome://tracing or
// Perfetto. A coordinator serves the same two endpoints, merging its
// dispatch spans with every replica's spans for the job's trace.
//
// The first line on stdout is "clusterd listening on http://<addr>",
// with the actual port — so -addr 127.0.0.1:0 picks a free port and
// scripts can scrape it. SIGINT/SIGTERM shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"clustervp/internal/service"
	"clustervp/internal/service/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
	data := flag.String("data", "clusterd-data", "data directory (result cache and trace store live under it)")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (default <data>/results; \"off\" disables)")
	traceDir := flag.String("trace-dir", "", "trace-store directory (default <data>/traces; \"off\" disables)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "max queued jobs")
	progress := flag.Int64("progress-interval", 50_000, "cycles between job progress events")
	tenants := flag.String("tenants", "", "tenants file enabling API-key auth and per-tenant quotas (see ARCHITECTURE.md)")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	logLevel := flag.String("log-level", "info", "request log level: debug, info, warn or error")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator instead of a worker (requires -replicas)")
	replicasFlag := flag.String("replicas", "", "comma-separated replica base URLs the coordinator shards across")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator health-probe period")
	apiKey := flag.String("api-key", "", "API key the coordinator presents to multi-tenant replicas")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060; empty = off)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr, logger); err != nil {
			fmt.Fprintln(os.Stderr, "clusterd:", err)
			os.Exit(2)
		}
	}
	if *coordinator {
		replicas, err := parseReplicas(*replicasFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterd:", err)
			os.Exit(2)
		}
		if err := runCoordinator(*addr, replicas, *queue, *probeInterval, *apiKey, logger); err != nil {
			fmt.Fprintln(os.Stderr, "clusterd:", err)
			os.Exit(1)
		}
		return
	}
	if *replicasFlag != "" {
		fmt.Fprintln(os.Stderr, "clusterd: -replicas requires -coordinator")
		os.Exit(2)
	}
	if err := run(*addr, *data, *cacheDir, *traceDir, *tenants, workersQueue{*workers, *queue}, *progress, logger); err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(1)
	}
}

// parseReplicas splits and sanity-checks the -replicas list. Order is
// preserved: the list IS the shard space, so every coordinator must be
// given the same order.
func parseReplicas(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-coordinator requires -replicas (comma-separated base URLs)")
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		u, err := url.Parse(part)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("-replicas: %q is not a base URL (want e.g. http://host:port)", part)
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	if len(out) == 0 {
		return nil, errors.New("-replicas: no usable URLs")
	}
	return out, nil
}

// startPprof serves the net/http/pprof handlers on their own listener
// with a dedicated mux, so the profiling surface is never reachable
// through the API address (and never passes through auth, logging or
// the fleet router). Off unless -pprof is given; bind it to loopback.
func startPprof(addr string, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Error("pprof server exited", "err", err)
		}
	}()
	return nil
}

// workersQueue bundles the two pool knobs so run keeps a readable arity.
type workersQueue struct {
	workers int
	queue   int
}

// buildLogger assembles the slog request logger on stderr, leaving
// stdout to the "listening on" line scripts scrape.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: must be text or json", format)
	}
}

// resolveDir applies the <data>-relative default and the "off" switch.
func resolveDir(override, data, sub string) string {
	switch override {
	case "":
		return filepath.Join(data, sub)
	case "off":
		return ""
	default:
		return override
	}
}

// runCoordinator boots the fleet coordinator variant: same listening
// line, same graceful shutdown, no local simulation engine.
func runCoordinator(addr string, replicas []string, queue int, probe time.Duration, apiKey string, logger *slog.Logger) error {
	co, err := fleet.New(fleet.Options{
		Replicas:      replicas,
		QueueDepth:    queue,
		ProbeInterval: probe,
		APIKey:        apiKey,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	defer co.Close()
	logger.Info("coordinator mode", "replicas", replicas)
	return serve(addr, co.Handler())
}

func run(addr, data, cacheDir, traceDir, tenantsPath string, wq workersQueue, progress int64, logger *slog.Logger) error {
	var tenants []service.Tenant
	if tenantsPath != "" {
		var err error
		tenants, err = service.LoadTenantsFile(tenantsPath)
		if err != nil {
			return err
		}
		// Names only — API keys must never reach the log stream.
		names := make([]string, 0, len(tenants))
		for _, t := range tenants {
			names = append(names, t.Name)
		}
		logger.Info("multi-tenant mode", "tenants", names)
	}

	srv, err := service.New(service.Options{
		Workers:          wq.workers,
		QueueDepth:       wq.queue,
		CacheDir:         resolveDir(cacheDir, data, "results"),
		TraceDir:         resolveDir(traceDir, data, "traces"),
		ProgressInterval: progress,
		Tenants:          tenants,
		Logger:           logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	return serve(addr, srv.Handler())
}

// serve runs the HTTP server until SIGINT/SIGTERM, printing the
// "listening on" line scripts scrape.
func serve(addr string, handler http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("clusterd listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Request contexts derive from the signal context, so a shutdown
	// also ends long-lived /events streams — otherwise one watcher of
	// an unfinished job would pin Shutdown to its full timeout.
	hs := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "clusterd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}
