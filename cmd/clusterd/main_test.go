package main

import (
	"log/slog"
	"reflect"
	"testing"
)

// TestParseReplicas pins the -replicas contract: comma-separated base
// URLs, order preserved (the list is the shard space), trailing
// slashes trimmed, junk rejected with a usage error.
func TestParseReplicas(t *testing.T) {
	got, err := parseReplicas(" http://10.0.0.1:8090 , http://10.0.0.2:8090/ ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://10.0.0.1:8090", "http://10.0.0.2:8090"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseReplicas = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "  ", ",,", "not a url", "host-without-scheme:8090"} {
		if out, err := parseReplicas(bad); err == nil {
			t.Errorf("parseReplicas(%q) accepted: %v", bad, out)
		}
	}
}

// TestResolveDir pins the data-directory convention: empty means the
// <data>-relative default, "off" disables, anything else is literal.
func TestResolveDir(t *testing.T) {
	cases := []struct {
		override, data, sub, want string
	}{
		{"", "d", "results", "d/results"},
		{"", "d", "traces", "d/traces"},
		{"off", "d", "results", ""},
		{"/elsewhere", "d", "results", "/elsewhere"},
	}
	for _, tc := range cases {
		if got := resolveDir(tc.override, tc.data, tc.sub); got != tc.want {
			t.Errorf("resolveDir(%q, %q, %q) = %q, want %q", tc.override, tc.data, tc.sub, got, tc.want)
		}
	}
}

// TestBuildLogger pins the -log-format/-log-level contract: both
// handlers build, levels parse case-insensitively, and bad values are
// command-line errors.
func TestBuildLogger(t *testing.T) {
	for _, tc := range []struct{ format, level string }{
		{"text", "info"}, {"json", "debug"}, {"text", "WARN"}, {"json", "error"},
	} {
		logger, err := buildLogger(tc.format, tc.level)
		if err != nil || logger == nil {
			t.Errorf("buildLogger(%q, %q) = %v", tc.format, tc.level, err)
		}
	}
	if logger, _ := buildLogger("text", "debug"); !logger.Enabled(nil, slog.LevelDebug) {
		t.Error("-log-level debug does not enable debug records")
	}
	if logger, _ := buildLogger("text", "warn"); logger.Enabled(nil, slog.LevelInfo) {
		t.Error("-log-level warn still enables info records")
	}
	if _, err := buildLogger("xml", "info"); err == nil {
		t.Error("bad -log-format accepted")
	}
	if _, err := buildLogger("text", "loud"); err == nil {
		t.Error("bad -log-level accepted")
	}
}
