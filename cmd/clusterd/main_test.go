package main

import "testing"

// TestResolveDir pins the data-directory convention: empty means the
// <data>-relative default, "off" disables, anything else is literal.
func TestResolveDir(t *testing.T) {
	cases := []struct {
		override, data, sub, want string
	}{
		{"", "d", "results", "d/results"},
		{"", "d", "traces", "d/traces"},
		{"off", "d", "results", ""},
		{"/elsewhere", "d", "results", "/elsewhere"},
	}
	for _, tc := range cases {
		if got := resolveDir(tc.override, tc.data, tc.sub); got != tc.want {
			t.Errorf("resolveDir(%q, %q, %q) = %q, want %q", tc.override, tc.data, tc.sub, got, tc.want)
		}
	}
}
