package main

import (
	"log/slog"
	"testing"
)

// TestResolveDir pins the data-directory convention: empty means the
// <data>-relative default, "off" disables, anything else is literal.
func TestResolveDir(t *testing.T) {
	cases := []struct {
		override, data, sub, want string
	}{
		{"", "d", "results", "d/results"},
		{"", "d", "traces", "d/traces"},
		{"off", "d", "results", ""},
		{"/elsewhere", "d", "results", "/elsewhere"},
	}
	for _, tc := range cases {
		if got := resolveDir(tc.override, tc.data, tc.sub); got != tc.want {
			t.Errorf("resolveDir(%q, %q, %q) = %q, want %q", tc.override, tc.data, tc.sub, got, tc.want)
		}
	}
}

// TestBuildLogger pins the -log-format/-log-level contract: both
// handlers build, levels parse case-insensitively, and bad values are
// command-line errors.
func TestBuildLogger(t *testing.T) {
	for _, tc := range []struct{ format, level string }{
		{"text", "info"}, {"json", "debug"}, {"text", "WARN"}, {"json", "error"},
	} {
		logger, err := buildLogger(tc.format, tc.level)
		if err != nil || logger == nil {
			t.Errorf("buildLogger(%q, %q) = %v", tc.format, tc.level, err)
		}
	}
	if logger, _ := buildLogger("text", "debug"); !logger.Enabled(nil, slog.LevelDebug) {
		t.Error("-log-level debug does not enable debug records")
	}
	if logger, _ := buildLogger("text", "warn"); logger.Enabled(nil, slog.LevelInfo) {
		t.Error("-log-level warn still enables info records")
	}
	if _, err := buildLogger("xml", "info"); err == nil {
		t.Error("bad -log-format accepted")
	}
	if _, err := buildLogger("text", "loud"); err == nil {
		t.Error("bad -log-level accepted")
	}
}
