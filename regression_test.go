// Golden regression tests for the interconnect refactor: the Topology
// interface must leave the paper's bus model bit-for-bit identical.
package clustervp_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"clustervp"
)

// goldenRow is one (configuration, kernel) grid point with the exact
// counters captured on the pre-refactor simulator (the seed bus model,
// commit 84a8a6b), covering the full enum surface the eight figures
// sweep: 1/2/4 clusters, every predictor, the three paper steering
// schemes, latency 2/4, bounded bandwidth and a small VP table.
type goldenRow struct {
	config, kernel string

	cycles               int64
	instructions         uint64
	copies, verifyCopies uint64
	transfers, stalls    uint64
	reissues             uint64
}

// mkGolden maps the config labels used in the golden table to machine
// configurations. Every configuration leaves Topology at its zero value:
// the assertion is precisely that the default is still the paper's bus.
func mkGolden(label string) clustervp.Config {
	vpb := func(c clustervp.Config) clustervp.Config {
		return c.WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
	}
	switch label {
	case "1c":
		return clustervp.Preset(1)
	case "1c+vp":
		return clustervp.Preset(1).WithVP(clustervp.VPStride)
	case "2c":
		return clustervp.Preset(2)
	case "2c+vp":
		return clustervp.Preset(2).WithVP(clustervp.VPStride)
	case "4c":
		return clustervp.Preset(4)
	case "4c+vp":
		return clustervp.Preset(4).WithVP(clustervp.VPStride)
	case "4c+vp+vpb":
		return vpb(clustervp.Preset(4))
	case "4c+perf+vpb":
		return clustervp.Preset(4).WithVP(clustervp.VPPerfect).WithSteering(clustervp.SteerVPB)
	case "4c+vp+mod":
		return clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerModified)
	case "4c+vp+vpb+lat4":
		return vpb(clustervp.Preset(4)).WithComm(4, 0)
	case "4c+lat2":
		return clustervp.Preset(4).WithComm(2, 0)
	case "4c+vp+vpb+b1":
		return vpb(clustervp.Preset(4)).WithComm(1, 1)
	case "2c+b2":
		return clustervp.Preset(2).WithComm(1, 2)
	case "4c+2delta+vpb":
		return clustervp.Preset(4).WithVP(clustervp.VPTwoDelta).WithSteering(clustervp.SteerVPB)
	case "4c+vp+vpb+tab256":
		return vpb(clustervp.Preset(4)).WithVPTable(256)
	}
	panic("unknown golden config " + label)
}

// golden was captured by running every row's configuration on the
// pre-refactor simulator at scale 1. Do not regenerate it casually: a
// diff here means the default bus timing model changed, which breaks
// comparability of every previously published figure.
var golden = []goldenRow{
	{"1c", "gsmdec", 32076, 64011, 0, 0, 0, 0, 0},
	{"1c", "cjpeg", 8300, 37208, 0, 0, 0, 0, 0},
	{"1c", "mesaosdemo", 22291, 54608, 0, 0, 0, 0, 0},
	{"1c", "pgpenc", 37039, 21968, 0, 0, 0, 0, 0},
	{"1c+vp", "gsmdec", 31572, 64011, 0, 0, 0, 0, 6},
	{"1c+vp", "cjpeg", 7566, 37208, 0, 0, 0, 0, 3564},
	{"1c+vp", "mesaosdemo", 21994, 54608, 0, 0, 0, 0, 1},
	{"1c+vp", "pgpenc", 36952, 21968, 0, 0, 0, 0, 359},
	{"2c", "gsmdec", 35577, 64011, 9341, 0, 9341, 0, 0},
	{"2c", "cjpeg", 10170, 37208, 5749, 0, 5749, 0, 0},
	{"2c", "mesaosdemo", 22265, 54608, 8099, 0, 8099, 0, 0},
	{"2c", "pgpenc", 41491, 21968, 2055, 0, 2055, 0, 0},
	{"2c+vp", "gsmdec", 34048, 64011, 6510, 2499, 6521, 0, 46},
	{"2c+vp", "cjpeg", 9395, 37208, 3063, 4057, 3374, 0, 3241},
	{"2c+vp", "mesaosdemo", 21965, 54608, 8099, 0, 8099, 0, 1},
	{"2c+vp", "pgpenc", 39482, 21968, 2214, 372, 2388, 0, 359},
	{"4c", "gsmdec", 42575, 64011, 13086, 0, 13086, 0, 0},
	{"4c", "cjpeg", 14175, 37208, 13873, 0, 13873, 0, 0},
	{"4c", "mesaosdemo", 23216, 54608, 22642, 0, 22642, 0, 0},
	{"4c", "pgpenc", 55164, 21968, 3334, 0, 3334, 0, 0},
	{"4c+vp", "gsmdec", 40985, 64011, 10214, 13202, 10226, 0, 36},
	{"4c+vp", "cjpeg", 12826, 37208, 9781, 7697, 10115, 0, 2570},
	{"4c+vp", "mesaosdemo", 23417, 54608, 20641, 1580, 20642, 0, 1},
	{"4c+vp", "pgpenc", 59289, 21968, 2805, 1636, 2871, 0, 339},
	{"4c+vp+vpb", "gsmdec", 41927, 64011, 10239, 24457, 10252, 0, 39},
	{"4c+vp+vpb", "cjpeg", 12324, 37208, 8517, 10532, 10122, 0, 4309},
	{"4c+vp+vpb", "mesaosdemo", 22951, 54608, 17740, 5973, 17741, 0, 1},
	{"4c+vp+vpb", "pgpenc", 50532, 21968, 2141, 2231, 2415, 0, 359},
	{"4c+perf+vpb", "gsmdec", 25362, 64011, 0, 33598, 0, 0, 0},
	{"4c+perf+vpb", "cjpeg", 10061, 37208, 0, 20915, 0, 0, 0},
	{"4c+perf+vpb", "mesaosdemo", 23792, 54608, 14090, 12195, 14090, 0, 0},
	{"4c+perf+vpb", "pgpenc", 49165, 21968, 0, 12605, 0, 0, 0},
	{"4c+vp+mod", "gsmdec", 43795, 64011, 9064, 27104, 9076, 0, 34},
	{"4c+vp+mod", "cjpeg", 12750, 37208, 8199, 16636, 12658, 0, 6435},
	{"4c+vp+mod", "mesaosdemo", 23352, 54608, 16983, 9850, 16984, 0, 1},
	{"4c+vp+mod", "pgpenc", 60153, 21968, 2590, 2399, 2928, 0, 355},
	{"4c+vp+vpb+lat4", "gsmdec", 51512, 64011, 11009, 21449, 11023, 0, 46},
	{"4c+vp+vpb+lat4", "cjpeg", 13647, 37208, 8309, 10267, 10036, 0, 4700},
	{"4c+vp+vpb+lat4", "mesaosdemo", 24676, 54608, 17368, 6472, 17369, 0, 1},
	{"4c+vp+vpb+lat4", "pgpenc", 50617, 21968, 2132, 2255, 2405, 0, 359},
	{"4c+lat2", "gsmdec", 44098, 64011, 13086, 0, 13086, 0, 0},
	{"4c+lat2", "cjpeg", 14828, 37208, 13505, 0, 13505, 0, 0},
	{"4c+lat2", "mesaosdemo", 24057, 54608, 23778, 0, 23778, 0, 0},
	{"4c+lat2", "pgpenc", 56532, 21968, 3393, 0, 3393, 0, 0},
	{"4c+vp+vpb+b1", "gsmdec", 41928, 64011, 10239, 24457, 10252, 870, 39},
	{"4c+vp+vpb+b1", "cjpeg", 12311, 37208, 8555, 10503, 10094, 3289, 4307},
	{"4c+vp+vpb+b1", "mesaosdemo", 23373, 54608, 18344, 6401, 18345, 6594, 1},
	{"4c+vp+vpb+b1", "pgpenc", 50533, 21968, 2141, 2231, 2415, 8, 359},
	{"2c+b2", "gsmdec", 35577, 64011, 9341, 0, 9341, 0, 0},
	{"2c+b2", "cjpeg", 10203, 37208, 5684, 0, 5684, 366, 0},
	{"2c+b2", "mesaosdemo", 22265, 54608, 8099, 0, 8099, 0, 0},
	{"2c+b2", "pgpenc", 41491, 21968, 2055, 0, 2055, 62, 0},
	{"4c+2delta+vpb", "gsmdec", 41552, 64011, 10148, 25431, 10153, 0, 16},
	{"4c+2delta+vpb", "cjpeg", 11494, 37208, 7016, 11629, 8389, 0, 3716},
	{"4c+2delta+vpb", "mesaosdemo", 23275, 54608, 16590, 7734, 18468, 0, 4475},
	{"4c+2delta+vpb", "pgpenc", 66930, 21968, 1938, 2626, 2388, 0, 539},
	{"4c+vp+vpb+tab256", "gsmdec", 41927, 64011, 10239, 24457, 10252, 0, 39},
	{"4c+vp+vpb+tab256", "cjpeg", 12324, 37208, 8517, 10532, 10122, 0, 4309},
	{"4c+vp+vpb+tab256", "mesaosdemo", 22951, 54608, 17740, 5973, 17741, 0, 1},
	{"4c+vp+vpb+tab256", "pgpenc", 50532, 21968, 2141, 2231, 2415, 0, 359},
}

// TestBusTopologyMatchesSeedGolden runs every golden grid point on the
// refactored simulator (default bus topology, and the same topology
// selected explicitly) and requires every counter to match the
// pre-refactor capture exactly.
func TestBusTopologyMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("60-point golden grid in -short mode")
	}
	// One engine: rows sharing a fingerprint (e.g. the tab256 rows, whose
	// table is larger than any kernel's working set) simulate once.
	eng := clustervp.NewEngine(0)
	jobs := make([]clustervp.Job, 0, 2*len(golden))
	for _, g := range golden {
		jobs = append(jobs, clustervp.Job{Config: mkGolden(g.config), Kernel: g.kernel, Scale: 1})
	}
	// Explicit TopoBus must be the same machine as the default.
	for _, g := range golden {
		jobs = append(jobs, clustervp.Job{
			Config: mkGolden(g.config).WithTopology(clustervp.TopoBus), Kernel: g.kernel, Scale: 1,
		})
	}
	rs := eng.Run(jobs)
	if err := clustervp.FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i, g := range golden {
			r := rs[pass*len(golden)+i].Res
			if r.Cycles != g.cycles || r.Instructions != g.instructions ||
				r.Copies != g.copies || r.VerifyCopies != g.verifyCopies ||
				r.BusTransfers != g.transfers || r.BusStalls != g.stalls ||
				r.Reissues != g.reissues {
				t.Errorf("%s/%s (pass %d): got cycles=%d instrs=%d copies=%d vcs=%d transfers=%d stalls=%d reissues=%d, want %+v",
					g.config, g.kernel, pass, r.Cycles, r.Instructions, r.Copies, r.VerifyCopies,
					r.BusTransfers, r.BusStalls, r.Reissues, g)
			}
			if r.Topology != "bus" {
				t.Errorf("%s/%s: topology = %q, want bus", g.config, g.kernel, r.Topology)
			}
		}
	}
}

// TestNonBusTopologiesRunEndToEnd drives each extension topology through
// the public API on one kernel and checks the invariants that hold
// regardless of timing: exact committed instruction count and a hop
// histogram consistent with the fabric.
func TestNonBusTopologiesRunEndToEnd(t *testing.T) {
	want, err := clustervp.Run(clustervp.Preset(4), "cjpeg", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []clustervp.TopologyKind{
		clustervp.TopoRing, clustervp.TopoCrossbar, clustervp.TopoMesh,
	} {
		cfg := clustervp.Preset(4).WithComm(1, 1).WithTopology(topo).
			WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
		r, err := clustervp.Run(cfg, "cjpeg", 1)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if r.Instructions != want.Instructions {
			t.Errorf("%v: committed %d, want %d", topo, r.Instructions, want.Instructions)
		}
		if r.Topology != topo.String() {
			t.Errorf("%v: results topology = %q", topo, r.Topology)
		}
		maxHops := 1
		if topo == clustervp.TopoRing {
			maxHops = 3 // 4-cluster unidirectional ring
		}
		if topo == clustervp.TopoMesh {
			maxHops = 2 // 2x2 grid
		}
		for h, n := range r.HopHistogram {
			if n > 0 && (h < 1 || h > maxHops) {
				t.Errorf("%v: %d transfers at impossible hop count %d", topo, n, h)
			}
		}
	}
}

// TestTraceRoundTripGolden is the trace-subsystem golden grid: every
// workload kernel, at two scales, is encoded to a .cvt file, decoded,
// and replayed through the timing simulator — and the replay must
// produce byte-identical stats.Results to the in-process generator.
// Any divergence means the container dropped or distorted information
// the timing model observes, which would silently invalidate every
// trace-driven experiment.
func TestTraceRoundTripGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite trace round trip in -short mode")
	}
	cfg := clustervp.Preset(2).WithVP(clustervp.VPStride)
	dir := t.TempDir()
	for _, kernel := range clustervp.Kernels() {
		for _, scale := range []int{1, 2} {
			prog, err := clustervp.BuildKernel(kernel, scale)
			if err != nil {
				t.Fatal(err)
			}
			want, err := clustervp.RunProgram(cfg, prog)
			if err != nil {
				t.Fatalf("%s@%d in-process: %v", kernel, scale, err)
			}
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.cvt", kernel, scale))
			if _, err := clustervp.WriteKernelTrace(path, kernel, scale, 0); err != nil {
				t.Fatalf("%s@%d encode: %v", kernel, scale, err)
			}
			got, err := clustervp.RunTraceFile(cfg, path)
			if err != nil {
				t.Fatalf("%s@%d replay: %v", kernel, scale, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s@%d: trace replay diverged from in-process run:\n got %+v\nwant %+v",
					kernel, scale, got, want)
			}
		}
	}
}

// TestReplayModesArenaAndPipelinedGolden extends the trace golden grid
// across the replay data paths introduced by the cold-path rework: for
// every workload kernel at two scales, the in-memory (arena-form)
// replay and the pipelined (decode-ahead) replay must each produce
// byte-identical stats.Results to the synchronous streaming Reader.
// The three paths share no decoding state, so agreement here means the
// columnar re-encoding and the batch handoff both preserve every field
// the timing model observes.
func TestReplayModesArenaAndPipelinedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite replay-mode grid in -short mode")
	}
	cfg := clustervp.Preset(2).WithVP(clustervp.VPStride)
	dir := t.TempDir()
	for _, kernel := range clustervp.Kernels() {
		for _, scale := range []int{1, 2} {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.cvt", kernel, scale))
			if _, err := clustervp.WriteKernelTrace(path, kernel, scale, 0); err != nil {
				t.Fatalf("%s@%d encode: %v", kernel, scale, err)
			}
			want, err := clustervp.RunTraceFile(cfg, path)
			if err != nil {
				t.Fatalf("%s@%d streaming replay: %v", kernel, scale, err)
			}
			mem, err := clustervp.RunTraceFileInMemory(cfg, path)
			if err != nil {
				t.Fatalf("%s@%d in-memory replay: %v", kernel, scale, err)
			}
			if !reflect.DeepEqual(mem, want) {
				t.Errorf("%s@%d: in-memory replay diverged from streaming Reader:\n got %+v\nwant %+v",
					kernel, scale, mem, want)
			}
			piped, err := clustervp.RunTraceFilePipelined(cfg, path)
			if err != nil {
				t.Fatalf("%s@%d pipelined replay: %v", kernel, scale, err)
			}
			if !reflect.DeepEqual(piped, want) {
				t.Errorf("%s@%d: pipelined replay diverged from streaming Reader:\n got %+v\nwant %+v",
					kernel, scale, piped, want)
			}
		}
	}
}

// TestSeededTraceDiffers guards the -seed plumbing end to end: a
// re-seeded kernel must produce a different value stream (different
// predictor behaviour) while seed 0 reproduces the canonical one
// exactly.
func TestSeededTraceDiffers(t *testing.T) {
	cfg := clustervp.Preset(2).WithVP(clustervp.VPStride)
	dir := t.TempDir()
	runSeed := func(seed uint64) clustervp.Results {
		path := filepath.Join(dir, fmt.Sprintf("seed-%d.cvt", seed))
		if _, err := clustervp.WriteKernelTrace(path, "cjpeg", 1, seed); err != nil {
			t.Fatal(err)
		}
		r, err := clustervp.RunTraceFile(cfg, path)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	canonical := runSeed(0)
	prog, err := clustervp.BuildKernel("cjpeg", 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := clustervp.RunProgram(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical, direct) {
		t.Error("seed 0 trace does not reproduce the canonical run")
	}
	seeded := runSeed(12345)
	if seeded.Instructions == 0 {
		t.Fatal("seeded run committed nothing")
	}
	if reflect.DeepEqual(seeded.VP, canonical.VP) && seeded.Cycles == canonical.Cycles {
		t.Error("seed 12345 produced a run indistinguishable from canonical; seeding is not reaching the input data")
	}
}
