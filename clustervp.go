// Package clustervp is the public API of the reproduction of
// "Reducing Wire Delay Penalty through Value Prediction" (Parcerisa &
// González, MICRO-33, 2000).
//
// The package wraps the internal substrates — workload kernels, the
// trace-driven clustered out-of-order timing simulator, the stride value
// predictor, the steering heuristics and the pluggable interconnect
// topologies — behind three calls:
//
//	cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
//	res, err := clustervp.Run(cfg, "gsmdec", 1)
//	suite, err := clustervp.RunSuite(cfg, 1)
//
// The inter-cluster network is an experiment axis of its own: the
// default is the paper's bus fabric, and WithTopology selects the ring,
// crossbar or mesh extensions (see TopologyKind).
//
// Results carry IPC, communications per instruction, workload imbalance,
// per-topology transfer statistics and predictor accounting; see the
// stats re-exports below.
package clustervp

import (
	"io"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/interconnect"
	"clustervp/internal/program"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// Config is the machine configuration (Table 1 presets plus knobs).
type Config = config.Config

// ClusterSpec sizes one cluster (issue widths, IQ, register file, FU
// inventory, register ports, bypass latency). Config.Clusters holds one
// spec per cluster, so machines may be heterogeneous; the paper's
// presets are N copies of one spec.
type ClusterSpec = config.ClusterSpec

// Results is the statistics record of one simulation run.
type Results = stats.Results

// ClusterStats is the per-cluster dispatch/issue/occupancy breakdown
// carried in Results.PerCluster.
type ClusterStats = stats.ClusterStats

// Steering scheme selectors (§3).
const (
	SteerBaseline = config.SteerBaseline
	SteerModified = config.SteerModified
	SteerVPB      = config.SteerVPB
)

// Value predictor selectors (§2.2; VPTwoDelta is the extension the
// paper's conclusion anticipates).
const (
	VPNone     = config.VPNone
	VPStride   = config.VPStride
	VPPerfect  = config.VPPerfect
	VPTwoDelta = config.VPTwoDelta
)

// Alternative steering baselines for the §5 related-work comparisons.
const (
	SteerRoundRobin = config.SteerRoundRobin
	SteerLoadOnly   = config.SteerLoadOnly
	SteerDepFIFO    = config.SteerDepFIFO
)

// TopologyKind selects the inter-cluster network model; use it with
// Config.WithTopology. TopoBus is the paper's N×B write-port bus fabric
// (§2.1, §4.2) and the default; ring, crossbar and mesh are extensions
// that model link and port contention (mesh requires >= 4 clusters).
type TopologyKind = interconnect.Kind

// Interconnect topology selectors.
const (
	TopoBus      = interconnect.KindBus
	TopoRing     = interconnect.KindRing
	TopoCrossbar = interconnect.KindCrossbar
	TopoMesh     = interconnect.KindMesh
)

// Topologies lists the selectable topology names ("bus", "ring",
// "crossbar", "mesh").
func Topologies() []string { return interconnect.KindNames() }

// ParseTopology resolves a topology name to its kind; the error lists
// the valid names.
func ParseTopology(name string) (TopologyKind, error) { return interconnect.ParseKind(name) }

// Steerings lists the selectable steering-scheme names.
func Steerings() []string { return config.SteeringNames() }

// ParseSteering resolves a steering name to its kind; the error lists
// the valid names.
func ParseSteering(name string) (config.SteeringKind, error) { return config.ParseSteering(name) }

// VPs lists the selectable value-predictor names.
func VPs() []string { return config.VPNames() }

// ParseVP resolves a value-predictor name to its kind; the error lists
// the valid names.
func ParseVP(name string) (config.VPKind, error) { return config.ParseVP(name) }

// Preset returns the paper's Table 1 machine for 1, 2 or 4 clusters.
func Preset(clusters int) Config { return config.Preset(clusters) }

// FromSpecs builds a (possibly heterogeneous) machine from explicit
// cluster specs on the Table 1 front end, with steering thresholds
// scaled to the cluster count.
func FromSpecs(specs ...ClusterSpec) Config { return config.FromSpecs(specs...) }

// ParseClusterSpecs parses the compact machine description grammar
// ("4w16q:2w8q:2w8q", with optional f/r/p/b overrides and xN repeats);
// the error spells out the grammar.
func ParseClusterSpecs(s string) ([]ClusterSpec, error) { return config.ParseClusterSpecs(s) }

// DefaultSpec derives a full cluster spec from an integer issue width
// and IQ size, the way the spec-string parser does.
func DefaultSpec(width, iq int) ClusterSpec { return config.DefaultSpec(width, iq) }

// Kernels lists the benchmark suite (Table 2 names).
func Kernels() []string { return workload.Names() }

// KernelInfo describes one benchmark.
type KernelInfo struct {
	Name        string
	Category    string
	Description string
	FPHeavy     bool
}

// KernelInfos returns suite metadata in Table 2 order.
func KernelInfos() []KernelInfo {
	ks := workload.All()
	out := make([]KernelInfo, len(ks))
	for i, k := range ks {
		out[i] = KernelInfo{Name: k.Name, Category: k.Category, Description: k.Description, FPHeavy: k.FPHeavy}
	}
	return out
}

// BuildKernel assembles a suite kernel at the given scale (exposed for
// custom experiments and the trace tools).
func BuildKernel(name string, scale int) (*program.Program, error) {
	return workload.Build(name, scale, 0)
}

// BuildKernelSeeded assembles a suite kernel with its pseudo-random
// input streams re-seeded (seed 0 selects the canonical inputs every
// published figure uses).
func BuildKernelSeeded(name string, scale int, seed uint64) (*program.Program, error) {
	return workload.Build(name, scale, seed)
}

// WriteKernelTrace functionally executes a kernel and streams its
// dynamic instruction trace into a .cvt file at path, returning the
// number of records written. The file replays through RunTraceFile,
// clustersim -trace-in, or a grid Job's Trace field, producing results
// bit-identical to in-process synthesis.
func WriteKernelTrace(path, kernel string, scale int, seed uint64) (uint64, error) {
	prog, err := workload.Build(kernel, scale, seed)
	if err != nil {
		return 0, err
	}
	return trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog))
}

// RunTraceFile simulates a pre-recorded .cvt trace under cfg, streaming
// it from disk through the synchronous reference reader — the trace
// never needs to fit in memory. RunTraceFileInMemory and
// RunTraceFilePipelined replay the same file through the decode-once
// and decode-ahead paths; all three produce byte-identical Results.
func RunTraceFile(cfg Config, path string) (Results, error) {
	fr, err := trace.OpenFile(path)
	if err != nil {
		return Results{}, err
	}
	defer fr.Close()
	sim, err := core.DefaultPool.Get(cfg, fr, fr.Name())
	if err != nil {
		return Results{}, err
	}
	defer core.DefaultPool.Put(sim)
	return sim.Run()
}

// RunTraceFileInMemory decodes the whole .cvt file into the columnar
// in-memory form up front (validating every CRC), then replays it with
// a zero-allocation cursor. This is the replay mode the grid engine's
// trace arena uses for traces within its byte budget.
func RunTraceFileInMemory(cfg Config, path string) (Results, error) {
	fr, err := trace.OpenFile(path)
	if err != nil {
		return Results{}, err
	}
	mt, err := trace.ReadMem(fr.Reader)
	cerr := fr.Close()
	if err != nil {
		return Results{}, err
	}
	if cerr != nil {
		return Results{}, cerr
	}
	sim, err := core.DefaultPool.Get(cfg, mt.NewCursor(), mt.Name())
	if err != nil {
		return Results{}, err
	}
	defer core.DefaultPool.Put(sim)
	return sim.Run()
}

// RunTraceFilePipelined streams the .cvt file through the decode-ahead
// reader, overlapping CRC and varint-delta decoding with simulation.
// This is the replay mode the grid engine uses for traces its arena
// does not hold.
func RunTraceFilePipelined(cfg Config, path string) (Results, error) {
	fr, err := trace.OpenFile(path)
	if err != nil {
		return Results{}, err
	}
	defer fr.Close()
	p := trace.NewPipelined(fr.Reader)
	defer p.Close()
	sim, err := core.DefaultPool.Get(cfg, p, p.Name())
	if err != nil {
		return Results{}, err
	}
	defer core.DefaultPool.Put(sim)
	return sim.Run()
}

// MaterializeTraces writes each distinct workload among the jobs to a
// shared .cvt file under dir (once per workload, reusing existing
// files) and returns the jobs rewritten to replay those traces; see
// the runner package for the exact naming scheme.
func MaterializeTraces(dir string, jobs []Job) ([]Job, error) {
	return runner.MaterializeTraces(dir, jobs)
}

// Run simulates one suite kernel under cfg at the given workload scale
// (1 = tens of thousands of dynamic instructions).
func Run(cfg Config, kernel string, scale int) (Results, error) {
	prog, err := BuildKernel(kernel, scale)
	if err != nil {
		return Results{}, err
	}
	return RunProgram(cfg, prog)
}

// RunProgram simulates an arbitrary assembled program under cfg. The
// simulator instance is drawn from the process-wide pool; reuse is an
// allocation optimization only and results are identical to a cold
// construction.
func RunProgram(cfg Config, prog *program.Program) (Results, error) {
	sim, err := core.DefaultPool.Get(cfg, trace.NewExecutor(prog), prog.Name)
	if err != nil {
		return Results{}, err
	}
	defer core.DefaultPool.Put(sim)
	return sim.Run()
}

// Job is one grid point: a machine configuration applied to a suite
// kernel at a workload scale.
type Job = runner.Job

// JobResult pairs a grid job with its outcome; failed jobs carry a
// per-job error rather than aborting the whole grid.
type JobResult = runner.Result

// GridSpec declares a cross-product of configurations, kernels and
// scales; its Jobs method expands it in deterministic row-major order.
type GridSpec = runner.Grid

// Engine is the experiment-grid executor: a bounded worker pool with
// result memoization keyed by a canonical config+workload fingerprint,
// so a configuration shared by several grids (e.g. the centralized
// 1-cluster reference) is simulated exactly once per engine. Results
// are returned in job order regardless of completion order.
type Engine = runner.Engine

// NewEngine returns a grid engine bounded to the given number of
// concurrent simulations (<=0 means GOMAXPROCS). The memo persists
// across Run calls on the same engine.
func NewEngine(workers int) *Engine {
	return runner.New(runner.Options{Workers: workers})
}

// NewEngineWithProgress is NewEngine plus a per-executed-job progress
// stream (memo hits are silent); cmd/experiments points it at stderr.
func NewEngineWithProgress(workers int, progress io.Writer) *Engine {
	return runner.New(runner.Options{Workers: workers, Progress: progress})
}

// Record is the flattened, serialization-friendly form of one grid
// result (job identity, raw counters, derived metrics).
type Record = runner.Record

// ToRecord flattens one grid result for structured output.
func ToRecord(r JobResult) Record { return runner.ToRecord(r) }

// ExportResults writes grid results to path, choosing the format by
// extension: .csv means CSV, anything else JSON.
func ExportResults(path string, rs []JobResult) error { return runner.Export(path, rs) }

// FirstErr collapses grid results to the first per-job error, in grid
// order, or nil if every job succeeded.
func FirstErr(rs []JobResult) error { return runner.FirstErr(rs) }

// RunGrid executes the jobs on a fresh engine (GOMAXPROCS workers),
// deduplicating identical jobs, and returns results in job order. For
// memoization across several grids, create one Engine and call its Run
// method instead.
func RunGrid(jobs []Job) ([]JobResult, error) {
	rs := NewEngine(0).Run(jobs)
	return rs, FirstErr(rs)
}

// RunSuite simulates every Table 2 kernel under cfg (in parallel, via
// the grid engine) and returns per-kernel results in suite order.
func RunSuite(cfg Config, scale int) ([]Results, error) {
	rs, err := RunGrid(GridSpec{
		Configs: []Config{cfg},
		Kernels: Kernels(),
		Scales:  []int{scale},
	}.Jobs())
	if err != nil {
		return nil, err
	}
	out := make([]Results, len(rs))
	for i, r := range rs {
		out[i] = r.Res
	}
	return out, nil
}

// Aggregate folds per-kernel results into a suite summary whose IPC is
// the instruction-weighted suite IPC.
func Aggregate(name string, rs []Results) Results { return stats.Aggregate(name, rs) }

// IPCR is the paper's normalized N-cluster IPC ratio (§2.4).
func IPCR(clustered, centralized Results) float64 { return stats.IPCR(clustered, centralized) }
