// Package clustervp is the public API of the reproduction of
// "Reducing Wire Delay Penalty through Value Prediction" (Parcerisa &
// González, MICRO-33, 2000).
//
// The package wraps the internal substrates — workload kernels, the
// trace-driven clustered out-of-order timing simulator, the stride value
// predictor and the steering heuristics — behind three calls:
//
//	cfg := clustervp.Preset(4).WithVP(clustervp.VPStride).WithSteering(clustervp.SteerVPB)
//	res, err := clustervp.Run(cfg, "gsmdec", 1)
//	suite, err := clustervp.RunSuite(cfg, 1)
//
// Results carry IPC, communications per instruction, workload imbalance
// and predictor statistics; see the stats re-exports below.
package clustervp

import (
	"fmt"
	"runtime"
	"sync"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/program"
	"clustervp/internal/stats"
	"clustervp/internal/workload"
)

// Config is the machine configuration (Table 1 presets plus knobs).
type Config = config.Config

// Results is the statistics record of one simulation run.
type Results = stats.Results

// Steering scheme selectors (§3).
const (
	SteerBaseline = config.SteerBaseline
	SteerModified = config.SteerModified
	SteerVPB      = config.SteerVPB
)

// Value predictor selectors (§2.2; VPTwoDelta is the extension the
// paper's conclusion anticipates).
const (
	VPNone     = config.VPNone
	VPStride   = config.VPStride
	VPPerfect  = config.VPPerfect
	VPTwoDelta = config.VPTwoDelta
)

// Alternative steering baselines for the §5 related-work comparisons.
const (
	SteerRoundRobin = config.SteerRoundRobin
	SteerLoadOnly   = config.SteerLoadOnly
	SteerDepFIFO    = config.SteerDepFIFO
)

// Preset returns the paper's Table 1 machine for 1, 2 or 4 clusters.
func Preset(clusters int) Config { return config.Preset(clusters) }

// Kernels lists the benchmark suite (Table 2 names).
func Kernels() []string { return workload.Names() }

// KernelInfo describes one benchmark.
type KernelInfo struct {
	Name        string
	Category    string
	Description string
	FPHeavy     bool
}

// KernelInfos returns suite metadata in Table 2 order.
func KernelInfos() []KernelInfo {
	ks := workload.All()
	out := make([]KernelInfo, len(ks))
	for i, k := range ks {
		out[i] = KernelInfo{Name: k.Name, Category: k.Category, Description: k.Description, FPHeavy: k.FPHeavy}
	}
	return out
}

// BuildKernel assembles a suite kernel at the given scale (exposed for
// custom experiments and the trace tools).
func BuildKernel(name string, scale int) (*program.Program, error) {
	k, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	return k.Build(scale), nil
}

// Run simulates one suite kernel under cfg at the given workload scale
// (1 = tens of thousands of dynamic instructions).
func Run(cfg Config, kernel string, scale int) (Results, error) {
	prog, err := BuildKernel(kernel, scale)
	if err != nil {
		return Results{}, err
	}
	return RunProgram(cfg, prog)
}

// RunProgram simulates an arbitrary assembled program under cfg.
func RunProgram(cfg Config, prog *program.Program) (Results, error) {
	sim, err := core.New(cfg, prog)
	if err != nil {
		return Results{}, err
	}
	return sim.Run()
}

// RunSuite simulates every Table 2 kernel under cfg (in parallel) and
// returns per-kernel results in suite order.
func RunSuite(cfg Config, scale int) ([]Results, error) {
	kernels := workload.All()
	out := make([]Results, len(kernels))
	errs := make([]error, len(kernels))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, k := range kernels {
		wg.Add(1)
		go func(i int, k workload.Kernel) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = Run(cfg, k.Name, scale)
		}(i, k)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kernels[i].Name, err)
		}
	}
	return out, nil
}

// Aggregate folds per-kernel results into a suite summary whose IPC is
// the instruction-weighted suite IPC.
func Aggregate(name string, rs []Results) Results { return stats.Aggregate(name, rs) }

// IPCR is the paper's normalized N-cluster IPC ratio (§2.4).
func IPCR(clustered, centralized Results) float64 { return stats.IPCR(clustered, centralized) }
