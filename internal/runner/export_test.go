package runner

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/stats"
)

func sampleResults() []Result {
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	return []Result{
		{
			Job: Job{Config: cfg, Kernel: "cjpeg", Scale: 2},
			Res: stats.Results{
				Config: cfg.Name, Benchmark: "cjpeg",
				Cycles: 1000, Instructions: 2500, BusTransfers: 300, Reissues: 7,
			},
		},
		{
			Job: Job{Config: config.Preset(1), Kernel: "gsmdec", Scale: 1},
			Err: errors.New("diverged"),
		},
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleResults()); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Config != "4cluster" || r.Kernel != "cjpeg" || r.Scale != 2 ||
		r.VP != "stride" || r.Steering != "vpb" || r.Cycles != 1000 {
		t.Errorf("bad record: %+v", r)
	}
	if want := 2.5; r.IPC != want {
		t.Errorf("IPC = %v, want %v", r.IPC, want)
	}
	if recs[1].Err != "diverged" || recs[1].Cycles != 0 {
		t.Errorf("failed job should carry error and zero counters: %+v", recs[1])
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResults()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if len(rows[0]) != len(csvHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			t.Errorf("row %d has %d columns, want %d", i, len(row), len(csvHeader))
		}
	}
	if rows[1][0] != "4cluster" || rows[1][1] != "cjpeg" {
		t.Errorf("bad first row: %v", rows[1])
	}
	if rows[2][len(csvHeader)-1] != "diverged" {
		t.Errorf("error column lost: %v", rows[2])
	}
}

func TestExportByExtension(t *testing.T) {
	dir := t.TempDir()
	rs := sampleResults()

	jp := filepath.Join(dir, "grid.json")
	if err := Export(jp, rs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("exported JSON invalid: %v", err)
	}

	cp := filepath.Join(dir, "grid.csv")
	if err := Export(cp, rs); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(cp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil || len(rows) != 3 {
		t.Fatalf("exported CSV invalid: %v (%d rows)", err, len(rows))
	}
}
