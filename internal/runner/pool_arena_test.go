package runner

import (
	"os"
	"reflect"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/trace"
)

// TestSimulatePoolArenaDeterminism is the acceptance gate for the cold
// path rework: results must be byte-identical with the Sim pool and
// trace arena on or off, at any worker count. The baseline is the fully
// cold path (fresh Sim, synchronous streaming decode, no sharing);
// every accelerated configuration must reproduce it exactly.
func TestSimulatePoolArenaDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	dir := t.TempDir()
	cfgs := []config.Config{
		config.Preset(1),
		config.Preset(2).WithVP(config.VPStride),
		config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB),
	}
	var jobs []Job
	for _, c := range cfgs {
		jobs = append(jobs,
			Job{Config: c, Kernel: "cjpeg", Scale: 1},
			Job{Config: c, Kernel: "rawcaudio", Scale: 1},
		)
	}
	traced, err := MaterializeTraces(dir, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Mix replayed and in-process jobs: both flows cross the pool.
	all := append(append([]Job(nil), traced...), jobs[0], jobs[3])

	// Cold baseline: no pool, no arena, synchronous reader.
	want := make([]Result, len(all))
	for i, j := range all {
		res, err := simulate(j, 0, nil, nil, nil)
		if err != nil {
			t.Fatalf("baseline %s: %v", j, err)
		}
		want[i] = Result{Job: j, Res: res}
	}

	check := func(name string, opts Options) {
		t.Helper()
		got := New(opts).Run(all)
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("%s: %s: %v", name, got[i].Job, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Res, want[i].Res) {
				t.Errorf("%s: %s diverged from the cold baseline:\n got %+v\nwant %+v",
					name, got[i].Job, got[i].Res, want[i].Res)
			}
		}
	}
	check("pool+arena workers=1", Options{Workers: 1})
	check("pool+arena workers=2", Options{Workers: 2})
	check("pool+arena workers=8", Options{Workers: 8})
	check("no pool, no arena", Options{Workers: 4, NoSimPool: true, ArenaBytes: -1})
	check("private 1MiB arena", Options{Workers: 4, ArenaBytes: 1 << 20})
}

// TestArenaFallbackToStreaming forces the budget path: an engine whose
// arena cannot hold any trace must stream every replay and still match.
func TestArenaFallbackToStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	dir := t.TempDir()
	base := Job{Config: config.Preset(2), Kernel: "cjpeg", Scale: 1}
	jobs, err := MaterializeTraces(dir, []Job{base})
	if err != nil {
		t.Fatal(err)
	}
	want, err := simulate(jobs[0], 0, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := New(Options{Workers: 2, ArenaBytes: 1}).Run(jobs)
	if got[0].Err != nil {
		t.Fatal(got[0].Err)
	}
	if !reflect.DeepEqual(got[0].Res, want) {
		t.Error("tiny-arena (forced streaming) replay diverged from baseline")
	}
}

// TestMaterializeTracesVerifyPoolDigest: a corrupt or truncated
// leftover trace file must be regenerated, not reused — and the
// regenerated file must replay cleanly.
func TestMaterializeTracesVerifyPoolDigest(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{{Config: config.Preset(1), Kernel: "rawcaudio", Scale: 1}}
	out, err := MaterializeTraces(dir, jobs)
	if err != nil {
		t.Fatal(err)
	}
	path := out[0].Trace

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside a record block: header still parses, but a
	// block CRC no longer matches.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o666); err != nil {
		t.Fatal(err)
	}
	if verifyTrace(path) {
		t.Fatal("verifyTrace accepted a corrupted file")
	}
	if _, err := MaterializeTraces(dir, jobs); err != nil {
		t.Fatal(err)
	}
	fr, err := trace.OpenFile(path)
	if err != nil {
		t.Fatalf("regenerated trace does not open: %v", err)
	}
	var d trace.DynInst
	for fr.Next(&d) {
	}
	if err := fr.Err(); err != nil {
		t.Fatalf("regenerated trace does not decode: %v", err)
	}
	fr.Close()

	// Truncation must likewise trigger regeneration.
	if err := os.WriteFile(path, data[:len(data)/3], 0o666); err != nil {
		t.Fatal(err)
	}
	if verifyTrace(path) {
		t.Fatal("verifyTrace accepted a truncated file")
	}
	if _, err := MaterializeTraces(dir, jobs); err != nil {
		t.Fatal(err)
	}
	if !verifyTrace(path) {
		t.Fatal("regenerated trace fails verification")
	}
}
