package runner

// Benchmark-result plumbing for the CI perf gate: parse `go test
// -bench` output into structured records, merge repeated -count runs,
// serialize to JSON (BENCH_*.json), and compare against a checked-in
// baseline with a regression tolerance. Used by cmd/benchexport.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchRecord is one benchmark's merged measurement.
type BenchRecord struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Runs is how many -count repetitions were merged in.
	Runs int `json:"runs"`
	// NsPerOp is the best (minimum) time per operation across runs —
	// the standard way to suppress scheduling noise.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the worst (maximum) across runs:
	// an allocation regression in any run is a real regression.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (IPC, sim-instrs/s, …)
	// from the fastest run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ParseBench extracts benchmark result lines from `go test -bench`
// output, merging repeated runs of the same benchmark (min ns/op, max
// allocs). Non-benchmark lines are ignored, so the full test output can
// be piped in unfiltered.
func ParseBench(r io.Reader) ([]BenchRecord, error) {
	merged := map[string]*BenchRecord{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  v1 unit1  v2 unit2 ...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		rec := BenchRecord{Name: name, Runs: 1, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("runner: bench line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = v
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			default:
				rec.Metrics[unit] = v
			}
		}
		if prev, ok := merged[name]; ok {
			prev.Runs++
			if rec.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = rec.NsPerOp
				for k, v := range rec.Metrics {
					prev.Metrics[k] = v
				}
			}
			if rec.BytesPerOp > prev.BytesPerOp {
				prev.BytesPerOp = rec.BytesPerOp
			}
			if rec.AllocsPerOp > prev.AllocsPerOp {
				prev.AllocsPerOp = rec.AllocsPerOp
			}
		} else {
			merged[name] = &rec
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]BenchRecord, 0, len(merged))
	for _, n := range order {
		r := *merged[n]
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON serializes records as an indented JSON array (the
// BENCH_*.json format).
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// ReadBenchJSONFile loads a BENCH_*.json file.
func ReadBenchJSONFile(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// CompareBench reports the benchmarks whose ns/op regressed by more
// than tolerance (0.2 = 20%) against the baseline, in a deterministic
// order. When calibrate names a benchmark present in both sets, every
// ns/op is first divided by that benchmark's ns/op from its own set, so
// comparisons across machines of different absolute speed stay
// meaningful. Benchmarks missing from either side are skipped — adding
// a benchmark must not break CI, and removing one is reviewed in the
// diff anyway.
//
// Allocation counts are gated separately and absolutely: a benchmark
// whose baseline records 0 B/op or 0 allocs/op and now reports a
// nonzero value is always a regression, regardless of tolerance or
// calibration — zero-allocation steady state is a correctness property
// of the scheduler pools, not a speed measurement, and no machine-speed
// scaling excuses losing it.
func CompareBench(baseline, current []BenchRecord, tolerance float64, calibrate string) []string {
	base := map[string]BenchRecord{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	baseScale, curScale := 1.0, 1.0
	if calibrate != "" {
		b, bok := base[calibrate]
		var c BenchRecord
		var cok bool
		for _, r := range current {
			if r.Name == calibrate {
				c, cok = r, true
				break
			}
		}
		if bok && cok && b.NsPerOp > 0 && c.NsPerOp > 0 {
			baseScale, curScale = b.NsPerOp, c.NsPerOp
		}
	}
	var regressions []string
	for _, cur := range current {
		if b, ok := base[cur.Name]; ok {
			if b.BytesPerOp == 0 && cur.BytesPerOp > 0 {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f B/op vs baseline 0 B/op (zero-allocation gate, no tolerance)",
						cur.Name, cur.BytesPerOp))
			}
			if b.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f allocs/op vs baseline 0 allocs/op (zero-allocation gate, no tolerance)",
						cur.Name, cur.AllocsPerOp))
			}
		}
		if cur.Name == calibrate {
			continue
		}
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			continue
		}
		rel := (cur.NsPerOp / curScale) / (b.NsPerOp / baseScale)
		if rel > 1+tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.1f%% slower, tolerance %.0f%%)",
					cur.Name, cur.NsPerOp, b.NsPerOp, (rel-1)*100, tolerance*100))
		}
	}
	sort.Strings(regressions)
	return regressions
}
