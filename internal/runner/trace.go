package runner

// Trace-file support for the grid engine: content fingerprinting for
// the memoization key, and pre-materialization of the traces a grid
// shares so each workload is synthesized and encoded exactly once no
// matter how many configurations replay it.

import (
	"bufio"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sync"

	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// digestCache memoizes trace-file digests keyed by path, revalidated by
// (size, mtime) so an overwritten file re-hashes instead of serving a
// stale digest.
var digestCache sync.Map // path -> digestEntry

type digestEntry struct {
	size   int64
	mtime  int64
	digest string
}

// traceDigest returns a content-derived fingerprint component for the
// trace file at path. Failures fold the error into the fingerprint, so
// a missing file still memoizes deterministically (and re-checks once
// it appears, via the stat revalidation).
func traceDigest(path string) string {
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Sprintf("%s!%v", path, err)
	}
	if e, ok := digestCache.Load(path); ok {
		ent := e.(digestEntry)
		if ent.size == st.Size() && ent.mtime == st.ModTime().UnixNano() {
			return ent.digest
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Sprintf("%s!%v", path, err)
	}
	defer f.Close()
	h := crc64.New(crcTable)
	n, err := io.Copy(h, bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return fmt.Sprintf("%s!%v", path, err)
	}
	d := fmt.Sprintf("crc64:%016x:%d", h.Sum64(), n)
	digestCache.Store(path, digestEntry{size: st.Size(), mtime: st.ModTime().UnixNano(), digest: d})
	return d
}

// TracePath names the .cvt file MaterializeTraces writes for a
// workload instance inside dir.
func TracePath(dir, kernel string, scale int, seed uint64) string {
	name := fmt.Sprintf("%s-s%d", kernel, scale)
	if seed != 0 {
		name = fmt.Sprintf("%s-seed%d", name, seed)
	}
	return filepath.Join(dir, name+".cvt")
}

// verifyCache memoizes successful trace verifications keyed by path,
// revalidated by (size, mtime) like the digest cache, so repeated grid
// runs against a warm trace directory pay one full decode per file
// per change, not per run.
var verifyCache sync.Map // path -> verifyEntry

type verifyEntry struct {
	size  int64
	mtime int64
}

// verifyTrace reports whether the .cvt file at path decodes cleanly end
// to end — header, every block CRC, and the record-count trailer — i.e.
// whether its content digest is intact. Any failure (missing file, bad
// magic, corruption, truncation) reports false; the caller regenerates.
func verifyTrace(path string) bool {
	st, err := os.Stat(path)
	if err != nil {
		return false
	}
	if e, ok := verifyCache.Load(path); ok {
		ent := e.(verifyEntry)
		if ent.size == st.Size() && ent.mtime == st.ModTime().UnixNano() {
			return true
		}
	}
	fr, err := trace.OpenFile(path)
	if err != nil {
		return false
	}
	defer fr.Close()
	var d trace.DynInst
	for fr.Next(&d) {
	}
	if fr.Err() != nil {
		return false
	}
	verifyCache.Store(path, verifyEntry{size: st.Size(), mtime: st.ModTime().UnixNano()})
	return true
}

// MaterializeTraces writes each distinct (kernel, scale, seed) workload
// among the jobs to a .cvt file under dir — once, however many
// configurations share it — and returns a copy of the jobs rewritten
// to replay those files. Jobs that already name a trace pass through
// untouched. An existing file is reused only after verifying it decodes
// cleanly (CRC-checked end to end); a corrupt or truncated leftover is
// regenerated in place rather than poisoning every job that replays it.
// Successive grid runs against an intact directory skip generation
// entirely.
func MaterializeTraces(dir string, jobs []Job) ([]Job, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	out := make([]Job, len(jobs))
	written := map[string]bool{}
	for i, j := range jobs {
		out[i] = j
		if j.Trace != "" {
			continue
		}
		path := TracePath(dir, j.Kernel, j.EffectiveScale(), j.Seed)
		if !written[path] {
			if !verifyTrace(path) {
				prog, err := workload.Build(j.Kernel, j.EffectiveScale(), j.Seed)
				if err != nil {
					return nil, fmt.Errorf("runner: materialize %s: %w", path, err)
				}
				if _, err := trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog)); err != nil {
					return nil, fmt.Errorf("runner: materialize %s: %w", path, err)
				}
			}
			written[path] = true
		}
		out[i].Trace = path
	}
	return out, nil
}
