package runner

// Persistent result caching for the grid engine. The in-memory memo in
// Engine deduplicates work within one process; a ResultCache extends
// that across process restarts and across replicas sharing a cache
// backend: any two jobs with equal Fingerprint() produce identical
// Results, so a cached record can be served without re-simulating.
//
// The cache is layered: BlobCache owns the entry framing (magic,
// version, CRC — so a corrupt or truncated entry is detected and
// treated as a miss, never returned, the same typed-error discipline
// internal/trace applies to .cvt files) over any BlobStore backend.
// DiskCache is BlobCache over a local DirStore — the single-box
// default, and the shared-directory backend fleet replicas use today;
// an object-store BlobStore slots in without touching the framing.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"clustervp/internal/stats"
)

// ResultCache persists simulation outcomes keyed by Job.Fingerprint().
// Get reports a miss (false) for unknown, unreadable or corrupt
// entries; Put overwrites any existing entry. Implementations must be
// safe for concurrent use.
type ResultCache interface {
	Get(fingerprint string) (stats.Results, bool)
	Put(fingerprint string, res stats.Results) error
}

// Typed cache-entry errors, mirroring the internal/trace error style so
// callers can errors.Is-classify failures without string matching. Get
// folds all of these into a miss; Load exposes them for diagnostics and
// tests.
var (
	// ErrCacheCorrupt means an entry exists but fails validation: bad
	// magic, unsupported version, CRC mismatch, malformed JSON, or a
	// fingerprint that does not match the requested key.
	ErrCacheCorrupt = errors.New("runner: corrupt result-cache entry")
	// ErrCacheTruncated means an entry ends before its framed payload
	// and checksum are complete (a torn write from a crashed process).
	ErrCacheTruncated = errors.New("runner: truncated result-cache entry")
)

// Cache-entry framing: magic, version byte, fixed 8-byte little-endian
// payload length, JSON payload, fixed 4-byte little-endian IEEE CRC-32
// of the payload. The length is bounded before any allocation so a
// corrupt length field cannot drive memory growth.
const (
	cacheMagic      = "CVRC"
	cacheVersion    = 1
	maxCachePayload = 1 << 24
)

// cacheEntry is the JSON payload of one stored record. The full
// fingerprint rides inside the entry because the blob key only carries
// its hash: on read it is compared against the requested key, so a
// hash collision (or a foreign blob dropped into the backend) reads as
// corruption, never as a false hit.
type cacheEntry struct {
	Fingerprint string        `json:"fingerprint"`
	Results     stats.Results `json:"results"`
}

// cacheKey is the blob key an entry for the fingerprint lives at: the
// SHA-256 of the fingerprint keeps keys backend-safe and uniform
// regardless of what characters the fingerprint contains.
func cacheKey(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return fmt.Sprintf("%x.cvr", sum)
}

// encodeCacheEntry frames one entry for storage.
func encodeCacheEntry(fingerprint string, res stats.Results) ([]byte, error) {
	payload, err := json.Marshal(cacheEntry{Fingerprint: fingerprint, Results: res})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(cacheMagic)+1+8+len(payload)+4)
	buf = append(buf, cacheMagic...)
	buf = append(buf, cacheVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf, nil
}

// decodeCacheEntry validates a stored frame against the requested
// fingerprint and returns its results.
func decodeCacheEntry(fingerprint string, data []byte) (stats.Results, error) {
	head := len(cacheMagic) + 1 + 8
	if len(data) < head {
		return stats.Results{}, fmt.Errorf("%w: %d bytes, shorter than the %d-byte frame header",
			ErrCacheTruncated, len(data), head)
	}
	if string(data[:len(cacheMagic)]) != cacheMagic {
		return stats.Results{}, fmt.Errorf("%w: bad magic %q", ErrCacheCorrupt, data[:len(cacheMagic)])
	}
	if v := data[len(cacheMagic)]; v != cacheVersion {
		return stats.Results{}, fmt.Errorf("%w: version %d (supported: %d)", ErrCacheCorrupt, v, cacheVersion)
	}
	n := binary.LittleEndian.Uint64(data[len(cacheMagic)+1 : head])
	if n > maxCachePayload {
		return stats.Results{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrCacheCorrupt, n, maxCachePayload)
	}
	if uint64(len(data)) < uint64(head)+n+4 {
		return stats.Results{}, fmt.Errorf("%w: payload+checksum end past the file", ErrCacheTruncated)
	}
	payload := data[head : uint64(head)+n]
	crc := binary.LittleEndian.Uint32(data[uint64(head)+n:])
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return stats.Results{}, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCacheCorrupt, got, crc)
	}
	var ent cacheEntry
	if err := json.Unmarshal(payload, &ent); err != nil {
		return stats.Results{}, fmt.Errorf("%w: %v", ErrCacheCorrupt, err)
	}
	if ent.Fingerprint != fingerprint {
		return stats.Results{}, fmt.Errorf("%w: entry fingerprint does not match the requested key", ErrCacheCorrupt)
	}
	return ent.Results, nil
}

// BlobCache is a content-addressed ResultCache over any BlobStore. It
// is as concurrency-safe as its backend: the framing itself holds no
// state.
type BlobCache struct {
	store BlobStore
}

// NewBlobCache wraps a blob store in the result-cache framing.
func NewBlobCache(store BlobStore) *BlobCache { return &BlobCache{store: store} }

// Get implements ResultCache: it returns the cached results for the
// fingerprint, or a miss for missing, truncated or corrupt entries.
func (c *BlobCache) Get(fingerprint string) (stats.Results, bool) {
	res, err := c.Load(fingerprint)
	if err != nil {
		return stats.Results{}, false
	}
	return res, true
}

// Load is Get with the failure cause: os.ErrNotExist for a missing
// entry, ErrCacheTruncated/ErrCacheCorrupt for a damaged one.
func (c *BlobCache) Load(fingerprint string) (stats.Results, error) {
	data, err := c.store.Get(cacheKey(fingerprint))
	if err != nil {
		return stats.Results{}, err
	}
	return decodeCacheEntry(fingerprint, data)
}

// Put implements ResultCache: it (over)writes the entry through the
// backend's atomic publish, so a crash mid-write leaves either the old
// entry or none — never a torn frame at the published key.
func (c *BlobCache) Put(fingerprint string, res stats.Results) error {
	buf, err := encodeCacheEntry(fingerprint, res)
	if err != nil {
		return err
	}
	return c.store.Put(cacheKey(fingerprint), buf)
}

// DiskCache is the BlobCache over a local directory (DirStore) — the
// reference backend, shared across processes and replicas via the
// filesystem.
type DiskCache struct {
	*BlobCache
	dir *DirStore
}

// NewDiskCache opens (creating if needed) a result cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	store, err := NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return &DiskCache{BlobCache: NewBlobCache(store), dir: store}, nil
}

// Dir returns the cache root.
func (c *DiskCache) Dir() string { return c.dir.Dir() }

// EntryPath is the file an entry for the fingerprint lives at.
func (c *DiskCache) EntryPath(fingerprint string) string {
	return c.dir.Path(cacheKey(fingerprint))
}

var (
	_ ResultCache = (*BlobCache)(nil)
	_ ResultCache = (*DiskCache)(nil)
)
