package runner

// Via attribution tests: every Result records whether it was simulated,
// served by the in-process memo, or read from the persistent cache —
// and SimInstructions accumulates committed instructions from executed
// simulations only.

import (
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/stats"
)

func TestResultVia(t *testing.T) {
	cacheDir := t.TempDir()
	run := func(j Job) (stats.Results, error) {
		return stats.Results{Benchmark: j.Kernel, Cycles: 10, Instructions: 100}, nil
	}
	newEngine := func() *Engine {
		cache, err := NewDiskCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		return New(Options{Workers: 2, Cache: cache, Run: run})
	}

	e := newEngine()
	jobs := []Job{
		{Config: config.Preset(1), Kernel: "a"},
		{Config: config.Preset(1), Kernel: "a"}, // duplicate → memo
		{Config: config.Preset(1), Kernel: "b"},
	}
	rs := e.Run(jobs)
	if err := FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	// The duplicate pair resolves as one ViaSimulated claimer and one
	// ViaMemo waiter (either index may claim); the unique job simulated.
	pair := []Via{rs[0].Via, rs[1].Via}
	if !(pair[0] == ViaSimulated && pair[1] == ViaMemo || pair[0] == ViaMemo && pair[1] == ViaSimulated) {
		t.Errorf("duplicate pair via = %v/%v, want one simulated + one memo", pair[0], pair[1])
	}
	if rs[2].Via != ViaSimulated {
		t.Errorf("unique job via = %v, want simulated", rs[2].Via)
	}
	if got := e.SimInstructions(); got != 200 {
		t.Errorf("SimInstructions = %d, want 200 (two executed jobs × 100)", got)
	}

	// A re-run within the process is all-memo and adds no instructions.
	rs = e.Run(jobs[:1])
	if rs[0].Via != ViaMemo {
		t.Errorf("re-run via = %v, want memo", rs[0].Via)
	}
	if got := e.SimInstructions(); got != 200 {
		t.Errorf("SimInstructions after memo hit = %d, want 200", got)
	}

	// A fresh engine over the same cache directory serves from disk.
	e2 := newEngine()
	rs = e2.Run(jobs)
	if err := FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs[:1] {
		if r.Via != ViaCache {
			t.Errorf("restarted job %d via = %v, want cache", i, r.Via)
		}
	}
	if rs[1].Via != ViaMemo {
		t.Errorf("restarted duplicate via = %v, want memo", rs[1].Via)
	}
	if got := e2.SimInstructions(); got != 0 {
		t.Errorf("cache-served engine SimInstructions = %d, want 0", got)
	}
	if e2.Executed() != 0 {
		t.Errorf("cache-served engine executed %d simulations", e2.Executed())
	}
}

func TestViaString(t *testing.T) {
	for v, want := range map[Via]string{ViaSimulated: "simulated", ViaMemo: "memo", ViaCache: "cache"} {
		if got := v.String(); got != want {
			t.Errorf("Via(%d).String() = %q, want %q", v, got, want)
		}
	}
}
