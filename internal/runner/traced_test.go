package runner

import (
	"strconv"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/obs"
)

// spanByName finds one span in a set; "" on absence keeps call sites
// terse.
func spanByName(spans []obs.Span, name string) (obs.Span, bool) {
	for _, sp := range spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return obs.Span{}, false
}

// TestSimulateTraced covers the traced simulation path: materialize
// and run child spans under the caller's parent, a warmup sub-span,
// and phase-cycle attributes that sum to the reported cycle count.
func TestSimulateTraced(t *testing.T) {
	col := obs.NewCollector("test", 64)
	parent := col.StartRoot("job", obs.SpanContext{})
	j := Job{Config: config.Preset(2), Kernel: "rawcaudio", Scale: 1}
	res, err := SimulateTraced(j, 0, nil, parent)
	if err != nil {
		t.Fatal(err)
	}
	parent.End()

	spans := col.TraceSpans(parent.TraceID())
	mat, ok := spanByName(spans, "sim.materialize")
	if !ok {
		t.Fatalf("no sim.materialize span in %v", names(spans))
	}
	if mat.Attrs["source"] != SourceSynth {
		t.Errorf("materialize source = %q, want %q", mat.Attrs["source"], SourceSynth)
	}
	if mat.ParentID != parent.SpanID() {
		t.Error("sim.materialize not parented under the job span")
	}

	run, ok := spanByName(spans, "sim.run")
	if !ok {
		t.Fatalf("no sim.run span in %v", names(spans))
	}
	var phaseSum uint64
	for _, k := range []string{"phase_cycles_warmup", "phase_cycles_steady", "phase_cycles_drain"} {
		v, err := strconv.ParseUint(run.Attrs[k], 10, 64)
		if err != nil {
			t.Fatalf("attr %s = %q: %v", k, run.Attrs[k], err)
		}
		phaseSum += v
	}
	if phaseSum != uint64(res.Cycles) {
		t.Errorf("phase attrs sum to %d, want Cycles %d", phaseSum, res.Cycles)
	}

	warm, ok := spanByName(spans, "sim.warmup")
	if !ok {
		t.Fatalf("no sim.warmup span in %v", names(spans))
	}
	if warm.ParentID != run.SpanID {
		t.Error("sim.warmup not parented under sim.run")
	}
	if warm.End.After(run.End) {
		t.Error("sim.warmup outlived sim.run")
	}
}

// TestSimulateTracedNilParent pins the untraced fallback: a nil parent
// must behave exactly like SimulateWithProgress and record nothing.
func TestSimulateTracedNilParent(t *testing.T) {
	j := Job{Config: config.Preset(1), Kernel: "rawcaudio", Scale: 1}
	var ticks int
	res, err := SimulateTraced(j, 1000, func(core.Progress) { ticks++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if ticks == 0 {
		t.Fatal("progress callback never fired")
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
