package runner

// On-disk result-cache tests: round-trip, corruption taxonomy (every
// damaged entry is a typed error and a Get miss, never a wrong hit),
// rewrite-on-miss through the engine, and cross-engine persistence —
// the contract the clusterd service restarts depend on.

import (
	"errors"
	"os"
	"sync/atomic"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/stats"
)

func testResults(cycles int64) stats.Results {
	return stats.Results{
		Config:       "test",
		Benchmark:    "kern",
		Cycles:       cycles,
		Instructions: uint64(cycles) * 2,
		Copies:       7,
		Topology:     "bus",
		HopHistogram: []uint64{0, 5},
		PerCluster: []stats.ClusterStats{
			{Spec: "2w16q", Dispatched: 10, Issued: 12, CopiesOut: 3, IQOccSum: 40},
		},
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testResults(1234)
	if _, ok := c.Get("fp1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put("fp1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("fp1")
	if !ok {
		t.Fatal("stored entry reported a miss")
	}
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.Benchmark != want.Benchmark || len(got.PerCluster) != 1 ||
		got.PerCluster[0] != want.PerCluster[0] {
		t.Errorf("round trip mutated the results:\nput %+v\ngot %+v", want, got)
	}
	if _, ok := c.Get("fp2"); ok {
		t.Error("hit on a fingerprint that was never stored")
	}
	// Overwrite wins.
	if err := c.Put("fp1", testResults(99)); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get("fp1"); got.Cycles != 99 {
		t.Errorf("after overwrite Cycles = %d, want 99", got.Cycles)
	}
}

// TestDiskCacheCorruptionIsMiss damages an entry every way the frame
// can break and requires each to be (a) a typed error from Load and
// (b) a plain miss from Get — corrupt data must never be returned.
func TestDiskCacheCorruptionIsMiss(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated-header", func(b []byte) []byte { return b[:4] }, ErrCacheTruncated},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)*2/3] }, ErrCacheTruncated},
		{"missing-checksum", func(b []byte) []byte { return b[:len(b)-2] }, ErrCacheTruncated},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrCacheCorrupt},
		{"bad-version", func(b []byte) []byte { b[4] = 99; return b }, ErrCacheCorrupt},
		{"flipped-payload-bit", func(b []byte) []byte { b[20] ^= 0x40; return b }, ErrCacheCorrupt},
		{"oversized-length", func(b []byte) []byte {
			for i := 5; i < 13; i++ {
				b[i] = 0xff
			}
			return b
		}, ErrCacheCorrupt},
		{"empty-file", func(b []byte) []byte { return nil }, ErrCacheTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewDiskCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("fp", testResults(42)); err != nil {
				t.Fatal(err)
			}
			path := c.EntryPath("fp")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), data...)), 0o666); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("fp"); ok {
				t.Fatal("Get returned a damaged entry as a hit")
			}
			if _, err := c.Load("fp"); !errors.Is(err, tc.wantErr) {
				t.Errorf("Load error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestDiskCacheFingerprintMismatch: an entry whose embedded fingerprint
// disagrees with the requested key (hash collision, or a stray file) is
// corruption, not a hit.
func TestDiskCacheFingerprintMismatch(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("other", testResults(7)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.EntryPath("other"))
	if err != nil {
		t.Fatal(err)
	}
	// Plant the well-formed entry for "other" at the path for "fp".
	if err := os.WriteFile(c.EntryPath("fp"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("fp"); ok {
		t.Fatal("entry for a different fingerprint served as a hit")
	}
	if _, err := c.Load("fp"); !errors.Is(err, ErrCacheCorrupt) {
		t.Errorf("Load error = %v, want ErrCacheCorrupt", err)
	}
}

// TestDiskCacheMissingIsNotExist pins the Load taxonomy: absent entries
// report os.ErrNotExist, distinct from corruption.
func TestDiskCacheMissingIsNotExist(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Load of a missing entry = %v, want os.ErrNotExist", err)
	}
}

// countingEngine builds an engine around a stub simulator that counts
// invocations, backed by cache.
func countingEngine(cache ResultCache, calls *int64) *Engine {
	return New(Options{
		Workers: 2,
		Cache:   cache,
		Run: func(j Job) (stats.Results, error) {
			atomic.AddInt64(calls, 1)
			return stats.Results{Config: j.Config.Name, Benchmark: j.Kernel, Cycles: 100, Instructions: 150}, nil
		},
	})
}

func cacheTestJobs() []Job {
	return []Job{
		{Config: config.Preset(2), Kernel: "cjpeg", Scale: 1},
		{Config: config.Preset(4), Kernel: "cjpeg", Scale: 1},
		{Config: config.Preset(4), Kernel: "gsmdec", Scale: 1},
	}
}

// TestEnginePersistentCache is the restart contract: a second engine
// sharing the cache directory serves the whole grid without a single
// simulator invocation, and a corrupted entry is re-simulated and
// rewritten in place.
func TestEnginePersistentCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := cacheTestJobs()

	var cold int64
	e1 := countingEngine(cache, &cold)
	if err := FirstErr(e1.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if cold != int64(len(jobs)) {
		t.Fatalf("cold engine simulated %d jobs, want %d", cold, len(jobs))
	}
	if e1.CacheHits() != 0 {
		t.Fatalf("cold engine reported %d cache hits, want 0", e1.CacheHits())
	}

	// "Restart": fresh engine, same directory.
	var warm int64
	e2 := countingEngine(cache, &warm)
	rs := e2.Run(jobs)
	if err := FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	if warm != 0 || e2.Executed() != 0 {
		t.Fatalf("warm engine simulated %d jobs (Executed=%d), want 0", warm, e2.Executed())
	}
	if e2.CacheHits() != int64(len(jobs)) {
		t.Fatalf("warm engine cache hits = %d, want %d", e2.CacheHits(), len(jobs))
	}
	for _, r := range rs {
		if r.Res.Cycles != 100 || r.Res.Instructions != 150 {
			t.Errorf("cached result for %s lost counters: %+v", r.Job, r.Res)
		}
	}

	// Corrupt one entry: the next engine re-simulates exactly that job
	// and rewrites the entry so a fourth engine hits again.
	fp := jobs[1].Fingerprint()
	path := cache.EntryPath(fp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	var repair int64
	e3 := countingEngine(cache, &repair)
	if err := FirstErr(e3.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if repair != 1 || e3.CacheHits() != int64(len(jobs))-1 {
		t.Fatalf("after corrupting one entry: simulated %d (want 1), cache hits %d (want %d)",
			repair, e3.CacheHits(), len(jobs)-1)
	}
	if _, err := cache.Load(fp); err != nil {
		t.Fatalf("corrupt entry was not rewritten: %v", err)
	}
}

// TestEngineCacheSkipsFailedJobs: errors are memoized in-process but
// never written to the persistent cache — a transient failure must not
// poison future processes.
func TestEngineCacheSkipsFailedJobs(t *testing.T) {
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls int64
	boom := errors.New("boom")
	e := New(Options{Workers: 1, Cache: cache, Run: func(j Job) (stats.Results, error) {
		atomic.AddInt64(&calls, 1)
		return stats.Results{}, boom
	}})
	job := Job{Config: config.Preset(2), Kernel: "cjpeg"}
	if err := FirstErr(e.Run([]Job{job})); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := cache.Load(job.Fingerprint()); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed job left a cache entry (err=%v)", err)
	}
}
