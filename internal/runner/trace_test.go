package runner

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"clustervp/internal/config"
)

// TestTraceReplayMatchesInProcess is the engine-level half of the
// round-trip contract: a job replayed from a materialized trace file
// must produce the same Results as the same job synthesized in-process.
func TestTraceReplayMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	dir := t.TempDir()
	cfg := config.Preset(2).WithVP(config.VPStride)
	inproc := Job{Config: cfg, Kernel: "cjpeg", Scale: 1}
	jobs, err := MaterializeTraces(dir, []Job{inproc})
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Trace == "" {
		t.Fatal("MaterializeTraces did not attach a trace path")
	}
	want, err := Simulate(inproc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("trace replay diverged from in-process run:\n got %+v\nwant %+v", got, want)
	}
}

// TestMaterializeTracesDedupes verifies a workload shared by many grid
// points is encoded once, and that a second materialization against the
// same directory writes nothing.
func TestMaterializeTracesDedupes(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		{Config: config.Preset(1), Kernel: "rawcaudio", Scale: 1},
		{Config: config.Preset(2), Kernel: "rawcaudio", Scale: 1},
		{Config: config.Preset(4), Kernel: "rawcaudio", Scale: 1},
		{Config: config.Preset(4), Kernel: "rawcaudio", Scale: 1, Seed: 7},
	}
	out, err := MaterializeTraces(dir, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("materialized %d files (%s), want 2 (one per distinct workload)", len(ents), strings.Join(names, ", "))
	}
	if out[0].Trace != out[1].Trace || out[1].Trace != out[2].Trace {
		t.Errorf("identical workloads got different trace paths: %q %q %q", out[0].Trace, out[1].Trace, out[2].Trace)
	}
	if out[3].Trace == out[0].Trace {
		t.Errorf("seeded workload shares the unseeded trace %q", out[3].Trace)
	}
	before := map[string]int64{}
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		before[e.Name()] = fi.ModTime().UnixNano()
	}
	if _, err := MaterializeTraces(dir, jobs); err != nil {
		t.Fatal(err)
	}
	ents, _ = os.ReadDir(dir)
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.ModTime().UnixNano() != before[e.Name()] {
			t.Errorf("%s was rewritten on re-materialization", e.Name())
		}
	}
}

// TestTraceFingerprint checks the memoization-key contract for trace
// jobs: same content ⇒ same key (even under different paths), changed
// content ⇒ changed key, and trace identity dominates kernel identity.
func TestTraceFingerprint(t *testing.T) {
	dir := t.TempDir()
	base := Job{Config: config.Preset(1), Kernel: "rawcaudio", Scale: 1}
	jobs, err := MaterializeTraces(dir, []Job{base})
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]

	// Byte-identical copy under another name: fingerprints must match.
	data, err := os.ReadFile(j.Trace)
	if err != nil {
		t.Fatal(err)
	}
	copyPath := filepath.Join(dir, "copy.cvt")
	if err := os.WriteFile(copyPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	jc := j
	jc.Trace = copyPath
	if j.Fingerprint() != jc.Fingerprint() {
		t.Error("byte-identical traces under different paths fingerprint differently")
	}

	// Overwriting the file must change the key (stat revalidation).
	mutated := append(append([]byte(nil), data...), 0xFF)
	if err := os.WriteFile(copyPath, mutated, 0o666); err != nil {
		t.Fatal(err)
	}
	if j.Fingerprint() == jc.Fingerprint() {
		t.Error("overwritten trace kept its old fingerprint")
	}

	// The trace identity must dominate: same file, different Kernel
	// label, same simulation ⇒ same key.
	jl := j
	jl.Kernel = "label-only"
	if j.Fingerprint() != jl.Fingerprint() {
		t.Error("kernel label leaked into the trace-replay fingerprint")
	}

	// And in-process jobs must key on the seed.
	seeded := base
	seeded.Seed = 42
	if base.Fingerprint() == seeded.Fingerprint() {
		t.Error("input seed not covered by the fingerprint")
	}
}

// TestSimulateMissingTraceFails locks in the error contract for a
// dangling trace path: a typed failure, not a fallback to in-process
// synthesis.
func TestSimulateMissingTraceFails(t *testing.T) {
	_, err := Simulate(Job{Config: config.Preset(1), Kernel: "cjpeg", Trace: filepath.Join(t.TempDir(), "nope.cvt")})
	if err == nil {
		t.Fatal("Simulate succeeded with a missing trace file")
	}
}
