package runner

// This file is the grid exporter: it flattens engine results into JSON
// or CSV so downstream tooling and CI benchmarks can consume runs
// without scraping the aligned text tables cmd/experiments prints.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"clustervp/internal/stats"
)

// Record is the flattened, serialization-friendly form of one Result:
// the job identity, the knobs that distinguish grid points, the raw
// counters and the derived metrics.
type Record struct {
	Config string `json:"config"`
	Kernel string `json:"kernel"`
	Scale  int    `json:"scale"`
	// Clusters is the cluster count; ClusterSpecs the per-cluster shape
	// in the config spec-string grammar (repeats collapsed), which is
	// how asymmetric grid points are told apart.
	Clusters     int    `json:"clusters"`
	ClusterSpecs string `json:"cluster_specs"`
	VP           string `json:"vp"`
	Steering     string `json:"steering"`
	CommLat      int    `json:"comm_latency"`
	CommBW       int    `json:"comm_paths"`
	Topology     string `json:"topology"`
	VPTable      int    `json:"vp_table_entries"`

	Cycles       int64  `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	BusTransfers uint64 `json:"bus_transfers"`
	BusStalls    uint64 `json:"bus_stalls"`
	Reissues     uint64 `json:"reissues"`

	stats.Derived

	// PerCluster is the per-cluster dispatch/issue/occupancy breakdown
	// (omitted for failed jobs).
	PerCluster []stats.ClusterStats `json:"per_cluster,omitempty"`

	Err string `json:"error,omitempty"`
}

// ToRecord flattens one result.
func ToRecord(r Result) Record {
	c := r.Job.Config
	rec := Record{
		Config:       displayName(c),
		Kernel:       r.Job.Kernel,
		Scale:        r.Job.EffectiveScale(),
		Clusters:     c.NumClusters(),
		ClusterSpecs: c.SpecString(),
		VP:           c.VP.String(),
		Steering:     c.Steering.String(),
		CommLat:      c.CommLatency,
		CommBW:       c.CommPaths,
		Topology:     c.Topology.String(),
		VPTable:      c.VPTableEntries,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
		return rec
	}
	rec.Cycles = r.Res.Cycles
	rec.Instructions = r.Res.Instructions
	rec.BusTransfers = r.Res.BusTransfers
	rec.BusStalls = r.Res.BusStalls
	rec.Reissues = r.Res.Reissues
	rec.Derived = r.Res.Derived()
	rec.PerCluster = r.Res.PerCluster
	return rec
}

// ToRecords flattens a result slice, preserving order.
func ToRecords(rs []Result) []Record {
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = ToRecord(r)
	}
	return out
}

// WriteJSON emits the results as an indented JSON array of Records.
func WriteJSON(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToRecords(rs))
}

// csvHeader matches csvRow field for field.
var csvHeader = []string{
	"config", "kernel", "scale", "clusters", "cluster_specs", "vp", "steering",
	"comm_latency", "comm_paths", "topology", "vp_table_entries",
	"cycles", "instructions", "bus_transfers", "bus_stalls", "reissues",
	"ipc", "comm_per_instr", "imbalance", "mean_hops", "branch_accuracy",
	"vp_hit_ratio", "vp_confident_fraction", "per_cluster", "error",
}

// perClusterCSV flattens the per-cluster breakdown into one cell:
// semicolon-separated "spec|dispatched|issued|copies_out|iq_occ_sum"
// entries in cluster order (CSV columns are fixed; cluster counts are
// not).
func perClusterCSV(cs []stats.ClusterStats) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s|%d|%d|%d|%d", c.Spec, c.Dispatched, c.Issued, c.CopiesOut, c.IQOccSum)
	}
	return strings.Join(parts, ";")
}

func csvRow(r Record) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	return []string{
		r.Config, r.Kernel, strconv.Itoa(r.Scale), strconv.Itoa(r.Clusters), r.ClusterSpecs,
		r.VP, r.Steering,
		strconv.Itoa(r.CommLat), strconv.Itoa(r.CommBW), r.Topology, strconv.Itoa(r.VPTable),
		strconv.FormatInt(r.Cycles, 10), strconv.FormatUint(r.Instructions, 10),
		strconv.FormatUint(r.BusTransfers, 10), strconv.FormatUint(r.BusStalls, 10),
		strconv.FormatUint(r.Reissues, 10),
		f(r.IPC), f(r.CommPerInstr), f(r.Imbalance), f(r.MeanHops), f(r.BranchAccuracy),
		f(r.VPHitRatio), f(r.VPConfidentFraction), perClusterCSV(r.PerCluster), r.Err,
	}
}

// WriteCSV emits the results as CSV with a header row.
func WriteCSV(w io.Writer, rs []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rs {
		if err := cw.Write(csvRow(ToRecord(r))); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Export writes the results to path, choosing the format by extension:
// .csv means CSV, anything else JSON.
func Export(path string, rs []Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		err = WriteCSV(f, rs)
	} else {
		err = WriteJSON(f, rs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
