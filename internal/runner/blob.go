package runner

// BlobStore abstracts the byte-storage backend under the persistent
// result cache: a flat, keyed blob namespace. The local implementation
// is a directory (DirStore); an object store (S3, GCS, ...) slots in
// behind the same interface, which is what lets several clusterd
// replicas share one cache backend in fleet mode without the cache
// framing knowing or caring where the bytes live.
//
// Keys are filesystem-safe names chosen by the caller (the result
// cache uses "<sha256-of-fingerprint>.cvr"). Implementations must be
// safe for concurrent use both across goroutines and across processes
// sharing the backend: Put publishes atomically — a concurrent Get on
// any replica observes either the previous complete blob or the new
// complete blob, never a torn write — and overwrites are
// last-writer-wins.

import (
	"os"
	"path/filepath"
)

// BlobStore is a flat keyed byte store with atomic publication.
type BlobStore interface {
	// Get returns the blob's full contents, or an error wrapping
	// os.ErrNotExist when the key has never been published.
	Get(key string) ([]byte, error)
	// Put atomically publishes data under key, replacing any previous
	// blob.
	Put(key string, data []byte) error
}

// DirStore is the local-directory BlobStore: one file per key,
// published via temp file + rename so readers — other goroutines or
// other replicas sharing the directory — only ever observe complete
// blobs.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a blob store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store root.
func (s *DirStore) Dir() string { return s.dir }

// Path returns the file a key is stored at.
func (s *DirStore) Path(key string) string { return filepath.Join(s.dir, key) }

// Get implements BlobStore (os.ReadFile reports missing keys as
// os.ErrNotExist-wrapped errors, which is exactly the contract).
func (s *DirStore) Get(key string) ([]byte, error) {
	return os.ReadFile(s.Path(key))
}

// Put implements BlobStore: write to a hidden temp file in the same
// directory, then rename into place. Temp names start with "." so a
// crashed writer's leftovers can never collide with a real key.
func (s *DirStore) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

var _ BlobStore = (*DirStore)(nil)
