package runner

// BlobStore-layer tests: the framing works over any backend (a memory
// store stands in for an object store), DirStore keeps the atomic
// publish + not-exist contract, and two caches sharing one directory —
// the fleet's shared-cache-backend arrangement — never observe torn or
// cross-keyed entries under concurrent publish.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// memStore is an in-memory BlobStore standing in for a remote object
// store: same contract, no filesystem.
type memStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
	puts  int
}

func newMemStore() *memStore { return &memStore{blobs: make(map[string][]byte)} }

func (s *memStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		return nil, fmt.Errorf("memstore: %q: %w", key, os.ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

func (s *memStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = append([]byte(nil), data...)
	s.puts++
	return nil
}

// TestBlobCacheOverMemoryStore: the ResultCache contract holds over a
// non-filesystem backend — the framing is backend-agnostic.
func TestBlobCacheOverMemoryStore(t *testing.T) {
	store := newMemStore()
	c := NewBlobCache(store)
	if _, ok := c.Get("fp"); ok {
		t.Fatal("empty store reported a hit")
	}
	if _, err := c.Load("fp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load on empty store = %v, want os.ErrNotExist", err)
	}
	want := testResults(77)
	if err := c.Put("fp", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("fp")
	if !ok || got.Cycles != want.Cycles || got.Benchmark != want.Benchmark {
		t.Fatalf("round trip over memory store: ok=%v got=%+v", ok, got)
	}

	// Damage the blob in place: the framing must classify it, and Get
	// must miss — regardless of backend.
	key := cacheKey("fp")
	store.mu.Lock()
	store.blobs[key] = store.blobs[key][:len(store.blobs[key])/2]
	store.mu.Unlock()
	if _, ok := c.Get("fp"); ok {
		t.Fatal("truncated blob served as a hit")
	}
	if _, err := c.Load("fp"); !errors.Is(err, ErrCacheTruncated) {
		t.Errorf("Load of truncated blob = %v, want ErrCacheTruncated", err)
	}
}

// TestEngineOverBlobStore: the engine's Cache option accepts any
// BlobStore-backed cache, and a second engine over the same store
// resolves everything without simulating.
func TestEngineOverBlobStore(t *testing.T) {
	store := newMemStore()
	jobs := cacheTestJobs()

	var cold int64
	e1 := countingEngine(NewBlobCache(store), &cold)
	if err := FirstErr(e1.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if cold != int64(len(jobs)) {
		t.Fatalf("cold engine simulated %d, want %d", cold, len(jobs))
	}

	var warm int64
	e2 := countingEngine(NewBlobCache(store), &warm)
	if err := FirstErr(e2.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if warm != 0 || e2.CacheHits() != int64(len(jobs)) {
		t.Fatalf("warm engine simulated %d (cache hits %d), want 0 (%d)", warm, e2.CacheHits(), len(jobs))
	}
}

// TestDirStoreContract pins the BlobStore semantics of the local
// backend: not-exist misses, overwrite wins, and no leftover temp
// files after publishes.
func TestDirStoreContract(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Get on empty store = %v, want os.ErrNotExist", err)
	}
	if err := s.Put("k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "two" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "k" {
		t.Errorf("store dir holds %d entries (want just %q): %v", len(ents), "k", ents)
	}
}

// TestSharedDirConcurrentPublish is the fleet arrangement in miniature:
// several DiskCaches (distinct handles, as replicas would hold) over
// ONE directory, concurrently publishing and reading the same
// fingerprints. Every hit must decode to the exact results some writer
// published — the CRC framing plus atomic rename make a torn or mixed
// read impossible. Run under -race.
func TestSharedDirConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	const replicas, rounds, fps = 3, 25, 4

	caches := make([]*DiskCache, replicas)
	for i := range caches {
		c, err := NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
	}

	var wg sync.WaitGroup
	errs := make(chan error, replicas*rounds*fps)
	for r, c := range caches {
		wg.Add(1)
		go func(r int, c *DiskCache) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for k := 0; k < fps; k++ {
					fp := fmt.Sprintf("fp-%d", k)
					// Identical fingerprint ⇒ identical results, so
					// concurrent writers race benignly: the cycles value
					// is a function of the key alone.
					want := testResults(int64(1000 + k))
					if err := c.Put(fp, want); err != nil {
						errs <- fmt.Errorf("replica %d put %s: %w", r, fp, err)
						return
					}
					got, ok := c.Get(fp)
					if !ok {
						errs <- fmt.Errorf("replica %d: miss on %s just after publish", r, fp)
						return
					}
					if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
						errs <- fmt.Errorf("replica %d: torn read on %s: got cycles=%d want %d",
							r, fp, got.Cycles, want.Cycles)
						return
					}
				}
			}
		}(r, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles every key decodes cleanly on a fresh
	// handle, and no temp files leaked.
	fresh, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < fps; k++ {
		fp := fmt.Sprintf("fp-%d", k)
		if res, err := fresh.Load(fp); err != nil || res.Cycles != int64(1000+k) {
			t.Errorf("final Load(%s) = cycles %d, err %v", fp, res.Cycles, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != fps {
		t.Errorf("shared dir holds %d files after the storm, want %d", len(ents), fps)
	}
}
