package runner

import (
	"bytes"
	"strings"
	"testing"
)

const benchOutput = `
goos: linux
goarch: amd64
pkg: clustervp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimSteadyState-8   	   10000	      2100 ns/op	       1 B/op	       0 allocs/op
BenchmarkSimSteadyState-8   	   10000	      1999 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimSteadyState-8   	   10000	      2050 ns/op	       2 B/op	       1 allocs/op
BenchmarkSimulatorThroughput-8 	      49	  44350485 ns/op	   4959251 sim-instrs/s	17586432 B/op	   10966 allocs/op
BenchmarkCalibration-8      	  120000	     10000 ns/op
PASS
ok  	clustervp	2.601s
`

func TestParseBenchMerges(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(recs), recs)
	}
	ss := recs[0]
	if ss.Name != "BenchmarkSimSteadyState" || ss.Runs != 3 {
		t.Fatalf("bad merged record: %+v", ss)
	}
	if ss.NsPerOp != 1999 {
		t.Errorf("merged ns/op = %v, want the minimum 1999", ss.NsPerOp)
	}
	if ss.AllocsPerOp != 1 || ss.BytesPerOp != 2 {
		t.Errorf("merged allocs/B = %v/%v, want the maxima 1/2", ss.AllocsPerOp, ss.BytesPerOp)
	}
	tp := recs[1]
	if tp.Metrics["sim-instrs/s"] != 4959251 {
		t.Errorf("custom metric lost: %+v", tp.Metrics)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sim-instrs/s"`) {
		t.Errorf("JSON lacks the custom metric:\n%s", buf.String())
	}
}

func TestCompareBench(t *testing.T) {
	base := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkCalibration", NsPerOp: 100},
	}
	cur := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: inside 20% tolerance
		{Name: "BenchmarkB", NsPerOp: 1500}, // +50%: regression
		{Name: "BenchmarkNew", NsPerOp: 9e9},
		{Name: "BenchmarkCalibration", NsPerOp: 100},
	}
	regs := CompareBench(base, cur, 0.2, "")
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB") {
		t.Fatalf("regressions = %v, want exactly BenchmarkB", regs)
	}

	// Same shape on a machine 2x slower: calibration must absorb it.
	slower := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 2200},
		{Name: "BenchmarkB", NsPerOp: 2100},
		{Name: "BenchmarkCalibration", NsPerOp: 200},
	}
	if regs := CompareBench(base, slower, 0.2, "BenchmarkCalibration"); len(regs) != 0 {
		t.Errorf("calibrated comparison flagged a uniformly slower machine: %v", regs)
	}
	// Without calibration the same numbers regress (all three rows,
	// including the probe itself, which is only exempt when named).
	if regs := CompareBench(base, slower, 0.2, ""); len(regs) != 3 {
		t.Errorf("uncalibrated comparison found %d regressions, want 3", len(regs))
	}
}
