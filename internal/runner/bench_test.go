package runner

import (
	"bytes"
	"strings"
	"testing"
)

const benchOutput = `
goos: linux
goarch: amd64
pkg: clustervp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimSteadyState-8   	   10000	      2100 ns/op	       1 B/op	       0 allocs/op
BenchmarkSimSteadyState-8   	   10000	      1999 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimSteadyState-8   	   10000	      2050 ns/op	       2 B/op	       1 allocs/op
BenchmarkSimulatorThroughput-8 	      49	  44350485 ns/op	   4959251 sim-instrs/s	17586432 B/op	   10966 allocs/op
BenchmarkCalibration-8      	  120000	     10000 ns/op
PASS
ok  	clustervp	2.601s
`

func TestParseBenchMerges(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(recs), recs)
	}
	ss := recs[0]
	if ss.Name != "BenchmarkSimSteadyState" || ss.Runs != 3 {
		t.Fatalf("bad merged record: %+v", ss)
	}
	if ss.NsPerOp != 1999 {
		t.Errorf("merged ns/op = %v, want the minimum 1999", ss.NsPerOp)
	}
	if ss.AllocsPerOp != 1 || ss.BytesPerOp != 2 {
		t.Errorf("merged allocs/B = %v/%v, want the maxima 1/2", ss.AllocsPerOp, ss.BytesPerOp)
	}
	tp := recs[1]
	if tp.Metrics["sim-instrs/s"] != 4959251 {
		t.Errorf("custom metric lost: %+v", tp.Metrics)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	recs, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sim-instrs/s"`) {
		t.Errorf("JSON lacks the custom metric:\n%s", buf.String())
	}
}

func TestCompareBench(t *testing.T) {
	base := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkCalibration", NsPerOp: 100},
	}
	cur := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 1100}, // +10%: inside 20% tolerance
		{Name: "BenchmarkB", NsPerOp: 1500}, // +50%: regression
		{Name: "BenchmarkNew", NsPerOp: 9e9},
		{Name: "BenchmarkCalibration", NsPerOp: 100},
	}
	regs := CompareBench(base, cur, 0.2, "")
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB") {
		t.Fatalf("regressions = %v, want exactly BenchmarkB", regs)
	}

	// Same shape on a machine 2x slower: calibration must absorb it.
	slower := []BenchRecord{
		{Name: "BenchmarkA", NsPerOp: 2200},
		{Name: "BenchmarkB", NsPerOp: 2100},
		{Name: "BenchmarkCalibration", NsPerOp: 200},
	}
	if regs := CompareBench(base, slower, 0.2, "BenchmarkCalibration"); len(regs) != 0 {
		t.Errorf("calibrated comparison flagged a uniformly slower machine: %v", regs)
	}
	// Without calibration the same numbers regress (all three rows,
	// including the probe itself, which is only exempt when named).
	if regs := CompareBench(base, slower, 0.2, ""); len(regs) != 3 {
		t.Errorf("uncalibrated comparison found %d regressions, want 3", len(regs))
	}
}

func TestCompareBenchAllocGate(t *testing.T) {
	base := []BenchRecord{
		{Name: "BenchmarkZero", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkDirty", NsPerOp: 1000, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkCalibration", NsPerOp: 100},
	}
	for _, tc := range []struct {
		name string
		cur  BenchRecord
		want int // regressions expected
		frag string
	}{
		{"stays_zero", BenchRecord{Name: "BenchmarkZero", NsPerOp: 1000}, 0, ""},
		{"bytes_leak", BenchRecord{Name: "BenchmarkZero", NsPerOp: 1000, BytesPerOp: 5}, 1, "5 B/op"},
		{"allocs_leak", BenchRecord{Name: "BenchmarkZero", NsPerOp: 1000, AllocsPerOp: 1}, 1, "1 allocs/op"},
		{"both_leak", BenchRecord{Name: "BenchmarkZero", NsPerOp: 1000, BytesPerOp: 8, AllocsPerOp: 1}, 2, "zero-allocation gate"},
		// A benchmark that already allocated in the baseline is governed
		// by review, not the gate.
		{"dirty_grows", BenchRecord{Name: "BenchmarkDirty", NsPerOp: 1000, BytesPerOp: 128, AllocsPerOp: 4}, 0, ""},
		// New benchmarks have no baseline to hold them to.
		{"new_bench", BenchRecord{Name: "BenchmarkNew", NsPerOp: 1000, BytesPerOp: 999, AllocsPerOp: 9}, 0, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			regs := CompareBench(base, []BenchRecord{tc.cur}, 0.2, "")
			if len(regs) != tc.want {
				t.Fatalf("regressions = %v, want %d", regs, tc.want)
			}
			if tc.frag != "" && !strings.Contains(strings.Join(regs, "\n"), tc.frag) {
				t.Errorf("regressions %v lack %q", regs, tc.frag)
			}
		})
	}

	// The alloc gate ignores calibration scaling and fires even on the
	// calibration benchmark itself, and even when ns/op improved.
	calBase := []BenchRecord{{Name: "BenchmarkCalibration", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0}}
	calCur := []BenchRecord{{Name: "BenchmarkCalibration", NsPerOp: 50, BytesPerOp: 16, AllocsPerOp: 1}}
	if regs := CompareBench(calBase, calCur, 0.2, "BenchmarkCalibration"); len(regs) != 2 {
		t.Errorf("alloc gate skipped the calibration benchmark: %v", regs)
	}
}
