package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/stats"
)

// stubRun returns a Run function whose Results encode the job identity
// (cycles = kernel length, instructions = scale), with an optional
// per-call hook.
func stubRun(hook func(Job)) func(Job) (stats.Results, error) {
	return func(j Job) (stats.Results, error) {
		if hook != nil {
			hook(j)
		}
		return stats.Results{
			Config:       j.Config.Name,
			Benchmark:    j.Kernel,
			Cycles:       int64(len(j.Kernel)),
			Instructions: uint64(j.EffectiveScale()),
		}, nil
	}
}

func kernelNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%02d", i)
	}
	return out
}

func TestGridExpansionOrder(t *testing.T) {
	g := Grid{
		Configs: []config.Config{config.Preset(1), config.Preset(4)},
		Kernels: []string{"a", "b"},
		Scales:  []int{1, 2},
	}
	jobs := g.Jobs()
	want := []struct {
		clusters int
		kernel   string
		scale    int
	}{
		{1, "a", 1}, {1, "a", 2}, {1, "b", 1}, {1, "b", 2},
		{4, "a", 1}, {4, "a", 2}, {4, "b", 1}, {4, "b", 2},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i, w := range want {
		j := jobs[i]
		if j.Config.NumClusters() != w.clusters || j.Kernel != w.kernel || j.Scale != w.scale {
			t.Errorf("job %d = %dc/%s@%d, want %dc/%s@%d",
				i, j.Config.NumClusters(), j.Kernel, j.Scale, w.clusters, w.kernel, w.scale)
		}
	}
	if got := (Grid{Configs: g.Configs, Kernels: []string{"a"}}).Jobs(); len(got) != 2 || got[0].Scale != 1 {
		t.Errorf("nil Scales should default to scale 1, got %+v", got)
	}
}

// TestDeterministicOrder checks that results come back in job order even
// when workers finish in scrambled order.
func TestDeterministicOrder(t *testing.T) {
	run := func(j Job) (stats.Results, error) {
		// Later grid positions finish earlier.
		time.Sleep(time.Duration('9'-j.Kernel[2]) * time.Millisecond)
		return stubRun(nil)(j)
	}
	e := New(Options{Workers: 4, Run: run})
	jobs := Grid{Configs: []config.Config{config.Preset(2)}, Kernels: kernelNames(10)}.Jobs()
	rs := e.Run(jobs)
	if len(rs) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(rs), len(jobs))
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Res.Benchmark != jobs[i].Kernel {
			t.Errorf("result %d is for kernel %s, want %s", i, r.Res.Benchmark, jobs[i].Kernel)
		}
	}
}

// TestMemoizationDedup checks that duplicate jobs — within one batch and
// across batches — are executed exactly once.
func TestMemoizationDedup(t *testing.T) {
	var calls int64
	e := New(Options{Workers: 4, Run: stubRun(func(Job) { atomic.AddInt64(&calls, 1) })})

	base := config.Preset(1) // shared baseline, as under -exp all
	jobs := Grid{Configs: []config.Config{base, base}, Kernels: kernelNames(5)}.Jobs()
	rs := e.Run(jobs)
	if err := FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 5 {
		t.Fatalf("duplicate configs in one batch: %d executions, want 5", got)
	}
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", e.Executed())
	}

	// A second "figure" reusing the baseline plus one new config only
	// pays for the new config.
	jobs2 := Grid{Configs: []config.Config{base, config.Preset(4)}, Kernels: kernelNames(5)}.Jobs()
	if err := FirstErr(e.Run(jobs2)); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 10 {
		t.Fatalf("shared baseline re-simulated: %d executions, want 10", got)
	}

	// Name is cosmetic: renaming an identical config must still hit.
	renamed := base
	renamed.Name = "centralized-reference"
	if err := FirstErr(e.Run(Grid{Configs: []config.Config{renamed}, Kernels: kernelNames(5)}.Jobs())); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 10 {
		t.Fatalf("renamed identical config missed the memo: %d executions, want 10", got)
	}

	// But changing a simulation-relevant knob must miss.
	lat4 := base.WithComm(4, 0)
	if err := FirstErr(e.Run(Grid{Configs: []config.Config{lat4}, Kernels: kernelNames(5)}.Jobs())); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 15 {
		t.Fatalf("distinct config hit the memo: %d executions, want 15", got)
	}
}

// TestWorkerPoolBound checks that at most Workers simulations run
// concurrently, while duplicate jobs waiting on the memo don't count
// against the pool.
func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	var inFlight, peak int64
	run := func(j Job) (stats.Results, error) {
		n := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return stubRun(nil)(j)
	}
	e := New(Options{Workers: workers, Run: run})
	jobs := Grid{
		Configs: []config.Config{config.Preset(1), config.Preset(2), config.Preset(4)},
		Kernels: kernelNames(8),
	}.Jobs()
	// Append duplicates of the whole grid: they wait on memo entries,
	// not on pool slots.
	jobs = append(jobs, jobs...)
	if err := FirstErr(e.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
	if e.Executed() != 24 {
		t.Fatalf("Executed() = %d, want 24", e.Executed())
	}
}

// TestErrorPropagation checks that one failing job surfaces through
// FirstErr with its identity while the rest of the grid completes.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("simulation diverged")
	run := func(j Job) (stats.Results, error) {
		if j.Kernel == "k03" {
			return stats.Results{}, boom
		}
		return stubRun(nil)(j)
	}
	e := New(Options{Workers: 2, Run: run})
	rs := e.Run(Grid{Configs: []config.Config{config.Preset(2)}, Kernels: kernelNames(6)}.Jobs())
	err := FirstErr(rs)
	if !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "k03") {
		t.Errorf("error %q does not identify the failing job", err)
	}
	for i, r := range rs {
		if r.Job.Kernel == "k03" {
			if r.Err == nil {
				t.Errorf("result %d should carry the error", i)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("healthy job %d poisoned: %v", i, r.Err)
		}
		if r.Res.Benchmark != r.Job.Kernel {
			t.Errorf("healthy job %d has wrong result %q", i, r.Res.Benchmark)
		}
	}
	// Errors are memoized too: re-running must not re-execute.
	before := e.Executed()
	if err := FirstErr(e.Run(jobsOf(rs[:4]))); !errors.Is(err, boom) {
		t.Fatalf("memoized error lost: %v", err)
	}
	if e.Executed() != before {
		t.Fatalf("failed job re-executed: %d -> %d", before, e.Executed())
	}
}

// jobsOf projects results back to their jobs (test helper).
func jobsOf(rs []Result) []Job {
	out := make([]Job, len(rs))
	for i, r := range rs {
		out[i] = r.Job
	}
	return out
}

// TestConcurrentRunCalls checks the engine is safe when several grids
// run at once and share fingerprints.
func TestConcurrentRunCalls(t *testing.T) {
	var calls int64
	e := New(Options{Workers: 4, Run: stubRun(func(Job) {
		atomic.AddInt64(&calls, 1)
		time.Sleep(time.Millisecond)
	})})
	jobs := Grid{Configs: []config.Config{config.Preset(1)}, Kernels: kernelNames(10)}.Jobs()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := FirstErr(e.Run(jobs)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt64(&calls); got != 10 {
		t.Fatalf("concurrent identical grids: %d executions, want 10", got)
	}
}

// TestProgressLines checks one line per executed job lands on the
// progress stream, counting fresh work only.
func TestProgressLines(t *testing.T) {
	var buf syncBuffer
	e := New(Options{Workers: 2, Run: stubRun(nil), Progress: &buf})
	jobs := Grid{Configs: []config.Config{config.Preset(2)}, Kernels: kernelNames(4)}.Jobs()
	e.Run(append(jobs, jobs...)) // duplicates are silent
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	// The denominator grows as jobs are claimed; the 4th simulation to
	// finish must print [4/4] (writes may interleave, so search all
	// lines rather than assuming it lands last).
	if !strings.Contains(buf.String(), "[4/4]") {
		t.Errorf("no [4/4] progress line in:\n%s", buf.String())
	}
	// A fully-memoized batch is silent.
	buf.Reset()
	e.Run(jobs)
	if buf.String() != "" {
		t.Errorf("memo hits produced progress output: %q", buf.String())
	}
}

type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}
func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sb.Reset()
}

// TestFingerprintCoversConfig perturbs every Config field via
// reflection and checks each one (recursively, except the cosmetic
// Name) changes the fingerprint, so fields added to Config later are
// provably covered.
func TestFingerprintCoversConfig(t *testing.T) {
	job := Job{Config: config.Preset(2), Kernel: "k", Scale: 1}
	base := job.Fingerprint()

	renamed := job
	renamed.Config.Name = "other-name"
	if renamed.Fingerprint() != base {
		t.Error("cosmetic Name field must not affect the fingerprint")
	}
	if (Job{Config: job.Config, Kernel: "k2", Scale: 1}).Fingerprint() == base {
		t.Error("kernel must affect the fingerprint")
	}
	if (Job{Config: job.Config, Kernel: "k", Scale: 2}).Fingerprint() == base {
		t.Error("scale must affect the fingerprint")
	}

	perturbFields(t, &job, reflect.ValueOf(&job.Config).Elem(), "Config.", base)
}

// perturbFields bumps each field of v in place, asserts job's
// fingerprint moves, and restores the field.
func perturbFields(t *testing.T, job *Job, v reflect.Value, path, base string) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := path + v.Type().Field(i).Name
		if name == "Config.Name" {
			continue
		}
		switch f.Kind() {
		case reflect.Struct:
			perturbFields(t, job, f, name+".", base)
		case reflect.Int, reflect.Int64:
			old := f.Int()
			f.SetInt(old + 1)
			if job.Fingerprint() == base {
				t.Errorf("field %s does not affect the fingerprint", name)
			}
			f.SetInt(old)
		case reflect.Bool:
			f.SetBool(!f.Bool())
			if job.Fingerprint() == base {
				t.Errorf("field %s does not affect the fingerprint", name)
			}
			f.SetBool(!f.Bool())
		case reflect.String:
			old := f.String()
			f.SetString(old + "?")
			if job.Fingerprint() == base {
				t.Errorf("field %s does not affect the fingerprint", name)
			}
			f.SetString(old)
		case reflect.Slice:
			// Every element must be covered (Config.Clusters is a slice
			// of ClusterSpec structs), and so must the slice length.
			for j := 0; j < f.Len(); j++ {
				el := f.Index(j)
				if el.Kind() != reflect.Struct {
					t.Fatalf("field %s element kind %s: teach this test to perturb it", name, el.Kind())
				}
				perturbFields(t, job, el, fmt.Sprintf("%s[%d].", name, j), base)
			}
			origLen := f.Len()
			if origLen == 0 {
				t.Fatalf("field %s is empty; cannot prove length coverage", name)
			}
			f.Set(reflect.Append(f, f.Index(0)))
			if job.Fingerprint() == base {
				t.Errorf("length of %s does not affect the fingerprint", name)
			}
			f.Set(f.Slice(0, origLen))
		default:
			t.Fatalf("field %s has unhandled kind %s: teach this test to perturb it", name, f.Kind())
		}
	}
	if job.Fingerprint() != base {
		t.Fatalf("perturbation under %s not restored", path)
	}
}

// TestSnapshotDeterministic checks Snapshot returns every unique job in
// a stable order.
func TestSnapshotDeterministic(t *testing.T) {
	e := New(Options{Workers: 4, Run: stubRun(nil)})
	jobs := Grid{
		Configs: []config.Config{config.Preset(4), config.Preset(1)},
		Kernels: kernelNames(6),
	}.Jobs()
	e.Run(append(jobs, jobs...))
	snap := e.Snapshot()
	if len(snap) != 12 {
		t.Fatalf("snapshot has %d entries, want 12 unique", len(snap))
	}
	again := e.Snapshot()
	for i := range snap {
		if snap[i].Job.Fingerprint() != again[i].Job.Fingerprint() {
			t.Fatalf("snapshot order unstable at %d", i)
		}
	}
}

// TestSimulateIntegration drives the real simulator through the engine
// on one small kernel and cross-checks the engine path against the
// direct path.
func TestSimulateIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	job := Job{Config: config.Preset(1), Kernel: "gsmdec", Scale: 1}
	direct, err := Simulate(job)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	rs := e.Run([]Job{job, job})
	if err := FirstErr(rs); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1", e.Executed())
	}
	for i, r := range rs {
		if r.Res.Cycles != direct.Cycles || r.Res.Instructions != direct.Instructions {
			t.Errorf("engine result %d (%d cycles) differs from direct run (%d cycles)",
				i, r.Res.Cycles, direct.Cycles)
		}
	}
	if _, err := Simulate(Job{Config: config.Preset(1), Kernel: "nope"}); err == nil {
		t.Error("unknown kernel should error")
	}
}
