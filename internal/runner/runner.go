// Package runner is the experiment-grid engine behind cmd/experiments
// and clustervp.RunGrid: it expands declarative grids of (machine
// configuration × kernel × scale) into jobs, executes them on a bounded
// worker pool, and memoizes results by a canonical fingerprint so a
// configuration shared by several figures (e.g. the 1-cluster
// centralized reference) is simulated exactly once per engine.
//
// Results always come back in job order, regardless of the order in
// which workers finish, so grid output is deterministic under any
// -jobs setting.
package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/interconnect"
	"clustervp/internal/obs"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// Job is one simulation: a machine configuration applied to a suite
// kernel at a workload scale, or to a pre-recorded .cvt trace file.
type Job struct {
	Config config.Config
	Kernel string
	Scale  int
	// Seed re-seeds the kernel's pseudo-random input streams (0 = the
	// canonical inputs). Ignored when Trace is set — a trace file bakes
	// its inputs in.
	Seed uint64
	// Trace, when non-empty, replays the .cvt file at that path instead
	// of synthesizing the kernel in-process. Kernel then only labels the
	// results (falling back to the trace's own header name when empty).
	Trace string
}

// EffectiveScale is the scale actually simulated (scales below 1 clamp
// to 1, matching clustervp.Run).
func (j Job) EffectiveScale() int {
	if j.Scale < 1 {
		return 1
	}
	return j.Scale
}

// Fingerprint is the canonical memoization key: the full Config value
// (Name is cosmetic and zeroed out) plus the workload identity — kernel
// name, effective scale and input seed for in-process synthesis, or a
// content digest for trace replays. Deriving it from the struct itself
// means a field added to Config later is covered automatically — at
// worst a cache miss, never a silent false hit. Two jobs with equal
// fingerprints produce identical Results, so the engine runs only one
// of them.
//
// Trace files are fingerprinted by content (CRC-64 plus size), not by
// path: two grids pointing at byte-identical traces share one
// simulation, and overwriting a trace file between runs changes the key
// instead of silently serving stale results. An unreadable trace
// fingerprints as its path plus the stat error, which still memoizes
// the (failing) job deterministically.
func (j Job) Fingerprint() string {
	c := j.Config
	c.Name = ""
	if j.Trace != "" {
		return fmt.Sprintf("%+v|trace:%s", c, traceDigest(j.Trace))
	}
	return fmt.Sprintf("%+v|%s@%d~%d", c, j.Kernel, j.EffectiveScale(), j.Seed)
}

// displayName labels a configuration in progress lines and exported
// records.
func displayName(c config.Config) string {
	if c.Name != "" {
		return c.Name
	}
	if c.NumClusters() > 0 && !c.Homogeneous() {
		return c.SpecString()
	}
	return fmt.Sprintf("%dcluster", c.NumClusters())
}

// String identifies the job in progress lines and errors. The topology
// is spelled out only when it departs from the paper's default bus
// fabric, keeping the common progress lines compact.
func (j Job) String() string {
	topo := ""
	if j.Config.Topology != interconnect.KindBus {
		topo = ",topo=" + j.Config.Topology.String()
	}
	work := j.Kernel
	if j.Trace != "" {
		work = "replay:" + j.Trace
	} else if j.Seed != 0 {
		work = fmt.Sprintf("%s~%d", j.Kernel, j.Seed)
	}
	return fmt.Sprintf("%s/%s(vp=%s,steer=%s%s)@%d",
		displayName(j.Config), work, j.Config.VP, j.Config.Steering, topo, j.EffectiveScale())
}

// Via reports how a job's result was resolved. The service layer uses
// it to attribute work to tenants: only ViaSimulated occupied a worker,
// ViaCache cost one disk read, ViaMemo cost nothing.
type Via uint8

const (
	// ViaSimulated: the job ran through the timing simulator.
	ViaSimulated Via = iota
	// ViaMemo: served by the in-process memo (including duplicates that
	// waited on an in-flight simulation).
	ViaMemo
	// ViaCache: served by the persistent ResultCache without simulating.
	ViaCache
)

func (v Via) String() string {
	switch v {
	case ViaMemo:
		return "memo"
	case ViaCache:
		return "cache"
	default:
		return "simulated"
	}
}

// Result pairs a job with its outcome.
type Result struct {
	Job Job
	Res stats.Results
	Err error
	// Via records whether the result came from the simulator, the
	// in-process memo, or the persistent cache.
	Via Via
}

// Grid declares a cross-product of configurations, kernels and scales.
type Grid struct {
	Configs []config.Config
	Kernels []string
	Scales  []int
}

// Jobs expands the grid in row-major (config, kernel, scale) order. A
// nil Scales field means scale 1.
func (g Grid) Jobs() []Job {
	scales := g.Scales
	if len(scales) == 0 {
		scales = []int{1}
	}
	jobs := make([]Job, 0, len(g.Configs)*len(g.Kernels)*len(scales))
	for _, c := range g.Configs {
		for _, k := range g.Kernels {
			for _, s := range scales {
				jobs = append(jobs, Job{Config: c, Kernel: k, Scale: s})
			}
		}
	}
	return jobs
}

// FirstErr returns the first failed result in grid order, annotated
// with the job that produced it, or nil if every job succeeded.
func FirstErr(rs []Result) error {
	for _, r := range rs {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Job, r.Err)
		}
	}
	return nil
}

// Options configure an Engine.
type Options struct {
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Run overrides the simulator (tests inject counting or failing
	// stubs); nil means the real trace-driven timing simulator.
	Run func(Job) (stats.Results, error)
	// Progress, when non-nil, receives one line per executed
	// (non-memoized) job. Memo hits are silent.
	Progress io.Writer
	// Cache, when non-nil, persists results across engines keyed by
	// Job.Fingerprint(): a memo miss consults the cache before
	// simulating, and every successful simulation is written back.
	// Cache hits do not count as executed jobs and do not occupy a
	// worker. Put failures are counted (CachePutErrors) but never fail
	// the job — a full disk degrades the cache, not the grid.
	Cache ResultCache
	// ArenaBytes selects the decoded-trace arena for this engine's
	// default simulator: 0 shares the process-wide arena
	// (DefaultArenaBudget), a negative value disables arena decoding
	// (every trace job streams via the pipelined reader), and a positive
	// value gives the engine a private arena with that byte budget.
	// Ignored when Run is set.
	ArenaBytes int64
	// NoSimPool disables simulator reuse for this engine's default
	// simulator: every job constructs a fresh Sim instead of drawing
	// from the process-wide pool. Results are identical either way —
	// the pool is purely an allocation optimization — so this exists
	// for A/B measurement and as an escape hatch. Ignored when Run is
	// set.
	NoSimPool bool
}

// entry is one memo slot; ready closes once res/err are set, so
// duplicate jobs in flight wait instead of re-simulating.
type entry struct {
	job   Job
	ready chan struct{}
	res   stats.Results
	err   error
	via   Via // how the claiming goroutine resolved the slot
}

// Engine executes jobs with memoization. It is safe for concurrent use;
// the memo persists across Run calls, which is how cmd/experiments
// shares baselines between figures under -exp all.
type Engine struct {
	workers  int
	run      func(Job) (stats.Results, error)
	progress io.Writer
	cache    ResultCache
	sem      chan struct{}

	mu   sync.Mutex
	memo map[string]*entry

	// claimed counts memo slots ever claimed (simulations started or
	// queued); finished counts simulations completed. Progress lines
	// print [finished/claimed], which stays consistent under
	// concurrent Run calls because each unique job is counted exactly
	// once, at claim time.
	claimed  int64
	finished int64
	// cacheHits counts memo misses served from the persistent cache
	// without simulating; cachePutErrs counts failed write-backs.
	cacheHits    int64
	cachePutErrs int64
	// simInstrs accumulates committed instructions across executed
	// simulations (memo and cache hits add nothing — no instructions
	// were simulated for them).
	simInstrs uint64
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	run := opts.Run
	if run == nil {
		arena := defaultArena
		if opts.ArenaBytes < 0 {
			arena = nil
		} else if opts.ArenaBytes > 0 {
			arena = trace.NewArena(opts.ArenaBytes)
		}
		pool := core.DefaultPool
		if opts.NoSimPool {
			pool = nil
		}
		run = func(j Job) (stats.Results, error) { return simulate(j, 0, nil, arena, pool) }
	}
	return &Engine{
		workers:  w,
		run:      run,
		progress: opts.Progress,
		cache:    opts.Cache,
		sem:      make(chan struct{}, w),
		memo:     make(map[string]*entry),
	}
}

// Workers reports the worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Executed reports how many jobs have actually been simulated (memo
// and cache misses) over the engine's lifetime.
func (e *Engine) Executed() int64 { return atomic.LoadInt64(&e.finished) }

// CacheHits reports how many memo misses were served from the
// persistent ResultCache without simulating.
func (e *Engine) CacheHits() int64 { return atomic.LoadInt64(&e.cacheHits) }

// CachePutErrors reports how many cache write-backs failed (the jobs
// themselves still succeeded).
func (e *Engine) CachePutErrors() int64 { return atomic.LoadInt64(&e.cachePutErrs) }

// SimInstructions reports the total committed instructions across every
// simulation the engine actually executed — the numerator of a
// sim-instrs/s throughput figure. Memo and cache hits add nothing.
func (e *Engine) SimInstructions() uint64 { return atomic.LoadUint64(&e.simInstrs) }

// Run executes the jobs and returns results in job order. Duplicate
// jobs — within this call or against earlier calls on the same engine —
// are simulated once and share the memoized result. Per-job errors are
// reported in the results; use FirstErr to collapse them.
func (e *Engine) Run(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			res, err, via := e.one(j)
			out[i] = Result{Job: j, Res: res, Err: err, Via: via}
		}(i, j)
	}
	wg.Wait()
	return out
}

// one resolves a single job through the memo, simulating at most once
// per fingerprint. Only the goroutine that claims the memo slot takes a
// worker token; duplicates block on ready without occupying the pool.
// The returned Via distinguishes the claiming resolution (simulated or
// cache) from duplicates, which always report a memo hit.
func (e *Engine) one(j Job) (stats.Results, error, Via) {
	fp := j.Fingerprint()
	e.mu.Lock()
	if ent, ok := e.memo[fp]; ok {
		e.mu.Unlock()
		<-ent.ready
		return ent.res, ent.err, ViaMemo
	}
	ent := &entry{job: j, ready: make(chan struct{})}
	e.memo[fp] = ent
	e.mu.Unlock()

	// Persistent-cache lookup happens outside the worker pool: a hit
	// costs one read, never a simulation slot, and stays out of the
	// [finished/claimed] progress accounting like memo hits do.
	if e.cache != nil {
		if res, ok := e.cache.Get(fp); ok {
			ent.res = res
			ent.via = ViaCache
			atomic.AddInt64(&e.cacheHits, 1)
			close(ent.ready)
			return ent.res, nil, ViaCache
		}
	}
	atomic.AddInt64(&e.claimed, 1)

	e.sem <- struct{}{}
	ent.res, ent.err = e.run(j)
	<-e.sem
	atomic.AddUint64(&e.simInstrs, ent.res.Instructions)

	if e.cache != nil && ent.err == nil {
		if err := e.cache.Put(fp, ent.res); err != nil {
			atomic.AddInt64(&e.cachePutErrs, 1)
		}
	}

	k := atomic.AddInt64(&e.finished, 1)
	close(ent.ready)

	if e.progress != nil {
		n := atomic.LoadInt64(&e.claimed)
		if ent.err != nil {
			fmt.Fprintf(e.progress, "[%d/%d] %s: error: %v\n", k, n, j, ent.err)
		} else {
			fmt.Fprintf(e.progress, "[%d/%d] %s: IPC=%.3f cycles=%d\n", k, n, j, ent.res.IPC(), ent.res.Cycles)
		}
	}
	return ent.res, ent.err, ViaSimulated
}

// Snapshot returns every completed unique job the engine has run, in a
// deterministic order (sorted by fingerprint), one Result per memo
// entry. This is the full result grid that -out exports.
func (e *Engine) Snapshot() []Result {
	e.mu.Lock()
	fps := make([]string, 0, len(e.memo))
	for fp, ent := range e.memo {
		select {
		case <-ent.ready:
			fps = append(fps, fp)
		default: // still in flight; skip
		}
	}
	sort.Strings(fps)
	out := make([]Result, len(fps))
	for i, fp := range fps {
		ent := e.memo[fp]
		out[i] = Result{Job: ent.job, Res: ent.res, Err: ent.err, Via: ent.via}
	}
	e.mu.Unlock()
	return out
}

// DefaultArenaBudget bounds the process-wide decoded-trace arena shared
// by the package-level Simulate path (and thus the clusterd service):
// distinct trace digests are decoded into the columnar in-memory form
// until this many bytes are resident; everything past the budget stays
// on the pipelined streaming path.
const DefaultArenaBudget int64 = 256 << 20

var defaultArena = trace.NewArena(DefaultArenaBudget)

// openTraceSource resolves the replay Source for a .cvt file. In order
// of preference: a Cursor over the arena-resident decoded form (decoded
// once per distinct content digest, shared read-only by every job), a
// fresh decode admitted to the arena, or — when the arena is nil, full,
// or the trace does not fit — a pipelined streaming Reader that
// overlaps decode with simulation. All three yield byte-identical
// record streams. It returns the source, the trace's header name, the
// materialization mode ("arena", "decode" or "stream" — span
// attribute material for the tracing layer), and a close func (nil
// when nothing needs closing).
func openTraceSource(path string, arena *trace.Arena) (trace.Source, string, string, func() error, error) {
	if arena != nil {
		key := traceDigest(path)
		if mt := arena.Get(key); mt != nil {
			return mt.NewCursor(), mt.Name(), SourceArena, nil, nil
		}
		if budget := arena.Remaining(); budget > 0 {
			fr, err := trace.OpenFile(path)
			if err != nil {
				return nil, "", "", nil, err
			}
			mt, derr := trace.ReadMemCapped(fr.Reader, budget)
			cerr := fr.Close()
			if derr == nil && cerr == nil {
				// Concurrent decodes of one digest can race here; the
				// loser's work is wasted but the shared survivor is
				// identical, so results never depend on who won.
				arena.Add(key, mt)
				return mt.NewCursor(), mt.Name(), SourceDecode, nil, nil
			}
			if derr != nil && !errors.Is(derr, trace.ErrNoMemForm) {
				return nil, "", "", nil, derr
			}
			// Over budget: stream instead.
		}
	}
	fr, err := trace.OpenFile(path)
	if err != nil {
		return nil, "", "", nil, err
	}
	p := trace.NewPipelined(fr.Reader)
	closeFn := func() error {
		p.Close()
		return fr.Close()
	}
	return p, fr.Name(), SourceStream, closeFn, nil
}

// Trace-materialization modes reported by newSim and recorded as the
// sim.materialize span's "source" attribute.
const (
	// SourceArena: replayed from the already-decoded arena-resident form.
	SourceArena = "arena"
	// SourceDecode: decoded from the .cvt file and admitted to the arena.
	SourceDecode = "decode"
	// SourceStream: replayed via the pipelined streaming reader.
	SourceStream = "stream"
	// SourceSynth: synthesized in-process from the kernel builder.
	SourceSynth = "synth"
)

// newSim builds the timing simulator for a job — replaying a .cvt
// trace file when one is named, otherwise synthesizing the kernel
// in-process — and returns the materialization mode (Source*) plus
// the cleanup to run after simulation (nil when nothing needs
// closing). A non-nil pool supplies a recycled Sim (returned to the
// pool by the cleanup); a non-nil arena supplies decoded trace
// sharing.
func newSim(j Job, arena *trace.Arena, pool *core.Pool) (*core.Sim, string, func() error, error) {
	var (
		src     trace.Source
		name    string
		mode    string
		closeFn func() error
	)
	if j.Trace != "" {
		s, hdrName, m, cfn, err := openTraceSource(j.Trace, arena)
		if err != nil {
			return nil, "", nil, err
		}
		src, mode, closeFn = s, m, cfn
		name = j.Kernel
		if name == "" {
			name = hdrName
		}
	} else {
		prog, err := workload.Build(j.Kernel, j.EffectiveScale(), j.Seed)
		if err != nil {
			return nil, "", nil, err
		}
		src = trace.NewExecutor(prog)
		name = prog.Name
		mode = SourceSynth
	}
	var sim *core.Sim
	var err error
	if pool != nil {
		sim, err = pool.Get(j.Config, src, name)
	} else {
		sim, err = core.NewFromSource(j.Config, src, name)
	}
	if err != nil {
		if closeFn != nil {
			closeFn()
		}
		return nil, "", nil, err
	}
	cleanup := func() error {
		var cerr error
		if closeFn != nil {
			cerr = closeFn()
		}
		if pool != nil {
			pool.Put(sim)
		}
		return cerr
	}
	return sim, mode, cleanup, nil
}

// simulate runs one job through the timing simulator with the given
// trace arena and Sim pool (either may be nil to opt out).
func simulate(j Job, every int64, fn func(core.Progress), arena *trace.Arena, pool *core.Pool) (stats.Results, error) {
	sim, _, cleanup, err := newSim(j, arena, pool)
	if err != nil {
		return stats.Results{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	if fn != nil {
		sim.SetProgress(every, fn)
	}
	return sim.Run()
}

// warmupProbeInterval is the progress period simulateTraced falls back
// to when the caller wants no progress events: frequent enough to end
// the sim.warmup span near the first commit, rare enough to stay
// invisible in the cycle loop.
const warmupProbeInterval = 10_000

// simulateTraced is simulate with span instrumentation: a
// sim.materialize child covering trace-source setup (attributed with
// the Source* mode), and a sim.run child covering the simulation
// itself, with a sim.warmup sub-span ended at the first progress
// snapshot that shows committed instructions and the coarse
// phase-cycle split (core.Sim.PhaseCycles) attached as attributes.
// Spans start and end outside the cycle loop; the only per-cycle cost
// is the phase counters core maintains unconditionally.
func simulateTraced(j Job, every int64, fn func(core.Progress), arena *trace.Arena, pool *core.Pool, parent *obs.ActiveSpan) (stats.Results, error) {
	mat := parent.StartChild("sim.materialize")
	sim, mode, cleanup, err := newSim(j, arena, pool)
	mat.SetAttr("source", mode)
	if j.Trace != "" {
		mat.SetAttr("trace", j.Trace)
	}
	mat.End()
	if err != nil {
		return stats.Results{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}

	run := parent.StartChild("sim.run")
	warm := run.StartChild("sim.warmup")
	warmDone := false
	interval := every
	if interval <= 0 {
		interval = warmupProbeInterval
	}
	// The wrapper runs on the simulation goroutine (this goroutine), so
	// plain variables are safe. Ending a span allocates, but at most
	// once per job — never per cycle.
	sim.SetProgress(interval, func(p core.Progress) {
		if !warmDone && p.Instructions > 0 {
			warmDone = true
			warm.SetAttr("cycle", obs.FormatAttr(p.Cycle))
			warm.End()
		}
		if fn != nil {
			fn(p)
		}
	})
	res, rerr := sim.Run()
	warm.End() // no-op if the probe already ended it

	wu, st, dr := sim.PhaseCycles()
	run.SetAttr("phase_cycles_warmup", obs.FormatAttr(wu))
	run.SetAttr("phase_cycles_steady", obs.FormatAttr(st))
	run.SetAttr("phase_cycles_drain", obs.FormatAttr(dr))
	run.SetAttr("cycles", obs.FormatAttr(res.Cycles))
	run.SetAttr("instructions", obs.FormatAttr(res.Instructions))
	if rerr != nil {
		run.SetAttr("error", rerr.Error())
	}
	run.End()
	return res, rerr
}

// Simulate is the default Run function: stream the job's dynamic
// instructions — from a .cvt trace file when one is named, otherwise
// from an in-process functional execution of the kernel — through the
// timing simulator (the same path as clustervp.Run). It uses the
// process-wide Sim pool and decoded-trace arena; both are allocation
// optimizations only, with results byte-identical to cold construction
// and streaming decode (TestSimulatePoolArenaDeterminism).
func Simulate(j Job) (stats.Results, error) {
	return simulate(j, 0, nil, defaultArena, core.DefaultPool)
}

// SimulateWithProgress is Simulate with a periodic progress callback:
// fn fires from the simulation goroutine every `every` cycles with the
// current cycle and committed-instruction counts (the clusterd service
// streams these as job events). A non-positive interval or nil fn runs
// without progress.
func SimulateWithProgress(j Job, every int64, fn func(core.Progress)) (stats.Results, error) {
	return simulate(j, every, fn, defaultArena, core.DefaultPool)
}

// SimulateTraced is SimulateWithProgress plus span instrumentation:
// when parent is non-nil, sim.materialize and sim.run child spans
// (with a sim.warmup sub-span and phase-cycle attributes) record
// where the job's wall-clock went. A nil parent is exactly
// SimulateWithProgress — untraced callers pay one nil check.
func SimulateTraced(j Job, every int64, fn func(core.Progress), parent *obs.ActiveSpan) (stats.Results, error) {
	if parent == nil {
		return simulate(j, every, fn, defaultArena, core.DefaultPool)
	}
	return simulateTraced(j, every, fn, defaultArena, core.DefaultPool, parent)
}
