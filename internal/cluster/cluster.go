// Package cluster models the execution resources of one cluster: the
// per-class issue widths and the functional-unit pools of Table 1
// ("8 int (4 include mul/div), 4 fp (2 include fp mul/div)" for the
// centralized machine, scaled down per cluster).
//
// Integer units form one pool of which a subset is mul/div capable; the
// FP units likewise. All units are fully pipelined except the divides,
// which hold their unit until completion. The issue stage asks TryIssue
// once per candidate instruction per cycle; the cluster accounts width,
// unit and divider occupancy and answers yes or no.
//
// Each Resources is built from one config.ClusterSpec, so on a
// heterogeneous machine every cluster enforces its own widths, unit
// inventory and register-port bound.
package cluster

import (
	"clustervp/internal/config"
	"clustervp/internal/isa"
)

// Resources tracks one cluster's per-cycle issue state.
type Resources struct {
	cfg config.ClusterSpec

	// cycle the per-cycle counters refer to.
	cycle int64
	// Per-cycle counters.
	intIssued int // against IssueInt (ALU+mem+muldiv+copies)
	fpIssued  int // against IssueFP
	intUnits  int // integer units touched this cycle
	fpUnits   int // FP units touched this cycle
	mulUnits  int // mul/div-capable integer units touched this cycle
	fpmUnits  int // FP mul/div-capable units touched this cycle

	// Non-pipelined divider occupancy: busyUntil per mul/div-capable
	// unit.
	intDivBusy []int64
	fpDivBusy  []int64

	// Statistics.
	IssuedTotal uint64
}

// New builds the resource tracker for one cluster.
func New(cfg config.ClusterSpec) *Resources {
	return &Resources{
		cfg:        cfg,
		cycle:      -1,
		intDivBusy: make([]int64, cfg.FUs.IntMul),
		fpDivBusy:  make([]int64, cfg.FUs.FPMulDiv),
	}
}

// Spec returns the cluster's configuration.
func (r *Resources) Spec() config.ClusterSpec { return r.cfg }

// BeginCycle resets the per-cycle counters.
func (r *Resources) BeginCycle(cycle int64) {
	r.cycle = cycle
	r.intIssued, r.fpIssued = 0, 0
	r.intUnits, r.fpUnits = 0, 0
	r.mulUnits, r.fpmUnits = 0, 0
}

func (r *Resources) freeDiv(busy []int64) int {
	for i, b := range busy {
		if b <= r.cycle {
			return i
		}
	}
	return -1
}

// divBusyCount returns how many mul/div-capable units are still held by
// in-flight divides this cycle.
func divBusyCount(busy []int64, cycle int64) int {
	n := 0
	for _, b := range busy {
		if b > cycle {
			n++
		}
	}
	return n
}

// CanIssue reports whether an instruction of the given class could issue
// this cycle without consuming the resources.
func (r *Resources) CanIssue(class isa.Class, latency int, pipelined bool) bool {
	return r.tryIssue(class, latency, pipelined, false)
}

// TryIssue consumes issue width and a functional unit for an instruction
// of the given class; it returns false (consuming nothing) when a width
// or unit limit is hit.
func (r *Resources) TryIssue(class isa.Class, latency int, pipelined bool) bool {
	ok := r.tryIssue(class, latency, pipelined, true)
	if ok {
		r.IssuedTotal++
	}
	return ok
}

func (r *Resources) tryIssue(class isa.Class, latency int, pipelined bool, commit bool) bool {
	// Register-file port bound: every issued instruction (copies
	// included) occupies one read/write port pair; 0 means unbounded,
	// the paper's model.
	if p := r.cfg.RegPorts; p > 0 && r.intIssued+r.fpIssued >= p {
		return false
	}
	f := r.cfg.FUs
	switch class {
	case isa.ClassNone:
		// Copies and NOPs still consume issue width (Table 1:
		// "Communications consume issue width and instruction queue
		// entries") but no functional unit.
		if r.intIssued >= r.cfg.IssueInt {
			return false
		}
		if commit {
			r.intIssued++
		}
		return true
	case isa.ClassIntALU, isa.ClassMem:
		if r.intIssued >= r.cfg.IssueInt {
			return false
		}
		// Units occupied this cycle include divider-held units.
		if r.intUnits+divBusyCount(r.intDivBusy, r.cycle) >= f.IntALU {
			return false
		}
		if commit {
			r.intIssued++
			r.intUnits++
		}
		return true
	case isa.ClassIntMulDiv:
		if r.intIssued >= r.cfg.IssueInt {
			return false
		}
		if r.intUnits >= f.IntALU || r.mulUnits >= f.IntMul {
			return false
		}
		u := r.freeDiv(r.intDivBusy)
		if u < 0 {
			return false
		}
		if commit {
			r.intIssued++
			r.intUnits++
			r.mulUnits++
			if !pipelined {
				r.intDivBusy[u] = r.cycle + int64(latency)
			}
		}
		return true
	case isa.ClassFPALU:
		if r.fpIssued >= r.cfg.IssueFP {
			return false
		}
		if r.fpUnits+divBusyCount(r.fpDivBusy, r.cycle) >= f.FPALU {
			return false
		}
		if commit {
			r.fpIssued++
			r.fpUnits++
		}
		return true
	case isa.ClassFPMulDiv:
		if r.fpIssued >= r.cfg.IssueFP {
			return false
		}
		if r.fpUnits >= f.FPALU || r.fpmUnits >= f.FPMulDiv {
			return false
		}
		u := r.freeDiv(r.fpDivBusy)
		if u < 0 {
			return false
		}
		if commit {
			r.fpIssued++
			r.fpUnits++
			r.fpmUnits++
			if !pipelined {
				r.fpDivBusy[u] = r.cycle + int64(latency)
			}
		}
		return true
	}
	return false
}

// IdleIntSlots returns the unused integer issue width this cycle
// (bounded by unit availability), used by the NREADY imbalance metric.
func (r *Resources) IdleIntSlots() int {
	w := r.cfg.IssueInt - r.intIssued
	u := r.cfg.FUs.IntALU - r.intUnits - divBusyCount(r.intDivBusy, r.cycle)
	if u < w {
		w = u
	}
	if w < 0 {
		return 0
	}
	return w
}

// IdleFPSlots returns the unused FP issue width this cycle.
func (r *Resources) IdleFPSlots() int {
	w := r.cfg.IssueFP - r.fpIssued
	u := r.cfg.FUs.FPALU - r.fpUnits - divBusyCount(r.fpDivBusy, r.cycle)
	if u < w {
		w = u
	}
	if w < 0 {
		return 0
	}
	return w
}
