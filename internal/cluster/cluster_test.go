package cluster

import (
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/isa"
)

func res4() *Resources {
	// The paper's 4-cluster per-cluster resources: 2 int (1 mul/div),
	// 1 fp (1 fp mul/div), issue 2 int / 1 fp.
	return New(config.Preset(4).Clusters[0])
}

func TestIssueWidthLimit(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	if !r.TryIssue(isa.ClassIntALU, 1, true) || !r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Fatal("two int issues must fit")
	}
	if r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("third int issue must exceed width 2")
	}
	// FP width independent.
	if !r.TryIssue(isa.ClassFPALU, 2, true) {
		t.Error("fp issue must fit its own width")
	}
	if r.TryIssue(isa.ClassFPALU, 2, true) {
		t.Error("second fp issue must exceed width 1")
	}
}

func TestWidthResetsNextCycle(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	r.TryIssue(isa.ClassIntALU, 1, true)
	r.TryIssue(isa.ClassIntALU, 1, true)
	r.BeginCycle(1)
	if !r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("width must reset each cycle")
	}
}

func TestMulDivSubsetLimit(t *testing.T) {
	r := res4() // 1 mul/div-capable unit
	r.BeginCycle(0)
	if !r.TryIssue(isa.ClassIntMulDiv, 3, true) {
		t.Fatal("one mul must issue")
	}
	if r.TryIssue(isa.ClassIntMulDiv, 3, true) {
		t.Error("second mul must fail: only 1 mul/div unit")
	}
	// A plain ALU op still fits (2 int units total).
	if !r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("plain ALU op must use the second unit")
	}
}

func TestDivHoldsUnit(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	if !r.TryIssue(isa.ClassIntMulDiv, 20, false) { // non-pipelined divide
		t.Fatal("divide must issue")
	}
	// Divider busy for 20 cycles: no mul/div possible.
	for c := int64(1); c < 20; c++ {
		r.BeginCycle(c)
		if r.TryIssue(isa.ClassIntMulDiv, 3, true) {
			t.Fatalf("cycle %d: divider must still be busy", c)
		}
		// The other (non-muldiv) unit still works.
		if !r.TryIssue(isa.ClassIntALU, 1, true) {
			t.Fatalf("cycle %d: second ALU must be free", c)
		}
	}
	r.BeginCycle(20)
	if !r.TryIssue(isa.ClassIntMulDiv, 3, true) {
		t.Error("divider must be free at cycle 20")
	}
}

func TestDivOccupiesUnitAgainstALU(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	r.TryIssue(isa.ClassIntMulDiv, 20, false)
	r.BeginCycle(1)
	// 2 int units, one held by the divide: only one ALU slot left.
	if !r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Fatal("one ALU must fit")
	}
	if r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("second ALU must fail: unit held by divide")
	}
}

func TestFPDivHoldsUnit(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	if !r.TryIssue(isa.ClassFPMulDiv, 12, false) {
		t.Fatal("fp divide must issue")
	}
	r.BeginCycle(5)
	if r.TryIssue(isa.ClassFPALU, 2, true) {
		t.Error("the only FP unit is held by the divide")
	}
	r.BeginCycle(12)
	if !r.TryIssue(isa.ClassFPALU, 2, true) {
		t.Error("FP unit must be free at cycle 12")
	}
}

func TestClassNoneConsumesOnlyWidth(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	if !r.TryIssue(isa.ClassNone, 1, true) { // a copy instruction
		t.Fatal("copy must issue")
	}
	// Copies consume issue width but not units: one more int op fits and
	// it can use a real unit.
	if !r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Fatal("ALU op must fit beside the copy")
	}
	if r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("issue width 2 exhausted by copy + ALU")
	}
}

func TestCanIssueDoesNotConsume(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	for i := 0; i < 5; i++ {
		if !r.CanIssue(isa.ClassIntALU, 1, true) {
			t.Fatal("CanIssue must not consume")
		}
	}
	if r.IssuedTotal != 0 {
		t.Error("CanIssue must not count issues")
	}
}

func TestIdleSlots(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	if r.IdleIntSlots() != 2 || r.IdleFPSlots() != 1 {
		t.Fatalf("fresh cycle idle = %d/%d, want 2/1", r.IdleIntSlots(), r.IdleFPSlots())
	}
	r.TryIssue(isa.ClassIntALU, 1, true)
	if r.IdleIntSlots() != 1 {
		t.Errorf("after one issue idle = %d, want 1", r.IdleIntSlots())
	}
	r.TryIssue(isa.ClassIntALU, 1, true)
	if r.IdleIntSlots() != 0 {
		t.Errorf("after two issues idle = %d, want 0", r.IdleIntSlots())
	}
}

func TestIdleSlotsBoundedByBusyDividers(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	r.TryIssue(isa.ClassIntMulDiv, 20, false)
	r.BeginCycle(1)
	// Width would allow 2, but only 1 unit is free.
	if r.IdleIntSlots() != 1 {
		t.Errorf("idle slots with busy divider = %d, want 1", r.IdleIntSlots())
	}
}

func TestMemClassSharesIntResources(t *testing.T) {
	r := res4()
	r.BeginCycle(0)
	r.TryIssue(isa.ClassMem, 1, true)
	r.TryIssue(isa.ClassMem, 1, true)
	if r.TryIssue(isa.ClassIntALU, 1, true) {
		t.Error("two mem ops exhaust both int units/width")
	}
}

func TestOneClusterResources(t *testing.T) {
	r := New(config.Preset(1).Clusters[0]) // 8 int (4 muldiv), 4 fp, 8/4 wide
	r.BeginCycle(0)
	issued := 0
	for r.TryIssue(isa.ClassIntALU, 1, true) {
		issued++
	}
	if issued != 8 {
		t.Errorf("centralized machine must issue 8 int ops, got %d", issued)
	}
	fp := 0
	for r.TryIssue(isa.ClassFPALU, 2, true) {
		fp++
	}
	if fp != 4 {
		t.Errorf("centralized machine must issue 4 fp ops, got %d", fp)
	}
}
