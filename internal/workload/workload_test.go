package workload

import (
	"testing"

	"clustervp/internal/isa"
	"clustervp/internal/trace"
)

func TestSuiteMatchesTable2(t *testing.T) {
	want := []string{
		"cjpeg", "djpeg", "epicdec", "epicenc", "g721enc",
		"gsmdec", "gsmenc", "mesamipmap", "mesaosdemo", "mesatexgen",
		"mpeg2enc", "pgpdec", "pgpenc", "rasta", "rawcaudio",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite size = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kernel[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("cjpeg")
	if err != nil || k.Name != "cjpeg" {
		t.Fatalf("ByName(cjpeg) = %v, %v", k.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown kernel must error")
	}
}

// TestAllKernelsRunToCompletion executes every kernel at scale 1 and
// checks the basics: it halts within budget, runs a substantial number of
// instructions, and touches memory and branches (no degenerate straight-
// line programs).
func TestAllKernelsRunToCompletion(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			p := k.Build(1)
			e := trace.NewExecutor(p)
			var d trace.DynInst
			var count, loads, stores, branches, fpops, fptouch, muldiv uint64
			for e.Next(&d) {
				count++
				if count > 30_000_000 {
					t.Fatal("kernel exceeded 30M instructions at scale 1")
				}
				info := d.Info()
				switch {
				case info.IsLoad:
					loads++
				case info.IsStore:
					stores++
				case info.IsBranch:
					branches++
				}
				switch info.Class {
				case isa.ClassFPALU, isa.ClassFPMulDiv:
					fpops++
				case isa.ClassIntMulDiv:
					muldiv++
				}
				// fptouch counts instructions producing or consuming FP
				// register values — the operands the paper's predictor
				// cannot predict.
				if d.Inst.Rd != isa.NoReg && info.HasDest && d.Inst.Rd.IsFP() {
					fptouch++
				} else {
					for _, s := range d.Inst.Sources() {
						if s.IsFP() {
							fptouch++
							break
						}
					}
				}
			}
			if err := e.Err(); err != nil {
				t.Fatal(err)
			}
			if count < 10_000 {
				t.Errorf("only %d dynamic instructions; too small to be meaningful", count)
			}
			if loads == 0 || stores == 0 || branches == 0 {
				t.Errorf("degenerate mix: loads=%d stores=%d branches=%d", loads, stores, branches)
			}
			if k.FPHeavy && fptouch*10 < count*3 {
				t.Errorf("kernel marked FPHeavy but only %d/%d FP-value instructions", fptouch, count)
			}
			if !k.FPHeavy && fptouch*10 >= count*3 {
				t.Errorf("kernel not marked FPHeavy but %d/%d FP-value instructions", fptouch, count)
			}
			t.Logf("%s: %d insts (%.1f%% loads, %.1f%% stores, %.1f%% branches, %.1f%% fp, %.1f%% muldiv)",
				k.Name, count,
				100*float64(loads)/float64(count), 100*float64(stores)/float64(count),
				100*float64(branches)/float64(count), 100*float64(fpops)/float64(count),
				100*float64(muldiv)/float64(count))
		})
	}
}

// TestScaleGrowsWork verifies the scale knob multiplies dynamic work.
func TestScaleGrowsWork(t *testing.T) {
	k, _ := ByName("gsmdec")
	count := func(scale int) uint64 {
		e := trace.NewExecutor(k.Build(scale))
		n, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	c1, c2 := count(1), count(2)
	if c2 < c1*3/2 {
		t.Errorf("scale 2 ran %d vs scale 1 %d; expected ~2x", c2, c1)
	}
}

// TestDeterministic verifies two builds produce identical traces (the
// whole simulator depends on reproducible workloads).
func TestDeterministic(t *testing.T) {
	k, _ := ByName("g721enc")
	t1, err := trace.Collect(k.Build(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := trace.Collect(k.Build(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

// TestChecksumsNonTrivial: integer kernels write a checksum derived from
// their computation; it must not be zero (which would suggest dead code).
func TestChecksumsNonTrivial(t *testing.T) {
	for _, name := range []string{"cjpeg", "djpeg", "epicenc", "epicdec", "g721enc", "gsmdec", "gsmenc", "mpeg2enc", "pgpenc", "pgpdec", "rawcaudio"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := k.Build(1)
		e := trace.NewExecutor(p)
		if _, err := e.Run(0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The checksum is the last word the kernel stores; find it by
		// scanning the trace would be slow, so instead re-run collecting
		// the final store.
		e2 := trace.NewExecutor(p)
		var d trace.DynInst
		var lastStore trace.DynInst
		for e2.Next(&d) {
			if d.Info().IsStore {
				lastStore = d
			}
		}
		if lastStore.SrcVal[1] == 0 {
			t.Errorf("%s: final checksum store is zero", name)
		}
	}
}

// TestCategoriesCoverTable2 domains.
func TestCategoriesCoverTable2(t *testing.T) {
	cats := map[string]bool{}
	for _, k := range All() {
		cats[k.Category] = true
		if k.Description == "" {
			t.Errorf("%s: missing description", k.Name)
		}
	}
	for _, want := range []string{"image", "audio", "video", "3D graphics", "encryption"} {
		if !cats[want] {
			t.Errorf("no kernel in category %q", want)
		}
	}
}
