// Package workload provides the benchmark suite for the reproduction: one
// kernel per MediaBench program in the paper's Table 2.
//
// The original suite consists of Alpha AXP binaries compiled from C with
// proprietary inputs; neither is available offline, so each kernel here is
// written directly in the clustervp virtual ISA and reproduces the
// *computational signature* of its namesake — the dominant inner loops
// (DCT, wavelet filters, ADPCM quantization, LPC autocorrelation, FP
// geometry transform, motion-estimation SAD, modular bignum arithmetic,
// IIR filter banks), with deterministic pseudo-random input data flowing
// through the registers. Value, branch and cache behaviour therefore act
// on genuine value streams, which is what the paper's mechanism exploits.
// DESIGN.md §3 documents this substitution.
package workload

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"clustervp/internal/program"
)

// Kernel describes one benchmark.
type Kernel struct {
	// Name matches the MediaBench program it stands in for (Table 2).
	Name string
	// Category is the media domain from Table 2 (image, audio, video,
	// 3D graphics, encryption).
	Category string
	// Description summarizes the computational signature.
	Description string
	// FPHeavy marks kernels dominated by floating-point work (whose
	// operands the paper's predictor does not predict).
	FPHeavy bool
	// Build assembles the kernel. scale >= 1 multiplies the input size /
	// iteration count; scale 1 runs tens of thousands of dynamic
	// instructions, suitable for tests.
	Build func(scale int) *program.Program
}

var registry = map[string]Kernel{}

func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("workload: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("workload: unknown kernel %q", name)
	}
	return k, nil
}

// Names returns all kernel names in Table 2 order (alphabetical, as the
// paper lists them).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all kernels in Table 2 order.
func All() []Kernel {
	names := Names()
	out := make([]Kernel, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// buildMu serializes kernel builds so the transient input-seed mix of
// Build cannot leak into a concurrent build (grid workers build kernels
// in parallel); seedMix is zero outside a seeded build, which keeps the
// canonical input streams bit-identical to the pre-seeding simulator.
// The mix is atomic so a legacy direct Kernel.Build call racing a
// seeded Build is at worst wrongly seeded, never undefined behaviour —
// but every production path should go through Build.
var (
	buildMu sync.Mutex
	seedMix atomic.Uint64
)

// Build assembles kernel name at the given scale (clamped to >= 1) with
// its pseudo-random input streams re-seeded by seed. Seed 0 selects the
// canonical inputs every historical figure was produced with; any other
// value deterministically re-draws the input data, giving independent
// workload instances for trace generation and variance studies.
func Build(name string, scale int, seed uint64) (*program.Program, error) {
	k, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		scale = 1
	}
	buildMu.Lock()
	defer buildMu.Unlock()
	seedMix.Store(splitmix64(seed))
	prog := k.Build(scale)
	seedMix.Store(0)
	return prog, nil
}

// splitmix64 decorrelates user seeds (0 maps to 0 so the canonical
// streams stay untouched).
func splitmix64(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lcg is a deterministic 64-bit linear congruential generator used to
// synthesize input data (same constants as Knuth's MMIX).
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

// intSamples produces n pseudo-random int64 samples in [-amp, amp].
func intSamples(seed uint64, n int, amp int64) []int64 {
	l := lcg(seed ^ seedMix.Load())
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(l.next()%uint64(2*amp+1)) - amp
	}
	return out
}

// smoothSamples produces n samples of a slowly varying waveform (sum of
// a ramp and noise), mimicking audio/image data that has exploitable
// value locality.
func smoothSamples(seed uint64, n int, amp int64) []int64 {
	l := lcg(seed ^ seedMix.Load())
	out := make([]int64, n)
	acc := int64(0)
	for i := range out {
		acc += int64(l.next()%17) - 8
		if acc > amp {
			acc = amp
		}
		if acc < -amp {
			acc = -amp
		}
		out[i] = acc
	}
	return out
}

// floatSamples produces n pseudo-random float64 samples in [-1, 1).
func floatSamples(seed uint64, n int) []float64 {
	l := lcg(seed ^ seedMix.Load())
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(int64(l.next()>>11))/float64(1<<52) - 1.0
	}
	return out
}
