package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "mesamipmap",
		Category:    "3D graphics",
		Description: "Mesa mipmap signature: 2x2 FP texel box-filter reduction across mip levels",
		FPHeavy:     true,
		Build:       buildMesaMipmap,
	})
	register(Kernel{
		Name:        "mesaosdemo",
		Category:    "3D graphics",
		Description: "Mesa osdemo signature: 4x4 matrix-vector vertex transform with perspective divide",
		FPHeavy:     true,
		Build:       buildMesaOsdemo,
	})
	register(Kernel{
		Name:        "mesatexgen",
		Category:    "3D graphics",
		Description: "Mesa texgen signature: per-vertex dot products and Newton-iteration reciprocal sqrt",
		FPHeavy:     true,
		Build:       buildMesaTexgen,
	})
}

// buildMesaMipmap: repeatedly halve a square FP image with a 2x2 box
// filter: out[y][x] = 0.25*(a+b+c+d). Strided FP loads, FP adds/muls.
func buildMesaMipmap(scale int) *program.Program {
	dim := 64 // 64x64 base level
	levels := 5
	reps := 2 * scale
	b := program.NewBuilder("mesamipmap")
	img := b.DataFloats(floatSamples(0x3144, dim*dim))
	out := b.Reserve(dim * dim * 8 / 2)
	chk := b.Reserve(8)

	const (
		rRep   = isa.R19
		rNRep  = isa.R18
		rLvl   = isa.R20
		rNLvl  = isa.R21
		rDim   = isa.R22 // current source dimension
		rY     = isa.R23
		rX     = isa.R24
		rHalf  = isa.R25
		rLogD  = isa.R26 // log2(dim)
		rLogH  = isa.R27 // log2(half)
		rSrc   = isa.R10
		rDst   = isa.R11
		rRow   = isa.R12 // byte stride of source row
		rT     = isa.R5
		rT2    = isa.R6
		rA     = isa.R7
		fA     = isa.F1
		fB     = isa.F2
		fC     = isa.F3
		fD     = isa.F4
		fQ     = isa.F5
		fQuart = isa.F6
		fGain  = isa.F7
		fBias  = isa.F8
	)

	b.Li(rRep, 0)
	b.Li(rNRep, int64(reps))
	b.Fli(fQuart, 0.25)
	b.Fli(fGain, 0.96)
	b.Fli(fBias, 0.01)

	b.Label("rep")
	{
		b.Li(rLvl, 0)
		b.Li(rNLvl, int64(levels))
		b.Li(rDim, int64(dim))
		b.Li(rLogD, 6) // log2(64)
		b.Li(rSrc, img)
		b.Li(rDst, out)
		b.Label("level")
		{
			b.I(isa.SRAI, rHalf, rDim, 1)
			b.I(isa.ADDI, rLogH, rLogD, -1)
			b.I(isa.SLLI, rRow, rDim, 3)
			b.Li(rY, 0)
			b.Label("row")
			{
				b.Li(rX, 0)
				b.Label("col")
				{
					// addr = src + (2y*dim + 2x)*8; dim is a power of two
					// so the scaling is a variable shift, as Mesa's own
					// span code does.
					b.I(isa.SLLI, rT, rY, 1)
					b.R(isa.SLL, rT, rT, rLogD)
					b.I(isa.SLLI, rT2, rX, 1)
					b.R(isa.ADD, rT, rT, rT2)
					b.I(isa.SLLI, rT, rT, 3)
					b.R(isa.ADD, rA, rT, rSrc)
					b.Load(isa.FLW, fA, rA, 0)
					b.Load(isa.FLW, fB, rA, 8)
					b.R(isa.ADD, rA, rA, rRow)
					b.Load(isa.FLW, fC, rA, 0)
					b.Load(isa.FLW, fD, rA, 8)
					b.R(isa.FADD, fQ, fA, fB)
					b.R(isa.FADD, fQ, fQ, fC)
					b.R(isa.FADD, fQ, fQ, fD)
					b.R(isa.FMUL, fQ, fQ, fQuart)
					// Gamma/brightness post-filter keeps the kernel
					// FP-dominated like Mesa's gl_scale_image path.
					b.R(isa.FMUL, fQ, fQ, fGain)
					b.R(isa.FADD, fQ, fQ, fBias)
					// dst[y*half + x]
					b.R(isa.SLL, rT, rY, rLogH)
					b.R(isa.ADD, rT, rT, rX)
					b.I(isa.SLLI, rT, rT, 3)
					b.R(isa.ADD, rT, rT, rDst)
					b.Store(isa.FSW, fQ, rT, 0)
					b.I(isa.ADDI, rX, rX, 1)
					b.Br(isa.BLT, rX, rHalf, "col")
				}
				b.I(isa.ADDI, rY, rY, 1)
				b.Br(isa.BLT, rY, rHalf, "row")
			}
			// Next level reads what this level wrote.
			b.Mov(rSrc, rDst)
			b.R(isa.MUL, rT, rHalf, rHalf)
			b.I(isa.SLLI, rT, rT, 3)
			b.R(isa.ADD, rDst, rDst, rT)
			b.Mov(rDim, rHalf)
			b.Mov(rLogD, rLogH)
			b.I(isa.ADDI, rLvl, rLvl, 1)
			b.Br(isa.BLT, rLvl, rNLvl, "level")
		}
		b.I(isa.ADDI, rRep, rRep, 1)
		b.Br(isa.BLT, rRep, rNRep, "rep")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, isa.R0, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildMesaOsdemo: transform an array of 4-component vertices by a 4x4
// matrix, then divide by w — the vertex pipeline inner loop.
func buildMesaOsdemo(scale int) *program.Program {
	verts := 600 * scale
	b := program.NewBuilder("mesaosdemo")
	vin := b.DataFloats(floatSamples(0x05DE, verts*4))
	// A plausible projection-ish matrix (row major).
	mat := b.DataFloats([]float64{
		1.2, 0.0, 0.1, 0.0,
		0.0, 1.6, 0.2, 0.0,
		0.0, 0.0, -1.1, -0.4,
		0.0, 0.0, -1.0, 2.5,
	})
	vout := b.Reserve(verts * 4 * 8)
	chk := b.Reserve(8)

	const (
		rV    = isa.R20
		rNV   = isa.R21
		rRowI = isa.R22
		rIn   = isa.R10
		rMat  = isa.R11
		rOut  = isa.R12
		rT    = isa.R5
		rRowA = isa.R6
		fX    = isa.F1
		fY    = isa.F2
		fZ    = isa.F3
		fW    = isa.F4
		fM0   = isa.F5
		fM1   = isa.F6
		fM2   = isa.F7
		fM3   = isa.F8
		fAcc  = isa.F9
		fT    = isa.F10
		fRW   = isa.F11
		fFour = isa.F12
	)

	b.Li(rV, 0)
	b.Li(rNV, int64(verts))
	b.Li(rIn, vin)
	b.Li(rOut, vout)
	b.Li(rMat, mat)
	b.Fli(fFour, 4)

	b.Label("vert")
	{
		b.Load(isa.FLW, fX, rIn, 0)
		b.Load(isa.FLW, fY, rIn, 8)
		b.Load(isa.FLW, fZ, rIn, 16)
		b.Load(isa.FLW, fW, rIn, 24)
		// Row loop: out[r] = m[r][0]*x + m[r][1]*y + m[r][2]*z + m[r][3]*w
		b.Li(rRowI, 0)
		b.Mov(rRowA, rMat)
		b.Label("rowloop")
		{
			b.Load(isa.FLW, fM0, rRowA, 0)
			b.Load(isa.FLW, fM1, rRowA, 8)
			b.Load(isa.FLW, fM2, rRowA, 16)
			b.Load(isa.FLW, fM3, rRowA, 24)
			b.R(isa.FMUL, fAcc, fM0, fX)
			b.R(isa.FMUL, fT, fM1, fY)
			b.R(isa.FADD, fAcc, fAcc, fT)
			b.R(isa.FMUL, fT, fM2, fZ)
			b.R(isa.FADD, fAcc, fAcc, fT)
			b.R(isa.FMUL, fT, fM3, fW)
			b.R(isa.FADD, fAcc, fAcc, fT)
			b.I(isa.SLLI, rT, rRowI, 3)
			b.R(isa.ADD, rT, rT, rOut)
			b.Store(isa.FSW, fAcc, rT, 0)
			b.I(isa.ADDI, rRowA, rRowA, 32)
			b.I(isa.ADDI, rRowI, rRowI, 1)
			b.Li(rT, 4)
			b.Br(isa.BLT, rRowI, rT, "rowloop")
		}
		// Perspective divide: one reciprocal, then multiplies — exactly
		// how Mesa's vertex stage amortizes the slow FDIV.
		b.Load(isa.FLW, fRW, rOut, 24)
		b.Fli(fT, 1.0)
		b.R(isa.FDIV, fRW, fT, fRW)
		b.Load(isa.FLW, fT, rOut, 0)
		b.R(isa.FMUL, fT, fT, fRW)
		b.Store(isa.FSW, fT, rOut, 0)
		b.Load(isa.FLW, fT, rOut, 8)
		b.R(isa.FMUL, fT, fT, fRW)
		b.Store(isa.FSW, fT, rOut, 8)
		b.I(isa.ADDI, rIn, rIn, 32)
		b.I(isa.ADDI, rOut, rOut, 32)
		b.I(isa.ADDI, rV, rV, 1)
		b.Br(isa.BLT, rV, rNV, "vert")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, isa.R0, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildMesaTexgen: per vertex compute a sphere-map coordinate: dot
// products plus a reciprocal square root via Newton iterations.
func buildMesaTexgen(scale int) *program.Program {
	verts := 500 * scale
	b := program.NewBuilder("mesatexgen")
	norm := b.DataFloats(floatSamples(0x7E46E, verts*3))
	tex := b.Reserve(verts * 2 * 8)
	chk := b.Reserve(8)

	const (
		rV    = isa.R20
		rNV   = isa.R21
		rIt   = isa.R22
		rIn   = isa.R10
		rOut  = isa.R11
		rT    = isa.R5
		fNX   = isa.F1
		fNY   = isa.F2
		fNZ   = isa.F3
		fDot  = isa.F4
		fT    = isa.F5
		fG    = isa.F6 // guess for rsqrt
		fHalf = isa.F7
		f3    = isa.F8
		fEps  = isa.F9
	)

	b.Li(rV, 0)
	b.Li(rNV, int64(verts))
	b.Li(rIn, norm)
	b.Li(rOut, tex)
	b.Fli(fHalf, 0.5)
	b.Fli(f3, 3.0)
	b.Fli(fEps, 0.001)

	b.Label("vert")
	{
		b.Load(isa.FLW, fNX, rIn, 0)
		b.Load(isa.FLW, fNY, rIn, 8)
		b.Load(isa.FLW, fNZ, rIn, 16)
		// dot = nx^2 + ny^2 + nz^2 + eps
		b.R(isa.FMUL, fDot, fNX, fNX)
		b.R(isa.FMUL, fT, fNY, fNY)
		b.R(isa.FADD, fDot, fDot, fT)
		b.R(isa.FMUL, fT, fNZ, fNZ)
		b.R(isa.FADD, fDot, fDot, fT)
		b.R(isa.FADD, fDot, fDot, fEps)
		// rsqrt via 3 Newton iterations from guess 1/(0.5+0.5*dot).
		b.R(isa.FMUL, fG, fHalf, fDot)
		b.R(isa.FADD, fG, fG, fHalf)
		b.Fli(fT, 1.0)
		b.R(isa.FDIV, fG, fT, fG)
		b.Li(rIt, 0)
		b.Label("newton")
		{
			// g = 0.5*g*(3 - dot*g*g)
			b.R(isa.FMUL, fT, fG, fG)
			b.R(isa.FMUL, fT, fT, fDot)
			b.R(isa.FSUB, fT, f3, fT)
			b.R(isa.FMUL, fG, fG, fT)
			b.R(isa.FMUL, fG, fG, fHalf)
			b.I(isa.ADDI, rIt, rIt, 1)
			b.Li(rT, 3)
			b.Br(isa.BLT, rIt, rT, "newton")
		}
		// s = 0.5 + 0.5*nx*g ; t = 0.5 + 0.5*ny*g
		b.R(isa.FMUL, fT, fNX, fG)
		b.R(isa.FMUL, fT, fT, fHalf)
		b.R(isa.FADD, fT, fT, fHalf)
		b.Store(isa.FSW, fT, rOut, 0)
		b.R(isa.FMUL, fT, fNY, fG)
		b.R(isa.FMUL, fT, fT, fHalf)
		b.R(isa.FADD, fT, fT, fHalf)
		b.Store(isa.FSW, fT, rOut, 8)
		b.I(isa.ADDI, rIn, rIn, 24)
		b.I(isa.ADDI, rOut, rOut, 16)
		b.I(isa.ADDI, rV, rV, 1)
		b.Br(isa.BLT, rV, rNV, "vert")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, isa.R0, rT, 0)
	b.Halt()
	return b.MustBuild()
}
