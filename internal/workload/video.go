package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "mpeg2enc",
		Category:    "video",
		Description: "MPEG-2 encode signature: full-search motion-estimation SAD with early-exit branches",
		Build:       buildMpeg2Enc,
	})
}

// buildMpeg2Enc: for each macroblock, scan candidate displacements in a
// small search window; per candidate accumulate sum of absolute
// differences over a 16x1 strip with an early exit when the partial SAD
// exceeds the best so far. Branch-heavy, abs-value data dependence, the
// dominant loop of every video encoder.
func buildMpeg2Enc(scale int) *program.Program {
	blocks := 24 * scale
	window := 8   // candidate displacements per block
	strip := 16   // pixels compared per candidate row
	rows := 4     // strip rows per candidate
	width := 1024 // bytes per reference row

	b := program.NewBuilder("mpeg2enc")
	ref := make([]int64, (blocks*strip+window+rows*width/8)+2048)
	cur := make([]int64, blocks*strip*rows+2048)
	l := lcg(0x3E62)
	for i := range ref {
		ref[i] = int64(l.next() % 256)
	}
	// The current frame resembles the reference shifted by 3 with noise,
	// so one candidate is clearly best (realistic ME behaviour).
	for i := range cur {
		src := i + 3
		if src < len(ref) {
			cur[i] = ref[src] + int64(l.next()%5) - 2
		} else {
			cur[i] = int64(l.next() % 256)
		}
	}
	refA := b.DataWords(ref)
	curA := b.DataWords(cur)
	motion := b.Reserve(blocks * 8)
	chk := b.Reserve(8)

	const (
		rBlk  = isa.R20
		rNBlk = isa.R21
		rCand = isa.R22
		rNCnd = isa.R23
		rI    = isa.R24
		rNI   = isa.R25
		rRef  = isa.R10
		rCur  = isa.R11
		rMot  = isa.R12
		rBest = isa.R1
		rSad  = isa.R2
		rA    = isa.R3
		rB    = isa.R4
		rT    = isa.R5
		rBMV  = isa.R6
		rRA   = isa.R7
		rCA   = isa.R8
		rChk  = isa.R9
	)

	b.Li(rBlk, 0)
	b.Li(rNBlk, int64(blocks))
	b.Li(rNCnd, int64(window))
	b.Li(rNI, int64(strip*rows))
	b.Li(rRef, refA)
	b.Li(rCur, curA)
	b.Li(rMot, motion)
	b.Li(rChk, 0)

	b.Label("block")
	{
		b.Li(rBest, 1<<30)
		b.Li(rBMV, 0)
		b.Li(rCand, 0)
		b.Label("cand")
		{
			b.Li(rSad, 0)
			b.Li(rI, 0)
			// rRA = ref + (block*strip + cand)*8 ; rCA = cur + block*strip*rows*8
			b.R(isa.MUL, rT, rBlk, rNI)
			b.I(isa.SLLI, rT, rT, 3)
			b.R(isa.ADD, rCA, rT, rCur)
			b.Li(rT, int64(strip))
			b.R(isa.MUL, rT, rBlk, rT)
			b.R(isa.ADD, rT, rT, rCand)
			b.I(isa.SLLI, rT, rT, 3)
			b.R(isa.ADD, rRA, rT, rRef)
			b.Label("pix")
			{
				// Branch-free absolute difference, as real SAD kernels
				// compute it: mask = d>>63; |d| = (d^mask)-mask.
				b.Load(isa.LW, rA, rCA, 0)
				b.Load(isa.LW, rB, rRA, 0)
				b.R(isa.SUB, rA, rA, rB)
				b.I(isa.SRAI, rB, rA, 63)
				b.R(isa.XOR, rA, rA, rB)
				b.R(isa.SUB, rA, rA, rB)
				b.R(isa.ADD, rSad, rSad, rA)
				b.I(isa.ADDI, rCA, rCA, 8)
				b.I(isa.ADDI, rRA, rRA, 8)
				b.I(isa.ADDI, rI, rI, 1)
				// Early exit once per 16-pixel row, not per pixel.
				b.I(isa.ANDI, rB, rI, 15)
				b.Br(isa.BNE, rB, isa.R0, "pix")
				b.Br(isa.BGE, rSad, rBest, "candnext")
				b.Br(isa.BLT, rI, rNI, "pix")
			}
			// New best.
			b.Mov(rBest, rSad)
			b.Mov(rBMV, rCand)
			b.Label("candnext")
			b.I(isa.ADDI, rCand, rCand, 1)
			b.Br(isa.BLT, rCand, rNCnd, "cand")
		}
		b.I(isa.SLLI, rT, rBlk, 3)
		b.R(isa.ADD, rT, rT, rMot)
		b.Store(isa.SW, rBMV, rT, 0)
		b.I(isa.SLLI, rChk, rChk, 1)
		b.R(isa.XOR, rChk, rChk, rBMV)
		b.R(isa.ADD, rChk, rChk, rBest)
		b.I(isa.ADDI, rBlk, rBlk, 1)
		b.Br(isa.BLT, rBlk, rNBlk, "block")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}
