package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "cjpeg",
		Category:    "image",
		Description: "JPEG encode signature: 1-D integer DCT (matrix-vector) plus quantization over 8-sample segments",
		Build:       buildCjpeg,
	})
	register(Kernel{
		Name:        "djpeg",
		Category:    "image",
		Description: "JPEG decode signature: dequantization and inverse DCT with saturation clamps",
		Build:       buildDjpeg,
	})
}

// dctCoef is an 8x8 integer cosine basis scaled by 1024, as libjpeg's
// jfdctint scales its constants.
func dctCoef() []int64 {
	// round(1024 * cos((2k+1)u*pi/16) * 0.5), with flat DC row.
	base := [8][8]int64{
		{362, 362, 362, 362, 362, 362, 362, 362},
		{502, 426, 284, 100, -100, -284, -426, -502},
		{473, 196, -196, -473, -473, -196, 196, 473},
		{426, -100, -502, -284, 284, 502, 100, -426},
		{362, -362, -362, 362, 362, -362, -362, 362},
		{284, -502, 100, 426, -426, -100, 502, -284},
		{196, -473, 473, -196, -196, 473, -473, 196},
		{100, -284, 426, -502, 502, -426, 284, -100},
	}
	out := make([]int64, 0, 64)
	for _, row := range base {
		out = append(out, row[:]...)
	}
	return out
}

var jpegQuant = []int64{16, 11, 10, 16, 24, 40, 51, 61}

// buildCjpeg: forward DCT. For each 8-sample segment s:
//
//	y[u] = (sum_k coef[u][k] * x[s*8+k]) >> 10, then y[u] /= q[u].
func buildCjpeg(scale int) *program.Program {
	segments := 48 * scale
	n := segments * 8
	b := program.NewBuilder("cjpeg")
	in := b.DataWords(smoothSamples(0xC19E6, n, 255))
	coef := b.DataWords(dctCoef())
	// Quantization by reciprocal multiply, as libjpeg's DESCALE fast
	// path does: recip[u] = 65536/q[u], y = (acc*recip)>>16.
	recip := make([]int64, len(jpegQuant))
	for i, q := range jpegQuant {
		recip[i] = 65536 / q
	}
	quant := b.DataWords(recip)
	out := b.Reserve(n * 8)
	chk := b.Reserve(8)

	const (
		rSeg   = isa.R20 // segment counter
		rNSeg  = isa.R21
		rU     = isa.R22
		rK     = isa.R23
		rEight = isa.R24
		rIn    = isa.R10 // &x[s*8]
		rCoefU = isa.R11 // &coef[u*8]
		rOut   = isa.R12 // &y[s*8]
		rQ     = isa.R13
		rAcc   = isa.R1
		rX     = isa.R2
		rC     = isa.R3
		rT     = isa.R4
		rChk   = isa.R9
	)

	b.Li(rSeg, 0)
	b.Li(rNSeg, int64(segments))
	b.Li(rEight, 8)
	b.Li(rChk, 0)
	b.Li(rIn, in)
	b.Li(rOut, out)

	b.Label("seg")
	{
		b.Li(rU, 0)
		b.Li(rCoefU, coef)
		b.Li(rQ, quant)
		b.Label("u")
		{
			b.Li(rAcc, 0)
			b.Li(rK, 0)
			b.Label("k")
			{
				b.I(isa.SLLI, rT, rK, 3)
				b.R(isa.ADD, rT, rT, rIn)
				b.Load(isa.LW, rX, rT, 0) // x[s*8+k]
				b.I(isa.SLLI, rT, rK, 3)
				b.R(isa.ADD, rT, rT, rCoefU)
				b.Load(isa.LW, rC, rT, 0) // coef[u][k]
				b.R(isa.MUL, rX, rX, rC)
				b.R(isa.ADD, rAcc, rAcc, rX)
				b.I(isa.ADDI, rK, rK, 1)
				b.Br(isa.BLT, rK, rEight, "k")
			}
			b.I(isa.SRAI, rAcc, rAcc, 10)
			// Quantize: y = (y * recip[u&7]) >> 16.
			b.I(isa.ANDI, rT, rU, 7)
			b.I(isa.SLLI, rT, rT, 3)
			b.R(isa.ADD, rT, rT, rQ)
			b.Load(isa.LW, rC, rT, 0)
			b.R(isa.MUL, rAcc, rAcc, rC)
			b.I(isa.SRAI, rAcc, rAcc, 16)
			// Store y[s*8+u].
			b.I(isa.SLLI, rT, rU, 3)
			b.R(isa.ADD, rT, rT, rOut)
			b.Store(isa.SW, rAcc, rT, 0)
			b.R(isa.XOR, rChk, rChk, rAcc)
			b.I(isa.ADDI, rCoefU, rCoefU, 64)
			b.I(isa.ADDI, rU, rU, 1)
			b.Br(isa.BLT, rU, rEight, "u")
		}
		b.I(isa.ADDI, rIn, rIn, 64)
		b.I(isa.ADDI, rOut, rOut, 64)
		b.I(isa.ADDI, rSeg, rSeg, 1)
		b.Br(isa.BLT, rSeg, rNSeg, "seg")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildDjpeg: dequantize + inverse DCT + clamp to [0,255].
func buildDjpeg(scale int) *program.Program {
	segments := 40 * scale
	n := segments * 8
	b := program.NewBuilder("djpeg")
	in := b.DataWords(intSamples(0xD39E6, n, 64))
	coef := b.DataWords(dctCoef())
	quant := b.DataWords(jpegQuant)
	out := b.Reserve(n * 8)
	chk := b.Reserve(8)

	const (
		rSeg   = isa.R20
		rNSeg  = isa.R21
		rK     = isa.R22
		rU     = isa.R23
		rEight = isa.R24
		rIn    = isa.R10
		rCoef  = isa.R11
		rOut   = isa.R12
		rQ     = isa.R13
		rAcc   = isa.R1
		rY     = isa.R2
		rC     = isa.R3
		rT     = isa.R4
		rLim   = isa.R5
		rChk   = isa.R9
	)

	b.Li(rSeg, 0)
	b.Li(rNSeg, int64(segments))
	b.Li(rEight, 8)
	b.Li(rChk, 0)
	b.Li(rIn, in)
	b.Li(rOut, out)
	b.Li(rLim, 255)

	b.Label("seg")
	{
		b.Li(rK, 0)
		b.Label("k")
		{
			b.Li(rAcc, 0)
			b.Li(rU, 0)
			b.Li(rCoef, coef)
			b.Li(rQ, quant)
			b.Label("u")
			{
				// yq = y[u] * q[u&7]  (dequantize)
				b.I(isa.SLLI, rT, rU, 3)
				b.R(isa.ADD, rT, rT, rIn)
				b.Load(isa.LW, rY, rT, 0)
				b.I(isa.ANDI, rT, rU, 7)
				b.I(isa.SLLI, rT, rT, 3)
				b.R(isa.ADD, rT, rT, rQ)
				b.Load(isa.LW, rC, rT, 0)
				b.R(isa.MUL, rY, rY, rC)
				// acc += coef[u][k] * yq  (transpose basis)
				b.I(isa.SLLI, rT, rK, 3)
				b.R(isa.ADD, rT, rT, rCoef)
				b.Load(isa.LW, rC, rT, 0)
				b.R(isa.MUL, rY, rY, rC)
				b.R(isa.ADD, rAcc, rAcc, rY)
				b.I(isa.ADDI, rCoef, rCoef, 64)
				b.I(isa.ADDI, rU, rU, 1)
				b.Br(isa.BLT, rU, rEight, "u")
			}
			b.I(isa.SRAI, rAcc, rAcc, 14)
			b.I(isa.ADDI, rAcc, rAcc, 128) // level shift
			// Clamp to [0, 255] — the branchy saturation of every decoder.
			b.Br(isa.BGE, rAcc, isa.R0, "nonneg")
			b.Li(rAcc, 0)
			b.Jmp("clamped")
			b.Label("nonneg")
			b.Br(isa.BGE, rLim, rAcc, "clamped")
			b.Li(rAcc, 255)
			b.Label("clamped")
			b.I(isa.SLLI, rT, rK, 3)
			b.R(isa.ADD, rT, rT, rOut)
			b.Store(isa.SW, rAcc, rT, 0)
			b.R(isa.ADD, rChk, rChk, rAcc)
			b.I(isa.ADDI, rK, rK, 1)
			b.Br(isa.BLT, rK, rEight, "k")
		}
		b.I(isa.ADDI, rIn, rIn, 64)
		b.I(isa.ADDI, rOut, rOut, 64)
		b.I(isa.ADDI, rSeg, rSeg, 1)
		b.Br(isa.BLT, rSeg, rNSeg, "seg")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}
