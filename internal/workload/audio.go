package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "g721enc",
		Category:    "audio",
		Description: "G.721 ADPCM encode signature: per-sample branchy quantizer tree with adaptive step table",
		Build:       buildG721Enc,
	})
	register(Kernel{
		Name:        "gsmdec",
		Category:    "audio",
		Description: "GSM decode signature: short-term LPC synthesis (serial IIR lattice)",
		Build:       buildGsmDec,
	})
	register(Kernel{
		Name:        "gsmenc",
		Category:    "audio",
		Description: "GSM encode signature: autocorrelation of speech frames (multiply-accumulate)",
		Build:       buildGsmEnc,
	})
	register(Kernel{
		Name:        "rawcaudio",
		Category:    "audio",
		Description: "IMA ADPCM encode signature: nibble quantization with step-size table adaptation",
		Build:       buildRawCAudio,
	})
	register(Kernel{
		Name:        "rasta",
		Category:    "audio",
		Description: "RASTA-PLP signature: FP IIR band filtering plus energy accumulation",
		FPHeavy:     true,
		Build:       buildRasta,
	})
}

// imaStepTable is the first part of the IMA ADPCM step table.
var imaStepTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
	34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
	157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024,
}

var imaIndexAdjust = []int64{-1, -1, -1, -1, 2, 4, 6, 8}

// buildG721Enc: per sample, compute diff = x - predicted, quantize the
// magnitude through a comparison tree against scaled step thresholds,
// update the predictor and step index. Serial dependence through the
// predictor, branch-heavy — the classic ADPCM profile.
func buildG721Enc(scale int) *program.Program {
	n := 3000 * scale
	b := program.NewBuilder("g721enc")
	in := b.DataWords(smoothSamples(0x6721, n, 8000))
	steps := b.DataWords(imaStepTable)
	adj := b.DataWords(imaIndexAdjust)
	chk := b.Reserve(8)

	const (
		rI     = isa.R20
		rN     = isa.R21
		rIn    = isa.R10
		rSteps = isa.R11
		rAdj   = isa.R12
		rPred  = isa.R1 // predictor state
		rIdx   = isa.R2 // step index
		rX     = isa.R3
		rDiff  = isa.R4
		rStep  = isa.R5
		rCode  = isa.R6
		rT     = isa.R7
		rSign  = isa.R8
		rChk   = isa.R9
		rMaxI  = isa.R13
	)

	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, in)
	b.Li(rSteps, steps)
	b.Li(rAdj, adj)
	b.Li(rPred, 0)
	b.Li(rIdx, 0)
	b.Li(rChk, 0)
	b.Li(rMaxI, 63)

	b.Label("sample")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rIn)
		b.Load(isa.LW, rX, rT, 0)
		b.R(isa.SUB, rDiff, rX, rPred)
		// sign and magnitude
		b.Li(rSign, 0)
		b.Br(isa.BGE, rDiff, isa.R0, "pos")
		b.Li(rSign, 1)
		b.R(isa.SUB, rDiff, isa.R0, rDiff)
		b.Label("pos")
		// step = steps[idx]
		b.I(isa.SLLI, rT, rIdx, 3)
		b.R(isa.ADD, rT, rT, rSteps)
		b.Load(isa.LW, rStep, rT, 0)
		// Quantize: code = 0..3 via comparison tree (diff vs step, 2*step, 4*step)
		b.Li(rCode, 0)
		b.Br(isa.BLT, rDiff, rStep, "quantized")
		b.Li(rCode, 1)
		b.I(isa.SLLI, rT, rStep, 1)
		b.Br(isa.BLT, rDiff, rT, "quantized")
		b.Li(rCode, 2)
		b.I(isa.SLLI, rT, rStep, 2)
		b.Br(isa.BLT, rDiff, rT, "quantized")
		b.Li(rCode, 3)
		b.Label("quantized")
		// Reconstruct: delta = step*(2*code+1)/2 ; pred += sign? -delta : delta
		b.I(isa.SLLI, rT, rCode, 1)
		b.I(isa.ADDI, rT, rT, 1)
		b.R(isa.MUL, rT, rT, rStep)
		b.I(isa.SRAI, rT, rT, 1)
		b.Br(isa.BEQ, rSign, isa.R0, "posupd")
		b.R(isa.SUB, rPred, rPred, rT)
		b.Jmp("updated")
		b.Label("posupd")
		b.R(isa.ADD, rPred, rPred, rT)
		b.Label("updated")
		// idx += adjust[code] clamped to [0,63]
		b.I(isa.SLLI, rT, rCode, 3)
		b.R(isa.ADD, rT, rT, rAdj)
		b.Load(isa.LW, rT, rT, 0)
		b.R(isa.ADD, rIdx, rIdx, rT)
		b.Br(isa.BGE, rIdx, isa.R0, "idxlo")
		b.Li(rIdx, 0)
		b.Label("idxlo")
		b.Br(isa.BGE, rMaxI, rIdx, "idxok")
		b.Li(rIdx, 63)
		b.Label("idxok")
		// checksum: fold the code and sign bits
		b.I(isa.SLLI, rT, rCode, 1)
		b.R(isa.OR, rT, rT, rSign)
		b.I(isa.SLLI, rChk, rChk, 3)
		b.R(isa.XOR, rChk, rChk, rT)
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "sample")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildGsmDec: y[i] = x[i] + (a1*y[i-1] + a2*y[i-2]) >> 12 — a serial
// second-order IIR synthesis filter with fixed-point coefficients.
func buildGsmDec(scale int) *program.Program {
	n := 4000 * scale
	b := program.NewBuilder("gsmdec")
	in := b.DataWords(smoothSamples(0x65D, n, 2000))
	out := b.Reserve(n * 8)
	chk := b.Reserve(8)

	const (
		rI   = isa.R20
		rN   = isa.R21
		rIn  = isa.R10
		rOut = isa.R11
		rY1  = isa.R1
		rY2  = isa.R2
		rX   = isa.R3
		rA   = isa.R4
		rT   = isa.R5
		rA1  = isa.R6
		rA2  = isa.R7
		rChk = isa.R9
	)

	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, in)
	b.Li(rOut, out)
	b.Li(rY1, 0)
	b.Li(rY2, 0)
	b.Li(rA1, 3100) // ~0.757 in Q12
	b.Li(rA2, -1500)
	b.Li(rChk, 0)

	b.Label("sample")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rIn)
		b.Load(isa.LW, rX, rT, 0)
		b.R(isa.MUL, rA, rA1, rY1)
		b.R(isa.MUL, rT, rA2, rY2)
		b.R(isa.ADD, rA, rA, rT)
		b.I(isa.SRAI, rA, rA, 12)
		b.R(isa.ADD, rX, rX, rA)
		b.Mov(rY2, rY1)
		b.Mov(rY1, rX)
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rOut)
		b.Store(isa.SW, rX, rT, 0)
		b.R(isa.XOR, rChk, rChk, rX)
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "sample")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildGsmEnc: autocorrelation r[k] = sum_n x[n]*x[n-k] for k = 0..8 over
// speech frames — the multiply-accumulate core of GSM's LPC analysis.
func buildGsmEnc(scale int) *program.Program {
	frames := 12 * scale
	frameLen := 160
	lags := 9
	n := frames * frameLen
	b := program.NewBuilder("gsmenc")
	in := b.DataWords(smoothSamples(0x65E, n, 4000))
	acf := b.Reserve(lags * 8)
	chk := b.Reserve(8)

	const (
		rF    = isa.R20
		rNF   = isa.R21
		rK    = isa.R22
		rNK   = isa.R23
		rN    = isa.R24
		rBase = isa.R10
		rAcf  = isa.R11
		rI    = isa.R12
		rAcc  = isa.R1
		rX    = isa.R2
		rY    = isa.R3
		rT    = isa.R4
		rChk  = isa.R9
	)

	b.Li(rF, 0)
	b.Li(rNF, int64(frames))
	b.Li(rNK, int64(lags))
	b.Li(rN, int64(frameLen))
	b.Li(rBase, in)
	b.Li(rAcf, acf)
	b.Li(rChk, 0)

	b.Label("frame")
	{
		b.Li(rK, 0)
		b.Label("lag")
		{
			b.Li(rAcc, 0)
			b.Mov(rI, rK)
			b.Label("mac")
			{
				b.I(isa.SLLI, rT, rI, 3)
				b.R(isa.ADD, rT, rT, rBase)
				b.Load(isa.LW, rX, rT, 0) // x[n]
				b.I(isa.SLLI, rT, rK, 3)
				b.R(isa.SUB, rT, isa.R0, rT)
				b.I(isa.SLLI, rY, rI, 3)
				b.R(isa.ADD, rT, rT, rY)
				b.R(isa.ADD, rT, rT, rBase)
				b.Load(isa.LW, rY, rT, 0) // x[n-k]
				b.R(isa.MUL, rX, rX, rY)
				b.R(isa.ADD, rAcc, rAcc, rX)
				b.I(isa.ADDI, rI, rI, 1)
				b.Br(isa.BLT, rI, rN, "mac")
			}
			b.I(isa.SLLI, rT, rK, 3)
			b.R(isa.ADD, rT, rT, rAcf)
			b.Store(isa.SW, rAcc, rT, 0)
			b.R(isa.XOR, rChk, rChk, rAcc)
			b.I(isa.ADDI, rK, rK, 1)
			b.Br(isa.BLT, rK, rNK, "lag")
		}
		b.I(isa.ADDI, rBase, rBase, int64(frameLen*8))
		b.I(isa.ADDI, rF, rF, 1)
		b.Br(isa.BLT, rF, rNF, "frame")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildRawCAudio: IMA ADPCM with 4-bit codes and table-driven step
// adaptation; similar to g721enc but with the full nibble loop and output
// packing (shifts/ors), like MediaBench's rawcaudio.
func buildRawCAudio(scale int) *program.Program {
	n := 3200 * scale
	b := program.NewBuilder("rawcaudio")
	in := b.DataWords(smoothSamples(0xADCA, n, 12000))
	steps := b.DataWords(imaStepTable)
	adj := b.DataWords(imaIndexAdjust)
	out := b.Reserve(n) // one byte per two samples, over-reserved
	chk := b.Reserve(8)

	const (
		rI     = isa.R20
		rN     = isa.R21
		rIn    = isa.R10
		rSteps = isa.R11
		rAdj   = isa.R12
		rOut   = isa.R13
		rPred  = isa.R1
		rIdx   = isa.R2
		rX     = isa.R3
		rDiff  = isa.R4
		rStep  = isa.R5
		rCode  = isa.R6
		rT     = isa.R7
		rPack  = isa.R8
		rChk   = isa.R9
		rMaxI  = isa.R14
		rPhase = isa.R15
		rOutP  = isa.R16
	)

	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, in)
	b.Li(rSteps, steps)
	b.Li(rAdj, adj)
	b.Li(rOut, out)
	b.Mov(rOutP, rOut)
	b.Li(rPred, 0)
	b.Li(rIdx, 0)
	b.Li(rChk, 0)
	b.Li(rMaxI, 63)
	b.Li(rPhase, 0)
	b.Li(rPack, 0)

	b.Label("sample")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rIn)
		b.Load(isa.LW, rX, rT, 0)
		b.R(isa.SUB, rDiff, rX, rPred)
		b.Li(rCode, 0)
		b.Br(isa.BGE, rDiff, isa.R0, "mag")
		b.Li(rCode, 8) // sign bit
		b.R(isa.SUB, rDiff, isa.R0, rDiff)
		b.Label("mag")
		b.I(isa.SLLI, rT, rIdx, 3)
		b.R(isa.ADD, rT, rT, rSteps)
		b.Load(isa.LW, rStep, rT, 0)
		// 3-bit magnitude via successive halving comparisons.
		b.Br(isa.BLT, rDiff, rStep, "bit2done")
		b.I(isa.ORI, rCode, rCode, 4)
		b.R(isa.SUB, rDiff, rDiff, rStep)
		b.Label("bit2done")
		b.I(isa.SRAI, rStep, rStep, 1)
		b.Br(isa.BLT, rDiff, rStep, "bit1done")
		b.I(isa.ORI, rCode, rCode, 2)
		b.R(isa.SUB, rDiff, rDiff, rStep)
		b.Label("bit1done")
		b.I(isa.SRAI, rStep, rStep, 1)
		b.Br(isa.BLT, rDiff, rStep, "bit0done")
		b.I(isa.ORI, rCode, rCode, 1)
		b.Label("bit0done")
		// Reconstruct predictor from code (sign in bit 3).
		b.I(isa.SLLI, rT, rIdx, 3)
		b.R(isa.ADD, rT, rT, rSteps)
		b.Load(isa.LW, rStep, rT, 0)
		b.I(isa.ANDI, rT, rCode, 7)
		b.I(isa.SLLI, rT, rT, 1)
		b.I(isa.ADDI, rT, rT, 1)
		b.R(isa.MUL, rT, rT, rStep)
		b.I(isa.SRAI, rT, rT, 3)
		b.I(isa.ANDI, rDiff, rCode, 8)
		b.Br(isa.BEQ, rDiff, isa.R0, "addup")
		b.R(isa.SUB, rPred, rPred, rT)
		b.Jmp("predok")
		b.Label("addup")
		b.R(isa.ADD, rPred, rPred, rT)
		b.Label("predok")
		// idx adaptation via adjust table on the magnitude bits.
		b.I(isa.ANDI, rT, rCode, 7)
		b.I(isa.SLLI, rT, rT, 3)
		b.R(isa.ADD, rT, rT, rAdj)
		b.Load(isa.LW, rT, rT, 0)
		b.R(isa.ADD, rIdx, rIdx, rT)
		b.Br(isa.BGE, rIdx, isa.R0, "clamplo")
		b.Li(rIdx, 0)
		b.Label("clamplo")
		b.Br(isa.BGE, rMaxI, rIdx, "clamphi")
		b.Li(rIdx, 63)
		b.Label("clamphi")
		// Pack two 4-bit codes per byte.
		b.Br(isa.BNE, rPhase, isa.R0, "hi")
		b.Mov(rPack, rCode)
		b.Li(rPhase, 1)
		b.Jmp("packed")
		b.Label("hi")
		b.I(isa.SLLI, rT, rCode, 4)
		b.R(isa.OR, rPack, rPack, rT)
		b.Store(isa.SB, rPack, rOutP, 0)
		b.I(isa.ADDI, rOutP, rOutP, 1)
		b.R(isa.XOR, rChk, rChk, rPack)
		b.Li(rPhase, 0)
		b.Label("packed")
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "sample")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildRasta: a bank of second-order FP IIR filters applied to the same
// input, then per-band energy accumulation — the filtering core of
// RASTA-PLP feature extraction.
func buildRasta(scale int) *program.Program {
	n := 1500 * scale
	bands := 8
	b := program.NewBuilder("rasta")
	in := b.DataFloats(floatSamples(0x4A57A, n))
	// Per-band biquad coefficients (b0, b1, a1, a2).
	coefs := make([]float64, 0, bands*4)
	for k := 0; k < bands; k++ {
		f := 0.05 + 0.1*float64(k)
		coefs = append(coefs, 0.2+0.05*float64(k), 0.1, 1.6-f, -(0.64 + 0.02*float64(k)))
	}
	cf := b.DataFloats(coefs)
	energy := b.Reserve(bands * 8)
	chk := b.Reserve(8)

	const (
		rK    = isa.R20
		rNK   = isa.R21
		rI    = isa.R22
		rN    = isa.R23
		rIn   = isa.R10
		rCf   = isa.R11
		rEn   = isa.R12
		rT    = isa.R5
		fX    = isa.F1
		fY    = isa.F2
		fY1   = isa.F3
		fY2   = isa.F4
		fX1   = isa.F5
		fB0   = isa.F6
		fB1   = isa.F7
		fA1   = isa.F8
		fA2   = isa.F9
		fAcc  = isa.F10
		fTmp  = isa.F11
		rAddr = isa.R6
	)

	b.Li(rK, 0)
	b.Li(rNK, int64(bands))
	b.Li(rN, int64(n))
	b.Li(rIn, in)
	b.Li(rCf, cf)
	b.Li(rEn, energy)

	b.Label("band")
	{
		b.I(isa.SLLI, rT, rK, 5) // 4 coefs * 8 bytes
		b.R(isa.ADD, rAddr, rT, rCf)
		b.Load(isa.FLW, fB0, rAddr, 0)
		b.Load(isa.FLW, fB1, rAddr, 8)
		b.Load(isa.FLW, fA1, rAddr, 16)
		b.Load(isa.FLW, fA2, rAddr, 24)
		b.Fli(fY1, 0)
		b.Fli(fY2, 0)
		b.Fli(fX1, 0)
		b.Fli(fAcc, 0)
		b.Li(rI, 0)
		b.Label("sample")
		{
			b.I(isa.SLLI, rT, rI, 3)
			b.R(isa.ADD, rT, rT, rIn)
			b.Load(isa.FLW, fX, rT, 0)
			b.R(isa.FMUL, fY, fB0, fX)
			b.R(isa.FMUL, fTmp, fB1, fX1)
			b.R(isa.FADD, fY, fY, fTmp)
			b.R(isa.FMUL, fTmp, fA1, fY1)
			b.R(isa.FADD, fY, fY, fTmp)
			b.R(isa.FMUL, fTmp, fA2, fY2)
			b.R(isa.FADD, fY, fY, fTmp)
			b.Mov(fY2, fY1)
			b.Mov(fY1, fY)
			b.Mov(fX1, fX)
			b.R(isa.FMUL, fTmp, fY, fY)
			b.R(isa.FADD, fAcc, fAcc, fTmp)
			b.I(isa.ADDI, rI, rI, 1)
			b.Br(isa.BLT, rI, rN, "sample")
		}
		b.I(isa.SLLI, rT, rK, 3)
		b.R(isa.ADD, rT, rT, rEn)
		b.Store(isa.FSW, fAcc, rT, 0)
		b.I(isa.ADDI, rK, rK, 1)
		b.Br(isa.BLT, rK, rNK, "band")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, isa.R0, rT, 0)
	b.Halt()
	return b.MustBuild()
}
