package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "pgpenc",
		Category:    "encryption",
		Description: "PGP encrypt signature: modular exponentiation by square-and-multiply (serial MUL/REM chain)",
		Build:       buildPgpEnc,
	})
	register(Kernel{
		Name:        "pgpdec",
		Category:    "encryption",
		Description: "PGP decrypt signature: modular exponentiation plus ASCII-armor byte scanning",
		Build:       buildPgpDec,
	})
}

// emitModExp emits code computing result = base^exp mod m over an array
// of message words, one modexp per word. Register conventions are local
// to the emitted fragment.
func emitModExp(b *program.Builder, prefix string, nWords int, msgAddr, outAddr int64, exp, mod int64) {
	const (
		rI    = isa.R20
		rN    = isa.R21
		rMsg  = isa.R10
		rOut  = isa.R11
		rBase = isa.R1
		rExp  = isa.R2
		rRes  = isa.R3
		rMod  = isa.R4
		rT    = isa.R5
		rBit  = isa.R6
		rChk  = isa.R9
	)
	b.Li(rI, 0)
	b.Li(rN, int64(nWords))
	b.Li(rMsg, msgAddr)
	b.Li(rOut, outAddr)
	b.Li(rMod, mod)

	b.Label(prefix + "word")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rMsg)
		b.Load(isa.LW, rBase, rT, 0)
		b.R(isa.REM, rBase, rBase, rMod)
		b.Li(rExp, exp)
		b.Li(rRes, 1)
		b.Label(prefix + "bit")
		{
			b.I(isa.ANDI, rBit, rExp, 1)
			b.Br(isa.BEQ, rBit, isa.R0, prefix+"nomul")
			b.R(isa.MUL, rRes, rRes, rBase)
			b.R(isa.REM, rRes, rRes, rMod)
			b.Label(prefix + "nomul")
			b.R(isa.MUL, rBase, rBase, rBase)
			b.R(isa.REM, rBase, rBase, rMod)
			b.I(isa.SRLI, rExp, rExp, 1)
			b.Br(isa.BNE, rExp, isa.R0, prefix+"bit")
		}
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rOut)
		b.Store(isa.SW, rRes, rT, 0)
		b.R(isa.XOR, rChk, rChk, rRes)
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, prefix+"word")
	}
}

// buildPgpEnc: modexp with a 16-bit exponent over the message words.
// Long serial MUL→REM chains exercise the non-pipelined divide units and
// produce poorly predictable intermediate values, like real RSA.
func buildPgpEnc(scale int) *program.Program {
	n := 180 * scale
	b := program.NewBuilder("pgpenc")
	msgVals := intSamples(0x9690, n, 1<<30)
	for i := range msgVals {
		if msgVals[i] < 0 {
			msgVals[i] = -msgVals[i]
		}
	}
	msg := b.DataWords(msgVals)
	out := b.Reserve(n * 8)
	chk := b.Reserve(8)

	b.Li(isa.R9, 0)
	emitModExp(b, "e", n, msg, out, 0xC20F, 1_000_003)
	b.Li(isa.R5, chk)
	b.Store(isa.SW, isa.R9, isa.R5, 0)
	b.Halt()
	return b.MustBuild()
}

// buildPgpDec: a shorter modexp pass plus an ASCII-armor scan: walk a
// byte buffer classifying characters (alnum vs padding vs newline) with
// a branch tree and accumulating a radix-64 decode.
func buildPgpDec(scale int) *program.Program {
	n := 90 * scale
	textLen := 4000 * scale
	b := program.NewBuilder("pgpdec")
	msgVals := intSamples(0x9691, n, 1<<30)
	for i := range msgVals {
		if msgVals[i] < 0 {
			msgVals[i] = -msgVals[i]
		}
	}
	msg := b.DataWords(msgVals)
	out := b.Reserve(n * 8)
	// ASCII-armor-like text: base64 alphabet with newlines and padding.
	text := make([]byte, textLen)
	l := lcg(0xA4A)
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	for i := range text {
		switch {
		case i%77 == 76:
			text[i] = '\n'
		case l.next()%97 == 0:
			text[i] = '='
		default:
			text[i] = alpha[l.next()%64]
		}
	}
	textA := b.DataBytes(text)
	chk := b.Reserve(8)

	b.Li(isa.R9, 0)
	emitModExp(b, "d", n, msg, out, 0x89, 999_983)

	// Armor scan.
	const (
		rI    = isa.R20
		rN    = isa.R21
		rText = isa.R10
		rC    = isa.R1
		rAcc  = isa.R2
		rBits = isa.R3
		rT    = isa.R5
		rChk  = isa.R9
		rLo   = isa.R6
	)
	b.Li(rI, 0)
	b.Li(rN, int64(textLen))
	b.Li(rText, textA)
	b.Li(rAcc, 0)
	b.Li(rBits, 0)

	b.Label("scan")
	{
		b.R(isa.ADD, rT, rText, rI)
		b.Load(isa.LB, rC, rT, 0)
		// newline: skip
		b.Li(rLo, '\n')
		b.Br(isa.BEQ, rC, rLo, "next")
		// padding: flush accumulator
		b.Li(rLo, '=')
		b.Br(isa.BNE, rC, rLo, "decode")
		b.R(isa.XOR, rChk, rChk, rAcc)
		b.Li(rAcc, 0)
		b.Li(rBits, 0)
		b.Jmp("next")
		b.Label("decode")
		// Classify: A-Z -> c-65, a-z -> c-71, 0-9 -> c+4, else 62/63.
		b.Li(rLo, 'Z'+1)
		b.Br(isa.BGE, rC, rLo, "lower")
		b.Li(rLo, 'A')
		b.Br(isa.BLT, rC, rLo, "digitish")
		b.I(isa.ADDI, rC, rC, -65)
		b.Jmp("gotval")
		b.Label("lower")
		b.Li(rLo, 'a')
		b.Br(isa.BLT, rC, rLo, "gotval62")
		b.I(isa.ADDI, rC, rC, -71)
		b.Jmp("gotval")
		b.Label("digitish")
		b.Li(rLo, '0')
		b.Br(isa.BLT, rC, rLo, "gotval63")
		b.I(isa.ADDI, rC, rC, 4)
		b.Jmp("gotval")
		b.Label("gotval62")
		b.Li(rC, 62)
		b.Jmp("gotval")
		b.Label("gotval63")
		b.Li(rC, 63)
		b.Label("gotval")
		b.I(isa.SLLI, rAcc, rAcc, 6)
		b.R(isa.OR, rAcc, rAcc, rC)
		b.I(isa.ADDI, rBits, rBits, 6)
		b.Li(rLo, 24)
		b.Br(isa.BLT, rBits, rLo, "next")
		b.R(isa.XOR, rChk, rChk, rAcc)
		b.Li(rAcc, 0)
		b.Li(rBits, 0)
		b.Label("next")
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "scan")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}
