package workload

import (
	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func init() {
	register(Kernel{
		Name:        "epicenc",
		Category:    "image",
		Description: "EPIC encode signature: multi-level Haar-style wavelet analysis (paired lowpass/highpass, strided)",
		Build:       buildEpicEnc,
	})
	register(Kernel{
		Name:        "epicdec",
		Category:    "image",
		Description: "EPIC decode signature: wavelet synthesis plus zero-run scanning with data-dependent branches",
		Build:       buildEpicDec,
	})
}

// buildEpicEnc: levels of l[i] = (x[2i]+x[2i+1])>>1, h[i] = x[2i]-x[2i+1],
// rewriting in place so deeper levels reread the lowpass band.
func buildEpicEnc(scale int) *program.Program {
	n := 2048 * scale // power-of-two sample count
	levels := 6
	b := program.NewBuilder("epicenc")
	in := b.DataWords(smoothSamples(0xE51C, n, 1023))
	tmp := b.Reserve(n * 8)
	chk := b.Reserve(8)

	const (
		rLvl  = isa.R20
		rNLvl = isa.R21
		rLen  = isa.R22 // current band length
		rI    = isa.R23
		rHalf = isa.R24
		rIn   = isa.R10
		rTmp  = isa.R11
		rA    = isa.R1
		rB    = isa.R2
		rL    = isa.R3
		rH    = isa.R4
		rT    = isa.R5
		rT2   = isa.R6
		rChk  = isa.R9
	)

	b.Li(rLvl, 0)
	b.Li(rNLvl, int64(levels))
	b.Li(rLen, int64(n))
	b.Li(rChk, 0)

	b.Label("level")
	{
		b.I(isa.SRAI, rHalf, rLen, 1)
		b.Li(rI, 0)
		b.Li(rIn, in)
		b.Li(rTmp, tmp)
		b.Label("pair")
		{
			b.I(isa.SLLI, rT, rI, 4) // &x[2i] = in + 16*i
			b.R(isa.ADD, rT, rT, rIn)
			b.Load(isa.LW, rA, rT, 0)
			b.Load(isa.LW, rB, rT, 8)
			b.R(isa.ADD, rL, rA, rB)
			b.I(isa.SRAI, rL, rL, 1)
			b.R(isa.SUB, rH, rA, rB)
			// tmp[i] = l ; tmp[half+i] = h
			b.I(isa.SLLI, rT, rI, 3)
			b.R(isa.ADD, rT, rT, rTmp)
			b.Store(isa.SW, rL, rT, 0)
			b.I(isa.SLLI, rT2, rHalf, 3)
			b.R(isa.ADD, rT, rT, rT2)
			b.Store(isa.SW, rH, rT, 0)
			// Additive fold (XOR of near-symmetric highpass values can
			// cancel to zero).
			b.R(isa.ADD, rChk, rChk, rH)
			b.R(isa.ADD, rChk, rChk, rL)
			b.I(isa.ADDI, rI, rI, 1)
			b.Br(isa.BLT, rI, rHalf, "pair")
		}
		// Copy tmp back to in for the next level (whole band).
		b.Li(rI, 0)
		b.Label("copy")
		{
			b.I(isa.SLLI, rT, rI, 3)
			b.R(isa.ADD, rT2, rT, rTmp)
			b.Load(isa.LW, rA, rT2, 0)
			b.R(isa.ADD, rT2, rT, rIn)
			b.Store(isa.SW, rA, rT2, 0)
			b.I(isa.ADDI, rI, rI, 1)
			b.Br(isa.BLT, rI, rLen, "copy")
		}
		b.Mov(rLen, rHalf)
		b.I(isa.ADDI, rLvl, rLvl, 1)
		b.Br(isa.BLT, rLvl, rNLvl, "level")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Halt()
	return b.MustBuild()
}

// buildEpicDec: one synthesis level (x[2i]=l+((h+1)>>1), x[2i+1]=x[2i]-h)
// followed by a zero-run scan that counts runs of small coefficients —
// highly data-dependent branching, like EPIC's run-length decoder.
func buildEpicDec(scale int) *program.Program {
	n := 2048 * scale
	b := program.NewBuilder("epicdec")
	// Sparse coefficients: mostly zero with occasional spikes.
	coeffs := intSamples(0xED4C, n, 40)
	for i := range coeffs {
		if coeffs[i] > -30 && coeffs[i] < 30 {
			coeffs[i] = 0
		}
	}
	in := b.DataWords(coeffs)
	out := b.Reserve(n * 16)
	chk := b.Reserve(16)

	const (
		rI    = isa.R20
		rN    = isa.R21
		rHalf = isa.R22
		rIn   = isa.R10
		rOut  = isa.R11
		rL    = isa.R1
		rH    = isa.R2
		rE    = isa.R3
		rO    = isa.R4
		rT    = isa.R5
		rT2   = isa.R6
		rRun  = isa.R7
		rRuns = isa.R8
		rChk  = isa.R9
	)

	b.Li(rN, int64(n))
	b.I(isa.SRAI, rHalf, rN, 1)
	b.Li(rI, 0)
	b.Li(rIn, in)
	b.Li(rOut, out)
	b.Li(rChk, 0)

	b.Label("synth")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT2, rT, rIn)
		b.Load(isa.LW, rL, rT2, 0) // l = in[i]
		b.I(isa.SLLI, rT, rHalf, 3)
		b.R(isa.ADD, rT2, rT2, rT)
		b.Load(isa.LW, rH, rT2, 0) // h = in[half+i]
		b.I(isa.ADDI, rE, rH, 1)
		b.I(isa.SRAI, rE, rE, 1)
		b.R(isa.ADD, rE, rE, rL) // even = l + (h+1)/2
		b.R(isa.SUB, rO, rE, rH) // odd  = even - h
		b.I(isa.SLLI, rT, rI, 4)
		b.R(isa.ADD, rT, rT, rOut)
		b.Store(isa.SW, rE, rT, 0)
		b.Store(isa.SW, rO, rT, 8)
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rHalf, "synth")
	}

	// Zero-run scan over the reconstructed signal.
	b.Li(rI, 0)
	b.Li(rRun, 0)
	b.Li(rRuns, 0)
	b.Label("scan")
	{
		b.I(isa.SLLI, rT, rI, 3)
		b.R(isa.ADD, rT, rT, rOut)
		b.Load(isa.LW, rE, rT, 0)
		b.Br(isa.BNE, rE, isa.R0, "nonzero")
		b.I(isa.ADDI, rRun, rRun, 1)
		b.Jmp("next")
		b.Label("nonzero")
		b.Br(isa.BEQ, rRun, isa.R0, "noflush")
		b.I(isa.ADDI, rRuns, rRuns, 1)
		b.R(isa.ADD, rChk, rChk, rRun)
		b.Li(rRun, 0)
		b.Label("noflush")
		b.R(isa.XOR, rChk, rChk, rE)
		b.Label("next")
		b.I(isa.ADDI, rI, rI, 1)
		b.Br(isa.BLT, rI, rN, "scan")
	}
	b.Li(rT, chk)
	b.Store(isa.SW, rChk, rT, 0)
	b.Store(isa.SW, rRuns, rT, 8)
	b.Halt()
	return b.MustBuild()
}
