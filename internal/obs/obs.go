// Package obs is the stdlib-only distributed-tracing subsystem behind
// clusterd's third observability pillar (metrics and logs being the
// first two): Dapper-style spans with W3C traceparent propagation, a
// lock-cheap bounded ring collector, and exporters for Chrome
// trace-event JSON (chrome://tracing / Perfetto loadable) and a plain
// span dump.
//
// Design constraints, in order:
//
//   - The simulation hot loop must stay allocation-free: spans start
//     and end OUTSIDE the cycle loop (admission, queue wait, dispatch,
//     trace materialization, one span around the whole simulation);
//     anything per-cycle is a plain counter read at job end
//     (core.Sim.PhaseCycles) and recorded as span attributes.
//   - Every instrumentation entry point is nil-receiver safe, so a
//     code path without a collector (cmd/experiments, plain
//     runner.Simulate) pays one nil check and no allocation.
//   - A span is recorded into the ring only when it ends; an abandoned
//     span costs nothing and leaks nothing.
//
// Propagation follows the W3C Trace Context recommendation: the
// "traceparent" header carries "00-<32 hex trace id>-<16 hex parent
// span id>-<2 hex flags>". Malformed or foreign headers are tolerated
// by starting a fresh root trace — propagation failure degrades to a
// shorter trace, never to a request failure.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// SpanContext is the propagated identity of a span: what crosses
// process boundaries in a traceparent header.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent decodes a W3C traceparent header. It is tolerant by
// contract: any malformed, foreign-version-ff or all-zero header
// returns ok=false and the caller starts a new root trace — never an
// error, never a 4xx.
func ParseTraceparent(h string) (sc SpanContext, ok bool) {
	h = strings.TrimSpace(h)
	// version "-" trace-id "-" parent-id "-" flags = 2+1+32+1+16+1+2.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	version := h[:2]
	if !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	// Future versions may append fields after the flags; version 00
	// must be exactly 55 chars.
	if version == "00" && len(h) != 55 {
		return SpanContext{}, false
	}
	sc = SpanContext{TraceID: h[3:35], SpanID: h[36:52]}
	if !sc.Valid() || !isHex(h[53:55]) {
		return SpanContext{}, false
	}
	return sc, true
}

// isHex reports whether s is non-empty lowercase hex (zero allowed —
// used for the version and flags fields, where 00 is legal).
func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// isHexID reports whether s is exactly n lowercase hex chars and not
// all zero (the W3C all-zero id is the "invalid" sentinel).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// NewTraceID returns a fresh random 32-hex trace id. math/rand/v2's
// global functions are concurrency-safe and plenty for correlation ids
// (these are not security tokens).
func NewTraceID() string {
	var b [16]byte
	for {
		hi, lo := rand.Uint64(), rand.Uint64()
		if hi|lo == 0 {
			continue // all-zero is the W3C invalid sentinel
		}
		putUint64(b[:8], hi)
		putUint64(b[8:], lo)
		return hex.EncodeToString(b[:])
	}
}

// NewSpanID returns a fresh random 16-hex span id.
func NewSpanID() string {
	var b [8]byte
	for {
		v := rand.Uint64()
		if v == 0 {
			continue
		}
		putUint64(b[:], v)
		return hex.EncodeToString(b[:])
	}
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Span is one finished timed operation in a trace, the unit the
// collector ring stores and the exporters render. Attrs values are
// strings so the wire shape stays trivial; numeric attributes are
// formatted by the instrumentation site.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Service names the process that recorded the span ("clusterd",
	// "coordinator"); the Chrome exporter maps it to a pid lane, so a
	// merged coordinator+replica trace reads as two processes.
	Service string    `json:"service,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	// DurUS is End-Start in microseconds, denormalized so checkers and
	// the Chrome exporter never re-parse timestamps.
	DurUS int64             `json:"dur_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Collector is a bounded ring of finished spans: starting a span is
// two id draws and a timestamp, ending it is one short critical
// section appending to the ring. When the ring wraps, the oldest spans
// are overwritten — recent traces stay queryable, memory stays
// bounded, and nothing is ever blocked on the collector.
type Collector struct {
	service string

	mu      sync.Mutex
	ring    []Span
	next    int
	wrapped bool
	dropped uint64 // spans overwritten by ring wrap, for tracez stats
}

// DefaultRingSize bounds the collector when the caller passes <=0: at
// ~300 B/span this is a few MB of recent history.
const DefaultRingSize = 16384

// NewCollector returns a collector whose spans carry the given service
// name. capacity <= 0 selects DefaultRingSize.
func NewCollector(service string, capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Collector{service: service, ring: make([]Span, 0, capacity)}
}

// Service reports the process name stamped on this collector's spans.
func (c *Collector) Service() string {
	if c == nil {
		return ""
	}
	return c.service
}

// StartRoot starts a span with no local parent. A valid remote parent
// (from a traceparent header) continues that trace; an invalid one
// starts a fresh root trace. Nil-safe: a nil collector returns a nil
// span, and every ActiveSpan method tolerates a nil receiver.
func (c *Collector) StartRoot(name string, remote SpanContext) *ActiveSpan {
	if c == nil {
		return nil
	}
	sp := &ActiveSpan{
		c: c,
		span: Span{
			SpanID:  NewSpanID(),
			Name:    name,
			Service: c.service,
			Start:   time.Now(),
		},
	}
	if remote.Valid() {
		sp.span.TraceID = remote.TraceID
		sp.span.ParentID = remote.SpanID
	} else {
		sp.span.TraceID = NewTraceID()
	}
	return sp
}

// add records a finished span into the ring.
func (c *Collector) add(sp Span) {
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, sp)
	} else {
		c.ring[c.next] = sp
		c.next = (c.next + 1) % cap(c.ring)
		c.wrapped = true
		c.dropped++
	}
	c.mu.Unlock()
}

// snapshotLocked copies the ring oldest-first; c.mu must be held.
func (c *Collector) snapshotLocked() []Span {
	if !c.wrapped {
		return append([]Span(nil), c.ring...)
	}
	out := make([]Span, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// TraceSpans returns every retained finished span of one trace,
// oldest-first. Spans still in flight are not included — they appear
// once they end.
func (c *Collector) TraceSpans(traceID string) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	all := c.snapshotLocked()
	c.mu.Unlock()
	out := make([]Span, 0, 8)
	for _, sp := range all {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Recent returns up to limit of the most recently finished spans,
// oldest-first (limit <= 0 returns the whole retained ring).
func (c *Collector) Recent(limit int) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	all := c.snapshotLocked()
	c.mu.Unlock()
	if limit > 0 && len(all) > limit {
		all = all[len(all)-limit:]
	}
	return all
}

// Dropped reports how many finished spans the ring has overwritten.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Len reports how many finished spans the ring currently retains.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ring)
}

// ActiveSpan is a span in flight. It is recorded into the collector
// ring by End (exactly once); SetAttr may be called from the owning
// goroutine between Start and End. All methods are nil-receiver safe.
type ActiveSpan struct {
	c *Collector

	mu    sync.Mutex
	span  Span
	ended bool
}

// Context returns the span's propagated identity (zero for nil).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.span.TraceID, SpanID: a.span.SpanID}
}

// TraceID returns the span's trace id ("" for nil).
func (a *ActiveSpan) TraceID() string {
	if a == nil {
		return ""
	}
	return a.span.TraceID
}

// SpanID returns the span's own id ("" for nil).
func (a *ActiveSpan) SpanID() string {
	if a == nil {
		return ""
	}
	return a.span.SpanID
}

// StartTime returns when the span started (zero for nil).
func (a *ActiveSpan) StartTime() time.Time {
	if a == nil {
		return time.Time{}
	}
	return a.span.Start
}

// EndTime returns when the span ended (zero for nil or still running).
func (a *ActiveSpan) EndTime() time.Time {
	if a == nil {
		return time.Time{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.span.End
}

// SetAttr attaches a key/value attribute. Setting after End is a
// silent no-op (the span is already in the ring).
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		if a.span.Attrs == nil {
			a.span.Attrs = make(map[string]string, 4)
		}
		a.span.Attrs[k] = v
	}
	a.mu.Unlock()
}

// End finishes the span and records it into the collector ring.
// Idempotent: only the first call records.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	a.span.End = time.Now()
	a.span.DurUS = a.span.End.Sub(a.span.Start).Microseconds()
	sp := a.span
	a.mu.Unlock()
	a.c.add(sp)
}

// StartChild starts a new span under this one, in the same collector
// and trace. Nil-safe: a nil parent yields a nil child.
func (a *ActiveSpan) StartChild(name string) *ActiveSpan {
	if a == nil {
		return nil
	}
	return &ActiveSpan{
		c: a.c,
		span: Span{
			TraceID:  a.span.TraceID,
			SpanID:   NewSpanID(),
			ParentID: a.span.SpanID,
			Name:     name,
			Service:  a.c.service,
			Start:    time.Now(),
		},
	}
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the span (ctx unchanged for nil).
func NewContext(ctx context.Context, s *ActiveSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's active span, or nil.
func FromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}
