package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", valid)
	}
	if sc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || sc.SpanID != "00f067aa0ba902b7" {
		t.Fatalf("parsed %+v", sc)
	}
	if got := sc.Traceparent(); got != valid {
		t.Fatalf("round trip: got %q want %q", got, valid)
	}

	// A future version may carry extra fields after the flags.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatal("future-version header with suffix should parse")
	}

	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 must be exact length
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // all-zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",   // non-hex
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // short version
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
}

func TestNewIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tr, sp := NewTraceID(), NewSpanID()
		if !isHexID(tr, 32) {
			t.Fatalf("bad trace id %q", tr)
		}
		if !isHexID(sp, 16) {
			t.Fatalf("bad span id %q", sp)
		}
		if seen[tr] || seen[sp] {
			t.Fatalf("duplicate id in 100 draws")
		}
		seen[tr], seen[sp] = true, true
	}
}

func TestCollectorSpanLifecycle(t *testing.T) {
	c := NewCollector("testsvc", 8)
	root := c.StartRoot("job", SpanContext{})
	if !root.Context().Valid() {
		t.Fatal("root has invalid context")
	}
	child := root.StartChild("queue.wait")
	child.SetAttr("k", "v")
	if c.Len() != 0 {
		t.Fatalf("in-flight spans must not be in ring, Len=%d", c.Len())
	}
	child.End()
	child.End() // idempotent
	child.SetAttr("late", "ignored")
	root.End()

	if c.Len() != 2 {
		t.Fatalf("Len=%d want 2", c.Len())
	}
	spans := c.TraceSpans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("TraceSpans=%d want 2", len(spans))
	}
	// Ring is oldest-first: child ended first.
	if spans[0].Name != "queue.wait" || spans[1].Name != "job" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentID != root.SpanID() {
		t.Fatalf("child parent %q want %q", spans[0].ParentID, root.SpanID())
	}
	if spans[0].TraceID != root.TraceID() {
		t.Fatal("child and root trace ids differ")
	}
	if spans[0].Attrs["k"] != "v" {
		t.Fatalf("attr lost: %v", spans[0].Attrs)
	}
	if _, ok := spans[0].Attrs["late"]; ok {
		t.Fatal("SetAttr after End must be a no-op")
	}
	if spans[0].Service != "testsvc" {
		t.Fatalf("service %q", spans[0].Service)
	}
	if spans[0].DurUS < 0 || spans[0].End.Before(spans[0].Start) {
		t.Fatalf("bad timing %+v", spans[0])
	}
}

func TestCollectorRemoteParent(t *testing.T) {
	c := NewCollector("svc", 8)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	sp := c.StartRoot("handler", remote)
	if sp.TraceID() != remote.TraceID {
		t.Fatal("remote parent did not continue the trace")
	}
	sp.End()
	if got := c.TraceSpans(remote.TraceID)[0].ParentID; got != remote.SpanID {
		t.Fatalf("parent %q want %q", got, remote.SpanID)
	}

	// Invalid remote context -> fresh root trace.
	sp2 := c.StartRoot("handler", SpanContext{TraceID: "zzz", SpanID: "1"})
	if sp2.TraceID() == "" || sp2.TraceID() == "zzz" {
		t.Fatalf("invalid remote produced trace id %q", sp2.TraceID())
	}
}

func TestCollectorRingWrap(t *testing.T) {
	c := NewCollector("svc", 4)
	for i := 0; i < 10; i++ {
		sp := c.StartRoot("s", SpanContext{})
		sp.SetAttr("i", FormatAttr(i))
		sp.End()
	}
	if c.Len() != 4 {
		t.Fatalf("Len=%d want 4", c.Len())
	}
	if c.Dropped() != 6 {
		t.Fatalf("Dropped=%d want 6", c.Dropped())
	}
	recent := c.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent=%d want 4", len(recent))
	}
	// Oldest-first: the retained spans are i=6..9.
	for k, sp := range recent {
		if want := FormatAttr(6 + k); sp.Attrs["i"] != want {
			t.Fatalf("recent[%d].i=%q want %q", k, sp.Attrs["i"], want)
		}
	}
	if got := c.Recent(2); len(got) != 2 || got[1].Attrs["i"] != "9" {
		t.Fatalf("Recent(2) wrong tail: %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	sp := c.StartRoot("x", SpanContext{})
	if sp != nil {
		t.Fatal("nil collector must return nil span")
	}
	// Every method on a nil span is a no-op, not a panic.
	sp.SetAttr("a", "b")
	sp.End()
	if sp.Context().Valid() || sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatal("nil span has identity")
	}
	if !sp.StartTime().IsZero() || !sp.EndTime().IsZero() {
		t.Fatal("nil span has time")
	}
	if child := sp.StartChild("y"); child != nil {
		t.Fatal("nil span produced a child")
	}
	if c.TraceSpans("t") != nil || c.Recent(5) != nil || c.Len() != 0 || c.Dropped() != 0 || c.Service() != "" {
		t.Fatal("nil collector leaked data")
	}
}

func TestContextHelpers(t *testing.T) {
	c := NewCollector("svc", 8)
	sp := c.StartRoot("root", SpanContext{})
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatal("FromContext lost the span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a span")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil tolerance is the contract
		t.Fatal("nil context returned a span")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("NewContext(nil span) should be identity")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector("clusterd", 16)
	root := c.StartRoot("job j-1", SpanContext{})
	q := root.StartChild("queue.wait")
	time.Sleep(time.Millisecond)
	q.End()
	run := root.StartChild("job.run")
	run.SetAttr("via", "simulated")
	run.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.TraceSpans(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	var meta, complete int
	var sawVia bool
	minTS := 1e18
	for _, ev := range out.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			if ev.Args["name"] != "clusterd" {
				t.Fatalf("process_name %v", ev.Args)
			}
		case "X":
			complete++
			if ev.TS < minTS {
				minTS = ev.TS
			}
			if ev.Dur < 0 {
				t.Fatalf("negative dur in %q", ev.Name)
			}
			if ev.Args["trace_id"] != root.TraceID() {
				t.Fatalf("event %q missing trace_id arg", ev.Name)
			}
			if ev.Name == "job.run" && ev.Args["via"] == "simulated" {
				sawVia = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 1 || complete != 3 {
		t.Fatalf("meta=%d complete=%d", meta, complete)
	}
	if minTS != 0 {
		t.Fatalf("timestamps not normalized, min ts %v", minTS)
	}
	if !sawVia {
		t.Fatal("span attr did not survive into chrome args")
	}
}

func TestWriteChromeTraceLanes(t *testing.T) {
	// Two services (coordinator + replica) and two independent roots:
	// expect two pid lanes and distinct tids for the two roots.
	co := NewCollector("coordinator", 16)
	rep := NewCollector("clusterd", 16)
	r1 := co.StartRoot("job f-1", SpanContext{})
	h := rep.StartRoot("http", r1.Context())
	h.End()
	r1.End()
	r2 := co.StartRoot("job f-2", SpanContext{})
	r2.End()

	spans := append(co.Recent(0), rep.Recent(0)...)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var out chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	tids := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		pids[ev.PID] = true
		tids[ev.Name] = ev.TID
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 process lanes, got %d", len(pids))
	}
	if tids["job f-1"] == tids["job f-2"] {
		t.Fatal("independent roots share a thread lane")
	}
	// The replica's http span has a remote (unretained-in-set) parent:
	// it roots its own lane rather than crashing the walk.
	if _, ok := tids["http"]; !ok {
		t.Fatal("remote-parented span missing from export")
	}
}

func TestWriteSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != `{"spans":[]}` {
		t.Fatalf("empty dump %q", got)
	}

	c := NewCollector("svc", 8)
	sp := c.StartRoot("s", SpanContext{})
	sp.End()
	buf.Reset()
	if err := WriteSpans(&buf, c.Recent(0)); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].Name != "s" || out.Spans[0].TraceID == "" {
		t.Fatalf("span dump %+v", out.Spans)
	}
}

func TestConcurrentCollector(t *testing.T) {
	c := NewCollector("svc", 64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sp := c.StartRoot("s", SpanContext{})
				ch := sp.StartChild("c")
				ch.SetAttr("i", FormatAttr(i))
				ch.End()
				sp.End()
				c.Recent(10)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() != 64 {
		t.Fatalf("Len=%d want full ring", c.Len())
	}
}
