package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" chrome://tracing and Perfetto load).
// Span durations use "ph":"X" complete events; process/thread names
// use "ph":"M" metadata events.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds, trace-relative
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of the format, which
// tolerates trailing metadata better than the bare-array form.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Each distinct span
// Service becomes a named process lane (so a merged coordinator +
// replica trace reads as two processes), and each root span gets its
// own thread lane with its descendants, so concurrent jobs in one
// trace stack instead of overlapping.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := buildChromeEvents(spans)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

func buildChromeEvents(spans []Span) []chromeEvent {
	if len(spans) == 0 {
		return []chromeEvent{}
	}
	// Stable ordering: by start time, then name, so export is
	// deterministic for a given span set.
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].Name < sorted[j].Name
	})

	// Timestamps are trace-relative: normalize to the earliest start so
	// the viewer opens at t=0 instead of years into the epoch.
	epoch := sorted[0].Start

	// pid lane per service, in first-seen order.
	pids := map[string]int{}
	var events []chromeEvent
	pidOf := func(service string) int {
		if service == "" {
			service = "unknown"
		}
		if pid, ok := pids[service]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[service] = pid
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"name": service},
		})
		return pid
	}

	// tid lane per root: walk parent links within the span set; spans
	// whose parent is not retained (remote parent, ring wrap) root
	// their own lane.
	byID := make(map[string]int, len(sorted)) // span id -> index
	for i, sp := range sorted {
		byID[sp.SpanID] = i
	}
	lane := make([]int, len(sorted))
	nextLane := 1
	var laneOf func(i int) int
	laneOf = func(i int) int {
		if lane[i] != 0 {
			return lane[i]
		}
		if p, ok := byID[sorted[i].ParentID]; ok && p != i {
			lane[i] = laneOf(p)
		} else {
			lane[i] = nextLane
			nextLane++
		}
		return lane[i]
	}

	for i, sp := range sorted {
		args := make(map[string]any, len(sp.Attrs)+2)
		for k, v := range sp.Attrs {
			args[k] = v
		}
		args["trace_id"] = sp.TraceID
		args["span_id"] = sp.SpanID
		if sp.ParentID != "" {
			args["parent_id"] = sp.ParentID
		}
		dur := float64(sp.End.Sub(sp.Start)) / float64(time.Microsecond)
		if dur < 0 {
			dur = 0
		}
		events = append(events, chromeEvent{
			Name:  sp.Name,
			Phase: "X",
			TS:    float64(sp.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:   dur,
			PID:   pidOf(sp.Service),
			TID:   laneOf(i),
			Args:  args,
		})
	}
	return events
}

// WriteSpans renders spans as a plain JSON span dump:
// {"spans":[...]} oldest-first — the machine-checkable counterpart of
// the Chrome export.
func WriteSpans(w io.Writer, spans []Span) error {
	if spans == nil {
		spans = []Span{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Spans []Span `json:"spans"`
	}{spans})
}

// FormatAttr formats non-string attribute values at instrumentation
// sites (counters, durations) without each call site importing
// strconv/fmt logic.
func FormatAttr(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}
