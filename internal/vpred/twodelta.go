package vpred

// TwoDelta is the 2-delta stride predictor (Eickemeyer & Vassiliadis;
// used by Sazeides et al., the paper's reference [19]): the prediction
// stride s1 is replaced by a newly observed stride only after that
// stride has been seen twice in a row (tracked in s2). This filters the
// one-off stride breaks at loop boundaries that reset the plain stride
// predictor's confidence, and stands in for the paper's closing remark
// that "the results will likely be better with more complex and more
// effective predictors".
type TwoDelta struct {
	table   []tdEntry
	mask    int
	stats   Stats
	confMax uint8
}

type tdEntry struct {
	last uint64
	s1   int64 // predicting stride
	s2   int64 // candidate stride
	conf uint8
}

// NewTwoDelta builds a 2-delta predictor with the given table size (a
// positive power of two).
func NewTwoDelta(entries int) *TwoDelta {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("vpred: table entries must be a positive power of two")
	}
	return &TwoDelta{table: make([]tdEntry, entries), mask: entries - 1, confMax: 3}
}

// Entries returns the table capacity.
func (t *TwoDelta) Entries() int { return len(t.table) }

// PredictAndTrain implements Predictor.
func (t *TwoDelta) PredictAndTrain(pc, opIdx int, isFP bool, actual uint64) (uint64, bool, bool) {
	if isFP {
		return 0, false, false
	}
	t.stats.Lookups++
	e := &t.table[(pc<<1|opIdx&1)&t.mask]
	pred := e.last + uint64(e.s1)
	confident := e.conf > 2
	correct := pred == actual
	if confident {
		t.stats.Confident++
		if correct {
			t.stats.ConfidentCorrect++
		}
	}
	newStride := int64(actual - e.last)
	switch {
	case correct:
		if e.conf < t.confMax {
			e.conf++
		}
	case newStride == e.s2:
		// The same stride appeared twice in a row: promote it to the
		// predicting stride. One-off breaks (loop wraps) never repeat
		// consecutively, so they no longer disturb s1.
		e.s1 = newStride
		e.conf = 0
	default:
		e.conf = 0
	}
	// s2 always tracks the most recent observed stride.
	e.s2 = newStride
	e.last = actual
	return pred, confident, correct
}

// Stats implements Predictor.
func (t *TwoDelta) Stats() Stats { return t.stats }

var _ Predictor = (*TwoDelta)(nil)
