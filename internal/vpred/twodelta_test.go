package vpred

import (
	"testing"
	"testing/quick"
)

func TestTwoDeltaLearnsStride(t *testing.T) {
	p := NewTwoDelta(1024)
	hits := 0
	for i := 0; i < 20; i++ {
		_, conf, corr := p.PredictAndTrain(5, 0, false, uint64(i*12))
		if conf && corr {
			hits++
		}
	}
	if hits < 13 {
		t.Errorf("stride hits = %d/20, want >= 13", hits)
	}
}

func TestTwoDeltaFiltersOneOffBreaks(t *testing.T) {
	// A sawtooth with period 8: 0,8,...,56, 0,8,... The plain stride
	// predictor mislearns the wrap stride and pays two misses per
	// period; the 2-delta predictor keeps its stride-8 prediction
	// through the wrap (the wrap stride never repeats consecutively)
	// and recovers confident hits one observation earlier.
	seq := func(p Predictor, n int) (hits int) {
		for i := 0; i < n; i++ {
			v := uint64((i % 8) * 8)
			_, conf, corr := p.PredictAndTrain(9, 0, false, v)
			if conf && corr {
				hits++
			}
		}
		return hits
	}
	plain := seq(NewStride(1024), 400)
	td := seq(NewTwoDelta(1024), 400)
	if td <= plain {
		t.Errorf("2-delta (%d hits) should beat plain stride (%d hits) on sawtooth", td, plain)
	}
}

func TestTwoDeltaConstant(t *testing.T) {
	p := NewTwoDelta(1024)
	var conf, corr bool
	for i := 0; i < 10; i++ {
		_, conf, corr = p.PredictAndTrain(3, 1, false, 77)
	}
	if !conf || !corr {
		t.Error("constant stream must become confidently correct")
	}
}

func TestTwoDeltaNoFP(t *testing.T) {
	p := NewTwoDelta(1024)
	for i := 0; i < 10; i++ {
		if _, conf, _ := p.PredictAndTrain(3, 0, true, 5); conf {
			t.Fatal("FP operands must not be predicted")
		}
	}
	if p.Stats().Lookups != 0 {
		t.Error("FP operands must not count as lookups")
	}
}

func TestTwoDeltaRandomStaysUnconfident(t *testing.T) {
	p := NewTwoDelta(1024)
	x := uint64(7)
	confCount := 0
	for i := 0; i < 1000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if _, conf, _ := p.PredictAndTrain(11, 0, false, x); conf {
			confCount++
		}
	}
	if confCount > 10 {
		t.Errorf("random stream confident %d/1000, want <= 10", confCount)
	}
}

func TestTwoDeltaPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTwoDelta must panic on non-power-of-two")
		}
	}()
	NewTwoDelta(100)
}

// Property: stats stay consistent under arbitrary streams.
func TestTwoDeltaStatsProperty(t *testing.T) {
	p := NewTwoDelta(512)
	f := func(pc uint16, v uint64) bool {
		p.PredictAndTrain(int(pc), 0, false, v)
		st := p.Stats()
		return st.Confident <= st.Lookups && st.ConfidentCorrect <= st.Confident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: any fixed-stride stream converges within 6 observations.
func TestTwoDeltaConvergenceProperty(t *testing.T) {
	f := func(pc uint16, start uint64, stride int16) bool {
		p := NewTwoDelta(2048)
		v := start
		for i := 0; i < 6; i++ {
			p.PredictAndTrain(int(pc), 1, false, v)
			v += uint64(int64(stride))
		}
		_, conf, corr := p.PredictAndTrain(int(pc), 1, false, v)
		return conf && corr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
