package vpred

import (
	"testing"
	"testing/quick"
)

func TestStrideLearnsConstant(t *testing.T) {
	s := NewStride(1024)
	var confident, correct bool
	for i := 0; i < 10; i++ {
		_, confident, correct = s.PredictAndTrain(5, 0, false, 42)
	}
	if !confident || !correct {
		t.Errorf("constant value: confident=%v correct=%v, want true,true", confident, correct)
	}
}

func TestStrideLearnsStride(t *testing.T) {
	s := NewStride(1024)
	// Sequence 0, 8, 16, ... (array walk). After the second observation
	// the stride is learned; confidence must climb and predictions hit.
	var hits int
	for i := 0; i < 20; i++ {
		v := uint64(i * 8)
		_, conf, corr := s.PredictAndTrain(7, 1, false, v)
		if conf && corr {
			hits++
		}
	}
	if hits < 15 {
		t.Errorf("stride sequence hits = %d, want >= 15", hits)
	}
}

func TestStrideConfidenceGate(t *testing.T) {
	s := NewStride(1024)
	// From a cold entry the constant stream 5,5,5,... mispredicts twice
	// (pred 0, then pred 10 after stride mislearn), then the counter
	// climbs 0→1→2→3 over observations 3-5; speculation requires the
	// saturated counter, so the first *confident* prediction is
	// observation 6.
	for i := 1; i <= 5; i++ {
		_, conf, _ := s.PredictAndTrain(3, 0, false, 5)
		if conf {
			t.Errorf("observation %d must not be confident yet", i)
		}
	}
	_, conf, corr := s.PredictAndTrain(3, 0, false, 5)
	if !conf || !corr {
		t.Errorf("observation 6 should be confidently correct, got %v %v", conf, corr)
	}
}

func TestStrideRandomValuesStayUnconfident(t *testing.T) {
	s := NewStride(1024)
	// An LCG-scrambled sequence has no stable stride; confidence must
	// rarely build up.
	x := uint64(12345)
	confCount := 0
	for i := 0; i < 1000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		_, conf, _ := s.PredictAndTrain(9, 0, false, x)
		if conf {
			confCount++
		}
	}
	if confCount > 10 {
		t.Errorf("random sequence confident %d/1000 times, want <= 10", confCount)
	}
}

func TestFPOperandsNeverPredicted(t *testing.T) {
	s := NewStride(1024)
	for i := 0; i < 10; i++ {
		if _, conf, _ := s.PredictAndTrain(4, 0, true, 42); conf {
			t.Fatal("FP operand must never be confident")
		}
	}
	if s.Stats().Lookups != 0 {
		t.Error("FP operands must not count as lookups")
	}
	p := NewPerfect()
	if _, conf, _ := p.PredictAndTrain(4, 0, true, 42); conf {
		t.Error("perfect predictor must not predict FP")
	}
}

func TestOperandPositionsIndependent(t *testing.T) {
	s := NewStride(1024)
	for i := 0; i < 5; i++ {
		s.PredictAndTrain(10, 0, false, 100)
		s.PredictAndTrain(10, 1, false, uint64(i))
	}
	_, conf0, corr0 := s.PredictAndTrain(10, 0, false, 100)
	if !conf0 || !corr0 {
		t.Error("left operand should be confidently correct")
	}
	// Right operand follows stride 1 and should also predict correctly,
	// independently of the left.
	_, _, corr1 := s.PredictAndTrain(10, 1, false, 5)
	if !corr1 {
		t.Error("right operand stride should be learned independently")
	}
}

func TestAliasingDegradesSmallTable(t *testing.T) {
	// Two PCs that collide in a tiny table but not in a large one.
	train := func(entries int) float64 {
		s := NewStride(entries)
		for i := 0; i < 2000; i++ {
			// 16 PCs spaced 64 apart: in a 64-entry table they collide on
			// one entry; in a 64K table they are all distinct.
			pc := 100 + (i%16)*64
			s.PredictAndTrain(pc, 0, false, uint64(i%16)*7)
		}
		return s.Stats().HitRatio()
	}
	small := train(64)
	large := train(64 * 1024)
	if small >= large {
		t.Errorf("aliasing should hurt: small=%v large=%v", small, large)
	}
}

func TestPerfectAlwaysCorrect(t *testing.T) {
	p := NewPerfect()
	for i := 0; i < 100; i++ {
		v, conf, corr := p.PredictAndTrain(i, i&1, false, uint64(i*17))
		if !conf || !corr || v != uint64(i*17) {
			t.Fatalf("perfect mispredicted: %d %v %v", v, conf, corr)
		}
	}
	st := p.Stats()
	if st.HitRatio() != 1.0 || st.ConfidentFraction() != 1.0 {
		t.Errorf("perfect stats = %+v", st)
	}
}

func TestNoneNeverPredicts(t *testing.T) {
	n := None{}
	if _, conf, _ := n.PredictAndTrain(1, 0, false, 9); conf {
		t.Error("None must never be confident")
	}
	if n.Stats() != (Stats{}) {
		t.Error("None must have empty stats")
	}
}

func TestStatsRatiosEmpty(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.ConfidentFraction() != 0 {
		t.Error("empty stats must report zero ratios")
	}
}

func TestNewStridePanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStride(%d) must panic", n)
				}
			}()
			NewStride(n)
		}()
	}
}

// Property: for any constant value stream, the predictor converges to
// confident-correct within 5 observations and stays there.
func TestConstantConvergenceProperty(t *testing.T) {
	f := func(pc uint16, v uint64) bool {
		s := NewStride(4096)
		for i := 0; i < 5; i++ {
			s.PredictAndTrain(int(pc), 0, false, v)
		}
		_, conf, corr := s.PredictAndTrain(int(pc), 0, false, v)
		return conf && corr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: stride sequences of arbitrary stride converge similarly.
func TestStrideConvergenceProperty(t *testing.T) {
	f := func(pc uint16, start uint64, stride int32) bool {
		s := NewStride(4096)
		v := start
		for i := 0; i < 5; i++ {
			s.PredictAndTrain(int(pc), 1, false, v)
			v += uint64(int64(stride))
		}
		_, conf, corr := s.PredictAndTrain(int(pc), 1, false, v)
		return conf && corr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Stats counters are monotonic and consistent.
func TestStatsConsistencyProperty(t *testing.T) {
	s := NewStride(1024)
	f := func(pc uint16, v uint64) bool {
		s.PredictAndTrain(int(pc), 0, false, v)
		st := s.Stats()
		return st.Confident <= st.Lookups && st.ConfidentCorrect <= st.Confident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCoverFPExtension(t *testing.T) {
	s := NewStride(1024)
	s.CoverFP = true
	var conf, corr bool
	for i := 0; i < 10; i++ {
		_, conf, corr = s.PredictAndTrain(4, 0, true, 0x3FF0000000000000) // 1.0 bits
	}
	if !conf || !corr {
		t.Error("constant FP bits must be predictable with CoverFP")
	}
	if s.Stats().Lookups == 0 {
		t.Error("CoverFP must count FP lookups")
	}
	p := NewPerfect()
	p.CoverFP = true
	if _, conf, _ := p.PredictAndTrain(4, 0, true, 42); !conf {
		t.Error("perfect with CoverFP must predict FP")
	}
}
