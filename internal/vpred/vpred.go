// Package vpred implements the paper's stride value predictor (§2.2).
//
// The predictor targets *source operands*: the table is indexed by the PC
// of the consuming instruction and the operand position (left/right). Each
// entry holds the last observed value, the last observed stride, and a
// 2-bit saturating confidence counter. A prediction is "confident" — and
// thus usable for speculation — when the counter is saturated, and a miss
// resets it to zero. (The paper describes the gate as "counter value
// greater than 1" without giving the update rule; this reset-on-miss,
// speculate-at-saturation calibration reproduces Figure 5(b)'s operating
// point — 58% of operands confident at a >0.93 hit ratio — whereas a
// ±1 counter with a >1 gate speculates on wavering streams and pays the
// §3.2 reissue-plus-communication cost far more often than the paper
// reports.)
// Lookups and updates both happen at decode, one cycle after fetch, so the
// interface fuses them: PredictAndTrain makes the prediction with the
// pre-update table state, then trains the entry with the actual value.
//
// Floating-point operands are not predicted ("Communications are not zero
// because of fp values, that are not considered by our predictor", §3.3).
//
// A Perfect predictor is provided for the Figure 3 upper-bound experiment:
// it predicts every integer operand correctly and never predicts FP
// operands.
package vpred

// Predictor is the interface the decode stage consumes.
type Predictor interface {
	// PredictAndTrain predicts operand opIdx (0 or 1) of the instruction
	// at pc and trains the predictor with the actual value observed at
	// decode. It returns the predicted value, whether the prediction was
	// confident enough to speculate on, and whether it matched actual.
	// FP operands are never predicted (confident == false).
	PredictAndTrain(pc, opIdx int, isFP bool, actual uint64) (value uint64, confident, correct bool)
	// Stats returns cumulative accounting.
	Stats() Stats
}

// Stats records predictor accounting matching Figure 5(b): how many
// operand lookups there were, how many were confident, and how many of
// the confident ones were correct.
type Stats struct {
	// Lookups counts all integer-operand predictions requested.
	Lookups uint64
	// Confident counts lookups whose confidence exceeded the threshold.
	Confident uint64
	// ConfidentCorrect counts confident lookups whose predicted value
	// matched the actual operand.
	ConfidentCorrect uint64
}

// HitRatio is correctly predicted values over predicted (confident)
// values, the paper's Figure 5(b) metric.
func (s Stats) HitRatio() float64 {
	if s.Confident == 0 {
		return 0
	}
	return float64(s.ConfidentCorrect) / float64(s.Confident)
}

// ConfidentFraction is the share of lookups that were confident.
func (s Stats) ConfidentFraction() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Confident) / float64(s.Lookups)
}

type entry struct {
	last   uint64
	stride int64
	conf   uint8
}

// Stride is the paper's stride predictor. The table is direct-mapped and
// untagged: with 128K entries aliasing is negligible (the paper's "very
// large table" case), and shrinking the table naturally reproduces the
// Figure 5 degradation through destructive aliasing.
type Stride struct {
	table   []entry
	mask    int
	stats   Stats
	confMax uint8
	// CoverFP extends prediction to floating-point operands (raw IEEE
	// bits through the same stride table) — an extension experiment; the
	// paper's predictor leaves FP uncovered (§3.3).
	CoverFP bool
}

// DefaultTableEntries is the paper's "very large" default (128K).
const DefaultTableEntries = 128 * 1024

// NewStride builds a stride predictor with the given number of table
// entries (a positive power of two).
func NewStride(entries int) *Stride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("vpred: table entries must be a positive power of two")
	}
	return &Stride{table: make([]entry, entries), mask: entries - 1, confMax: 3}
}

func (s *Stride) index(pc, opIdx int) int {
	// PC and operand order jointly index the table (§2.2). The operand
	// bit lands in the low bit, like doubling the table width.
	return (pc<<1 | opIdx&1) & s.mask
}

// PredictAndTrain implements Predictor with the classic stride update: if
// last+stride matches the new value, confidence rises; otherwise
// confidence falls and the stride is re-learned.
func (s *Stride) PredictAndTrain(pc, opIdx int, isFP bool, actual uint64) (uint64, bool, bool) {
	if isFP && !s.CoverFP {
		return 0, false, false
	}
	s.stats.Lookups++
	e := &s.table[s.index(pc, opIdx)]
	pred := e.last + uint64(e.stride)
	confident := e.conf > 2
	correct := pred == actual
	if confident {
		s.stats.Confident++
		if correct {
			s.stats.ConfidentCorrect++
		}
	}
	if correct {
		if e.conf < s.confMax {
			e.conf++
		}
	} else {
		// A miss resets confidence: speculating on a wavering value
		// stream costs a reissue plus a communication (§3.2), so the
		// counter must re-earn trust from scratch.
		e.conf = 0
		e.stride = int64(actual - e.last)
	}
	e.last = actual
	return pred, confident, correct
}

// Stats implements Predictor.
func (s *Stride) Stats() Stats { return s.stats }

// Entries returns the table capacity.
func (s *Stride) Entries() int { return len(s.table) }

// Perfect predicts every integer operand correctly — the Figure 3 upper
// bound. FP operands remain unpredicted (unless CoverFP is set, an
// extension), which is why the paper's perfect configuration still shows
// residual communication.
type Perfect struct {
	stats   Stats
	CoverFP bool
}

// NewPerfect builds a perfect integer-operand predictor.
func NewPerfect() *Perfect { return &Perfect{} }

// PredictAndTrain implements Predictor: always confident and correct for
// integer operands.
func (p *Perfect) PredictAndTrain(pc, opIdx int, isFP bool, actual uint64) (uint64, bool, bool) {
	if isFP && !p.CoverFP {
		return 0, false, false
	}
	p.stats.Lookups++
	p.stats.Confident++
	p.stats.ConfidentCorrect++
	return actual, true, true
}

// Stats implements Predictor.
func (p *Perfect) Stats() Stats { return p.stats }

// None never predicts; it is the "no value prediction" configuration.
type None struct{}

// PredictAndTrain implements Predictor.
func (None) PredictAndTrain(int, int, bool, uint64) (uint64, bool, bool) {
	return 0, false, false
}

// Stats implements Predictor.
func (None) Stats() Stats { return Stats{} }

var (
	_ Predictor = (*Stride)(nil)
	_ Predictor = (*Perfect)(nil)
	_ Predictor = None{}
)
