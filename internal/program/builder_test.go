package program

import (
	"strings"
	"testing"

	"clustervp/internal/isa"
)

func TestBuildResolvesLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Li(isa.R1, 0)
	b.Label("loop")
	b.I(isa.ADDI, isa.R1, isa.R1, 1)
	b.Li(isa.R2, 10)
	b.Br(isa.BLT, isa.R1, isa.R2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[3].Target != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[3].Target)
	}
}

func TestBuildForwardReference(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 2 {
		t.Errorf("jump target = %d, want 2", p.Code[0].Target)
	}
}

func TestBuildUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuildDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestBuildRequiresHalt(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no HALT") {
		t.Fatalf("expected no-HALT error, got %v", err)
	}
}

func TestDataLayout(t *testing.T) {
	b := NewBuilder("t")
	addr0 := b.DataBytes([]byte{1, 2, 3})
	addr1 := b.DataWords([]int64{0x1122334455667788})
	addr2 := b.DataFloats([]float64{1.5})
	addr3 := b.Reserve(16)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if addr0 != 0 {
		t.Errorf("bytes base = %d, want 0", addr0)
	}
	if addr1 != 8 {
		t.Errorf("words base = %d, want 8 (aligned)", addr1)
	}
	if addr2 != 16 {
		t.Errorf("floats base = %d, want 16", addr2)
	}
	if addr3 != 24 {
		t.Errorf("reserve base = %d, want 24", addr3)
	}
	if p.Data[8] != 0x88 || p.Data[15] != 0x11 {
		t.Errorf("little-endian word layout wrong: % x", p.Data[8:16])
	}
	if len(p.Data) != 24+16 {
		t.Errorf("data length = %d, want 40", len(p.Data))
	}
}

func TestMovSelectsFPForm(t *testing.T) {
	b := NewBuilder("t")
	b.Mov(isa.R1, isa.R2)
	b.Mov(isa.F1, isa.F2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.ADDI {
		t.Errorf("int mov op = %v, want ADDI", p.Code[0].Op)
	}
	if p.Code[1].Op != isa.FMOV {
		t.Errorf("fp mov op = %v, want FMOV", p.Code[1].Op)
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("t")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Op != isa.JAL || p.Code[0].Target != 2 || p.Code[0].Rd != isa.RA {
		t.Errorf("call = %+v", p.Code[0])
	}
	if p.Code[2].Op != isa.JR || p.Code[2].Ra != isa.RA {
		t.Errorf("ret = %+v", p.Code[2])
	}
}

func TestBranchTargetRangeChecked(t *testing.T) {
	b := NewBuilder("t")
	b.code = append(b.code, isa.Inst{Op: isa.J, Target: 99})
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	NewBuilder("bad").MustBuild()
}
