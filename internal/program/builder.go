// Package program provides an in-Go assembler for the clustervp virtual
// ISA: a Builder with labels and fixups, and a Program bundling the code
// with its initial data image.
//
// The paper compiled MediaBench C sources with Compaq's cc -O4 for Alpha;
// here the kernels in internal/workload are written directly against this
// builder, which plays the role of the compiler/assembler substrate.
package program

import (
	"fmt"
	"math"

	"clustervp/internal/isa"
)

// Program is an assembled unit: a flat instruction array (PC = index) and
// an initial data memory image.
type Program struct {
	Name string
	Code []isa.Inst
	// Data holds the initial bytes of data memory starting at address 0.
	Data []byte
	// Entry is the instruction index where execution starts.
	Entry int
}

// Builder assembles a Program incrementally.
type Builder struct {
	name   string
	code   []isa.Inst
	labels map[string]int
	fixups []fixup
	data   []byte
	errs   []error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// Label binds name to the current PC. Labels may be referenced before or
// after they are bound.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("program %s: duplicate label %q", b.name, name))
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) emit(in isa.Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

// R emits a three-register ALU instruction: rd = ra op rb.
func (b *Builder) R(op isa.Opcode, rd, ra, rb isa.RegID) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// I emits a register-immediate instruction: rd = ra op imm.
func (b *Builder) I(op isa.Opcode, rd, ra isa.RegID, imm int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// Li loads an integer immediate into rd.
func (b *Builder) Li(rd isa.RegID, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.LI, Rd: rd, Imm: imm})
}

// Fli loads a floating immediate into fd.
func (b *Builder) Fli(fd isa.RegID, v float64) *Builder {
	return b.emit(isa.Inst{Op: isa.FLI, Rd: fd, FImm: v})
}

// Load emits a load: rd = mem[ra+off]. The opcode selects width/type
// (LW, LB, FLW).
func (b *Builder) Load(op isa.Opcode, rd, ra isa.RegID, off int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: off})
}

// Store emits a store: mem[ra+off] = rb (SW, SB, FSW).
func (b *Builder) Store(op isa.Opcode, rb, ra isa.RegID, off int64) *Builder {
	return b.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Imm: off})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(op isa.Opcode, ra, rb isa.RegID, label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Target: -1})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(isa.Inst{Op: isa.J, Target: -1})
}

// Call emits a JAL to label, writing the return address to isa.RA.
func (b *Builder) Call(label string) *Builder {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(isa.Inst{Op: isa.JAL, Rd: isa.RA, Target: -1})
}

// Ret emits a JR through isa.RA.
func (b *Builder) Ret() *Builder {
	return b.emit(isa.Inst{Op: isa.JR, Ra: isa.RA})
}

// Jr emits an indirect jump through ra.
func (b *Builder) Jr(ra isa.RegID) *Builder {
	return b.emit(isa.Inst{Op: isa.JR, Ra: ra})
}

// Nop emits a NOP.
func (b *Builder) Nop() *Builder { return b.emit(isa.Inst{Op: isa.NOP}) }

// Halt emits a HALT.
func (b *Builder) Halt() *Builder { return b.emit(isa.Inst{Op: isa.HALT}) }

// Mov emits rd = ra (as ADDI rd, ra, 0 or FMOV for FP registers).
func (b *Builder) Mov(rd, ra isa.RegID) *Builder {
	if rd.IsFP() {
		return b.emit(isa.Inst{Op: isa.FMOV, Rd: rd, Ra: ra})
	}
	return b.I(isa.ADDI, rd, ra, 0)
}

// DataBytes appends raw bytes to the data image and returns their base
// address.
func (b *Builder) DataBytes(bytes []byte) int64 {
	base := int64(len(b.data))
	b.data = append(b.data, bytes...)
	return base
}

// DataWords appends 64-bit words to the data image and returns their base
// address (8-byte aligned).
func (b *Builder) DataWords(words []int64) int64 {
	b.align(8)
	base := int64(len(b.data))
	for _, w := range words {
		b.data = append(b.data,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return base
}

// DataFloats appends float64 values to the data image and returns their
// base address.
func (b *Builder) DataFloats(vals []float64) int64 {
	words := make([]int64, len(vals))
	for i, v := range vals {
		words[i] = int64(floatBits(v))
	}
	return b.DataWords(words)
}

// Reserve appends n zero bytes to the data image and returns their base
// address (8-byte aligned).
func (b *Builder) Reserve(n int) int64 {
	b.align(8)
	base := int64(len(b.data))
	b.data = append(b.data, make([]byte, n)...)
	return base
}

func (b *Builder) align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Build resolves all label fixups and returns the assembled Program. It
// fails if a referenced label was never bound, a branch target is out of
// range, or the program does not end with the possibility of halting.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %s: undefined label %q at pc %d", b.name, f.label, f.pc)
		}
		b.code[f.pc].Target = target
	}
	for pc, in := range b.code {
		info := isa.InfoFor(in.Op)
		if info.IsBranch && !info.IsIndirect {
			if in.Target < 0 || in.Target >= len(b.code) {
				return nil, fmt.Errorf("program %s: pc %d: branch target %d out of range", b.name, pc, in.Target)
			}
		}
	}
	halts := false
	for _, in := range b.code {
		if in.Op == isa.HALT {
			halts = true
			break
		}
	}
	if !halts {
		return nil, fmt.Errorf("program %s: no HALT instruction", b.name)
	}
	return &Program{Name: b.name, Code: b.code, Data: b.data}, nil
}

// MustBuild is Build that panics on error; for use with statically
// correct, test-covered kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
