// Package servicetest holds test doubles for the service layer. Its
// centerpiece is Transport, a fault-injecting http.RoundTripper that
// lets tests script network failure deterministically — dropped
// requests, connection resets, added latency, synthesized 5xx
// envelopes, duplicated sends — per route and per count, with no real
// sockets misbehaving on cue required. The client retry tests and the
// fleet chaos harness both drive it.
package servicetest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"clustervp/internal/service"
)

// ErrInjectedDrop is the transport error a Drop fault returns; it looks
// like any other transport failure to the caller (wrapped in
// *url.Error by http.Client), but tests can errors.Is for it.
var ErrInjectedDrop = errors.New("servicetest: injected request drop")

// ErrInjectedReset is the transport error a Reset fault returns,
// standing in for a peer closing the connection mid-request.
var ErrInjectedReset = errors.New("servicetest: injected connection reset")

// Fault is one scripted behavior, matched against requests by method
// and path substring in registration order; the first matching fault
// with firings remaining is consumed. Exactly one of Drop, Reset,
// Status and Duplicate should be set; Delay composes with any of them
// (and alone means "slow but successful").
type Fault struct {
	// Method matches exactly ("" matches any method).
	Method string
	// Path is a substring match on the request path ("" matches any).
	Path string
	// Times bounds how many requests this fault fires on (<=0 =
	// every match, forever).
	Times int

	// Delay is added before any other action.
	Delay time.Duration
	// Drop swallows the request: the server never sees it and the
	// caller gets ErrInjectedDrop.
	Drop bool
	// Reset forwards nothing and fails with ErrInjectedReset.
	Reset bool
	// Status synthesizes a reply with this code and a versioned error
	// envelope body, without forwarding. RetryAfterSec, when set, rides
	// both the header and the envelope.
	Status        int
	RetryAfterSec int
	// Duplicate forwards the request twice (the body replayed via
	// GetBody); the caller sees only the second reply. The server-side
	// effect of the first send is the point.
	Duplicate bool

	remaining int
}

// Transport is the fault-injecting http.RoundTripper. The zero value
// is unusable; NewTransport binds it to the real transport it fronts.
// All methods are safe for concurrent use.
type Transport struct {
	mu     sync.Mutex
	next   http.RoundTripper
	faults []*Fault
	seen   []seenReq
}

type seenReq struct {
	method string
	path   string
}

// NewTransport fronts next (nil = http.DefaultTransport) with an
// initially fault-free transport.
func NewTransport(next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next}
}

// Inject registers a fault. Faults are matched in registration order.
func (t *Transport) Inject(f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f.remaining = f.Times
	t.faults = append(t.faults, &f)
}

// Requests counts requests seen so far (before fault handling) whose
// method and path match the filter; "" matches any, path by substring.
func (t *Transport) Requests(method, path string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.seen {
		if (method == "" || r.method == method) && (path == "" || strings.Contains(r.path, path)) {
			n++
		}
	}
	return n
}

// match consumes and returns the first applicable fault, or nil.
func (t *Transport) match(req *http.Request) *Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen = append(t.seen, seenReq{method: req.Method, path: req.URL.Path})
	for _, f := range t.faults {
		if f.Method != "" && f.Method != req.Method {
			continue
		}
		if f.Path != "" && !strings.Contains(req.URL.Path, f.Path) {
			continue
		}
		if f.Times > 0 {
			if f.remaining == 0 {
				continue
			}
			f.remaining--
		}
		return f
	}
	return nil
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.match(req)
	if f == nil {
		return t.next.RoundTrip(req)
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case f.Drop:
		drainBody(req)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrInjectedDrop)
	case f.Reset:
		drainBody(req)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrInjectedReset)
	case f.Status != 0:
		drainBody(req)
		return synthesize(req, f.Status, f.RetryAfterSec), nil
	case f.Duplicate:
		first, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, fmt.Errorf("servicetest: duplicate fault, first send: %w", err)
		}
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		second, err := cloneRequest(req)
		if err != nil {
			return nil, fmt.Errorf("servicetest: duplicate fault needs a replayable body: %w", err)
		}
		return t.next.RoundTrip(second)
	default:
		return t.next.RoundTrip(req)
	}
}

// drainBody consumes a request body the fault is about to discard, as
// a real transport would on a broken connection.
func drainBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// cloneRequest rebuilds the request for a second send.
func cloneRequest(req *http.Request) (*http.Request, error) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone, nil
	}
	if req.GetBody == nil {
		return nil, errors.New("no GetBody")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	clone.Body = body
	return clone, nil
}

// synthesize builds the error reply a real clusterd would send for the
// status code: the versioned envelope with the matching stable code, so
// client-side decoding paths are exercised end to end.
func synthesize(req *http.Request, status, retryAfterSec int) *http.Response {
	code := service.CodeInternal
	switch status {
	case http.StatusServiceUnavailable:
		code = service.CodeQueueFull
	case http.StatusTooManyRequests:
		code = service.CodeQuotaExceeded
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		code = service.CodeInternal
	}
	env := service.ErrorEnvelope{
		SchemaVersion: service.SchemaVersion,
		Error: service.APIError{
			Code:          code,
			Message:       fmt.Sprintf("injected %d", status),
			RetryAfterSec: retryAfterSec,
		},
	}
	body, _ := json.Marshal(env)
	resp := &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader(body)),
		Request:    req,
	}
	resp.Header.Set("Content-Type", "application/json")
	if retryAfterSec > 0 {
		resp.Header.Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	return resp
}

var _ http.RoundTripper = (*Transport)(nil)
