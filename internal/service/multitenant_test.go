package service

// Multi-tenant surface tests: the auth matrix, quota admission (429
// versus the global queue's 503), tenant isolation of job reads,
// priority clamping, the exhaustive error-envelope contract, the
// Prometheus /metrics exposition, and the two-tenant acceptance
// criterion — one tenant saturating its quota is shed while another
// tenant's identical work completes byte-identically.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
)

var testTenants = []Tenant{
	{Name: "alice", Key: "alice-key-0001", MaxQueued: 2, MaxInFlight: 3, MaxPriority: 2},
	{Name: "bob", Key: "bob-key-0001"},
}

// doReq performs one request with an optional API key and returns the
// response plus its fully-read body.
func doReq(t *testing.T, method, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// wantEnvelope asserts the no-non-envelope-errors contract: a JSON
// content type and a schema-versioned body with the expected code.
func wantEnvelope(t *testing.T, resp *http.Response, body []byte, status int, code string) ErrorEnvelope {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("%s %s = %d, want %d (body %s)", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("error response content type %q, want JSON", ct)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v (%s)", err, body)
	}
	if env.SchemaVersion != SchemaVersion {
		t.Errorf("envelope schema_version = %d, want %d", env.SchemaVersion, SchemaVersion)
	}
	if env.Error.Code != code {
		t.Errorf("envelope code = %q, want %q (message %q)", env.Error.Code, code, env.Error.Message)
	}
	return env
}

const submitBody = `{"machine":{"clusters":"2"},"kernel":"rawcaudio"}`

func TestAuthMatrix(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Tenants = testTenants
		o.Run = stubResults
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Missing and unknown keys are 401 unauthorized envelopes.
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/statsz", "", "")
	wantEnvelope(t, resp, body, http.StatusUnauthorized, CodeUnauthorized)
	resp, body = doReq(t, http.MethodGet, ts.URL+"/v1/statsz", "wrong-key-000", "")
	wantEnvelope(t, resp, body, http.StatusUnauthorized, CodeUnauthorized)

	// A non-Bearer Authorization header does not fall through to open.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/statsz", nil)
	req.Header.Set("Authorization", "Basic YWxpY2U6cHc=")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusUnauthorized {
		t.Errorf("Basic auth = %d, want 401", r2.StatusCode)
	}

	// Bearer and X-API-Key both authenticate.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/statsz", "alice-key-0001", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("Bearer key = %d, want 200", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/statsz", nil)
	req.Header.Set("X-API-Key", "bob-key-0001")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Errorf("X-API-Key = %d, want 200", r3.StatusCode)
	}

	// healthz and /metrics stay open for probes and scrapers.
	for _, path := range []string{"/v1/healthz", "/metrics"} {
		if resp, _ := doReq(t, http.MethodGet, ts.URL+path, "", ""); resp.StatusCode != http.StatusOK {
			t.Errorf("unauthenticated %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// stubResults is an instant stub simulator for surface tests.
func stubResults(j runner.Job) (stats.Results, error) {
	return stats.Results{Benchmark: j.Kernel, Cycles: 10, Instructions: 20}, nil
}

func TestTenantIsolationAndClamping(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Tenants = testTenants
		o.Run = stubResults
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// alice submits over her priority ceiling: clamped, not rejected.
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key-0001",
		`{"machine":{"clusters":"2"},"kernel":"rawcaudio","priority":9}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Priority != 2 {
		t.Errorf("priority = %d, want clamped to alice's ceiling 2", st.Priority)
	}
	if st.Tenant != "alice" {
		t.Errorf("job tenant = %q, want alice", st.Tenant)
	}

	// bob reads alice's job as 404 — indistinguishable from absent, so
	// sequential IDs cannot be probed for existence.
	for _, path := range []string{"/v1/jobs/" + st.ID, "/v1/jobs/" + st.ID + "/events"} {
		resp, body := doReq(t, http.MethodGet, ts.URL+path, "bob-key-0001", "")
		wantEnvelope(t, resp, body, http.StatusNotFound, CodeNotFound)
	}
	// alice still sees it.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, "alice-key-0001", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("owner read = %d, want 200", resp.StatusCode)
	}
}

func TestQuotaExceeded429(t *testing.T) {
	stub := newBlockingStub()
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.Tenants = testTenants
		o.Run = stub.run
	})
	t.Cleanup(stub.Release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill alice's quota: one running (blocked in the stub) + two queued
	// reaches max_in_flight 3.
	var head JobStatus
	for i := 0; i < 3; i++ {
		resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key-0001",
			fmt.Sprintf(`{"machine":{"clusters":"2"},"kernel":"rawcaudio","scale":%d}`, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d (%s)", i, resp.StatusCode, body)
		}
		if i == 0 {
			if err := json.Unmarshal(body, &head); err != nil {
				t.Fatal(err)
			}
			waitRunning(t, s, head.ID)
		}
	}

	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "alice-key-0001",
		`{"machine":{"clusters":"2"},"kernel":"rawcaudio","scale":99}`)
	env := wantEnvelope(t, resp, body, http.StatusTooManyRequests, CodeQuotaExceeded)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if env.Error.Details["tenant"] != "alice" || env.Error.Details["quota"] == "" {
		t.Errorf("429 details = %v, want tenant and quota named", env.Error.Details)
	}

	// Quotas are per tenant: bob submits the same job unimpeded.
	if resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "bob-key-0001",
		`{"machine":{"clusters":"2"},"kernel":"rawcaudio","scale":99}`); resp.StatusCode != http.StatusAccepted {
		t.Errorf("bob's submit during alice's quota exhaustion = %d (%s)", resp.StatusCode, body)
	}

	// Rejections are visible as load shedding in statsz.
	stub.Release()
	for _, ten := range s.Stats().Tenants {
		if ten.Name == "alice" && ten.LoadShed != 1 {
			t.Errorf("alice load_shed = %d, want 1", ten.LoadShed)
		}
	}
}

// waitRunning blocks until the job leaves the queue.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	for i := 0; ; i++ {
		if st, _ := s.Status(id); st.State == StateRunning {
			return
		}
		if i > 5000 {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestErrorEnvelopeExhaustive(t *testing.T) {
	stub := newBlockingStub()
	open := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
		o.Run = stub.run
	})
	t.Cleanup(stub.Release)
	ts := httptest.NewServer(open.Handler())
	defer ts.Close()

	// Saturate the single-slot queue: one running + one queued.
	head, err := open.Submit(JobRequest{Kernel: "rawcaudio", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, open, head.ID)
	if _, err := open.Submit(JobRequest{Kernel: "rawcaudio", Scale: 2}); err != nil {
		t.Fatal(err)
	}

	traceTS := httptest.NewServer(newTestServer(t, func(o *Options) {
		o.TraceDir = t.TempDir()
		o.MaxTraceBytes = 8
	}).Handler())
	defer traceTS.Close()

	mt := httptest.NewServer(newTestServer(t, func(o *Options) {
		o.Tenants = testTenants
	}).Handler())
	defer mt.Close()

	cases := []struct {
		name, method, url, key, body string
		status                       int
		code                         string
	}{
		{"unrouted path", http.MethodGet, ts.URL + "/nope", "", "", 404, CodeNotFound},
		{"wrong method", http.MethodDelete, ts.URL + "/v1/jobs", "", "", 405, CodeMethodNotAllowed},
		{"invalid body", http.MethodPost, ts.URL + "/v1/jobs", "", `{"kernel":"nosuch"}`, 400, CodeInvalidSpec},
		{"unknown job", http.MethodGet, ts.URL + "/v1/jobs/j-99999999", "", "", 404, CodeNotFound},
		{"no trace store", http.MethodPost, ts.URL + "/v1/traces", "", "x", 501, CodeTraceStoreDisabled},
		{"queue full", http.MethodPost, ts.URL + "/v1/jobs", "", submitBody, 503, CodeQueueFull},
		{"oversized trace", http.MethodPost, traceTS.URL + "/v1/traces", "", strings.Repeat("x", 64), 413, CodePayloadTooLarge},
		{"missing key", http.MethodGet, mt.URL + "/v1/statsz", "", "", 401, CodeUnauthorized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, tc.method, tc.url, tc.key, tc.body)
			env := wantEnvelope(t, resp, body, tc.status, tc.code)
			if env.Error.Message == "" {
				t.Error("envelope has no message")
			}
			if tc.status == 503 || tc.status == 429 {
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("%d without Retry-After", tc.status)
				}
			}
		})
	}
}

// parseProm is the minimal Prometheus text-format checker: it validates
// line structure, requires a # TYPE header before any sample of a
// family, and returns every sample keyed by its full series string
// (name plus label set, exactly as exposed).
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suffix)] {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[family] {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.Run = stubResults })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, st.ID)
	// One known-error request populates a non-2xx HTTP series.
	doReq(t, http.MethodGet, ts.URL+"/v1/jobs/j-99999999", "", "")

	resp, body := doReq(t, http.MethodGet, ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	samples := parseProm(t, string(body))

	// The scalar families agree with statsz.
	zs := s.Stats()
	checks := map[string]float64{
		"clusterd_workers":                                    float64(zs.Queue.Workers),
		"clusterd_queue_capacity":                             float64(zs.Queue.Capacity),
		"clusterd_jobs_done_total":                            float64(zs.Queue.Done),
		"clusterd_jobs_failed_total":                          float64(zs.Queue.Failed),
		"clusterd_simulations_total":                          float64(zs.Engine.SimulationsExecuted),
		`clusterd_tenant_jobs_done_total{tenant="anonymous"}`: float64(zs.Tenants[0].Done),
	}
	for series, want := range checks {
		got, ok := samples[series]
		if !ok {
			t.Errorf("missing series %q", series)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, statsz says %v", series, got, want)
		}
	}
	if samples["clusterd_jobs_done_total"] < 1 {
		t.Error("clusterd_jobs_done_total is zero after a done job")
	}

	// The latency histogram is cumulative and consistent: every family
	// has bucket counts nondecreasing in le with +Inf equal to _count.
	status404 := false
	for series, val := range samples {
		if strings.HasPrefix(series, "clusterd_http_requests_total{") && strings.Contains(series, `code="404"`) && val > 0 {
			status404 = true
		}
		if strings.HasPrefix(series, "clusterd_http_request_duration_seconds_bucket") && strings.Contains(series, `le="+Inf"`) {
			countSeries := strings.Replace(series, "_bucket", "_count", 1)
			countSeries = strings.Replace(countSeries, `,le="+Inf"`, "", 1)
			if count, ok := samples[countSeries]; !ok || count != val {
				t.Errorf("+Inf bucket %v != count %v for %s", val, count, series)
			}
		}
	}
	if !status404 {
		t.Error("no 404 series in clusterd_http_requests_total after an unknown-job request")
	}
}

// TestStatszSchemaV2 pins the statsz wire schema: version 2, nested
// sections populated, and the flat keys schema 1 mirrored "for one more
// release" really gone from the marshaled payload.
func TestStatszSchemaV2(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.Run = stubResults })
	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, st.ID)

	zs := s.Stats()
	if zs.SchemaVersion != SchemaVersion || SchemaVersion != 2 {
		t.Errorf("schema_version = %d (const %d), want 2", zs.SchemaVersion, SchemaVersion)
	}
	if zs.Queue.Done != 1 || zs.Queue.Workers < 1 || zs.Queue.Capacity == 0 {
		t.Errorf("nested queue section not populated: %+v", zs.Queue)
	}
	// Open mode reports exactly the anonymous tenant.
	if len(zs.Tenants) != 1 || zs.Tenants[0].Name != anonymousTenant || zs.Tenants[0].Done != 1 {
		t.Errorf("open-mode tenants = %+v", zs.Tenants)
	}

	// The deprecated flat keys are removed, not merely zeroed: they must
	// not appear at the top level of the marshaled payload at all.
	raw, err := json.Marshal(zs)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"workers", "queue_capacity", "queue_depth", "running",
		"jobs_submitted", "jobs_done", "jobs_failed",
		"simulations_executed", "cache_hits", "cache_put_errors",
		"cache_hit_ratio", "jobs_per_sec",
	} {
		if _, ok := top[key]; ok {
			t.Errorf("deprecated flat key %q still present in statsz JSON", key)
		}
	}
	for _, key := range []string{"schema_version", "uptime_sec", "queue", "cache", "engine", "tenants"} {
		if _, ok := top[key]; !ok {
			t.Errorf("statsz JSON missing %q", key)
		}
	}
}

// TestTwoTenantAcceptance is the PR's acceptance criterion: tenant A
// saturating its quota is answered 429 quota_exceeded while tenant B's
// identical grid completes with stats.Results JSON byte-identical to a
// local simulation, and /metrics agrees with statsz on B's jobs.
func TestTwoTenantAcceptance(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.Tenants = []Tenant{
			{Name: "a", Key: "tenant-a-key-01", MaxQueued: 2, MaxInFlight: 3},
			{Name: "b", Key: "tenant-b-key-01"},
		}
		o.Run = func(j runner.Job) (stats.Results, error) {
			<-gate
			return runner.Simulate(j)
		}
	})
	t.Cleanup(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Tenant A fills its quota: one running (parked on the gate) plus
	// two queued.
	var head JobStatus
	for i := 0; i < 3; i++ {
		resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "tenant-a-key-01",
			fmt.Sprintf(`{"machine":{"clusters":"2"},"kernel":"rawcaudio","scale":%d}`, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("A submit %d = %d (%s)", i, resp.StatusCode, body)
		}
		if i == 0 {
			if err := json.Unmarshal(body, &head); err != nil {
				t.Fatal(err)
			}
			waitRunning(t, s, head.ID)
		}
	}
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", "tenant-a-key-01",
		`{"machine":{"clusters":"2"},"kernel":"rawcaudio","scale":4}`)
	wantEnvelope(t, resp, body, http.StatusTooManyRequests, CodeQuotaExceeded)

	// Tenant B submits a grid while A is saturated: the global queue has
	// room and B has no quota, so the whole grid is admitted.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/grids", "tenant-b-key-01",
		`{"machines":[{"clusters":"2"}],"kernels":["rawcaudio"],"scales":[1,2]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("B grid = %d (%s)", resp.StatusCode, body)
	}
	var grid struct {
		Jobs []string `json:"jobs"`
	}
	if err := json.Unmarshal(body, &grid); err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) != 2 {
		t.Fatalf("B grid expanded to %d jobs, want 2", len(grid.Jobs))
	}

	release()
	for i, id := range grid.Jobs {
		fin := waitJob(t, s, id)
		if fin.State != StateDone {
			t.Fatalf("B job %s finished %q (%s)", id, fin.State, fin.Error)
		}
		if fin.Tenant != "b" {
			t.Errorf("B job attributed to %q", fin.Tenant)
		}
		want, err := runner.Simulate(runner.Job{Config: config.Preset(2), Kernel: "rawcaudio", Scale: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(fin.Results)
		local, _ := json.Marshal(want)
		if !bytes.Equal(got, local) {
			t.Errorf("B job %s results not byte-identical to a local run:\nserved %s\nlocal  %s", id, got, local)
		}
	}
	// A's admitted jobs complete too; only the over-quota one was shed.
	fin := waitJob(t, s, head.ID)
	if fin.State != StateDone {
		t.Fatalf("A head job finished %q", fin.State)
	}

	// /metrics agrees with statsz per tenant.
	zs := s.Stats()
	_, mbody := doReq(t, http.MethodGet, ts.URL+"/metrics", "", "")
	samples := parseProm(t, string(mbody))
	for _, ten := range zs.Tenants {
		series := fmt.Sprintf(`clusterd_tenant_jobs_done_total{tenant=%q}`, ten.Name)
		if got := samples[series]; got != float64(ten.Done) {
			t.Errorf("%s = %v, statsz says %d", series, got, ten.Done)
		}
	}
	if got := samples[`clusterd_tenant_jobs_done_total{tenant="b"}`]; got != 2 {
		t.Errorf("tenant b done = %v, want 2", got)
	}
	if got := samples[`clusterd_tenant_load_shed_total{tenant="a"}`]; got != 1 {
		t.Errorf("tenant a load shed = %v, want 1", got)
	}
}

// TestServerRejectsBadProgrammaticTenants: Options.Tenants goes through
// the same validation as the tenants file.
func TestServerRejectsBadProgrammaticTenants(t *testing.T) {
	_, err := New(Options{Tenants: []Tenant{{Name: "x", Key: "short"}}})
	if err == nil || !strings.Contains(err.Error(), "at least 8") {
		t.Errorf("New with a short key err = %v", err)
	}
}

// TestGoAPIQuotaExempt: direct Go-API submissions act as the anonymous
// tenant even on a multi-tenant server, and its jobs are invisible to
// HTTP tenants.
func TestGoAPIQuotaExempt(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Tenants = testTenants
		o.Run = stubResults
	})
	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitJob(t, s, st.ID); fin.Tenant != anonymousTenant {
		t.Errorf("Go-API job tenant = %q, want %q", fin.Tenant, anonymousTenant)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, "alice-key-0001", "")
	wantEnvelope(t, resp, body, http.StatusNotFound, CodeNotFound)
}
