package service

// The HTTP surface of the job server. Endpoints:
//
//	POST /v1/jobs             submit one job            -> 202 JobStatus
//	POST /v1/grids            submit a machine×kernel×scale grid -> 202 {"jobs": [ids]}
//	GET  /v1/jobs/{id}        status + stats.Results JSON
//	GET  /v1/jobs/{id}/events NDJSON stream: queued → running (+progress) → done|failed
//	POST /v1/traces           upload a .cvt trace       -> 201 {"digest", "records"}
//	GET  /v1/healthz          liveness
//	GET  /v1/statsz           queue depth, cache hit ratio, jobs/sec, ...
//
// Error mapping: validation failures are 400, unknown jobs 404, a full
// queue 503 with Retry-After, a missing trace store 503. All errors are
// JSON: {"error": "..."}.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// buildHandler assembles the route table once, at New.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("POST /v1/grids", s.handleSubmitGrid)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/traces", s.handleUploadTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	return mux
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP makes the Server itself mountable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps service errors onto status codes.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNoSuchJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	// A misspelled field silently dropped would simulate with defaults
	// and return plausible but wrong results; reject it instead, the
	// way the CLI rejects unknown flag values.
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %v", ErrBadRequest, err)
	}
	return nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleSubmitGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ids, err := s.SubmitGrid(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": ids, "count": len(ids)})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobEvents streams job lifecycle and progress as NDJSON until
// the job reaches a terminal state or the client goes away. The first
// line is always the current snapshot, so a late subscriber of a done
// job still gets exactly one meaningful line.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, ErrNoSuchJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	if !emit(snap) {
		return
	}
	if snap.State == StateDone || snap.State == StateFailed {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !emit(ev) {
				return
			}
		case <-j.terminal:
			emit(j.terminalEvent())
			return
		}
	}
}

func (s *Server) handleUploadTrace(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "this server has no trace store"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxTraceBytes)
	digest, records, err := s.store.Put(body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": "trace exceeds " + strconv.FormatInt(s.opts.MaxTraceBytes, 10) + " bytes"})
			return
		}
		// A trace that fails decoding is a client-side problem: bad
		// magic, version, CRC or truncation all map to 400.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"digest": digest, "records": records})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
