package service

// The HTTP surface of the job server. Endpoints:
//
//	POST /v1/jobs             submit one job            -> 202 JobStatus
//	POST /v1/grids            submit a machine×kernel×scale grid -> 202 {"jobs": [ids]}
//	GET  /v1/jobs/{id}        status + stats.Results JSON (tenant-scoped)
//	GET  /v1/jobs/{id}/events NDJSON stream: queued → running (+progress) → done|failed
//	GET  /v1/jobs/{id}/trace  span timeline (?format=chrome|spans, tenant-scoped)
//	GET  /v1/tracez           recent finished spans across all traces
//	POST /v1/traces           upload a .cvt trace       -> 201 {"digest", "records"}
//	GET  /v1/healthz          liveness (unauthenticated)
//	GET  /v1/statsz           queue/cache/tenant sections, schema_version
//	GET  /metrics             Prometheus text exposition (unauthenticated)
//
// Every request flows through instrument (latency metrics + slog
// request log) and authenticate (API-key → tenant, when tenants are
// configured). Every non-2xx body is one versioned ErrorEnvelope with
// a stable machine-readable code: validation failures are 400
// invalid_spec, unknown jobs — including another tenant's jobs — 404
// not_found, a missing key 401 unauthorized, an exhausted tenant quota
// 429 quota_exceeded (Retry-After set), a full queue 503 queue_full
// (Retry-After set), an oversized upload 413 payload_too_large, and a
// trace upload on a server without a trace store 501
// trace_store_disabled. Unrouted paths and wrong methods get envelopes
// too (not_found / method_not_allowed), so no caller ever has to parse
// a plain-text error.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"clustervp/internal/obs"
)

// buildHandler assembles the route table and middleware chain once, at
// New: instrument → authenticate → envelope fallback → mux.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("POST /v1/grids", s.handleSubmitGrid)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/tracez", s.handleTracez)
	mux.HandleFunc("POST /v1/traces", s.handleUploadTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(s.authenticate(envelopeFallback(mux)))
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP makes the Server itself mountable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// ctxKey keys the per-request info holder.
type ctxKey struct{}

// reqInfo carries per-request attribution across the middleware chain:
// instrument injects it, authenticate fills the tenant, handlers add
// job IDs and fingerprints, instrument logs it all on the way out.
type reqInfo struct {
	tenant *tenantState
	jobID  string
	fp     string
	jobs   int // grid submissions: expanded job count
}

// infoFrom returns the request's info holder (never nil: instrument
// injects one; a bare handler invocation in tests gets a throwaway).
func infoFrom(ctx context.Context) *reqInfo {
	if ri, ok := ctx.Value(ctxKey{}).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{}
}

// tenantOf resolves the request's tenant, defaulting to anonymous for
// handlers invoked without the middleware chain (direct tests).
func (s *Server) tenantOf(r *http.Request) *tenantState {
	if t := infoFrom(r.Context()).tenant; t != nil {
		return t
	}
	return s.anonymous
}

// statusWriter captures the status code and preserves http.Flusher for
// the NDJSON events stream.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the whole chain: it injects the reqInfo holder,
// starts the request span (continuing the caller's W3C traceparent
// when one is presented — a malformed or foreign header just starts a
// fresh root trace, never an error), measures latency into the
// Prometheus histograms, and emits one structured request log line
// with trace/tenant/job/fingerprint attribution. Every instrumented
// request — including 4xx/5xx envelope paths, which run inside this
// wrapper — logs a trace_id and a request_id (the request span's own
// id, the fallback correlation key when the trace has a single span).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{}
		remote, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		span := s.spans.StartRoot("http "+r.Method+" "+r.URL.Path, remote)
		ctx := obs.NewContext(context.WithValue(r.Context(), ctxKey{}, ri), span)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		// The mux pattern is the metrics route label — bounded
		// cardinality; unrouted probes collapse into one label.
		route := r.Pattern
		if route == "" {
			route = "unrouted"
		}
		dur := time.Since(start)
		s.metrics.observeHTTP(route, r.Method, sw.status, dur)
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.SetAttr("route", route)
		span.End()
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", dur),
			slog.String("trace_id", span.TraceID()),
			slog.String("request_id", span.SpanID()),
		}
		if ri.tenant != nil {
			attrs = append(attrs, slog.String("tenant", ri.tenant.cfg.Name))
		}
		if ri.jobID != "" {
			attrs = append(attrs, slog.String("job", ri.jobID))
		}
		if ri.fp != "" {
			attrs = append(attrs, slog.String("fingerprint", ri.fp))
		}
		if ri.jobs > 0 {
			attrs = append(attrs, slog.Int("jobs", ri.jobs))
		}
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		s.logger.LogAttrs(r.Context(), level, "http request", attrs...)
	})
}

// openEndpoints never require a key: load balancers probe healthz and
// Prometheus scrapes metrics without tenant credentials.
func openEndpoint(path string) bool {
	return path == "/v1/healthz" || path == "/metrics"
}

// authenticate resolves the caller's tenant. With no tenants configured
// the server runs open and every request acts as the anonymous tenant;
// with tenants, a missing or unknown key is 401 unauthorized.
func (s *Server) authenticate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := infoFrom(r.Context())
		if !s.multiTenant {
			ri.tenant = s.anonymous
			next.ServeHTTP(w, r)
			return
		}
		if openEndpoint(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key := apiKey(r)
		if key == "" {
			writeError(w, fmt.Errorf("%w: missing API key (use Authorization: Bearer or X-API-Key)", ErrUnauthorized))
			return
		}
		t := lookupByKey(s.tenants, key)
		if t == nil {
			writeError(w, fmt.Errorf("%w: unknown API key", ErrUnauthorized))
			return
		}
		ri.tenant = t
		next.ServeHTTP(w, r)
	})
}

// apiKey extracts the presented key: "Authorization: Bearer <key>"
// wins, "X-API-Key: <key>" is the fallback.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		const prefix = "bearer "
		if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
			return strings.TrimSpace(auth[len(prefix):])
		}
		return ""
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// envelopeWriter rewrites the mux's own plain-text 404/405 bodies into
// error envelopes. Handler-written envelopes set an application/json
// Content-Type before WriteHeader, so they pass through untouched.
type envelopeWriter struct {
	http.ResponseWriter
	replaced bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		!strings.Contains(w.Header().Get("Content-Type"), "json") {
		w.replaced = true
		apiCode := CodeNotFound
		msg := "no such endpoint"
		if code == http.StatusMethodNotAllowed {
			apiCode = CodeMethodNotAllowed
			msg = "method not allowed"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(code)
		json.NewEncoder(w.ResponseWriter).Encode(ErrorEnvelope{
			SchemaVersion: SchemaVersion,
			Error:         APIError{Code: apiCode, Message: msg},
		})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.replaced {
		return len(b), nil // swallow the mux's plain-text body
	}
	return w.ResponseWriter.Write(b)
}

func (w *envelopeWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// envelopeFallback guarantees the no-non-envelope-errors contract for
// responses the mux writes itself (unknown paths, wrong methods).
func envelopeFallback(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders a service error as its versioned envelope.
func writeError(w http.ResponseWriter, err error) {
	status, env := envelope(err)
	if env.Error.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(env.Error.RetryAfterSec))
	}
	writeJSON(w, status, env)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	// A misspelled field silently dropped would simulate with defaults
	// and return plausible but wrong results; reject it instead, the
	// way the CLI rejects unknown flag values.
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrPayloadTooLarge, maxErr.Limit)
		}
		return fmt.Errorf("%w: body: %v", ErrBadRequest, err)
	}
	return nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.submitAs(s.tenantOf(r), req, obs.FromContext(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	ri := infoFrom(r.Context())
	ri.jobID = st.ID
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleSubmitGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ids, err := s.submitGridAs(s.tenantOf(r), req)
	if err != nil {
		writeError(w, err)
		return
	}
	infoFrom(r.Context()).jobs = len(ids)
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": ids, "count": len(ids)})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeError(w, ErrNoSuchJob)
		return
	}
	ri := infoFrom(r.Context())
	ri.jobID = j.id
	ri.fp = j.fp
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobEvents streams job lifecycle and progress as NDJSON until
// the job reaches a terminal state or the client goes away. The first
// line is always the current snapshot, so a late subscriber of a done
// job still gets exactly one meaningful line.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeError(w, ErrNoSuchJob)
		return
	}
	ri := infoFrom(r.Context())
	ri.jobID = j.id
	ri.fp = j.fp
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	if !emit(snap) {
		return
	}
	if snap.State == StateDone || snap.State == StateFailed {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !emit(ev) {
				return
			}
		case <-j.terminal:
			emit(j.terminalEvent())
			return
		}
	}
}

func (s *Server) handleUploadTrace(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, fmt.Errorf("%w: this server was started without a trace store", ErrTraceStoreDisabled))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxTraceBytes)
	digest, records, err := s.store.Put(body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, withDetails(
				fmt.Errorf("%w: trace exceeds %d bytes", ErrPayloadTooLarge, s.opts.MaxTraceBytes),
				map[string]string{"limit_bytes": strconv.FormatInt(s.opts.MaxTraceBytes, 10)}))
			return
		}
		// A trace that fails decoding is a client-side problem: bad
		// magic, version, CRC or truncation all map to 400.
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	infoFrom(r.Context()).fp = digest
	writeJSON(w, http.StatusCreated, map[string]any{"digest": digest, "records": records})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
