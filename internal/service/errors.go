package service

// The versioned API error schema. Every non-2xx body the service emits
// is one envelope:
//
//	{"schema_version": 1,
//	 "error": {"code": "quota_exceeded",
//	           "message": "tenant \"alice\" exceeded max_queued (8)",
//	           "retry_after_sec": 1,
//	           "details": {"tenant": "alice", "quota": "max_queued", "limit": "8"}}}
//
// Code is the stable machine-readable contract — callers switch on it;
// Message is for humans and may change between releases. The service
// layer itself keeps returning plain sentinel-wrapped errors; the HTTP
// layer owns the mapping to (status, code).

import (
	"errors"
	"maps"
	"net/http"
)

// SchemaVersion is the wire-schema version stamped on every error
// envelope and statsz payload. Version 2 dropped the deprecated flat
// statsz keys that version 1 mirrored alongside the nested sections.
const SchemaVersion = 2

// Stable machine-readable error codes.
const (
	CodeInvalidSpec        = "invalid_spec"
	CodeQuotaExceeded      = "quota_exceeded"
	CodeQueueFull          = "queue_full"
	CodeNotFound           = "not_found"
	CodeUnauthorized       = "unauthorized"
	CodePayloadTooLarge    = "payload_too_large"
	CodeTraceStoreDisabled = "trace_store_disabled"
	CodeMethodNotAllowed   = "method_not_allowed"
	CodeInternal           = "internal"
)

// APIError is the error object inside the envelope.
type APIError struct {
	Code          string            `json:"code"`
	Message       string            `json:"message"`
	RetryAfterSec int               `json:"retry_after_sec,omitempty"`
	Details       map[string]string `json:"details,omitempty"`
}

// ErrorEnvelope is the full non-2xx response body.
type ErrorEnvelope struct {
	SchemaVersion int      `json:"schema_version"`
	Error         APIError `json:"error"`
}

// detailedError decorates a sentinel-wrapped error with machine-
// readable details for the envelope.
type detailedError struct {
	err     error
	details map[string]string
}

func (d *detailedError) Error() string { return d.err.Error() }
func (d *detailedError) Unwrap() error { return d.err }

// withDetails attaches key/value detail pairs to an error; the HTTP
// layer surfaces them in the envelope's details map.
func withDetails(err error, details map[string]string) error {
	return &detailedError{err: err, details: details}
}

// httpStatus maps a service error to its (status code, error code,
// retry-after) triple. Unrecognized errors are internal 500s.
func httpStatus(err error) (status int, code string, retryAfterSec int) {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeInvalidSpec, 0
	case errors.Is(err, ErrNoSuchJob):
		return http.StatusNotFound, CodeNotFound, 0
	case errors.Is(err, ErrUnauthorized):
		return http.StatusUnauthorized, CodeUnauthorized, 0
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, CodeQuotaExceeded, 1
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, CodeQueueFull, 1
	case errors.Is(err, ErrPayloadTooLarge):
		return http.StatusRequestEntityTooLarge, CodePayloadTooLarge, 0
	case errors.Is(err, ErrTraceStoreDisabled):
		return http.StatusNotImplemented, CodeTraceStoreDisabled, 0
	default:
		return http.StatusInternalServerError, CodeInternal, 0
	}
}

// Envelope renders a service error as its HTTP status and versioned
// wire envelope. Exported for sibling packages speaking the same error
// contract (the fleet coordinator), so a fleet rejection is
// byte-compatible with a single-box one.
func Envelope(err error) (int, ErrorEnvelope) { return envelope(err) }

// envelope renders a service error as its wire representation.
func envelope(err error) (int, ErrorEnvelope) {
	status, code, retry := httpStatus(err)
	e := ErrorEnvelope{
		SchemaVersion: SchemaVersion,
		Error: APIError{
			Code:          code,
			Message:       err.Error(),
			RetryAfterSec: retry,
		},
	}
	var det *detailedError
	if errors.As(err, &det) {
		e.Error.Details = maps.Clone(det.details)
	}
	return status, e
}
