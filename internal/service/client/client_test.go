package client

// Client tests against an in-process httptest-backed clusterd: the
// full submit → wait → results loop, grid submission, trace upload,
// and error surfacing.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/trace"
	"clustervp/internal/workload"

	"net/http/httptest"
)

func newClientServer(t *testing.T, opts service.Options) (*Client, *service.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL), s
}

func TestClientRunMatchesLocal(t *testing.T) {
	c, _ := newClientServer(t, service.Options{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(ctx, service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2", VP: "stride"},
		Kernel:  "rawcaudio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.Results == nil {
		t.Fatalf("remote run finished %q (%s)", st.State, st.Error)
	}
	cfg, err := config.MachineSpec{Clusters: "2", VP: "stride"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Simulate(runner.Job{Config: cfg, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(st.Results)
	local, _ := json.Marshal(want)
	if !bytes.Equal(got, local) {
		t.Errorf("remote results differ from local:\nremote %s\nlocal  %s", got, local)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queue.Done < 1 {
		t.Errorf("statsz after a done job: %+v", stats)
	}
}

func TestClientGridAndErrors(t *testing.T) {
	c, s := newClientServer(t, service.Options{})
	ctx := context.Background()
	ids, err := c.SubmitGrid(ctx, service.GridRequest{
		Machines: []config.MachineSpec{{Clusters: "2"}, {Clusters: "4"}},
		Kernels:  []string{"rawcaudio"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("grid returned %d ids, want 2", len(ids))
	}
	for _, id := range ids {
		st, err := c.Wait(ctx, id)
		if err != nil || st.State != service.StateDone {
			t.Fatalf("job %s: state=%q err=%v", id, st.State, err)
		}
	}
	if ex := s.Engine().Executed(); ex != 2 {
		t.Errorf("grid executed %d simulations, want 2", ex)
	}

	// Server-side validation errors surface with their message.
	if _, err := c.SubmitJob(ctx, service.JobRequest{Kernel: "nosuch"}); err == nil ||
		!strings.Contains(err.Error(), "unknown kernel") {
		t.Errorf("bad kernel error = %v, want the server's message", err)
	}
	if _, err := c.Status(ctx, "j-99999999"); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("unknown job error = %v", err)
	}
}

func TestClientTraceUploadRoundTrip(t *testing.T) {
	c, _ := newClientServer(t, service.Options{TraceDir: t.TempDir()})
	ctx := context.Background()

	prog, err := workload.Build("rawcaudio", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.cvt")
	if _, err := trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog)); err != nil {
		t.Fatal(err)
	}
	digest, records, err := c.UploadTraceFile(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if records == 0 || !strings.HasPrefix(digest, trace.DigestPrefix) {
		t.Fatalf("upload: digest=%q records=%d", digest, records)
	}
	st, err := c.Run(ctx, service.JobRequest{
		Machine:     config.MachineSpec{Clusters: "2"},
		TraceDigest: digest,
	})
	if err != nil || st.State != service.StateDone {
		t.Fatalf("trace job: state=%q err=%v (%s)", st.State, err, st.Error)
	}
	want, err := runner.Simulate(runner.Job{Config: config.Preset(2), Trace: path})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(st.Results)
	local, _ := json.Marshal(want)
	if !bytes.Equal(got, local) {
		t.Errorf("uploaded-trace results differ from local replay")
	}

	// Corrupt uploads are rejected with the trace error text.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.UploadTrace(ctx, bytes.NewReader(data[:len(data)/2])); err == nil ||
		!strings.Contains(err.Error(), "trace") {
		t.Errorf("corrupt upload error = %v", err)
	}
}

func TestClientFailedJobSurfacesError(t *testing.T) {
	c, _ := newClientServer(t, service.Options{})
	ctx := context.Background()
	// An absurdly small cycle budget fails mid-run.
	st, err := c.Run(ctx, service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2", MaxCycles: 10},
		Kernel:  "cjpeg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed || !strings.Contains(st.Error, "exceeded") {
		t.Fatalf("budget-exhausted job: state=%q error=%q", st.State, st.Error)
	}
	if st.Results != nil {
		t.Error("failed job carries results")
	}
}
