// Package client speaks the clusterd HTTP API: job and grid
// submission, status polling, event streaming, trace upload and server
// stats. clustersim -remote is built on it; the wire types are the
// service package's own, so client and server cannot drift apart.
//
// Non-2xx replies decode into *APIError, so callers switch on the
// server's stable machine-readable code instead of string-matching
// messages:
//
//	_, err := c.SubmitJob(ctx, req)
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == service.CodeQuotaExceeded {
//	    backoff(apiErr.RetryAfterSec)
//	}
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"clustervp/internal/obs"
	"clustervp/internal/service"
)

// Client talks to one clusterd instance.
type Client struct {
	base   string
	apiKey string
	hc     *http.Client
	retry  RetryPolicy
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey authenticates every request against a multi-tenant server
// (sent as "Authorization: Bearer <key>").
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8090"). The underlying http.Client has no global
// timeout: simulations legitimately run long, and Wait streams events.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx reply from the server, decoded from its
// versioned error envelope. Code is the stable contract (the
// service.Code* constants); Message is human-readable and may change.
type APIError struct {
	StatusCode    int
	Code          string
	Message       string
	RetryAfterSec int
	Details       map[string]string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("clusterd: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
	}
	return fmt.Sprintf("clusterd: HTTP %d: %s", e.StatusCode, e.Message)
}

// apiError decodes a non-2xx reply into *APIError: the versioned
// envelope first, the pre-envelope {"error": "..."} shape as a
// fallback, and the raw body as a last resort — an old server or a
// proxy in the middle still yields a useful error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	out := &APIError{StatusCode: resp.StatusCode}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		out.RetryAfterSec = sec
	}
	var env service.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		out.Code = env.Error.Code
		out.Message = env.Error.Message
		out.Details = env.Error.Details
		if env.Error.RetryAfterSec > 0 {
			out.RetryAfterSec = env.Error.RetryAfterSec
		}
		return out
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &legacy) == nil && legacy.Error != "" {
		out.Message = legacy.Error
		return out
	}
	out.Message = strings.TrimSpace(string(body))
	return out
}

// newRequest builds a request with the client's credentials attached.
// When the context carries an active span (obs.NewContext), its W3C
// traceparent rides along, so the server's request span — and any job
// it admits — continues the caller's trace. This is the propagation
// edge of a coordinator→replica hop.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	if sp := obs.FromContext(ctx); sp != nil {
		req.Header.Set("traceparent", sp.Context().Traceparent())
	}
	return req, nil
}

// doJSON posts (or gets, when in is nil) and decodes a JSON reply,
// retrying retriable failures under the client's RetryPolicy (the body
// is a rewindable buffer, so every attempt sends identical bytes).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return c.withRetry(ctx, func() error {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data)
		}
		req, err := c.newRequest(ctx, method, path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return apiError(resp)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// Health checks GET /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Stats fetches GET /v1/statsz.
func (c *Client) Stats(ctx context.Context) (service.ServerStats, error) {
	var st service.ServerStats
	err := c.doJSON(ctx, http.MethodGet, "/v1/statsz", nil, &st)
	return st, err
}

// SubmitJob posts one job and returns its accepted status (queued).
func (c *Client) SubmitJob(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// SubmitGrid posts a grid and returns the expanded job IDs in grid
// order.
func (c *Client) SubmitGrid(ctx context.Context, req service.GridRequest) ([]string, error) {
	var out struct {
		Jobs []string `json:"jobs"`
	}
	err := c.doJSON(ctx, http.MethodPost, "/v1/grids", req, &out)
	return out.Jobs, err
}

// Status fetches one job's status (including results once done).
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait blocks until the job reaches a terminal state and returns its
// final status. It rides the NDJSON events stream (so completion is
// pushed, not polled); if the stream breaks it falls back to polling.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	if err := c.waitEvents(ctx, id); err != nil {
		if ctx.Err() != nil {
			return service.JobStatus{}, ctx.Err()
		}
		if err := c.pollUntilDone(ctx, id); err != nil {
			return service.JobStatus{}, err
		}
	}
	return c.Status(ctx, id)
}

// StreamEvents opens the job's NDJSON event stream and hands each
// event to fn in order. It returns nil once a terminal event (done or
// failed) has been delivered; a stream that breaks earlier returns the
// transport error, and a non-nil error from fn stops the stream and is
// returned as-is. The fleet coordinator proxies replica progress
// through this.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(service.Event) error) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("clusterd: bad event line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return err
			}
		}
		if ev.State == service.StateDone || ev.State == service.StateFailed {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("clusterd: events stream for %s ended before a terminal state", id)
}

// waitEvents consumes the events stream until a terminal line.
func (c *Client) waitEvents(ctx context.Context, id string) error {
	return c.StreamEvents(ctx, id, nil)
}

// pollUntilDone is the degraded-mode wait.
func (c *Client) pollUntilDone(ctx context.Context, id string) error {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Run submits a job and waits for its terminal status — the one-call
// remote equivalent of runner.Simulate.
func (c *Client) Run(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return service.JobStatus{}, err
	}
	return c.Wait(ctx, st.ID)
}

// JobTrace fetches GET /v1/jobs/{id}/trace?format=spans: the job's
// span timeline as structured data.
func (c *Client) JobTrace(ctx context.Context, id string) (service.TraceResponse, error) {
	var tr service.TraceResponse
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace?format=spans", nil, &tr)
	return tr, err
}

// JobTraceChrome fetches GET /v1/jobs/{id}/trace?format=chrome: the
// raw Chrome trace-event JSON, ready to write to disk and load in
// chrome://tracing or Perfetto.
func (c *Client) JobTraceChrome(ctx context.Context, id string) ([]byte, error) {
	var raw json.RawMessage
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace?format=chrome", nil, &raw)
	return raw, err
}

// Tracez fetches GET /v1/tracez. A non-empty traceID filters to that
// trace's retained spans (the fleet coordinator collects a job's
// replica-side spans this way); limit bounds the unfiltered listing
// (<=0 = server default).
func (c *Client) Tracez(ctx context.Context, traceID string, limit int) (service.TracezResponse, error) {
	path := "/v1/tracez"
	q := url.Values{}
	if traceID != "" {
		q.Set("trace_id", traceID)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var tz service.TracezResponse
	err := c.doJSON(ctx, http.MethodGet, path, nil, &tz)
	return tz, err
}

// UploadTrace streams a .cvt container to the server's trace store and
// returns its content digest and record count.
func (c *Client) UploadTrace(ctx context.Context, r io.Reader) (digest string, records uint64, err error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/traces", r)
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", 0, apiError(resp)
	}
	var out struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", 0, err
	}
	return out.Digest, out.Records, nil
}

// UploadTraceFile is UploadTrace over an on-disk .cvt file.
func (c *Client) UploadTraceFile(ctx context.Context, path string) (digest string, records uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return c.UploadTrace(ctx, f)
}
