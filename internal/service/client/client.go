// Package client speaks the clusterd HTTP API: job and grid
// submission, status polling, event streaming, trace upload and server
// stats. clustersim -remote is built on it; the wire types are the
// service package's own, so client and server cannot drift apart.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"clustervp/internal/service"
)

// Client talks to one clusterd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8090"). The underlying http.Client has no global
// timeout: simulations legitimately run long, and Wait streams events.
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiError is the decoded {"error": ...} payload of a non-2xx reply.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("clusterd: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("clusterd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// doJSON posts (or gets, when in is nil) and decodes a JSON reply.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks GET /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Stats fetches GET /v1/statsz.
func (c *Client) Stats(ctx context.Context) (service.ServerStats, error) {
	var st service.ServerStats
	err := c.doJSON(ctx, http.MethodGet, "/v1/statsz", nil, &st)
	return st, err
}

// SubmitJob posts one job and returns its accepted status (queued).
func (c *Client) SubmitJob(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// SubmitGrid posts a grid and returns the expanded job IDs in grid
// order.
func (c *Client) SubmitGrid(ctx context.Context, req service.GridRequest) ([]string, error) {
	var out struct {
		Jobs []string `json:"jobs"`
	}
	err := c.doJSON(ctx, http.MethodPost, "/v1/grids", req, &out)
	return out.Jobs, err
}

// Status fetches one job's status (including results once done).
func (c *Client) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait blocks until the job reaches a terminal state and returns its
// final status. It rides the NDJSON events stream (so completion is
// pushed, not polled); if the stream breaks it falls back to polling.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	if err := c.waitEvents(ctx, id); err != nil {
		if ctx.Err() != nil {
			return service.JobStatus{}, ctx.Err()
		}
		if err := c.pollUntilDone(ctx, id); err != nil {
			return service.JobStatus{}, err
		}
	}
	return c.Status(ctx, id)
}

// waitEvents consumes the events stream until a terminal line.
func (c *Client) waitEvents(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev service.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("clusterd: bad event line: %w", err)
		}
		if ev.State == service.StateDone || ev.State == service.StateFailed {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("clusterd: events stream for %s ended before a terminal state", id)
}

// pollUntilDone is the degraded-mode wait.
func (c *Client) pollUntilDone(ctx context.Context, id string) error {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Run submits a job and waits for its terminal status — the one-call
// remote equivalent of runner.Simulate.
func (c *Client) Run(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return service.JobStatus{}, err
	}
	return c.Wait(ctx, st.ID)
}

// UploadTrace streams a .cvt container to the server's trace store and
// returns its content digest and record count.
func (c *Client) UploadTrace(ctx context.Context, r io.Reader) (digest string, records uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/traces", r)
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", 0, apiError(resp)
	}
	var out struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", 0, err
	}
	return out.Digest, out.Records, nil
}

// UploadTraceFile is UploadTrace over an on-disk .cvt file.
func (c *Client) UploadTraceFile(ctx context.Context, path string) (digest string, records uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return c.UploadTrace(ctx, f)
}
