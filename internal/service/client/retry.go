package client

// Automatic retry of retriable failures. Retries are safe for every
// JSON endpoint the client speaks: reads are idempotent by nature, and
// re-submitting a job or grid is idempotent in effect because results
// are content-addressed — a duplicate submission resolves from the
// result cache rather than repeating work. (Trace upload is excluded:
// its body is a one-shot stream.)
//
// Retriable means the request may never have been processed, or the
// server said "try again": transport errors with the context still
// live, and HTTP 502/503/504. A 503's Retry-After is honored as the
// floor of the backoff step; everything else backs off exponentially
// from BaseDelay up to MaxDelay. 4xx replies are never retried — they
// are verdicts, not weather.

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// RetryPolicy bounds the client's automatic retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, the first
	// included (<=1 disables retry).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms), doubling per
	// retry up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep, when non-nil, replaces the real wait — tests inject a
	// recorder to assert the backoff schedule without wall-clock time.
	// It must return early with the context's error on cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// WithRetry enables automatic retry of retriable failures on every
// JSON endpoint (trace upload excluded).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 50 * time.Millisecond
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 2 * time.Second
}

// sleep waits d or until the context dies.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retriable classifies an error from one attempt. The returned delay
// is the server's Retry-After hint (0 = use backoff).
func retriable(err error) (hint time.Duration, ok bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return time.Duration(apiErr.RetryAfterSec) * time.Second, true
		}
		return 0, false
	}
	// Anything else from http.Client.Do is a transport-level failure:
	// the server may never have seen the request. Context death is the
	// caller giving up, not the network.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 0, false
	}
	return 0, true
}

// withRetry runs fn under the policy: attempt, classify, back off,
// repeat. The last error wins when attempts run out.
func (c *Client) withRetry(ctx context.Context, fn func() error) error {
	delay := c.retry.baseDelay()
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if attempt >= c.retry.MaxAttempts || ctx.Err() != nil {
			return err
		}
		hint, ok := retriable(err)
		if !ok {
			return err
		}
		step := delay
		if hint > step {
			step = hint
		}
		if err := c.retry.sleep(ctx, step); err != nil {
			return err
		}
		if delay *= 2; delay > c.retry.maxDelay() {
			delay = c.retry.maxDelay()
		}
	}
}
