package client

// Retry/backoff coverage, driven deterministically by the
// fault-injecting transport in internal/service/servicetest: every
// network failure here is scripted, every backoff sleep recorded
// through an injected clock — no timing dependence, no real flakiness.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/service/servicetest"
	"clustervp/internal/stats"
)

// newFaultyClient wires client → fault transport → in-process server
// with a recording sleep, returning all three knobs.
func newFaultyClient(t *testing.T, policy RetryPolicy) (*Client, *servicetest.Transport, *[]time.Duration) {
	t.Helper()
	s, err := service.New(service.Options{
		Workers: 2,
		Run: func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 42}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	tr := servicetest.NewTransport(nil)
	slept := &[]time.Duration{}
	policy.Sleep = func(ctx context.Context, d time.Duration) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		*slept = append(*slept, d)
		return nil
	}
	c := New(ts.URL, WithHTTPClient(&http.Client{Transport: tr}), WithRetry(policy))
	return c, tr, slept
}

// TestRetryTransportDrops: two dropped sends, then success, with the
// exponential schedule recorded exactly.
func TestRetryTransportDrops(t *testing.T) {
	c, tr, slept := newFaultyClient(t, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond})
	tr.Inject(servicetest.Fault{Method: http.MethodPost, Path: "/v1/jobs", Times: 2, Drop: true})

	st, err := c.SubmitJob(context.Background(), service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != service.StateQueued {
		t.Fatalf("submit after retries = %+v", st)
	}
	if got := tr.Requests(http.MethodPost, "/v1/jobs"); got != 3 {
		t.Errorf("attempts = %d, want 3 (2 drops + 1 success)", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", *slept, want)
	}
}

// TestRetryHonorsRetryAfter: a synthesized 503 with Retry-After floors
// the backoff step at the server's hint.
func TestRetryHonorsRetryAfter(t *testing.T) {
	c, tr, slept := newFaultyClient(t, RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond})
	tr.Inject(servicetest.Fault{Path: "/v1/jobs", Times: 1, Status: http.StatusServiceUnavailable, RetryAfterSec: 2})

	if _, err := c.SubmitJob(context.Background(), service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio",
	}); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Errorf("slept %v, want the server's 2s Retry-After hint", *slept)
	}
}

// TestRetryConnectionReset: a reset mid-flight is retriable like a
// drop; the classified error is still surfaced when attempts run out.
func TestRetryConnectionReset(t *testing.T) {
	c, tr, _ := newFaultyClient(t, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	tr.Inject(servicetest.Fault{Path: "/v1/statsz", Reset: true}) // unlimited

	_, err := c.Stats(context.Background())
	if !errors.Is(err, servicetest.ErrInjectedReset) {
		t.Fatalf("err = %v, want the injected reset after exhausting retries", err)
	}
	if got := tr.Requests(http.MethodGet, "/v1/statsz"); got != 2 {
		t.Errorf("attempts = %d, want exactly MaxAttempts", got)
	}
}

// TestNoRetryOnVerdicts: 4xx replies are never retried — a bad spec
// stays bad no matter how often it is sent.
func TestNoRetryOnVerdicts(t *testing.T) {
	c, tr, slept := newFaultyClient(t, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})

	_, err := c.SubmitJob(context.Background(), service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2"}, Kernel: "no-such-kernel",
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != service.CodeInvalidSpec {
		t.Fatalf("err = %v, want invalid_spec", err)
	}
	if got := tr.Requests(http.MethodPost, "/v1/jobs"); got != 1 {
		t.Errorf("attempts = %d, want 1 (4xx is a verdict)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("slept %v on a non-retriable error", *slept)
	}
}

// TestRetryStopsOnCancel: a canceled context ends the retry loop with
// the context's error, not another attempt.
func TestRetryStopsOnCancel(t *testing.T) {
	c, tr, _ := newFaultyClient(t, RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond})
	tr.Inject(servicetest.Fault{Path: "/v1/statsz", Drop: true})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Stats(ctx)
	if err == nil {
		t.Fatal("Stats succeeded under a dead context")
	}
	if got := tr.Requests(http.MethodGet, "/v1/statsz"); got > 1 {
		t.Errorf("attempts = %d under a canceled context, want at most 1", got)
	}
}

// TestDuplicateSubmissionIsIdempotentWork: a duplicated submit reaches
// the server twice and creates two job records, but content-addressed
// fingerprints collapse the actual simulation work — which is exactly
// why the fleet's retries are safe.
func TestDuplicateSubmissionIsIdempotentWork(t *testing.T) {
	var executed int
	s, err := service.New(service.Options{
		Workers:  1,
		CacheDir: t.TempDir(),
		Run: func(j runner.Job) (stats.Results, error) {
			executed++ // Workers=1 serializes; no lock needed
			return stats.Results{Benchmark: j.Kernel, Cycles: 42}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := servicetest.NewTransport(nil)
	tr.Inject(servicetest.Fault{Method: http.MethodPost, Path: "/v1/jobs", Times: 1, Duplicate: true})
	c := New(ts.URL, WithHTTPClient(&http.Client{Transport: tr}))

	st, err := c.Run(context.Background(), service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.Results == nil {
		t.Fatalf("final status = %+v", st)
	}
	// Both sends landed…
	zs := s.Stats()
	if zs.Queue.Submitted != 2 {
		t.Errorf("server saw %d submissions, want 2 (the duplicate landed)", zs.Queue.Submitted)
	}
	// …but the cache collapsed the work to one simulation.
	waitDrained(t, s, 2)
	if executed != 1 {
		t.Errorf("simulator ran %d times for a duplicated submission, want 1", executed)
	}
}

// waitDrained blocks until n jobs have reached a terminal state.
func waitDrained(t *testing.T, s *service.Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		zs := s.Stats()
		if zs.Queue.Done+zs.Queue.Failed >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("jobs did not drain: %+v", s.Stats().Queue)
}
