package client

// Multi-tenant client tests: the API key rides every request path
// (submit, status, the events stream behind Wait, trace upload), and
// non-2xx replies decode into *APIError with the server's stable code.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

var testTenants = []service.Tenant{
	{Name: "alice", Key: "alice-key-0001", MaxInFlight: 1},
	{Name: "bob", Key: "bob-key-0001"},
}

func TestClientAPIKeyOnEveryPath(t *testing.T) {
	s, err := service.New(service.Options{
		Workers:  2,
		TraceDir: t.TempDir(),
		Tenants:  testTenants,
		Run: func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 10, Instructions: 20}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	// Without a key every authenticated path is 401 unauthorized.
	anon := New(ts.URL)
	var apiErr *APIError
	if _, err := anon.SubmitJob(ctx, service.JobRequest{Kernel: "rawcaudio"}); !errors.As(err, &apiErr) ||
		apiErr.Code != service.CodeUnauthorized || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless submit err = %v, want 401 unauthorized APIError", err)
	}

	// With a key, submit → Wait (events stream) → Status all succeed,
	// which exercises the key on every request the client can make.
	c := New(ts.URL, WithAPIKey("bob-key-0001"))
	st, err := c.Run(ctx, service.JobRequest{Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.Tenant != "bob" {
		t.Fatalf("remote run state=%q tenant=%q, want done as bob", st.State, st.Tenant)
	}

	// Trace upload carries the key too.
	prog, err := workload.Build("rawcaudio", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.cvt")
	if _, err := trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.UploadTraceFile(ctx, path); err != nil {
		t.Fatalf("authenticated upload failed: %v", err)
	}
	if _, _, err := anon.UploadTraceFile(ctx, path); !errors.As(err, &apiErr) ||
		apiErr.Code != service.CodeUnauthorized {
		t.Errorf("keyless upload err = %v, want unauthorized APIError", err)
	}

	// Tenant isolation surfaces as not_found.
	peek := New(ts.URL, WithAPIKey("alice-key-0001"))
	if _, err := peek.Status(ctx, st.ID); !errors.As(err, &apiErr) ||
		apiErr.Code != service.CodeNotFound {
		t.Errorf("cross-tenant status err = %v, want not_found APIError", err)
	}
}

func TestClientQuotaErrorCarriesRetryAfter(t *testing.T) {
	block := make(chan struct{})
	s, err := service.New(service.Options{
		Workers: 1,
		Tenants: testTenants,
		Run: func(j runner.Job) (stats.Results, error) {
			<-block
			return stats.Results{Cycles: 1, Instructions: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(block); s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	// alice's max_in_flight is 1: the first job occupies it, the second
	// is shed with a machine-readable 429.
	c := New(ts.URL, WithAPIKey("alice-key-0001"))
	if _, err := c.SubmitJob(ctx, service.JobRequest{Kernel: "rawcaudio", Scale: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitJob(ctx, service.JobRequest{Kernel: "rawcaudio", Scale: 2})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-quota err = %v, want *APIError", err)
	}
	if apiErr.Code != service.CodeQuotaExceeded || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-quota = %q/%d, want quota_exceeded/429", apiErr.Code, apiErr.StatusCode)
	}
	if apiErr.RetryAfterSec <= 0 {
		t.Errorf("RetryAfterSec = %d, want > 0", apiErr.RetryAfterSec)
	}
	if apiErr.Details["tenant"] != "alice" {
		t.Errorf("details = %v, want the tenant named", apiErr.Details)
	}
	if !strings.Contains(apiErr.Error(), "quota_exceeded") {
		t.Errorf("Error() = %q, want the code included", apiErr.Error())
	}
}

// TestAPIErrorLegacyFallback: a pre-envelope server (or a proxy) that
// answers {"error": "..."} or plain text still yields a useful message.
func TestAPIErrorLegacyFallback(t *testing.T) {
	for _, tc := range []struct {
		body, want string
	}{
		{`{"error": "old-style message"}`, "old-style message"},
		{"plain text failure", "plain text failure"},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, tc.body, http.StatusBadGateway)
		}))
		c := New(ts.URL)
		err := c.Health(context.Background())
		ts.Close()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("legacy error = %v, want *APIError", err)
		}
		if apiErr.StatusCode != http.StatusBadGateway || apiErr.Code != "" ||
			!strings.Contains(apiErr.Message, strings.Trim(tc.want, `"`)) {
			t.Errorf("legacy decode of %q = %+v", tc.body, apiErr)
		}
	}
}

// TestOpenModeUnaffected: a keyless client against an open server works
// exactly as before the tenant layer existed.
func TestOpenModeUnaffected(t *testing.T) {
	c, _ := newClientServer(t, service.Options{
		Run: func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 5, Instructions: 10}, nil
		},
	})
	st, err := c.Run(context.Background(), service.JobRequest{Kernel: "rawcaudio"})
	if err != nil || st.State != service.StateDone {
		t.Fatalf("open-mode run state=%q err=%v", st.State, err)
	}
	if st.Tenant != "anonymous" {
		t.Errorf("open-mode tenant = %q, want anonymous", st.Tenant)
	}
}
