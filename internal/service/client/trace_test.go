package client

// Trace propagation and trace-fetch tests: newRequest injects the W3C
// traceparent of a context-carried span (and only then), and the
// JobTrace/Tracez accessors decode the server's tracing surface.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/obs"
	"clustervp/internal/service"
)

// TestTraceparentInjection: a span on the context rides every request
// as a traceparent header; a bare context sends none.
func TestTraceparentInjection(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get("traceparent"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c := New(ts.URL)

	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector("test", 16)
	span := col.StartRoot("op", obs.SpanContext{})
	if err := c.Health(obs.NewContext(context.Background(), span)); err != nil {
		t.Fatal(err)
	}
	span.End()

	mu.Lock()
	defer mu.Unlock()
	if len(headers) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(headers))
	}
	if headers[0] != "" {
		t.Errorf("bare context sent traceparent %q, want none", headers[0])
	}
	want := span.Context().Traceparent()
	if headers[1] != want {
		t.Errorf("span context sent traceparent %q, want %q", headers[1], want)
	}
	if got, ok := obs.ParseTraceparent(headers[1]); !ok || got.TraceID != span.TraceID() {
		t.Errorf("injected header %q does not parse back to trace %s", headers[1], span.TraceID())
	}
}

// TestJobTraceAndTracez: the typed accessors for the tracing surface
// round-trip against a real server.
func TestJobTraceAndTracez(t *testing.T) {
	c, s := newClientServer(t, service.Options{})
	ctx := context.Background()
	st, err := c.Run(ctx, service.JobRequest{
		Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" {
		t.Fatal("job status has no trace id")
	}

	tr, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != st.TraceID || len(tr.Spans) == 0 {
		t.Errorf("JobTrace = trace %q with %d spans, want %q with spans", tr.TraceID, len(tr.Spans), st.TraceID)
	}

	raw, err := c.JobTraceChrome(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Error("JobTraceChrome returned an empty document")
	}

	tz, err := c.Tracez(ctx, st.TraceID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tz.Spans) == 0 {
		t.Fatalf("Tracez(%s) returned no spans", st.TraceID)
	}
	for _, sp := range tz.Spans {
		if sp.TraceID != st.TraceID {
			t.Errorf("filtered span %q has trace %s, want %s", sp.Name, sp.TraceID, st.TraceID)
		}
	}
	_ = s
}
