package service

// Job-server tests: submission validation, deterministic priority
// ordering, bounded-queue admission, event streaming, the HTTP
// surface, and the acceptance contract — a restarted server serves a
// previously-computed grid entirely from the on-disk cache with zero
// simulator invocations and byte-identical stats.Results JSON.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// newTestServer builds a server with small defaults; opts mutates them.
func newTestServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	opts := Options{Workers: 2, QueueDepth: 64, ProgressInterval: 500}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatus{}
}

func TestSubmitRunsRealSimulation(t *testing.T) {
	s := newTestServer(t, nil)
	st, err := s.Submit(JobRequest{
		Machine: config.MachineSpec{Clusters: "4", VP: "stride", Steering: "vpb"},
		Kernel:  "rawcaudio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("fresh submission state=%q id=%q, want queued with an id", st.State, st.ID)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != StateDone || fin.Results == nil {
		t.Fatalf("job finished %q (err=%q), want done with results", fin.State, fin.Error)
	}

	// The served results must equal a local simulation of the same job.
	cfg, err := config.MachineSpec{Clusters: "4", VP: "stride", Steering: "vpb"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Simulate(runner.Job{Config: cfg, Kernel: "rawcaudio", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(fin.Results)
	local, _ := json.Marshal(want)
	if !bytes.Equal(got, local) {
		t.Errorf("served results differ from a local run:\nserved %s\nlocal  %s", got, local)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []JobRequest{
		{},                       // no workload
		{Kernel: "nosuchkernel"}, // unknown kernel
		{Kernel: "cjpeg", TraceDigest: "sha256:abc"},                  // both workloads
		{TraceDigest: "sha256:abc"},                                   // no trace store on this server
		{Kernel: "cjpeg", Machine: config.MachineSpec{VP: "psychic"}}, // bad enum
		{Kernel: "cjpeg", Machine: config.MachineSpec{Clusters: "zebra"}},
	}
	for _, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Submit(%+v) err = %v, want ErrBadRequest", req, err)
		}
	}
	if n := s.Stats().Queue.Submitted; n != 0 {
		t.Errorf("rejected submissions still counted: %d", n)
	}
}

// blockingStub is a stub Run that records execution order and blocks
// until released. newBlockingStub ties the release to test cleanup so
// a failing test cannot deadlock Server.Close on a blocked worker.
type blockingStub struct {
	mu      sync.Mutex
	order   []string
	release chan struct{}
	once    sync.Once
}

// newBlockingStub must be followed by a t.Cleanup(b.Release) AFTER the
// server is created: cleanups run last-in-first-out, so registering the
// release after Server.Close guarantees blocked workers are freed
// before Close waits on them.
func newBlockingStub() *blockingStub {
	return &blockingStub{release: make(chan struct{})}
}

func (b *blockingStub) Release() { b.once.Do(func() { close(b.release) }) }

func (b *blockingStub) run(j runner.Job) (stats.Results, error) {
	b.mu.Lock()
	b.order = append(b.order, j.Kernel)
	b.mu.Unlock()
	<-b.release
	return stats.Results{Benchmark: j.Kernel, Cycles: 10, Instructions: 20}, nil
}

// TestPriorityOrdering: with one worker, queued jobs run in (priority
// desc, submission asc) order — the deterministic pop order the
// package documents.
func TestPriorityOrdering(t *testing.T) {
	stub := newBlockingStub()
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.Run = stub.run
	})
	t.Cleanup(stub.Release)
	// Different scales keep the fingerprints distinct.
	first, err := s.Submit(JobRequest{Kernel: "cjpeg", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to start the head job so the rest queue up.
	for i := 0; ; i++ {
		if st, _ := s.Status(first.ID); st.State == StateRunning {
			break
		}
		if i > 5000 {
			t.Fatal("head job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var ids []string
	for _, sub := range []struct {
		kernel string
		prio   int
	}{
		{"epicdec", 0}, {"gsmdec", 5}, {"mesamipmap", 5}, {"pgpenc", 9},
	} {
		st, err := s.Submit(JobRequest{Kernel: sub.kernel, Priority: sub.prio})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	stub.Release()
	for _, id := range append([]string{first.ID}, ids...) {
		if st := waitJob(t, s, id); st.State != StateDone {
			t.Fatalf("job %s finished %q", id, st.State)
		}
	}
	want := []string{"cjpeg", "pgpenc", "gsmdec", "mesamipmap", "epicdec"}
	stub.mu.Lock()
	got := append([]string(nil), stub.order...)
	stub.mu.Unlock()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}

// TestQueueBounded: a full queue rejects single jobs and whole grids
// without admitting partial grids.
func TestQueueBounded(t *testing.T) {
	stub := newBlockingStub()
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 3
		o.Run = stub.run
	})
	t.Cleanup(stub.Release)
	head, err := s.Submit(JobRequest{Kernel: "cjpeg", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if st, _ := s.Status(head.ID); st.State == StateRunning {
			break
		}
		if i > 5000 {
			t.Fatal("head job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue (the head job is running, not queued).
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(JobRequest{Kernel: "cjpeg", Scale: i + 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(JobRequest{Kernel: "cjpeg", Scale: 99}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit past capacity err = %v, want ErrQueueFull", err)
	}
	before := s.Stats().Queue.Submitted
	_, err = s.SubmitGrid(GridRequest{
		Machines: []config.MachineSpec{{Clusters: "2"}},
		Kernels:  []string{"epicdec", "mesamipmap"},
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("grid past capacity err = %v, want ErrQueueFull", err)
	}
	if after := s.Stats().Queue.Submitted; after != before {
		t.Errorf("rejected grid admitted %d jobs (all-or-nothing violated)", after-before)
	}
}

// TestJobRecordEviction: a long-lived server retains at most
// MaxJobRecords job records — the oldest terminal records are evicted
// as new submissions arrive, while queued/running jobs always stay
// resolvable.
func TestJobRecordEviction(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 4
		o.MaxJobRecords = 4
		o.Run = func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 10, Instructions: 20}, nil
		}
	})
	var ids []string
	for i := 0; i < 12; i++ {
		st, err := s.Submit(JobRequest{Kernel: "cjpeg", Scale: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitJob(t, s, st.ID)
	}
	s.mu.Lock()
	n := len(s.jobs)
	ordered := len(s.order)
	s.mu.Unlock()
	if n > 4 {
		t.Errorf("server retains %d job records, want <= MaxJobRecords 4", n)
	}
	if ordered != n {
		t.Errorf("order index has %d entries for %d records", ordered, n)
	}
	// The newest job is still resolvable; the oldest has been evicted.
	if _, err := s.Status(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if _, err := s.Status(ids[0]); !errors.Is(err, ErrNoSuchJob) {
		t.Errorf("oldest job status err = %v, want ErrNoSuchJob after eviction", err)
	}
}

// TestUnknownJSONFieldRejected: a misspelled knob must 400, not
// silently simulate with defaults.
func TestUnknownJSONFieldRejected(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"machine":{"clusters":"4","steer":"vpb"},"kernel":"cjpeg"}`, // CLI flag name, not the wire name
		`{"machine":{"clusters":"4"},"kernal":"cjpeg"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown field accepted with %d, want 400: %s", resp.StatusCode, body)
		}
	}
	if n := s.Stats().Queue.Submitted; n != 0 {
		t.Errorf("unknown-field submissions still admitted %d jobs", n)
	}
}

// TestGridDeduplicatesThroughEngine: a grid repeating one machine spec
// resolves every job but simulates each unique fingerprint once.
func TestGridDeduplicatesThroughEngine(t *testing.T) {
	s := newTestServer(t, nil)
	ids, err := s.SubmitGrid(GridRequest{
		Machines: []config.MachineSpec{{Clusters: "2"}, {Clusters: "2"}},
		Kernels:  []string{"rawcaudio"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("grid expanded to %d jobs, want 2", len(ids))
	}
	var res [2]JobStatus
	for i, id := range ids {
		res[i] = waitJob(t, s, id)
		if res[i].State != StateDone {
			t.Fatalf("job %s finished %q (%s)", id, res[i].State, res[i].Error)
		}
	}
	if ex := s.Engine().Executed(); ex != 1 {
		t.Errorf("identical grid points executed %d simulations, want 1", ex)
	}
	a, _ := json.Marshal(res[0].Results)
	b, _ := json.Marshal(res[1].Results)
	if !bytes.Equal(a, b) {
		t.Error("deduplicated jobs returned different results")
	}
}

// TestRestartServesFromDiskCache is the acceptance criterion: a second
// server over the same cache directory resolves the whole grid with
// zero simulator invocations and byte-identical stats.Results JSON.
func TestRestartServesFromDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("two real grids in -short mode")
	}
	cacheDir := t.TempDir()
	grid := GridRequest{
		Machines: []config.MachineSpec{
			{Clusters: "2"},
			{Clusters: "4", VP: "stride", Steering: "vpb"},
		},
		Kernels: []string{"rawcaudio", "gsmdec"},
	}

	runGrid := func(s *Server) map[string][]byte {
		t.Helper()
		ids, err := s.SubmitGrid(grid)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(ids))
		for i, id := range ids {
			st := waitJob(t, s, id)
			if st.State != StateDone {
				t.Fatalf("job %s finished %q (%s)", id, st.State, st.Error)
			}
			data, err := json.Marshal(st.Results)
			if err != nil {
				t.Fatal(err)
			}
			out[fmt.Sprintf("grid-point-%d", i)] = data
		}
		return out
	}

	cold, err := New(Options{Workers: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	coldResults := runGrid(cold)
	if ex := cold.Engine().Executed(); ex != 4 {
		t.Fatalf("cold server executed %d simulations, want 4", ex)
	}
	cold.Close()

	warm, err := New(Options{Workers: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmResults := runGrid(warm)
	if ex := warm.Engine().Executed(); ex != 0 {
		t.Errorf("restarted server executed %d simulations, want 0 (disk cache must serve everything)", ex)
	}
	if hits := warm.Engine().CacheHits(); hits != 4 {
		t.Errorf("restarted server cache hits = %d, want 4", hits)
	}
	for k, want := range coldResults {
		if got := warmResults[k]; !bytes.Equal(got, want) {
			t.Errorf("%s: restarted results not byte-identical:\ncold %s\nwarm %s", k, want, got)
		}
	}
	if ratio := warm.Stats().Cache.HitRatio; ratio != 1 {
		t.Errorf("statsz cache hit ratio = %v, want 1", ratio)
	}
}

// TestEventsStreamProgress exercises the job-side event plumbing
// directly: progress snapshots and the terminal transition reach a
// subscriber in order.
func TestEventsStreamProgress(t *testing.T) {
	j := &job{
		id:       "j-test",
		state:    StateQueued,
		subs:     make(map[chan Event]struct{}),
		terminal: make(chan struct{}),
	}
	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	if snap.State != StateQueued {
		t.Fatalf("snapshot state %q, want queued", snap.State)
	}
	j.setRunning()
	j.progress(core.Progress{Cycle: 1000, Instructions: 1500})
	j.finish(stats.Results{Cycles: 2000, Instructions: 3000}, nil)

	var got []Event
	for len(ch) > 0 {
		got = append(got, <-ch)
	}
	if len(got) != 2 {
		t.Fatalf("subscriber received %d events, want 2 (running + progress): %+v", len(got), got)
	}
	if got[0].State != StateRunning || got[1].Cycles != 1000 || got[1].Instructions != 1500 {
		t.Errorf("unexpected events: %+v", got)
	}
	if got[1].IPC != 1.5 {
		t.Errorf("progress IPC = %v, want 1.5", got[1].IPC)
	}
	term := j.terminalEvent()
	if term.State != StateDone || term.Cycles != 2000 || term.IPC != 1.5 {
		t.Errorf("terminal event %+v", term)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: health, job submit,
// status, NDJSON events, statsz, and error mapping.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, _ := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"machine":{"clusters":"2"},"kernel":"rawcaudio"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, st)
	}

	// The events stream ends with a terminal line carrying counters.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var last Event
	lines := 0
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("events line %d is not JSON: %v (%s)", lines, err, sc.Text())
		}
	}
	if lines == 0 || last.State != StateDone || last.Cycles <= 0 || last.IPC <= 0 {
		t.Fatalf("events stream ended with %+v after %d lines, want a done event with counters", last, lines)
	}

	// Status carries the full results record.
	sresp, data := get("/v1/jobs/" + st.ID)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", sresp.StatusCode)
	}
	var fin JobStatus
	if err := json.Unmarshal(data, &fin); err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Results == nil || fin.Results.Instructions == 0 {
		t.Fatalf("final status %+v", fin)
	}

	// statsz reflects the resolved job.
	zresp, zdata := get("/v1/statsz")
	if zresp.StatusCode != http.StatusOK {
		t.Fatalf("statsz = %d", zresp.StatusCode)
	}
	var zs ServerStats
	if err := json.Unmarshal(zdata, &zs); err != nil {
		t.Fatal(err)
	}
	if zs.Queue.Done < 1 || zs.Queue.Workers < 1 || zs.Queue.Capacity == 0 {
		t.Errorf("statsz %+v", zs)
	}

	// Error mapping.
	if resp, _ := get("/v1/jobs/j-99999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	bad, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kernel":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kernel = %d, want 400", bad.StatusCode)
	}
}

// TestTraceUploadAndReplayJob uploads a .cvt over HTTP and runs a job
// against its digest; the result must match replaying the file
// locally.
func TestTraceUploadAndReplayJob(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.TraceDir = t.TempDir() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Build a small trace file.
	prog, err := workload.Build("rawcaudio", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.cvt"
	if _, err := trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Digest  string `json:"digest"`
		Records uint64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || up.Records == 0 {
		t.Fatalf("upload = %d %+v", resp.StatusCode, up)
	}

	// Corrupt uploads are rejected.
	cresp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data[:len(data)/2]))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt upload = %d, want 400", cresp.StatusCode)
	}

	st, err := s.Submit(JobRequest{
		Machine:     config.MachineSpec{Clusters: "2"},
		TraceDigest: up.Digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != StateDone {
		t.Fatalf("trace job finished %q (%s)", fin.State, fin.Error)
	}
	want, err := runner.Simulate(runner.Job{Config: config.Preset(2), Trace: path})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(fin.Results)
	local, _ := json.Marshal(want)
	if !bytes.Equal(got, local) {
		t.Errorf("trace-replay results differ from local replay:\nserved %s\nlocal  %s", got, local)
	}

	// Unknown digest is a 400 at submission time.
	if _, err := s.Submit(JobRequest{TraceDigest: "sha256:" + strings.Repeat("0", 64)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown digest err = %v, want ErrBadRequest", err)
	}
}
