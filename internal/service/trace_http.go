package service

// The tracing surface of the job server:
//
//	GET /v1/jobs/{id}/trace?format=chrome|spans
//	    One job's span timeline. format=spans (default) returns the
//	    machine-checkable JSON span dump; format=chrome returns Chrome
//	    trace-event JSON loadable in chrome://tracing or Perfetto
//	    (https://ui.perfetto.dev). Tenant-scoped like the status
//	    endpoint. A running job returns the spans finished so far.
//	GET /v1/tracez?limit=N&trace_id=...
//	    The most recent finished spans across all traces (default 256),
//	    plus collector occupancy — the "what is this server doing"
//	    debug page. Like /v1/statsz, it is server-wide: any
//	    authenticated caller sees all tenants' spans. trace_id filters
//	    to one trace's retained spans; the fleet coordinator uses this
//	    to collect a job's replica-side spans into a merged timeline.

import (
	"fmt"
	"net/http"
	"strconv"

	"clustervp/internal/obs"
)

// TraceResponse is the format=spans payload of GET /v1/jobs/{id}/trace.
type TraceResponse struct {
	SchemaVersion int        `json:"schema_version"`
	TraceID       string     `json:"trace_id"`
	Job           string     `json:"job"`
	State         string     `json:"state"`
	Spans         []obs.Span `json:"spans"`
}

// TracezResponse is the GET /v1/tracez payload.
type TracezResponse struct {
	SchemaVersion int        `json:"schema_version"`
	Service       string     `json:"service"`
	Retained      int        `json:"retained"`
	Dropped       uint64     `json:"dropped"`
	Spans         []obs.Span `json:"spans"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupFor(s.tenantOf(r), r.PathValue("id"))
	if !ok {
		writeError(w, ErrNoSuchJob)
		return
	}
	ri := infoFrom(r.Context())
	ri.jobID = j.id
	ri.fp = j.fp
	WriteTrace(w, r, s.spans.TraceSpans(j.traceID), j.traceID, j.id, j.status().State)
}

// WriteTrace renders one trace in the requested format; shared with
// the fleet coordinator's merged variant.
func WriteTrace(w http.ResponseWriter, r *http.Request, spans []obs.Span, traceID, jobID, state string) {
	switch format := r.URL.Query().Get("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", jobID+".trace.json"))
		obs.WriteChromeTrace(w, spans)
	case "", "spans":
		if spans == nil {
			spans = []obs.Span{}
		}
		writeJSON(w, http.StatusOK, TraceResponse{
			SchemaVersion: SchemaVersion,
			TraceID:       traceID,
			Job:           jobID,
			State:         state,
			Spans:         spans,
		})
	default:
		writeError(w, fmt.Errorf("%w: unknown trace format %q (want chrome or spans)", ErrBadRequest, format))
	}
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	WriteTracez(w, r, s.spans)
}

// WriteTracez renders a collector's recent-span ring; shared with the
// fleet coordinator.
func WriteTracez(w http.ResponseWriter, r *http.Request, c *obs.Collector) {
	limit := 256
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("%w: limit %q is not a non-negative integer", ErrBadRequest, raw))
			return
		}
		limit = n
	}
	var spans []obs.Span
	if tid := r.URL.Query().Get("trace_id"); tid != "" {
		spans = c.TraceSpans(tid)
	} else {
		spans = c.Recent(limit)
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, TracezResponse{
		SchemaVersion: SchemaVersion,
		Service:       c.Service(),
		Retained:      c.Len(),
		Dropped:       c.Dropped(),
		Spans:         spans,
	})
}
