package fleet

// The chaos acceptance test for fleet mode (ISSUE satellite): run a
// real grid through a 3-replica in-process fleet, kill one replica
// while it holds a shard in flight, and prove the three load-bearing
// properties at once:
//
//  1. every job still completes, with results byte-identical to a
//     local runner.Simulate of the same grid,
//  2. duplicate work is bounded by the killed replica's in-flight
//     shards (here: the one held simulation, which is lost, so the
//     expected duplicate count is zero and the ceiling is one),
//  3. the coordinator's event stream still emits exactly one terminal
//     line per job — failover never leaks a premature terminal.
//
// The kill is a network kill (CloseClientConnections + Close), the
// nearest in-process analogue to SIGKILL: established streams break
// mid-line and new dials are refused. The victim is not fixed — it is
// whichever replica starts the fleet's first simulation — so the test
// exercises the failover ring from an arbitrary home slot.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/stats"
)

func TestChaosKillReplicaMidGrid(t *testing.T) {
	var (
		firstClaim atomic.Bool           // CAS: exactly one run becomes the held shard
		victim     atomic.Int32          // index of the replica to kill; -1 until chosen
		victimCh   = make(chan int, 1)   // delivers the victim index to the test
		proceed    = make(chan struct{}) // releases the held run once the kill landed
		killed     = make(chan struct{}) // closed after the kill: victim runs are lost
		gate       = make(chan struct{}) // closed at cleanup: drains the dead replica
	)
	victim.Store(-1)

	tf := newTestFleet(t, 3, func(i int) func(runner.Job) (stats.Results, error) {
		return func(j runner.Job) (stats.Results, error) {
			if firstClaim.CompareAndSwap(false, true) {
				// This run defines the victim and stays in flight while
				// the test kills its replica's listener — a guaranteed
				// orphaned shard, no timing luck needed.
				victimCh <- i
				<-proceed
			}
			if int(victim.Load()) == i {
				select {
				case <-killed:
					// The "process" is dead: whatever is still on its
					// queue is lost work, never a result.
					<-gate
					return stats.Results{}, errors.New("chaos: replica killed")
				default:
				}
			}
			return runner.Simulate(j)
		}
	}, nil)
	var onGate, onProceed, onKilled sync.Once
	t.Cleanup(func() { onGate.Do(func() { close(gate) }) })
	t.Cleanup(func() { onProceed.Do(func() { close(proceed) }) })
	t.Cleanup(func() { onKilled.Do(func() { close(killed) }) })

	grid := service.GridRequest{
		Machines: []config.MachineSpec{{Clusters: "2"}, {Clusters: "4", VP: "stride", Steering: "vpb"}},
		Kernels:  []string{"rawcaudio", "gsmdec", "gsmenc"},
		Scales:   []int{1, 2},
	}
	ids, err := tf.co.SubmitGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 12 {
		t.Fatalf("grid expanded to %d jobs, want 12", len(ids))
	}

	// Watch one job's NDJSON stream across the kill: however many times
	// its shard is re-dispatched, the coordinator must emit exactly one
	// terminal line.
	ts := httptest.NewServer(tf.co.Handler())
	defer ts.Close()
	type streamResult struct {
		terminals int
		last      service.Event
		err       error
	}
	streamDone := make(chan streamResult, 1)
	go func() {
		var sr streamResult
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/events")
		if err != nil {
			sr.err = err
			streamDone <- sr
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev service.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				sr.err = err
				break
			}
			sr.last = ev
			if ev.State == service.StateDone || ev.State == service.StateFailed {
				sr.terminals++
			}
		}
		if sr.err == nil {
			sr.err = sc.Err()
		}
		streamDone <- sr
	}()

	// Wait for some replica to start simulating, then kill it while the
	// shard is held in flight.
	var v int
	select {
	case v = <-victimCh:
	case <-time.After(30 * time.Second):
		t.Fatal("no replica started a simulation")
	}
	victim.Store(int32(v))
	victimName := tf.co.replicas[v].name
	t.Logf("killing %s mid-shard", victimName)
	tf.servers[v].CloseClientConnections()
	tf.servers[v].Close()
	onKilled.Do(func() { close(killed) })
	onProceed.Do(func() { close(proceed) })

	// Every job must still finish, on a surviving replica, with results
	// byte-identical to a local simulation of the same grid (row-major
	// expansion order, exactly as SubmitGrid performs it).
	i := 0
	for _, m := range grid.Machines {
		for _, k := range grid.Kernels {
			for _, sc := range grid.Scales {
				st := waitJob(t, tf.co, ids[i])
				if st.State != service.StateDone {
					t.Fatalf("job %s (%s x%d) = %s: %s", ids[i], k, sc, st.State, st.Error)
				}
				if st.Replica == victimName {
					t.Errorf("job %s attributed to the killed replica %s", ids[i], victimName)
				}
				want, err := runner.Simulate(runner.Job{Config: mustBuild(t, m), Kernel: k, Scale: sc})
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, _ := json.Marshal(st.Results)
				wantJSON, _ := json.Marshal(want)
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Errorf("job %s results diverge from local:\n fleet: %s\n local: %s", ids[i], gotJSON, wantJSON)
				}
				i++
			}
		}
	}

	// Executed() accounting: the victim's only worker spent the whole
	// test holding the doomed shard, so it completed nothing; every
	// unique job simulated exactly once elsewhere, and any duplicate is
	// bounded by the victim's in-flight shards at kill time (= 1).
	if n := tf.executed[v].Load(); n != 0 {
		t.Errorf("killed replica completed %d simulations, want 0 (its worker held the doomed shard)", n)
	}
	var total int64
	for _, c := range tf.executed {
		total += c.Load()
	}
	extra := total - int64(len(ids))
	if extra < 0 || extra > 1 {
		t.Errorf("total simulations = %d for %d unique jobs (duplicates = %d, ceiling 1)", total, len(ids), extra)
	}

	// The held shard was orphaned, so the coordinator had to resubmit
	// it, and the victim's books show the scar: dispatched but not
	// delivered. The probe loop must also have demoted it to down.
	if n := tf.co.resubmits.Load(); n < 1 {
		t.Errorf("resubmits = %d, want >= 1 (the held shard was orphaned)", n)
	}
	deadline := time.Now().Add(10 * time.Second)
	var vs ReplicaStatus
	for {
		vs = tf.co.Stats().Replicas[v]
		if vs.State == "down" || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if vs.State != "down" {
		t.Errorf("killed replica state = %q, want down", vs.State)
	}
	orphans := vs.Dispatched - vs.Completed
	if orphans < 1 {
		t.Errorf("victim dispatched=%d completed=%d: no orphaned shard recorded", vs.Dispatched, vs.Completed)
	}
	if extra > orphans {
		t.Errorf("duplicates %d exceed the victim's orphaned shards %d", extra, orphans)
	}

	// The watched stream saw exactly one terminal line, and it was done.
	select {
	case sr := <-streamDone:
		if sr.err != nil {
			t.Fatalf("event stream: %v", sr.err)
		}
		if sr.terminals != 1 || sr.last.State != service.StateDone {
			t.Errorf("event stream terminals = %d, last = %+v; want exactly one done line", sr.terminals, sr.last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream never terminated")
	}
}
