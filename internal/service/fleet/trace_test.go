package fleet

// Fleet tracing tests: the coordinator→replica hop shares one trace id
// (the acceptance criterion: one trace per job covering
// admission→queue→dispatch→simulate across processes), a failover
// resubmission shows up as a second fleet.dispatch span under the same
// parent, and the merged /trace endpoint stitches both processes'
// spans together.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/obs"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/service/client"
	"clustervp/internal/service/servicetest"
	"clustervp/internal/stats"
)

// dispatchSpans filters a span set to the coordinator's per-attempt
// dispatch spans.
func dispatchSpans(spans []obs.Span) []obs.Span {
	var out []obs.Span
	for _, sp := range spans {
		if sp.Name == "fleet.dispatch" {
			out = append(out, sp)
		}
	}
	return out
}

// waitSpans polls the collector until the trace holds at least want
// fleet.dispatch spans — span recording trails the job's terminal
// status by a few instructions.
func waitSpans(t *testing.T, c *obs.Collector, traceID string, want int) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans := c.TraceSpans(traceID)
		if len(dispatchSpans(spans)) >= want || !time.Now().Before(deadline) {
			return spans
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetHopSharesTrace: a job dispatched through the coordinator
// carries ONE trace id end to end — the coordinator's job root and
// dispatch spans and the executing replica's admission/queue/run/sim
// spans all join under it, and the merged /trace endpoint returns the
// whole cross-process timeline.
func TestFleetHopSharesTrace(t *testing.T) {
	tf := newTestFleet(t, 2, nil, nil)
	st, err := tf.co.Submit(service.JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TraceID) != 32 {
		t.Fatalf("fleet job trace id %q is not 32 hex chars", st.TraceID)
	}
	fin := waitJob(t, tf.co, st.ID)
	if fin.State != service.StateDone {
		t.Fatalf("job = %+v", fin)
	}

	// Coordinator side: job root + at least one dispatch attempt.
	coSpans := waitSpans(t, tf.co.spans, st.TraceID, 1)
	var jobRoot obs.Span
	for _, sp := range coSpans {
		if strings.HasPrefix(sp.Name, "job f-") {
			jobRoot = sp
		}
	}
	if jobRoot.SpanID == "" {
		t.Fatalf("coordinator has no job root span for trace %s: %+v", st.TraceID, coSpans)
	}
	for _, d := range dispatchSpans(coSpans) {
		if d.ParentID != jobRoot.SpanID {
			t.Errorf("dispatch span parent = %s, want job root %s", d.ParentID, jobRoot.SpanID)
		}
	}

	// Replica side: exactly the hop contract — some replica holds spans
	// for the SAME trace id, including the full job lifecycle.
	replicaNames := map[string]bool{}
	for _, s := range tf.replicas {
		for _, sp := range s.Spans().TraceSpans(st.TraceID) {
			replicaNames[sp.Name] = true
		}
	}
	for _, want := range []string{"queue.wait", "job.run"} {
		if !replicaNames[want] {
			t.Errorf("no replica recorded a %q span under trace %s; saw %v", want, st.TraceID, replicaNames)
		}
	}

	// Merged endpoint: both processes' spans in one timeline.
	ts := httptest.NewServer(tf.co.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr service.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	services := map[string]bool{}
	for _, sp := range tr.Spans {
		services[sp.Service] = true
	}
	if !services["coordinator"] || !services["clusterd"] {
		t.Errorf("merged trace covers services %v, want both coordinator and clusterd", services)
	}

	// And the merged timeline renders as Chrome trace JSON.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("merged chrome trace does not parse: %v", err)
	}
	resp.Body.Close()
	if len(chrome.TraceEvents) < len(tr.Spans) {
		t.Errorf("chrome trace has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}
}

// TestFailoverSecondDispatchSpan: when the first dispatch attempt dies
// on the wire, the resubmission appears in the timeline as a second
// fleet.dispatch span under the same job parent — attempt 0 undelivered,
// attempt 1 delivered.
func TestFailoverSecondDispatchSpan(t *testing.T) {
	faults := servicetest.NewTransport(nil)
	// The first job submission is swallowed on the wire; with a
	// single-attempt client policy the coordinator's failover ring — not
	// the client's retry loop — must absorb it.
	faults.Inject(servicetest.Fault{Method: http.MethodPost, Path: "/v1/jobs", Times: 1, Drop: true})
	tf := newTestFleet(t, 2, func(i int) func(j runner.Job) (stats.Results, error) {
		return func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 1}, nil
		}
	}, func(o *Options) {
		o.HTTPClient = &http.Client{Transport: faults}
		o.Retry = client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}
	})

	st, err := tf.co.Submit(service.JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, tf.co, st.ID)
	if fin.State != service.StateDone {
		t.Fatalf("job after failover = %+v", fin)
	}
	if n := tf.co.resubmits.Load(); n < 1 {
		t.Fatalf("resubmits = %d, want >= 1", n)
	}

	spans := waitSpans(t, tf.co.spans, st.TraceID, 2)
	dispatches := dispatchSpans(spans)
	if len(dispatches) < 2 {
		t.Fatalf("trace has %d dispatch spans after a failover, want >= 2: %+v", len(dispatches), spans)
	}
	parents := map[string]bool{}
	byAttempt := map[string]obs.Span{}
	for _, d := range dispatches {
		parents[d.ParentID] = true
		byAttempt[d.Attrs["attempt"]] = d
	}
	if len(parents) != 1 {
		t.Errorf("dispatch spans have %d distinct parents, want 1 (siblings under the job span)", len(parents))
	}
	if d, ok := byAttempt["0"]; !ok || d.Attrs["delivered"] != "false" {
		t.Errorf("attempt 0 = %+v, want delivered=false", byAttempt["0"])
	}
	if d, ok := byAttempt["1"]; !ok || d.Attrs["delivered"] != "true" {
		t.Errorf("attempt 1 = %+v, want delivered=true", byAttempt["1"])
	}
	if byAttempt["0"].Attrs["replica"] == byAttempt["1"].Attrs["replica"] {
		t.Errorf("both attempts hit %q; the resubmission should have moved on",
			byAttempt["0"].Attrs["replica"])
	}
}
