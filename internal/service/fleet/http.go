package fleet

// The coordinator's HTTP surface — deliberately the single box's
// surface, same paths, same wire types, same versioned error
// envelopes, so clustersim -remote and service/client point at a
// coordinator unchanged:
//
//	POST /v1/jobs             admit one job                -> 202 JobStatus
//	POST /v1/grids            admit a grid all-or-nothing  -> 202 {"jobs": [ids]}
//	GET  /v1/jobs/{id}        status + results JSON (replica-attributed)
//	GET  /v1/jobs/{id}/events NDJSON: queued → running (+progress) → done|failed
//	GET  /v1/jobs/{id}/trace  merged span timeline: coordinator spans + every
//	                          replica's spans for the job's trace id
//	                          (?format=chrome|spans, like the single box)
//	GET  /v1/tracez           the coordinator's own recent-span ring
//	GET  /v1/healthz          coordinator liveness
//	GET  /v1/statsz           fleet-shaped stats: coordinator totals + per-replica health
//
// Trace upload is not proxied (a trace must be uploaded to the replica
// that will replay it; fleet trace routing is future work), so POST
// /v1/traces 404s with the standard envelope like any unknown path.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"clustervp/internal/obs"
	"clustervp/internal/service"
)

// buildHandler assembles the coordinator's route table once.
func (co *Coordinator) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmitJob)
	mux.HandleFunc("POST /v1/grids", co.handleSubmitGrid)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", co.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", co.handleJobTrace)
	mux.HandleFunc("GET /v1/tracez", co.handleTracez)
	mux.HandleFunc("GET /v1/healthz", co.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", co.handleStatsz)
	return co.instrument(co.envelopeFallback(mux))
}

// statusRecorder captures the final status code for the request span
// and log line while passing streaming flushes through.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument opens a request span (continuing an inbound W3C
// traceparent when one parses; a malformed header just roots a fresh
// trace) and emits one structured log line per request with the
// trace id — the same discipline as the single box, so grepping a
// trace id works across the whole fleet's logs.
func (co *Coordinator) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		remote, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		span := co.spans.StartRoot("http "+r.Method+" "+r.URL.Path, remote)
		rw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rw, r.WithContext(obs.NewContext(r.Context(), span)))
		span.SetAttr("http_status", strconv.Itoa(rw.status))
		span.End()
		co.logger.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", rw.status,
			"dur_ms", time.Since(start).Milliseconds(),
			"trace_id", span.TraceID(), "request_id", span.SpanID())
	})
}

// Handler returns the coordinator's HTTP API.
func (co *Coordinator) Handler() http.Handler { return co.handler }

// ServeHTTP makes the Coordinator itself mountable.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.handler.ServeHTTP(w, r)
}

// writeJSON matches the single box's two-space-indented rendering so
// payloads compare byte-for-byte.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders a service error through the shared envelope
// contract.
func writeError(w http.ResponseWriter, err error) {
	status, env := service.Envelope(err)
	if env.Error.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(env.Error.RetryAfterSec))
	}
	writeJSON(w, status, env)
}

// envelopeWriter rewrites the mux's plain-text 404/405 replies into
// envelopes, exactly like the single box's fallback.
type envelopeWriter struct {
	http.ResponseWriter
	replaced bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if code == http.StatusNotFound || code == http.StatusMethodNotAllowed {
		if ct := w.Header().Get("Content-Type"); ct == "" || ct == "text/plain; charset=utf-8" {
			w.replaced = true
			apiCode, msg := service.CodeNotFound, "no such endpoint"
			if code == http.StatusMethodNotAllowed {
				apiCode, msg = service.CodeMethodNotAllowed, "method not allowed"
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Del("X-Content-Type-Options")
			w.ResponseWriter.WriteHeader(code)
			json.NewEncoder(w.ResponseWriter).Encode(service.ErrorEnvelope{
				SchemaVersion: service.SchemaVersion,
				Error:         service.APIError{Code: apiCode, Message: msg},
			})
			return
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.replaced {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

func (w *envelopeWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (co *Coordinator) envelopeFallback(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return service.ErrBadRequest
	}
	return nil
}

func (co *Coordinator) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	st, err := co.submitTraced(req, obs.FromContext(r.Context()))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (co *Coordinator) handleSubmitGrid(w http.ResponseWriter, r *http.Request) {
	var req service.GridRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ids, err := co.SubmitGrid(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": ids, "count": len(ids)})
}

func (co *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := co.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobEvents streams the coordinator's reassembled event feed as
// NDJSON: the current snapshot first, then forwarded replica progress,
// then exactly one terminal line — same protocol as the single box, so
// client.Wait cannot tell them apart.
func (co *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	j, ok := co.jobs[r.PathValue("id")]
	co.mu.Unlock()
	if !ok {
		writeError(w, service.ErrNoSuchJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev service.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	if !emit(snap) {
		return
	}
	if snap.State == service.StateDone || snap.State == service.StateFailed {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !emit(ev) {
				return
			}
		case <-j.terminal:
			emit(j.terminalEvent())
			return
		}
	}
}

// handleJobTrace assembles one fleet job's end-to-end timeline: the
// coordinator's own spans for the trace (admission, every dispatch
// attempt) merged with the replica-side spans fetched live from every
// reachable replica's /v1/tracez?trace_id= — the replica that ran the
// job contributes the admission→queue→run→sim spans, all under the
// same trace id thanks to traceparent propagation on the dispatch hop.
// An unreachable replica is skipped, not an error: a partial timeline
// beats none while a box is down.
func (co *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	j, ok := co.jobs[r.PathValue("id")]
	co.mu.Unlock()
	if !ok {
		writeError(w, service.ErrNoSuchJob)
		return
	}
	spans := co.spans.TraceSpans(j.traceID)
	for _, rep := range co.replicas {
		if rep.health() == replicaDown {
			continue
		}
		tz, err := rep.c.Tracez(r.Context(), j.traceID, 0)
		if err != nil {
			co.logger.Warn("fleet trace fetch failed", "replica", rep.name, "error", err)
			continue
		}
		spans = append(spans, tz.Spans...)
	}
	service.WriteTrace(w, r, spans, j.traceID, j.id, j.status().State)
}

func (co *Coordinator) handleTracez(w http.ResponseWriter, r *http.Request) {
	service.WriteTracez(w, r, co.spans)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "coordinator"})
}

// ReplicaStatus is one replica's slice of the fleet statsz payload.
type ReplicaStatus struct {
	Name       string `json:"name"`
	Base       string `json:"base"`
	State      string `json:"state"`
	InFlight   int    `json:"in_flight"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
}

// CoordinatorStats is the coordinator section of fleet statsz.
type CoordinatorStats struct {
	Capacity   int   `json:"capacity"`
	InFlight   int   `json:"in_flight"`
	Submitted  int64 `json:"submitted"`
	Done       int64 `json:"done"`
	Failed     int64 `json:"failed"`
	Resubmits  int64 `json:"resubmits"`
	LiveShards int   `json:"live_replicas"`
}

// Stats is the GET /v1/statsz payload of a coordinator: fleet-shaped
// (role distinguishes it from a replica's payload), same schema
// versioning discipline.
type Stats struct {
	SchemaVersion int              `json:"schema_version"`
	Role          string           `json:"role"`
	UptimeSec     float64          `json:"uptime_sec"`
	Coordinator   CoordinatorStats `json:"coordinator"`
	Replicas      []ReplicaStatus  `json:"replicas"`
}

// Stats snapshots the coordinator counters and per-replica health.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	inflight := co.inflight
	co.mu.Unlock()
	st := Stats{
		SchemaVersion: service.SchemaVersion,
		Role:          "coordinator",
		UptimeSec:     time.Since(co.start).Seconds(),
		Coordinator: CoordinatorStats{
			Capacity:   co.opts.QueueDepth,
			InFlight:   inflight,
			Submitted:  co.submitted.Load(),
			Done:       co.done.Load(),
			Failed:     co.failed.Load(),
			Resubmits:  co.resubmits.Load(),
			LiveShards: co.liveReplicas(),
		},
	}
	for _, r := range co.replicas {
		r.mu.Lock()
		st.Replicas = append(st.Replicas, ReplicaStatus{
			Name:       r.name,
			Base:       r.base,
			State:      r.state.String(),
			InFlight:   r.inflight,
			Dispatched: r.dispatched,
			Completed:  r.completed,
		})
		r.mu.Unlock()
	}
	return st
}

func (co *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.Stats())
}
