package fleet

// Coordinator unit tests: deterministic shard assignment, the
// admission/backpressure contract, wire-envelope compatibility with
// the single box, and the 1-vs-3-replica byte-identity acceptance
// criterion. The chaos/kill scenario lives in chaos_test.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/service/client"
	"clustervp/internal/stats"
)

// testFleet is an in-process fleet: n replicas (real service.Servers
// over httptest) and a coordinator over their URLs.
type testFleet struct {
	co       *Coordinator
	replicas []*service.Server
	servers  []*httptest.Server
	executed []*atomic.Int64 // per-replica completed simulations
}

// newTestFleet boots n replicas and a coordinator. runFor(i) supplies
// replica i's simulator (nil = real runner.Simulate); mutate tweaks
// coordinator options.
func newTestFleet(t *testing.T, n int, runFor func(i int) func(runner.Job) (stats.Results, error), mutate func(*Options)) *testFleet {
	t.Helper()
	tf := &testFleet{}
	cacheDir := t.TempDir() // one shared blob dir — the fleet cache backend
	var urls []string
	for i := 0; i < n; i++ {
		counter := &atomic.Int64{}
		var run func(runner.Job) (stats.Results, error)
		if runFor != nil {
			run = runFor(i)
		}
		if run == nil {
			run = func(j runner.Job) (stats.Results, error) { return runner.Simulate(j) }
		}
		inner := run
		counted := func(j runner.Job) (stats.Results, error) {
			res, err := inner(j)
			if err == nil {
				counter.Add(1)
			}
			return res, err
		}
		s, err := service.New(service.Options{Workers: 1, CacheDir: cacheDir, Run: counted})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		tf.replicas = append(tf.replicas, s)
		tf.servers = append(tf.servers, ts)
		tf.executed = append(tf.executed, counter)
		urls = append(urls, ts.URL)
	}
	opts := Options{
		Replicas:      urls,
		ProbeInterval: 25 * time.Millisecond,
		DownAfter:     2,
		Retry:         clientRetryFast(),
	}
	if mutate != nil {
		mutate(&opts)
	}
	co, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	tf.co = co
	t.Cleanup(func() {
		co.Close()
		for i, s := range tf.replicas {
			tf.servers[i].Close()
			s.Close()
		}
	})
	return tf
}

// waitJob polls until the job is terminal.
func waitJob(t *testing.T, co *Coordinator, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := co.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return service.JobStatus{}
}

// TestShardAssignmentDeterministic: the home shard is a pure function
// of the fingerprint and the configured list — stable across calls,
// coordinators, and unaffected by health.
func TestShardAssignmentDeterministic(t *testing.T) {
	co := &Coordinator{replicas: make([]*replica, 3)}
	co2 := &Coordinator{replicas: make([]*replica, 3)}
	reqs := []service.JobRequest{
		{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"},
		{Machine: config.MachineSpec{Clusters: "4"}, Kernel: "gsmdec"},
		{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "gsmdec", Scale: 2},
		{Machine: config.MachineSpec{Clusters: "1", VP: "stride"}, Kernel: "cjpeg", Seed: 7},
	}
	for _, r := range reqs {
		key, err := shardKey(r)
		if err != nil {
			t.Fatal(err)
		}
		if key2, _ := shardKey(r); key2 != key {
			t.Errorf("shardKey unstable for %+v", r)
		}
		if co.shardOf(key) != co2.shardOf(key) {
			t.Errorf("shardOf differs across coordinators for %q", key)
		}
		if s := co.shardOf(key); s < 0 || s >= 3 {
			t.Errorf("shardOf(%q) = %d out of range", key, s)
		}
	}
	// Different scales/seeds are different shards keys (they are
	// different cache entries, so they may land on different homes).
	k1, _ := shardKey(reqs[1])
	k2, _ := shardKey(reqs[2])
	if k1 == k2 {
		t.Error("distinct jobs share a shard key")
	}
}

// TestShardKeyValidates: a bad spec is rejected at the coordinator with
// the single box's invalid_spec discipline, before any dispatch.
func TestShardKeyValidates(t *testing.T) {
	for _, req := range []service.JobRequest{
		{Machine: config.MachineSpec{Clusters: "2"}},                                            // no kernel
		{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "no-such-kernel"},                  // unknown kernel
		{Machine: config.MachineSpec{Clusters: "three"}, Kernel: "rawcaudio"},                   // bad machine
		{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio", TraceDigest: "sha:x"}, // both
	} {
		if _, err := shardKey(req); err == nil {
			t.Errorf("shardKey accepted %+v", req)
		}
	}
}

// TestFleetRunMatchesLocal: one job through a 3-replica fleet returns
// results byte-identical to a local simulation, with the replica
// attributed.
func TestFleetRunMatchesLocal(t *testing.T) {
	tf := newTestFleet(t, 3, nil, nil)
	req := service.JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"}
	st, err := tf.co.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, tf.co, st.ID)
	if final.State != service.StateDone || final.Results == nil {
		t.Fatalf("fleet job = %+v", final)
	}
	if !strings.HasPrefix(final.Replica, "replica-") {
		t.Errorf("done job not replica-attributed: %q", final.Replica)
	}

	rj := runner.Job{Config: mustBuild(t, req.Machine), Kernel: req.Kernel}
	want, err := runner.Simulate(rj)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(final.Results)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("fleet results differ from local:\n fleet: %s\n local: %s", gotJSON, wantJSON)
	}
}

// TestOneVsThreeReplicasByteIdentical is the determinism acceptance
// criterion: the same grid through a 1-replica fleet and a 3-replica
// fleet produces byte-identical results JSON, Bobpp-style.
func TestOneVsThreeReplicasByteIdentical(t *testing.T) {
	grid := service.GridRequest{
		Machines: []config.MachineSpec{{Clusters: "2"}, {Clusters: "4", VP: "stride", Steering: "vpb"}},
		Kernels:  []string{"rawcaudio", "gsmdec"},
	}
	run := func(n int) []byte {
		tf := newTestFleet(t, n, nil, nil)
		ids, err := tf.co.SubmitGrid(grid)
		if err != nil {
			t.Fatal(err)
		}
		var all []stats.Results
		for _, id := range ids {
			st := waitJob(t, tf.co, id)
			if st.State != service.StateDone {
				t.Fatalf("%d-replica fleet: job %s failed: %s", n, id, st.Error)
			}
			all = append(all, *st.Results)
		}
		data, err := json.Marshal(all)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := run(1)
	three := run(3)
	if !bytes.Equal(one, three) {
		t.Errorf("results differ by replica count:\n 1: %s\n 3: %s", one, three)
	}
}

// TestFleetBackpressure: past QueueDepth the coordinator answers the
// single box's 503 queue_full envelope, Retry-After included, and a
// grid is all-or-nothing.
func TestFleetBackpressure(t *testing.T) {
	gate := make(chan struct{})
	tf := newTestFleet(t, 1, func(i int) func(runner.Job) (stats.Results, error) {
		return func(j runner.Job) (stats.Results, error) {
			<-gate
			return stats.Results{Benchmark: j.Kernel, Cycles: 1}, nil
		}
	}, func(o *Options) { o.QueueDepth = 2 })
	defer close(gate)

	ts := httptest.NewServer(tf.co.Handler())
	defer ts.Close()

	submit := func(kernel string, scale int) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"machine":{"clusters":"2"},"kernel":%q,"scale":%d}`, kernel, scale)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	if resp, _ := submit("rawcaudio", 1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if resp, _ := submit("rawcaudio", 2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	resp, body := submit("rawcaudio", 3)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var env service.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != service.CodeQueueFull {
		t.Errorf("envelope = %s", body)
	}
	if env.SchemaVersion != service.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", env.SchemaVersion, service.SchemaVersion)
	}
}

// TestFleetNoLiveReplicas: with every replica down, admission degrades
// to 503 queue_full so clients back off — the fleet-wide analogue of a
// saturated queue.
func TestFleetNoLiveReplicas(t *testing.T) {
	tf := newTestFleet(t, 2, func(i int) func(runner.Job) (stats.Results, error) {
		return func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 1}, nil
		}
	}, nil)
	// Kill both replicas and wait for the probes to notice.
	for _, ts := range tf.servers {
		ts.CloseClientConnections()
		ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for tf.co.liveReplicas() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := tf.co.liveReplicas(); n != 0 {
		t.Fatalf("%d replicas still live after closing all servers", n)
	}
	_, err := tf.co.Submit(service.JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err == nil {
		t.Fatal("submit accepted with zero live replicas")
	}
	status, env := service.Envelope(err)
	if status != http.StatusServiceUnavailable || env.Error.Code != service.CodeQueueFull {
		t.Errorf("no-live-replicas error = %d %s, want 503 queue_full", status, env.Error.Code)
	}
}

// TestFleetStatszAndEnvelopes: the statsz payload carries the fleet
// shape and unknown paths still answer versioned envelopes.
func TestFleetStatszAndEnvelopes(t *testing.T) {
	tf := newTestFleet(t, 2, func(i int) func(runner.Job) (stats.Results, error) {
		return func(j runner.Job) (stats.Results, error) {
			return stats.Results{Benchmark: j.Kernel, Cycles: 1}, nil
		}
	}, nil)
	ts := httptest.NewServer(tf.co.Handler())
	defer ts.Close()

	st, err := tf.co.Submit(service.JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, tf.co, st.ID)

	resp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var zs Stats
	if err := json.NewDecoder(resp.Body).Decode(&zs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if zs.Role != "coordinator" || zs.SchemaVersion != service.SchemaVersion {
		t.Errorf("statsz header = %+v", zs)
	}
	if len(zs.Replicas) != 2 || zs.Coordinator.Done != 1 || zs.Coordinator.Submitted != 1 {
		t.Errorf("statsz = %+v", zs)
	}
	var dispatched int64
	for _, r := range zs.Replicas {
		if r.State != "up" {
			t.Errorf("replica %s state = %q, want up", r.Name, r.State)
		}
		dispatched += r.Dispatched
	}
	if dispatched != 1 {
		t.Errorf("dispatched = %d, want 1", dispatched)
	}

	// Unknown path and wrong method both get envelopes.
	for _, probe := range []struct {
		method, path string
		wantStatus   int
		wantCode     string
	}{
		{http.MethodGet, "/v1/nope", http.StatusNotFound, service.CodeNotFound},
		{http.MethodDelete, "/v1/jobs/x", http.StatusMethodNotAllowed, service.CodeMethodNotAllowed},
		{http.MethodGet, "/v1/jobs/f-99999999", http.StatusNotFound, service.CodeNotFound},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != probe.wantStatus {
			t.Errorf("%s %s = %d, want %d", probe.method, probe.path, resp.StatusCode, probe.wantStatus)
		}
		var env service.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != probe.wantCode {
			t.Errorf("%s %s envelope = %s, want code %s", probe.method, probe.path, data, probe.wantCode)
		}
	}
}

// mustBuild resolves a machine spec or fails the test.
func mustBuild(t *testing.T, m config.MachineSpec) config.Config {
	t.Helper()
	cfg, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// clientRetryFast is the test-speed retry policy.
func clientRetryFast() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond}
}
