// Package fleet is the coordinator side of clusterd fleet mode: one
// process that admits jobs and grids exactly once, deterministically
// partitions them across N clusterd replicas by fingerprint hash, fans
// the shards out with idempotent retries, and reassembles statuses,
// results and NDJSON event streams so a caller cannot tell the fleet
// from a single box — same wire types, same error envelopes,
// byte-identical results JSON.
//
// Determinism is the load-bearing property, in the Bobpp style of
// deterministic work partitioning (PAPERS.md): a job's home replica is
// a pure function of its fingerprint and the *configured* replica list
// — never of load, timing, or which replicas happen to be up. The
// simulator itself is deterministic and results are content-addressed,
// so rerouting a shard around a dead replica changes where the work
// runs, never what it produces; a 1-replica and an N-replica fleet
// answer byte-identically. Retries are idempotent for the same reason:
// the worst a duplicated dispatch can do is warm the shared result
// cache twice.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clustervp/internal/obs"
	"clustervp/internal/runner"
	"clustervp/internal/service"
	"clustervp/internal/service/client"
	"clustervp/internal/stats"
	"clustervp/internal/workload"
)

// Options configure a Coordinator.
type Options struct {
	// Replicas are the clusterd base URLs forming the shard space, e.g.
	// ["http://10.0.0.1:8090", "http://10.0.0.2:8090"]. Order matters:
	// shard assignment hashes into this list, so every coordinator of a
	// fleet must be configured with the same list in the same order.
	Replicas []string
	// QueueDepth bounds in-flight (queued+running) jobs fleet-wide at
	// admission (<=0 = 1024); past it, submissions get the same 503
	// queue_full envelope a saturated single box sends.
	QueueDepth int
	// MaxJobRecords bounds retained job records (<=0 = 16384), evicting
	// the oldest terminal records first, exactly like the single box.
	MaxJobRecords int
	// ProbeInterval paces the /v1/healthz probe loop (<=0 = 2s).
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures demote a replica
	// from draining to down (<=0 = 3).
	DownAfter int
	// APIKey authenticates dispatches against multi-tenant replicas.
	APIKey string
	// Retry is the per-dispatch client policy (zero = 4 attempts, 100ms
	// base). The coordinator's failover across replicas sits above it.
	Retry client.RetryPolicy
	// HTTPClient overrides the transport shared by all replica clients;
	// tests route it through a fault-injecting RoundTripper. Nil = a
	// plain http.Client.
	HTTPClient *http.Client
	// Logger receives structured dispatch and health logs; nil discards.
	Logger *slog.Logger
	// SpanRing bounds the coordinator's finished-span ring
	// (<=0 = obs.DefaultRingSize). Tracing is always on.
	SpanRing int
}

// Coordinator fans a job stream out across replicas. Create with New,
// expose with Handler, stop with Close.
type Coordinator struct {
	opts     Options
	replicas []*replica
	start    time.Time
	logger   *slog.Logger
	handler  http.Handler
	spans    *obs.Collector

	mu       sync.Mutex
	jobs     map[string]*fleetJob
	order    []string
	nextSeq  int64
	inflight int // non-terminal jobs, bounded by QueueDepth

	submitted, done, failed atomic.Int64
	// resubmits counts shard dispatches beyond the first — the fleet's
	// duplicate-work ceiling, surfaced in statsz and pinned by the
	// chaos test.
	resubmits atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds and starts a coordinator (health probes run until Close).
func New(opts Options) (*Coordinator, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: at least one replica is required")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxJobRecords <= 0 {
		opts.MaxJobRecords = 16384
	}
	if opts.MaxJobRecords < opts.QueueDepth {
		opts.MaxJobRecords = opts.QueueDepth
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.DownAfter <= 0 {
		opts.DownAfter = 3
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond}
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		opts:   opts,
		start:  time.Now(),
		logger: logger,
		spans:  obs.NewCollector("coordinator", opts.SpanRing),
		jobs:   make(map[string]*fleetJob),
		ctx:    ctx,
		cancel: cancel,
	}
	for i, base := range opts.Replicas {
		copts := []client.Option{client.WithRetry(opts.Retry)}
		if opts.HTTPClient != nil {
			copts = append(copts, client.WithHTTPClient(opts.HTTPClient))
		}
		if opts.APIKey != "" {
			copts = append(copts, client.WithAPIKey(opts.APIKey))
		}
		co.replicas = append(co.replicas, &replica{
			name:  fmt.Sprintf("replica-%d", i),
			base:  base,
			c:     client.New(base, copts...),
			state: replicaUp,
		})
	}
	co.handler = co.buildHandler()
	co.wg.Add(1)
	go co.probeLoop()
	return co, nil
}

// Close stops the probe loop and aborts in-flight dispatches.
func (co *Coordinator) Close() {
	co.cancel()
	co.wg.Wait()
}

// shardKey is the deterministic partitioning key of a request: the
// same content-addressed identity the replicas' result cache keys on
// (for trace jobs the trace's digest stands in for its local path, so
// the key is identical no matter which box stores the trace). Building
// it also validates the request, so a bad spec is a 400 at the
// coordinator and never burns a dispatch.
func shardKey(req service.JobRequest) (string, error) {
	cfg, err := req.Machine.Build()
	if err != nil {
		return "", fmt.Errorf("%w: machine: %v", service.ErrBadRequest, err)
	}
	switch {
	case req.TraceDigest != "" && req.Kernel != "":
		return "", fmt.Errorf("%w: kernel and trace_digest are mutually exclusive", service.ErrBadRequest)
	case req.TraceDigest != "":
		cfg.Name = ""
		return fmt.Sprintf("%+v|trace:%s", cfg, req.TraceDigest), nil
	case req.Kernel != "":
		if _, err := workload.ByName(req.Kernel); err != nil {
			return "", fmt.Errorf("%w: %v", service.ErrBadRequest, err)
		}
		j := runner.Job{Config: cfg, Kernel: req.Kernel, Scale: req.Scale, Seed: req.Seed}
		return j.Fingerprint(), nil
	default:
		return "", fmt.Errorf("%w: one of kernel or trace_digest is required", service.ErrBadRequest)
	}
}

// shardOf maps a key onto the configured replica list: FNV-1a 64 mod
// N. Pure function of (key, configured list) — health never moves the
// home slot, it only reroutes execution.
func (co *Coordinator) shardOf(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(co.replicas)))
}

// Submit validates and admits one job, returning its queued snapshot.
func (co *Coordinator) Submit(req service.JobRequest) (service.JobStatus, error) {
	return co.submitTraced(req, nil)
}

// submitTraced admits one job, parenting its trace under the caller's
// request span when one exists — this is how a traceparent that arrived
// on POST /v1/jobs threads through the coordinator into the replica.
func (co *Coordinator) submitTraced(req service.JobRequest, parent *obs.ActiveSpan) (service.JobStatus, error) {
	ids, err := co.admit([]service.JobRequest{req}, parent)
	if err != nil {
		return service.JobStatus{}, err
	}
	return co.Status(ids[0])
}

// SubmitGrid expands machines × kernels × scales row-major — the exact
// expansion the single box performs — and admits the whole grid
// all-or-nothing.
func (co *Coordinator) SubmitGrid(req service.GridRequest) ([]string, error) {
	if len(req.Machines) == 0 || len(req.Kernels) == 0 {
		return nil, fmt.Errorf("%w: a grid needs at least one machine and one kernel", service.ErrBadRequest)
	}
	scales := req.Scales
	if len(scales) == 0 {
		scales = []int{1}
	}
	var reqs []service.JobRequest
	for _, m := range req.Machines {
		for _, k := range req.Kernels {
			for _, sc := range scales {
				reqs = append(reqs, service.JobRequest{
					Machine: m, Kernel: k, Scale: sc, Seed: req.Seed, Priority: req.Priority,
				})
			}
		}
	}
	// Grid-expanded jobs each root their own trace (one trace per job);
	// only a single-job submit continues the caller's trace.
	return co.admit(reqs, nil)
}

// admit validates every request, checks fleet-wide backpressure, and
// registers + dispatches the batch all-or-nothing.
func (co *Coordinator) admit(reqs []service.JobRequest, parent *obs.ActiveSpan) ([]string, error) {
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		k, err := shardKey(r)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	if co.liveReplicas() == 0 {
		// The whole fleet is unreachable: same degraded answer as a
		// saturated single box, so clients back off instead of erroring.
		return nil, fmt.Errorf("%w: no live replicas", service.ErrQueueFull)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.inflight+len(reqs) > co.opts.QueueDepth {
		if len(reqs) > 1 {
			return nil, fmt.Errorf("%w: grid of %d jobs exceeds free fleet capacity %d",
				service.ErrQueueFull, len(reqs), co.opts.QueueDepth-co.inflight)
		}
		return nil, service.ErrQueueFull
	}
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		co.nextSeq++
		j := &fleetJob{
			id:        fmt.Sprintf("f-%08d", co.nextSeq),
			req:       r,
			key:       keys[i],
			shard:     co.shardOf(keys[i]),
			state:     service.StateQueued,
			submitted: time.Now(),
			terminal:  make(chan struct{}),
			subs:      make(map[chan service.Event]struct{}),
		}
		if parent != nil {
			j.span = parent.StartChild("job " + j.id)
		} else {
			j.span = co.spans.StartRoot("job "+j.id, obs.SpanContext{})
		}
		j.span.SetAttr("job", j.id)
		j.span.SetAttr("shard", strconv.Itoa(j.shard))
		j.span.SetAttr("shard_key", j.key)
		if r.Kernel != "" {
			j.span.SetAttr("kernel", r.Kernel)
		}
		if r.TraceDigest != "" {
			j.span.SetAttr("trace_digest", r.TraceDigest)
		}
		j.traceID = j.span.TraceID()
		co.jobs[j.id] = j
		co.order = append(co.order, j.id)
		co.inflight++
		co.submitted.Add(1)
		ids[i] = j.id
		co.wg.Add(1)
		go co.dispatch(j)
	}
	co.evictLocked()
	co.logger.Info("fleet admitted", "jobs", len(ids), "inflight", co.inflight)
	return ids, nil
}

// evictLocked drops the oldest terminal records past the retention
// bound; co.mu must be held.
func (co *Coordinator) evictLocked() {
	if len(co.jobs) <= co.opts.MaxJobRecords {
		return
	}
	kept := co.order[:0]
	for i, id := range co.order {
		if len(co.jobs) <= co.opts.MaxJobRecords {
			kept = append(kept, co.order[i:]...)
			break
		}
		j := co.jobs[id]
		if j == nil {
			continue
		}
		if j.isTerminal() {
			delete(co.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	co.order = kept
}

// Status returns a job's status snapshot.
func (co *Coordinator) Status(id string) (service.JobStatus, error) {
	co.mu.Lock()
	j, ok := co.jobs[id]
	co.mu.Unlock()
	if !ok {
		return service.JobStatus{}, service.ErrNoSuchJob
	}
	return j.status(), nil
}

// dispatch walks the failover ring until the job reaches a terminal
// state: home replica first, then the next live replica in ring order.
// A replica that fails mid-shard (transport error, broken stream,
// exhausted retries) costs a resubmission elsewhere — bounded
// duplicate work, since the shared content-addressed cache absorbs
// anything the failed replica already published.
func (co *Coordinator) dispatch(j *fleetJob) {
	defer co.wg.Done()
	defer co.finishInflight()
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%len(co.replicas) == 0 {
			// A full ring failed: pause a probe period so the loop
			// paces the fleet's recovery instead of hammering it.
			select {
			case <-co.ctx.Done():
				j.fail("fleet: coordinator shut down before the job completed", "")
				return
			case <-time.After(co.opts.ProbeInterval):
			}
		}
		r := co.pick(j.shard, attempt)
		if r == nil {
			// Nothing live right now: wait a probe period for the
			// health loop to resurrect something, then rescan.
			select {
			case <-co.ctx.Done():
				j.fail("fleet: coordinator shut down before the job completed", "")
				return
			case <-time.After(co.opts.ProbeInterval):
				continue
			}
		}
		if attempt > 0 {
			co.resubmits.Add(1)
			co.logger.Warn("fleet resubmitting shard",
				"job", j.id, "replica", r.name, "attempt", attempt,
				"trace_id", j.traceID)
		}
		// One span per dispatch attempt, all siblings under the job
		// span: a failover shows up in the timeline as a second
		// fleet.dispatch span with attempt=1 next to the failed one.
		sp := j.span.StartChild("fleet.dispatch")
		sp.SetAttr("replica", r.name)
		sp.SetAttr("attempt", strconv.Itoa(attempt))
		done := co.runOn(r, j, sp)
		sp.SetAttr("delivered", strconv.FormatBool(done))
		sp.End()
		if done {
			return
		}
		r.dispatchFailed()
		if co.ctx.Err() != nil {
			j.fail("fleet: coordinator shut down before the job completed", "")
			return
		}
	}
}

// finishInflight releases the job's admission slot.
func (co *Coordinator) finishInflight() {
	co.mu.Lock()
	co.inflight--
	co.mu.Unlock()
}

// runOn runs the whole shard lifecycle against one replica: submit,
// stream events (forwarded verbatim to the job's subscribers), fetch
// the terminal status. It reports true when the job reached a terminal
// state — including a *deterministic* simulation failure, which no
// other replica would decide differently — and false when the replica
// itself failed and the ring should move on. The dispatch-attempt span
// rides the context so the replica-bound submit carries a traceparent
// and the replica's job continues this job's trace.
func (co *Coordinator) runOn(r *replica, j *fleetJob, sp *obs.ActiveSpan) (delivered bool) {
	ctx := obs.NewContext(co.ctx, sp)
	remote, err := r.c.SubmitJob(ctx, j.req)
	if err != nil {
		co.logger.Warn("fleet submit failed", "job", j.id, "replica", r.name, "error", err)
		return false
	}
	r.started()
	defer func() { r.finished(delivered) }()

	err = r.c.StreamEvents(ctx, remote.ID, func(ev service.Event) error {
		j.observe(ev, r.name)
		return nil
	})
	if err != nil {
		// Stream broke before a terminal event: poll once — the job may
		// have finished during the disconnect; otherwise fail over.
		st, serr := r.c.Status(ctx, remote.ID)
		if serr != nil || (st.State != service.StateDone && st.State != service.StateFailed) {
			co.logger.Warn("fleet stream broke", "job", j.id, "replica", r.name, "error", err)
			return false
		}
	}
	st, err := r.c.Status(ctx, remote.ID)
	if err != nil {
		co.logger.Warn("fleet status fetch failed", "job", j.id, "replica", r.name, "error", err)
		return false
	}
	switch st.State {
	case service.StateDone:
		j.complete(st, r.name)
		co.done.Add(1)
		co.logger.Info("fleet job done", "job", j.id, "replica", r.name, "trace_id", j.traceID)
		return true
	case service.StateFailed:
		// The simulator is deterministic: a failed simulation fails
		// everywhere. Retrying elsewhere would only duplicate the loss.
		j.fail(st.Error, r.name)
		co.failed.Add(1)
		co.logger.Info("fleet job failed", "job", j.id, "replica", r.name, "error", st.Error, "trace_id", j.traceID)
		return true
	default:
		co.logger.Warn("fleet replica returned non-terminal state",
			"job", j.id, "replica", r.name, "state", st.State)
		return false
	}
}

// fleetJob is the coordinator's job record: the same
// subscribe/broadcast shape as the single box's job, holding the
// remote result once a replica delivers it.
type fleetJob struct {
	id    string
	req   service.JobRequest
	key   string // shard key (fingerprint)
	shard int    // home replica index

	// span is the job's root (or request-parented) trace span, assigned
	// once in admit before the dispatch goroutine starts; traceID is its
	// immutable trace id, safe to read without j.mu.
	span    *obs.ActiveSpan
	traceID string

	mu        sync.Mutex
	state     string
	replica   string // replica that delivered the terminal state
	errMsg    string
	results   *stats.Results
	submitted time.Time
	started   time.Time
	finished  time.Time
	last      service.Event

	terminal chan struct{}
	subs     map[chan service.Event]struct{}
}

func (j *fleetJob) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == service.StateDone || j.state == service.StateFailed
}

// status snapshots the job in the single box's wire shape, plus the
// replica attribution (omitted from JSON while empty, so a 1-replica
// fleet's payloads only differ in that one field).
func (j *fleetJob) status() service.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return service.JobStatus{
		ID:          j.id,
		State:       j.state,
		Kernel:      j.req.Kernel,
		Scale:       j.req.Scale,
		Seed:        j.req.Seed,
		TraceDigest: j.req.TraceDigest,
		Priority:    j.req.Priority,
		Replica:     j.replica,
		TraceID:     j.traceID,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Error:       j.errMsg,
		Results:     j.results,
	}
}

// observe forwards one replica event to subscribers, tracking the
// running transition. Terminal events are NOT forwarded here — the
// terminal broadcast happens exactly once in complete/fail, so a
// failover cannot leak a premature terminal line.
func (j *fleetJob) observe(ev service.Event, replica string) {
	if ev.State == service.StateDone || ev.State == service.StateFailed {
		return
	}
	j.mu.Lock()
	if j.state == service.StateQueued && ev.State == service.StateRunning {
		j.state = service.StateRunning
		j.started = time.Now()
		j.replica = replica
	}
	j.last = ev
	subs := make([]chan service.Event, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // a slow subscriber drops progress, never blocks the fleet
		}
	}
}

// complete records the terminal done state exactly once.
func (j *fleetJob) complete(st service.JobStatus, replica string) {
	j.mu.Lock()
	if j.state == service.StateDone || j.state == service.StateFailed {
		j.mu.Unlock()
		return
	}
	j.state = service.StateDone
	j.replica = replica
	j.results = st.Results
	if j.started.IsZero() {
		j.started = st.StartedAt
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.span.SetAttr("state", service.StateDone)
	j.span.SetAttr("replica", replica)
	j.span.End()
	close(j.terminal)
}

// fail records the terminal failed state exactly once.
func (j *fleetJob) fail(msg, replica string) {
	j.mu.Lock()
	if j.state == service.StateDone || j.state == service.StateFailed {
		j.mu.Unlock()
		return
	}
	j.state = service.StateFailed
	j.errMsg = msg
	if replica != "" {
		j.replica = replica
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.span.SetAttr("state", service.StateFailed)
	j.span.SetAttr("error", msg)
	if replica != "" {
		j.span.SetAttr("replica", replica)
	}
	j.span.End()
	close(j.terminal)
}

// subscribe registers for events and returns the channel plus the
// current snapshot-as-event.
func (j *fleetJob) subscribe() (chan service.Event, service.Event) {
	ch := make(chan service.Event, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs[ch] = struct{}{}
	return ch, j.snapshotEventLocked()
}

func (j *fleetJob) unsubscribe(ch chan service.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// snapshotEventLocked renders the current state as one event line.
// Synthesized lines carry the coordinator-side trace id; forwarded
// replica progress already carries the same id, because the replica's
// job continued this trace over the dispatch hop.
func (j *fleetJob) snapshotEventLocked() service.Event {
	switch j.state {
	case service.StateRunning:
		if j.last.State == service.StateRunning {
			return j.last
		}
		return service.Event{State: service.StateRunning, TraceID: j.traceID}
	case service.StateDone:
		return service.Event{State: service.StateDone, TraceID: j.traceID}
	case service.StateFailed:
		return service.Event{State: service.StateFailed, Error: j.errMsg, TraceID: j.traceID}
	default:
		return service.Event{State: service.StateQueued, TraceID: j.traceID}
	}
}

// terminalEvent is the final stream line.
func (j *fleetJob) terminalEvent() service.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == service.StateFailed {
		return service.Event{State: service.StateFailed, Error: j.errMsg, TraceID: j.traceID}
	}
	return service.Event{State: service.StateDone, TraceID: j.traceID}
}
