package fleet

// Replica health: a three-state machine driven by periodic
// /v1/healthz probes.
//
//	up ──1 failed probe──▶ draining ──DownAfter consecutive──▶ down
//	 ▲                        │                                  │
//	 └────────── any successful probe resets to up ──────────────┘
//
// Draining is the hedge against a single dropped probe: the replica
// takes no NEW shards but keeps whatever it is running — a transient
// blip costs nothing. Down means the ring skips it entirely and any
// shard that was in flight there fails over (the dispatch loop notices
// on its own, through the broken stream). Health never influences
// shard *assignment* — only which replica *executes* — so the output
// stays byte-identical through any failure pattern.

import (
	"context"
	"sync"
	"time"

	"clustervp/internal/service/client"
)

type replicaHealth int32

const (
	replicaUp replicaHealth = iota
	replicaDraining
	replicaDown
)

func (h replicaHealth) String() string {
	switch h {
	case replicaUp:
		return "up"
	case replicaDraining:
		return "draining"
	default:
		return "down"
	}
}

// replica is one clusterd instance in the fleet.
type replica struct {
	name string
	base string
	c    *client.Client

	mu          sync.Mutex
	state       replicaHealth
	consecFails int
	inflight    int   // shards currently dispatched here
	dispatched  int64 // lifetime shard submissions
	completed   int64 // lifetime terminal shards delivered
}

// acceptsWork reports whether the ring may hand this replica a new
// shard.
func (r *replica) acceptsWork() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == replicaUp
}

func (r *replica) health() replicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// started/finished bracket one shard's residence on the replica.
func (r *replica) started() {
	r.mu.Lock()
	r.inflight++
	r.dispatched++
	r.mu.Unlock()
}

// finished closes the bracket; delivered says whether the replica
// actually answered with a terminal state (false = the shard was
// orphaned there and Dispatched-Completed keeps the scar).
func (r *replica) finished(delivered bool) {
	r.mu.Lock()
	r.inflight--
	if delivered {
		r.completed++
	}
	r.mu.Unlock()
}

// dispatchFailed is a failed shard-level interaction — weaker evidence
// than a failed probe (the request itself might have been the problem),
// so it only nudges an Up replica into draining; the probe loop decides
// anything further.
func (r *replica) dispatchFailed() {
	r.mu.Lock()
	if r.state == replicaUp {
		r.state = replicaDraining
	}
	r.mu.Unlock()
}

// probeResult folds one probe outcome into the state machine and
// reports the (possibly new) state.
func (r *replica) probeResult(ok bool, downAfter int) replicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.state = replicaUp
		r.consecFails = 0
		return r.state
	}
	r.consecFails++
	if r.consecFails >= downAfter {
		r.state = replicaDown
	} else if r.state == replicaUp {
		r.state = replicaDraining
	}
	return r.state
}

// probeLoop probes every replica each interval, concurrently, until
// Close.
func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	ticker := time.NewTicker(co.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-ticker.C:
			co.probeAll()
		}
	}
}

// probeAll runs one probe round.
func (co *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, r := range co.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(co.ctx, co.opts.ProbeInterval)
			defer cancel()
			before := r.health()
			after := r.probeResult(r.c.Health(ctx) == nil, co.opts.DownAfter)
			if before != after {
				co.logger.Info("replica health changed",
					"replica", r.name, "from", before.String(), "to", after.String())
			}
		}(r)
	}
	wg.Wait()
}

// liveReplicas counts replicas currently accepting new shards.
func (co *Coordinator) liveReplicas() int {
	n := 0
	for _, r := range co.replicas {
		if r.acceptsWork() {
			n++
		}
	}
	return n
}

// pick returns the attempt-th choice of the failover ring for a home
// shard: scan forward from (home+attempt) mod N to the next replica
// accepting work. attempt 0 on a healthy fleet is always the home
// replica itself — the deterministic default path.
func (co *Coordinator) pick(home, attempt int) *replica {
	n := len(co.replicas)
	start := (home + attempt) % n
	for i := 0; i < n; i++ {
		r := co.replicas[(start+i)%n]
		if r.acceptsWork() {
			return r
		}
	}
	return nil
}
