package service

// Tenant-model unit tests: tenants-file parsing and validation,
// priority clamping, and the quota admission arithmetic.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTenants(t *testing.T) {
	good := `{"tenants": [
		{"name": "alice", "key": "alice-key-0001", "max_queued": 8, "max_in_flight": 16, "max_priority": 5},
		{"name": "bob", "key": "bob-key-0001"}
	]}`
	ts, err := ParseTenants([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "alice" || ts[0].MaxQueued != 8 || ts[1].MaxInFlight != 0 {
		t.Fatalf("parsed %+v", ts)
	}

	bad := []struct {
		name, body, wantErr string
	}{
		{"not json", `nope`, "tenants file"},
		{"empty list", `{"tenants": []}`, "no tenants"},
		{"no name", `{"tenants": [{"key": "long-enough-key"}]}`, "no name"},
		{"reserved name", `{"tenants": [{"name": "anonymous", "key": "long-enough-key"}]}`, "reserved"},
		{"dup name", `{"tenants": [{"name": "a", "key": "key-aaaaaaa"}, {"name": "a", "key": "key-bbbbbbb"}]}`, "duplicate"},
		{"short key", `{"tenants": [{"name": "a", "key": "short"}]}`, "at least 8"},
		{"dup key", `{"tenants": [{"name": "a", "key": "key-aaaaaaa"}, {"name": "b", "key": "key-aaaaaaa"}]}`, "already used"},
		{"negative quota", `{"tenants": [{"name": "a", "key": "key-aaaaaaa", "max_queued": -1}]}`, ">= 0"},
		{"unknown field", `{"tenants": [{"name": "a", "key": "key-aaaaaaa", "max_qeued": 3}]}`, "unknown field"},
	}
	for _, tc := range bad {
		if _, err := ParseTenants([]byte(tc.body)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadTenantsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants": [{"name": "a", "key": "key-aaaaaaa"}]}`), 0o666); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenantsFile(path)
	if err != nil || len(ts) != 1 {
		t.Fatalf("LoadTenantsFile = %+v, %v", ts, err)
	}
	// A bad file names itself in the error.
	if err := os.WriteFile(path, []byte(`{}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(path); err == nil || !strings.Contains(err.Error(), "tenants.json") {
		t.Errorf("bad file err = %v, want the path named", err)
	}
	if _, err := LoadTenantsFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded without error")
	}
}

func TestClampPriority(t *testing.T) {
	capped := &tenantState{cfg: Tenant{MaxPriority: 5}}
	uncapped := &tenantState{}
	for _, tc := range []struct {
		t        *tenantState
		in, want int
	}{
		{capped, 3, 3}, {capped, 5, 5}, {capped, 9, 5}, {capped, 0, 0},
		{uncapped, 9, 9}, {uncapped, 0, 0},
	} {
		if got := tc.t.clampPriority(tc.in); got != tc.want {
			t.Errorf("clampPriority(%d) with ceiling %d = %d, want %d",
				tc.in, tc.t.cfg.MaxPriority, got, tc.want)
		}
	}
}

func TestTenantAdmitLocked(t *testing.T) {
	ts := &tenantState{cfg: Tenant{MaxQueued: 2, MaxInFlight: 3}}
	ts.queued, ts.running = 1, 1
	if _, _, ok := ts.admitLocked(1); !ok {
		t.Error("1 queued of 2 rejected one more job")
	}
	if quota, limit, ok := ts.admitLocked(2); ok || quota != "max_queued" || limit != 2 {
		t.Errorf("admit(2) = %q/%d/%v, want max_queued/2 rejection", quota, limit, ok)
	}
	ts.running = 2 // queued+running = 3 = MaxInFlight
	if quota, _, ok := ts.admitLocked(1); ok || quota != "max_in_flight" {
		t.Errorf("admit at in-flight bound = %q/%v, want max_in_flight rejection", quota, ok)
	}
	// Zero limits mean unlimited.
	free := &tenantState{}
	free.queued, free.running = 1000, 1000
	if _, _, ok := free.admitLocked(1000); !ok {
		t.Error("unlimited tenant rejected an admission")
	}
}
