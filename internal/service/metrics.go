package service

// Hand-rolled Prometheus text exposition (format 0.0.4) — no external
// dependency, matching the repo's stdlib-only policy. GET /metrics
// renders the same counters statsz reports, plus HTTP request counts
// and latency histograms per route. Label values are server-controlled
// (tenant names from the tenants file, mux patterns for routes), so
// cardinality is bounded and escaping stays trivial.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. Submissions
// on a warm cache land ~100µs; cold simulations run seconds — the range
// covers both.
var latencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// routeKey identifies one (route, method) time series.
type routeKey struct {
	route  string
	method string
}

// httpSeries is one route's latency histogram plus per-status counts.
type httpSeries struct {
	byCode  map[int]int64
	buckets []int64 // cumulative at exposition time; stored per-bucket here
	sum     float64
	count   int64
}

// jobSeries is one via label's pair of duration histograms: total
// job wall-clock (admission to terminal) and queue wait. Both derive
// from the job's span timings, so /metrics and the trace endpoints
// report the same clock.
type jobSeries struct {
	durBuckets  []int64
	durSum      float64
	waitBuckets []int64
	waitSum     float64
	count       int64
}

// metrics collects HTTP-side series. Simulation and queue counters
// live on the Server/Engine and are read at exposition time.
type metrics struct {
	mu   sync.Mutex
	http map[routeKey]*httpSeries
	shed map[string]int64      // load-shed admissions by reason
	jobs map[string]*jobSeries // job/queue-wait durations by via
}

func newMetrics() *metrics {
	return &metrics{
		http: make(map[routeKey]*httpSeries),
		shed: make(map[string]int64),
		jobs: make(map[string]*jobSeries),
	}
}

// observeJob records one terminal job: its queue wait and total
// duration, attributed to how it resolved (simulated/memo/cache).
func (m *metrics) observeJob(via string, queueWait, total time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := m.jobs[via]
	if js == nil {
		js = &jobSeries{
			durBuckets:  make([]int64, len(latencyBuckets)),
			waitBuckets: make([]int64, len(latencyBuckets)),
		}
		m.jobs[via] = js
	}
	js.count++
	observeInto(js.durBuckets, &js.durSum, total.Seconds())
	observeInto(js.waitBuckets, &js.waitSum, queueWait.Seconds())
}

// observeInto adds one observation to a per-bucket (non-cumulative)
// histogram.
func observeInto(buckets []int64, sum *float64, sec float64) {
	*sum += sec
	for i, ub := range latencyBuckets {
		if sec <= ub {
			buckets[i]++
			break
		}
	}
}

// observeHTTP records one finished request.
func (m *metrics) observeHTTP(route, method string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := routeKey{route: route, method: method}
	s := m.http[k]
	if s == nil {
		s = &httpSeries{byCode: make(map[int]int64), buckets: make([]int64, len(latencyBuckets))}
		m.http[k] = s
	}
	s.byCode[status]++
	sec := d.Seconds()
	s.sum += sec
	s.count++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			s.buckets[i]++
			break
		}
	}
}

// loadShed records one rejected admission (queue saturation or tenant
// quota exhaustion).
func (m *metrics) loadShed(reason string) {
	m.mu.Lock()
	m.shed[reason]++
	m.mu.Unlock()
}

// promWriter accumulates exposition text with per-family HELP/TYPE
// headers.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one line; labels must alternate key, value.
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, "%s=%q", labels[i], labels[i+1])
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	p.b.WriteByte('\n')
}

// handleMetrics renders GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats() // one consistent snapshot for the scalar families
	p := &promWriter{}

	p.family("clusterd_uptime_seconds", "Seconds since the server started.", "gauge")
	p.sample("clusterd_uptime_seconds", st.UptimeSec)
	p.family("clusterd_workers", "Size of the simulation worker pool.", "gauge")
	p.sample("clusterd_workers", float64(st.Queue.Workers))
	p.family("clusterd_queue_capacity", "Bound on queued-but-not-running jobs.", "gauge")
	p.sample("clusterd_queue_capacity", float64(st.Queue.Capacity))
	p.family("clusterd_queue_depth", "Jobs currently queued.", "gauge")
	p.sample("clusterd_queue_depth", float64(st.Queue.Depth))
	p.family("clusterd_jobs_running", "Jobs currently executing.", "gauge")
	p.sample("clusterd_jobs_running", float64(st.Queue.Running))

	p.family("clusterd_jobs_submitted_total", "Jobs admitted to the queue.", "counter")
	p.sample("clusterd_jobs_submitted_total", float64(st.Queue.Submitted))
	p.family("clusterd_jobs_done_total", "Jobs finished successfully.", "counter")
	p.sample("clusterd_jobs_done_total", float64(st.Queue.Done))
	p.family("clusterd_jobs_failed_total", "Jobs finished with an error.", "counter")
	p.sample("clusterd_jobs_failed_total", float64(st.Queue.Failed))

	p.family("clusterd_simulations_total", "Simulator executions (memo and cache misses).", "counter")
	p.sample("clusterd_simulations_total", float64(st.Engine.SimulationsExecuted))
	p.family("clusterd_sim_instructions_total", "Committed instructions across executed simulations.", "counter")
	p.sample("clusterd_sim_instructions_total", float64(st.Engine.SimInstructions))
	p.family("clusterd_sim_instrs_per_second", "Lifetime average simulated instructions per second.", "gauge")
	p.sample("clusterd_sim_instrs_per_second", st.Engine.SimInstrsPerSec)

	p.family("clusterd_cache_hits_total", "Results served from the persistent cache.", "counter")
	p.sample("clusterd_cache_hits_total", float64(st.Cache.Hits))
	p.family("clusterd_cache_put_errors_total", "Failed cache write-backs.", "counter")
	p.sample("clusterd_cache_put_errors_total", float64(st.Cache.PutErrors))
	p.family("clusterd_cache_hit_ratio", "Cache hits over unique work resolved.", "gauge")
	p.sample("clusterd_cache_hit_ratio", st.Cache.HitRatio)

	// Per-tenant counters, one family per column of the statsz tenants
	// section. st.Tenants is already sorted by name.
	tenantFamilies := []struct {
		name, help, typ string
		get             func(TenantStats) float64
	}{
		{"clusterd_tenant_jobs_queued", "Jobs queued per tenant.", "gauge",
			func(t TenantStats) float64 { return float64(t.Queued) }},
		{"clusterd_tenant_jobs_running", "Jobs running per tenant.", "gauge",
			func(t TenantStats) float64 { return float64(t.Running) }},
		{"clusterd_tenant_jobs_submitted_total", "Jobs admitted per tenant.", "counter",
			func(t TenantStats) float64 { return float64(t.Submitted) }},
		{"clusterd_tenant_jobs_done_total", "Jobs finished successfully per tenant.", "counter",
			func(t TenantStats) float64 { return float64(t.Done) }},
		{"clusterd_tenant_jobs_failed_total", "Jobs failed per tenant.", "counter",
			func(t TenantStats) float64 { return float64(t.Failed) }},
		{"clusterd_tenant_cache_hits_total", "Jobs resolved from the persistent cache per tenant.", "counter",
			func(t TenantStats) float64 { return float64(t.CacheHits) }},
		{"clusterd_tenant_load_shed_total", "Admissions rejected per tenant (quota or queue saturation).", "counter",
			func(t TenantStats) float64 { return float64(t.LoadShed) }},
	}
	for _, f := range tenantFamilies {
		p.family(f.name, f.help, f.typ)
		for _, t := range st.Tenants {
			p.sample(f.name, f.get(t), "tenant", t.Name)
		}
	}

	s.metrics.mu.Lock()
	shedReasons := make([]string, 0, len(s.metrics.shed))
	for reason := range s.metrics.shed {
		shedReasons = append(shedReasons, reason)
	}
	sort.Strings(shedReasons)
	p.family("clusterd_load_shed_total", "Admissions rejected, by reason.", "counter")
	for _, reason := range shedReasons {
		p.sample("clusterd_load_shed_total", float64(s.metrics.shed[reason]), "reason", reason)
	}

	// Job-duration histograms by resolution path, derived from the same
	// span timings GET /v1/jobs/{id}/trace reports.
	vias := make([]string, 0, len(s.metrics.jobs))
	for via := range s.metrics.jobs {
		vias = append(vias, via)
	}
	sort.Strings(vias)
	emitJobHist := func(name string, buckets func(*jobSeries) []int64, sum func(*jobSeries) float64) {
		for _, via := range vias {
			js := s.metrics.jobs[via]
			cum := int64(0)
			for i, ub := range latencyBuckets {
				cum += buckets(js)[i]
				p.sample(name+"_bucket", float64(cum),
					"via", via, "le", strconv.FormatFloat(ub, 'g', -1, 64))
			}
			p.sample(name+"_bucket", float64(js.count), "via", via, "le", "+Inf")
			p.sample(name+"_sum", sum(js), "via", via)
			p.sample(name+"_count", float64(js.count), "via", via)
		}
	}
	p.family("clusterd_job_duration_seconds", "Job wall-clock from admission to terminal state, by resolution path.", "histogram")
	emitJobHist("clusterd_job_duration_seconds",
		func(js *jobSeries) []int64 { return js.durBuckets },
		func(js *jobSeries) float64 { return js.durSum })
	p.family("clusterd_queue_wait_seconds", "Job time spent queued before a worker picked it up, by resolution path.", "histogram")
	emitJobHist("clusterd_queue_wait_seconds",
		func(js *jobSeries) []int64 { return js.waitBuckets },
		func(js *jobSeries) float64 { return js.waitSum })

	keys := make([]routeKey, 0, len(s.metrics.http))
	for k := range s.metrics.http {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].method < keys[j].method
	})
	p.family("clusterd_http_requests_total", "HTTP requests by route, method and status code.", "counter")
	for _, k := range keys {
		sr := s.metrics.http[k]
		codes := make([]int, 0, len(sr.byCode))
		for c := range sr.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p.sample("clusterd_http_requests_total", float64(sr.byCode[c]),
				"route", k.route, "method", k.method, "code", strconv.Itoa(c))
		}
	}
	p.family("clusterd_http_request_duration_seconds", "HTTP request latency by route and method.", "histogram")
	for _, k := range keys {
		sr := s.metrics.http[k]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += sr.buckets[i]
			p.sample("clusterd_http_request_duration_seconds_bucket", float64(cum),
				"route", k.route, "method", k.method,
				"le", strconv.FormatFloat(ub, 'g', -1, 64))
		}
		p.sample("clusterd_http_request_duration_seconds_bucket", float64(sr.count),
			"route", k.route, "method", k.method, "le", "+Inf")
		p.sample("clusterd_http_request_duration_seconds_sum", sr.sum,
			"route", k.route, "method", k.method)
		p.sample("clusterd_http_request_duration_seconds_count", float64(sr.count),
			"route", k.route, "method", k.method)
	}
	s.metrics.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(p.b.String()))
}
