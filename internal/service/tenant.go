package service

// Tenant model: API-key authentication with per-tenant admission
// quotas. A server configured with tenants rejects unauthenticated
// requests (401) and enforces each tenant's queue quota, in-flight
// bound and priority ceiling at admission time (429). A server with no
// tenants runs open, exactly like before this layer existed: every
// request is attributed to the built-in "anonymous" tenant, which has
// no key and no quotas.

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Tenant is one API-key principal and its admission limits, as declared
// in the tenants file (see ParseTenants for the JSON shape). The zero
// value of every limit means "unlimited".
type Tenant struct {
	// Name identifies the tenant in job records, statsz and metrics
	// labels. Required, unique.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>". Required, unique, at least 8 characters. It
	// never appears in logs, statsz or metrics.
	Key string `json:"key"`
	// MaxQueued bounds this tenant's queued-but-not-running jobs
	// (0 = unlimited). Exceeding it answers 429 quota_exceeded.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxInFlight bounds queued plus running jobs (0 = unlimited).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxPriority caps the priority this tenant can request
	// (0 = uncapped). Higher requested priorities are clamped, not
	// rejected — a misconfigured client still runs, just not ahead of
	// everyone else.
	MaxPriority int `json:"max_priority,omitempty"`
}

// tenantsFile is the on-disk JSON shape of -tenants.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// ParseTenants decodes and validates a tenants file:
//
//	{"tenants": [
//	  {"name": "alice", "key": "alice-key-0001", "max_queued": 8,
//	   "max_in_flight": 16, "max_priority": 5},
//	  {"name": "bob", "key": "bob-key-0001"}
//	]}
//
// Unknown fields are rejected, like every other JSON surface of the
// service: a misspelled quota knob silently defaulting to unlimited is
// an outage, not a convenience.
func ParseTenants(data []byte) ([]Tenant, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var f tenantsFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenants file: declares no tenants")
	}
	if err := validateTenants(f.Tenants); err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	return f.Tenants, nil
}

// validateTenants enforces the tenant invariants for both the tenants
// file and programmatic Options.Tenants.
func validateTenants(tenants []Tenant) error {
	names := make(map[string]bool, len(tenants))
	keys := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		switch {
		case t.Name == "":
			return fmt.Errorf("tenant %d has no name", i)
		case t.Name == anonymousTenant:
			return fmt.Errorf("%q is the reserved open-mode tenant name", t.Name)
		case names[t.Name]:
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		case len(t.Key) < 8:
			return fmt.Errorf("tenant %q: key must be at least 8 characters", t.Name)
		case keys[t.Key]:
			return fmt.Errorf("tenant %q: key already used by another tenant", t.Name)
		case t.MaxQueued < 0 || t.MaxInFlight < 0 || t.MaxPriority < 0:
			return fmt.Errorf("tenant %q: quotas must be >= 0", t.Name)
		}
		names[t.Name] = true
		keys[t.Key] = true
	}
	return nil
}

// LoadTenantsFile reads and parses a tenants file from disk.
func LoadTenantsFile(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ts, err := ParseTenants(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}

// anonymousTenant is the implicit principal of open (no-tenants) mode
// and of direct Go API calls (Server.Submit and friends).
const anonymousTenant = "anonymous"

// tenantState is one tenant's live accounting. queued/running mirror
// the queue and worker pool and are guarded by Server.mu; the counters
// are atomics so statsz and /metrics snapshot them without the lock.
type tenantState struct {
	cfg Tenant

	// queued and running are guarded by Server.mu.
	queued  int
	running int

	submitted atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	cacheHits atomic.Int64
	shed      atomic.Int64 // admissions rejected by quota or queue saturation
}

// clampPriority applies the tenant's priority ceiling.
func (t *tenantState) clampPriority(p int) int {
	if t.cfg.MaxPriority > 0 && p > t.cfg.MaxPriority {
		return t.cfg.MaxPriority
	}
	return p
}

// admitLocked checks whether n more jobs fit inside the tenant's
// quotas; Server.mu must be held. It returns the exhausted quota's
// name and limit on rejection.
func (t *tenantState) admitLocked(n int) (quota string, limit int, ok bool) {
	if t.cfg.MaxQueued > 0 && t.queued+n > t.cfg.MaxQueued {
		return "max_queued", t.cfg.MaxQueued, false
	}
	if t.cfg.MaxInFlight > 0 && t.queued+t.running+n > t.cfg.MaxInFlight {
		return "max_in_flight", t.cfg.MaxInFlight, false
	}
	return "", 0, true
}

// TenantStats is one tenant's section of the statsz payload.
type TenantStats struct {
	Name      string `json:"name"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted int64  `json:"submitted"`
	Done      int64  `json:"done"`
	Failed    int64  `json:"failed"`
	CacheHits int64  `json:"cache_hits"`
	LoadShed  int64  `json:"load_shed"`

	MaxQueued   int `json:"max_queued,omitempty"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	MaxPriority int `json:"max_priority,omitempty"`
}

// newTenantStates builds the registry (name → state) plus the implicit
// anonymous tenant.
func newTenantStates(tenants []Tenant) (states map[string]*tenantState, anon *tenantState) {
	anon = &tenantState{cfg: Tenant{Name: anonymousTenant}}
	states = make(map[string]*tenantState, len(tenants))
	for _, t := range tenants {
		states[t.Name] = &tenantState{cfg: t}
	}
	return states, anon
}

// lookupByKey resolves an API key to its tenant in constant time per
// candidate, so key comparison never leaks prefix length through
// timing. Tenant counts are small; O(n) is fine.
func lookupByKey(states map[string]*tenantState, key string) *tenantState {
	var found *tenantState
	for _, t := range states {
		if subtle.ConstantTimeCompare([]byte(t.cfg.Key), []byte(key)) == 1 {
			found = t
		}
	}
	return found
}

// snapshotTenants renders deterministic per-tenant stats. mu guards
// queued/running at the caller (Server.Stats holds Server.mu).
func snapshotTenants(states map[string]*tenantState, anon *tenantState, multiTenant bool) []TenantStats {
	out := make([]TenantStats, 0, len(states)+1)
	add := func(t *tenantState) {
		out = append(out, TenantStats{
			Name:        t.cfg.Name,
			Queued:      t.queued,
			Running:     t.running,
			Submitted:   t.submitted.Load(),
			Done:        t.done.Load(),
			Failed:      t.failed.Load(),
			CacheHits:   t.cacheHits.Load(),
			LoadShed:    t.shed.Load(),
			MaxQueued:   t.cfg.MaxQueued,
			MaxInFlight: t.cfg.MaxInFlight,
			MaxPriority: t.cfg.MaxPriority,
		})
	}
	if multiTenant {
		for _, t := range states {
			add(t)
		}
		// The anonymous tenant only shows up when the Go API was used
		// directly on a multi-tenant server; an all-zero row would just
		// be noise.
		if anon.submitted.Load() > 0 {
			add(anon)
		}
	} else {
		add(anon)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
