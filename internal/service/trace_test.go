package service

// Tracing-surface tests: W3C traceparent tolerance and continuation at
// admission, the span timeline of a completed job, the /trace and
// /tracez endpoints, span-derived job histograms on /metrics, and the
// trace_id discipline of the request log (present on 4xx paths too).

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/obs"
)

// postJob submits one job over HTTP with optional traceparent and
// returns the decoded status.
func postJob(t *testing.T, ts *httptest.Server, traceparent string) (int, JobStatus) {
	t.Helper()
	body := `{"machine":{"clusters":"2"},"kernel":"rawcaudio"}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// TestTraceparentContinuation: a valid inbound traceparent threads
// through admission — the job's trace id IS the caller's trace id.
func TestTraceparentContinuation(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	code, st := postJob(t, ts, "00-"+traceID+"-00f067aa0ba902b7-01")
	if code != http.StatusAccepted {
		t.Fatalf("submit with traceparent = %d, want 202", code)
	}
	if st.TraceID != traceID {
		t.Errorf("job trace id = %q, want the inbound %q", st.TraceID, traceID)
	}
	fin := waitJob(t, s, st.ID)
	if fin.TraceID != traceID {
		t.Errorf("terminal status trace id = %q, want %q", fin.TraceID, traceID)
	}
}

// TestTraceparentMalformedTolerated: any malformed or foreign
// traceparent starts a fresh root trace — never a 4xx, never an
// adopted bogus id.
func TestTraceparentMalformedTolerated(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, h := range []string{
		"garbage",
		"00-zzzz-yyyy-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
	} {
		code, st := postJob(t, ts, h)
		if code != http.StatusAccepted {
			t.Errorf("traceparent %q: submit = %d, want 202 (malformed headers are tolerated)", h, code)
			continue
		}
		if !strings.Contains(h, "4bf92f3577b34da6a3ce929d0e0e4736") {
			// nothing to adopt — just require a well-formed fresh id
		} else if st.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("traceparent %q: bogus header's trace id was adopted", h)
		}
		if len(st.TraceID) != 32 {
			t.Errorf("traceparent %q: job trace id %q is not 32 hex chars", h, st.TraceID)
		}
		waitJob(t, s, st.ID)
	}
}

// TestJobTraceEndpoint: a finished job's timeline covers
// admission→queue→run→sim under one trace id, queue wait bounded by
// the total, in both formats; an unknown format is a 400 envelope.
func TestJobTraceEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.TraceID == "" {
		t.Fatal("finished job has no trace id")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.TraceID != fin.TraceID || tr.Job != st.ID || tr.State != StateDone {
		t.Errorf("trace header = %+v, want trace %s job %s done", tr, fin.TraceID, st.ID)
	}
	byName := map[string]obs.Span{}
	var jobSpan, queueSpan obs.Span
	for _, sp := range tr.Spans {
		if sp.TraceID != tr.TraceID {
			t.Errorf("span %q carries trace %s, want %s", sp.Name, sp.TraceID, tr.TraceID)
		}
		byName[sp.Name] = sp
		switch {
		case strings.HasPrefix(sp.Name, "job j-"):
			jobSpan = sp
		case sp.Name == "queue.wait":
			queueSpan = sp
		}
	}
	for _, want := range []string{"queue.wait", "job.run", "sim.materialize", "sim.run", "sim.warmup"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("timeline is missing a %q span; have %v", want, keys(byName))
		}
	}
	if jobSpan.SpanID == "" {
		t.Fatalf("no job root span in %v", keys(byName))
	}
	if queueSpan.ParentID != jobSpan.SpanID {
		t.Errorf("queue.wait parent = %s, want the job span %s", queueSpan.ParentID, jobSpan.SpanID)
	}
	if queueSpan.DurUS > jobSpan.DurUS {
		t.Errorf("queue wait %dus exceeds job total %dus", queueSpan.DurUS, jobSpan.DurUS)
	}
	if via := byName["job.run"].Attrs["via"]; via == "" {
		t.Error("job.run span has no via attribute")
	}

	// format=chrome parses as a Chrome trace with complete events.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome format does not parse: %v", err)
	}
	resp.Body.Close()
	complete := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete < len(tr.Spans) {
		t.Errorf("chrome trace has %d complete events for %d spans", complete, len(tr.Spans))
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", resp.StatusCode)
	}
}

func keys(m map[string]obs.Span) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTracezEndpoint: the ring lists recent spans, filters by
// trace_id, and rejects a bad limit.
func TestTracezEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var tz TracezResponse
	if err := json.NewDecoder(resp.Body).Decode(&tz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tz.Service != "clusterd" || tz.Retained == 0 || len(tz.Spans) == 0 {
		t.Errorf("tracez = service %q retained %d spans %d", tz.Service, tz.Retained, len(tz.Spans))
	}

	resp, err = http.Get(ts.URL + "/v1/tracez?trace_id=" + fin.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tz.Spans) == 0 {
		t.Fatalf("trace_id filter returned nothing for %s", fin.TraceID)
	}
	for _, sp := range tz.Spans {
		if sp.TraceID != fin.TraceID {
			t.Errorf("filtered span %q has trace %s, want %s", sp.Name, sp.TraceID, fin.TraceID)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/tracez?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", resp.StatusCode)
	}
}

// TestJobHistogramsOnMetrics: finishing a job populates the
// span-derived duration and queue-wait histograms, labelled by via.
func TestJobHistogramsOnMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(JobRequest{Machine: config.MachineSpec{Clusters: "2"}, Kernel: "rawcaudio"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		`clusterd_job_duration_seconds_count{via="simulated"} 1`,
		`clusterd_queue_wait_seconds_count{via="simulated"} 1`,
		`clusterd_job_duration_seconds_bucket{via="simulated",le="+Inf"} 1`,
		"clusterd_job_duration_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

// TestRequestLogCarriesTraceID: every instrumented request — the happy
// path and the 4xx envelope path alike — logs trace_id and request_id.
func TestRequestLogCarriesTraceID(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	s := newTestServer(t, func(o *Options) { o.Logger = logger })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	code, st := postJob(t, ts, "00-"+traceID+"-00f067aa0ba902b7-01")
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitJob(t, s, st.ID)

	// A 4xx envelope path is still instrumented.
	resp, err := http.Get(ts.URL + "/v1/jobs/j-99999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job = %d, want 404", resp.StatusCode)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	if !strings.Contains(logs, "trace_id="+traceID) {
		t.Errorf("request log never mentions the continued trace id %s:\n%s", traceID, logs)
	}
	notFoundLine := ""
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "status=404") {
			notFoundLine = line
		}
	}
	if notFoundLine == "" {
		t.Fatalf("no 404 request log line:\n%s", logs)
	}
	if !strings.Contains(notFoundLine, "trace_id=") || !strings.Contains(notFoundLine, "request_id=") {
		t.Errorf("404 log line lacks trace_id/request_id: %s", notFoundLine)
	}
}

// lockedWriter serializes handler writes so the test can read the
// buffer without racing the server goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
