// Package service is the simulation-as-a-service layer: a long-lived
// job server that accepts simulation jobs and grids as JSON over HTTP,
// validates them with internal/config, queues them on a bounded
// priority queue, and executes them through the runner.Engine — backed
// by the in-memory memo and a persistent on-disk result cache keyed by
// Job.Fingerprint(), so identical work is never re-simulated across
// process restarts or replicas sharing a cache directory.
//
// Determinism: the queue pops jobs in (priority desc, submission seq
// asc) order, simulation itself is deterministic, and results are
// content-addressed by fingerprint — so any number of workers or
// replicas executing a job space produce identical results, in the
// spirit of deterministic work-sharding for parallel search frameworks.
//
// cmd/clusterd wraps this package in a binary; service/client speaks
// the HTTP API (clustersim -remote uses it).
package service

import (
	"container/heap"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clustervp/internal/config"
	"clustervp/internal/core"
	"clustervp/internal/obs"
	"clustervp/internal/runner"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// Job lifecycle states: queued → running → done | failed.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Errors the HTTP layer maps to status codes and envelope codes (see
// errors.go for the mapping table).
var (
	// ErrQueueFull means the bounded queue cannot accept the submission
	// (HTTP 503 queue_full; grids are admitted all-or-nothing).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrNoSuchJob means the job ID is unknown — or belongs to another
	// tenant, which is indistinguishable by design (HTTP 404 not_found).
	ErrNoSuchJob = errors.New("service: no such job")
	// ErrBadRequest wraps validation failures (HTTP 400 invalid_spec).
	ErrBadRequest = errors.New("service: invalid request")
	// ErrQuotaExceeded means the submission fits the global queue but
	// not the tenant's quota (HTTP 429 quota_exceeded with Retry-After).
	ErrQuotaExceeded = errors.New("service: tenant quota exceeded")
	// ErrUnauthorized means a missing or unknown API key on a
	// multi-tenant server (HTTP 401 unauthorized).
	ErrUnauthorized = errors.New("service: unauthorized")
	// ErrTraceStoreDisabled means a trace upload hit a server started
	// without a trace store (HTTP 501 trace_store_disabled — a
	// deployment choice, not saturation, so deliberately NOT 503).
	ErrTraceStoreDisabled = errors.New("service: trace store disabled")
	// ErrPayloadTooLarge means a request body exceeded its bound
	// (HTTP 413 payload_too_large).
	ErrPayloadTooLarge = errors.New("service: payload too large")
)

// JobRequest is the JSON body of POST /v1/jobs: a machine description
// plus exactly one workload — a suite kernel or an uploaded trace
// referenced by content digest.
type JobRequest struct {
	// Machine describes the simulated machine (see config.MachineSpec);
	// the zero value is the paper's 4-cluster preset.
	Machine config.MachineSpec `json:"machine"`
	// Kernel names a Table 2 suite kernel; mutually exclusive with
	// TraceDigest.
	Kernel string `json:"kernel,omitempty"`
	// Scale is the workload scale factor (0 = 1). Ignored for traces.
	Scale int `json:"scale,omitempty"`
	// Seed re-seeds the kernel inputs (0 = canonical). Ignored for traces.
	Seed uint64 `json:"seed,omitempty"`
	// TraceDigest replays a previously-uploaded .cvt trace
	// ("sha256:<hex>", as returned by POST /v1/traces).
	TraceDigest string `json:"trace_digest,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities
	// run in submission order.
	Priority int `json:"priority,omitempty"`
}

// GridRequest is the JSON body of POST /v1/grids: the cross-product of
// machines × kernels × scales, expanded in row-major order exactly like
// runner.Grid, admitted to the queue all-or-nothing.
type GridRequest struct {
	Machines []config.MachineSpec `json:"machines"`
	Kernels  []string             `json:"kernels"`
	// Scales defaults to [1].
	Scales []int `json:"scales,omitempty"`
	// Seed applies to every kernel instance.
	Seed uint64 `json:"seed,omitempty"`
	// Priority applies to every expanded job.
	Priority int `json:"priority,omitempty"`
}

// JobStatus is the JSON representation of one job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Tenant      string `json:"tenant,omitempty"`
	Kernel      string `json:"kernel,omitempty"`
	Scale       int    `json:"scale,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	TraceDigest string `json:"trace_digest,omitempty"`
	Priority    int    `json:"priority,omitempty"`
	// Replica names the fleet replica a shard ran on; empty on a
	// single-box server, so the field never appears outside fleet mode.
	Replica string `json:"replica,omitempty"`

	// TraceID correlates the job with its distributed trace: the same id
	// appears in request logs, job events, and GET /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`

	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`

	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Results carries the full stats.Results record of a done job.
	Results *stats.Results `json:"results,omitempty"`
}

// Event is one NDJSON line of GET /v1/jobs/{id}/events: a state
// transition or a periodic progress snapshot of the running simulation.
type Event struct {
	State        string  `json:"state"`
	Cycles       int64   `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	Error        string  `json:"error,omitempty"`
	// TraceID is the job's trace id, on every event line, so a stream
	// consumer can jump from events to the span timeline.
	TraceID string `json:"trace_id,omitempty"`
}

// QueueStats is the queue/worker section of statsz.
type QueueStats struct {
	Workers    int     `json:"workers"`
	Capacity   int     `json:"capacity"`
	Depth      int     `json:"depth"`
	Running    int     `json:"running"`
	Submitted  int64   `json:"submitted"`
	Done       int64   `json:"done"`
	Failed     int64   `json:"failed"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// CacheStats is the persistent-result-cache section of statsz. Hits
// plus the engine's simulations is the unique work the server
// resolved; memo hits within the process appear in neither.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	PutErrors int64   `json:"put_errors"`
	HitRatio  float64 `json:"hit_ratio"`
}

// EngineStats is the simulator section of statsz.
type EngineStats struct {
	SimulationsExecuted int64   `json:"simulations_executed"`
	SimInstructions     uint64  `json:"sim_instructions"`
	SimInstrsPerSec     float64 `json:"sim_instrs_per_sec"`
}

// ServerStats is the GET /v1/statsz payload, schema version 2: nested
// queue/cache/engine sections plus one entry per tenant. The
// pre-versioning flat top-level keys (workers, queue_depth, jobs_done,
// cache_hit_ratio, ...) were mirrored through schema version 1 and are
// gone as of version 2 — read the nested sections.
type ServerStats struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeSec     float64 `json:"uptime_sec"`

	Queue   QueueStats    `json:"queue"`
	Cache   CacheStats    `json:"cache"`
	Engine  EngineStats   `json:"engine"`
	Tenants []TenantStats `json:"tenants"`
}

// Options configure a Server.
type Options struct {
	// Workers bounds concurrent simulations (<=0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (<=0 = 1024).
	QueueDepth int
	// CacheDir roots the persistent result cache; empty disables it
	// (the in-memory memo still deduplicates within the process).
	CacheDir string
	// TraceDir roots the content-addressed trace store; empty disables
	// trace uploads and trace-replay jobs.
	TraceDir string
	// ProgressInterval is the cycle interval between progress events on
	// running jobs (<=0 = 50000).
	ProgressInterval int64
	// MaxTraceBytes bounds one trace upload (<=0 = 1 GiB).
	MaxTraceBytes int64
	// MaxJobRecords bounds retained job records (<=0 = 16384): once
	// exceeded, the oldest *terminal* records are evicted (their
	// results live on in the result cache; the records only feed
	// /v1/jobs/{id}). Queued and running jobs are never evicted, so a
	// long-lived server cannot leak memory per submission.
	MaxJobRecords int
	// Tenants, when non-empty, turns on multi-tenant mode: every HTTP
	// request (except /v1/healthz and /metrics) must present a known
	// API key, jobs are attributed and quota-checked per tenant, and
	// one tenant cannot read another's jobs. Empty = open mode: no
	// auth, every caller is the "anonymous" tenant with no quotas.
	Tenants []Tenant
	// SpanRing bounds the retained finished spans of the tracing
	// collector (<=0 = obs.DefaultRingSize). Tracing is always on —
	// span starts/ends sit outside the simulation cycle loop, so the
	// cost per job is a handful of allocations, not per-cycle work.
	SpanRing int
	// Logger receives structured request and job-lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
	// Run overrides the simulator (tests inject stubs); nil = the real
	// timing simulator with progress events.
	Run func(runner.Job) (stats.Results, error)
}

// Server is the simulation job server. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	opts  Options
	eng   *runner.Engine
	cache *runner.DiskCache // nil when disabled
	store *trace.Store      // nil when disabled
	start time.Time

	// Tenant registry: immutable after New. multiTenant switches the
	// HTTP layer into key-required mode; anonymous is the principal of
	// open mode and of direct Go API calls.
	tenants     map[string]*tenantState
	anonymous   *tenantState
	multiTenant bool

	logger  *slog.Logger
	metrics *metrics
	spans   *obs.Collector

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job IDs in submission order, for record eviction
	queue   jobHeap
	nextSeq int64
	running int

	submitted, done, failed atomic.Int64

	// avail carries one token per queued job; workers block on it, so a
	// token received guarantees a non-empty queue.
	avail chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	// handler is the route table, built once in New (ServeHTTP must not
	// rebuild a mux per request).
	handler http.Handler

	// fanouts fans simulation progress out to every service job
	// currently running one fingerprint (the engine deduplicates
	// executions; events must not be deduplicated with them). All
	// registry mutations happen under fanMu so a finishing job's
	// remove-and-delete cannot race a starting job's lookup-or-create
	// into a dropped registration.
	fanMu   sync.Mutex
	fanouts map[string]*fanout
}

// New builds and starts a server (its workers run until Close).
func New(opts Options) (*Server, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 50_000
	}
	if opts.MaxTraceBytes <= 0 {
		opts.MaxTraceBytes = 1 << 30
	}
	if opts.MaxJobRecords <= 0 {
		opts.MaxJobRecords = 16384
	}
	if opts.MaxJobRecords < opts.QueueDepth {
		// Every queued job must have a record, so the record bound can
		// never be tighter than the queue bound.
		opts.MaxJobRecords = opts.QueueDepth
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		opts:    opts,
		start:   time.Now(),
		jobs:    make(map[string]*job),
		avail:   make(chan struct{}, opts.QueueDepth),
		quit:    make(chan struct{}),
		fanouts: make(map[string]*fanout),
		logger:  logger,
		metrics: newMetrics(),
		spans:   obs.NewCollector("clusterd", opts.SpanRing),
	}
	if err := validateTenants(opts.Tenants); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.tenants, s.anonymous = newTenantStates(opts.Tenants)
	s.multiTenant = len(opts.Tenants) > 0
	var cache runner.ResultCache
	if opts.CacheDir != "" {
		dc, err := runner.NewDiskCache(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: result cache: %w", err)
		}
		s.cache = dc
		cache = dc
	}
	if opts.TraceDir != "" {
		st, err := trace.NewStore(opts.TraceDir)
		if err != nil {
			return nil, fmt.Errorf("service: trace store: %w", err)
		}
		s.store = st
	}
	s.eng = runner.New(runner.Options{
		Workers: opts.Workers,
		Cache:   cache,
		Run:     s.simulate,
	})
	s.handler = s.buildHandler()
	for i := 0; i < s.eng.Workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// simulate is the engine's run function: the real simulator with
// progress fanned out to every job sharing the fingerprint, or the
// injected test stub. The simulation's spans (materialize/run/warmup)
// parent under the first attached job's run span — the engine
// deduplicates executions by fingerprint, so the one simulation's
// timeline lands in one job's trace; the duplicates record a memo-hit
// via instead.
func (s *Server) simulate(j runner.Job) (stats.Results, error) {
	if s.opts.Run != nil {
		return s.opts.Run(j)
	}
	if f := s.fanoutLookup(j.Fingerprint()); f != nil {
		return runner.SimulateTraced(j, s.opts.ProgressInterval, f.publish, f.parentSpan())
	}
	return runner.Simulate(j)
}

// Spans exposes the tracing collector (the /v1/tracez and
// /v1/jobs/{id}/trace surfaces; tests read it directly).
func (s *Server) Spans() *obs.Collector { return s.spans }

// fanoutLookup returns the fanout currently registered for a
// fingerprint, or nil.
func (s *Server) fanoutLookup(fp string) *fanout {
	s.fanMu.Lock()
	defer s.fanMu.Unlock()
	return s.fanouts[fp]
}

// fanoutAttach registers j for progress on its fingerprint, creating
// the fanout if needed.
func (s *Server) fanoutAttach(j *job) {
	s.fanMu.Lock()
	defer s.fanMu.Unlock()
	f := s.fanouts[j.fp]
	if f == nil {
		f = &fanout{}
		s.fanouts[j.fp] = f
	}
	f.add(j)
}

// fanoutDetach removes j and drops the fanout when it was the last
// attached job. Attach and detach share fanMu, so a detach can never
// delete a fanout a concurrent attach just joined.
func (s *Server) fanoutDetach(j *job) {
	s.fanMu.Lock()
	defer s.fanMu.Unlock()
	if f := s.fanouts[j.fp]; f != nil && f.remove(j) == 0 {
		delete(s.fanouts, j.fp)
	}
}

// Engine exposes the underlying grid engine (counters for statsz and
// tests).
func (s *Server) Engine() *runner.Engine { return s.eng }

// TraceStore exposes the content-addressed trace store (nil when
// disabled).
func (s *Server) TraceStore() *trace.Store { return s.store }

// Close stops the workers after their current jobs; queued jobs stay
// queued (a restarted server re-resolves them from the cache anyway).
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// buildJob validates a request into an executable job. Every failure
// wraps ErrBadRequest.
func (s *Server) buildJob(req JobRequest) (runner.Job, error) {
	cfg, err := req.Machine.Build()
	if err != nil {
		return runner.Job{}, fmt.Errorf("%w: machine: %v", ErrBadRequest, err)
	}
	switch {
	case req.TraceDigest != "" && req.Kernel != "":
		return runner.Job{}, fmt.Errorf("%w: kernel and trace_digest are mutually exclusive", ErrBadRequest)
	case req.TraceDigest != "":
		if s.store == nil {
			return runner.Job{}, fmt.Errorf("%w: this server has no trace store", ErrBadRequest)
		}
		path, err := s.store.Path(req.TraceDigest)
		if err != nil {
			return runner.Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if !s.store.Has(req.TraceDigest) {
			return runner.Job{}, fmt.Errorf("%w: trace %s not uploaded", ErrBadRequest, req.TraceDigest)
		}
		return runner.Job{Config: cfg, Trace: path}, nil
	case req.Kernel != "":
		if _, err := workload.ByName(req.Kernel); err != nil {
			return runner.Job{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return runner.Job{Config: cfg, Kernel: req.Kernel, Scale: req.Scale, Seed: req.Seed}, nil
	default:
		return runner.Job{}, fmt.Errorf("%w: one of kernel or trace_digest is required", ErrBadRequest)
	}
}

// Submit validates and enqueues one job as the anonymous tenant,
// returning its status snapshot. HTTP submissions go through submitAs
// with the authenticated tenant instead.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	return s.submitAs(s.anonymous, req, nil)
}

// submitAs validates and enqueues one job for a tenant, enforcing its
// quotas at admission. A non-nil parent span (the HTTP request span)
// roots the job's trace under the caller's — so a coordinator-
// dispatched job shares the coordinator's trace id.
func (s *Server) submitAs(t *tenantState, req JobRequest, parent *obs.ActiveSpan) (JobStatus, error) {
	rjob, err := s.buildJob(req)
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(t, 1); err != nil {
		return JobStatus{}, err
	}
	j := s.enqueueLocked(t, req, rjob, parent)
	s.logger.Info("job submitted",
		"tenant", t.cfg.Name, "job", j.id, "fingerprint", j.fp, "priority", j.priority,
		"trace_id", j.traceID)
	return j.status(), nil
}

// SubmitGrid expands the grid row-major and enqueues every job
// all-or-nothing as the anonymous tenant, returning the job IDs in
// grid order.
func (s *Server) SubmitGrid(req GridRequest) ([]string, error) {
	return s.submitGridAs(s.anonymous, req)
}

// submitGridAs is SubmitGrid for a tenant: the whole grid must fit the
// global queue AND the tenant's quotas, or nothing is admitted. Each
// expanded job roots its own trace (not the submitting request's):
// the contract is one trace per job, and a thousand-job grid sharing
// one trace id would make every per-job timeline drag the whole grid
// along.
func (s *Server) submitGridAs(t *tenantState, req GridRequest) ([]string, error) {
	if len(req.Machines) == 0 || len(req.Kernels) == 0 {
		return nil, fmt.Errorf("%w: a grid needs at least one machine and one kernel", ErrBadRequest)
	}
	scales := req.Scales
	if len(scales) == 0 {
		scales = []int{1}
	}
	var reqs []JobRequest
	var rjobs []runner.Job
	for _, m := range req.Machines {
		for _, k := range req.Kernels {
			for _, sc := range scales {
				jr := JobRequest{Machine: m, Kernel: k, Scale: sc, Seed: req.Seed, Priority: req.Priority}
				rj, err := s.buildJob(jr)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, jr)
				rjobs = append(rjobs, rj)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(t, len(reqs)); err != nil {
		return nil, err
	}
	ids := make([]string, len(reqs))
	for i := range reqs {
		ids[i] = s.enqueueLocked(t, reqs[i], rjobs[i], nil).id
	}
	s.logger.Info("grid submitted", "tenant", t.cfg.Name, "jobs", len(ids))
	return ids, nil
}

// admitLocked is the two-level admission check — global queue bound
// first (503 queue_full), then the tenant's own quotas (429
// quota_exceeded); s.mu must be held. Rejections count as load
// shedding for the tenant and the server.
func (s *Server) admitLocked(t *tenantState, n int) error {
	if len(s.queue)+n > s.opts.QueueDepth {
		t.shed.Add(1)
		s.metrics.loadShed("queue_full")
		s.logger.Warn("load shed: queue full",
			"tenant", t.cfg.Name, "jobs", n, "queue_depth", len(s.queue), "queue_capacity", s.opts.QueueDepth)
		if n > 1 {
			return fmt.Errorf("%w: grid of %d jobs exceeds free queue capacity %d",
				ErrQueueFull, n, s.opts.QueueDepth-len(s.queue))
		}
		return ErrQueueFull
	}
	if quota, limit, ok := t.admitLocked(n); !ok {
		t.shed.Add(1)
		s.metrics.loadShed("quota_exceeded")
		s.logger.Warn("load shed: tenant quota exceeded",
			"tenant", t.cfg.Name, "jobs", n, "quota", quota, "limit", limit)
		return withDetails(
			fmt.Errorf("%w: tenant %q exceeded %s (%d)", ErrQuotaExceeded, t.cfg.Name, quota, limit),
			map[string]string{
				"tenant": t.cfg.Name,
				"quota":  quota,
				"limit":  strconv.Itoa(limit),
			})
	}
	return nil
}

// enqueueLocked registers and queues a validated job for a tenant;
// s.mu must be held. The admission check happened at the caller, so
// the avail send cannot block. The requested priority is clamped to
// the tenant's ceiling here, so the heap never sees a priority the
// tenant was not entitled to.
//
// The job's root span starts here — admission IS the start of the
// job's timeline — as a child of the submitting request's span when
// one is given (continuing a coordinator's trace across the hop), or
// as a fresh root otherwise. The queue.wait child starts immediately
// and ends when a worker picks the job up.
func (s *Server) enqueueLocked(t *tenantState, req JobRequest, rjob runner.Job, parent *obs.ActiveSpan) *job {
	s.nextSeq++
	j := &job{
		id:        fmt.Sprintf("j-%08d", s.nextSeq),
		seq:       s.nextSeq,
		priority:  t.clampPriority(req.Priority),
		tenant:    t,
		req:       req,
		rjob:      rjob,
		fp:        rjob.Fingerprint(),
		state:     StateQueued,
		submitted: time.Now(),
		terminal:  make(chan struct{}),
		subs:      make(map[chan Event]struct{}),
	}
	if parent != nil {
		j.span = parent.StartChild("job " + j.id)
	} else {
		j.span = s.spans.StartRoot("job "+j.id, obs.SpanContext{})
	}
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("tenant", t.cfg.Name)
	j.span.SetAttr("fingerprint", j.fp)
	if req.Kernel != "" {
		j.span.SetAttr("kernel", req.Kernel)
	}
	if req.TraceDigest != "" {
		j.span.SetAttr("trace_digest", req.TraceDigest)
	}
	j.traceID = j.span.TraceID()
	j.queueSpan = j.span.StartChild("queue.wait")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	heap.Push(&s.queue, j)
	s.submitted.Add(1)
	t.submitted.Add(1)
	t.queued++
	s.avail <- struct{}{}
	return j
}

// evictLocked drops the oldest terminal job records once the retention
// bound is exceeded; s.mu must be held. Non-terminal records are
// skipped (and re-considered next time), so an in-flight job's status
// is always resolvable.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobRecords {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		if len(s.jobs) <= s.opts.MaxJobRecords {
			kept = append(kept, s.order[i:]...)
			break
		}
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed
		j.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Status returns the status snapshot of a job, regardless of tenant
// (the Go-API admin view; the HTTP layer goes through lookupFor).
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNoSuchJob
	}
	return j.status(), nil
}

// lookupFor returns the job record if it exists AND belongs to the
// tenant. Another tenant's job reads as not-found, never as forbidden:
// job IDs are sequential, and a 403 would confirm to a prober that the
// ID exists.
func (s *Server) lookupFor(t *tenantState, id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok || (s.multiTenant && j.tenant != t) {
		return nil, false
	}
	return j, true
}

// Stats snapshots the server counters into the versioned statsz
// schema: nested queue/cache/engine/tenants sections.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	depth := len(s.queue)
	running := s.running
	tenants := snapshotTenants(s.tenants, s.anonymous, s.multiTenant)
	s.mu.Unlock()
	uptime := time.Since(s.start).Seconds()
	st := ServerStats{
		SchemaVersion: SchemaVersion,
		UptimeSec:     uptime,
		Queue: QueueStats{
			Workers:   s.eng.Workers(),
			Capacity:  s.opts.QueueDepth,
			Depth:     depth,
			Running:   running,
			Submitted: s.submitted.Load(),
			Done:      s.done.Load(),
			Failed:    s.failed.Load(),
		},
		Cache: CacheStats{
			Hits:      s.eng.CacheHits(),
			PutErrors: s.eng.CachePutErrors(),
		},
		Engine: EngineStats{
			SimulationsExecuted: s.eng.Executed(),
			SimInstructions:     s.eng.SimInstructions(),
		},
		Tenants: tenants,
	}
	if u := st.Engine.SimulationsExecuted + st.Cache.Hits; u > 0 {
		st.Cache.HitRatio = float64(st.Cache.Hits) / float64(u)
	}
	if uptime > 0 {
		st.Queue.JobsPerSec = float64(st.Queue.Done) / uptime
		st.Engine.SimInstrsPerSec = float64(st.Engine.SimInstructions) / uptime
	}
	return st
}

// worker drains the queue until Close. One avail token is one queued
// job, so a received token guarantees the pop succeeds.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.avail:
			// A closed quit and a non-empty queue are both ready:
			// re-check quit so Close never starts new work (the select
			// above picks between ready cases at random).
			select {
			case <-s.quit:
				return
			default:
			}
			s.mu.Lock()
			j := heap.Pop(&s.queue).(*job)
			s.running++
			j.tenant.queued--
			j.tenant.running++
			s.mu.Unlock()
			s.execute(j)
			s.mu.Lock()
			s.running--
			j.tenant.running--
			s.mu.Unlock()
		}
	}
}

// execute runs one job through the engine, fanning progress out to
// every job that shares the fingerprint while it runs, and attributes
// the outcome — including how it was resolved — to the job's tenant.
func (s *Server) execute(j *job) {
	j.setRunning()
	s.fanoutAttach(j)
	r := s.eng.Run([]runner.Job{j.rjob})[0]
	s.fanoutDetach(j)
	j.runSpan.SetAttr("via", r.Via.String())
	j.runSpan.End()
	t := j.tenant
	if r.Err != nil {
		s.failed.Add(1)
		t.failed.Add(1)
		s.logger.Warn("job failed",
			"tenant", t.cfg.Name, "job", j.id, "fingerprint", j.fp, "via", r.Via.String(),
			"trace_id", j.traceID, "error", r.Err.Error())
	} else {
		s.done.Add(1)
		t.done.Add(1)
		if r.Via == runner.ViaCache {
			t.cacheHits.Add(1)
		}
		s.logger.Info("job done",
			"tenant", t.cfg.Name, "job", j.id, "fingerprint", j.fp, "via", r.Via.String(),
			"trace_id", j.traceID,
			"cycles", r.Res.Cycles, "instructions", r.Res.Instructions)
	}
	j.finish(r.Res, r.Err)
	// The duration histograms derive from the same span clock the trace
	// endpoints expose, so the two observability surfaces cannot drift.
	s.metrics.observeJob(r.Via.String(),
		j.queueSpan.EndTime().Sub(j.queueSpan.StartTime()),
		j.span.EndTime().Sub(j.span.StartTime()))
}

// fanout broadcasts core progress to the service jobs currently
// running one fingerprint.
type fanout struct {
	mu   sync.Mutex
	jobs []*job
}

func (f *fanout) add(j *job) {
	f.mu.Lock()
	f.jobs = append(f.jobs, j)
	f.mu.Unlock()
}

// parentSpan returns the first attached job's run span — the parent
// for the simulation's own spans. Reading j.runSpan here is safe: it
// is assigned before fanoutAttach publishes the job, and both the add
// and this read synchronize on f.mu.
func (f *fanout) parentSpan() *obs.ActiveSpan {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range f.jobs {
		if j.runSpan != nil {
			return j.runSpan
		}
	}
	return nil
}

// remove drops j and returns the remaining count.
func (f *fanout) remove(j *job) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, x := range f.jobs {
		if x == j {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			break
		}
	}
	return len(f.jobs)
}

// publish delivers one progress snapshot to every attached job. Called
// from the simulation goroutine: it must stay cheap and non-blocking.
func (f *fanout) publish(p core.Progress) {
	f.mu.Lock()
	for _, j := range f.jobs {
		j.progress(p)
	}
	f.mu.Unlock()
}

// job is the server-side record of one submitted simulation.
type job struct {
	id       string
	seq      int64
	priority int
	tenant   *tenantState
	req      JobRequest
	rjob     runner.Job
	fp       string

	// Tracing: span is the job's root (admission→terminal), queueSpan
	// the queue.wait child, runSpan the job.run child the simulation's
	// own spans parent under. span/queueSpan/traceID are assigned once
	// at enqueue; runSpan once in setRunning, strictly before
	// fanoutAttach publishes the job — readers reach it through the
	// fanout's mutex, so no lock is needed on the field itself.
	span      *obs.ActiveSpan
	queueSpan *obs.ActiveSpan
	runSpan   *obs.ActiveSpan
	traceID   string

	mu        sync.Mutex
	state     string
	res       stats.Results
	hasRes    bool
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	lastProg  core.Progress
	subs      map[chan Event]struct{}
	terminal  chan struct{}
}

// status snapshots the job as its wire representation.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	tenant := ""
	if j.tenant != nil {
		tenant = j.tenant.cfg.Name
	}
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Tenant:      tenant,
		Kernel:      j.req.Kernel,
		Scale:       j.rjob.EffectiveScale(),
		Seed:        j.req.Seed,
		TraceDigest: j.req.TraceDigest,
		Priority:    j.priority,
		TraceID:     j.traceID,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Error:       j.errMsg,
	}
	if j.req.TraceDigest != "" {
		st.Scale = 0
	}
	if j.hasRes {
		res := j.res
		st.Results = &res
	}
	return st
}

func (j *job) setRunning() {
	j.queueSpan.End()
	j.runSpan = j.span.StartChild("job.run")
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.broadcastLocked(Event{State: StateRunning})
	j.mu.Unlock()
}

func (j *job) finish(res stats.Results, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.span.SetAttr("error", j.errMsg)
	} else {
		j.state = StateDone
		j.res = res
		j.hasRes = true
	}
	j.span.SetAttr("state", j.state)
	close(j.terminal)
	j.mu.Unlock()
	j.span.End()
}

// progress records a snapshot and broadcasts it to subscribers.
func (j *job) progress(p core.Progress) {
	j.mu.Lock()
	j.lastProg = p
	j.broadcastLocked(Event{
		State:        StateRunning,
		Cycles:       p.Cycle,
		Instructions: p.Instructions,
		IPC:          p.IPC(),
	})
	j.mu.Unlock()
}

// broadcastLocked delivers an event to every subscriber without
// blocking: a slow events reader drops intermediate progress, never
// stalls the simulation.
func (j *job) broadcastLocked(ev Event) {
	ev.TraceID = j.traceID
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe attaches an event channel and returns it with the current
// state snapshot.
func (j *job) subscribe() (chan Event, Event) {
	ch := make(chan Event, 32)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snap := j.snapshotEventLocked()
	j.mu.Unlock()
	return ch, snap
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// snapshotEventLocked renders the job's current state as one event.
func (j *job) snapshotEventLocked() Event {
	ev := Event{State: j.state, Error: j.errMsg, TraceID: j.traceID}
	switch {
	case j.hasRes:
		ev.Cycles = j.res.Cycles
		ev.Instructions = j.res.Instructions
		ev.IPC = j.res.IPC()
	case j.lastProg.Cycle > 0:
		ev.Cycles = j.lastProg.Cycle
		ev.Instructions = j.lastProg.Instructions
		ev.IPC = j.lastProg.IPC()
	}
	return ev
}

// terminalEvent is the final NDJSON line of an events stream.
func (j *job) terminalEvent() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotEventLocked()
}

// jobHeap orders the queue by (priority desc, submission seq asc):
// deterministic pop order regardless of worker count.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

var _ http.Handler = (*Server)(nil)
