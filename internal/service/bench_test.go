package service

// BenchmarkServiceSubmitCached measures the cache-hit path of the job
// server end to end over HTTP: every timed iteration boots a FRESH
// server over a pre-warmed cache directory (so the in-memory memo is
// cold and the on-disk DiskCache — CRC verification and all — must
// serve the result), submits the job, and streams its events until
// the terminal line. This is the restart path a clusterd replica pays
// for work the fleet has already done; CI exports it into
// BENCH_pr5.json and gates regressions like the simulator benchmarks.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func BenchmarkServiceSubmitCached(b *testing.B) {
	cacheDir := b.TempDir()
	const body = `{"machine":{"clusters":"2"},"kernel":"rawcaudio"}`

	submitAndWait := func(ts *httptest.Server) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var st JobStatus
		if err := readJSON(resp, &st); err != nil {
			b.Fatal(err)
		}
		ev, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(ev.Body)
		ev.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(string(data), `"state":"done"`) {
			b.Fatalf("job %s did not reach done: %s", st.ID, data)
		}
	}

	// Warm the disk cache: the only real simulation in the benchmark.
	warm, err := New(Options{Workers: 2, CacheDir: cacheDir})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(warm.Handler())
	submitAndWait(ts)
	if warm.Engine().Executed() != 1 {
		b.Fatalf("warmup executed %d simulations, want 1", warm.Engine().Executed())
	}
	ts.Close()
	warm.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Options{Workers: 2, CacheDir: cacheDir})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		submitAndWait(ts)
		ts.Close()
		s.Close()
		if ex := s.Engine().Executed(); ex != 0 {
			b.Fatalf("iteration executed %d simulations, want 0 (disk cache must serve the submission)", ex)
		}
	}
}

func readJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
