// Package cache models the memory hierarchy of the paper's Table 1: split
// 64KB 2-way L1 instruction and data caches with 32-byte lines and 1-cycle
// hits, a unified 256KB 4-way L2 with 64-byte lines and 6-cycle hits, and
// a main memory reached over a bus with an 18-cycle first chunk and
// 2-cycle inter-chunk latency.
//
// The model is a latency oracle: Access(addr) returns the number of cycles
// until the data is available and updates LRU/tag state. Port contention
// on the L1 D-cache (3 read/write ports) is enforced by the issue stage in
// internal/core, not here.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line (block) size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitLatency is the access time on a hit, in cycles.
	HitLatency int
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
//
// The per-set state is stored flat (set s occupies [s*Assoc, (s+1)*Assoc)
// of each array) rather than as per-set slices: a 1024-set cache is three
// allocations instead of ~3000, constructing the default hierarchy stops
// dominating cold-path allocation profiles, and way scans walk contiguous
// memory.
type Cache struct {
	cfg     Config
	sets    int
	setMask uint64
	lineSh  uint
	// tags[set*Assoc+way]; lru holds recency (higher = more recent).
	tags  []uint64
	valid []bool
	lru   []uint64
	clock uint64

	// Stats.
	Accesses uint64
	Misses   uint64
}

// New builds a cache from cfg; it panics on invalid geometry (a
// configuration bug, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &Cache{cfg: cfg, sets: sets, setMask: uint64(sets - 1)}
	for sh := cfg.LineBytes; sh > 1; sh >>= 1 {
		c.lineSh++
	}
	c.tags = make([]uint64, sets*cfg.Assoc)
	c.valid = make([]bool, sets*cfg.Assoc)
	c.lru = make([]uint64, sets*cfg.Assoc)
	return c
}

// Reset returns the cache to its freshly constructed state — every line
// invalid, LRU clock and statistics zeroed — without reallocating the
// backing arrays, so a pooled simulator can rebind to a new run at
// memclr cost instead of rebuilding thousands of per-set slices.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.valid {
		c.valid[i] = false
	}
	for i := range c.lru {
		c.lru[i] = 0
	}
	c.clock = 0
	c.Accesses = 0
	c.Misses = 0
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Probe reports whether addr currently hits, without changing state.
func (c *Cache) Probe(addr uint64) bool {
	set := (addr >> c.lineSh) & c.setMask
	tag := addr >> c.lineSh
	base := int(set) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Lookup accesses addr, updating LRU and filling on miss. It returns true
// on a hit.
func (c *Cache) Lookup(addr uint64) bool {
	c.Accesses++
	c.clock++
	set := (addr >> c.lineSh) & c.setMask
	tag := addr >> c.lineSh
	base := int(set) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.lru[base+w] = c.clock
			return true
		}
	}
	c.Misses++
	// Fill the LRU way.
	victim := 0
	for w := 1; w < c.cfg.Assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	if !c.valid[base+victim] {
		// Prefer any invalid way over the LRU valid one.
		for w := 0; w < c.cfg.Assoc; w++ {
			if !c.valid[base+w] {
				victim = w
				break
			}
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.lru[base+victim] = c.clock
	return false
}

// MissRatio returns misses/accesses (0 when idle).
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// MemoryConfig models the main-memory bus: FirstChunk cycles for the
// first ChunkBytes of a line, InterChunk cycles for each additional chunk.
type MemoryConfig struct {
	FirstChunk int
	InterChunk int
	ChunkBytes int
}

// Latency returns the cycles to transfer lineBytes from memory.
func (m MemoryConfig) Latency(lineBytes int) int {
	if m.ChunkBytes <= 0 {
		return m.FirstChunk
	}
	chunks := (lineBytes + m.ChunkBytes - 1) / m.ChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	return m.FirstChunk + (chunks-1)*m.InterChunk
}

// Hierarchy bundles L1I, L1D, L2 and memory into the latency oracle used
// by the timing core.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem MemoryConfig
}

// Reset rewinds all three levels to cold state without reallocating
// (see Cache.Reset); the memory bus config is stateless.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}

// DefaultHierarchy returns the paper's Table 1 hierarchy.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: New(Config{Name: "L1I", SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 2, HitLatency: 1}),
		L1D: New(Config{Name: "L1D", SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 2, HitLatency: 1}),
		L2:  New(Config{Name: "L2", SizeBytes: 256 * 1024, LineBytes: 64, Assoc: 4, HitLatency: 6}),
		Mem: MemoryConfig{FirstChunk: 18, InterChunk: 2, ChunkBytes: 8},
	}
}

// InstAccess returns the latency in cycles to fetch the instruction line
// at byte address addr.
func (h *Hierarchy) InstAccess(addr uint64) int {
	if h.L1I.Lookup(addr) {
		return h.L1I.Config().HitLatency
	}
	return h.L1I.Config().HitLatency + h.l2Access(addr)
}

// DataAccess returns the latency in cycles to load the data at byte
// address addr (stores use the same path for line allocation).
func (h *Hierarchy) DataAccess(addr uint64) int {
	if h.L1D.Lookup(addr) {
		return h.L1D.Config().HitLatency
	}
	return h.L1D.Config().HitLatency + h.l2Access(addr)
}

func (h *Hierarchy) l2Access(addr uint64) int {
	if h.L2.Lookup(addr) {
		return h.L2.Config().HitLatency
	}
	return h.L2.Config().HitLatency + h.Mem.Latency(h.L2.Config().LineBytes)
}

// Perfect reports a hierarchy where every access hits in L1 (used by
// tests and idealized-configuration ablations).
type Perfect struct{ Lat int }

// InstAccess returns the fixed latency.
func (p Perfect) InstAccess(uint64) int { return p.Lat }

// DataAccess returns the fixed latency.
func (p Perfect) DataAccess(uint64) int { return p.Lat }

// Oracle is the interface internal/core consumes, satisfied by both
// Hierarchy and Perfect.
type Oracle interface {
	InstAccess(addr uint64) int
	DataAccess(addr uint64) int
}

var (
	_ Oracle = (*Hierarchy)(nil)
	_ Oracle = Perfect{}
)
