package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "c", SizeBytes: 64 * 1024, LineBytes: 32, Assoc: 2, HitLatency: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "odd", SizeBytes: 3000, LineBytes: 32, Assoc: 2},
		{Name: "line", SizeBytes: 64 * 1024, LineBytes: 33, Assoc: 2},
		{Name: "sets", SizeBytes: 96 * 1024, LineBytes: 32, Assoc: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s should be invalid", c.Name)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1})
	if c.Lookup(0x100) {
		t.Error("cold access must miss")
	}
	if !c.Lookup(0x100) {
		t.Error("second access must hit")
	}
	if !c.Lookup(0x11F) {
		t.Error("same line must hit")
	}
	if c.Lookup(0x120) {
		t.Error("next line must miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats = %d/%d, want 2/4", c.Misses, c.Accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 32B lines, 2 sets => set stride 64.
	c := New(Config{Name: "t", SizeBytes: 128, LineBytes: 32, Assoc: 2, HitLatency: 1})
	a, b, d := uint64(0), uint64(64), uint64(128) // all map to set 0
	c.Lookup(a)
	c.Lookup(b)
	c.Lookup(a) // a most recent
	c.Lookup(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a should survive")
	}
	if c.Probe(b) {
		t.Error("b should be evicted")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 128, LineBytes: 32, Assoc: 2, HitLatency: 1})
	c.Lookup(0)
	c.Lookup(64)
	c.Probe(0)    // must NOT refresh LRU of 0
	c.Lookup(128) // should evict 0 (older than 64)
	if c.Probe(0) {
		t.Error("probe must not update recency")
	}
	if !c.Probe(64) {
		t.Error("64 should survive")
	}
}

func TestMemoryLatency(t *testing.T) {
	m := MemoryConfig{FirstChunk: 18, InterChunk: 2, ChunkBytes: 8}
	if got := m.Latency(64); got != 18+7*2 {
		t.Errorf("64B line latency = %d, want 32", got)
	}
	if got := m.Latency(8); got != 18 {
		t.Errorf("8B latency = %d, want 18", got)
	}
	if got := m.Latency(1); got != 18 {
		t.Errorf("1B latency = %d, want 18", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	// Cold: L1 miss + L2 miss + memory.
	want := 1 + 6 + (18 + 7*2)
	if got := h.DataAccess(0x4000); got != want {
		t.Errorf("cold data access = %d, want %d", got, want)
	}
	// Warm L1.
	if got := h.DataAccess(0x4000); got != 1 {
		t.Errorf("warm data access = %d, want 1", got)
	}
	// Same L2 line, different L1 line: 64B L2 line covers two 32B L1 lines.
	if got := h.DataAccess(0x4020); got != 1+6 {
		t.Errorf("L2-hit access = %d, want 7", got)
	}
	// Instruction path: its own L1, but the L2 is unified, so the L2 line
	// filled by the data access above is an L2 hit for instructions.
	if got := h.InstAccess(0x4000); got != 1+6 {
		t.Errorf("inst access after data fill = %d, want 7 (L1I miss, L2 hit)", got)
	}
	// A cold address on the instruction path pays the full memory trip.
	if got := h.InstAccess(0x8000); got != want {
		t.Errorf("cold inst access = %d, want %d", got, want)
	}
}

func TestPerfectOracle(t *testing.T) {
	p := Perfect{Lat: 1}
	if p.InstAccess(123) != 1 || p.DataAccess(456) != 1 {
		t.Error("perfect oracle must return fixed latency")
	}
}

func TestMissRatio(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1})
	if c.MissRatio() != 0 {
		t.Error("idle cache must report 0")
	}
	c.Lookup(0)
	c.Lookup(0)
	if got := c.MissRatio(); got != 0.5 {
		t.Errorf("miss ratio = %v, want 0.5", got)
	}
}

// Property: after Lookup(a), Probe(a) always hits (inclusion of the just
// accessed line).
func TestLookupThenProbeProperty(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 4096, LineBytes: 32, Assoc: 4, HitLatency: 1})
	f := func(addr uint32) bool {
		a := uint64(addr)
		c.Lookup(a)
		return c.Probe(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a direct sweep of more lines than capacity evicts the first
// line (no phantom retention).
func TestCapacityEviction(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1})
	c.Lookup(0)
	for a := uint64(32); a < 4096; a += 32 {
		c.Lookup(a)
	}
	if c.Probe(0) {
		t.Error("line 0 should have been evicted by the sweep")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid config")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, LineBytes: 32, Assoc: 2})
}
