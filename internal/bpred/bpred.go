// Package bpred implements the branch predictors from the paper's Table 1:
// a combined (tournament) predictor with a gshare component of 64K 2-bit
// counters and 16-bit global history, a bimodal component of 2K 2-bit
// counters, and a 1K-entry chooser. A return-address stack and a simple
// BTB cover indirect jumps.
//
// The timing simulator queries Predict at fetch and calls Update at branch
// resolution (writeback), mirroring SimpleScalar's bpred module that the
// paper's infrastructure extends.
package bpred

import "clustervp/internal/isa"

// Counter2 is a 2-bit saturating counter. Values 2 and 3 predict taken.
type Counter2 uint8

// Inc saturates at 3.
func (c Counter2) Inc() Counter2 {
	if c < 3 {
		return c + 1
	}
	return c
}

// Dec saturates at 0.
func (c Counter2) Dec() Counter2 {
	if c > 0 {
		return c - 1
	}
	return c
}

// Taken reports the counter's prediction.
func (c Counter2) Taken() bool { return c >= 2 }

// Predictor is the interface the fetch stage uses.
type Predictor interface {
	// Predict returns the predicted direction for the conditional branch
	// at pc. Unconditional branches are always taken and need not be
	// predicted.
	Predict(pc int) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc int, taken bool)
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []Counter2
	mask  int
}

// NewBimodal builds a bimodal predictor with the given number of entries
// (must be a power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: bimodal entries must be a positive power of two")
	}
	t := make([]Counter2, entries)
	for i := range t {
		t[i] = 2 // weakly taken, SimpleScalar default
	}
	return &Bimodal{table: t, mask: entries - 1}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc int) bool { return b.table[pc&b.mask].Taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc int, taken bool) {
	i := pc & b.mask
	if taken {
		b.table[i] = b.table[i].Inc()
	} else {
		b.table[i] = b.table[i].Dec()
	}
}

// Gshare is a global-history predictor: the PC is XORed with the global
// history register to index a table of 2-bit counters.
type Gshare struct {
	table    []Counter2
	mask     int
	history  uint32
	histBits uint
}

// NewGshare builds a gshare predictor with the given table size (power of
// two) and history length in bits.
func NewGshare(entries int, histBits uint) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	t := make([]Counter2, entries)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: entries - 1, histBits: histBits}
}

func (g *Gshare) index(pc int) int {
	return (pc ^ int(g.history)) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc int) bool { return g.table[g.index(pc)].Taken() }

// Update implements Predictor and shifts the outcome into the global
// history register.
func (g *Gshare) Update(pc int, taken bool) {
	i := g.index(pc)
	if taken {
		g.table[i] = g.table[i].Inc()
	} else {
		g.table[i] = g.table[i].Dec()
	}
	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
}

// History returns the current global history register (for tests).
func (g *Gshare) History() uint32 { return g.history }

// Combined is the paper's tournament predictor: a chooser table of 2-bit
// counters selects between the gshare and bimodal components per branch.
// Chooser counters >= 2 select gshare.
type Combined struct {
	gshare  *Gshare
	bimodal *Bimodal
	chooser []Counter2
	mask    int
}

// NewCombined builds the Table 1 predictor: chooserEntries of 2-bit
// counters selecting between gshare(gshareEntries, histBits) and
// bimodal(bimodalEntries).
func NewCombined(chooserEntries, gshareEntries int, histBits uint, bimodalEntries int) *Combined {
	if chooserEntries <= 0 || chooserEntries&(chooserEntries-1) != 0 {
		panic("bpred: chooser entries must be a positive power of two")
	}
	ch := make([]Counter2, chooserEntries)
	for i := range ch {
		ch[i] = 2
	}
	return &Combined{
		gshare:  NewGshare(gshareEntries, histBits),
		bimodal: NewBimodal(bimodalEntries),
		chooser: ch,
		mask:    chooserEntries - 1,
	}
}

// NewPaperCombined builds the exact Table 1 configuration: 1K chooser,
// gshare with 64K counters and 16-bit history, bimodal with 2K counters.
func NewPaperCombined() *Combined {
	return NewCombined(1024, 64*1024, 16, 2048)
}

// Predict implements Predictor.
func (c *Combined) Predict(pc int) bool {
	if c.chooser[pc&c.mask].Taken() {
		return c.gshare.Predict(pc)
	}
	return c.bimodal.Predict(pc)
}

// Update trains both components and the chooser (toward whichever
// component was correct when they disagree).
func (c *Combined) Update(pc int, taken bool) {
	g := c.gshare.Predict(pc)
	b := c.bimodal.Predict(pc)
	if g != b {
		i := pc & c.mask
		if g == taken {
			c.chooser[i] = c.chooser[i].Inc()
		} else {
			c.chooser[i] = c.chooser[i].Dec()
		}
	}
	c.gshare.Update(pc, taken)
	c.bimodal.Update(pc, taken)
}

// Static always predicts a fixed direction; used for the "no branch
// predictor" ablation and as a degenerate baseline in tests.
type Static struct{ TakenAlways bool }

// Predict implements Predictor.
func (s Static) Predict(int) bool { return s.TakenAlways }

// Update implements Predictor (no state).
func (s Static) Update(int, bool) {}

// RAS is a return-address stack for predicting JR returns.
type RAS struct {
	stack []int
	max   int
}

// NewRAS builds a return-address stack with the given depth.
func NewRAS(depth int) *RAS { return &RAS{max: depth} }

// Push records a call's return address.
func (r *RAS) Push(pc int) {
	if len(r.stack) == r.max {
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = pc
		return
	}
	r.stack = append(r.stack, pc)
}

// Pop predicts the return target; ok is false when the stack is empty.
func (r *RAS) Pop() (pc int, ok bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	pc = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return pc, true
}

// Depth returns the current number of entries.
func (r *RAS) Depth() int { return len(r.stack) }

// BTB is a direct-mapped branch target buffer used for indirect jumps
// that are not returns.
type BTB struct {
	tags    []int
	targets []int
	mask    int
}

// NewBTB builds a BTB with the given number of entries (power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: BTB entries must be a positive power of two")
	}
	t := make([]int, entries)
	for i := range t {
		t[i] = -1
	}
	return &BTB{tags: t, targets: make([]int, entries), mask: entries - 1}
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	i := pc & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert records the observed target of the branch at pc.
func (b *BTB) Insert(pc, target int) {
	i := pc & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// Unit bundles the direction predictor, RAS and BTB, and applies the
// per-opcode policy the fetch stage needs: conditional branches use the
// direction predictor with the statically known target; J/JAL are always
// taken; JR consults the RAS (returns) or BTB (other indirect jumps).
type Unit struct {
	Dir Predictor
	Ras *RAS
	Btb *BTB

	// Statistics.
	CondSeen, CondHit     uint64
	TargetSeen, TargetHit uint64
}

// NewUnit builds the paper's full front-end predictor with the given
// direction predictor.
func NewUnit(dir Predictor) *Unit {
	return &Unit{Dir: dir, Ras: NewRAS(32), Btb: NewBTB(512)}
}

// PredictNext returns the predicted next PC for the branch in at pc, and
// whether it is predicted taken.
func (u *Unit) PredictNext(pc int, in isa.Inst) (next int, taken bool) {
	info := isa.InfoFor(in.Op)
	switch {
	case info.IsCall:
		u.Ras.Push(pc + 1)
		return in.Target, true
	case info.IsReturn:
		if t, ok := u.Ras.Pop(); ok {
			return t, true
		}
		if t, ok := u.Btb.Lookup(pc); ok {
			return t, true
		}
		return pc + 1, true
	case info.IsIndirect:
		if t, ok := u.Btb.Lookup(pc); ok {
			return t, true
		}
		return pc + 1, true
	case info.IsCondBranch:
		if u.Dir.Predict(pc) {
			return in.Target, true
		}
		return pc + 1, false
	default: // J
		return in.Target, true
	}
}

// Resolve trains the unit with the actual outcome and reports whether the
// earlier prediction (predNext) was correct.
func (u *Unit) Resolve(pc int, in isa.Inst, actualNext int, actualTaken bool, predNext int) bool {
	info := isa.InfoFor(in.Op)
	correct := predNext == actualNext
	if info.IsCondBranch {
		u.CondSeen++
		if correct {
			u.CondHit++
		}
		u.Dir.Update(pc, actualTaken)
	} else {
		u.TargetSeen++
		if correct {
			u.TargetHit++
		}
		if info.IsIndirect {
			u.Btb.Insert(pc, actualNext)
		}
	}
	return correct
}

// Accuracy returns the overall prediction accuracy across conditional and
// indirect control transfers seen so far (1.0 when nothing was seen).
func (u *Unit) Accuracy() float64 {
	seen := u.CondSeen + u.TargetSeen
	if seen == 0 {
		return 1.0
	}
	return float64(u.CondHit+u.TargetHit) / float64(seen)
}
