package bpred

import (
	"testing"
	"testing/quick"

	"clustervp/internal/isa"
)

func TestCounter2Saturation(t *testing.T) {
	c := Counter2(0)
	if c.Dec() != 0 {
		t.Error("Dec must saturate at 0")
	}
	for i := 0; i < 10; i++ {
		c = c.Inc()
	}
	if c != 3 {
		t.Errorf("Inc must saturate at 3, got %d", c)
	}
	if !c.Taken() || Counter2(1).Taken() {
		t.Error("Taken threshold wrong")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(2048)
	for i := 0; i < 10; i++ {
		b.Update(100, false)
	}
	if b.Predict(100) {
		t.Error("bimodal should learn not-taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(100, true)
	}
	if !b.Predict(100) {
		t.Error("bimodal should re-learn taken bias")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A strictly alternating branch is 50% for bimodal but ~100% for a
	// history-based predictor once warmed up.
	g := NewGshare(64*1024, 16)
	taken := false
	warm := 200
	hits := 0
	for i := 0; i < 1000; i++ {
		p := g.Predict(77)
		if i >= warm && p == taken {
			hits++
		}
		g.Update(77, taken)
		taken = !taken
	}
	if hits < 750 {
		t.Errorf("gshare alternation hits = %d/800, want >= 750", hits)
	}
}

func TestGshareHistoryMask(t *testing.T) {
	g := NewGshare(1024, 4)
	for i := 0; i < 32; i++ {
		g.Update(1, true)
	}
	if g.History() != 0xF {
		t.Errorf("history = %#x, want 0xF (4-bit mask)", g.History())
	}
}

func TestCombinedBeatsComponentsOnMixedWorkload(t *testing.T) {
	// Branch A is strongly biased (bimodal-friendly); branch B alternates
	// (gshare-friendly). The combined predictor should track both.
	c := NewPaperCombined()
	taken := false
	hits, total := 0, 0
	for i := 0; i < 4000; i++ {
		// Biased branch at pc=11.
		p := c.Predict(11)
		if i > 500 {
			total++
			if p == true {
				hits++
			}
		}
		c.Update(11, true)
		// Alternating branch at pc=22.
		p = c.Predict(22)
		if i > 500 {
			total++
			if p == taken {
				hits++
			}
		}
		c.Update(22, taken)
		taken = !taken
	}
	acc := float64(hits) / float64(total)
	if acc < 0.95 {
		t.Errorf("combined accuracy on mixed workload = %.3f, want >= 0.95", acc)
	}
}

func TestPowerOfTwoPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(3) },
		func() { NewGshare(100, 4) },
		func() { NewCombined(3, 4, 2, 4) },
		func() { NewBTB(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for non-power-of-two size")
				}
			}()
			f()
		}()
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 3; i++ {
		r.Push(i * 10)
	}
	for want := 30; want >= 10; want -= 10 {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must report !ok")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("top = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("second = %d, want 2", v)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(512)
	if _, ok := b.Lookup(42); ok {
		t.Error("empty BTB must miss")
	}
	b.Insert(42, 1000)
	if tgt, ok := b.Lookup(42); !ok || tgt != 1000 {
		t.Errorf("lookup = %d,%v", tgt, ok)
	}
	// Conflicting entry evicts.
	b.Insert(42+512, 2000)
	if _, ok := b.Lookup(42); ok {
		t.Error("conflicting insert should evict")
	}
}

func TestUnitCallReturn(t *testing.T) {
	u := NewUnit(NewPaperCombined())
	call := isa.Inst{Op: isa.JAL, Rd: isa.RA, Target: 100}
	next, taken := u.PredictNext(5, call)
	if next != 100 || !taken {
		t.Errorf("call prediction = %d,%v", next, taken)
	}
	ret := isa.Inst{Op: isa.JR, Ra: isa.RA}
	next, _ = u.PredictNext(120, ret)
	if next != 6 {
		t.Errorf("return prediction = %d, want 6", next)
	}
}

func TestUnitIndirectUsesBTBAfterResolve(t *testing.T) {
	u := NewUnit(NewPaperCombined())
	jr := isa.Inst{Op: isa.JR, Ra: isa.R5}
	// First time: no info, fall-through guess, wrong.
	next, _ := u.PredictNext(50, jr)
	if next != 51 {
		t.Errorf("cold indirect prediction = %d, want 51", next)
	}
	if u.Resolve(50, jr, 300, true, next) {
		t.Error("cold prediction should be wrong")
	}
	// RAS is empty (no call), so BTB should now supply the target.
	next, _ = u.PredictNext(50, jr)
	if next != 300 {
		t.Errorf("warm indirect prediction = %d, want 300", next)
	}
}

func TestUnitAccuracyAccounting(t *testing.T) {
	u := NewUnit(Static{TakenAlways: true})
	br := isa.Inst{Op: isa.BEQ, Ra: isa.R1, Rb: isa.R2, Target: 9}
	next, _ := u.PredictNext(3, br)
	u.Resolve(3, br, 9, true, next)  // correct
	u.Resolve(3, br, 4, false, next) // wrong
	if u.CondSeen != 2 || u.CondHit != 1 {
		t.Errorf("cond stats = %d/%d", u.CondHit, u.CondSeen)
	}
	if acc := u.Accuracy(); acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
}

func TestEmptyUnitAccuracyIsOne(t *testing.T) {
	u := NewUnit(Static{})
	if u.Accuracy() != 1.0 {
		t.Error("accuracy with no branches must be 1.0")
	}
}

// Property: counters stay in [0,3] under arbitrary update sequences.
func TestCounterRangeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := Counter2(0)
		for _, up := range ops {
			if up {
				c = c.Inc()
			} else {
				c = c.Dec()
			}
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bimodal prediction equals majority bias after sustained
// training in one direction.
func TestBimodalConvergenceProperty(t *testing.T) {
	f := func(pc uint16, dir bool) bool {
		b := NewBimodal(2048)
		for i := 0; i < 4; i++ {
			b.Update(int(pc), dir)
		}
		return b.Predict(int(pc)) == dir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
