package isa

import (
	"testing"
	"testing/quick"
)

func TestRegIDString(t *testing.T) {
	cases := []struct {
		r    RegID
		want string
	}{
		{R0, "r0"}, {R1, "r1"}, {R29, "r29"}, {SP, "sp"}, {RA, "ra"},
		{F0, "f0"}, {F31, "f31"}, {RegID(200), "reg?200"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("RegID(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegIDClassification(t *testing.T) {
	if R5.IsFP() {
		t.Error("R5 should not be FP")
	}
	if !F3.IsFP() {
		t.Error("F3 should be FP")
	}
	if !R0.Valid() || !F31.Valid() {
		t.Error("architectural registers must be valid")
	}
	if NoReg.Valid() {
		t.Error("NoReg must be invalid")
	}
}

func TestEveryOpcodeHasNameAndInfo(t *testing.T) {
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' && op.String()[2] == '?' {
			t.Errorf("opcode %d has no name", op)
		}
		info := InfoFor(op)
		if op != NOP && op != HALT && info.Class == ClassNone {
			t.Errorf("%v: has no FU class", op)
		}
		if info.Latency <= 0 {
			t.Errorf("%v: non-positive latency %d", op, info.Latency)
		}
	}
}

func TestInfoConsistency(t *testing.T) {
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		info := InfoFor(op)
		if info.IsCondBranch && !info.IsBranch {
			t.Errorf("%v: IsCondBranch implies IsBranch", op)
		}
		if info.IsLoad && info.IsStore {
			t.Errorf("%v: cannot be both load and store", op)
		}
		if (info.IsLoad || info.IsStore) && info.Class != ClassMem {
			t.Errorf("%v: memory op must use ClassMem", op)
		}
		if info.IsLoad && !info.HasDest {
			t.Errorf("%v: load must have destination", op)
		}
		if info.IsStore && info.HasDest {
			t.Errorf("%v: store must not have destination", op)
		}
		if !info.Pipelined && info.Class != ClassIntMulDiv && info.Class != ClassFPMulDiv {
			t.Errorf("%v: only divide units are non-pipelined", op)
		}
	}
}

func TestFUClassLatencies(t *testing.T) {
	// The latencies the paper inherits from SimpleScalar defaults.
	checks := map[Opcode]int{
		ADD: 1, MUL: 3, DIV: 20, FADD: 2, FMUL: 4, FDIV: 12, LW: 1,
	}
	for op, want := range checks {
		if got := InfoFor(op).Latency; got != want {
			t.Errorf("%v latency = %d, want %d", op, got, want)
		}
	}
}

func TestSourcesAndDest(t *testing.T) {
	add := Inst{Op: ADD, Rd: R1, Ra: R2, Rb: R3}
	if s := add.Sources(); len(s) != 2 || s[0] != R2 || s[1] != R3 {
		t.Errorf("ADD sources = %v", s)
	}
	if d, ok := add.Dest(); !ok || d != R1 {
		t.Errorf("ADD dest = %v, %v", d, ok)
	}
	sw := Inst{Op: SW, Ra: R4, Rb: R5, Imm: 8}
	if s := sw.Sources(); len(s) != 2 || s[0] != R4 || s[1] != R5 {
		t.Errorf("SW sources = %v", s)
	}
	if _, ok := sw.Dest(); ok {
		t.Error("SW must have no dest")
	}
	li := Inst{Op: LI, Rd: R6, Imm: 42}
	if s := li.Sources(); len(s) != 0 {
		t.Errorf("LI sources = %v", s)
	}
	j := Inst{Op: J, Target: 7}
	if s := j.Sources(); len(s) != 0 {
		t.Errorf("J sources = %v", s)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: LI, Rd: R3, Imm: -5}, "li r3, -5"},
		{Inst{Op: LW, Rd: R1, Ra: R2, Imm: 16}, "lw r1, 16(r2)"},
		{Inst{Op: SW, Ra: R2, Rb: R7, Imm: 8}, "sw r7, 8(r2)"},
		{Inst{Op: BEQ, Ra: R1, Rb: R2, Target: 12}, "beq r1, r2, @12"},
		{Inst{Op: ADD, Rd: R1, Ra: R2, Rb: R3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: R1, Ra: R2, Imm: 4}, "addi r1, r2, 4"},
		{Inst{Op: JR, Ra: RA}, "jr ra"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassIntALU, ClassIntMulDiv, ClassMem, ClassFPALU, ClassFPMulDiv} {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if !ClassFPALU.IsFP() || !ClassFPMulDiv.IsFP() {
		t.Error("FP classes must report IsFP")
	}
	if ClassIntALU.IsFP() || ClassMem.IsFP() {
		t.Error("integer classes must not report IsFP")
	}
}

// Property: String never panics and is non-empty for any register value.
func TestRegStringTotal(t *testing.T) {
	f := func(b uint8) bool { return RegID(b).String() != "" }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
