// Package isa defines the virtual RISC instruction set used by the
// clustervp simulator.
//
// The ISA is a 64-bit load/store architecture in the spirit of the Alpha
// AXP used by the paper: 32 integer registers (R0 hardwired to zero), 32
// floating-point registers, word-addressed instruction memory (every
// instruction is 4 bytes for cache purposes) and byte-addressed data
// memory. It is deliberately small — just enough to express the
// MediaBench-like workload kernels — but complete: integer ALU,
// multiply/divide, loads/stores, conditional branches, jumps, calls, and a
// floating-point set, so the timing simulator exercises every functional
// unit class in the paper's Table 1.
package isa

import "fmt"

// RegID names an architectural register. Integer registers are 0..31,
// floating-point registers are 32..63 (F0..F31).
type RegID uint8

// NumIntRegs and NumFPRegs are the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
)

// Integer register aliases. R0 always reads as zero; writes are discarded.
const (
	R0 RegID = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	// SP is the conventional stack pointer (R30).
	SP
	// RA is the conventional return-address register (R31).
	RA
)

// Floating-point register aliases.
const (
	F0 RegID = NumIntRegs + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// IsFP reports whether r is a floating-point register.
func (r RegID) IsFP() bool { return r >= NumIntRegs }

// Valid reports whether r names an existing architectural register.
func (r RegID) Valid() bool { return r < NumRegs }

// String returns the assembly name of the register (r0..r29, sp, ra,
// f0..f31).
func (r RegID) String() string {
	switch {
	case r == SP:
		return "sp"
	case r == RA:
		return "ra"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", uint8(r))
	case r < NumRegs:
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Opcode enumerates the operations of the virtual ISA.
type Opcode uint8

const (
	// NOP does nothing.
	NOP Opcode = iota

	// Integer ALU (latency 1).
	ADD  // rd = ra + rb
	SUB  // rd = ra - rb
	AND  // rd = ra & rb
	OR   // rd = ra | rb
	XOR  // rd = ra ^ rb
	SLL  // rd = ra << (rb & 63)
	SRL  // rd = uint64(ra) >> (rb & 63)
	SRA  // rd = ra >> (rb & 63) (arithmetic)
	SLT  // rd = 1 if ra < rb (signed) else 0
	SLTU // rd = 1 if ra < rb (unsigned) else 0

	// Integer ALU with immediate (latency 1).
	ADDI // rd = ra + imm
	ANDI // rd = ra & imm
	ORI  // rd = ra | imm
	XORI // rd = ra ^ imm
	SLLI // rd = ra << imm
	SRLI // rd = uint64(ra) >> imm
	SRAI // rd = ra >> imm (arithmetic)
	SLTI // rd = 1 if ra < imm else 0
	LI   // rd = imm

	// Integer multiply/divide (IntMulDiv units).
	MUL // rd = ra * rb (latency 3)
	DIV // rd = ra / rb (latency 20, non-pipelined); 0 divisor yields 0
	REM // rd = ra % rb (latency 20, non-pipelined); 0 divisor yields ra

	// Memory (address = ra + imm).
	LW  // rd = mem64[ra+imm]
	SW  // mem64[ra+imm] = rb
	LB  // rd = sign-extended mem8[ra+imm]
	SB  // mem8[ra+imm] = low byte of rb
	FLW // fd = mem64[ra+imm] interpreted as float64 bits
	FSW // mem64[ra+imm] = float64 bits of fb

	// Control. Branch targets are absolute instruction indices resolved by
	// the assembler.
	BEQ  // if ra == rb goto target
	BNE  // if ra != rb goto target
	BLT  // if ra < rb (signed) goto target
	BGE  // if ra >= rb (signed) goto target
	BLTU // if ra < rb (unsigned) goto target
	BGEU // if ra >= rb (unsigned) goto target
	J    // goto target
	JAL  // rd = return address; goto target (call)
	JR   // goto ra (indirect jump / return)

	// Floating point.
	FADD  // fd = fa + fb (latency 2)
	FSUB  // fd = fa - fb (latency 2)
	FMUL  // fd = fa * fb (latency 4)
	FDIV  // fd = fa / fb (latency 12, non-pipelined)
	FNEG  // fd = -fa (latency 2)
	FABS  // fd = |fa| (latency 2)
	FMOV  // fd = fa (latency 2)
	FLI   // fd = float immediate (latency 1)
	CVTIF // fd = float64(ra) (latency 2)
	CVTFI // rd = int64(fa) (latency 2)
	FLT   // rd = 1 if fa < fb else 0 (latency 2)
	FLE   // rd = 1 if fa <= fb else 0 (latency 2)
	FEQ   // rd = 1 if fa == fb else 0 (latency 2)

	// HALT terminates the program.
	HALT

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LI: "li",
	MUL: "mul", DIV: "div", REM: "rem",
	LW: "lw", SW: "sw", LB: "lb", SB: "sb", FLW: "flw", FSW: "fsw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	J: "j", JAL: "jal", JR: "jr",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FNEG: "fneg", FABS: "fabs", FMOV: "fmov", FLI: "fli",
	CVTIF: "cvtif", CVTFI: "cvtfi", FLT: "flt", FLE: "fle", FEQ: "feq",
	HALT: "halt",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Class groups opcodes by the functional-unit class that executes them,
// matching the paper's Table 1 FU inventory.
type Class uint8

const (
	// ClassNone is used by NOP and HALT, which consume no FU.
	ClassNone Class = iota
	// ClassIntALU executes single-cycle integer ops and branches.
	ClassIntALU
	// ClassIntMulDiv executes MUL/DIV/REM on the subset of integer units
	// that include a multiplier/divider.
	ClassIntMulDiv
	// ClassMem executes loads and stores (address generation on an integer
	// unit plus a D-cache port).
	ClassMem
	// ClassFPALU executes FP add/sub/convert/compare.
	ClassFPALU
	// ClassFPMulDiv executes FMUL/FDIV on FP units that include mul/div.
	ClassFPMulDiv
)

// String returns a readable FU class name.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassIntALU:
		return "intalu"
	case ClassIntMulDiv:
		return "intmuldiv"
	case ClassMem:
		return "mem"
	case ClassFPALU:
		return "fpalu"
	case ClassFPMulDiv:
		return "fpmuldiv"
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// IsFP reports whether the class issues through the floating-point issue
// ports (FP ALU and FP mul/div).
func (c Class) IsFP() bool { return c == ClassFPALU || c == ClassFPMulDiv }

// Inst is one static instruction. The assembler produces a flat []Inst;
// the PC of an instruction is its index, and its byte address (for the
// instruction cache) is index*4.
type Inst struct {
	Op Opcode
	// Rd is the destination register (NoReg if none).
	Rd RegID
	// Ra and Rb are source registers (NoReg if unused).
	Ra, Rb RegID
	// Imm is the integer immediate / address displacement.
	Imm int64
	// FImm is the floating immediate for FLI.
	FImm float64
	// Target is the absolute instruction index for branch/jump targets.
	Target int
}

// NoReg marks an unused register slot.
const NoReg RegID = 0xFF

// Info describes the static properties of an opcode that both the
// functional executor and the timing simulator need.
type Info struct {
	Class Class
	// Latency is the execution latency in cycles (loads: address
	// generation only; the cache access is added by the memory model).
	Latency int
	// Pipelined is false for the iterative divide units.
	Pipelined bool
	// HasDest, NumSrc describe register usage.
	HasDest bool
	NumSrc  int
	// IsBranch covers conditional branches and jumps; IsCondBranch only
	// the former. IsLoad/IsStore flag memory ops. IsCall/IsReturn guide
	// the return-address-stack predictor.
	IsBranch     bool
	IsCondBranch bool
	IsIndirect   bool
	IsLoad       bool
	IsStore      bool
	IsCall       bool
	IsReturn     bool
}

var infos [NumOpcodes]Info

func init() {
	alu := Info{Class: ClassIntALU, Latency: 1, Pipelined: true, HasDest: true, NumSrc: 2}
	alui := Info{Class: ClassIntALU, Latency: 1, Pipelined: true, HasDest: true, NumSrc: 1}
	for _, op := range []Opcode{ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU} {
		infos[op] = alu
	}
	for _, op := range []Opcode{ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI} {
		infos[op] = alui
	}
	infos[LI] = Info{Class: ClassIntALU, Latency: 1, Pipelined: true, HasDest: true}
	infos[MUL] = Info{Class: ClassIntMulDiv, Latency: 3, Pipelined: true, HasDest: true, NumSrc: 2}
	infos[DIV] = Info{Class: ClassIntMulDiv, Latency: 20, HasDest: true, NumSrc: 2}
	infos[REM] = Info{Class: ClassIntMulDiv, Latency: 20, HasDest: true, NumSrc: 2}

	infos[LW] = Info{Class: ClassMem, Latency: 1, Pipelined: true, HasDest: true, NumSrc: 1, IsLoad: true}
	infos[LB] = infos[LW]
	infos[FLW] = infos[LW]
	infos[SW] = Info{Class: ClassMem, Latency: 1, Pipelined: true, NumSrc: 2, IsStore: true}
	infos[SB] = infos[SW]
	infos[FSW] = infos[SW]

	br := Info{Class: ClassIntALU, Latency: 1, Pipelined: true, NumSrc: 2, IsBranch: true, IsCondBranch: true}
	for _, op := range []Opcode{BEQ, BNE, BLT, BGE, BLTU, BGEU} {
		infos[op] = br
	}
	infos[J] = Info{Class: ClassIntALU, Latency: 1, Pipelined: true, IsBranch: true}
	infos[JAL] = Info{Class: ClassIntALU, Latency: 1, Pipelined: true, HasDest: true, IsBranch: true, IsCall: true}
	infos[JR] = Info{Class: ClassIntALU, Latency: 1, Pipelined: true, NumSrc: 1, IsBranch: true, IsIndirect: true, IsReturn: true}

	fpalu := Info{Class: ClassFPALU, Latency: 2, Pipelined: true, HasDest: true, NumSrc: 2}
	infos[FADD] = fpalu
	infos[FSUB] = fpalu
	infos[FLT] = fpalu
	infos[FLE] = fpalu
	infos[FEQ] = fpalu
	infos[FNEG] = Info{Class: ClassFPALU, Latency: 2, Pipelined: true, HasDest: true, NumSrc: 1}
	infos[FABS] = infos[FNEG]
	infos[FMOV] = infos[FNEG]
	infos[FLI] = Info{Class: ClassFPALU, Latency: 1, Pipelined: true, HasDest: true}
	infos[CVTIF] = Info{Class: ClassFPALU, Latency: 2, Pipelined: true, HasDest: true, NumSrc: 1}
	infos[CVTFI] = Info{Class: ClassFPALU, Latency: 2, Pipelined: true, HasDest: true, NumSrc: 1}
	infos[FMUL] = Info{Class: ClassFPMulDiv, Latency: 4, Pipelined: true, HasDest: true, NumSrc: 2}
	infos[FDIV] = Info{Class: ClassFPMulDiv, Latency: 12, HasDest: true, NumSrc: 2}

	infos[NOP] = Info{Class: ClassNone, Latency: 1, Pipelined: true}
	infos[HALT] = Info{Class: ClassNone, Latency: 1, Pipelined: true}
}

// InfoFor returns the static description of op.
func InfoFor(op Opcode) Info { return infos[op] }

// Sources returns the register sources of the instruction in operand
// order (left, right), omitting unused slots.
func (i Inst) Sources() []RegID {
	info := infos[i.Op]
	switch info.NumSrc {
	case 0:
		return nil
	case 1:
		return []RegID{i.Ra}
	default:
		return []RegID{i.Ra, i.Rb}
	}
}

// Source returns the register of source operand i in the same operand
// order as Sources, without allocating — the form hot paths use.
// Only i < InfoFor(i.Op).NumSrc is meaningful.
func (i Inst) Source(k int) RegID {
	if k == 0 {
		return i.Ra
	}
	return i.Rb
}

// Dest returns the destination register and true, or NoReg and false when
// the instruction writes no register.
func (i Inst) Dest() (RegID, bool) {
	if infos[i.Op].HasDest {
		return i.Rd, true
	}
	return NoReg, false
}

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	info := infos[i.Op]
	switch {
	case i.Op == NOP || i.Op == HALT:
		return i.Op.String()
	case i.Op == LI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case i.Op == FLI:
		return fmt.Sprintf("%s %s, %g", i.Op, i.Rd, i.FImm)
	case info.IsLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Ra)
	case info.IsStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rb, i.Imm, i.Ra)
	case info.IsCondBranch:
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Ra, i.Rb, i.Target)
	case i.Op == J:
		return fmt.Sprintf("j @%d", i.Target)
	case i.Op == JAL:
		return fmt.Sprintf("jal %s, @%d", i.Rd, i.Target)
	case i.Op == JR:
		return fmt.Sprintf("jr %s", i.Ra)
	case isImmOp(i.Op):
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case info.NumSrc == 1:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Ra)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Ra, i.Rb)
	}
}

func isImmOp(op Opcode) bool {
	switch op {
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return true
	}
	return false
}
