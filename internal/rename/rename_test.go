package rename

import (
	"testing"
	"testing/quick"

	"clustervp/internal/isa"
)

// uniform sizes n identical per-cluster register files, the homogeneous
// shape most tests use.
func uniform(n, regs int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = regs
	}
	return out
}

func TestInitialStateMappedRoundRobin(t *testing.T) {
	tb := New[int](uniform(4, 56))
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.RegID(r)
		want := r % 4
		if tb.Home(reg) != want {
			t.Errorf("home(%v) = %d, want %d", reg, tb.Home(reg), want)
		}
		if tb.MappedMask(reg) != 1<<uint(want) {
			t.Errorf("mask(%v) = %b", reg, tb.MappedMask(reg))
		}
		m := tb.Lookup(reg, want)
		if !m.Valid {
			t.Errorf("initial mapping of %v must be valid", reg)
		}
	}
	// 64 regs over 4 clusters = 16 initial allocations per cluster.
	for c := 0; c < 4; c++ {
		if got := tb.FreeRegs(c); got != 56-16 {
			t.Errorf("free regs cluster %d = %d, want 40", c, got)
		}
	}
}

func TestRenameFigure1Sequence(t *testing.T) {
	// Reproduce the paper's Figure 1: I1 writes Rx in cluster n; I2 reads
	// Rx from cluster m (copy); I3 rewrites Rx, freeing the generation.
	tb := New[string](uniform(2, 80))
	rx := isa.R5
	n, m := 0, 1

	// I1: Rx <- ... in cluster n.
	free1, ok := tb.Rename(rx, n, "I1")
	if !ok {
		t.Fatal("rename I1 failed")
	}
	if tb.MappedMask(rx) != 1<<uint(n) {
		t.Fatalf("after I1, mask = %b", tb.MappedMask(rx))
	}
	// The initial mapping of R5 (home 5%2=1) is freed when I1 commits.
	if free1[1] != 1 || free1[0] != 0 {
		t.Fatalf("free counts after I1 = %v", free1)
	}

	// I2 in cluster m: field m invalid -> copy.
	if tb.Lookup(rx, m).Valid {
		t.Fatal("field m must be invalid before the copy")
	}
	if !tb.AddCopy(rx, m, "copy") {
		t.Fatal("copy allocation failed")
	}
	if got := tb.Lookup(rx, m); !got.Valid || got.Provider != "copy" {
		t.Fatalf("copy mapping = %+v", got)
	}
	if tb.MappedMask(rx) != 0b11 {
		t.Fatalf("after copy, mask = %b", tb.MappedMask(rx))
	}

	// I3: Rx <- ... in cluster m. Previous generation (I1's reg in n,
	// copy's reg in m) freed at I3's commit.
	free3, ok := tb.Rename(rx, m, "I3")
	if !ok {
		t.Fatal("rename I3 failed")
	}
	if free3[n] != 1 || free3[m] != 1 {
		t.Fatalf("free counts after I3 = %v, want one per cluster", free3)
	}
	if tb.MappedMask(rx) != 1<<uint(m) {
		t.Fatalf("after I3, mask = %b", tb.MappedMask(rx))
	}
	if tb.Home(rx) != m {
		t.Fatalf("home after I3 = %d", tb.Home(rx))
	}

	// Commit I3: registers return.
	before0, before1 := tb.FreeRegs(0), tb.FreeRegs(1)
	tb.ReleaseAtCommit(free3)
	if tb.FreeRegs(0) != before0+1 || tb.FreeRegs(1) != before1+1 {
		t.Error("release must return one register per cluster")
	}
}

func TestRenameFailsWhenExhausted(t *testing.T) {
	tb := New[int](uniform(2, 40)) // 32 consumed by initial state of each cluster's share
	// Cluster 0 starts with 40-32 = 8 free.
	free := tb.FreeRegs(0)
	for i := 0; i < free; i++ {
		if _, ok := tb.Rename(isa.R1, 0, i); !ok {
			t.Fatalf("rename %d should succeed", i)
		}
	}
	if _, ok := tb.Rename(isa.R1, 0, 99); ok {
		t.Fatal("rename must fail with empty free list")
	}
	// Other cluster unaffected.
	if _, ok := tb.Rename(isa.R2, 1, 0); !ok {
		t.Error("cluster 1 must still have registers")
	}
}

func TestR0NeverRenamed(t *testing.T) {
	tb := New[int](uniform(2, 80))
	before := tb.FreeRegs(0)
	freeAtCommit, ok := tb.Rename(isa.R0, 0, 7)
	if !ok || freeAtCommit != nil {
		t.Error("R0 rename must be a ready no-op")
	}
	if tb.FreeRegs(0) != before {
		t.Error("R0 rename must not allocate")
	}
}

func TestAddCopyPanicsOnDoubleMap(t *testing.T) {
	tb := New[int](uniform(2, 80))
	tb.Rename(isa.R3, 0, 1)
	tb.AddCopy(isa.R3, 1, 2)
	defer func() {
		if recover() == nil {
			t.Error("AddCopy on a valid field must panic")
		}
	}()
	tb.AddCopy(isa.R3, 1, 3)
}

func TestSetProvider(t *testing.T) {
	tb := New[int](uniform(2, 80))
	tb.Rename(isa.R3, 0, 42)
	tb.SetProvider(isa.R3, 0, 0)
	if got := tb.Lookup(isa.R3, 0); !got.Valid || got.Provider != 0 {
		t.Errorf("mapping after SetProvider = %+v", got)
	}
	// Setting on an invalid field is a no-op.
	tb.SetProvider(isa.R3, 1, 9)
	if tb.Lookup(isa.R3, 1).Valid {
		t.Error("invalid field must stay invalid")
	}
}

func TestFreeListOverflowPanics(t *testing.T) {
	f := NewFreeList(2)
	f.Alloc()
	f.Release(1)
	defer func() {
		if recover() == nil {
			t.Error("over-release must panic")
		}
	}()
	f.Release(5)
}

// Property: the total of free registers plus live mappings is conserved
// across arbitrary rename/copy/commit sequences.
func TestRegisterConservationProperty(t *testing.T) {
	type op struct {
		Reg    uint8
		Clust  uint8
		IsCopy bool
	}
	f := func(ops []op) bool {
		const per = 56
		tb := New[int](uniform(4, per))
		var pendingFrees [][]int
		for _, o := range ops {
			r := isa.RegID(o.Reg % isa.NumRegs)
			c := int(o.Clust % 4)
			if o.IsCopy {
				if r != isa.R0 && !tb.Lookup(r, c).Valid {
					tb.AddCopy(r, c, 0)
				}
			} else {
				if fr, ok := tb.Rename(r, c, 0); ok && fr != nil {
					pendingFrees = append(pendingFrees, fr)
				}
			}
			// Occasionally commit the oldest writer.
			if len(pendingFrees) > 8 {
				tb.ReleaseAtCommit(pendingFrees[0])
				pendingFrees = pendingFrees[1:]
			}
		}
		// Drain.
		for _, fr := range pendingFrees {
			tb.ReleaseAtCommit(fr)
		}
		// Conservation: free + live mappings == total, per cluster.
		for c := 0; c < 4; c++ {
			live := 0
			for r := 0; r < isa.NumRegs; r++ {
				if tb.Lookup(isa.RegID(r), c).Valid {
					live++
				}
			}
			if tb.FreeRegs(c)+live != per {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFreeAtCommitSliceRecycling pins the pool contract: ReleaseAtCommit
// reclaims the counts slice for the next Rename, and a recycled slice
// must come back fully zeroed — stale counts would double-free physical
// registers and blow the conservation invariant.
func TestFreeAtCommitSliceRecycling(t *testing.T) {
	tb := New[int](uniform(2, 40))
	fr1, ok := tb.Rename(isa.R5, 0, 1) // writer: R5's old mapping dies at commit
	if !ok || fr1 == nil {
		t.Fatal("first rename failed")
	}
	tb.ReleaseAtCommit(fr1)
	fr2, ok := tb.Rename(isa.R5, 1, 2)
	if !ok {
		t.Fatal("second rename failed")
	}
	if &fr1[0] != &fr2[0] {
		t.Error("ReleaseAtCommit did not recycle the counts slice")
	}
	// fr2 must reflect only the second rename's dead mappings (exactly
	// one: the generation written by rename #1 in cluster 0), with no
	// residue from fr1's contents.
	if fr2[0] != 1 || fr2[1] != 0 {
		t.Errorf("recycled slice carries stale counts: %v", fr2)
	}
	tb.ReleaseAtCommit(fr2)
}
