// Package rename implements the paper's register-renaming substrate
// (§2.1, Figure 1): a map table with N fields per logical register — one
// per cluster — of which each holds either an invalid mark or a mapping
// to a physical register in that cluster, plus per-cluster free lists.
//
// A new writer allocates a register in its cluster, validates that field
// and invalidates the others; consumers dispatched to a cluster without a
// valid mapping trigger a copy, which allocates a register in the
// consumer's cluster and validates that field for reuse by later
// consumers. All registers belonging to a logical register's previous
// mapping generation are freed when the next writer of that register
// commits.
//
// The package is generic over the provider token P that the timing core
// attaches to each mapping (the ROB entry producing the value in that
// cluster); rename itself only manages validity and free-list accounting.
package rename

import (
	"fmt"
	"math/bits"

	"clustervp/internal/isa"
)

// Mapping is one map-table field: a provider token and a valid bit. The
// zero Provider with Valid=true means "value architecturally ready in the
// register file".
type Mapping[P any] struct {
	Valid    bool
	Provider P
}

// FreeList tracks the free physical registers of one cluster by count
// (the simulator never needs concrete register numbers, only occupancy).
type FreeList struct {
	free  int
	total int
}

// NewFreeList builds a free list with n registers.
func NewFreeList(n int) *FreeList { return &FreeList{free: n, total: n} }

// Free returns the number of free registers.
func (f *FreeList) Free() int { return f.free }

// Alloc takes one register; it returns false when none are free.
func (f *FreeList) Alloc() bool {
	if f.free == 0 {
		return false
	}
	f.free--
	return true
}

// Release returns n registers to the list. It panics if the release
// would exceed the total — that is always an accounting bug.
func (f *FreeList) Release(n int) {
	f.free += n
	if f.free > f.total {
		panic(fmt.Sprintf("rename: free list overflow: %d > %d", f.free, f.total))
	}
}

// Table is the map table: NumRegs logical registers × N cluster fields.
// The fields are stored flat (row r at fields[r*clusters:]) with a
// per-register validity bitmask maintained alongside, so the hot
// dispatch-path queries (MappedMask, the Rename invalidation sweep) are
// mask reads and popcount-style walks instead of per-cluster scans.
type Table[P any] struct {
	clusters int
	fields   []Mapping[P] // flattened [logical][cluster]
	mask     []uint32     // per-register bitmask of valid fields
	home     []int        // cluster of the current writer
	free     []*FreeList
	// spare recycles the per-writer freeAtCommit count slices between
	// Rename and ReleaseAtCommit, so steady-state renaming allocates
	// nothing (the pool is bounded by the number of in-flight writers).
	spare [][]int
}

// New builds a map table with one field column and one free list per
// cluster; physRegs[c] sizes cluster c's register file (clusters may
// differ on heterogeneous machines). Initially every logical register is
// architecturally ready, mapped in its home cluster reg%clusters (one
// physical register each, consumed from that cluster's free list), which
// spreads the initial state like the paper's dynamic scheme would settle.
func New[P any](physRegs []int) *Table[P] {
	clusters := len(physRegs)
	if clusters < 1 {
		panic("rename: clusters must be >= 1")
	}
	t := &Table[P]{
		clusters: clusters,
		fields:   make([]Mapping[P], isa.NumRegs*clusters),
		mask:     make([]uint32, isa.NumRegs),
		home:     make([]int, isa.NumRegs),
		free:     make([]*FreeList, clusters),
	}
	for c := range t.free {
		t.free[c] = NewFreeList(physRegs[c])
	}
	for r := 0; r < isa.NumRegs; r++ {
		c := r % clusters
		t.home[r] = c
		if !t.free[c].Alloc() {
			panic("rename: register file too small for initial architectural state")
		}
		t.fields[r*clusters+c] = Mapping[P]{Valid: true} // zero provider = ready
		t.mask[r] = 1 << uint(c)
	}
	return t
}

// Prewarm tops the spare pool up to n freeAtCommit slices. The pool
// otherwise grows lazily to the high-water mark of in-flight writers,
// which can take arbitrarily long to converge (a rename burst deep into
// a run still allocates); callers that know a hard bound — the timing
// core's ROB size bounds in-flight writers — can pin steady-state
// renaming to exactly zero allocations. Top-up semantics (rather than
// replace) make re-prewarming a reused table nearly free while
// replenishing slices lost to runs that ended with writers in flight.
func (t *Table[P]) Prewarm(n int) {
	if t.spare == nil {
		t.spare = make([][]int, 0, 2*n)
	}
	for len(t.spare) < n {
		t.spare = append(t.spare, make([]int, t.clusters))
	}
}

// Reset rewinds the table to its freshly constructed state for a new
// run, reusing the fields/mask/home arrays, the FreeList objects, and
// the spare pool. physRegs must have the same cluster count the table
// was built with (a shape change requires a new table); Reset panics
// otherwise, as New would.
func (t *Table[P]) Reset(physRegs []int) {
	if len(physRegs) != t.clusters {
		panic(fmt.Sprintf("rename: Reset with %d clusters on a %d-cluster table", len(physRegs), t.clusters))
	}
	for i := range t.fields {
		t.fields[i] = Mapping[P]{}
	}
	for c := range t.free {
		*t.free[c] = FreeList{free: physRegs[c], total: physRegs[c]}
	}
	for r := 0; r < isa.NumRegs; r++ {
		c := r % t.clusters
		t.home[r] = c
		if !t.free[c].Alloc() {
			panic("rename: register file too small for initial architectural state")
		}
		t.fields[r*t.clusters+c] = Mapping[P]{Valid: true} // zero provider = ready
		t.mask[r] = 1 << uint(c)
	}
}

// Clusters returns N.
func (t *Table[P]) Clusters() int { return t.clusters }

// FreeRegs returns the free-register count of cluster c.
func (t *Table[P]) FreeRegs(c int) int { return t.free[c].Free() }

// Lookup returns the mapping of logical register r in cluster c.
func (t *Table[P]) Lookup(r isa.RegID, c int) Mapping[P] {
	return t.fields[int(r)*t.clusters+c]
}

// MappedMask returns the bitmask of clusters where r has a valid mapping.
func (t *Table[P]) MappedMask(r isa.RegID) uint32 { return t.mask[r] }

// Home returns the cluster of r's current writer.
func (t *Table[P]) Home(r isa.RegID) int { return t.home[r] }

// CanAlloc reports whether cluster c has at least n free registers.
func (t *Table[P]) CanAlloc(c, n int) bool { return t.free[c].Free() >= n }

// Rename installs a new writer of r in cluster c with provider p. It
// allocates one physical register in c, invalidates every other field,
// and returns the number of physical registers (old mappings, across all
// clusters) that must be freed in each cluster when this writer commits.
// ok is false — and nothing changes — when c has no free register.
func (t *Table[P]) Rename(r isa.RegID, c int, p P) (freeAtCommit []int, ok bool) {
	if r == isa.R0 {
		// R0 is hardwired; writers are dropped at decode.
		return nil, true
	}
	if !t.free[c].Alloc() {
		return nil, false
	}
	if n := len(t.spare); n > 0 {
		freeAtCommit = t.spare[n-1]
		t.spare = t.spare[:n-1]
		for i := range freeAtCommit {
			freeAtCommit[i] = 0
		}
	} else {
		freeAtCommit = make([]int, t.clusters)
	}
	row := t.fields[int(r)*t.clusters : int(r+1)*t.clusters]
	for m := t.mask[r]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		freeAtCommit[i]++
		row[i] = Mapping[P]{}
	}
	row[c] = Mapping[P]{Valid: true, Provider: p}
	t.mask[r] = 1 << uint(c)
	t.home[r] = c
	return freeAtCommit, true
}

// AddCopy validates field c of r with provider p (a copy instruction
// materializing r's value in cluster c), allocating one register there.
// ok is false when no register is free. The copy's register joins the
// current mapping generation and is freed by the next writer's commit.
func (t *Table[P]) AddCopy(r isa.RegID, c int, p P) bool {
	i := int(r)*t.clusters + c
	if t.fields[i].Valid {
		panic(fmt.Sprintf("rename: AddCopy(%v, %d): already mapped", r, c))
	}
	if !t.free[c].Alloc() {
		return false
	}
	t.fields[i] = Mapping[P]{Valid: true, Provider: p}
	t.mask[r] |= 1 << uint(c)
	return true
}

// SetProvider replaces the provider token of an existing valid mapping
// (used when a committed provider's token must be cleared to "ready").
func (t *Table[P]) SetProvider(r isa.RegID, c int, p P) {
	i := int(r)*t.clusters + c
	if !t.fields[i].Valid {
		return
	}
	t.fields[i].Provider = p
}

// ReleaseAtCommit returns the registers of a dead mapping generation to
// their free lists; counts is the slice returned by Rename, which the
// table reclaims for reuse — the caller must not touch it afterwards.
func (t *Table[P]) ReleaseAtCommit(counts []int) {
	for c, n := range counts {
		if n > 0 {
			t.free[c].Release(n)
		}
	}
	t.spare = append(t.spare, counts)
}
