package trace_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"clustervp/internal/isa"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// collect drains a Source into a slice.
func collect(t *testing.T, src trace.Source) []trace.DynInst {
	t.Helper()
	var out []trace.DynInst
	var d trace.DynInst
	for src.Next(&d) {
		out = append(out, d)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// encodeKernel runs a kernel functionally and encodes its trace,
// returning the container bytes and the records that went in.
func encodeKernel(t *testing.T, kernel string, scale int) ([]byte, []trace.DynInst) {
	t.Helper()
	k, err := workload.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(scale)
	want := collect(t, trace.NewExecutor(prog))

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, prog.Name, prog.Code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// TestRoundTripExact encodes and decodes a kernel trace and requires
// every record to come back bit-identical, in order.
func TestRoundTripExact(t *testing.T) {
	for _, kernel := range []string{"cjpeg", "gsmdec", "mesaosdemo"} {
		data, want := encodeKernel(t, kernel, 1)
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if r.Name() == "" {
			t.Errorf("%s: empty trace name", kernel)
		}
		got := collect(t, r)
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d records, want %d", kernel, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d differs:\n got %+v\nwant %+v", kernel, i, got[i], want[i])
			}
		}
		if r.Count() != uint64(len(want)) {
			t.Errorf("%s: Count() = %d, want %d", kernel, r.Count(), len(want))
		}
		t.Logf("%s: %d records in %d bytes (%.2f B/record)",
			kernel, len(want), len(data), float64(len(data))/float64(len(want)))
	}
}

// TestCompressionDensity pins the point of the delta encoding: the
// container must stay well under the in-memory record size (a DynInst
// is ~80 bytes; the format should average a small fraction of that).
func TestCompressionDensity(t *testing.T) {
	data, want := encodeKernel(t, "gsmdec", 1)
	perRecord := float64(len(data)) / float64(len(want))
	if perRecord > 16 {
		t.Errorf("encoding density regressed: %.2f bytes/record (want <= 16)", perRecord)
	}
}

// TestWriteFileOpenFile exercises the file-level path, including the
// atomic-rename contract.
func TestWriteFileOpenFile(t *testing.T) {
	k, err := workload.ByName("epicdec")
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(1)
	path := filepath.Join(t.TempDir(), "epicdec.cvt")
	n, err := trace.WriteFile(path, prog.Name, prog.Code, trace.NewExecutor(prog))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("wrote zero records")
	}
	fr, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if fr.Name() != prog.Name {
		t.Errorf("trace name %q, want %q", fr.Name(), prog.Name)
	}
	got := collect(t, fr)
	want := collect(t, trace.NewExecutor(k.Build(1)))
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("expected only the trace file in the temp dir, found %d entries", len(ents))
	}
}

// TestTeeRecordsWhileStreaming checks that Tee passes records through
// unchanged while producing a decodable copy.
func TestTeeRecordsWhileStreaming(t *testing.T) {
	k, err := workload.ByName("rawcaudio")
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(1)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, prog.Name, prog.Code)
	if err != nil {
		t.Fatal(err)
	}
	through := collect(t, trace.Tee(trace.NewExecutor(prog), w))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := collect(t, r)
	if len(replayed) != len(through) {
		t.Fatalf("tee wrote %d records, passed through %d", len(replayed), len(through))
	}
	for i := range through {
		if replayed[i] != through[i] {
			t.Fatalf("record %d differs between tee copy and pass-through", i)
		}
	}
}

// TestTruncationAndCorruptionAreTyped damages a valid container in
// representative ways and requires a typed error every time — never a
// panic, never a silent success.
func TestTruncationAndCorruptionAreTyped(t *testing.T) {
	data, _ := encodeKernel(t, "g721enc", 1)

	decode := func(b []byte) error {
		r, err := trace.NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		var d trace.DynInst
		for r.Next(&d) {
		}
		return r.Err()
	}

	if err := decode(data); err != nil {
		t.Fatalf("pristine trace failed to decode: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   []error
	}{
		{"empty", func(b []byte) []byte { return nil }, []error{trace.ErrBadMagic}},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, []error{trace.ErrBadMagic}},
		{"bad-version", func(b []byte) []byte { b[4] = 99; return b }, []error{trace.ErrVersion}},
		{"truncated-header", func(b []byte) []byte { return b[:8] }, []error{trace.ErrTruncated, trace.ErrCorrupt}},
		{"truncated-mid", func(b []byte) []byte { return b[:len(b)/2] }, []error{trace.ErrTruncated, trace.ErrCorrupt}},
		{"no-trailer", func(b []byte) []byte { return b[:len(b)-5] }, []error{trace.ErrTruncated, trace.ErrCorrupt}},
		{"flipped-payload", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }, []error{trace.ErrCorrupt, trace.ErrTruncated}},
		{"flipped-crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, []error{trace.ErrCorrupt}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := append([]byte(nil), data...)
			err := decode(tc.mutate(cp))
			if err == nil {
				t.Fatal("damaged trace decoded without error")
			}
			for _, w := range tc.want {
				if errors.Is(err, w) {
					return
				}
			}
			t.Errorf("error %v is not one of the expected types %v", err, tc.want)
		})
	}
}

// TestLargeCodeHeaderRoundTrips pins the writer/reader limit symmetry:
// any program NewWriter accepts, NewReader must accept back, including
// static code whose encoded header far exceeds one record block's
// payload cap (a 200k-instruction header is several megabytes).
func TestLargeCodeHeaderRoundTrips(t *testing.T) {
	code := make([]isa.Inst, 200_000)
	for i := range code {
		code[i] = isa.Inst{Op: isa.LI, Rd: isa.R5, Imm: int64(i) * 1_000_003}
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, "huge", code)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader rejected a header the writer produced: %v", err)
	}
	if len(r.Code()) != len(code) {
		t.Fatalf("decoded %d instructions, want %d", len(r.Code()), len(code))
	}
	var d trace.DynInst
	if r.Next(&d) {
		t.Fatal("empty trace yielded a record")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
