package trace

// Source is a stream of dynamic instructions: the contract between the
// timing simulator in internal/core and whatever produces the trace. The
// in-process functional Executor and the .cvt file Reader both satisfy
// it, so a simulation neither knows nor cares whether its instruction
// stream is synthesized on the fly or replayed from disk.
//
// Next fills d with the next record and reports whether one was
// available; after Next returns false, Err distinguishes a cleanly
// drained stream (nil) from a mid-stream failure.
type Source interface {
	Next(d *DynInst) bool
	Err() error
}

var (
	_ Source = (*Executor)(nil)
	_ Source = (*Reader)(nil)
)

// tee forwards a Source while writing every record to a Writer.
type tee struct {
	src Source
	w   *Writer
	err error
}

// Tee returns a Source that yields src's records unchanged while
// appending each one to w, so a simulation can record the trace it
// consumes as a side effect (clustersim -trace-out). The caller remains
// responsible for closing w after the stream drains.
func Tee(src Source, w *Writer) Source { return &tee{src: src, w: w} }

// Next implements Source.
func (t *tee) Next(d *DynInst) bool {
	if t.err != nil || !t.src.Next(d) {
		return false
	}
	if err := t.w.Write(d); err != nil {
		t.err = err
		return false
	}
	return true
}

// Err implements Source: a write failure surfaces before any source
// error, because it truncates the stream early.
func (t *tee) Err() error {
	if t.err != nil {
		return t.err
	}
	return t.src.Err()
}
