package trace

// Content-addressed trace-store tests: digests identify bytes, invalid
// or corrupt uploads never publish, and stored traces replay
// identically to their source files.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeTestTrace encodes a small synthetic trace and returns its bytes.
func storeTestTrace(t *testing.T, n int64) []byte {
	t.Helper()
	prog := buildLoopSum(n)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, prog.Name, prog.Code)
	if err != nil {
		t.Fatal(err)
	}
	src := NewExecutor(prog)
	var d DynInst
	for src.Next(&d) {
		if err := w.Write(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := storeTestTrace(t, 5)
	digest, records, err := st.Put(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(digest, DigestPrefix) || records == 0 {
		t.Fatalf("Put returned digest=%q records=%d", digest, records)
	}
	if !st.Has(digest) {
		t.Fatal("Has reports the stored digest missing")
	}
	// Idempotent re-store of identical bytes.
	d2, r2, err := st.Put(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if d2 != digest || r2 != records {
		t.Errorf("re-store changed identity: %q/%d vs %q/%d", d2, r2, digest, records)
	}
	// Stored file replays and matches byte-for-byte.
	p, err := st.Path(digest)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Error("stored bytes differ from the upload")
	}
	fr, err := st.Open(digest)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	var dyn DynInst
	n := uint64(0)
	for fr.Next(&dyn) {
		n++
	}
	if err := fr.Err(); err != nil || n != records {
		t.Errorf("replay: %d records err=%v, want %d records", n, err, records)
	}
}

// TestStoreRejectsCorruptUploads: damaged containers must not publish,
// and the failure keeps the trace package's typed classification.
func TestStoreRejectsCorruptUploads(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := storeTestTrace(t, 5)
	cases := []struct {
		name    string
		payload []byte
		wantErr error
	}{
		{"not-a-trace", []byte("plain text, definitely not CVTR"), ErrBadMagic},
		{"truncated", data[:len(data)*2/3], ErrTruncated},
		{"bit-flip", func() []byte {
			b := append([]byte(nil), data...)
			b[len(b)/2] ^= 0x10
			return b
		}(), ErrCorrupt},
		{"empty", nil, ErrBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := st.Put(bytes.NewReader(tc.payload)); !errors.Is(err, tc.wantErr) {
				t.Errorf("Put error = %v, want %v", err, tc.wantErr)
			}
		})
	}
	// Nothing published, and no temp droppings left behind.
	ents, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("store directory not empty after rejected uploads: %v", ents)
	}
}

// TestStoreDigestValidation: malformed digests are rejected before any
// filesystem access (no path traversal through digest strings).
func TestStoreDigestValidation(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{
		"", "sha256:", "sha256:zz", "md5:abcd",
		"sha256:../../etc/passwd",
		"sha256:" + strings.Repeat("a", 63),
	} {
		if _, err := st.Path(d); err == nil {
			t.Errorf("Path(%q) accepted a malformed digest", d)
		}
		if st.Has(d) {
			t.Errorf("Has(%q) = true for a malformed digest", d)
		}
	}
}

// TestStorePutFile stores an on-disk trace written by WriteFile, the
// path clustersim -remote -trace-in uses.
func TestStorePutFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.cvt")
	if err := os.WriteFile(path, storeTestTrace(t, 5), 0o666); err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest, records, err := st.PutFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if records == 0 || !st.Has(digest) {
		t.Errorf("PutFile: digest=%q records=%d Has=%v", digest, records, st.Has(digest))
	}
}
