package trace

// Fleet-mode guarantees of the trace store: replicas sharing one data
// directory publish concurrently without torn files (temp+rename, so a
// reader sees a whole trace or none), and ParseDigest is the single
// gate every digest passes before touching the filesystem.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestStoreConcurrentPublishTwoReplicas: two Stores over the same
// directory — two clusterd replicas sharing a data dir — repeatedly
// store the same trace set at once. Content addressing makes every
// interleaving converge: one file per distinct trace, every byte
// intact, no temp droppings. Run under -race in CI.
func TestStoreConcurrentPublishTwoReplicas(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	traces := make([][]byte, 4)
	digests := make([]string, len(traces))
	for i := range traces {
		traces[i] = storeTestTrace(t, int64(3+i))
		sum := sha256.Sum256(traces[i])
		digests[i] = DigestPrefix + hex.EncodeToString(sum[:])
	}

	const rounds = 10
	var wg sync.WaitGroup
	for _, st := range []*Store{s1, s2} {
		for i, data := range traces {
			wg.Add(1)
			go func(st *Store, want string, data []byte) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					digest, records, err := st.Put(bytes.NewReader(data))
					if err != nil {
						t.Errorf("concurrent Put: %v", err)
						return
					}
					if digest != want || records == 0 {
						t.Errorf("concurrent Put returned %q/%d, want %q", digest, records, want)
						return
					}
				}
			}(st, digests[i], data)
		}
	}
	wg.Wait()

	// Both handles resolve every digest, the published bytes are exactly
	// the upload, and each file still replays end to end.
	for i, digest := range digests {
		for _, st := range []*Store{s1, s2} {
			if !st.Has(digest) {
				t.Fatalf("store lost %s after concurrent publish", digest)
			}
		}
		p, err := s1.Path(digest)
		if err != nil {
			t.Fatal(err)
		}
		stored, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, traces[i]) {
			t.Errorf("%s: stored bytes differ from the upload", digest)
		}
		fr, err := s2.Open(digest)
		if err != nil {
			t.Fatal(err)
		}
		var d DynInst
		for fr.Next(&d) {
		}
		if err := fr.Err(); err != nil {
			t.Errorf("%s does not replay after concurrent publish: %v", digest, err)
		}
		fr.Close()
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(traces) {
		t.Errorf("directory holds %d entries after concurrent publish, want %d (temp leftovers?)", len(ents), len(traces))
	}
}

// TestParseDigest pins the digest grammar: "sha256:" + exactly 64 hex
// digits, nothing else — the contract job fingerprints, the fleet's
// shard keys and the store's file names all share.
func TestParseDigest(t *testing.T) {
	lower := strings.Repeat("ab", 32)
	upper := strings.Repeat("AB", 32)
	valid := []struct{ in, wantHex string }{
		{DigestPrefix + lower, lower},
		{DigestPrefix + upper, upper}, // hex is case-insensitive
	}
	for _, tc := range valid {
		got, err := ParseDigest(tc.in)
		if err != nil || got != tc.wantHex {
			t.Errorf("ParseDigest(%q) = %q, %v; want %q", tc.in, got, err, tc.wantHex)
		}
	}
	invalid := []string{
		"",
		lower,                                   // bare hex, no algorithm tag
		"sha256:",                               // empty hex
		"sha1:" + lower,                         // wrong algorithm
		"SHA256:" + lower,                       // prefix is case-sensitive
		DigestPrefix + lower[:63],               // one digit short
		DigestPrefix + lower + "a",              // one digit long
		DigestPrefix + strings.Repeat("zz", 32), // not hexadecimal
		DigestPrefix + "../" + lower[:61],       // traversal attempt
	}
	for _, in := range invalid {
		if got, err := ParseDigest(in); err == nil {
			t.Errorf("ParseDigest(%q) accepted: %q", in, got)
		}
	}
}
