package trace_test

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"clustervp/internal/trace"
)

// TestPipelinedMatchesReader requires the decode-ahead path to yield
// exactly the synchronous Reader's records, across batch-boundary
// trace lengths (kernel traces are far longer than one batch).
func TestPipelinedMatchesReader(t *testing.T) {
	for _, kernel := range []string{"cjpeg", "gsmdec"} {
		data, want := encodeKernel(t, kernel, 1)
		p := trace.NewPipelined(newReader(t, data))
		got := collect(t, p)
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if p.Name() != kernel {
			t.Errorf("%s: Name() = %q", kernel, p.Name())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pipelined replay differs from the streaming Reader", kernel)
		}
	}
}

// TestPipelinedPropagatesCorruption: a decode error surfaces through
// Err after Next reports end, exactly like the synchronous Reader.
func TestPipelinedPropagatesCorruption(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	bad := bytes.Clone(data)
	bad[len(bad)/2] ^= 0xFF // inside a record block: CRC mismatch
	p := trace.NewPipelined(newReader(t, bad))
	defer p.Close()
	var d trace.DynInst
	for p.Next(&d) {
	}
	if err := p.Err(); !errors.Is(err, trace.ErrCorrupt) && !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("corrupted stream: Err() = %v, want ErrCorrupt or ErrTruncated", err)
	}
}

// TestPipelinedEarlyClose stops the decoder mid-stream (and twice);
// Close must not deadlock whether the decoder is blocked on a full
// output ring or waiting for a free batch.
func TestPipelinedEarlyClose(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	for _, consume := range []int{0, 1, 700} {
		p := trace.NewPipelined(newReader(t, data))
		var d trace.DynInst
		for i := 0; i < consume && p.Next(&d); i++ {
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelinedConcurrentStreams runs several independent pipelines at
// once (the grid's worker shape); under -race this pins the handoff
// discipline between decoder and consumer.
func TestPipelinedConcurrentStreams(t *testing.T) {
	data, want := encodeKernel(t, "gsmdec", 1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			p := trace.NewPipelined(r)
			defer p.Close()
			var d trace.DynInst
			var n int
			for p.Next(&d) {
				n++
			}
			if err := p.Err(); err != nil {
				t.Error(err)
				return
			}
			if n != len(want) {
				t.Errorf("pipelined stream yielded %d records, want %d", n, len(want))
			}
		}()
	}
	wg.Wait()
}
