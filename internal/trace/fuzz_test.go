package trace_test

import (
	"bytes"
	"errors"
	"testing"

	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// FuzzTraceReader throws arbitrary bytes at the .cvt decoder and
// requires it to either decode records or fail with one of the typed
// errors — never panic, never loop forever, never allocate in
// proportion to an attacker-controlled length field. Run it with
//
//	go test -fuzz=FuzzTraceReader ./internal/trace
//
// The seed corpus in testdata/fuzz/FuzzTraceReader covers the
// structured cases mutation starts from: a pristine small trace, a
// header-only file, truncations, and bit flips in each region.
func FuzzTraceReader(f *testing.F) {
	k, err := workload.ByName("rawcaudio")
	if err != nil {
		f.Fatal(err)
	}
	prog := k.Build(1)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, prog.Name, prog.Code)
	if err != nil {
		f.Fatal(err)
	}
	exec := trace.NewExecutor(prog)
	var d trace.DynInst
	for i := 0; i < 2000 && exec.Next(&d); i++ {
		if err := w.Write(&d); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:5]) // magic+version only
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("CVTR\x01"))
	f.Add([]byte("CVTR\x63")) // future version
	f.Add([]byte("not a trace at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	// A huge declared header length with no data behind it: the decoder
	// must reject it by limit, not allocate it.
	f.Add([]byte{'C', 'V', 'T', 'R', 1, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			requireTyped(t, err)
			return
		}
		var d trace.DynInst
		n := 0
		for r.Next(&d) {
			// Every decoded record must be internally consistent enough
			// for the timing core to consume blindly.
			if d.PC < 0 || d.PC >= len(r.Code()) {
				t.Fatalf("record %d: pc %d outside decoded code", n, d.PC)
			}
			if d.Seq != uint64(n) {
				t.Fatalf("record %d: seq %d", n, d.Seq)
			}
			n++
		}
		if err := r.Err(); err != nil {
			requireTyped(t, err)
		}
	})
}

// requireTyped fails the fuzz run when a decode error is not one of the
// exported sentinel types.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	for _, want := range []error{trace.ErrBadMagic, trace.ErrVersion, trace.ErrCorrupt, trace.ErrTruncated} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("untyped decode error: %v", err)
}
