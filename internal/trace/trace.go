// Package trace functionally executes an assembled program and yields the
// dynamic instruction stream, including the actual operand and result
// values every instruction observed.
//
// The timing simulator in internal/core is trace-driven: it consumes
// DynInst records in program order. Because each record carries the real
// source-operand values, the stride value predictor in internal/vpred can
// be trained and evaluated against genuine value streams, exactly as the
// paper's modified SimpleScalar did with its functional core.
package trace

import (
	"fmt"
	"math"

	"clustervp/internal/isa"
	"clustervp/internal/program"
)

// MaxSrc is the maximum number of register sources per instruction.
const MaxSrc = 2

// DynInst is one dynamic (executed) instruction.
type DynInst struct {
	// Seq numbers committed program instructions from 0.
	Seq uint64
	// PC is the static instruction index; the byte address for the
	// instruction cache is PC*4.
	PC int
	// Inst is the static instruction.
	Inst isa.Inst
	// NextPC is the PC of the dynamically following instruction.
	NextPC int
	// Taken is true for branches that were taken.
	Taken bool
	// SrcVal holds the raw 64-bit values of the register sources, in
	// operand order (FP values as IEEE-754 bits). Only the first
	// len(Inst.Sources()) entries are meaningful.
	SrcVal [MaxSrc]uint64
	// DstVal is the raw result value when the instruction writes a
	// register.
	DstVal uint64
	// Addr is the effective byte address for loads and stores.
	Addr uint64
}

// Info returns the static opcode description.
func (d *DynInst) Info() isa.Info { return isa.InfoFor(d.Inst.Op) }

// Executor runs a Program functionally and produces DynInst records one
// at a time.
type Executor struct {
	prog *program.Program
	mem  *Memory
	regs [isa.NumRegs]uint64
	pc   int
	seq  uint64
	done bool
	err  error
}

// MemSize is the size of the flat data memory image (16 MiB).
const MemSize = 1 << 24

// Memory is a flat byte-addressable data memory.
type Memory struct {
	bytes []byte
}

// NewMemory builds a Memory initialized from the program's data image.
func NewMemory(data []byte) *Memory {
	m := &Memory{bytes: make([]byte, MemSize)}
	copy(m.bytes, data)
	return m
}

// Load64 reads the 64-bit little-endian word at addr.
func (m *Memory) Load64(addr uint64) uint64 {
	a := addr & (MemSize - 1)
	if a+8 > MemSize {
		a = MemSize - 8
	}
	b := m.bytes[a : a+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Store64 writes the 64-bit little-endian word v at addr.
func (m *Memory) Store64(addr, v uint64) {
	a := addr & (MemSize - 1)
	if a+8 > MemSize {
		a = MemSize - 8
	}
	b := m.bytes[a : a+8]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// Load8 reads the byte at addr.
func (m *Memory) Load8(addr uint64) byte { return m.bytes[addr&(MemSize-1)] }

// Store8 writes the byte v at addr.
func (m *Memory) Store8(addr uint64, v byte) { m.bytes[addr&(MemSize-1)] = v }

// NewExecutor prepares a functional executor for prog.
func NewExecutor(prog *program.Program) *Executor {
	return &Executor{prog: prog, mem: NewMemory(prog.Data), pc: prog.Entry}
}

// Memory exposes the data memory (for tests and for result extraction by
// workload self-checks).
func (e *Executor) Memory() *Memory { return e.mem }

// Reg returns the current architectural value of r.
func (e *Executor) Reg(r isa.RegID) uint64 {
	if r == isa.R0 {
		return 0
	}
	return e.regs[r]
}

// Done reports whether the program has halted.
func (e *Executor) Done() bool { return e.done }

// Err returns the first execution error (e.g. runaway program), if any.
func (e *Executor) Err() error { return e.err }

// ErrRunaway is wrapped by errors returned when a program exceeds the
// instruction budget without halting.
var ErrRunaway = fmt.Errorf("trace: program exceeded instruction budget")

// Next executes one instruction and fills d with its dynamic record. It
// returns false when the program has halted (the HALT itself is not
// reported) or an execution error occurred.
func (e *Executor) Next(d *DynInst) bool {
	if e.done || e.err != nil {
		return false
	}
	if e.pc < 0 || e.pc >= len(e.prog.Code) {
		e.err = fmt.Errorf("trace: pc %d out of range", e.pc)
		return false
	}
	in := e.prog.Code[e.pc]
	if in.Op == isa.HALT {
		e.done = true
		return false
	}

	*d = DynInst{Seq: e.seq, PC: e.pc, Inst: in}
	e.seq++

	srcs := in.Sources()
	for i, r := range srcs {
		d.SrcVal[i] = e.Reg(r)
	}

	next := e.pc + 1
	a := int64(d.SrcVal[0])
	bv := int64(0)
	if len(srcs) > 1 {
		bv = int64(d.SrcVal[1])
	}
	var result uint64
	wrote := false

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		result, wrote = uint64(a+bv), true
	case isa.SUB:
		result, wrote = uint64(a-bv), true
	case isa.AND:
		result, wrote = uint64(a&bv), true
	case isa.OR:
		result, wrote = uint64(a|bv), true
	case isa.XOR:
		result, wrote = uint64(a^bv), true
	case isa.SLL:
		result, wrote = uint64(a<<(uint64(bv)&63)), true
	case isa.SRL:
		result, wrote = uint64(a)>>(uint64(bv)&63), true
	case isa.SRA:
		result, wrote = uint64(a>>(uint64(bv)&63)), true
	case isa.SLT:
		result, wrote = boolVal(a < bv), true
	case isa.SLTU:
		result, wrote = boolVal(uint64(a) < uint64(bv)), true
	case isa.ADDI:
		result, wrote = uint64(a+in.Imm), true
	case isa.ANDI:
		result, wrote = uint64(a&in.Imm), true
	case isa.ORI:
		result, wrote = uint64(a|in.Imm), true
	case isa.XORI:
		result, wrote = uint64(a^in.Imm), true
	case isa.SLLI:
		result, wrote = uint64(a<<(uint64(in.Imm)&63)), true
	case isa.SRLI:
		result, wrote = uint64(a)>>(uint64(in.Imm)&63), true
	case isa.SRAI:
		result, wrote = uint64(a>>(uint64(in.Imm)&63)), true
	case isa.SLTI:
		result, wrote = boolVal(a < in.Imm), true
	case isa.LI:
		result, wrote = uint64(in.Imm), true
	case isa.MUL:
		result, wrote = uint64(a*bv), true
	case isa.DIV:
		if bv == 0 {
			result = 0
		} else {
			result = uint64(a / bv)
		}
		wrote = true
	case isa.REM:
		if bv == 0 {
			result = uint64(a)
		} else {
			result = uint64(a % bv)
		}
		wrote = true
	case isa.LW, isa.FLW:
		d.Addr = uint64(a + in.Imm)
		result, wrote = e.mem.Load64(d.Addr), true
	case isa.LB:
		d.Addr = uint64(a + in.Imm)
		result, wrote = uint64(int64(int8(e.mem.Load8(d.Addr)))), true
	case isa.SW, isa.FSW:
		d.Addr = uint64(a + in.Imm)
		e.mem.Store64(d.Addr, uint64(bv))
	case isa.SB:
		d.Addr = uint64(a + in.Imm)
		e.mem.Store8(d.Addr, byte(bv))
	case isa.BEQ:
		d.Taken = a == bv
	case isa.BNE:
		d.Taken = a != bv
	case isa.BLT:
		d.Taken = a < bv
	case isa.BGE:
		d.Taken = a >= bv
	case isa.BLTU:
		d.Taken = uint64(a) < uint64(bv)
	case isa.BGEU:
		d.Taken = uint64(a) >= uint64(bv)
	case isa.J:
		d.Taken = true
		next = in.Target
	case isa.JAL:
		d.Taken = true
		result, wrote = uint64(e.pc+1), true
		next = in.Target
	case isa.JR:
		d.Taken = true
		next = int(uint64(a))
	case isa.FADD:
		result, wrote = f2b(b2f(uint64(a))+b2f(uint64(bv))), true
	case isa.FSUB:
		result, wrote = f2b(b2f(uint64(a))-b2f(uint64(bv))), true
	case isa.FMUL:
		result, wrote = f2b(b2f(uint64(a))*b2f(uint64(bv))), true
	case isa.FDIV:
		den := b2f(uint64(bv))
		if den == 0 {
			result = f2b(0)
		} else {
			result = f2b(b2f(uint64(a)) / den)
		}
		wrote = true
	case isa.FNEG:
		result, wrote = f2b(-b2f(uint64(a))), true
	case isa.FABS:
		result, wrote = f2b(math.Abs(b2f(uint64(a)))), true
	case isa.FMOV:
		result, wrote = uint64(a), true
	case isa.FLI:
		result, wrote = f2b(in.FImm), true
	case isa.CVTIF:
		result, wrote = f2b(float64(a)), true
	case isa.CVTFI:
		result, wrote = uint64(int64(b2f(uint64(a)))), true
	case isa.FLT:
		result, wrote = boolVal(b2f(uint64(a)) < b2f(uint64(bv))), true
	case isa.FLE:
		result, wrote = boolVal(b2f(uint64(a)) <= b2f(uint64(bv))), true
	case isa.FEQ:
		result, wrote = boolVal(b2f(uint64(a)) == b2f(uint64(bv))), true
	default:
		e.err = fmt.Errorf("trace: pc %d: unimplemented opcode %v", e.pc, in.Op)
		return false
	}

	info := isa.InfoFor(in.Op)
	if info.IsCondBranch && d.Taken {
		next = in.Target
	}
	if wrote {
		d.DstVal = result
		if in.Rd != isa.R0 && in.Rd.Valid() {
			e.regs[in.Rd] = result
		}
	}
	d.NextPC = next
	e.pc = next
	return true
}

// Run executes the whole program (up to limit dynamic instructions,
// 0 = default of 100M) and returns the number of instructions executed.
func (e *Executor) Run(limit uint64) (uint64, error) {
	if limit == 0 {
		limit = 100_000_000
	}
	var d DynInst
	for e.Next(&d) {
		if d.Seq+1 >= limit {
			e.err = fmt.Errorf("%w after %d instructions", ErrRunaway, limit)
			break
		}
	}
	return e.seq, e.err
}

// Collect executes prog fully and returns the dynamic trace as a slice.
// Intended for tests and small programs; large runs should stream via
// Next.
func Collect(prog *program.Program, limit uint64) ([]DynInst, error) {
	if limit == 0 {
		limit = 10_000_000
	}
	e := NewExecutor(prog)
	var out []DynInst
	var d DynInst
	for e.Next(&d) {
		out = append(out, d)
		if uint64(len(out)) >= limit {
			return out, fmt.Errorf("%w after %d instructions", ErrRunaway, limit)
		}
	}
	return out, e.Err()
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func b2f(b uint64) float64 { return math.Float64frombits(b) }
func f2b(f float64) uint64 { return math.Float64bits(f) }
