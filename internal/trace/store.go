package trace

// Store is a content-addressed repository of .cvt traces: files are
// named by the SHA-256 of their bytes, so a digest uniquely identifies
// trace content across processes, replicas and uploads — the property
// the clusterd service's job fingerprints and result cache build on.
// Put verifies the full container (header and per-block CRCs, trailer
// record count) before publishing, so the store never holds a trace
// that would fail replay.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// DigestPrefix tags store digests with their hash algorithm.
const DigestPrefix = "sha256:"

// Store is a directory of content-addressed .cvt traces. It is safe
// for concurrent use: writes go through temp files and a rename, and
// content addressing makes concurrent stores of the same bytes
// idempotent.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a trace store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// ParseDigest validates a digest string ("sha256:<64 hex>") and
// returns the bare hex component.
func ParseDigest(digest string) (string, error) {
	hexPart, ok := strings.CutPrefix(digest, DigestPrefix)
	if !ok {
		return "", fmt.Errorf("trace: digest %q does not start with %q", digest, DigestPrefix)
	}
	if len(hexPart) != sha256.Size*2 {
		return "", fmt.Errorf("trace: digest %q has %d hex digits, want %d", digest, len(hexPart), sha256.Size*2)
	}
	if _, err := hex.DecodeString(hexPart); err != nil {
		return "", fmt.Errorf("trace: digest %q is not hexadecimal", digest)
	}
	return hexPart, nil
}

// Path returns the file a digest resolves to, without checking
// existence; it rejects malformed digests (which also keeps path
// traversal out of the store).
func (s *Store) Path(digest string) (string, error) {
	hexPart, err := ParseDigest(digest)
	if err != nil {
		return "", err
	}
	return filepath.Join(s.dir, "sha256-"+hexPart+".cvt"), nil
}

// Has reports whether the store holds the digest.
func (s *Store) Has(digest string) bool {
	p, err := s.Path(digest)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Put streams a .cvt container into the store: the bytes are hashed
// while being spooled to a temp file, the temp file is then decoded
// end to end (every CRC checked) to prove it replays, and only a fully
// valid trace is renamed into place. It returns the content digest and
// the record count. Storing bytes already present is a cheap no-op
// beyond the verification read.
func (s *Store) Put(r io.Reader) (digest string, records uint64, err error) {
	tmp, err := os.CreateTemp(s.dir, ".cvt-upload-*")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	h := sha256.New()
	if _, err := io.Copy(tmp, io.TeeReader(r, h)); err != nil {
		return "", 0, err
	}
	records, err = verifyFile(tmp)
	if err != nil {
		return "", 0, err
	}
	digest = DigestPrefix + hex.EncodeToString(h.Sum(nil))
	path, err := s.Path(digest)
	if err != nil {
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		return "", 0, err
	}
	if _, statErr := os.Stat(path); statErr == nil {
		// Identical content already stored; keep the existing file.
		return digest, records, nil
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", 0, err
	}
	return digest, records, nil
}

// PutFile is Put over an existing file on disk.
func (s *Store) PutFile(path string) (digest string, records uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return s.Put(f)
}

// Open streams a stored trace for replay.
func (s *Store) Open(digest string) (*FileReader, error) {
	p, err := s.Path(digest)
	if err != nil {
		return nil, err
	}
	return OpenFile(p)
}

// verifyFile decodes the spooled container from the start, checking
// every CRC, and returns the record count.
func verifyFile(f *os.File) (uint64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r, err := NewReader(f)
	if err != nil {
		return 0, err
	}
	var d DynInst
	for r.Next(&d) {
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return r.Count(), nil
}
