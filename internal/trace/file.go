package trace

// File-level conveniences over the .cvt Reader/Writer: FileWriter owns
// the atomic write protocol (buffered temp file + rename on Commit),
// WriteFile drains a Source through it, and OpenFile wraps an os.File
// in a Reader that still streams block by block — opening a
// multi-gigabyte trace costs one block of memory, not the file size.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clustervp/internal/isa"
)

// FileWriter streams records into a .cvt file atomically: everything
// goes through a buffered Writer into a temp file in the destination
// directory, and only Commit renames it into place — a crashed or
// failed run never leaves a half-written trace behind.
type FileWriter struct {
	*Writer
	tmp  *os.File
	bw   *bufio.Writer
	path string
	done bool
}

// CreateFile opens a FileWriter for path, writing the container header
// immediately. Call Write for each record, then exactly one of Commit
// (publish) or Abort (discard); Abort after Commit is a no-op, so
// `defer fw.Abort()` is the idiomatic cleanup.
func CreateFile(path, name string, code []isa.Inst) (*FileWriter, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cvt-*")
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(tmp, 1<<16)
	w, err := NewWriter(bw, name, code)
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return &FileWriter{Writer: w, tmp: tmp, bw: bw, path: path}, nil
}

// Commit finalizes the container (end marker, flush) and renames the
// temp file into place.
func (fw *FileWriter) Commit() error {
	if fw.done {
		return errors.New("trace: FileWriter already finished")
	}
	fw.done = true
	err := fw.Writer.Close()
	if err == nil {
		err = fw.bw.Flush()
	}
	if cerr := fw.tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(fw.tmp.Name())
		return err
	}
	if err := os.Rename(fw.tmp.Name(), fw.path); err != nil {
		os.Remove(fw.tmp.Name())
		return err
	}
	return nil
}

// Abort discards the temp file without publishing; no-op after Commit.
func (fw *FileWriter) Abort() {
	if fw.done {
		return
	}
	fw.done = true
	fw.tmp.Close()
	os.Remove(fw.tmp.Name())
}

// WriteFile streams src into a .cvt file at path, written atomically.
// It returns the number of records written.
func WriteFile(path, name string, code []isa.Inst, src Source) (uint64, error) {
	fw, err := CreateFile(path, name, code)
	if err != nil {
		return 0, err
	}
	defer fw.Abort()
	var d DynInst
	for src.Next(&d) {
		if err := fw.Write(&d); err != nil {
			return fw.Count(), err
		}
	}
	if err := src.Err(); err != nil {
		return fw.Count(), fmt.Errorf("trace: generating %s: %w", path, err)
	}
	n := fw.Count()
	return n, fw.Commit()
}

// FileReader is a Reader bound to an opened .cvt file.
type FileReader struct {
	*Reader
	f *os.File
}

// OpenFile opens a .cvt trace for streaming replay.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &FileReader{Reader: r, f: f}, nil
}

// Close closes the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

var _ io.Closer = (*FileReader)(nil)
