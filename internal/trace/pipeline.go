package trace

import "sync"

// Pipelined overlaps .cvt decoding with simulation for traces the arena
// does not hold: a single decode-ahead goroutine drains the underlying
// Reader batch by batch into a bounded ring of recycled record buffers
// while the simulation consumes the previous batch. CRC checks and
// varint-delta decoding thus run concurrently with the timing loop, and
// the fixed batch pool means steady-state operation allocates nothing.
//
// Record order and content are exactly the Reader's — batching only
// changes when decoding happens, never what is decoded — so replay is
// byte-identical to the synchronous path.

const (
	// pipeBatch is the number of records per decode-ahead batch.
	pipeBatch = 512
	// pipeDepth is the total number of batches in flight; the consumer
	// holds at most one, so the decoder can run up to pipeDepth-1
	// batches ahead.
	pipeDepth = 4
)

// pbatch is one decode-ahead unit. last marks the batch that exhausted
// the Reader; err carries the Reader's final error alongside it.
type pbatch struct {
	n    int
	last bool
	err  error
	recs [pipeBatch]DynInst
}

// Pipelined is a Source adapter running a Reader's decode one stage
// ahead of the consumer. Next and Err must be called from a single
// goroutine (the Source contract); Close may be called at any point to
// stop the decoder, including before the stream drains.
type Pipelined struct {
	r    *Reader
	out  chan *pbatch
	free chan *pbatch
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	cur  *pbatch
	idx  int
	done bool
	err  error
}

// NewPipelined starts the decode-ahead stage over r. The caller must
// Close the Pipelined (before closing r's underlying file, if any).
func NewPipelined(r *Reader) *Pipelined {
	p := &Pipelined{
		r:    r,
		out:  make(chan *pbatch, pipeDepth),
		free: make(chan *pbatch, pipeDepth),
		stop: make(chan struct{}),
	}
	for i := 0; i < pipeDepth; i++ {
		p.free <- &pbatch{}
	}
	p.wg.Add(1)
	go p.fill()
	return p
}

// fill is the decode-ahead goroutine: it recycles batches from free,
// fills them from the Reader, and hands them to the consumer via out.
func (p *Pipelined) fill() {
	defer p.wg.Done()
	for {
		var b *pbatch
		select {
		case b = <-p.free:
		case <-p.stop:
			return
		}
		b.n, b.last, b.err = 0, false, nil
		for b.n < pipeBatch {
			if !p.r.Next(&b.recs[b.n]) {
				b.last = true
				b.err = p.r.Err()
				break
			}
			b.n++
		}
		select {
		case p.out <- b:
		case <-p.stop:
			return
		}
		if b.last {
			return
		}
	}
}

// Name returns the trace's workload name (immutable after NewReader, so
// safe to read while the decoder runs).
func (p *Pipelined) Name() string { return p.r.Name() }

// Next implements Source.
func (p *Pipelined) Next(d *DynInst) bool {
	for {
		if p.cur != nil && p.idx < p.cur.n {
			*d = p.cur.recs[p.idx]
			p.idx++
			return true
		}
		if p.done {
			return false
		}
		if p.cur != nil {
			if p.cur.last {
				p.done = true
				p.err = p.cur.err
				p.cur = nil
				return false
			}
			// Recycling never blocks: pipeDepth batches exist in total
			// and free has capacity for all of them.
			p.free <- p.cur
			p.cur = nil
		}
		p.cur = <-p.out
		p.idx = 0
	}
}

// Err implements Source: the Reader's final error, once the stream has
// reported end via Next.
func (p *Pipelined) Err() error { return p.err }

// Close stops the decode-ahead goroutine and waits for it to exit; the
// underlying Reader (and its file) may be released afterwards. Safe to
// call more than once.
func (p *Pipelined) Close() error {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	return nil
}

var _ Source = (*Pipelined)(nil)
