package trace

// In-memory columnar trace form. A grid replays the same .cvt stream
// under dozens of configurations; decoding it once into a compact
// struct-of-arrays representation and replaying through a per-job
// Cursor turns every job after the first from CRC + varint-delta decode
// into four array reads per instruction — with zero per-Next
// allocations and no shared mutable state, so any number of jobs can
// replay one MemTrace concurrently.

import (
	"errors"
	"fmt"
	"math"

	"clustervp/internal/isa"
)

// ErrNoMemForm means a trace cannot be held in the in-memory columnar
// form — its decoded size exceeds the caller's byte budget or a field
// overflows the compact column width. Callers fall back to the
// streaming Reader; the sentinel is never a data-integrity error.
var ErrNoMemForm = errors.New("trace: no in-memory form")

// instApproxBytes is the per-instruction accounting charge for the
// static code column (a deliberate overestimate of unsafe.Sizeof).
const instApproxBytes = 48

// MemTrace is a fully decoded trace in struct-of-arrays layout: PCs and
// next-PCs as int32 columns, taken bits as a bitset, and all operand /
// destination / address values interleaved in record order in one
// uint64 column (each record contributes exactly NumSrc + HasDest +
// IsLoad|IsStore values, so a cursor needs only a running index). The
// struct is immutable after ReadMem and safe for concurrent Cursors.
type MemTrace struct {
	name  string
	code  []isa.Inst
	pc    []int32
	next  []int32
	taken []uint64 // bitset, one bit per record
	vals  []uint64 // interleaved srcs, dst, addr per record
}

// Name returns the workload name from the trace header.
func (t *MemTrace) Name() string { return t.name }

// Len returns the number of dynamic records.
func (t *MemTrace) Len() int { return len(t.pc) }

// SizeBytes returns the approximate resident size used for arena
// accounting (column lengths, not capacities; the code column charged
// at a fixed overestimate per instruction).
func (t *MemTrace) SizeBytes() int64 {
	return int64(len(t.name)) +
		int64(len(t.code))*instApproxBytes +
		4*int64(len(t.pc)) +
		4*int64(len(t.next)) +
		8*int64(len(t.taken)) +
		8*int64(len(t.vals))
}

// NewCursor returns a Source replaying the trace from the beginning.
// Cursors are independent; any number may replay one MemTrace at once.
func (t *MemTrace) NewCursor() *Cursor { return &Cursor{t: t} }

// Cursor streams a MemTrace as a Source with zero allocations per Next.
type Cursor struct {
	t  *MemTrace
	i  int
	vi int
}

// Next implements Source: it reconstructs record i from the columns.
func (c *Cursor) Next(d *DynInst) bool {
	t := c.t
	i := c.i
	if i >= len(t.pc) {
		return false
	}
	pc := int(t.pc[i])
	in := t.code[pc]
	info := isa.InfoFor(in.Op)
	*d = DynInst{Seq: uint64(i), PC: pc, Inst: in, NextPC: int(t.next[i])}
	d.Taken = t.taken[i>>6]&(1<<uint(i&63)) != 0
	vi := c.vi
	for j := 0; j < info.NumSrc; j++ {
		d.SrcVal[j] = t.vals[vi]
		vi++
	}
	if info.HasDest {
		d.DstVal = t.vals[vi]
		vi++
	}
	if info.IsLoad || info.IsStore {
		d.Addr = t.vals[vi]
		vi++
	}
	c.i = i + 1
	c.vi = vi
	return true
}

// Err implements Source. Decoding was fully validated (CRCs, trailer,
// record flags) when the MemTrace was built, so replay cannot fail.
func (c *Cursor) Err() error { return nil }

var _ Source = (*Cursor)(nil)

// ReadMem drains r into a MemTrace with no size bound. The reader must
// be freshly positioned at the first record; it is fully consumed and
// its end-of-trace marker verified.
func ReadMem(r *Reader) (*MemTrace, error) { return ReadMemCapped(r, 0) }

// ReadMemCapped is ReadMem with a byte budget: when the decoded form
// would exceed maxBytes (>0), it stops and returns ErrNoMemForm so the
// caller can fall back to streaming. A non-positive maxBytes means
// unbounded.
func ReadMemCapped(r *Reader, maxBytes int64) (*MemTrace, error) {
	t := &MemTrace{name: r.Name(), code: r.Code()}
	fixed := int64(len(t.name)) + int64(len(t.code))*instApproxBytes
	var d DynInst
	for r.Next(&d) {
		if d.NextPC < 0 || d.NextPC > math.MaxInt32 {
			return nil, fmt.Errorf("%w: record %d: next pc %d overflows the column", ErrNoMemForm, d.Seq, d.NextPC)
		}
		i := len(t.pc)
		t.pc = append(t.pc, int32(d.PC))
		t.next = append(t.next, int32(d.NextPC))
		if i&63 == 0 {
			t.taken = append(t.taken, 0)
		}
		if d.Taken {
			t.taken[i>>6] |= 1 << uint(i&63)
		}
		info := d.Info()
		for j := 0; j < info.NumSrc; j++ {
			t.vals = append(t.vals, d.SrcVal[j])
		}
		if info.HasDest {
			t.vals = append(t.vals, d.DstVal)
		}
		if info.IsLoad || info.IsStore {
			t.vals = append(t.vals, d.Addr)
		}
		if maxBytes > 0 {
			if sz := fixed + 8*int64(len(t.pc)) + 8*int64(len(t.taken)) + 8*int64(len(t.vals)); sz > maxBytes {
				return nil, fmt.Errorf("%w: decoded size exceeds budget %d", ErrNoMemForm, maxBytes)
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
