package trace

import "sync"

// Arena is a bounded, content-keyed cache of decoded MemTraces shared
// read-only across all jobs in a grid: each distinct trace digest is
// decoded once, then every job replays it through its own Cursor. The
// byte budget is a hard admission bound, not an eviction policy —
// traces that do not fit simply stay on the streaming path, which keeps
// the arena's behavior trivially deterministic (results never depend on
// what happens to be cached).
type Arena struct {
	mu     sync.Mutex
	budget int64
	used   int64
	m      map[string]*MemTrace

	hits    uint64
	misses  uint64
	skipped uint64
}

// NewArena returns an arena admitting up to budget bytes of decoded
// trace (as measured by MemTrace.SizeBytes). A non-positive budget
// admits nothing, which degrades every consumer to streaming.
func NewArena(budget int64) *Arena {
	return &Arena{budget: budget, m: make(map[string]*MemTrace)}
}

// Get returns the decoded trace for key, or nil when absent.
func (a *Arena) Get(key string) *MemTrace {
	a.mu.Lock()
	t := a.m[key]
	if t != nil {
		a.hits++
	} else {
		a.misses++
	}
	a.mu.Unlock()
	return t
}

// Add admits t under key, reporting whether key is now resident. A
// losing racer's decode is wasted work but never wrong — both decodes
// of one digest are identical, and the survivor is shared. Over-budget
// traces are refused (counted in skipped).
func (a *Arena) Add(key string, t *MemTrace) bool {
	sz := t.SizeBytes()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.m[key]; ok {
		return true
	}
	if a.used+sz > a.budget {
		a.skipped++
		return false
	}
	a.m[key] = t
	a.used += sz
	return true
}

// Remaining returns the unallocated budget (never negative).
func (a *Arena) Remaining() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used >= a.budget {
		return 0
	}
	return a.budget - a.used
}

// Stats returns lifetime hit/miss/skip counters and resident bytes.
func (a *Arena) Stats() (hits, misses, skipped uint64, used int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits, a.misses, a.skipped, a.used
}
