package trace

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"clustervp/internal/isa"
	"clustervp/internal/program"
)

func buildLoopSum(n int64) *program.Program {
	// r1 = 0; for r2 = 0; r2 < n; r2++ { r1 += r2 } ; store r1 at 0
	b := program.NewBuilder("loopsum")
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 0)
	b.Li(isa.R3, n)
	b.Label("loop")
	b.R(isa.ADD, isa.R1, isa.R1, isa.R2)
	b.I(isa.ADDI, isa.R2, isa.R2, 1)
	b.Br(isa.BLT, isa.R2, isa.R3, "loop")
	b.Li(isa.R4, 0)
	b.Store(isa.SW, isa.R1, isa.R4, 0)
	b.Halt()
	return b.MustBuild()
}

func TestLoopSum(t *testing.T) {
	p := buildLoopSum(100)
	e := NewExecutor(p)
	n, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Memory().Load64(0); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	// 3 setup + 100 iterations * 3 + 2 tail
	if want := uint64(3 + 100*3 + 2); n != want {
		t.Errorf("dynamic count = %d, want %d", n, want)
	}
}

func TestR0HardwiredZero(t *testing.T) {
	b := program.NewBuilder("r0")
	b.Li(isa.R0, 99)
	b.I(isa.ADDI, isa.R1, isa.R0, 5)
	b.Halt()
	p := b.MustBuild()
	e := NewExecutor(p)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Reg(isa.R0) != 0 {
		t.Error("R0 must stay zero")
	}
	if e.Reg(isa.R1) != 5 {
		t.Errorf("R1 = %d, want 5", e.Reg(isa.R1))
	}
}

func TestBranchSemantics(t *testing.T) {
	cases := []struct {
		op    isa.Opcode
		a, b  int64
		taken bool
	}{
		{isa.BEQ, 3, 3, true}, {isa.BEQ, 3, 4, false},
		{isa.BNE, 3, 4, true}, {isa.BNE, 3, 3, false},
		{isa.BLT, -1, 0, true}, {isa.BLT, 0, -1, false},
		{isa.BGE, 0, 0, true}, {isa.BGE, -2, -1, false},
		{isa.BLTU, 1, 2, true}, {isa.BLTU, ^int64(0), 1, false},
		{isa.BGEU, ^int64(0), 1, true}, {isa.BGEU, 1, 2, false},
	}
	for _, c := range cases {
		b := program.NewBuilder("br")
		b.Li(isa.R1, c.a)
		b.Li(isa.R2, c.b)
		b.Br(c.op, isa.R1, isa.R2, "taken")
		b.Li(isa.R3, 0)
		b.Halt()
		b.Label("taken")
		b.Li(isa.R3, 1)
		b.Halt()
		e := NewExecutor(b.MustBuild())
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if c.taken {
			want = 1
		}
		if e.Reg(isa.R3) != want {
			t.Errorf("%v(%d,%d): taken=%v, want %v", c.op, c.a, c.b, e.Reg(isa.R3), want)
		}
	}
}

func TestCallReturnTrace(t *testing.T) {
	b := program.NewBuilder("call")
	b.Call("fn")    // 0
	b.Li(isa.R9, 7) // 1
	b.Halt()        // 2
	b.Label("fn")
	b.Li(isa.R8, 3) // 3
	b.Ret()         // 4
	p := b.MustBuild()
	tr, err := Collect(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4 {
		t.Fatalf("trace length = %d, want 4", len(tr))
	}
	if tr[0].NextPC != 3 || !tr[0].Taken {
		t.Errorf("call record: %+v", tr[0])
	}
	if tr[0].DstVal != 1 {
		t.Errorf("return address = %d, want 1", tr[0].DstVal)
	}
	if tr[2].Inst.Op != isa.JR || tr[2].NextPC != 1 {
		t.Errorf("ret record: %+v", tr[2])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(nil)
	m.Store64(100, 0xDEADBEEFCAFEF00D)
	if got := m.Load64(100); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("load64 = %#x", got)
	}
	m.Store8(5, 0x7F)
	if got := m.Load8(5); got != 0x7F {
		t.Errorf("load8 = %#x", got)
	}
	// Addresses wrap into the image rather than faulting.
	m.Store64(uint64(MemSize)+8, 42)
	if got := m.Load64(8); got != 42 {
		t.Errorf("wrapped store: got %d", got)
	}
}

func TestMemoryProperty(t *testing.T) {
	m := NewMemory(nil)
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr) % (MemSize - 8)
		a &^= 7
		m.Store64(a, v)
		return m.Load64(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloatOps(t *testing.T) {
	b := program.NewBuilder("fp")
	b.Fli(isa.F1, 1.5)
	b.Fli(isa.F2, 2.5)
	b.R(isa.FADD, isa.F3, isa.F1, isa.F2)
	b.R(isa.FMUL, isa.F4, isa.F1, isa.F2)
	b.R(isa.FDIV, isa.F5, isa.F2, isa.F1)
	b.R(isa.FSUB, isa.F6, isa.F1, isa.F2)
	b.R(isa.FLT, isa.R1, isa.F1, isa.F2)
	b.I(isa.CVTFI, isa.R2, isa.F4, 0)
	b.Li(isa.R3, 7)
	b.I(isa.CVTIF, isa.F7, isa.R3, 0)
	b.Halt()
	e := NewExecutor(b.MustBuild())
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	checkF := func(r isa.RegID, want float64) {
		t.Helper()
		if got := math.Float64frombits(e.Reg(r)); got != want {
			t.Errorf("%v = %g, want %g", r, got, want)
		}
	}
	checkF(isa.F3, 4.0)
	checkF(isa.F4, 3.75)
	checkF(isa.F5, 2.5/1.5)
	checkF(isa.F6, -1.0)
	checkF(isa.F7, 7.0)
	if e.Reg(isa.R1) != 1 {
		t.Error("FLT should be 1")
	}
	if e.Reg(isa.R2) != 3 {
		t.Errorf("CVTFI = %d, want 3", e.Reg(isa.R2))
	}
}

func TestDivideByZeroDefined(t *testing.T) {
	b := program.NewBuilder("div0")
	b.Li(isa.R1, 10)
	b.Li(isa.R2, 0)
	b.R(isa.DIV, isa.R3, isa.R1, isa.R2)
	b.R(isa.REM, isa.R4, isa.R1, isa.R2)
	b.Fli(isa.F1, 3.0)
	b.Fli(isa.F2, 0.0)
	b.R(isa.FDIV, isa.F3, isa.F1, isa.F2)
	b.Halt()
	e := NewExecutor(b.MustBuild())
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Reg(isa.R3) != 0 {
		t.Errorf("div by zero = %d, want 0", e.Reg(isa.R3))
	}
	if e.Reg(isa.R4) != 10 {
		t.Errorf("rem by zero = %d, want 10", e.Reg(isa.R4))
	}
	if math.Float64frombits(e.Reg(isa.F3)) != 0 {
		t.Error("fdiv by zero should be 0")
	}
}

func TestRunawayDetected(t *testing.T) {
	b := program.NewBuilder("spin")
	b.Label("loop")
	b.Jmp("loop")
	b.Halt()
	e := NewExecutor(b.MustBuild())
	_, err := e.Run(1000)
	if !errors.Is(err, ErrRunaway) {
		t.Fatalf("expected runaway, got %v", err)
	}
}

func TestDynInstCarriesValues(t *testing.T) {
	b := program.NewBuilder("vals")
	b.Li(isa.R1, 11)
	b.Li(isa.R2, 31)
	b.R(isa.ADD, isa.R3, isa.R1, isa.R2)
	b.Store(isa.SW, isa.R3, isa.R0, 64)
	b.Load(isa.LW, isa.R4, isa.R0, 64)
	b.Halt()
	tr, err := Collect(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	add := tr[2]
	if add.SrcVal[0] != 11 || add.SrcVal[1] != 31 || add.DstVal != 42 {
		t.Errorf("add record: %+v", add)
	}
	st := tr[3]
	if st.Addr != 64 || st.SrcVal[1] != 42 {
		t.Errorf("store record: %+v", st)
	}
	ld := tr[4]
	if ld.Addr != 64 || ld.DstVal != 42 {
		t.Errorf("load record: %+v", ld)
	}
}

func TestByteOps(t *testing.T) {
	b := program.NewBuilder("bytes")
	b.Li(isa.R1, -2) // 0xFE
	b.Store(isa.SB, isa.R1, isa.R0, 10)
	b.Load(isa.LB, isa.R2, isa.R0, 10)
	b.Halt()
	e := NewExecutor(b.MustBuild())
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if int64(e.Reg(isa.R2)) != -2 {
		t.Errorf("LB sign extension: got %d, want -2", int64(e.Reg(isa.R2)))
	}
}

func TestShiftOps(t *testing.T) {
	b := program.NewBuilder("shift")
	b.Li(isa.R1, -8)
	b.I(isa.SRAI, isa.R2, isa.R1, 1)
	b.I(isa.SRLI, isa.R3, isa.R1, 1)
	b.I(isa.SLLI, isa.R4, isa.R1, 2)
	b.Halt()
	e := NewExecutor(b.MustBuild())
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if int64(e.Reg(isa.R2)) != -4 {
		t.Errorf("SRAI = %d, want -4", int64(e.Reg(isa.R2)))
	}
	if int64(e.Reg(isa.R3)) != int64(uint64(0xFFFFFFFFFFFFFFF8)>>1) {
		t.Errorf("SRLI = %#x", e.Reg(isa.R3))
	}
	if int64(e.Reg(isa.R4)) != -32 {
		t.Errorf("SLLI = %d, want -32", int64(e.Reg(isa.R4)))
	}
}

// Property: ADD through the executor matches Go's int64 addition for
// arbitrary inputs.
func TestAddProperty(t *testing.T) {
	f := func(x, y int64) bool {
		b := program.NewBuilder("p")
		b.Li(isa.R1, x)
		b.Li(isa.R2, y)
		b.R(isa.ADD, isa.R3, isa.R1, isa.R2)
		b.Halt()
		e := NewExecutor(b.MustBuild())
		if _, err := e.Run(0); err != nil {
			return false
		}
		return int64(e.Reg(isa.R3)) == x+y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
