package trace

// This file defines the .cvt ("clustervp trace") binary container: a
// versioned, CRC-checked, varint-delta-encoded stream of DynInst
// records that replays bit-for-bit through the timing simulator.
//
// Layout (all integers are unsigned LEB128 varints unless noted; "zz"
// marks zigzag-encoded signed varints; CRCs are IEEE CRC-32 of the
// preceding payload, little-endian fixed 4 bytes):
//
//	file   := magic "CVTR" | version byte | header | block* | end
//	header := payloadLen | payload | crc32
//	          payload := nameLen | name | codeLen | inst*
//	inst   := op | rd byte | ra byte | rb byte | zz imm | fimmBits | zz target
//	block  := recordCount (>0) | payloadLen | payload | crc32
//	          payload := record*
//	end    := 0 | totalRecords | crc32 (over the totalRecords varint)
//
//	record := flags byte | zz pcDelta | zz nextDelta |
//	          zz srcDelta{0..nsrc} | [zz dstDelta] | [zz addrDelta]
//
// The flags byte packs taken (bit 0), hasDst (bit 1), hasAddr (bit 2)
// and nsrc (bits 3-4). Deltas are taken against decoder-reconstructible
// state: pcDelta against the previous record's PC, nextDelta against
// PC+1 (zero for straight-line code), operand and destination values
// against the last value seen in that architectural register, and
// addresses against the last memory address. Both ends advance the same
// state machine, so the stream stays in sync without any absolute
// values after the first record — stride-heavy media kernels compress
// to a few bytes per dynamic instruction.
//
// Versioning policy: the version byte after the magic is bumped on any
// incompatible change to the header or record layout; readers reject
// unknown versions with ErrVersion rather than guessing. Additive
// changes ride on flags bits, which old readers reject as corrupt
// instead of silently misdecoding (unknown bits 5-7 must be zero).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"clustervp/internal/isa"
)

// Magic identifies a .cvt trace file.
const Magic = "CVTR"

// Version is the current trace format version.
const Version = 1

// Decode-time limits: adversarial length fields must not drive
// allocation, so every variable-size structure is capped before any
// buffer is grown (FuzzTraceReader locks this in). maxHeaderPayload
// must accommodate the worst-case valid header — maxCodeLen
// instructions at maxInstEncoding bytes each plus the name — so that
// everything NewWriter accepts, NewReader accepts back.
const (
	maxNameLen       = 1 << 12
	maxCodeLen       = 1 << 18
	maxInstEncoding  = 2 + 3 + 10 + 10 + 10 // op + regs + imm + fimm + target varints
	maxHeaderPayload = maxNameLen + 2*10 + maxCodeLen*maxInstEncoding
	maxBlockPayload  = 1 << 20
	maxBlockRecords  = 1 << 16
)

// Writer-side block bounds: a block flushes at whichever limit it hits
// first. Both sit far under the decoder caps.
const (
	flushRecords = 1 << 12
	flushBytes   = 1 << 18
)

// Typed decode errors. Every failure path wraps exactly one of these,
// so callers can errors.Is-classify without string matching.
var (
	// ErrBadMagic means the input does not start with a .cvt header.
	ErrBadMagic = errors.New("trace: not a .cvt trace file")
	// ErrVersion means the file's format version is not supported.
	ErrVersion = errors.New("trace: unsupported trace format version")
	// ErrCorrupt means a CRC mismatch or a structurally invalid field.
	ErrCorrupt = errors.New("trace: corrupt trace")
	// ErrTruncated means the stream ended before the end-of-trace marker.
	ErrTruncated = errors.New("trace: truncated trace")
)

// deltaState is the shared encoder/decoder prediction context.
type deltaState struct {
	pc      int
	lastVal [isa.NumRegs]uint64
	lastAdr uint64
}

const (
	flagTaken  = 1 << 0
	flagDst    = 1 << 1
	flagAddr   = 1 << 2
	nsrcShift  = 3
	nsrcMask   = 3 << nsrcShift
	flagUnused = ^byte(flagTaken | flagDst | flagAddr | nsrcMask)
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams DynInst records into a .cvt container. It buffers one
// block at a time; Close writes the end-of-trace marker (it does not
// close the underlying io.Writer).
type Writer struct {
	w       io.Writer
	st      deltaState
	payload []byte // current block, encoded
	scratch []byte // varint staging for block headers
	records int
	total   uint64
	err     error
}

// NewWriter writes the .cvt header (trace name plus the static code the
// records index into) and returns a Writer for the record stream.
func NewWriter(w io.Writer, name string, code []isa.Inst) (*Writer, error) {
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("%w: trace name %d bytes exceeds %d", ErrCorrupt, len(name), maxNameLen)
	}
	if len(code) > maxCodeLen {
		return nil, fmt.Errorf("%w: static code %d instructions exceeds %d", ErrCorrupt, len(code), maxCodeLen)
	}
	tw := &Writer{w: w}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(len(code)))
	for _, in := range code {
		hdr = binary.AppendUvarint(hdr, uint64(in.Op))
		hdr = append(hdr, byte(in.Rd), byte(in.Ra), byte(in.Rb))
		hdr = binary.AppendUvarint(hdr, zigzag(in.Imm))
		hdr = binary.AppendUvarint(hdr, f2b(in.FImm))
		hdr = binary.AppendUvarint(hdr, zigzag(int64(in.Target)))
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return nil, err
	}
	if _, err := w.Write([]byte{Version}); err != nil {
		return nil, err
	}
	if err := tw.writeChecked(hdr, nil); err != nil {
		return nil, err
	}
	return tw, nil
}

// writeChecked emits prefix varints, a length-prefixed payload and its
// CRC — the framing shared by the header and every block.
func (w *Writer) writeChecked(payload []byte, prefix []uint64) error {
	w.scratch = w.scratch[:0]
	for _, p := range prefix {
		w.scratch = binary.AppendUvarint(w.scratch, p)
	}
	w.scratch = binary.AppendUvarint(w.scratch, uint64(len(payload)))
	if _, err := w.w.Write(w.scratch); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.w.Write(crc[:])
	return err
}

// Write appends one record to the stream.
func (w *Writer) Write(d *DynInst) error {
	if w.err != nil {
		return w.err
	}
	info := d.Info()
	nsrc := info.NumSrc
	flags := byte(nsrc) << nsrcShift
	if d.Taken {
		flags |= flagTaken
	}
	if info.HasDest {
		flags |= flagDst
	}
	if info.IsLoad || info.IsStore {
		flags |= flagAddr
	}
	p := w.payload
	p = append(p, flags)
	p = binary.AppendUvarint(p, zigzag(int64(d.PC-w.st.pc)))
	p = binary.AppendUvarint(p, zigzag(int64(d.NextPC-(d.PC+1))))
	for i := 0; i < nsrc; i++ {
		r := d.Inst.Source(i)
		p = binary.AppendUvarint(p, zigzag(int64(d.SrcVal[i]-w.st.lastVal[r])))
		w.st.lastVal[r] = d.SrcVal[i]
	}
	if flags&flagDst != 0 {
		p = binary.AppendUvarint(p, zigzag(int64(d.DstVal-w.st.lastVal[d.Inst.Rd])))
		w.st.lastVal[d.Inst.Rd] = d.DstVal
	}
	if flags&flagAddr != 0 {
		p = binary.AppendUvarint(p, zigzag(int64(d.Addr-w.st.lastAdr)))
		w.st.lastAdr = d.Addr
	}
	w.payload = p
	w.st.pc = d.PC
	w.records++
	w.total++
	if w.records >= flushRecords || len(w.payload) >= flushBytes {
		w.err = w.flush()
	}
	return w.err
}

// flush writes the buffered block, if any.
func (w *Writer) flush() error {
	if w.records == 0 {
		return nil
	}
	err := w.writeChecked(w.payload, []uint64{uint64(w.records)})
	w.payload = w.payload[:0]
	w.records = 0
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.total }

// Close flushes the final block and writes the end-of-trace marker with
// the total record count. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		w.err = err
		return err
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], 0)
	w.scratch = binary.AppendUvarint(w.scratch, w.total)
	tail := w.scratch[1:] // CRC covers the totalRecords varint only
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(tail))
	if _, err := w.w.Write(w.scratch); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(crc[:]); err != nil {
		w.err = err
		return err
	}
	w.err = errors.New("trace: writer closed")
	return nil
}

// Reader streams DynInst records out of a .cvt container. It implements
// Source; decoding is strictly sequential and holds at most one block
// in memory, so traces never need to fit in RAM.
type Reader struct {
	r    *bufio.Reader
	name string
	code []isa.Inst

	st      deltaState
	scratch []byte // reusable block buffer (full capacity)
	block   []byte // valid payload of the current block
	off     int    // decode position within block
	left    int    // records remaining in current block
	seq     uint64
	done    bool
	err     error
}

// NewReader parses the .cvt header from r and returns a Reader
// positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	tr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var magic [5]byte
	if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadMagic, err)
	}
	if string(magic[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, magic[:4])
	}
	if magic[4] != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, magic[4], Version)
	}
	hdr, err := tr.readChecked(maxHeaderPayload, "header")
	if err != nil {
		return nil, err
	}
	d := decoder{buf: hdr}
	nameLen := d.uvarint()
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrCorrupt, nameLen, maxNameLen)
	}
	tr.name = string(d.bytes(int(nameLen)))
	codeLen := d.uvarint()
	if codeLen > maxCodeLen {
		return nil, fmt.Errorf("%w: code length %d exceeds %d", ErrCorrupt, codeLen, maxCodeLen)
	}
	if d.err == nil {
		tr.code = make([]isa.Inst, codeLen)
		for i := range tr.code {
			op := d.uvarint()
			if op >= uint64(isa.NumOpcodes) {
				return nil, fmt.Errorf("%w: opcode %d out of range at code[%d]", ErrCorrupt, op, i)
			}
			tr.code[i] = isa.Inst{
				Op:     isa.Opcode(op),
				Rd:     isa.RegID(d.byte()),
				Ra:     isa.RegID(d.byte()),
				Rb:     isa.RegID(d.byte()),
				Imm:    unzigzag(d.uvarint()),
				FImm:   b2f(d.uvarint()),
				Target: int(unzigzag(d.uvarint())),
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, d.err)
	}
	if d.off != len(hdr) {
		return nil, fmt.Errorf("%w: %d trailing header bytes", ErrCorrupt, len(hdr)-d.off)
	}
	return tr, nil
}

// Name returns the trace's workload name from the header.
func (r *Reader) Name() string { return r.name }

// Code returns the static program the records index into.
func (r *Reader) Code() []isa.Inst { return r.code }

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.seq }

// Err returns the first decode error, if any; nil after a clean drain.
func (r *Reader) Err() error { return r.err }

// readChecked reads a length-prefixed payload and verifies its CRC,
// reusing the Reader's block buffer. cap0 pre-validates the length
// against maxBlockPayload when non-zero.
func (r *Reader) readChecked(cap0 uint64, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s length: %v", ErrTruncated, what, err)
	}
	limit := uint64(maxBlockPayload)
	if cap0 > 0 {
		limit = cap0
	}
	if n > limit {
		return nil, fmt.Errorf("%w: %s payload %d bytes exceeds %d", ErrCorrupt, what, n, limit)
	}
	if uint64(cap(r.scratch)) < n {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:cap(r.scratch)][:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrTruncated, what, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: %s checksum: %v", ErrTruncated, what, err)
	}
	if got, want := crc32.ChecksumIEEE(buf), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("%w: %s checksum mismatch (%08x != %08x)", ErrCorrupt, what, got, want)
	}
	return buf, nil
}

// nextBlock loads the next record block, or detects the end marker.
func (r *Reader) nextBlock() bool {
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: block count: %v", ErrTruncated, err)
		return false
	}
	if count == 0 {
		// End-of-trace marker: total record count, CRC-checked.
		total, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("%w: trailer: %v", ErrTruncated, err)
			return false
		}
		var enc [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(enc[:], total)
		var crc [4]byte
		if _, err := io.ReadFull(r.r, crc[:]); err != nil {
			r.err = fmt.Errorf("%w: trailer checksum: %v", ErrTruncated, err)
			return false
		}
		if got, want := crc32.ChecksumIEEE(enc[:n]), binary.LittleEndian.Uint32(crc[:]); got != want {
			r.err = fmt.Errorf("%w: trailer checksum mismatch", ErrCorrupt)
			return false
		}
		if total != r.seq {
			r.err = fmt.Errorf("%w: trailer records %d, decoded %d", ErrCorrupt, total, r.seq)
			return false
		}
		r.done = true
		return false
	}
	if count > maxBlockRecords {
		r.err = fmt.Errorf("%w: block of %d records exceeds %d", ErrCorrupt, count, maxBlockRecords)
		return false
	}
	block, err := r.readChecked(0, "block")
	if err != nil {
		r.err = err
		return false
	}
	r.block = block
	r.left = int(count)
	r.off = 0
	return true
}

// Next implements Source: it decodes one record into d.
func (r *Reader) Next(d *DynInst) bool {
	if r.err != nil || r.done {
		return false
	}
	if r.left == 0 && !r.nextBlock() {
		return false
	}
	dec := decoder{buf: r.block, off: r.off}
	flags := dec.byte()
	if flags&flagUnused != 0 {
		r.err = fmt.Errorf("%w: record %d: unknown flag bits %#02x", ErrCorrupt, r.seq, flags)
		return false
	}
	pc := r.st.pc + int(unzigzag(dec.uvarint()))
	if pc < 0 || pc >= len(r.code) {
		r.err = fmt.Errorf("%w: record %d: pc %d outside code [0,%d)", ErrCorrupt, r.seq, pc, len(r.code))
		return false
	}
	in := r.code[pc]
	nsrc := int(flags&nsrcMask) >> nsrcShift
	if info := isa.InfoFor(in.Op); nsrc != info.NumSrc ||
		(flags&flagDst != 0) != info.HasDest ||
		(flags&flagAddr != 0) != (info.IsLoad || info.IsStore) {
		r.err = fmt.Errorf("%w: record %d: flags %#02x inconsistent with opcode %v", ErrCorrupt, r.seq, flags, in.Op)
		return false
	}
	*d = DynInst{Seq: r.seq, PC: pc, Inst: in}
	d.NextPC = pc + 1 + int(unzigzag(dec.uvarint()))
	d.Taken = flags&flagTaken != 0
	for i := 0; i < nsrc; i++ {
		reg := in.Source(i)
		if !reg.Valid() {
			r.err = fmt.Errorf("%w: record %d: source register %d invalid", ErrCorrupt, r.seq, reg)
			return false
		}
		v := r.st.lastVal[reg] + uint64(unzigzag(dec.uvarint()))
		d.SrcVal[i] = v
		r.st.lastVal[reg] = v
	}
	if flags&flagDst != 0 {
		if !in.Rd.Valid() {
			r.err = fmt.Errorf("%w: record %d: destination register %d invalid", ErrCorrupt, r.seq, in.Rd)
			return false
		}
		v := r.st.lastVal[in.Rd] + uint64(unzigzag(dec.uvarint()))
		d.DstVal = v
		r.st.lastVal[in.Rd] = v
	}
	if flags&flagAddr != 0 {
		r.st.lastAdr += uint64(unzigzag(dec.uvarint()))
		d.Addr = r.st.lastAdr
	}
	if dec.err != nil {
		r.err = fmt.Errorf("%w: record %d: %v", ErrCorrupt, r.seq, dec.err)
		return false
	}
	r.st.pc = pc
	r.off = dec.off
	r.left--
	if r.left == 0 && r.off != len(r.block) {
		r.err = fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(r.block)-r.off)
		return false
	}
	r.seq++
	return true
}

// decoder is a bounds-checked cursor over a byte slice; the first
// failure latches err and poisons all further reads.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = errors.New("unexpected end of payload")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errors.New("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = errors.New("unexpected end of payload")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
