package trace_test

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"clustervp/internal/trace"
)

func newReader(t *testing.T, data []byte) *trace.Reader {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMemTraceCursorMatchesReader decodes a kernel trace into the
// columnar form and requires replay to be record-for-record identical
// to the streaming Reader, including from two concurrent cursors.
func TestMemTraceCursorMatchesReader(t *testing.T) {
	data, want := encodeKernel(t, "cjpeg", 1)
	mt, err := trace.ReadMem(newReader(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if mt.Name() != "cjpeg" {
		t.Errorf("Name() = %q, want cjpeg", mt.Name())
	}
	if mt.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", mt.Len(), len(want))
	}
	got := collect(t, mt.NewCursor())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cursor replay differs from the streaming Reader")
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := mt.NewCursor()
			var d trace.DynInst
			var n int
			for c.Next(&d) {
				if d.Seq != uint64(n) {
					t.Errorf("record %d: Seq = %d", n, d.Seq)
					return
				}
				n++
			}
			if n != len(want) {
				t.Errorf("concurrent cursor yielded %d records, want %d", n, len(want))
			}
		}()
	}
	wg.Wait()
}

// TestMemTraceCursorZeroAlloc pins the Source contract the columnar
// form exists for: Next never heap-allocates.
func TestMemTraceCursorZeroAlloc(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	mt, err := trace.ReadMem(newReader(t, data))
	if err != nil {
		t.Fatal(err)
	}
	c := mt.NewCursor()
	var d trace.DynInst
	if avg := testing.AllocsPerRun(2000, func() { c.Next(&d) }); avg != 0 {
		t.Errorf("Cursor.Next allocates %v per call, want 0", avg)
	}
}

// TestMemTraceBudgetFallback: a budget smaller than the decoded trace
// yields ErrNoMemForm (the stream-instead sentinel), not a hard error.
func TestMemTraceBudgetFallback(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	if _, err := trace.ReadMemCapped(newReader(t, data), 1024); !errors.Is(err, trace.ErrNoMemForm) {
		t.Fatalf("tiny budget: got %v, want ErrNoMemForm", err)
	}
	mt, err := trace.ReadMemCapped(newReader(t, data), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if mt.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive for a non-empty trace")
	}
}

// TestArenaAdmission covers the arena contract: decode-once sharing,
// hard budget admission, duplicate adds, and the stream-instead answer
// for misses.
func TestArenaAdmission(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	mt, err := trace.ReadMem(newReader(t, data))
	if err != nil {
		t.Fatal(err)
	}

	a := trace.NewArena(mt.SizeBytes())
	if got := a.Get("k1"); got != nil {
		t.Fatal("Get on empty arena must miss")
	}
	if !a.Add("k1", mt) {
		t.Fatal("first Add within budget must admit")
	}
	if got := a.Get("k1"); got != mt {
		t.Fatal("Get after Add must return the same MemTrace")
	}
	if !a.Add("k1", mt) {
		t.Error("duplicate Add of a resident key must report resident")
	}
	if a.Add("k2", mt) {
		t.Error("Add past the budget must refuse")
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d after filling the budget", a.Remaining())
	}
	hits, misses, skipped, used := a.Stats()
	if hits != 1 || misses != 1 || skipped != 1 || used != mt.SizeBytes() {
		t.Errorf("Stats = (%d,%d,%d,%d), want (1,1,1,%d)", hits, misses, skipped, used, mt.SizeBytes())
	}

	// Admitting nothing is a valid configuration (arena disabled).
	off := trace.NewArena(0)
	if off.Add("k", mt) {
		t.Error("zero-budget arena must admit nothing")
	}
}

// TestArenaConcurrentAddGet exercises the admission race: many
// goroutines decode and add the same key while others read it. Run
// under -race this pins the locking discipline.
func TestArenaConcurrentAddGet(t *testing.T) {
	data, _ := encodeKernel(t, "cjpeg", 1)
	mt, err := trace.ReadMem(newReader(t, data))
	if err != nil {
		t.Fatal(err)
	}
	a := trace.NewArena(10 * mt.SizeBytes())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if got := a.Get("k"); got == nil {
					a.Add("k", mt)
				} else if got != mt {
					t.Error("arena returned a foreign MemTrace")
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, _, _, used := a.Stats(); used != mt.SizeBytes() {
		t.Errorf("used = %d after racing adds of one key, want %d", used, mt.SizeBytes())
	}
}
