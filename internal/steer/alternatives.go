package steer

import "clustervp/internal/config"

// This file implements the steering baselines the paper compares against
// conceptually in §5 (related work), used by the ablation benchmarks:
//
//   - RoundRobin: communication-blind trace-processor-style distribution
//     ("likely to result in many inter-cluster communications since they
//     are not taken into account by the partitioning scheme", §5).
//   - LoadOnly: pure workload balancing, ignoring dependences — the
//     opposite extreme.
//   - DepFIFO: an approximation of the Dependence-based paradigm
//     [Palacharla et al.]: follow the producer of the first pending
//     operand ("same FIFO"), with no explicit balance mechanism; new
//     slices start on the cluster after the previous allocation.
//
// They satisfy the same Chooser interface as the paper's Steerer so the
// core can swap them in. All three consult per-cluster capacity on
// asymmetric machines: RoundRobin and DepFIFO allocate cyclically in
// proportion to issue width (smooth weighted round-robin), and LoadOnly
// reads the capacity-weighted balancer. On homogeneous machines every
// sequence is bit-identical to the unweighted implementations.

// Chooser selects a cluster for one instruction given its operand views.
type Chooser interface {
	Choose(ops []Operand) int
	Balancer() *Balancer
}

// wrr is a smooth weighted round-robin sequencer: each pick adds every
// cluster's weight to its credit, selects the highest credit (ties to
// the lower index) and charges it the weight sum. With uniform weights
// the sequence is plain cyclic 0,1,…,N-1; with weights {2,1,1} it is
// 0,1,2,0,… — each cluster appearing in proportion to its weight.
type wrr struct {
	weights []int64
	wsum    int64
	credit  []int64
}

// newWRR builds a sequencer from capacity weights (gcd-normalized, like
// the Balancer).
func newWRR(weights []int) *wrr {
	b := NewWeightedBalancer(weights)
	return &wrr{weights: b.weights, wsum: b.wsum, credit: make([]int64, len(b.weights))}
}

// next returns the next cluster in the weighted cycle.
func (w *wrr) next() int {
	best := 0
	for i := range w.credit {
		w.credit[i] += w.weights[i]
		if w.credit[i] > w.credit[best] {
			best = i
		}
	}
	w.credit[best] -= w.wsum
	return best
}

// RoundRobin distributes instructions cyclically — in proportion to
// cluster capacity on asymmetric machines — ignoring operands.
type RoundRobin struct {
	seq *wrr
	bal *Balancer
}

// NewRoundRobin builds a round-robin chooser.
func NewRoundRobin(cfg config.Config, bal *Balancer) *RoundRobin {
	return &RoundRobin{seq: newWRR(cfg.IssueWeights()), bal: bal}
}

// Choose implements Chooser.
func (r *RoundRobin) Choose([]Operand) int { return r.seq.next() }

// Balancer implements Chooser.
func (r *RoundRobin) Balancer() *Balancer { return r.bal }

// LoadOnly always picks the least-loaded cluster (capacity-weighted),
// ignoring dependences.
type LoadOnly struct {
	bal *Balancer
}

// NewLoadOnly builds a load-only chooser.
func NewLoadOnly(_ config.Config, bal *Balancer) *LoadOnly { return &LoadOnly{bal: bal} }

// Choose implements Chooser.
func (l *LoadOnly) Choose([]Operand) int { return l.bal.LeastLoaded(0) }

// Balancer implements Chooser.
func (l *LoadOnly) Balancer() *Balancer { return l.bal }

// DepFIFO approximates dependence-based steering: an instruction with a
// pending operand follows that operand's producer cluster; an
// instruction whose operands are all ready starts a new dependence
// slice on the next cluster of the capacity-proportional allocation
// cycle (implicit balancing via FIFO allocation, as in the
// dependence-based paradigm).
type DepFIFO struct {
	seq *wrr
	bal *Balancer
}

// NewDepFIFO builds a dependence-FIFO chooser.
func NewDepFIFO(cfg config.Config, bal *Balancer) *DepFIFO {
	seq := newWRR(cfg.IssueWeights())
	// Start the allocation cycle as if cluster 0 was just used, so the
	// first new slice lands on the next cluster — preserving the
	// homogeneous sequence 1,2,…,0 of the unweighted implementation.
	seq.credit[0] -= seq.wsum
	return &DepFIFO{seq: seq, bal: bal}
}

// Choose implements Chooser.
func (d *DepFIFO) Choose(ops []Operand) int {
	for _, op := range ops {
		if !op.Available {
			return op.ProducerCluster
		}
	}
	// New slice: next cluster in FIFO-allocation order.
	return d.seq.next()
}

// Balancer implements Chooser.
func (d *DepFIFO) Balancer() *Balancer { return d.bal }

var (
	_ Chooser = (*Steerer)(nil)
	_ Chooser = (*RoundRobin)(nil)
	_ Chooser = (*LoadOnly)(nil)
	_ Chooser = (*DepFIFO)(nil)
)
