package steer

import "clustervp/internal/config"

// This file implements the steering baselines the paper compares against
// conceptually in §5 (related work), used by the ablation benchmarks:
//
//   - RoundRobin: communication-blind trace-processor-style distribution
//     ("likely to result in many inter-cluster communications since they
//     are not taken into account by the partitioning scheme", §5).
//   - LoadOnly: pure workload balancing, ignoring dependences — the
//     opposite extreme.
//   - DepFIFO: an approximation of the Dependence-based paradigm
//     [Palacharla et al.]: follow the producer of the first pending
//     operand ("same FIFO"), with no explicit balance mechanism; new
//     slices start on the cluster after the previous allocation.
//
// They satisfy the same Chooser interface as the paper's Steerer so the
// core can swap them in.

// Chooser selects a cluster for one instruction given its operand views.
type Chooser interface {
	Choose(ops []Operand) int
	Balancer() *Balancer
}

// RoundRobin distributes instructions cyclically, ignoring operands.
type RoundRobin struct {
	clusters int
	next     int
	bal      *Balancer
}

// NewRoundRobin builds a round-robin chooser.
func NewRoundRobin(cfg config.Config, bal *Balancer) *RoundRobin {
	return &RoundRobin{clusters: cfg.Clusters, bal: bal}
}

// Choose implements Chooser.
func (r *RoundRobin) Choose([]Operand) int {
	c := r.next
	r.next = (r.next + 1) % r.clusters
	return c
}

// Balancer implements Chooser.
func (r *RoundRobin) Balancer() *Balancer { return r.bal }

// LoadOnly always picks the least-loaded cluster, ignoring dependences.
type LoadOnly struct {
	bal *Balancer
}

// NewLoadOnly builds a load-only chooser.
func NewLoadOnly(_ config.Config, bal *Balancer) *LoadOnly { return &LoadOnly{bal: bal} }

// Choose implements Chooser.
func (l *LoadOnly) Choose([]Operand) int { return l.bal.LeastLoaded(0) }

// Balancer implements Chooser.
func (l *LoadOnly) Balancer() *Balancer { return l.bal }

// DepFIFO approximates dependence-based steering: an instruction with a
// pending operand follows that operand's producer cluster; an
// instruction whose operands are all ready starts a new dependence
// slice on the cluster after the last slice start (implicit balancing
// via FIFO allocation, as in the dependence-based paradigm).
type DepFIFO struct {
	clusters  int
	lastSlice int
	bal       *Balancer
}

// NewDepFIFO builds a dependence-FIFO chooser.
func NewDepFIFO(cfg config.Config, bal *Balancer) *DepFIFO {
	return &DepFIFO{clusters: cfg.Clusters, bal: bal}
}

// Choose implements Chooser.
func (d *DepFIFO) Choose(ops []Operand) int {
	for _, op := range ops {
		if !op.Available {
			return op.ProducerCluster
		}
	}
	// New slice: next cluster in FIFO-allocation order.
	d.lastSlice = (d.lastSlice + 1) % d.clusters
	return d.lastSlice
}

// Balancer implements Chooser.
func (d *DepFIFO) Balancer() *Balancer { return d.bal }

var (
	_ Chooser = (*Steerer)(nil)
	_ Chooser = (*RoundRobin)(nil)
	_ Chooser = (*LoadOnly)(nil)
	_ Chooser = (*DepFIFO)(nil)
)
