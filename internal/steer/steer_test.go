package steer

import (
	"testing"
	"testing/quick"

	"clustervp/internal/config"
)

func cfg4(kind config.SteeringKind) config.Config {
	c := config.Preset(4)
	c.Steering = kind
	return c
}

func TestBalancerInvariantSumZero(t *testing.T) {
	b := NewBalancer(4)
	seq := []int{0, 1, 1, 2, 3, 3, 3, 0}
	for _, c := range seq {
		b.Dispatched(c)
	}
	var sum int64
	for i := 0; i < 4; i++ {
		sum += b.Count(i)
	}
	if sum != 0 {
		t.Errorf("DCOUNT counters must sum to zero, got %d", sum)
	}
}

func TestBalancerCountsSurplus(t *testing.T) {
	b := NewBalancer(4)
	// 4 dispatches all to cluster 0: counter 0 = 4*(4-1) - 0 = 12,
	// which is N * (4 - 1 average) = 4*3.
	for i := 0; i < 4; i++ {
		b.Dispatched(0)
	}
	if b.Count(0) != 12 {
		t.Errorf("count(0) = %d, want 12", b.Count(0))
	}
	if b.Imbalance() != 12 {
		t.Errorf("imbalance = %d, want 12", b.Imbalance())
	}
}

func TestLeastLoadedRespectsMask(t *testing.T) {
	b := NewBalancer(4)
	b.Dispatched(1) // cluster 1 loaded, others at -1
	if got := b.LeastLoaded(0); got == 1 {
		t.Error("least loaded must not be the loaded cluster")
	}
	if got := b.LeastLoaded(1 << 1); got != 1 {
		t.Errorf("masked least loaded = %d, want 1", got)
	}
	if got := b.LeastLoaded(0b0110); got != 2 {
		t.Errorf("masked least loaded = %d, want 2", got)
	}
}

func TestSingleClusterAlwaysZero(t *testing.T) {
	c := config.Preset(1)
	s := New(c, NewBalancer(1))
	if got := s.Choose([]Operand{{Available: false, ProducerCluster: 0}}); got != 0 {
		t.Errorf("1-cluster steering = %d", got)
	}
}

func TestRule1ImbalanceOverride(t *testing.T) {
	s := New(cfg4(config.SteerBaseline), NewBalancer(4))
	// Push cluster 0 far above the threshold (32 for 4 clusters).
	for i := 0; i < 20; i++ {
		s.Balancer().Dispatched(0)
	}
	// Even though the operand pins to cluster 0, rule 1 must win.
	got := s.Choose([]Operand{{Available: false, ProducerCluster: 0}})
	if got == 0 {
		t.Error("rule 1 must override communication affinity under high imbalance")
	}
}

func TestRule21PendingOperandPins(t *testing.T) {
	s := New(cfg4(config.SteerBaseline), NewBalancer(4))
	got := s.Choose([]Operand{
		{Available: false, ProducerCluster: 2},
		{Available: true, MappedIn: 1 << 0},
	})
	if got != 2 {
		t.Errorf("pending operand should pin to cluster 2, got %d", got)
	}
}

func TestRule21TwoPendingPicksLeastLoaded(t *testing.T) {
	b := NewBalancer(4)
	s := New(cfg4(config.SteerBaseline), b)
	b.Dispatched(1) // cluster 1 slightly loaded
	got := s.Choose([]Operand{
		{Available: false, ProducerCluster: 1},
		{Available: false, ProducerCluster: 3},
	})
	if got != 3 {
		t.Errorf("between producers 1 and 3, least loaded is 3; got %d", got)
	}
}

func TestRule22MostMappedWins(t *testing.T) {
	s := New(cfg4(config.SteerBaseline), NewBalancer(4))
	got := s.Choose([]Operand{
		{Available: true, MappedIn: 1<<1 | 1<<2},
		{Available: true, MappedIn: 1 << 1},
	})
	if got != 1 {
		t.Errorf("cluster 1 maps both operands, got %d", got)
	}
}

func TestRule23NoOperandsLeastLoaded(t *testing.T) {
	b := NewBalancer(4)
	s := New(cfg4(config.SteerBaseline), b)
	b.Dispatched(0)
	b.Dispatched(1)
	b.Dispatched(2)
	if got := s.Choose(nil); got != 3 {
		t.Errorf("no-operand instruction should go to least loaded 3, got %d", got)
	}
}

func TestBaselineIgnoresPrediction(t *testing.T) {
	s := New(cfg4(config.SteerBaseline), NewBalancer(4))
	got := s.Choose([]Operand{
		{Available: false, ProducerCluster: 2, Predicted: true},
	})
	if got != 2 {
		t.Errorf("baseline must pin to producer even when predicted, got %d", got)
	}
}

func TestModifiedM1TreatsPredictedAvailable(t *testing.T) {
	b := NewBalancer(4)
	s := New(cfg4(config.SteerModified), b)
	b.Dispatched(2) // make 2 NOT least loaded
	// Predicted pending operand: M1 lifts the rule-2.1 pin; M2 makes it
	// mapped everywhere, so rule 2.2 gives all clusters; least loaded of
	// the remaining picked.
	got := s.Choose([]Operand{
		{Available: false, ProducerCluster: 2, Predicted: true},
	})
	if got == 2 {
		t.Error("modified steering must not pin predicted operand to its producer")
	}
}

func TestVPBM2OnlyUnderImbalance(t *testing.T) {
	// Balanced machine: VPB uses M1 but NOT M2, so a predicted operand
	// mapped only in cluster 1 still biases rule 2.2 to cluster 1.
	b := NewBalancer(4)
	s := New(cfg4(config.SteerVPB), b)
	got := s.Choose([]Operand{
		{Available: true, MappedIn: 1 << 1, Predicted: true},
		{Available: false, ProducerCluster: 1, Predicted: true}, // M1: treated available
	})
	if got != 1 {
		t.Errorf("balanced VPB should respect the mapping (cluster 1), got %d", got)
	}
	// Now raise imbalance above VPBThreshold (16): M2 kicks in and the
	// mapping constraint dissolves; the least loaded cluster wins.
	for i := 0; i < 7; i++ {
		b.Dispatched(1) // imbalance = 7*4 = 28 > 16, still <= 32 (rule 1 off)
	}
	got = s.Choose([]Operand{
		{Available: true, MappedIn: 1 << 1, Predicted: true},
	})
	if got == 1 {
		t.Error("imbalanced VPB should free the predicted operand from its mapping")
	}
}

func TestVPBRule1StillWins(t *testing.T) {
	b := NewBalancer(4)
	s := New(cfg4(config.SteerVPB), b)
	for i := 0; i < 12; i++ {
		b.Dispatched(1) // imbalance 48 > 32
	}
	got := s.Choose([]Operand{{Available: false, ProducerCluster: 1}})
	if got == 1 {
		t.Error("rule 1 must send to least loaded under extreme imbalance")
	}
}

func TestUnmappedOperandsFallToRule23(t *testing.T) {
	// Operands available but mapped nowhere (e.g. constant-like): rule
	// 2.2 finds zero mapped, falls through to 2.3.
	b := NewBalancer(4)
	s := New(cfg4(config.SteerBaseline), b)
	b.Dispatched(0)
	got := s.Choose([]Operand{{Available: true, MappedIn: 0}})
	if got == 0 {
		t.Error("should pick a least-loaded cluster, not the loaded one")
	}
}

// Property: DCOUNT counters always sum to zero.
func TestBalancerSumZeroProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		b := NewBalancer(4)
		for _, v := range seq {
			b.Dispatched(int(v % 4))
		}
		var sum int64
		for i := 0; i < 4; i++ {
			sum += b.Count(i)
		}
		return sum == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Choose always returns a valid cluster index.
func TestChooseRangeProperty(t *testing.T) {
	b := NewBalancer(4)
	s := New(cfg4(config.SteerVPB), b)
	f := func(avail, pred bool, mapped uint8, prod uint8, disp uint8) bool {
		b.Dispatched(int(disp % 4))
		got := s.Choose([]Operand{{
			Available:       avail,
			Predicted:       pred,
			MappedIn:        uint32(mapped) & 0xF,
			ProducerCluster: int(prod % 4),
		}})
		return got >= 0 && got < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
