package steer

// Tests for capacity-weighted steering on asymmetric machines, plus the
// O(1)-Dispatched Balancer representation: equivalence with the paper's
// per-dispatch increment loop, the sum-to-zero invariant under weights,
// and every steering scheme preferring the wider cluster.

import (
	"testing"
	"testing/quick"

	"clustervp/internal/config"
)

// asymCfg is a 3-cluster machine with one double-width cluster:
// weights (issue int+fp) 6:3:3, normalized 2:1:1.
func asymCfg(kind config.SteeringKind) config.Config {
	return config.FromSpecs(
		config.DefaultSpec(4, 16),
		config.DefaultSpec(2, 8),
		config.DefaultSpec(2, 8),
	).WithSteering(kind)
}

func asymBalancer() *Balancer {
	return NewWeightedBalancer(asymCfg(config.SteerBaseline).IssueWeights())
}

// refBalancer is the pre-refactor O(N) implementation, generalized to
// weights exactly as the Balancer documents: dispatching to c adds
// U-u_c to counter c and subtracts u_j from every other counter.
type refBalancer struct {
	weights []int64
	wsum    int64
	counts  []int64
}

func newRefBalancer(weights []int64, wsum int64) *refBalancer {
	return &refBalancer{weights: weights, wsum: wsum, counts: make([]int64, len(weights))}
}

func (b *refBalancer) dispatched(c int) {
	for i := range b.counts {
		b.counts[i] -= b.weights[i]
	}
	b.counts[c] += b.wsum
}

// TestBalancerMatchesIncrementLoop proves the O(1) delta+offset
// representation equivalent to the per-dispatch increment loop, for the
// uniform case and an asymmetric one, over a pseudo-random dispatch
// sequence.
func TestBalancerMatchesIncrementLoop(t *testing.T) {
	for _, tc := range []struct {
		name    string
		weights []int
	}{
		{"uniform4", []int{1, 1, 1, 1}},
		{"asym", []int{6, 3, 3}},
		{"gcd-reducible", []int{4, 2, 2, 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewWeightedBalancer(tc.weights)
			ref := newRefBalancer(b.weights, b.wsum)
			state := uint64(42)
			for i := 0; i < 10_000; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				c := int(state>>33) % len(tc.weights)
				b.Dispatched(c)
				ref.dispatched(c)
				if i%97 != 0 {
					continue
				}
				for j := range tc.weights {
					if b.Count(j) != ref.counts[j] {
						t.Fatalf("step %d: Count(%d) = %d, increment loop has %d",
							i, j, b.Count(j), ref.counts[j])
					}
				}
			}
		})
	}
}

// TestWeightedCountersSumZeroProperty: however the weights are drawn
// and wherever the instructions go, the DCOUNT counters sum to zero.
func TestWeightedCountersSumZeroProperty(t *testing.T) {
	f := func(rawWeights []uint8, seq []uint8) bool {
		weights := make([]int, 0, 4)
		for _, w := range rawWeights {
			weights = append(weights, int(w%8)+1)
			if len(weights) == 4 {
				break
			}
		}
		if len(weights) == 0 {
			weights = []int{1}
		}
		b := NewWeightedBalancer(weights)
		for _, v := range seq {
			b.Dispatched(int(v) % len(weights))
		}
		var sum int64
		for i := range weights {
			sum += b.Count(i)
		}
		return sum == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWeightedBalancerNormalizesGCD: a homogeneous machine of any width
// must reduce to weight 1 per cluster, reproducing the unweighted
// counters bit for bit.
func TestWeightedBalancerNormalizesGCD(t *testing.T) {
	wide := NewWeightedBalancer([]int{6, 6, 6, 6})
	plain := NewBalancer(4)
	for _, c := range []int{0, 1, 1, 3, 0, 2} {
		wide.Dispatched(c)
		plain.Dispatched(c)
	}
	for c := 0; c < 4; c++ {
		if wide.Count(c) != plain.Count(c) {
			t.Errorf("cluster %d: weighted-homogeneous count %d != uniform count %d",
				c, wide.Count(c), plain.Count(c))
		}
		if wide.Weight(c) != 1 {
			t.Errorf("cluster %d: homogeneous weight %d, want 1 after gcd normalization", c, wide.Weight(c))
		}
	}
}

// TestAllSchemesPreferWiderCluster is the asymmetry acceptance test:
// under every steering scheme, a stream of operand-free instructions on
// the 2:1:1 machine must land on the double-width cluster roughly twice
// as often as on either narrow one.
func TestAllSchemesPreferWiderCluster(t *testing.T) {
	const n = 1200
	for _, tc := range []struct {
		name string
		mk   func() Chooser
	}{
		{"baseline", func() Chooser { return New(asymCfg(config.SteerBaseline), asymBalancer()) }},
		{"modified", func() Chooser { return New(asymCfg(config.SteerModified), asymBalancer()) }},
		{"vpb", func() Chooser { return New(asymCfg(config.SteerVPB), asymBalancer()) }},
		{"roundrobin", func() Chooser { return NewRoundRobin(asymCfg(config.SteerRoundRobin), asymBalancer()) }},
		{"loadonly", func() Chooser { return NewLoadOnly(asymCfg(config.SteerLoadOnly), asymBalancer()) }},
		{"depfifo", func() Chooser { return NewDepFIFO(asymCfg(config.SteerDepFIFO), asymBalancer()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			counts := make([]int, 3)
			ops := []Operand{{Available: true}}
			for i := 0; i < n; i++ {
				c := s.Choose(ops)
				counts[c]++
				s.Balancer().Dispatched(c)
			}
			if counts[0]+counts[1]+counts[2] != n {
				t.Fatalf("counts %v do not sum to %d", counts, n)
			}
			// The wide cluster has half the machine's capacity: it must
			// receive clearly more than either narrow cluster (ideal
			// share 50% vs 25%; allow generous slack for scheme quirks).
			if counts[0] <= counts[1] || counts[0] <= counts[2] {
				t.Errorf("wide cluster got %d, narrow got %d/%d — capacity ignored", counts[0], counts[1], counts[2])
			}
			if lo := n * 2 / 5; counts[0] < lo {
				t.Errorf("wide cluster share %d/%d below %d — not capacity-proportional", counts[0], n, lo)
			}
		})
	}
}

// TestWeightedSteeringDivergesFromUniform proves capacity-weighted
// DCOUNT changes behaviour on an asymmetric spec: the same Steerer
// driven by a weighted balancer and by a uniform one must disagree on
// at least one choice of an operand-free stream.
func TestWeightedSteeringDivergesFromUniform(t *testing.T) {
	cfg := asymCfg(config.SteerBaseline)
	weighted := New(cfg, NewWeightedBalancer(cfg.IssueWeights()))
	uniform := New(cfg, NewBalancer(cfg.NumClusters()))
	diverged := false
	for i := 0; i < 100; i++ {
		a := weighted.Choose(nil)
		b := uniform.Choose(nil)
		if a != b {
			diverged = true
			break
		}
		weighted.Balancer().Dispatched(a)
		uniform.Balancer().Dispatched(b)
	}
	if !diverged {
		t.Error("capacity weighting never changed a steering decision on the 2:1:1 machine")
	}
}

// TestWRRProportions pins the smooth weighted round-robin sequence on
// the 2:1:1 machine: period 4, wide cluster twice per period.
func TestWRRProportions(t *testing.T) {
	seq := newWRR([]int{2, 1, 1})
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, seq.next())
	}
	want := []int{0, 1, 2, 0, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrr sequence = %v, want %v", got, want)
		}
	}
}

// BenchmarkBalancerDispatched pins the O(1) dispatch cost: it must not
// scale with the cluster count (the pre-refactor loop was O(N)).
func BenchmarkBalancerDispatched(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(map[int]string{4: "4clusters", 64: "64clusters"}[n], func(b *testing.B) {
			bal := NewBalancer(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bal.Dispatched(i % n)
			}
		})
	}
}
