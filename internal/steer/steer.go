// Package steer implements the paper's dynamic instruction-steering
// heuristics (§2.3, §3): the Baseline scheme (an enhanced "Advanced RMBS"
// generalized to N homogeneous clusters), the §3.2 Modified scheme, and
// the §3.3 VPB (Value Prediction Based) scheme, together with the DCOUNT
// workload-balance counters the steering decisions consult.
package steer

import "clustervp/internal/config"

// Operand is the steering-relevant view of one source operand at
// dispatch.
type Operand struct {
	// Available is true when the operand's value has already been
	// produced somewhere (§2.3.1 "available at dispatch time").
	Available bool
	// MappedIn is a bitmask of clusters holding a valid mapping.
	MappedIn uint32
	// ProducerCluster is the cluster where a pending operand is being
	// produced (meaningful when !Available).
	ProducerCluster int
	// Predicted is true when the value predictor produced a confident
	// prediction for this operand.
	Predicted bool
}

// Balancer maintains the paper's DCOUNT workload counters: dispatching
// to cluster c adds N-1 to counter c and subtracts 1 from every other, so
// counters always sum to zero and counter c equals N times the surplus of
// cluster c over the per-cluster average (§2.3.2).
type Balancer struct {
	counts []int64
}

// NewBalancer builds a Balancer for n clusters.
func NewBalancer(n int) *Balancer { return &Balancer{counts: make([]int64, n)} }

// Dispatched records an instruction steered to cluster c.
func (b *Balancer) Dispatched(c int) {
	n := int64(len(b.counts))
	for i := range b.counts {
		b.counts[i]--
	}
	b.counts[c] += n
}

// Imbalance is the maximum absolute counter value.
func (b *Balancer) Imbalance() int64 {
	var m int64
	for _, v := range b.counts {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Count returns cluster c's counter.
func (b *Balancer) Count(c int) int64 { return b.counts[c] }

// LeastLoaded returns the cluster with the minimum counter among those in
// mask (a bitmask; 0 means all clusters). Ties break toward the lower
// cluster index.
func (b *Balancer) LeastLoaded(mask uint32) int {
	best := -1
	for i, v := range b.counts {
		if mask != 0 && mask&(1<<uint(i)) == 0 {
			continue
		}
		if best == -1 || v < b.counts[best] {
			best = i
		}
	}
	if best == -1 {
		best = 0
	}
	return best
}

// Reset zeroes the counters.
func (b *Balancer) Reset() {
	for i := range b.counts {
		b.counts[i] = 0
	}
}

// Steerer chooses a cluster for each dispatched instruction.
type Steerer struct {
	kind      config.SteeringKind
	clusters  int
	threshold int64 // rule-1 imbalance threshold
	vpbThresh int64 // VPB M2 threshold
	allMask   uint32
	bal       *Balancer
}

// New builds a Steerer from the machine configuration, sharing the given
// Balancer (the core also reads it for statistics).
func New(cfg config.Config, bal *Balancer) *Steerer {
	return &Steerer{
		kind:      cfg.Steering,
		clusters:  cfg.Clusters,
		threshold: int64(cfg.BalanceThreshold),
		vpbThresh: int64(cfg.VPBThreshold),
		allMask:   (1 << uint(cfg.Clusters)) - 1,
		bal:       bal,
	}
}

// Choose implements the §3.1 algorithm with the §3.2/§3.3 modifications:
//
//  1. If the workload imbalance exceeds the threshold, send the
//     instruction to the least loaded cluster.
//  2. Otherwise identify the clusters with minimum communication penalty:
//     2.1 if any source operand is pending, the clusters producing the
//     pending operands; 2.2 else the clusters where the most operands
//     are mapped; 2.3 else all clusters.
//  3. Pick the least loaded cluster among the candidates.
//
// Under Modified/VPB steering, confidently predicted operands count as
// available in rule 2.1 (M1); under Modified always — and under VPB only
// when imbalance > VPBThreshold — they also count as mapped in every
// cluster in rule 2.2 (M2).
func (s *Steerer) Choose(ops []Operand) int {
	if s.clusters == 1 {
		return 0
	}
	imbalance := s.bal.Imbalance()
	if imbalance > s.threshold {
		return s.bal.LeastLoaded(0)
	}

	useM1 := s.kind == config.SteerModified || s.kind == config.SteerVPB
	useM2 := s.kind == config.SteerModified ||
		(s.kind == config.SteerVPB && imbalance > s.vpbThresh)

	// Rule 2.1: pending operands pin the candidates to their producer
	// clusters.
	var pendingMask uint32
	for _, op := range ops {
		avail := op.Available
		if useM1 && op.Predicted {
			avail = true
		}
		if !avail {
			pendingMask |= 1 << uint(op.ProducerCluster)
		}
	}
	if pendingMask != 0 {
		return s.bal.LeastLoaded(pendingMask)
	}

	// Rule 2.2: clusters with the greatest number of mapped operands.
	if len(ops) > 0 {
		best := -1
		var bestMask uint32
		for c := 0; c < s.clusters; c++ {
			n := 0
			for _, op := range ops {
				mapped := op.MappedIn&(1<<uint(c)) != 0
				if useM2 && op.Predicted {
					mapped = true
				}
				if mapped {
					n++
				}
			}
			if n > best {
				best = n
				bestMask = 1 << uint(c)
			} else if n == best {
				bestMask |= 1 << uint(c)
			}
		}
		if best > 0 {
			return s.bal.LeastLoaded(bestMask)
		}
	}

	// Rule 2.3: no constraints.
	return s.bal.LeastLoaded(s.allMask)
}

// Balancer returns the shared balancer.
func (s *Steerer) Balancer() *Balancer { return s.bal }
