// Package steer implements the paper's dynamic instruction-steering
// heuristics (§2.3, §3): the Baseline scheme (an enhanced "Advanced RMBS"
// generalized to N clusters), the §3.2 Modified scheme, and the §3.3 VPB
// (Value Prediction Based) scheme, together with the DCOUNT
// workload-balance counters the steering decisions consult.
//
// The DCOUNT counters are capacity-weighted so the heuristics extend to
// heterogeneous machines: each cluster carries a weight proportional to
// its issue width, and "balanced" means equal utilization rather than
// equal instruction count. On homogeneous machines the weights normalize
// to 1 and every counter value is bit-identical to the paper's scheme.
package steer

import "clustervp/internal/config"

// Operand is the steering-relevant view of one source operand at
// dispatch.
type Operand struct {
	// Available is true when the operand's value has already been
	// produced somewhere (§2.3.1 "available at dispatch time").
	Available bool
	// MappedIn is a bitmask of clusters holding a valid mapping.
	MappedIn uint32
	// ProducerCluster is the cluster where a pending operand is being
	// produced (meaningful when !Available).
	ProducerCluster int
	// Predicted is true when the value predictor produced a confident
	// prediction for this operand.
	Predicted bool
}

// Balancer maintains the paper's DCOUNT workload counters, generalized
// to capacity weights. With normalized weights u_c (gcd-reduced issue
// widths; all 1 on homogeneous machines) and U = Σu_c, dispatching to
// cluster c conceptually adds U-u_c to counter c and subtracts u_j from
// every other counter j, so the counters always sum to zero and counter
// c equals U·(d_c − u_c·D/U): the surplus of cluster c over its
// capacity share of the D dispatched instructions (§2.3.2, weighted).
//
// The representation makes Dispatched O(1): it stores only the
// per-cluster dispatch tallies d_c and the global total D, and
// materializes counter c as U·d_c − u_c·D on read. For uniform weights
// that is N·d_c − D — exactly the value the paper's per-dispatch
// increment loop maintains.
type Balancer struct {
	weights []int64 // normalized capacity weights u_c
	wsum    int64   // U = Σ u_c
	disp    []int64 // d_c: instructions dispatched to cluster c
	total   int64   // D = Σ d_c
}

// NewBalancer builds a Balancer for n equally-weighted clusters (the
// paper's homogeneous machines).
func NewBalancer(n int) *Balancer {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return NewWeightedBalancer(w)
}

// NewWeightedBalancer builds a Balancer whose cluster c has capacity
// weight weights[c] (typically the cluster's total issue width). The
// weights are normalized by their gcd, so homogeneous machines reduce
// to weight 1 per cluster and reproduce the unweighted counters
// bit-for-bit.
func NewWeightedBalancer(weights []int) *Balancer {
	b := &Balancer{
		weights: make([]int64, len(weights)),
		disp:    make([]int64, len(weights)),
	}
	g := 0
	for _, w := range weights {
		if w < 1 {
			panic("steer: capacity weights must be >= 1")
		}
		g = gcd(g, w)
	}
	for i, w := range weights {
		b.weights[i] = int64(w / g)
		b.wsum += b.weights[i]
	}
	return b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Dispatched records an instruction steered to cluster c in O(1).
func (b *Balancer) Dispatched(c int) {
	b.disp[c]++
	b.total++
}

// Count returns cluster c's DCOUNT counter: U·d_c − u_c·D.
func (b *Balancer) Count(c int) int64 {
	return b.wsum*b.disp[c] - b.weights[c]*b.total
}

// Imbalance is the maximum absolute counter value.
func (b *Balancer) Imbalance() int64 {
	var m int64
	for c := range b.disp {
		v := b.Count(c)
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Weight returns cluster c's normalized capacity weight.
func (b *Balancer) Weight(c int) int64 { return b.weights[c] }

// Clusters returns the cluster count.
func (b *Balancer) Clusters() int { return len(b.disp) }

// LeastLoaded returns the cluster with the minimum counter among those in
// mask (a bitmask; 0 means all clusters). Ties break toward the lower
// cluster index.
func (b *Balancer) LeastLoaded(mask uint32) int {
	best := -1
	var bestCount int64
	for i := range b.disp {
		if mask != 0 && mask&(1<<uint(i)) == 0 {
			continue
		}
		v := b.Count(i)
		if best == -1 || v < bestCount {
			best, bestCount = i, v
		}
	}
	if best == -1 {
		best = 0
	}
	return best
}

// Reset zeroes the counters.
func (b *Balancer) Reset() {
	for i := range b.disp {
		b.disp[i] = 0
	}
	b.total = 0
}

// Steerer chooses a cluster for each dispatched instruction.
type Steerer struct {
	kind      config.SteeringKind
	clusters  int
	threshold int64 // rule-1 imbalance threshold
	vpbThresh int64 // VPB M2 threshold
	allMask   uint32
	bal       *Balancer
	counts    [32]int64 // per-Choose DCOUNT snapshot scratch
}

// New builds a Steerer from the machine configuration, sharing the given
// Balancer (the core also reads it for statistics).
func New(cfg config.Config, bal *Balancer) *Steerer {
	n := cfg.NumClusters()
	return &Steerer{
		kind:      cfg.Steering,
		clusters:  n,
		threshold: int64(cfg.BalanceThreshold),
		vpbThresh: int64(cfg.VPBThreshold),
		allMask:   (1 << uint(n)) - 1,
		bal:       bal,
	}
}

// Choose implements the §3.1 algorithm with the §3.2/§3.3 modifications:
//
//  1. If the workload imbalance exceeds the threshold, send the
//     instruction to the least loaded cluster.
//  2. Otherwise identify the clusters with minimum communication penalty:
//     2.1 if any source operand is pending, the clusters producing the
//     pending operands; 2.2 else the clusters where the most operands
//     are mapped; 2.3 else all clusters.
//  3. Pick the least loaded cluster among the candidates.
//
// "Least loaded" consults the capacity-weighted counters, so on an
// asymmetric machine every rule prefers clusters with spare capacity
// share, not merely fewer instructions.
//
// Under Modified/VPB steering, confidently predicted operands count as
// available in rule 2.1 (M1); under Modified always — and under VPB only
// when imbalance > VPBThreshold — they also count as mapped in every
// cluster in rule 2.2 (M2).
func (s *Steerer) Choose(ops []Operand) int {
	if s.clusters == 1 {
		return 0
	}
	// Materialize the DCOUNT counters once: the imbalance test and every
	// least-loaded selection below read the same snapshot (the counters
	// only change on Dispatched, never mid-Choose).
	b := s.bal
	counts := s.counts[:s.clusters]
	var imbalance int64
	for c := range counts {
		v := b.wsum*b.disp[c] - b.weights[c]*b.total
		counts[c] = v
		if v < 0 {
			v = -v
		}
		if v > imbalance {
			imbalance = v
		}
	}
	if imbalance > s.threshold {
		return leastIn(counts, s.allMask)
	}

	useM1 := s.kind == config.SteerModified || s.kind == config.SteerVPB
	useM2 := s.kind == config.SteerModified ||
		(s.kind == config.SteerVPB && imbalance > s.vpbThresh)

	// Rule 2.1: pending operands pin the candidates to their producer
	// clusters.
	var pendingMask uint32
	for i := range ops {
		op := &ops[i]
		avail := op.Available
		if useM1 && op.Predicted {
			avail = true
		}
		if !avail {
			pendingMask |= 1 << uint(op.ProducerCluster)
		}
	}
	if pendingMask != 0 {
		return leastIn(counts, pendingMask)
	}

	// Rule 2.2: clusters with the greatest number of mapped operands,
	// computed bit-parallel on the per-operand mapped masks (an M2
	// predicted operand counts as mapped everywhere). With at most two
	// source operands the max-count cluster set is the mask intersection
	// when nonempty, else the union.
	if len(ops) > 0 {
		var bestMask uint32
		if len(ops) <= 2 {
			var m0, m1 uint32
			m0 = ops[0].MappedIn
			if useM2 && ops[0].Predicted {
				m0 = s.allMask
			}
			if len(ops) == 2 {
				m1 = ops[1].MappedIn
				if useM2 && ops[1].Predicted {
					m1 = s.allMask
				}
				if both := m0 & m1; both != 0 {
					bestMask = both
				} else {
					bestMask = m0 | m1
				}
			} else {
				bestMask = m0
			}
		} else {
			best := 0
			for c := 0; c < s.clusters; c++ {
				n := 0
				for i := range ops {
					op := &ops[i]
					if op.MappedIn&(1<<uint(c)) != 0 || (useM2 && op.Predicted) {
						n++
					}
				}
				if n > best {
					best = n
					bestMask = 1 << uint(c)
				} else if n == best && n > 0 {
					bestMask |= 1 << uint(c)
				}
			}
		}
		if bestMask != 0 {
			return leastIn(counts, bestMask)
		}
	}

	// Rule 2.3: no constraints.
	return leastIn(counts, s.allMask)
}

// leastIn returns the cluster with the minimum counter among those in
// mask (nonzero). Ties break toward the lower cluster index.
func leastIn(counts []int64, mask uint32) int {
	best := -1
	var bestCount int64
	for c := range counts {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		if v := counts[c]; best == -1 || v < bestCount {
			best, bestCount = c, v
		}
	}
	if best == -1 {
		return 0
	}
	return best
}

// Balancer returns the shared balancer.
func (s *Steerer) Balancer() *Balancer { return s.bal }
