package steer

import (
	"testing"

	"clustervp/internal/config"
)

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin(config.Preset(4), NewBalancer(4))
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, r.Choose(nil))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinIgnoresOperands(t *testing.T) {
	r := NewRoundRobin(config.Preset(4), NewBalancer(4))
	ops := []Operand{{Available: false, ProducerCluster: 3}}
	if r.Choose(ops) != 0 {
		t.Error("round robin must ignore dependences")
	}
}

func TestLoadOnlyTracksBalancer(t *testing.T) {
	b := NewBalancer(4)
	l := NewLoadOnly(config.Preset(4), b)
	b.Dispatched(0)
	b.Dispatched(0)
	b.Dispatched(1)
	// Clusters 2 and 3 are least loaded; lowest index wins ties.
	if got := l.Choose([]Operand{{Available: false, ProducerCluster: 0}}); got != 2 {
		t.Errorf("load-only choice = %d, want 2", got)
	}
}

func TestDepFIFOFollowsPendingProducer(t *testing.T) {
	d := NewDepFIFO(config.Preset(4), NewBalancer(4))
	got := d.Choose([]Operand{
		{Available: true, MappedIn: 1},
		{Available: false, ProducerCluster: 2},
	})
	if got != 2 {
		t.Errorf("dep-FIFO must follow the pending producer, got %d", got)
	}
}

func TestDepFIFONewSlicesRotate(t *testing.T) {
	d := NewDepFIFO(config.Preset(4), NewBalancer(4))
	ready := []Operand{{Available: true}}
	a := d.Choose(ready)
	b := d.Choose(ready)
	c := d.Choose(ready)
	if a == b || b == c {
		t.Errorf("new slices must rotate clusters: %d %d %d", a, b, c)
	}
}

func TestAlternativeSteeringKindsNamed(t *testing.T) {
	for _, k := range []config.SteeringKind{config.SteerRoundRobin, config.SteerLoadOnly, config.SteerDepFIFO} {
		if k.String() == "" || k.String()[0] == 's' && len(k.String()) > 5 && k.String()[:5] == "steer" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
