package core

import (
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// TestPhaseCyclesSumToTotal pins the phase-attribution invariant the
// tracing layer depends on: every simulated cycle lands in exactly one
// of warmup/steady/drain, so the three counters always sum to
// Results.Cycles.
func TestPhaseCyclesSumToTotal(t *testing.T) {
	k, err := workload.ByName("gsmdec")
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(2)
	for _, n := range []int{1, 4} {
		cfg := config.Preset(n)
		s, err := New(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		w, st, d := s.PhaseCycles()
		if total := w + st + d; total != uint64(r.Cycles) {
			t.Fatalf("%d clusters: phases %d+%d+%d = %d, want Cycles %d",
				n, w, st, d, total, r.Cycles)
		}
		if w == 0 || st == 0 || d == 0 {
			t.Errorf("%d clusters: expected all phases non-empty, got warmup=%d steady=%d drain=%d",
				n, w, st, d)
		}
	}
}

// TestPhaseCyclesResetZeroes ensures Reset rewinds the phase counters
// with everything else, so a pooled Sim never leaks a prior job's
// attribution.
func TestPhaseCyclesResetZeroes(t *testing.T) {
	k, err := workload.ByName("rawcaudio")
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(1)
	cfg := config.Preset(2)
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if w, st, d := s.PhaseCycles(); w+st+d == 0 {
		t.Fatal("first run recorded no phase cycles")
	}
	if err := s.Reset(cfg, trace.NewExecutor(prog), prog.Name); err != nil {
		t.Fatal(err)
	}
	if w, st, d := s.PhaseCycles(); w+st+d != 0 {
		t.Fatalf("Reset left phase counters %d/%d/%d", w, st, d)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if w, st, d := s.PhaseCycles(); w+st+d != uint64(r.Cycles) {
		t.Fatalf("post-Reset phases %d+%d+%d != Cycles %d", w, st, d, r.Cycles)
	}
}
