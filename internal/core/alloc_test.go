package core

// Allocation-freedom and pool-invariant tests for the hot loop: the ROB
// ring doubles as the entry free-list pool and the fetch queue is a
// fixed ring, so after warmup a cycle step must perform zero heap
// allocations and the pool accounting must stay exactly conserved.

import (
	"runtime"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/workload"
)

// steadySimCfg builds a simulator for cfg on a real kernel and warms it
// past the allocation transient (scratch slices, pendingVerifs and
// activeStores growing to their steady capacity, ring deps warming up).
func steadySimCfg(t testing.TB, cfg config.Config, scale int) *Sim {
	t.Helper()
	k, err := workload.ByName("gsmenc")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, k.Build(scale))
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 5000; c++ {
		s.step(c)
		if s.drained() {
			t.Fatalf("kernel drained during warmup at cycle %d; raise the scale", c)
		}
	}
	return s
}

// steadySim is steadySimCfg on the paper's 4-cluster VPB machine.
func steadySim(t testing.TB, scale int) *Sim {
	t.Helper()
	return steadySimCfg(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), scale)
}

// asymCfg is a heterogeneous machine (one wide cluster, two narrow
// slow-bypass ones) exercising per-spec IQ limits, capacity-weighted
// steering, register-port gating and bypass latency in the hot loop.
func asymCfg() config.Config {
	wide := config.DefaultSpec(4, 32)
	narrow := config.DefaultSpec(2, 8)
	narrow.BypassLatency = 1
	narrow.RegPorts = 3
	return config.FromSpecs(wide, narrow, narrow).
		WithVP(config.VPStride).WithSteering(config.SteerVPB)
}

// TestSteadyStateAllocFree is the tentpole assertion: once warm, the
// cycle step allocates nothing, cycle after cycle.
func TestSteadyStateAllocFree(t *testing.T) {
	s := steadySim(t, 20)
	cycle := int64(5000)
	avg := testing.AllocsPerRun(100, func() {
		s.step(cycle)
		cycle++
	})
	if avg != 0 {
		t.Errorf("steady-state step allocates %.2f objects/cycle, want 0", avg)
	}
	if s.drained() {
		t.Fatal("trace drained during measurement; the steady-state claim is vacuous")
	}
}

// poolAccounting scans the ROB ring and classifies every slot.
func poolAccounting(s *Sim) (live, free int, conflict bool) {
	for i := range s.ring {
		e := &s.ring[i]
		// A slot holds the live entry for sequence number e.seq only if
		// that seq actually maps to this slot (virgin slots all carry
		// seq 0 and would otherwise masquerade as live).
		inWindow := e.seq >= s.headSeq && e.seq < s.nextSeq &&
			e.seq%ringCap == int64(i) && e.st != stCommitted
		if inWindow {
			live++
		} else {
			free++
			// A free slot that has ever been allocated (slot i first
			// carries seq i) must never still be reachable as an
			// in-flight provider: any eref pointing at it must see a
			// committed state and resolve to nil.
			if s.nextSeq > int64(i) {
				if r := (eref{e: e, seq: e.seq}); r.get() != nil {
					conflict = true
				}
			}
		}
	}
	return live, free, conflict
}

// TestPoolConservation checks the free-list/pool invariants the ISSUE
// names: after every cycle, live entries + free slots is exactly the
// ring capacity, live matches the ROB occupancy counter, and no slot is
// simultaneously free and in-flight.
func TestPoolConservation(t *testing.T) {
	k, err := workload.ByName("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	s, err := New(cfg, k.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 3000 && !s.drained(); c++ {
		s.step(c)
		live, free, conflict := poolAccounting(s)
		if live+free != ringCap {
			t.Fatalf("cycle %d: live %d + free %d != ring capacity %d", c, live, free, ringCap)
		}
		if live != s.robCount {
			t.Fatalf("cycle %d: %d live ring entries but robCount %d", c, live, s.robCount)
		}
		if conflict {
			t.Fatalf("cycle %d: a ring slot is both free and in-flight", c)
		}
		if s.fqLen < 0 || s.fqLen > fetchQCap {
			t.Fatalf("cycle %d: fetch queue occupancy %d out of [0,%d]", c, s.fqLen, fetchQCap)
		}
	}
}

// TestDepPoolRecyclesChunks exercises the shared dependence-edge pool
// directly: appends past one chunk grow the chain, releases splice every
// chunk back onto the free list, and a subsequent producer reuses those
// chunks instead of extending the pool. Append order must survive the
// chunked representation — the reissue cascade's blockingBranch election
// depends on walking edges in insertion order.
func TestDepPoolRecyclesChunks(t *testing.T) {
	s := &Sim{}
	s.resetSched(1)
	for i := range s.ring {
		s.ring[i].depHead, s.ring[i].depTail = noChunk, noChunk
	}
	p := &s.ring[0]
	p.seq = 0
	n := 3*depChunkSize + 5
	for i := 0; i < n; i++ {
		c := &s.ring[1+i%4]
		c.seq = int64(1 + i)
		s.addDep(p, ref(c))
	}
	grown := len(s.depPool)
	if grown != 4 {
		t.Fatalf("%d edges occupy %d chunks, want 4", n, grown)
	}
	var got []int64
	for ci := p.depHead; ci != noChunk; ci = s.depPool[ci].next {
		ch := &s.depPool[ci]
		for i := int32(0); i < ch.n; i++ {
			got = append(got, ch.refs[i].seq)
		}
	}
	if len(got) != n {
		t.Fatalf("walked %d edges, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != int64(1+i) {
			t.Fatalf("edge %d has seq %d; append order not preserved: %v", i, seq, got)
		}
	}
	s.releaseDeps(p, 0)
	if p.depHead != noChunk || p.depTail != noChunk {
		t.Fatal("release left the entry chained")
	}
	for w := range s.cons[0] {
		if s.cons[0][w] != 0 {
			t.Fatal("release left consumer-mask bits set")
		}
	}
	q := &s.ring[5]
	q.seq = 5
	for i := 0; i < n; i++ {
		s.addDep(q, ref(p))
	}
	if len(s.depPool) != grown {
		t.Errorf("pool grew to %d chunks on reuse, want to stay at %d (free list not recycling)", len(s.depPool), grown)
	}
}

// measureSteadyBytes runs steps against a warmed simulator and returns
// the exact number of heap bytes allocated while stepping. GC stays
// enabled — TotalAlloc is monotonic and unaffected by collection — but
// the measurement loop itself must not allocate, so the MemStats live
// in the caller's frame.
func measureSteadyBytes(t *testing.T, s *Sim, cycle *int64, steps int) uint64 {
	t.Helper()
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	for i := 0; i < steps; i++ {
		s.step(*cycle)
		*cycle++
	}
	runtime.ReadMemStats(&m2)
	if s.drained() {
		t.Fatal("trace drained during measurement; the steady-state claim is vacuous")
	}
	return m2.TotalAlloc - m1.TotalAlloc
}

// TestSteadyStateZeroBytes pins the stronger half of the 0 B/op
// invariant the benchmarks gate: a long warm run allocates zero BYTES,
// not merely a sub-1-per-op number of objects. The previous per-slot
// deps pooling passed the allocs check while still growing a slice every
// few hundred cycles — 5 B/op in BENCH_pr5.json — which this test (and
// the tightened CI grep) would have caught.
func TestSteadyStateZeroBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"sym", config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)},
		{"asym", asymCfg()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := steadySimCfg(t, tc.cfg, 200)
			// Runtime goroutines (GC workers, the test framework) can
			// allocate between the two ReadMemStats; a genuine per-cycle
			// leak shows up on every attempt, ambient noise does not, so
			// any zero measurement proves the stepping loop clean.
			cycle := int64(5000)
			var got uint64
			for attempt := 0; attempt < 3; attempt++ {
				if got = measureSteadyBytes(t, s, &cycle, 20000); got == 0 {
					return
				}
			}
			t.Errorf("steady-state stepping allocated %d bytes over 20k cycles on all attempts, want exactly 0", got)
		})
	}
}

// TestSteadyStateAllocFreeProgress extends the allocation-freedom
// claim to the service path: a registered progress callback firing
// every few cycles must not reintroduce allocations (the snapshot is a
// stack value and the firing check is branch-and-compare only).
func TestSteadyStateAllocFreeProgress(t *testing.T) {
	s := steadySim(t, 20)
	var fired int64
	var last Progress
	s.SetProgress(16, func(p Progress) {
		fired++
		last = p
	})
	cycle := int64(5000)
	avg := testing.AllocsPerRun(100, func() {
		s.step(cycle)
		cycle++
	})
	if avg != 0 {
		t.Errorf("steady-state step with progress enabled allocates %.2f objects/cycle, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("progress callback never fired; the allocation claim is vacuous")
	}
	if last.Cycle < 5000 || last.Instructions == 0 || last.IPC() <= 0 {
		t.Errorf("suspicious progress snapshot: %+v", last)
	}
	if s.drained() {
		t.Fatal("trace drained during measurement; the steady-state claim is vacuous")
	}
}

// TestProgressIntervalHonored checks the callback cadence and that
// disabling progress stops further callbacks.
func TestProgressIntervalHonored(t *testing.T) {
	s := steadySim(t, 5)
	var cycles []int64
	s.SetProgress(100, func(p Progress) { cycles = append(cycles, p.Cycle) })
	for c := int64(5000); c < 5500; c++ {
		s.step(c)
	}
	// progNext starts at `every`; the warmed sim is past it, so the
	// first step fires, then every 100 cycles: 5000, 5100, ..., 5400.
	if len(cycles) != 5 {
		t.Fatalf("callback fired %d times over 500 cycles at interval 100, want 5 (%v)", len(cycles), cycles)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i]-cycles[i-1] != 100 {
			t.Errorf("uneven firing interval: %v", cycles)
		}
	}
	s.SetProgress(0, nil)
	n := len(cycles)
	for c := int64(5500); c < 5700; c++ {
		s.step(c)
	}
	if len(cycles) != n {
		t.Errorf("disabled progress still fired %d more times", len(cycles)-n)
	}
}

// TestSteadyStateAllocFreeAsym extends the allocation-freedom claim to
// heterogeneous machines: per-cluster IQ sizes, weighted steering,
// register ports and bypass latency must not reintroduce allocations.
func TestSteadyStateAllocFreeAsym(t *testing.T) {
	s := steadySimCfg(t, asymCfg(), 20)
	cycle := int64(5000)
	avg := testing.AllocsPerRun(100, func() {
		s.step(cycle)
		cycle++
	})
	if avg != 0 {
		t.Errorf("asymmetric steady-state step allocates %.2f objects/cycle, want 0", avg)
	}
	if s.drained() {
		t.Fatal("trace drained during measurement; the steady-state claim is vacuous")
	}
}

// benchSteadyState is the shared body of the steady-state benchmarks.
func benchSteadyState(b *testing.B, cfg config.Config) {
	s := steadySimCfg(b, cfg, 200)
	b.ReportAllocs()
	b.ResetTimer()
	cycle := int64(5000)
	for i := 0; i < b.N; i++ {
		if s.drained() {
			b.StopTimer()
			s = steadySimCfg(b, cfg, 200)
			cycle = 5000
			b.StartTimer()
		}
		s.step(cycle)
		cycle++
	}
}

// BenchmarkSimSteadyState measures the per-cycle cost of the warm
// simulator; the acceptance criterion is 0 allocs/op. Construction and
// warmup run outside the timer.
func BenchmarkSimSteadyState(b *testing.B) {
	benchSteadyState(b, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB))
}

// BenchmarkSimSteadyStateAsym is the same gate on a heterogeneous
// machine; CI requires 0 allocs/op here too.
func BenchmarkSimSteadyStateAsym(b *testing.B) {
	benchSteadyState(b, asymCfg())
}
