package core

// issueRef is the reference wakeup/select implementation: the original
// linear ROB scan with lazy per-source readiness checks. It is retained
// as the oracle for the bitmap selector — oracle_test.go runs whole
// simulations both ways on randomized asymmetric machines and requires
// bit-identical statistics. A Sim switched to the reference path
// (refSelect) never reads the ready bitmaps or the timing wheel, but
// dispatch and invalidation still maintain them; the wheel slot for the
// current cycle is drained unprocessed here so reference-mode runs stay
// bounded in memory.
func (s *Sim) issueRef(now int64) {
	s.dropWheelSlot(now)

	for c, r := range s.res {
		r.BeginCycle(now)
		s.out.PerCluster[c].IQOccSum += uint64(s.iqCount[c])
	}
	dports := s.cfg.DCachePorts

	excessInt, excessFP := s.excessInt, s.excessFP
	for c := range excessInt {
		excessInt[c], excessFP[c] = 0, 0
	}

	for i := s.headSeq; i < s.nextSeq; i++ {
		e := &s.ring[i%ringCap]
		if e.st != stWaiting || e.dispatchTime >= now {
			continue
		}
		if !e.allSrcReady(now) {
			continue
		}
		s.tryIssueEntry(e, now, &dports, excessInt, excessFP)
	}

	s.accumNReady(excessInt, excessFP)
}
