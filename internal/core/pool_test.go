package core

import (
	"reflect"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// TestSimResetPoolDeterminism drives one Sim through a sequence of runs
// via Reset — alternating cluster counts, cache models and predictors so
// every reshape path executes — and checks each result is byte-identical
// to a freshly constructed Sim's. This is the core guarantee the worker
// pool rests on: reuse is invisible in the statistics.
func TestSimResetPoolDeterminism(t *testing.T) {
	k, err := workload.ByName("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []config.Config{
		config.Preset(1),
		config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB),
		config.Preset(2).WithVP(config.VPTwoDelta),
		config.Preset(4),
		config.Preset(1).WithVP(config.VPStride),
	}
	cfgs[3].PerfectCaches = true

	reused := &Sim{}
	for i, cfg := range cfgs {
		prog := k.Build(1)
		want := run(t, cfg, prog)
		if err := reused.Reset(cfg, trace.NewExecutor(k.Build(1)), prog.Name); err != nil {
			t.Fatalf("cfg %d: Reset: %v", i, err)
		}
		got, err := reused.Run()
		if err != nil {
			t.Fatalf("cfg %d: Run: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cfg %d (%s): reused Sim diverged from fresh Sim:\nfresh:  %+v\nreused: %+v", i, cfg.Name, want, got)
		}
	}
}

// TestSimResetPoolResultsNotAliased pins the aliasing contract: Results
// returned by a run must never be mutated by a later Reset+Run on the
// same Sim (Run hands out s.out, so PerCluster must be re-allocated).
func TestSimResetPoolResultsNotAliased(t *testing.T) {
	k, err := workload.ByName("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Preset(2)
	s, err := New(cfg, k.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first
	snapshot.PerCluster = append([]stats.ClusterStats(nil), first.PerCluster...)
	snapshot.HopHistogram = append([]uint64(nil), first.HopHistogram...)

	if err := s.Reset(config.Preset(2).WithVP(config.VPStride), trace.NewExecutor(k.Build(2)), "cjpeg"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.PerCluster, snapshot.PerCluster) {
		t.Error("first run's PerCluster mutated by a later Reset+Run")
	}
	if !reflect.DeepEqual(first.HopHistogram, snapshot.HopHistogram) {
		t.Error("first run's HopHistogram mutated by a later Reset+Run")
	}
}

// TestPoolGetPutReuse checks the pool actually recycles: a Put Sim comes
// back from Get for the same shape, and a different shape constructs
// fresh without disturbing the pooled one.
func TestPoolGetPutReuse(t *testing.T) {
	k, err := workload.ByName("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool()
	cfg2 := config.Preset(2)
	s1, err := p.Get(cfg2, trace.NewExecutor(k.Build(1)), "cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	p.Put(s1)
	s2, err := p.Get(cfg2, trace.NewExecutor(k.Build(1)), "cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("pool did not recycle the Sim for a same-shape Get")
	}
	s4, err := p.Get(config.Preset(4), trace.NewExecutor(k.Build(1)), "cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s2 {
		t.Error("pool returned a 2-cluster Sim for a 4-cluster Get")
	}
	if _, err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s4.Run(); err != nil {
		t.Fatal(err)
	}
	p.Put(s2)
	p.Put(s4)
}
