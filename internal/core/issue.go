package core

import "math/bits"

// issue is the per-cluster wakeup/select stage, built on readiness
// bitmaps (sched.go). Wakeup events fired from the timing wheel refresh
// the global ready mask; select then walks the mask oldest-first from
// the ROB head with bits.TrailingZeros64, so selection order — and with
// it the arbitration of L1D ports, inter-cluster buses, per-cluster
// issue widths, FU mix and RegPorts caps — is identical to the original
// linear ROB scan (retained as issueRef in issue_ref.go and pinned by
// the differential oracle in oracle_test.go). ROB order gives
// oldest-first selection; each cluster enforces its issue widths and
// functional units, memory operations share the L1D ports, and copies
// reserve inter-cluster buses like any other resource (§2.1).
func (s *Sim) issue(now int64) {
	for c, r := range s.res {
		r.BeginCycle(now)
		s.out.PerCluster[c].IQOccSum += uint64(s.iqCount[c])
	}
	dports := s.cfg.DCachePorts

	// Per-cluster count of ready instructions denied by width/FU limits,
	// for the NREADY imbalance metric (§2.3.2); the slices are Sim-owned
	// scratch, zeroed here rather than reallocated every cycle.
	excessInt, excessFP := s.excessInt, s.excessFP
	for c := range excessInt {
		excessInt[c], excessFP[c] = 0, 0
	}

	s.drainWheel(now)

	// Select: walk the ready mask in ROB age order. Live slots occupy
	// the contiguous sequence window [headSeq, nextSeq), so ascending
	// age is ascending slot from the head slot with a single wrap: the
	// head word's bits at and above the head offset first, then the
	// following words, then the head word's wrapped low bits.
	head := s.headSeq % ringCap
	hw := int(head >> 6)
	hb := uint(head & 63)
	for k := 0; k <= nWords; k++ {
		w := hw + k
		if w >= nWords {
			w -= nWords
		}
		m := s.readyW[w]
		if k == 0 {
			m &= ^uint64(0) << hb
		} else if k == nWords {
			if hb == 0 {
				break
			}
			m &= 1<<hb - 1
		}
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			s.tryIssueEntry(&s.ring[w<<6+b], now, &dports, excessInt, excessFP)
		}
	}

	s.accumNReady(excessInt, excessFP)
}

// tryIssueEntry attempts to issue one ready candidate, consuming L1D
// ports, bus reservations, issue width and functional units exactly as
// the reference scan does. Denied candidates keep their ready bit and
// are retried next cycle.
func (s *Sim) tryIssueEntry(e *entry, now int64, dports *int, excessInt, excessFP []int) {
	var fwd *entry
	if e.isLoad {
		var blocked bool
		blocked, fwd = s.loadBlocked(e, now)
		if blocked {
			return
		}
	}
	cl := e.cluster

	// Memory port check (shared L1D ports, Table 1: 3 R/W ports).
	if (e.isLoad || e.isStore) && *dports == 0 {
		// Port-starved: counts as issue-width style denial for the
		// imbalance metric? The paper ties NREADY to issue width and
		// idle FUs, so port denials are excluded.
		return
	}
	// Route reservation check for copies and for verification-copies
	// that will have to forward (mismatch known functionally). The
	// copy executes in its producer's cluster (e.cluster) and ships
	// the value to e.dstCluster.
	needsBus := e.isCopy || (e.isVC && !e.vcCorrect)
	if needsBus && !s.net.CanReserve(e.cluster, e.dstCluster, now+1) {
		s.out.BusStalls++
		return
	}
	if !s.res[cl].TryIssue(e.class, e.lat, e.pipe) {
		if e.class.IsFP() {
			excessFP[cl]++
		} else {
			excessInt[cl]++
		}
		return
	}

	// Issue.
	e.st = stIssued
	e.issueTime = now
	switch {
	case e.isCopy:
		arrival, ok := s.net.Reserve(e.cluster, e.dstCluster, now+1)
		if !ok {
			panic("core: route reservation failed after CanReserve")
		}
		e.doneTime = arrival
	case e.isVC:
		if e.vcCorrect {
			// Local compare only; no wire crossed.
			e.doneTime = now + 1
		} else {
			arrival, ok := s.net.Reserve(e.cluster, e.dstCluster, now+1)
			if !ok {
				panic("core: route reservation failed after CanReserve")
			}
			e.doneTime = arrival
		}
	case e.isLoad:
		if *dports > 0 {
			*dports--
		}
		// Loads write registers, so their results ride the same local
		// bypass network as ALU results and pay the same extra cycles.
		if fwd != nil {
			// Store-to-load forwarding through the store queue.
			e.doneTime = now + 1 + s.bypass[cl]
			s.addDep(fwd, ref(e))
		} else {
			e.doneTime = now + 1 + int64(s.caches.DataAccess(e.addr)) + s.bypass[cl]
		}
	case e.isStore:
		if *dports > 0 {
			*dports--
		}
		// Warm the line; the store completes into the store queue.
		s.caches.DataAccess(e.addr)
		e.doneTime = now + 1
	default:
		// BypassLatency models a deeper local bypass network: the
		// result exists at now+lat but consumers (including copies
		// reading it for export) see it that many cycles later. The
		// paper's machines have a full single-cycle bypass (0 extra).
		e.doneTime = now + int64(e.lat) + s.bypass[cl]
	}
	s.iqLeave(e)
	// Wakeup: consumers recheck when this result becomes visible.
	s.wakeConsumersAt(e, e.doneTime, now)
	if e.hasVerif && now+1 < s.nextVerifMin {
		// A pending check rides this provider; nothing resolves sooner
		// than next cycle, and the scan there computes the exact bound.
		s.nextVerifMin = now + 1
	}
}

// accumNReady folds the per-cluster denial counts into NREADY: ready
// instructions beyond their cluster's issue capacity that idle capacity
// elsewhere could have absorbed.
func (s *Sim) accumNReady(excessInt, excessFP []int) {
	nc := len(s.res)
	var nready int
	for c := 0; c < nc; c++ {
		if excessInt[c] > 0 {
			idle := 0
			for j := 0; j < nc; j++ {
				if j != c {
					idle += s.res[j].IdleIntSlots()
				}
			}
			if idle < excessInt[c] {
				nready += idle
			} else {
				nready += excessInt[c]
			}
		}
		if excessFP[c] > 0 {
			idle := 0
			for j := 0; j < nc; j++ {
				if j != c {
					idle += s.res[j].IdleFPSlots()
				}
			}
			if idle < excessFP[c] {
				nready += idle
			} else {
				nready += excessFP[c]
			}
		}
	}
	s.out.NReadySum += uint64(nready)
}

// loadBlocked implements the paper's disambiguation rule: a load may
// execute once every older store's address is known (the store's address
// operand is ready or the store has issued; data may still be pending).
// A load whose address matches an older in-flight store additionally
// waits for that store's data so it can forward; fwd returns the
// youngest matching store.
func (s *Sim) loadBlocked(load *entry, now int64) (blocked bool, fwd *entry) {
	for _, sr := range s.activeStores {
		st := sr.get()
		if st == nil || st.seq > load.seq {
			continue
		}
		if st.st != stIssued && !st.srcReady(0, now) {
			return true, nil
		}
		if st.addr>>3 == load.addr>>3 {
			if fwd == nil || st.seq > fwd.seq {
				fwd = st
			}
		}
	}
	if fwd != nil && fwd.st != stIssued {
		// Matching store: wait until its data enters the store queue.
		return true, nil
	}
	return false, fwd
}

// processVerifications resolves value-prediction checks: local
// predictions verify one cycle after the producer's writeback (§2.2);
// remote predictions verify when the verification-copy compares in the
// producer cluster, and on mismatch the corrected value arrives over the
// bus (§2.2, clustered extension).
func (s *Sim) processVerifications(now int64) {
	// Nothing can resolve before nextVerifMin: checks against a waiting
	// provider are unlocked by that provider's issue (which lowers the
	// bound to now+1), and checks against an issued provider resolve at
	// a time folded into the bound when the check was queued or last
	// scanned. Skipping the scan until then changes no resolution time.
	if len(s.pendingVerifs) == 0 || now < s.nextVerifMin {
		return
	}
	// In-place compaction with pointer reads: retained checks (the
	// common case) move only after the first resolution, and nothing is
	// copied just to be looked at.
	nextMin := int64(1) << 62
	pv := s.pendingVerifs
	j := 0
	for i := range pv {
		v := &pv[i]
		var t int64
		p := v.provider.get()
		retain := false
		switch {
		case p == nil:
			// Provider committed: its writeback long since happened.
			t = now
		case !v.remote:
			if p.st != stIssued || p.doneTime+1 > now {
				if p.st == stIssued && p.doneTime+1 < nextMin {
					nextMin = p.doneTime + 1
				}
				retain = true
			} else {
				t = p.doneTime + 1
			}
		case v.correct:
			// Verification-copy compares locally one cycle after issue.
			if p.st != stIssued || p.issueTime+1 > now {
				if p.st == stIssued && p.issueTime+1 < nextMin {
					nextMin = p.issueTime + 1
				}
				retain = true
			} else {
				t = p.issueTime + 1
			}
		default:
			// Mismatch: the corrected value crosses the wire; the
			// consumer can restart when it arrives.
			if p.st != stIssued || p.doneTime > now {
				if p.st == stIssued && p.doneTime < nextMin {
					nextMin = p.doneTime
				}
				retain = true
			} else {
				t = p.doneTime
			}
		}
		if retain {
			if j != i {
				pv[j] = pv[i]
			}
			j++
			continue
		}
		s.resolveVerification(*v, t, now)
	}
	s.pendingVerifs = pv[:j]
	s.nextVerifMin = nextMin
}

func (s *Sim) resolveVerification(v verification, t, now int64) {
	c := v.consumer.get()
	if c == nil {
		return // consumer already committed (only possible when correct)
	}
	if t > c.verifyMin {
		c.verifyMin = t
	}
	if v.correct {
		c.unverified--
		return
	}
	s.out.PredictedOperandsWrong++
	if c.st == stIssued {
		s.invalidate(c, now)
	}
	src := &c.src[v.opIdx]
	src.predicted = false
	src.minReady = t
	src.provider = v.provider
	if p := v.provider.get(); p != nil {
		s.addDep(p, v.consumer)
	}
	c.unverified--
	// The operand lost its predicted cover: recompute the consumer's
	// ready bit against the substituted provider and minReady bound.
	s.recheckSlot(c.seq%ringCap, now)
}

// invalidate implements selective invalidation and reissue (§2.2): the
// entry returns to the waiting state and every issued dependent is
// invalidated transitively. The paper assumes the existing issue
// mechanism performs the restart with no additional penalty. Waiting
// dependents are not invalidated, but their ready bits may rest on this
// entry's now-withdrawn result, so they recompute ("unwakeup") — the
// reissue will wake them again.
func (s *Sim) invalidate(e *entry, now int64) {
	if e.st != stIssued {
		return
	}
	e.st = stWaiting
	e.doneTime = 1 << 62
	s.iqEnter(e)
	s.recheckSlot(e.seq%ringCap, now)
	s.out.Reissues++
	if e.isBranch && e.mispred && s.blockingBranch.get() == nil {
		// A re-executing control-mispredicted branch redirects fetch
		// again.
		s.blockingBranch = ref(e)
	}
	if e.isStore {
		// Conservative memory-order recovery: younger issued loads
		// restart (their disambiguation decision may be stale).
		for i := e.seq + 1; i < s.nextSeq; i++ {
			d := &s.ring[i%ringCap]
			if d.isLoad && d.st == stIssued {
				s.invalidate(d, now)
			}
		}
	}
	for ci := e.depHead; ci != noChunk; ci = s.depPool[ci].next {
		ch := &s.depPool[ci]
		for i := int32(0); i < ch.n; i++ {
			if d := ch.refs[i].get(); d != nil {
				if d.st == stIssued {
					s.invalidate(d, now)
				} else if d.st == stWaiting {
					s.recheckSlot(d.seq%ringCap, now)
				}
			}
		}
	}
}

// commit retires up to RetireWidth entries per cycle in order; an entry
// retires once executed and with all its value predictions verified.
// Copy and verification-copy instructions occupy retire slots like any
// other ROB entry but do not count as program instructions.
func (s *Sim) commit(now int64) {
	for n := 0; n < s.cfg.RetireWidth && s.robCount > 0; n++ {
		e := &s.ring[s.headSeq%ringCap]
		if !e.resolved(now) {
			return
		}
		if e.hasDest {
			field := e.cluster
			if e.isCopy {
				field = e.dstCluster
			}
			m := s.table.Lookup(e.destLog, field)
			if m.Valid && m.Provider.e == e && m.Provider.seq == e.seq {
				s.table.SetProvider(e.destLog, field, eref{})
			}
			if e.freeAtCommit != nil {
				// The table reclaims the slice; drop our reference so a
				// recycled ring slot can never resurrect it.
				s.table.ReleaseAtCommit(e.freeAtCommit)
				e.freeAtCommit = nil
			}
		}
		if e.isStore {
			s.removeActiveStore(e.seq)
		}
		if !e.isCopy && !e.isVC {
			s.out.Instructions++
		}
		e.st = stCommitted
		s.headSeq++
		s.robCount--
		s.lastCommitCycle = now
	}
}

func (s *Sim) removeActiveStore(seq int64) {
	for i, sr := range s.activeStores {
		if sr.seq == seq {
			s.activeStores = append(s.activeStores[:i], s.activeStores[i+1:]...)
			return
		}
	}
}
