package core

import (
	"runtime"
	"sync"

	"clustervp/internal/config"
	"clustervp/internal/trace"
)

// Pool recycles Sims across runs so grid workers pay Reset (memclr)
// cost per job instead of construction cost. Instances are keyed by
// cluster count — the one shape axis along which Reset must reallocate
// per-cluster state — so a heterogeneous grid still reuses within each
// shape. Reuse is an optimization only: a pooled Sim's Reset restores
// every field to its NewFromSource state, so results are byte-identical
// with or without the pool (asserted by TestSimulatePoolingDeterminism
// in internal/runner).
type Pool struct {
	mu   sync.Mutex
	free map[int][]*Sim
}

// NewPool returns an empty pool. The zero Pool is not usable; callers
// that want opt-out simply pass a nil *Pool to code that accepts one.
func NewPool() *Pool { return &Pool{free: make(map[int][]*Sim)} }

// DefaultPool is the process-wide pool used by the package-level runner
// entry points (runner.Simulate and the service engine behind it).
var DefaultPool = NewPool()

// Get returns a Sim bound to cfg and src, reusing a pooled instance of
// the same cluster shape when one is available and constructing fresh
// otherwise. On a Reset error the pooled instance is discarded (a
// partially rewound Sim is not reusable) and the error returned.
func (p *Pool) Get(cfg config.Config, src trace.Source, benchmark string) (*Sim, error) {
	nc := cfg.NumClusters()
	p.mu.Lock()
	var s *Sim
	if l := p.free[nc]; len(l) > 0 {
		s = l[len(l)-1]
		l[len(l)-1] = nil
		p.free[nc] = l[:len(l)-1]
	}
	p.mu.Unlock()
	if s == nil {
		return NewFromSource(cfg, src, benchmark)
	}
	if err := s.Reset(cfg, src, benchmark); err != nil {
		return nil, err
	}
	return s, nil
}

// Put returns s to the pool after a run. The source and progress
// callback are dropped immediately so the pool never pins a trace file
// or closure; everything else is rewound by the next Get's Reset. Each
// shape's free list is bounded to roughly the worker parallelism —
// beyond that, extra Sims only pin memory.
func (p *Pool) Put(s *Sim) {
	if s == nil {
		return
	}
	s.src = nil
	s.progFn = nil
	nc := len(s.res)
	limit := 2 * runtime.GOMAXPROCS(0)
	p.mu.Lock()
	if len(p.free[nc]) < limit {
		p.free[nc] = append(p.free[nc], s)
	}
	p.mu.Unlock()
}
