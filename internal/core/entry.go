// Package core is the cycle-driven timing simulator of the paper's §2
// microarchitecture: an 8-way out-of-order superscalar with a 6-stage
// pipeline (fetch, decode/rename/steer, issue, execute, writeback,
// commit), clustered into N homogeneous or heterogeneous clusters (each
// sized by its own config.ClusterSpec), with on-demand copy instructions
// for inter-cluster communication, stride value prediction of source
// operands with producer-side verification and verification-copies,
// selective invalidation/reissue, and the Baseline / Modified / VPB
// steering schemes (capacity-weighted on asymmetric machines).
//
// The simulator is trace-driven: it consumes the dynamic instruction
// stream (with real operand values) produced by internal/trace. Control
// mispredictions appear as fetch-redirect bubbles; wrong-path execution
// is not modeled (see DESIGN.md §3 for all idealizations).
package core

import (
	"clustervp/internal/isa"
	"clustervp/internal/trace"
)

// state is the lifecycle of a ROB entry. "Done" is implicit: an entry is
// done when it is issued and its doneTime has passed (reissue rewinds an
// entry to stWaiting, which is why done is not a separate state).
type state uint8

const (
	stWaiting state = iota
	stIssued
	stCommitted
)

// entry is one ROB entry: a program instruction, a copy, or a
// verification-copy. Entries live in a ring buffer and are recycled
// after commit; erefs detect recycling through the seq field.
type entry struct {
	seq int64

	// Kind and payload. Only the PC and opcode survive dispatch (for
	// debug formatting); the full DynInst is consumed at the
	// decode/rename/steer boundary and not stored per entry.
	isCopy bool // plain copy instruction
	isVC   bool // verification-copy
	pc     int
	op     isa.Opcode
	class  isa.Class
	lat    int
	pipe   bool

	// cluster is where the entry issues; dstCluster is where a
	// copy/verification-copy delivers its value.
	cluster    int
	dstCluster int

	// Register bookkeeping.
	nsrc         int
	src          [2]source
	hasDest      bool
	destLog      isa.RegID
	freeAtCommit []int // per-cluster registers to free when this writer commits

	// Timing.
	st           state
	dispatchTime int64
	issueTime    int64
	doneTime     int64 // result availability (at dstCluster for copies)

	// Value-prediction verification accounting: number of this entry's
	// predicted source operands not yet verified, and the earliest cycle
	// commit may proceed once they are.
	unverified int
	verifyMin  int64

	// vcCorrect is, for verification-copies, whether the prediction they
	// check will succeed (known functionally; used to decide bus usage).
	vcCorrect bool

	// hasVerif marks an entry some pending verification uses as its
	// provider; its issue lowers the verification queue's next-scan
	// bound (issue.go: processVerifications).
	hasVerif bool

	// depHead/depTail chain this entry's consumer edges through the
	// Sim-owned chunk pool (sched.go): the selective-reissue cascade
	// walks them in append order, and bitmap wakeup ORs the matching
	// consumer mask. noChunk when the entry has no consumers.
	depHead int32
	depTail int32

	// Control flow.
	isBranch bool
	mispred  bool

	// Memory.
	isLoad  bool
	isStore bool
	addr    uint64
}

// source describes one register source operand of an entry.
type source struct {
	reg  isa.RegID
	isFP bool
	// provider gates readiness: the entry whose completion makes the
	// value available in this entry's cluster. A zero eref means the
	// value is architecturally ready.
	provider eref
	// predicted marks an operand currently riding a confident predicted
	// value (ready immediately); cleared when verification fails.
	predicted bool
	// predCorrect is the functional outcome of the prediction.
	predCorrect bool
	// minReady is an extra readiness lower bound (set when a failed
	// verification forces a reissue).
	minReady int64
}

// eref is a recycling-safe reference to a ROB entry.
type eref struct {
	e   *entry
	seq int64
}

// ref builds an eref for e.
func ref(e *entry) eref { return eref{e: e, seq: e.seq} }

// get returns the entry, or nil when it has committed and been recycled
// (a committed provider means "value ready in the register file").
func (r eref) get() *entry {
	if r.e != nil && r.e.seq == r.seq && r.e.st != stCommitted {
		return r.e
	}
	return nil
}

// zero reports whether the reference was never set.
func (r eref) zero() bool { return r.e == nil }

// verification is a pending value-prediction check: the consumer's
// operand opIdx is verified against provider (the producer for local
// predictions, the verification-copy for remote ones).
type verification struct {
	consumer eref
	opIdx    int
	provider eref
	remote   bool
	correct  bool
}

// fetched is one instruction in the fetch queue, between the fetch and
// decode/rename/steer stages.
type fetched struct {
	dyn       trace.DynInst
	fetchTime int64
	mispred   bool
	// Value-predictor results, filled once at the decode boundary (the
	// predictor must not be re-trained when dispatch retries after a
	// structural stall).
	vpDone    bool
	vpConf    [2]bool
	vpCorrect [2]bool
}

// srcReady reports whether source i of e is ready at the given cycle.
func (e *entry) srcReady(i int, now int64) bool {
	s := &e.src[i]
	if s.predicted {
		return true
	}
	if now < s.minReady {
		return false
	}
	p := s.provider.get()
	if p == nil {
		return true
	}
	return p.st == stIssued && p.doneTime <= now
}

// allSrcReady reports whether every source of e is ready.
func (e *entry) allSrcReady(now int64) bool {
	for i := 0; i < e.nsrc; i++ {
		if !e.srcReady(i, now) {
			return false
		}
	}
	return true
}

// done reports whether e has produced its result by now.
func (e *entry) done(now int64) bool {
	return e.st == stIssued && e.doneTime <= now
}

// resolved reports whether e is done and all its predicted operands are
// verified — the condition for fetch to resume past a mispredicted
// branch and for commit.
func (e *entry) resolved(now int64) bool {
	return e.done(now) && e.unverified == 0 && now >= e.verifyMin
}
