package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/program"
	"clustervp/internal/workload"
)

// runSelector simulates prog under cfg with the chosen issue selector
// (bitmap or the retained reference linear scan) and returns the full
// statistics record.
func runSelector(t *testing.T, cfg config.Config, prog *program.Program, reference bool) interface{} {
	t.Helper()
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.refSelect = reference
	r, err := s.Run()
	if err != nil {
		t.Fatalf("%s/%s (ref=%v): %v", cfg.Name, prog.Name, reference, err)
	}
	return r
}

// randomSpec draws a cluster spec with randomized width, IQ size,
// register-file size, port count and bypass latency — the dimensions
// the bitmap selector must honor exactly (per-cluster widths, FU
// inventories, RegPorts gating).
func randomSpec(rng *rand.Rand) config.ClusterSpec {
	widths := []int{1, 2, 2, 4, 4, 6, 8}
	iqs := []int{4, 8, 16, 24, 32}
	sp := config.DefaultSpec(widths[rng.Intn(len(widths))], iqs[rng.Intn(len(iqs))])
	// DefaultSpec sizes the register file for benchmark-grade IQs; tiny
	// randomized IQs need an explicit floor to pass config validation.
	sp.PhysRegs = 96 + sp.IQSize
	if rng.Intn(2) == 0 {
		sp.RegPorts = 1 + rng.Intn(sp.Width()+1)
	}
	if rng.Intn(3) == 0 {
		sp.BypassLatency = 1 + rng.Intn(2)
	}
	return sp
}

// TestIssueSelectorOracle is the differential oracle for the bitmap
// wakeup/select rebuild: the old linear ROB scan is retained verbatim
// (issue_ref.go) and every run must produce bit-identical statistics
// under both selectors. Machines are drawn randomly — asymmetric
// cluster mixes, random widths/IQ/ports/bypass — so the oracle covers
// corners the fixed golden grid does not.
func TestIssueSelectorOracle(t *testing.T) {
	kernels := workload.Names()
	rounds := 12
	if testing.Short() {
		rounds = 3
	}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < rounds; i++ {
		nc := 1 + rng.Intn(4)
		specs := make([]config.ClusterSpec, nc)
		for c := range specs {
			specs[c] = randomSpec(rng)
		}
		cfg := config.FromSpecs(specs...)
		switch rng.Intn(3) {
		case 1:
			cfg = cfg.WithVP(config.VPStride)
		case 2:
			cfg = cfg.WithVP(config.VPStride).WithSteering(config.SteerVPB)
		}
		k, err := workload.ByName(kernels[rng.Intn(len(kernels))])
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + rng.Intn(2)
		prog := k.Build(scale)
		name := fmt.Sprintf("round%02d_%s_x%d_%dc", i, k.Name, scale, nc)
		t.Run(name, func(t *testing.T) {
			bitmap := runSelector(t, cfg, prog, false)
			ref := runSelector(t, cfg, prog, true)
			if !reflect.DeepEqual(bitmap, ref) {
				t.Errorf("selector divergence on %s:\nbitmap: %+v\nref:    %+v", name, bitmap, ref)
			}
		})
	}
}

// TestIssueSelectorOracleSteady pins the two selectors against each
// other on the exact machines the steady-state benchmarks and the CI
// alloc gate run (symmetric preset-4 VPB and the heterogeneous
// asymCfg), at benchmark scale.
func TestIssueSelectorOracleSteady(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-scale runs in -short mode")
	}
	k, err := workload.ByName("cjpeg")
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Build(20)
	for _, cfg := range []config.Config{
		config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB),
		asymCfg(),
	} {
		bitmap := runSelector(t, cfg, prog, false)
		ref := runSelector(t, cfg, prog, true)
		if !reflect.DeepEqual(bitmap, ref) {
			t.Errorf("selector divergence on %s:\nbitmap: %+v\nref:    %+v", cfg.Name, bitmap, ref)
		}
	}
}
