package core

import (
	"fmt"

	"clustervp/internal/bpred"
	"clustervp/internal/cache"
	"clustervp/internal/cluster"
	"clustervp/internal/config"
	"clustervp/internal/interconnect"
	"clustervp/internal/isa"
	"clustervp/internal/program"
	"clustervp/internal/rename"
	"clustervp/internal/stats"
	"clustervp/internal/steer"
	"clustervp/internal/trace"
	"clustervp/internal/vpred"
)

const (
	ringCap   = 512
	fetchQCap = 32
	// watchdogWindow aborts the run when no instruction commits for this
	// many cycles — always a simulator bug, never a workload property.
	watchdogWindow = 100_000
	defaultMaxCyc  = 500_000_000
)

// Sim is one simulation instance: one configuration bound to one
// workload trace.
type Sim struct {
	cfg config.Config

	// src streams the dynamic instructions; it is either an in-process
	// functional executor or a .cvt file reader — the timing model
	// cannot tell the difference.
	src      trace.Source
	peekBuf  trace.DynInst
	havePeek bool
	trDone   bool

	bp     *bpred.Unit
	vp     vpred.Predictor
	caches cache.Oracle
	hier   *cache.Hierarchy // nil when PerfectCaches
	// hierMem persists the hierarchy's backing arrays across Resets so a
	// pooled Sim alternating with PerfectCaches configs does not rebuild
	// them; hier points at it (or nil) per the current config.
	hierMem *cache.Hierarchy
	net     interconnect.Topology
	bal     *steer.Balancer
	str     steer.Chooser
	table   *rename.Table[eref]
	res     []*cluster.Resources
	// Per-cluster constants hoisted out of the spec slice so the hot
	// loop never chases cfg.Clusters[c]: IQ sizes for the dispatch
	// structural check and extra bypass cycles for result visibility.
	iqSize []int
	bypass []int64

	// ROB ring. The cold per-entry payload lives in the ring; the
	// scheduler-hot state (valid/ready bitmaps, consumer masks, wakeup
	// wheel, dependence-edge pool) lives in the embedded sched as
	// parallel arrays indexed by ring slot.
	ring     [ringCap]entry
	headSeq  int64
	nextSeq  int64
	robCount int

	sched
	// refSelect switches the issue stage to the reference linear-scan
	// selector (issue_ref.go); used by the differential oracle tests.
	refSelect bool

	iqCount []int

	// fetchQ is a fixed ring between fetch and dispatch; fqHead indexes
	// the oldest entry, fqLen counts occupancy.
	fetchQ [fetchQCap]fetched
	fqHead int
	fqLen  int
	// fetchReadyTime gates fetch (I-cache misses, branch redirects);
	// lastFetchLine dedupes I-cache accesses within a line.
	fetchReadyTime int64
	lastFetchLine  int64
	// blockingBranch is the in-flight control-mispredicted branch fetch
	// is waiting on, if any; fetchBlockedPreDispatch covers the window
	// between fetching the mispredicted branch and dispatching it.
	blockingBranch      eref
	fetchBlockedPreDisp bool
	pendingVerifs       []verification
	activeStores        []eref
	lastCommitCycle     int64

	// Per-instruction and per-cycle scratch, hoisted out of the hot
	// loop so steady-state simulation performs zero heap allocations
	// (see BenchmarkSimSteadyState and TestSteadyStateAllocFree).
	views     [trace.MaxSrc]opView
	steerOps  [trace.MaxSrc]steer.Operand
	plans     [trace.MaxSrc]copyPlan
	verifs    [trace.MaxSrc]verification
	consSrcs  [trace.MaxSrc]source
	iqNeed    []int
	regNeed   []int
	excessInt []int
	excessFP  []int

	// Progress callback state: progFn fires every progEvery cycles
	// (progNext is the next firing cycle). The check is two loads and a
	// compare per cycle and the snapshot is a stack value, so enabling
	// progress keeps the hot loop at zero heap allocations.
	progFn    func(Progress)
	progEvery int64
	progNext  int64

	// Coarse phase attribution for tracing: every cycle is exactly one
	// of warmup (nothing committed yet), drain (trace exhausted,
	// pipeline emptying) or steady (everything between). Plain uint64
	// increments in step keep the hot loop allocation-free; readers use
	// PhaseCycles after Run. Deliberately NOT part of stats.Results —
	// golden regression outputs stay byte-identical.
	phaseWarmup uint64
	phaseSteady uint64
	phaseDrain  uint64

	out stats.Results
}

// Progress is a cheap point-in-time snapshot of a running simulation,
// delivered to the callback registered with SetProgress.
type Progress struct {
	// Cycle is the current simulated cycle.
	Cycle int64
	// Instructions is the committed program-instruction count so far.
	Instructions uint64
}

// IPC is the instantaneous instructions-per-cycle figure of the
// snapshot (0 at cycle 0).
func (p Progress) IPC() float64 {
	if p.Cycle == 0 {
		return 0
	}
	return float64(p.Instructions) / float64(p.Cycle)
}

// SetProgress registers fn to be invoked every `every` cycles while the
// simulation runs (from the simulation goroutine, so fn must be fast
// and must not call back into the Sim). A non-positive interval or nil
// fn disables progress. Call before Run; the callback itself must not
// allocate if the caller relies on the 0 allocs/op steady-state
// guarantee.
func (s *Sim) SetProgress(every int64, fn func(Progress)) {
	if every <= 0 || fn == nil {
		s.progFn = nil
		s.progEvery = 0
		return
	}
	s.progFn = fn
	s.progEvery = every
	s.progNext = every
}

// New builds a simulator for the given configuration and program. It
// returns an error for invalid configurations.
func New(cfg config.Config, prog *program.Program) (*Sim, error) {
	return NewFromSource(cfg, trace.NewExecutor(prog), prog.Name)
}

// NewFromSource builds a simulator that consumes an arbitrary dynamic
// instruction stream — an in-process executor, a .cvt trace file
// reader, or anything else satisfying trace.Source. benchmark labels
// the stream in the results.
func NewFromSource(cfg config.Config, src trace.Source, benchmark string) (*Sim, error) {
	s := &Sim{}
	if err := s.Reset(cfg, src, benchmark); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rebinds the simulator to a new configuration and instruction
// stream, rewinding every piece of run state — ROB ring, rename table,
// scheduler bitmaps and chunk pools, caches, fetch queue, statistics —
// while reusing the large allocations from the previous run. A worker
// can therefore run job after job on one Sim at memclr cost instead of
// reconstruction cost; results are identical to a freshly constructed
// Sim by construction (every field is restored to its New state).
//
// Reset works on a zero Sim too — NewFromSource is just Reset on a
// fresh struct. On error the Sim may be partially rewound and must be
// discarded, not reused.
func (s *Sim) Reset(cfg config.Config, src trace.Source, benchmark string) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.ROBSize > ringCap {
		return fmt.Errorf("core: ROB size %d exceeds the ring capacity %d", cfg.ROBSize, ringCap)
	}
	nc := cfg.NumClusters()

	s.cfg = cfg
	s.src = src
	s.peekBuf = trace.DynInst{}
	s.havePeek = false
	s.trDone = false

	// Peripherals that are a handful of small allocations are rebuilt
	// fresh — cheap, and trivially identical to a new Sim. The bulk
	// state (rename table, scheduler pools, cache arrays, the ring) is
	// rewound in place.
	s.bp = bpred.NewUnit(bpred.NewPaperCombined())
	s.bal = steer.NewWeightedBalancer(cfg.IssueWeights())

	if s.table != nil && s.table.Clusters() == nc {
		s.table.Reset(cfg.PhysRegsPerCluster())
	} else {
		s.table = rename.New[eref](cfg.PhysRegsPerCluster())
	}
	// In-flight writers are bounded by ROB occupancy; stocking the
	// rename table's count-slice pool to that bound up front keeps
	// steady-state renaming at zero allocations (the pool otherwise
	// converges only as rename bursts set new high-water marks).
	// Prewarm tops up, which also replenishes slices a previous
	// aborted run left attached to in-flight ring entries.
	s.table.Prewarm(cfg.ROBSize)

	if len(s.iqCount) != nc {
		s.iqCount = make([]int, nc)
		s.iqSize = make([]int, nc)
		s.bypass = make([]int64, nc)
		s.iqNeed = make([]int, nc)
		s.regNeed = make([]int, nc)
		s.excessInt = make([]int, nc)
		s.excessFP = make([]int, nc)
	} else {
		for c := 0; c < nc; c++ {
			s.iqCount[c] = 0
			s.iqNeed[c], s.regNeed[c] = 0, 0
			s.excessInt[c], s.excessFP[c] = 0, 0
		}
	}
	s.resetSched(nc)

	for i := range s.ring {
		s.ring[i] = entry{depHead: noChunk, depTail: noChunk}
	}
	s.headSeq, s.nextSeq, s.robCount = 0, 0, 0
	s.refSelect = false

	for i := range s.fetchQ {
		s.fetchQ[i] = fetched{}
	}
	s.fqHead, s.fqLen = 0, 0
	s.fetchReadyTime = 0
	s.lastFetchLine = -1
	s.blockingBranch = eref{}
	s.fetchBlockedPreDisp = false
	s.pendingVerifs = s.pendingVerifs[:0]
	s.activeStores = s.activeStores[:0]
	s.lastCommitCycle = 0

	s.views = [trace.MaxSrc]opView{}
	s.steerOps = [trace.MaxSrc]steer.Operand{}
	s.plans = [trace.MaxSrc]copyPlan{}
	s.verifs = [trace.MaxSrc]verification{}
	s.consSrcs = [trace.MaxSrc]source{}

	s.progFn = nil
	s.progEvery, s.progNext = 0, 0
	s.phaseWarmup, s.phaseSteady, s.phaseDrain = 0, 0, 0

	switch cfg.Steering {
	case config.SteerRoundRobin:
		s.str = steer.NewRoundRobin(cfg, s.bal)
	case config.SteerLoadOnly:
		s.str = steer.NewLoadOnly(cfg, s.bal)
	case config.SteerDepFIFO:
		s.str = steer.NewDepFIFO(cfg, s.bal)
	default:
		s.str = steer.New(cfg, s.bal)
	}
	switch cfg.VP {
	case config.VPNone:
		s.vp = vpred.None{}
	case config.VPStride:
		sp := vpred.NewStride(cfg.VPTableEntries)
		sp.CoverFP = cfg.VPCoverFP
		s.vp = sp
	case config.VPPerfect:
		pp := vpred.NewPerfect()
		pp.CoverFP = cfg.VPCoverFP
		s.vp = pp
	case config.VPTwoDelta:
		s.vp = vpred.NewTwoDelta(cfg.VPTableEntries)
	default:
		return fmt.Errorf("core: unknown VP kind %v", cfg.VP)
	}
	if cfg.PerfectCaches {
		s.hier = nil
		s.caches = cache.Perfect{Lat: 1}
	} else {
		if s.hierMem == nil {
			s.hierMem = cache.DefaultHierarchy()
		} else {
			s.hierMem.Reset()
		}
		s.hier = s.hierMem
		s.caches = s.hier
	}
	s.net = interconnect.New(cfg.Interconnect())
	if len(s.res) != nc {
		s.res = make([]*cluster.Resources, nc)
	}
	// PerCluster is freshly allocated every run: Run returns s.out, so
	// the previous run's Results share the old backing array and must
	// never be mutated by a reuse.
	s.out = stats.Results{PerCluster: make([]stats.ClusterStats, nc)}
	for c := range s.res {
		spec := cfg.Clusters[c]
		s.res[c] = cluster.New(spec)
		s.iqSize[c] = spec.IQSize
		s.bypass[c] = int64(spec.BypassLatency)
		s.out.PerCluster[c].Spec = spec.SpecString()
	}
	s.out.Config = cfg.Name
	s.out.Benchmark = benchmark
	return nil
}

// peek returns the next dynamic instruction without consuming it. The
// record lives in a Sim-owned buffer so peeking never heap-allocates.
func (s *Sim) peek() *trace.DynInst {
	if s.havePeek {
		return &s.peekBuf
	}
	if s.trDone {
		return nil
	}
	if !s.src.Next(&s.peekBuf) {
		s.trDone = true
		return nil
	}
	s.havePeek = true
	return &s.peekBuf
}

func (s *Sim) consume() { s.havePeek = false }

// step advances the machine by one cycle: verification, commit, issue,
// dispatch and fetch, in the reverse-pipeline order the paper's
// simulator uses so each stage sees the previous cycle's state.
func (s *Sim) step(cycle int64) {
	s.processVerifications(cycle)
	s.commit(cycle)
	if s.refSelect {
		s.issueRef(cycle)
	} else {
		s.issue(cycle)
	}
	s.dispatch(cycle)
	s.fetch(cycle)
	switch {
	case s.trDone:
		s.phaseDrain++
	case s.out.Instructions == 0:
		s.phaseWarmup++
	default:
		s.phaseSteady++
	}
	if s.progFn != nil && cycle >= s.progNext {
		s.progNext = cycle + s.progEvery
		s.progFn(Progress{Cycle: cycle, Instructions: s.out.Instructions})
	}
}

// drained reports whether the trace is exhausted and the pipeline empty.
func (s *Sim) drained() bool {
	return s.trDone && !s.havePeek && s.robCount == 0 && s.fqLen == 0
}

// Run simulates until the trace drains and the pipeline empties, then
// returns the collected statistics.
func (s *Sim) Run() (stats.Results, error) {
	maxCyc := s.cfg.MaxCycles
	if maxCyc == 0 {
		maxCyc = defaultMaxCyc
	}
	var cycle int64
	for cycle = 0; ; cycle++ {
		if cycle > maxCyc {
			return s.out, fmt.Errorf("core: exceeded %d cycles", maxCyc)
		}
		s.step(cycle)
		if s.drained() {
			cycle++
			break
		}
		if s.robCount > 0 && cycle-s.lastCommitCycle > watchdogWindow {
			return s.out, fmt.Errorf("core: deadlock at cycle %d: %s", cycle, s.describeHead(cycle))
		}
	}
	if err := s.src.Err(); err != nil {
		return s.out, err
	}
	s.out.Cycles = cycle
	s.out.VP = s.vp.Stats()
	s.out.BranchSeen = s.bp.CondSeen + s.bp.TargetSeen
	s.out.BranchHit = s.bp.CondHit + s.bp.TargetHit
	ist := s.net.Stats()
	s.out.Topology = s.cfg.Topology.String()
	s.out.BusTransfers = ist.Transfers
	s.out.HopHistogram = ist.Hops
	for c, r := range s.res {
		s.out.PerCluster[c].Issued = r.IssuedTotal
	}
	if s.hier != nil {
		s.out.L1IMisses = s.hier.L1I.Misses
		s.out.L1DMisses = s.hier.L1D.Misses
		s.out.L2Misses = s.hier.L2.Misses
	}
	return s.out, nil
}

// PhaseCycles reports how the simulated cycles split across the three
// coarse phases: warmup (before the first commit), steady (committing
// with trace input remaining) and drain (trace exhausted, pipeline
// emptying). The three always sum to Results.Cycles after Run. The
// split feeds trace spans and is intentionally kept out of
// stats.Results so golden outputs never change.
func (s *Sim) PhaseCycles() (warmup, steady, drain uint64) {
	return s.phaseWarmup, s.phaseSteady, s.phaseDrain
}

func (s *Sim) describeHead(now int64) string {
	if s.robCount == 0 {
		return "rob empty"
	}
	e := &s.ring[s.headSeq%ringCap]
	msg := fmt.Sprintf("head seq=%d pc=%d op=%v st=%d cluster=%d unverified=%d",
		e.seq, e.pc, e.op, e.st, e.cluster, e.unverified)
	for i := 0; i < e.nsrc; i++ {
		msg += fmt.Sprintf(" src%d(ready=%v pred=%v)", i, e.srcReady(i, now), e.src[i].predicted)
	}
	return msg
}

// fetch models the front end: up to FetchWidth instructions per cycle
// from the correct path, gated by the I-cache and by unresolved
// mispredicted branches.
func (s *Sim) fetch(now int64) {
	if s.fetchBlockedPreDisp {
		return
	}
	if b := s.blockingBranch.get(); b != nil {
		if !b.resolved(now) {
			return
		}
		s.blockingBranch = eref{}
		if t := b.doneTime + 1; t > s.fetchReadyTime {
			s.fetchReadyTime = t
		}
		// Redirect restarts fetch on a fresh line.
		s.lastFetchLine = -1
	} else if !s.blockingBranch.zero() {
		// The branch committed while we were blocked (resolved earlier).
		s.blockingBranch = eref{}
		s.lastFetchLine = -1
	}
	if now < s.fetchReadyTime {
		return
	}
	for n := 0; n < s.cfg.FetchWidth && s.fqLen < fetchQCap; n++ {
		d := s.peek()
		if d == nil {
			return
		}
		// Instruction-cache access once per 32-byte line.
		line := int64(d.PC) * 4 / 32
		if line != s.lastFetchLine {
			lat := s.caches.InstAccess(uint64(d.PC) * 4)
			s.lastFetchLine = line
			if lat > 1 {
				// Line arrives later; retry then (it will hit).
				s.fetchReadyTime = now + int64(lat)
				return
			}
		}
		f := fetched{dyn: *d, fetchTime: now}
		info := d.Info()
		if info.IsBranch {
			predNext, _ := s.bp.PredictNext(d.PC, d.Inst)
			correct := s.bp.Resolve(d.PC, d.Inst, d.NextPC, d.Taken, predNext)
			if !correct {
				f.mispred = true
			}
		}
		s.consume()
		s.fetchQ[(s.fqHead+s.fqLen)%fetchQCap] = f
		s.fqLen++
		if f.mispred {
			// Fetch cannot proceed past a mispredicted branch until it
			// resolves; the block transfers to blockingBranch at
			// dispatch.
			s.fetchBlockedPreDisp = true
			return
		}
	}
}

// alloc claims the next ROB ring slot, returning the previous
// occupant's dependence-edge chunks to the shared pool and clearing the
// slot's consumer mask. The pool's high-water mark is global, so after
// warmup recycling never heap-allocates.
func (s *Sim) alloc() *entry {
	slot := s.nextSeq % ringCap
	e := &s.ring[slot]
	s.releaseDeps(e, slot)
	*e = entry{seq: s.nextSeq, doneTime: 1 << 62, depHead: noChunk, depTail: noChunk}
	s.nextSeq++
	s.robCount++
	return e
}

// dispatch is the decode/rename/steer stage: up to DecodeWidth
// instructions per cycle, each possibly expanding into copy or
// verification-copy instructions, all consuming ROB/IQ/register
// resources.
func (s *Sim) dispatch(now int64) {
	for n := 0; n < s.cfg.DecodeWidth && s.fqLen > 0; n++ {
		f := &s.fetchQ[s.fqHead]
		if now < f.fetchTime+int64(s.cfg.RenameCycles) {
			return
		}
		if !s.dispatchOne(now, f) {
			return
		}
		s.fqHead = (s.fqHead + 1) % fetchQCap
		s.fqLen--
	}
}

// opView captures the per-operand analysis shared by steering and rename.
type opView struct {
	reg      isa.RegID
	isFP     bool
	constant bool // R0: always ready, never renamed
	avail    bool
	mapped   uint32
	home     int
	homeProv eref // provider of the home-cluster mapping (snapshot)
	conf     bool // confident prediction available
	correct  bool
}

// analyzeOperands fills the Sim-owned operand-view scratch buffer and
// returns the populated prefix; the views stay valid until the next
// call (dispatch is strictly sequential, so nothing ever holds two
// instructions' views at once).
func (s *Sim) analyzeOperands(now int64, f *fetched) []opView {
	nsrc := f.dyn.Info().NumSrc
	views := s.views[:nsrc]
	if !f.vpDone {
		// Decode-time predictor lookup and training, once per dynamic
		// instruction (§2.2: predictions available and tables updated at
		// decode).
		for i := 0; i < nsrc; i++ {
			r := f.dyn.Inst.Source(i)
			if r == isa.R0 {
				continue
			}
			_, conf, correct := s.vp.PredictAndTrain(f.dyn.PC, i, r.IsFP(), f.dyn.SrcVal[i])
			f.vpConf[i] = conf && s.cfg.VP != config.VPNone
			f.vpCorrect[i] = correct
		}
		f.vpDone = true
	}
	for i := range views {
		r := f.dyn.Inst.Source(i)
		v := &views[i]
		*v = opView{}
		v.reg = r
		v.isFP = r.IsFP()
		if r == isa.R0 {
			v.constant = true
			v.avail = true
			continue
		}
		v.home = s.table.Home(r)
		v.mapped = s.table.MappedMask(r)
		m := s.table.Lookup(r, v.home)
		v.homeProv = m.Provider
		p := m.Provider.get()
		v.avail = p == nil || p.done(now)
		v.conf = f.vpConf[i]
		v.correct = f.vpCorrect[i]
	}
	return views
}

// copyPlan records one copy or verification-copy an instruction's
// dispatch will generate.
type copyPlan struct {
	opIdx int
	isVC  bool
	home  int
}

// dispatchOne renames, steers and inserts one instruction (plus its
// generated copies); it returns false when a structural resource is
// exhausted and dispatch must retry next cycle. All intermediate
// per-instruction state lives in Sim-owned scratch buffers.
func (s *Sim) dispatchOne(now int64, f *fetched) bool {
	views := s.analyzeOperands(now, f)
	info := f.dyn.Info()

	// Steering.
	ops := s.steerOps[:0]
	for _, v := range views {
		if v.constant {
			continue
		}
		ops = append(ops, steer.Operand{
			Available:       v.avail,
			MappedIn:        v.mapped,
			ProducerCluster: v.home,
			Predicted:       v.conf,
		})
	}
	cl := s.str.Choose(ops)

	// Plan resource needs.
	plans := s.plans[:0]
	for i := range views {
		v := &views[i]
		if v.constant {
			continue
		}
		if v.mapped&(1<<uint(cl)) != 0 {
			continue // mapped in target cluster: read locally (maybe predicted)
		}
		plans = append(plans, copyPlan{opIdx: i, isVC: v.conf, home: v.home})
	}

	hasDest := false
	var destLog isa.RegID
	if d, ok := f.dyn.Inst.Dest(); ok && d != isa.R0 {
		hasDest = true
		destLog = d
	}

	// Structural checks: ROB, IQ and registers for the instruction and
	// every generated copy.
	if s.robCount+1+len(plans) > s.cfg.ROBSize {
		s.out.DispatchStallROB++
		return false
	}
	iqNeed, regNeed := s.iqNeed, s.regNeed
	for c := range iqNeed {
		iqNeed[c], regNeed[c] = 0, 0
	}
	iqNeed[cl]++
	if hasDest {
		regNeed[cl]++
	}
	for _, p := range plans {
		iqNeed[p.home]++
		if !p.isVC {
			regNeed[cl]++ // plain copies allocate the value's register in the consumer cluster
		}
	}
	for c := 0; c < len(s.iqCount); c++ {
		if s.iqCount[c]+iqNeed[c] > s.iqSize[c] {
			s.out.DispatchStallIQ++
			return false
		}
		if !s.table.CanAlloc(c, regNeed[c]) {
			s.out.DispatchStallRegs++
			return false
		}
	}

	// Create copies and verification-copies (they precede the consumer
	// in ROB order).
	consumerSrcs := s.consSrcs[:len(views)]
	verifs := s.verifs[:0]
	for i := range views {
		v := &views[i]
		consumerSrcs[i] = source{reg: v.reg, isFP: v.isFP}
		if v.constant {
			continue
		}
		mapping := s.table.Lookup(v.reg, cl)
		if mapping.Valid {
			prov := mapping.Provider
			p := prov.get()
			if p == nil || p.done(now) {
				// Ready locally.
				continue
			}
			if v.conf {
				// Local predicted speculation: verified at the
				// provider's writeback (§2.2).
				consumerSrcs[i].predicted = true
				consumerSrcs[i].predCorrect = v.correct
				verifs = append(verifs, verification{opIdx: i, provider: prov, correct: v.correct})
				p.hasVerif = true
				if p.st == stIssued && p.doneTime+1 < s.nextVerifMin {
					s.nextVerifMin = p.doneTime + 1
				}
				s.out.PredictedOperandsUsed++
			} else {
				consumerSrcs[i].provider = prov
			}
			continue
		}
		// Unmapped in the target cluster: copy or verification-copy.
		// The home-cluster mapping is untouched since analyzeOperands
		// (earlier operands only AddCopy into the target cluster), so
		// the snapshotted provider is still current.
		home := v.home
		homeProv := v.homeProv
		if v.conf {
			vc := s.alloc()
			vc.isVC = true
			vc.class = isa.ClassNone
			vc.lat = 1
			vc.pipe = true
			vc.cluster = home
			vc.dstCluster = cl
			vc.nsrc = 1
			vc.src[0] = source{reg: v.reg, isFP: v.isFP, provider: homeProv}
			vc.dispatchTime = now
			vc.vcCorrect = v.correct
			vc.hasVerif = true
			s.iqEnter(vc)
			// Inline readiness: a freshly dispatched entry has no minReady
			// bound, so it is ready exactly when its provider's result is
			// visible. A pending issued provider needs no recheck event —
			// every issued-not-done entry keeps one completion event armed
			// on the wheel (re-armed on horizon chaining), which fires the
			// consumer-mask wakeup this addDep just registered for.
			if hp := homeProv.get(); hp != nil {
				s.addDep(hp, ref(vc))
				if hp.done(now) {
					s.setReady(vc.seq % ringCap)
				}
			} else {
				s.setReady(vc.seq % ringCap)
			}
			s.out.VerifyCopies++
			s.out.PerCluster[home].CopiesOut++
			consumerSrcs[i].predicted = true
			consumerSrcs[i].predCorrect = v.correct
			verifs = append(verifs, verification{opIdx: i, provider: ref(vc), remote: true, correct: v.correct})
			s.out.PredictedOperandsUsed++
		} else {
			cp := s.alloc()
			cp.isCopy = true
			cp.class = isa.ClassNone
			cp.lat = 1
			cp.pipe = true
			cp.cluster = home
			cp.dstCluster = cl
			cp.hasDest = true
			cp.destLog = v.reg
			cp.nsrc = 1
			cp.src[0] = source{reg: v.reg, isFP: v.isFP, provider: homeProv}
			cp.dispatchTime = now
			if !s.table.AddCopy(v.reg, cl, ref(cp)) {
				panic("core: copy register allocation failed after CanAlloc")
			}
			s.iqEnter(cp)
			if hp := homeProv.get(); hp != nil {
				s.addDep(hp, ref(cp))
				if hp.done(now) {
					s.setReady(cp.seq % ringCap)
				}
			} else {
				s.setReady(cp.seq % ringCap)
			}
			s.out.Copies++
			s.out.PerCluster[home].CopiesOut++
			consumerSrcs[i].provider = ref(cp)
		}
	}

	// The consumer itself.
	e := s.alloc()
	e.pc = f.dyn.PC
	e.op = f.dyn.Inst.Op
	e.class = info.Class
	e.lat = info.Latency
	e.pipe = info.Pipelined
	e.cluster = cl
	e.nsrc = len(views)
	for i := range consumerSrcs {
		e.src[i] = consumerSrcs[i]
	}
	e.dispatchTime = now
	e.isBranch = info.IsBranch
	e.mispred = f.mispred
	e.isLoad = info.IsLoad
	e.isStore = info.IsStore
	e.addr = f.dyn.Addr

	// Register dependence edges for the reissue cascade and bitmap
	// wakeup, computing initial readiness in the same pass (predicted
	// operands are covered, and pending issued providers carry the
	// armed completion event that will wake this entry).
	ready := true
	for i := 0; i < e.nsrc; i++ {
		src := &e.src[i]
		if src.predicted {
			continue
		}
		if p := src.provider.get(); p != nil {
			s.addDep(p, ref(e))
			if !p.done(now) {
				ready = false
			}
		}
	}
	// Pending verifications now that the consumer exists.
	for _, v := range verifs {
		v.consumer = ref(e)
		s.pendingVerifs = append(s.pendingVerifs, v)
		e.unverified++
	}

	if hasDest {
		free, ok := s.table.Rename(destLog, cl, ref(e))
		if !ok {
			panic("core: destination register allocation failed after CanAlloc")
		}
		e.hasDest = true
		e.destLog = destLog
		e.freeAtCommit = free
	}
	if e.isStore {
		s.activeStores = append(s.activeStores, ref(e))
	}
	s.iqEnter(e)
	if ready {
		s.setReady(e.seq % ringCap)
	}
	s.bal.Dispatched(cl)
	s.out.PerCluster[cl].Dispatched++

	if f.mispred {
		s.blockingBranch = ref(e)
		s.fetchBlockedPreDisp = false
	}
	return true
}
