package core

// Bitmapped wakeup/select state. The scheduler-hot state of the ROB
// lives here in Sim-owned parallel arrays indexed by ring slot
// (struct-of-arrays), not in the entries themselves:
//
//   - iqW[c] is cluster c's valid mask: one bit per ring slot holding a
//     dispatched, still-waiting entry of that cluster (the instruction
//     queue). popcount(iqW[c]) == iqCount[c] at all times.
//   - readyW is the global ready mask: the subset of waiting entries
//     whose source operands are all ready this cycle. Select walks it
//     oldest-first with bits.TrailingZeros64. The mask is global rather
//     than per-cluster because the shared structures it arbitrates —
//     L1D ports and the inter-cluster buses — are allocated in global
//     ROB age order; per-cluster ready words are readyW & iqW[c].
//   - cons[p] is producer slot p's consumer mask: one bit per ring slot
//     holding an entry that named p as a source provider. Wakeup on
//     producer completion is a word-OR of cons[p] into recheckW.
//   - wheel is a timing wheel of wakeup events. A producer pushes one
//     completion event at issue time, keyed by its doneTime; when it
//     fires, every flagged consumer recomputes its readiness.
//
// Events are hints, not truth: firing rechecks recompute readiness from
// the entry's sources, so stale events (recycled slots, superseded
// providers, invalidated producers) are harmless. The invariant that
// matters is that no wakeup is ever lost — every transition of a
// waiting entry to "all sources ready" is covered by either a pending
// wheel event or an inline recheck at the mutation site (dispatch,
// invalidate, verification resolve). TestReadyBitmapSoundness and the
// differential oracle in oracle_test.go pin both directions.

import "math/bits"

const (
	// nWords is the ready/valid bitmap width: one bit per ring slot.
	nWords = ringCap / 64

	// depChunkSize is the consumer-edge payload of one dep chunk.
	depChunkSize = 14

	// wheelCap bounds how far ahead a wakeup can be scheduled directly;
	// farther events chain through the last wheel slot and reschedule
	// when they fire. Must be a power of two.
	wheelCap  = 1024
	wheelMask = wheelCap - 1

	// prodEvent flags a wheel entry as a producer-completion event (the
	// low bits carry the ring slot).
	prodEvent = 1 << 15

	// evChunkSize is the event payload of one wheel chunk.
	evChunkSize = 30

	// noChunk terminates a dep or event chain.
	noChunk = -1
)

// depChunk is one block of a producer's consumer-edge list. Edges are
// stored in chunked, index-linked lists drawn from a single Sim-owned
// pool so steady-state edge growth never heap-allocates: the pool's
// high-water mark is global, unlike the previous per-ring-slot deps
// slices, each of which had to individually warm up to its own maximum
// fanout (the source of the residual B/op the benchmarks caught).
// Index links, not pointers, so the pool backing array may grow.
type depChunk struct {
	n    int32
	next int32
	refs [depChunkSize]eref
}

// evChunk is one block of a wheel slot's pending-event list. Like dep
// chunks, events live in chunked index-linked chains drawn from one
// shared pool: per-wheel-slot slices would each have to warm up to
// their own maximum occupancy (1024 independent high-water marks),
// reintroducing the slow allocation trickle the dep pool eliminated.
type evChunk struct {
	n    int32
	next int32
	evs  [evChunkSize]int32
}

// sched is the bitmapped wakeup/select state embedded in Sim.
type sched struct {
	iqW      [][nWords]uint64 // per-cluster valid (waiting) masks
	readyW   [nWords]uint64   // global ready mask
	recheckW [nWords]uint64   // per-cycle scratch: slots to recompute
	cons     [ringCap][nWords]uint64
	// consDirty flags ring slots with a nonzero consumer mask, so slot
	// recycling skips the row clear for the common consumer-less case.
	consDirty [nWords]uint64

	wheelHead [wheelCap]int32
	wheelTail [wheelCap]int32

	depPool []depChunk
	depFree int32
	evPool  []evChunk
	evFree  int32

	// nextVerifMin is a lower bound on the earliest cycle any pending
	// verification can resolve; processVerifications skips its scan
	// before then. Lowered when a verification provider issues and when
	// a verification is created against an already-issued provider;
	// recomputed exactly on every scan.
	nextVerifMin int64
}

// resetSched sizes (or rewinds) the scheduler state for nc clusters. On
// a fresh Sim the pools start with capacity for far more simultaneous
// dependence edges and pending events than a full 512-entry ROB
// generates, so reaching the high-water mark never allocates after
// construction; on a reused Sim the bitmap storage and pool backing
// arrays are kept and only their contents are rewound. Consumer-mask
// rows are cleared via consDirty, so the sweep touches only rows a
// prior run actually wrote.
func (s *Sim) resetSched(nc int) {
	if len(s.iqW) != nc {
		s.iqW = make([][nWords]uint64, nc)
	} else {
		for c := range s.iqW {
			s.iqW[c] = [nWords]uint64{}
		}
	}
	s.readyW = [nWords]uint64{}
	s.recheckW = [nWords]uint64{}
	for w := range s.consDirty {
		m := s.consDirty[w]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			slot := w<<6 + b
			for j := range s.cons[slot] {
				s.cons[slot][j] = 0
			}
		}
		s.consDirty[w] = 0
	}
	for i := range s.wheelHead {
		s.wheelHead[i], s.wheelTail[i] = noChunk, noChunk
	}
	if s.depPool == nil {
		s.depPool = make([]depChunk, 0, 4*ringCap)
	} else {
		s.depPool = s.depPool[:0]
	}
	s.depFree = noChunk
	if s.evPool == nil {
		s.evPool = make([]evChunk, 0, 4*ringCap/evChunkSize)
	} else {
		s.evPool = s.evPool[:0]
	}
	s.evFree = noChunk
	s.nextVerifMin = 0
}

// --- dependence-edge pool ---

// newChunk pops a recycled chunk or extends the pool.
func (s *Sim) newChunk() int32 {
	if ci := s.depFree; ci != noChunk {
		s.depFree = s.depPool[ci].next
		s.depPool[ci].n = 0
		s.depPool[ci].next = noChunk
		return ci
	}
	s.depPool = append(s.depPool, depChunk{next: noChunk})
	return int32(len(s.depPool) - 1)
}

// addDep records r as a consumer of producer p: appended to p's edge
// list (order is semantic — the reissue cascade walks edges in append
// order, and blockingBranch election depends on it) and OR-able via
// p's consumer mask for bitmap wakeup.
func (s *Sim) addDep(p *entry, r eref) {
	ci := p.depTail
	if ci == noChunk || s.depPool[ci].n == depChunkSize {
		nc := s.newChunk()
		if ci == noChunk {
			p.depHead = nc
		} else {
			s.depPool[ci].next = nc
		}
		p.depTail = nc
		ci = nc
	}
	c := &s.depPool[ci]
	c.refs[c.n] = r
	c.n++
	pslot := p.seq % ringCap
	cslot := r.seq % ringCap
	s.cons[pslot][cslot>>6] |= 1 << uint(cslot&63)
	s.consDirty[pslot>>6] |= 1 << uint(pslot&63)
}

// releaseDeps returns e's edge chunks to the free list and clears the
// recycled slot's consumer mask. slot is passed by the caller rather
// than derived from e.seq: a virgin slot still carries seq 0, which
// would otherwise alias the mask of the live entry in slot 0.
func (s *Sim) releaseDeps(e *entry, slot int64) {
	if e.depHead != noChunk {
		// Splice the whole chain onto the free list in one step.
		s.depPool[e.depTail].next = s.depFree
		s.depFree = e.depHead
		e.depHead, e.depTail = noChunk, noChunk
	}
	if s.consDirty[slot>>6]&(1<<uint(slot&63)) != 0 {
		s.consDirty[slot>>6] &^= 1 << uint(slot&63)
		for w := range s.cons[slot] {
			s.cons[slot][w] = 0
		}
	}
}

// --- valid/ready masks ---

func (s *Sim) iqEnter(e *entry) {
	slot := e.seq % ringCap
	s.iqW[e.cluster][slot>>6] |= 1 << uint(slot&63)
	s.iqCount[e.cluster]++
}

func (s *Sim) iqLeave(e *entry) {
	slot := e.seq % ringCap
	m := ^(uint64(1) << uint(slot&63))
	s.iqW[e.cluster][slot>>6] &= m
	s.readyW[slot>>6] &= m
	s.iqCount[e.cluster]--
}

func (s *Sim) setReady(slot int64)   { s.readyW[slot>>6] |= 1 << uint(slot&63) }
func (s *Sim) clearReady(slot int64) { s.readyW[slot>>6] &^= 1 << uint(slot&63) }

// --- timing wheel ---

// newEvChunk pops a recycled event chunk or extends the pool.
func (s *Sim) newEvChunk() int32 {
	if ci := s.evFree; ci != noChunk {
		s.evFree = s.evPool[ci].next
		s.evPool[ci].n = 0
		s.evPool[ci].next = noChunk
		return ci
	}
	s.evPool = append(s.evPool, evChunk{next: noChunk})
	return int32(len(s.evPool) - 1)
}

// scheduleEvent pushes event (a slot, optionally tagged prodEvent) at
// cycle t as seen from now. Events beyond the horizon chain through the
// farthest wheel slot: firing early is harmless because firing
// recomputes state and reschedules, while firing late would lose a
// wakeup.
func (s *Sim) scheduleEvent(event int32, t, now int64) {
	if t-now >= wheelCap {
		t = now + wheelCap - 1
	}
	i := t & wheelMask
	ci := s.wheelTail[i]
	if ci == noChunk || s.evPool[ci].n == evChunkSize {
		nc := s.newEvChunk()
		if ci == noChunk {
			s.wheelHead[i] = nc
		} else {
			s.evPool[ci].next = nc
		}
		s.wheelTail[i] = nc
		ci = nc
	}
	c := &s.evPool[ci]
	c.evs[c.n] = event
	c.n++
}

// dropWheelSlot discards this cycle's pending events unprocessed
// (reference-selector mode never consults the wheel but dispatch still
// feeds it; dropping each slot as its turn comes keeps memory bounded).
func (s *Sim) dropWheelSlot(now int64) {
	i := now & wheelMask
	if h := s.wheelHead[i]; h != noChunk {
		s.evPool[s.wheelTail[i]].next = s.evFree
		s.evFree = h
		s.wheelHead[i], s.wheelTail[i] = noChunk, noChunk
	}
}

// wakeConsumersAt schedules producer p's completion wakeup for cycle t.
func (s *Sim) wakeConsumersAt(p *entry, t, now int64) {
	s.scheduleEvent(int32(p.seq%ringCap)|prodEvent, t, now)
}

// drainWheel fires this cycle's wakeup events: producer completions
// word-OR their consumer masks into recheckW, direct rechecks set their
// own bit, and then every flagged slot recomputes its readiness.
func (s *Sim) drainWheel(now int64) {
	wi := now & wheelMask
	head := s.wheelHead[wi]
	if head == noChunk {
		return
	}
	// Detach the chain before firing. Processing only schedules into
	// future cycles (re-arms use doneTime > now, rechecks wake > now),
	// never back into this slot. Events are read by pool index, not
	// held pointers: a re-arm may grow evPool and move its backing.
	s.wheelHead[wi], s.wheelTail[wi] = noChunk, noChunk
	any := false
	last := head
	for ci := head; ci != noChunk; ci = s.evPool[ci].next {
		last = ci
		for j := int32(0); j < s.evPool[ci].n; j++ {
			ev := s.evPool[ci].evs[j]
			slot := int64(ev &^ prodEvent)
			if ev&prodEvent != 0 {
				if e := &s.ring[slot]; e.st == stIssued && e.doneTime > now {
					// Chained past-horizon completion (or a recycled
					// slot's new occupant): not done yet, re-arm at its
					// doneTime.
					s.wakeConsumersAt(e, e.doneTime, now)
					continue
				}
				for w := range s.recheckW {
					s.recheckW[w] |= s.cons[slot][w]
				}
			} else {
				s.recheckW[slot>>6] |= 1 << uint(slot&63)
			}
			any = true
		}
	}
	s.evPool[last].next = s.evFree
	s.evFree = head
	if !any {
		return
	}
	for w := range s.recheckW {
		m := s.recheckW[w]
		s.recheckW[w] = 0
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &^= 1 << uint(b)
			s.recheckSlot(int64(w<<6+b), now)
		}
	}
}

// recheckSlot recomputes the readiness of the waiting entry in slot and
// updates its ready bit. When the entry is not ready but every pending
// source has a known ready time (an issued provider's doneTime, or a
// minReady bound), a recheck is scheduled for the latest such time;
// pending sources whose provider has not issued need no event here —
// that provider's own issue schedules the completion wakeup.
func (s *Sim) recheckSlot(slot, now int64) {
	e := &s.ring[slot]
	if e.st != stWaiting {
		return
	}
	ready := true
	var wake int64
	for i := 0; i < e.nsrc; i++ {
		src := &e.src[i]
		if src.predicted {
			continue
		}
		if now < src.minReady {
			ready = false
			if src.minReady > wake {
				wake = src.minReady
			}
			continue
		}
		p := src.provider.get()
		if p == nil {
			continue
		}
		if p.st == stIssued {
			if p.doneTime <= now {
				continue
			}
			ready = false
			if p.doneTime > wake {
				wake = p.doneTime
			}
		} else {
			ready = false
		}
	}
	if ready {
		s.setReady(slot)
		return
	}
	s.clearReady(slot)
	if wake > now {
		s.scheduleEvent(int32(slot), wake, now)
	}
}
