package core

import (
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/isa"
	"clustervp/internal/program"
	"clustervp/internal/stats"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

// run simulates prog under cfg and fails the test on error.
func run(t *testing.T, cfg config.Config, prog *program.Program) stats.Results {
	t.Helper()
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatalf("%s/%s: %v", cfg.Name, prog.Name, err)
	}
	return r
}

func straightLine(n int) *program.Program {
	b := program.NewBuilder("straight")
	b.Li(isa.R1, 1)
	for i := 0; i < n; i++ {
		b.I(isa.ADDI, isa.R2, isa.R1, int64(i))
	}
	b.Halt()
	return b.MustBuild()
}

func chain(n int) *program.Program {
	// A serial dependence chain: IPC must approach 1 regardless of width.
	b := program.NewBuilder("chain")
	b.Li(isa.R1, 0)
	for i := 0; i < n; i++ {
		b.I(isa.ADDI, isa.R1, isa.R1, 1)
	}
	b.Halt()
	return b.MustBuild()
}

func loopSum(n int64) *program.Program {
	b := program.NewBuilder("loopsum")
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 0)
	b.Li(isa.R3, n)
	b.Label("loop")
	b.R(isa.ADD, isa.R1, isa.R1, isa.R2)
	b.I(isa.ADDI, isa.R2, isa.R2, 1)
	b.Br(isa.BLT, isa.R2, isa.R3, "loop")
	b.Store(isa.SW, isa.R1, isa.R0, 0)
	b.Halt()
	return b.MustBuild()
}

// perfectCache returns cfg with ideal caches, for microbenchmark tests
// whose straight-line code would otherwise be dominated by compulsory
// I-cache misses (real workloads loop; these probes do not).
func perfectCache(cfg config.Config) config.Config {
	cfg.PerfectCaches = true
	return cfg
}

func TestStraightLineCompletes(t *testing.T) {
	r := run(t, perfectCache(config.Preset(1)), straightLine(500))
	if r.Instructions != 501 { // HALT is not traced
		t.Errorf("instructions = %d, want 501", r.Instructions)
	}
	if r.IPC() < 2.0 {
		t.Errorf("independent straight-line IPC = %.2f, expected > 2", r.IPC())
	}
}

func TestSerialChainIPCNearOne(t *testing.T) {
	r := run(t, perfectCache(config.Preset(1)), chain(2000))
	if ipc := r.IPC(); ipc > 1.1 {
		t.Errorf("serial chain IPC = %.2f, cannot exceed ~1", ipc)
	}
	if ipc := r.IPC(); ipc < 0.8 {
		t.Errorf("serial chain IPC = %.2f, suspiciously low", ipc)
	}
}

func TestLoopCompletesAllClusterCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		r := run(t, config.Preset(n), loopSum(500))
		if r.Instructions != 3+500*3+1 {
			t.Errorf("%d clusters: instructions = %d", n, r.Instructions)
		}
	}
}

func TestClusteringDegradesIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("three-config simulation in -short mode")
	}
	// The fundamental result the whole paper builds on: clustered IPC is
	// below centralized IPC (communication + narrower per-cluster issue).
	k, _ := workload.ByName("gsmenc")
	p := k.Build(1)
	ipc1 := run(t, config.Preset(1), p).IPC()
	ipc2 := run(t, config.Preset(2), k.Build(1)).IPC()
	ipc4 := run(t, config.Preset(4), k.Build(1)).IPC()
	if !(ipc1 > ipc2 && ipc2 > ipc4) {
		t.Errorf("expected IPC1 > IPC2 > IPC4, got %.3f / %.3f / %.3f", ipc1, ipc2, ipc4)
	}
	if ipc4 <= 0 {
		t.Fatal("4-cluster run produced no progress")
	}
}

func TestCommunicationOnlyWhenClustered(t *testing.T) {
	k, _ := workload.ByName("cjpeg")
	r1 := run(t, config.Preset(1), k.Build(1))
	if r1.Copies != 0 || r1.BusTransfers != 0 {
		t.Errorf("centralized machine must not communicate: %d copies, %d transfers", r1.Copies, r1.BusTransfers)
	}
	r4 := run(t, config.Preset(4), k.Build(1))
	if r4.Copies == 0 || r4.BusTransfers == 0 {
		t.Error("4-cluster machine must generate copies")
	}
	if r4.CommPerInstr() <= 0 || r4.CommPerInstr() > 1.5 {
		t.Errorf("comm/instr = %.3f out of plausible range", r4.CommPerInstr())
	}
}

func TestValuePredictionReducesCommunication(t *testing.T) {
	// The paper's central claim (Figure 3b): with the stride predictor
	// and VPB steering, communications drop substantially.
	k, _ := workload.ByName("gsmdec")
	base := run(t, config.Preset(4), k.Build(1))
	vp := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), k.Build(1))
	if vp.CommPerInstr() >= base.CommPerInstr() {
		t.Errorf("VP should cut communication: base %.4f, vp %.4f", base.CommPerInstr(), vp.CommPerInstr())
	}
	if vp.PredictedOperandsUsed == 0 {
		t.Error("stride predictor never used")
	}
}

func TestValuePredictionHelpsClusteredIPC(t *testing.T) {
	k, _ := workload.ByName("gsmdec")
	base := run(t, config.Preset(4), k.Build(1))
	vp := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), k.Build(1))
	if vp.IPC() <= base.IPC() {
		t.Errorf("VP should raise 4-cluster IPC on a serial kernel: base %.3f, vp %.3f", base.IPC(), vp.IPC())
	}
}

func TestPerfectPredictionUpperBound(t *testing.T) {
	k, _ := workload.ByName("cjpeg")
	vp := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), k.Build(1))
	perfect := run(t, config.Preset(4).WithVP(config.VPPerfect).WithSteering(config.SteerVPB), k.Build(1))
	if perfect.IPC() < vp.IPC()*0.98 {
		t.Errorf("perfect prediction (%.3f) must not lose to stride (%.3f)", perfect.IPC(), vp.IPC())
	}
	if perfect.Reissues != 0 {
		t.Errorf("perfect prediction must never reissue, got %d", perfect.Reissues)
	}
}

func TestMispredictionsRecoverCorrectly(t *testing.T) {
	// pgpenc has erratic values: the stride predictor will mispredict;
	// the run must still complete with the exact instruction count.
	k, _ := workload.ByName("pgpenc")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), k.Build(1))
	if r.Instructions != want {
		t.Errorf("committed %d, functional count %d", r.Instructions, want)
	}
	if r.PredictedOperandsWrong == 0 {
		t.Log("note: no mispredictions on pgpenc (unexpected but not fatal)")
	}
	if r.PredictedOperandsWrong > 0 && r.Reissues == 0 {
		t.Error("mispredictions without reissues")
	}
}

func TestLatencySensitivity(t *testing.T) {
	// Figure 4a: IPC must fall as communication latency grows.
	k, _ := workload.ByName("epicenc")
	var prev float64
	for i, lat := range []int{1, 2, 4} {
		r := run(t, config.Preset(4).WithComm(lat, 0), k.Build(1))
		if i > 0 && r.IPC() > prev*1.005 {
			t.Errorf("latency %d: IPC %.3f should not exceed latency %d IPC %.3f", lat, r.IPC(), lat/2, prev)
		}
		prev = r.IPC()
	}
}

func TestBandwidthLimitSmallEffect(t *testing.T) {
	// Figure 4b: one path per cluster costs only a few percent.
	k, _ := workload.ByName("djpeg")
	unb := run(t, config.Preset(4), k.Build(1))
	one := run(t, config.Preset(4).WithComm(1, 1), k.Build(1))
	if one.IPC() > unb.IPC()*1.001 {
		t.Errorf("limited bandwidth cannot beat unbounded: %.3f vs %.3f", one.IPC(), unb.IPC())
	}
	if one.IPC() < unb.IPC()*0.80 {
		t.Errorf("single path per cluster should cost little: %.3f vs %.3f", one.IPC(), unb.IPC())
	}
}

func TestTwoCycleRenameSmallCost(t *testing.T) {
	if testing.Short() {
		t.Skip("two-config simulation in -short mode")
	}
	// §3.3: a 2-cycle rename/steer stage degrades IPC by under ~2-3%.
	k, _ := workload.ByName("gsmenc")
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	r1 := run(t, cfg, k.Build(1))
	cfg2 := cfg
	cfg2.RenameCycles = 2
	r2 := run(t, cfg2, k.Build(1))
	if r2.IPC() > r1.IPC() {
		t.Errorf("deeper rename cannot help: %.3f vs %.3f", r2.IPC(), r1.IPC())
	}
	if r2.IPC() < r1.IPC()*0.90 {
		t.Errorf("2-cycle rename cost too high: %.3f vs %.3f (>10%%)", r2.IPC(), r1.IPC())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A store immediately followed by a dependent load must forward, and
	// the result must be timely (well under a cache miss).
	b := program.NewBuilder("fwd")
	b.Li(isa.R1, 42)
	for i := 0; i < 200; i++ {
		b.Store(isa.SW, isa.R1, isa.R0, 64)
		b.Load(isa.LW, isa.R2, isa.R0, 64)
		b.I(isa.ADDI, isa.R1, isa.R2, 1)
	}
	b.Halt()
	r := run(t, perfectCache(config.Preset(1)), b.MustBuild())
	// Serial chain of store->load->add: ~3-5 cycles per iteration. If
	// forwarding were broken (cache round trips), this would blow up.
	cyclesPerIter := float64(r.Cycles) / 200
	if cyclesPerIter > 8 {
		t.Errorf("store-load chain %.1f cycles/iter; forwarding broken?", cyclesPerIter)
	}
}

func TestBranchMispredictStalls(t *testing.T) {
	// A data-dependent unpredictable branch pattern costs cycles.
	b := program.NewBuilder("brmiss")
	vals := make([]int64, 2048)
	l := uint64(99)
	for i := range vals {
		l = l*6364136223846793005 + 1442695040888963407
		vals[i] = int64(l >> 63) // random 0/1
	}
	arr := b.DataWords(vals)
	b.Li(isa.R10, arr)
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 2048)
	b.Li(isa.R4, 0)
	b.Label("loop")
	b.I(isa.SLLI, isa.R3, isa.R1, 3)
	b.R(isa.ADD, isa.R3, isa.R3, isa.R10)
	b.Load(isa.LW, isa.R3, isa.R3, 0)
	b.Br(isa.BEQ, isa.R3, isa.R0, "skip")
	b.I(isa.ADDI, isa.R4, isa.R4, 1)
	b.Label("skip")
	b.I(isa.ADDI, isa.R1, isa.R1, 1)
	b.Br(isa.BLT, isa.R1, isa.R2, "loop")
	b.Halt()
	p := b.MustBuild()
	r := run(t, config.Preset(1), p)
	if r.BranchAccuracy() > 0.95 {
		t.Errorf("random branch accuracy %.3f implausibly high", r.BranchAccuracy())
	}
	if r.IPC() > 4.0 {
		t.Errorf("IPC %.2f too high for a mispredict-bound loop", r.IPC())
	}
}

func TestAllWorkloadsAllConfigsComplete(t *testing.T) {
	// Exhaustive smoke: every kernel on every cluster count, with and
	// without VP, commits exactly its functional instruction count.
	if testing.Short() {
		t.Skip("long")
	}
	for _, k := range workload.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			e := trace.NewExecutor(k.Build(1))
			want, err := e.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 4} {
				for _, vp := range []config.VPKind{config.VPNone, config.VPStride} {
					cfg := config.Preset(n).WithVP(vp)
					if vp != config.VPNone {
						cfg = cfg.WithSteering(config.SteerVPB)
					}
					r := run(t, cfg, k.Build(1))
					if r.Instructions != want {
						t.Errorf("%s clusters=%d vp=%v: committed %d, want %d", k.Name, n, vp, r.Instructions, want)
					}
				}
			}
		})
	}
}
