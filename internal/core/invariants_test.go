package core

import (
	"math/bits"
	"reflect"
	"strings"
	"testing"

	"clustervp/internal/config"
	"clustervp/internal/interconnect"
	"clustervp/internal/isa"
	"clustervp/internal/program"
	"clustervp/internal/trace"
	"clustervp/internal/workload"
)

func TestDeterminism(t *testing.T) {
	// Two runs of the same configuration must produce identical
	// statistics; the simulator has no hidden nondeterminism.
	k, _ := workload.ByName("cjpeg")
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	a := run(t, cfg, k.Build(1))
	b := run(t, cfg, k.Build(1))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	k, _ := workload.ByName("cjpeg")
	bad := config.Preset(4)
	bad.CommLatency = 0
	if _, err := New(bad, k.Build(1)); err == nil {
		t.Error("zero comm latency must be rejected")
	}
	bad2 := config.Preset(4)
	bad2.Clusters[0].FUs.IntMul = 99
	if _, err := New(bad2, k.Build(1)); err == nil {
		t.Error("mul units exceeding int units must be rejected")
	}
	bad3 := config.Preset(2)
	bad3.VPTableEntries = 1000
	bad3.VP = config.VPStride
	if _, err := New(bad3, k.Build(1)); err == nil {
		t.Error("non-power-of-two VP table must be rejected")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	k, _ := workload.ByName("gsmenc")
	cfg := config.Preset(4)
	cfg.MaxCycles = 100
	s, err := New(cfg, k.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("expected cycle-budget error, got %v", err)
	}
}

func TestRunawayProgramSurfacesError(t *testing.T) {
	if testing.Short() {
		t.Skip("2M-cycle spin loop in -short mode")
	}
	b := program.NewBuilder("spin")
	b.Label("x")
	b.I(isa.ADDI, isa.R1, isa.R1, 1)
	b.Jmp("x")
	b.Halt()
	cfg := config.Preset(1)
	cfg.MaxCycles = 2_000_000
	s, err := New(cfg, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("infinite program must surface an error, not hang")
	}
}

func TestBusSaturationStallsButCompletes(t *testing.T) {
	// Squeeze a communication-heavy kernel through one path per cluster
	// at high latency: bus stalls must appear, and not a single
	// instruction may be lost.
	k, _ := workload.ByName("gsmenc")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, config.Preset(4).WithComm(4, 1), k.Build(1))
	if r.Instructions != want {
		t.Errorf("committed %d, want %d", r.Instructions, want)
	}
	if r.BusStalls == 0 {
		t.Error("single-path latency-4 network should stall sometimes")
	}
}

func TestCopiesEqualTransfersWithoutVP(t *testing.T) {
	// Without value prediction every copy crosses a wire exactly once
	// unless it was reissued (each reissue re-reserves the bus).
	k, _ := workload.ByName("djpeg")
	r := run(t, config.Preset(4), k.Build(1))
	if r.Reissues != 0 {
		// No VP, no speculation on values: reissues must be zero.
		t.Errorf("reissues without VP = %d, want 0", r.Reissues)
	}
	if r.Copies != r.BusTransfers {
		t.Errorf("copies (%d) must equal bus transfers (%d) without VP", r.Copies, r.BusTransfers)
	}
	if r.VerifyCopies != 0 || r.PredictedOperandsUsed != 0 {
		t.Error("no VP must mean no verification-copies or predicted operands")
	}
}

func TestTransfersBoundedWithVP(t *testing.T) {
	// With prediction, transfers = copies + mispredicted verification
	// forwards (+ reissued copies); they can never exceed copies plus
	// verification-copies plus reissues.
	k, _ := workload.ByName("rawcaudio")
	r := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB), k.Build(1))
	if r.BusTransfers < r.Copies {
		t.Errorf("transfers (%d) below copies (%d)", r.BusTransfers, r.Copies)
	}
	if r.BusTransfers > r.Copies+r.VerifyCopies+r.Reissues {
		t.Errorf("transfers (%d) exceed copies+vcs+reissues (%d+%d+%d)",
			r.BusTransfers, r.Copies, r.VerifyCopies, r.Reissues)
	}
}

func TestAlternativeSteeringsComplete(t *testing.T) {
	k, _ := workload.ByName("epicdec")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []config.SteeringKind{
		config.SteerRoundRobin, config.SteerLoadOnly, config.SteerDepFIFO,
	} {
		r := run(t, config.Preset(4).WithSteering(kind).WithVP(config.VPStride), k.Build(1))
		if r.Instructions != want {
			t.Errorf("%v: committed %d, want %d", kind, r.Instructions, want)
		}
	}
}

func TestAlternativeSteeringsLoseToPaperScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config simulation in -short mode")
	}
	// The §5 comparison: communication-blind steering must generate far
	// more traffic than the paper's heuristic.
	k, _ := workload.ByName("gsmenc")
	base := run(t, config.Preset(4), k.Build(1))
	rr := run(t, config.Preset(4).WithSteering(config.SteerRoundRobin), k.Build(1))
	if rr.CommPerInstr() < base.CommPerInstr()*1.3 {
		t.Errorf("round robin comm %.3f should far exceed baseline %.3f",
			rr.CommPerInstr(), base.CommPerInstr())
	}
	if rr.IPC() > base.IPC() {
		t.Errorf("round robin (%.3f) should not beat the paper's steering (%.3f)", rr.IPC(), base.IPC())
	}
}

func TestTwoDeltaPredictorRuns(t *testing.T) {
	k, _ := workload.ByName("cjpeg")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, config.Preset(4).WithVP(config.VPTwoDelta).WithSteering(config.SteerVPB), k.Build(1))
	if r.Instructions != want {
		t.Errorf("committed %d, want %d", r.Instructions, want)
	}
	if r.VP.Lookups == 0 || r.PredictedOperandsUsed == 0 {
		t.Error("2-delta predictor never engaged")
	}
}

func TestTinyVPTableStillCorrect(t *testing.T) {
	k, _ := workload.ByName("g721enc")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB).WithVPTable(16), k.Build(1))
	if r.Instructions != want {
		t.Errorf("committed %d, want %d (16-entry table)", r.Instructions, want)
	}
}

func TestAllTopologiesCommitExactCount(t *testing.T) {
	// The topology changes timing only: under any fabric, at any
	// bandwidth, exactly the trace's instruction count must commit.
	k, _ := workload.ByName("djpeg")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []interconnect.Kind{
		interconnect.KindBus, interconnect.KindRing, interconnect.KindCrossbar, interconnect.KindMesh,
	} {
		for _, paths := range []int{0, 1} {
			cfg := config.Preset(4).WithComm(1, paths).WithTopology(topo).
				WithVP(config.VPStride).WithSteering(config.SteerVPB)
			r := run(t, cfg, k.Build(1))
			if r.Instructions != want {
				t.Errorf("%v paths=%d: committed %d, want %d", topo, paths, r.Instructions, want)
			}
			if r.Topology != topo.String() {
				t.Errorf("results topology = %q, want %q", r.Topology, topo)
			}
			if r.BusTransfers > 0 && r.MeanHops() < 1 {
				t.Errorf("%v: mean hops %.2f below 1 with %d transfers", topo, r.MeanHops(), r.BusTransfers)
			}
		}
	}
}

// Multi-hop fabrics at bounded bandwidth must slow a communication-bound
// kernel down relative to the single-hop bus, never speed it up beyond
// the unbounded-bus bound.
func TestRingSlowerThanUnboundedBus(t *testing.T) {
	k, _ := workload.ByName("gsmenc")
	unbounded := run(t, config.Preset(4), k.Build(1))
	ring := run(t, config.Preset(4).WithComm(1, 1).WithTopology(interconnect.KindRing), k.Build(1))
	if ring.Cycles < unbounded.Cycles {
		t.Errorf("bounded ring (%d cycles) cannot beat the unbounded bus (%d cycles)",
			ring.Cycles, unbounded.Cycles)
	}
	if ring.MeanHops() <= 1 {
		t.Errorf("4-cluster ring mean hops = %.2f, must exceed 1", ring.MeanHops())
	}
}

func TestAsymmetricMachinesCommitExactCount(t *testing.T) {
	// Heterogeneous machines change timing only: under any spec mix,
	// every steering scheme, with and without VP, exactly the trace's
	// instruction count must commit, and the per-cluster dispatch
	// breakdown must account for every instruction.
	k, _ := workload.ByName("cjpeg")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	specs := [][]config.ClusterSpec{
		{config.DefaultSpec(4, 16), config.DefaultSpec(2, 8), config.DefaultSpec(2, 8)},
		{config.DefaultSpec(8, 64), config.DefaultSpec(2, 8)},
		{
			func() config.ClusterSpec { s := config.DefaultSpec(2, 16); s.BypassLatency = 2; return s }(),
			func() config.ClusterSpec { s := config.DefaultSpec(2, 16); s.RegPorts = 2; return s }(),
			config.DefaultSpec(4, 16),
		},
	}
	for si, sp := range specs {
		for _, kind := range []config.SteeringKind{
			config.SteerBaseline, config.SteerVPB, config.SteerRoundRobin,
			config.SteerLoadOnly, config.SteerDepFIFO, config.SteerModified,
		} {
			cfg := config.FromSpecs(sp...).WithSteering(kind)
			if kind == config.SteerVPB || kind == config.SteerModified {
				cfg = cfg.WithVP(config.VPStride)
			}
			r := run(t, cfg, k.Build(1))
			if r.Instructions != want {
				t.Errorf("specs %d, %v: committed %d, want %d", si, kind, r.Instructions, want)
			}
			var dispatched uint64
			for _, pc := range r.PerCluster {
				dispatched += pc.Dispatched
			}
			if dispatched != want {
				t.Errorf("specs %d, %v: per-cluster dispatched sums to %d, want %d", si, kind, dispatched, want)
			}
		}
	}
}

func TestBypassLatencySlowsCluster(t *testing.T) {
	// A machine whose clusters all pay extra bypass cycles must be
	// slower than the identical machine with single-cycle bypass.
	k, _ := workload.ByName("gsmenc")
	fast := config.FromSpecs(config.DefaultSpec(2, 16), config.DefaultSpec(2, 16))
	slowSpec := config.DefaultSpec(2, 16)
	slowSpec.BypassLatency = 2
	slow := config.FromSpecs(slowSpec, slowSpec)
	rf := run(t, fast, k.Build(1))
	rs := run(t, slow, k.Build(1))
	if rs.Cycles <= rf.Cycles {
		t.Errorf("bypass latency 2 cannot be free: %d cycles vs %d", rs.Cycles, rf.Cycles)
	}
	if rs.Instructions != rf.Instructions {
		t.Errorf("bypass latency changed committed count: %d vs %d", rs.Instructions, rf.Instructions)
	}
}

func TestRegPortsGateIssue(t *testing.T) {
	// Capping a cluster's register ports below its issue width must
	// cost cycles on a wide machine, never instructions.
	k, _ := workload.ByName("cjpeg")
	open := config.FromSpecs(config.DefaultSpec(8, 64))
	capped8 := config.DefaultSpec(8, 64)
	capped8.RegPorts = 2
	capped := config.FromSpecs(capped8)
	ro := run(t, open, k.Build(1))
	rc := run(t, capped, k.Build(1))
	if rc.Cycles <= ro.Cycles {
		t.Errorf("2 register ports on an 8-wide cluster cannot be free: %d cycles vs %d", rc.Cycles, ro.Cycles)
	}
	if rc.Instructions != ro.Instructions {
		t.Errorf("register-port cap changed committed count: %d vs %d", rc.Instructions, ro.Instructions)
	}
}

func TestImbalanceMetricZeroOnOneCluster(t *testing.T) {
	k, _ := workload.ByName("cjpeg")
	r := run(t, config.Preset(1), k.Build(1))
	if r.Imbalance() != 0 {
		t.Errorf("centralized machine cannot be imbalanced, got %v", r.Imbalance())
	}
}

func TestRetireOrderExactCount(t *testing.T) {
	// Heavy misprediction pressure (tiny table + erratic values) across
	// 2 clusters with limited bandwidth: the reissue machinery must
	// neither lose nor duplicate instructions.
	k, _ := workload.ByName("pgpenc")
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Preset(2).WithVP(config.VPStride).WithSteering(config.SteerModified).WithComm(2, 1).WithVPTable(16)
	r := run(t, cfg, k.Build(1))
	if r.Instructions != want {
		t.Errorf("committed %d, want %d", r.Instructions, want)
	}
}

func TestPerfectCachesFasterThanReal(t *testing.T) {
	k, _ := workload.ByName("epicenc")
	real := run(t, config.Preset(1), k.Build(1))
	ideal := run(t, perfectCache(config.Preset(1)), k.Build(1))
	if ideal.IPC() < real.IPC() {
		t.Errorf("perfect caches (%.3f) cannot lose to real caches (%.3f)", ideal.IPC(), real.IPC())
	}
	if ideal.L1DMisses != 0 || ideal.L1IMisses != 0 {
		t.Error("perfect caches must record no misses")
	}
}

func TestHigherScaleSameIPCBallpark(t *testing.T) {
	// IPC must be a property of the kernel, not of its length: doubling
	// the workload scale should not move IPC more than a few percent.
	k, _ := workload.ByName("gsmdec")
	cfg := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	r1 := run(t, cfg, k.Build(1))
	r2 := run(t, cfg, k.Build(2))
	ratio := r2.IPC() / r1.IPC()
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("IPC drifted with scale: %.3f -> %.3f", r1.IPC(), r2.IPC())
	}
}

func TestFPCoverageExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("FP-heavy kernel simulation in -short mode")
	}
	// The paper's §3.3 remark: residual communication under perfect
	// prediction is FP values. Extending coverage to FP operands must
	// drive the residue toward zero on FP-heavy kernels.
	k, _ := workload.ByName("rasta")
	intOnly := run(t, config.Preset(4).WithVP(config.VPPerfect).WithSteering(config.SteerVPB), k.Build(1))
	cfg := config.Preset(4).WithVP(config.VPPerfect).WithSteering(config.SteerVPB)
	cfg.VPCoverFP = true
	withFP := run(t, cfg, k.Build(1))
	if withFP.CommPerInstr() >= intOnly.CommPerInstr() {
		t.Errorf("FP coverage should cut residual comm: %.4f -> %.4f",
			intOnly.CommPerInstr(), withFP.CommPerInstr())
	}
	if withFP.IPC() < intOnly.IPC() {
		t.Errorf("perfect FP coverage cannot lose IPC: %.3f -> %.3f", intOnly.IPC(), withFP.IPC())
	}
	// Stride-with-FP must still commit exactly the right count even
	// though FP bit patterns rarely stride-predict.
	e := trace.NewExecutor(k.Build(1))
	want, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := config.Preset(4).WithVP(config.VPStride).WithSteering(config.SteerVPB)
	cfg2.VPCoverFP = true
	r := run(t, cfg2, k.Build(1))
	if r.Instructions != want {
		t.Errorf("stride+fp committed %d, want %d", r.Instructions, want)
	}
}

// checkBitmapInvariants asserts the structural soundness of the bitmap
// scheduler state after a completed cycle: IQ valid-mask conservation,
// readiness implying eligibility, and chunk-pool conservation (every
// dep/event chunk is on exactly one chain — some entry's consumer list,
// some wheel slot, or the free list).
func checkBitmapInvariants(t *testing.T, s *Sim, now int64) {
	t.Helper()

	// Every cluster's valid mask has exactly iqCount[c] bits, and no
	// ring slot appears in two clusters' masks.
	var union [nWords]uint64
	for c := range s.iqW {
		pop := 0
		for w, word := range s.iqW[c] {
			pop += bits.OnesCount64(word)
			if over := word & union[w]; over != 0 {
				t.Fatalf("cycle %d: ring slots in two IQ masks (word %d: %#x)", now, w, over)
			}
			union[w] |= word
		}
		if pop != s.iqCount[c] {
			t.Fatalf("cycle %d: cluster %d IQ mask popcount %d != iqCount %d", now, c, pop, s.iqCount[c])
		}
	}

	// Valid-mask bits only mark live, still-waiting entries.
	for w, word := range union {
		for m := word; m != 0; m &= m - 1 {
			slot := int64(w*64 + bits.TrailingZeros64(m))
			e := &s.ring[slot]
			if e.st != stWaiting {
				t.Fatalf("cycle %d: IQ bit on slot %d in state %d", now, slot, e.st)
			}
			if e.seq < s.headSeq || e.seq >= s.nextSeq {
				t.Fatalf("cycle %d: IQ bit on slot %d outside live window (seq %d)", now, slot, e.seq)
			}
		}
	}

	// Ready bits are a subset of the valid masks, and every marked entry
	// really is issuable: waiting, live, all sources ready.
	for w, word := range s.readyW {
		if stray := word &^ union[w]; stray != 0 {
			t.Fatalf("cycle %d: ready bits outside IQ masks (word %d: %#x)", now, w, stray)
		}
		for m := word; m != 0; m &= m - 1 {
			slot := int64(w*64 + bits.TrailingZeros64(m))
			e := &s.ring[slot]
			if !e.allSrcReady(now) {
				t.Fatalf("cycle %d: ready bit on slot %d (seq %d) with unready sources", now, slot, e.seq)
			}
		}
	}

	// Dep-pool conservation: chains hanging off ring slots plus the free
	// list partition the pool exactly.
	seen := make(map[int32]bool, len(s.depPool))
	walk := func(head int32, what string) int {
		n := 0
		for c := head; c != noChunk; c = s.depPool[c].next {
			if seen[c] {
				t.Fatalf("cycle %d: dep chunk %d on two chains (%s)", now, c, what)
			}
			seen[c] = true
			n++
		}
		return n
	}
	total := walk(s.depFree, "free")
	for i := range s.ring {
		total += walk(s.ring[i].depHead, "entry")
	}
	if total != len(s.depPool) {
		t.Fatalf("cycle %d: dep pool leak: %d chunks reachable of %d", now, total, len(s.depPool))
	}

	// Event-pool conservation over the wheel slots and the free list.
	evSeen := make(map[int32]bool, len(s.evPool))
	evWalk := func(head int32, what string) int {
		n := 0
		for c := head; c != noChunk; c = s.evPool[c].next {
			if evSeen[c] {
				t.Fatalf("cycle %d: event chunk %d on two chains (%s)", now, c, what)
			}
			evSeen[c] = true
			n++
		}
		return n
	}
	evTotal := evWalk(s.evFree, "free")
	for sl := range s.wheelHead {
		evTotal += evWalk(s.wheelHead[sl], "wheel")
	}
	if evTotal != len(s.evPool) {
		t.Fatalf("cycle %d: event pool leak: %d chunks reachable of %d", now, evTotal, len(s.evPool))
	}
}

// TestReadyBitmapSoundness steps warm symmetric and asymmetric machines
// and audits the full bitmap-scheduler state at regular intervals. The
// differential oracle (oracle_test.go) pins end-to-end equivalence with
// the reference selector; this test pins the internal representation.
func TestReadyBitmapSoundness(t *testing.T) {
	steps := 6000
	if testing.Short() {
		steps = 1500
	}
	for _, tc := range []struct {
		name string
		sim  *Sim
	}{
		{"sym", steadySim(t, 50)},
		{"asym", steadySimCfg(t, asymCfg(), 50)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.sim
			cycle := int64(5000)
			for i := 0; i < steps; i++ {
				if s.drained() {
					t.Fatalf("drained at step %d", i)
				}
				s.step(cycle)
				if i%97 == 0 {
					checkBitmapInvariants(t, s, cycle)
				}
				cycle++
			}
			checkBitmapInvariants(t, s, cycle-1)
		})
	}
}
