// Package config defines the simulator configuration — the paper's
// Table 1 machine presets for the 1-, 2- and 4-cluster configurations,
// the steering (§3), value-predictor (§2.2) and interconnect-topology
// (§4.2) selectors, validation, and the With* builder methods the
// experiments compose sweeps from.
//
// The machine description is per-cluster: Config.Clusters is a slice of
// ClusterSpec, one entry per cluster, so clusters need not be identical.
// The paper's homogeneous machines are N copies of one spec; the
// heterogeneous extension (big/LITTLE-style width grading, FU
// specialization, per-cluster bypass depth) is expressed either with
// explicit specs or with the compact spec-string grammar understood by
// ParseClusterSpecs ("4w16q:2w8q:2w8q").
package config

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"clustervp/internal/interconnect"
)

// SteeringKind selects the instruction-steering heuristic (§3).
type SteeringKind int

const (
	// SteerBaseline is the generalized "Advanced RMBS" heuristic of §3.1,
	// with no awareness of value prediction.
	SteerBaseline SteeringKind = iota
	// SteerModified applies both §3.2 modifications unconditionally:
	// predicted operands count as available (M1) and as mapped in all
	// clusters (M2).
	SteerModified
	// SteerVPB is the paper's Value Prediction Based scheme (§3.3): M1
	// always, M2 only when workload imbalance exceeds VPBThreshold.
	SteerVPB
	// SteerRoundRobin distributes instructions cyclically with no
	// dependence awareness (a trace-processor-style baseline, §5).
	SteerRoundRobin
	// SteerLoadOnly always picks the least loaded cluster (pure
	// balancing, no communication awareness).
	SteerLoadOnly
	// SteerDepFIFO approximates the Dependence-based paradigm's FIFO
	// steering (§5): follow the first pending operand's producer, start
	// new slices round-robin.
	SteerDepFIFO
)

// String names the steering scheme.
func (s SteeringKind) String() string {
	switch s {
	case SteerBaseline:
		return "baseline"
	case SteerModified:
		return "modified"
	case SteerVPB:
		return "vpb"
	case SteerRoundRobin:
		return "roundrobin"
	case SteerLoadOnly:
		return "loadonly"
	case SteerDepFIFO:
		return "depfifo"
	}
	return fmt.Sprintf("steer?%d", int(s))
}

// VPKind selects the value predictor.
type VPKind int

const (
	// VPNone disables value prediction.
	VPNone VPKind = iota
	// VPStride is the paper's stride predictor (§2.2).
	VPStride
	// VPPerfect is the Figure 3 upper bound: every integer operand
	// predicted correctly.
	VPPerfect
	// VPTwoDelta is the 2-delta stride extension (the paper's "more
	// complex and effective predictors" remark).
	VPTwoDelta
)

// String names the predictor kind.
func (v VPKind) String() string {
	switch v {
	case VPNone:
		return "none"
	case VPStride:
		return "stride"
	case VPPerfect:
		return "perfect"
	case VPTwoDelta:
		return "twodelta"
	}
	return fmt.Sprintf("vp?%d", int(v))
}

// FUCount is the per-cluster functional-unit inventory. MulDiv-capable
// units are a subset of the integer units, and FPMulDiv-capable units a
// subset of the FP units, as in Table 1 ("8 int (4 include mul/div)").
type FUCount struct {
	IntALU   int // total integer units
	IntMul   int // of which mul/div capable
	FPALU    int // total FP units
	FPMulDiv int // of which FP mul/div capable
}

// ClusterSpec sizes one cluster: the unit every machine description is
// built from. Homogeneous machines repeat one spec N times; asymmetric
// machines mix specs.
type ClusterSpec struct {
	// IQSize is the instruction-queue length.
	IQSize int
	// PhysRegs is the physical register file size.
	PhysRegs int
	// IssueInt and IssueFP are the per-cluster issue widths.
	IssueInt int
	IssueFP  int
	// FUs is the functional-unit inventory.
	FUs FUCount
	// RegPorts bounds the total instructions issued per cycle in this
	// cluster (shared register-file read/write port pairs); 0 means
	// unbounded — the paper's model, where only the per-class issue
	// widths gate.
	RegPorts int
	// BypassLatency is the extra cycles before this cluster's
	// register-writing results (ALU ops and loads) become visible to
	// consumers — a deeper local bypass network; 0 is the paper's
	// single-cycle full bypass. Inter-cluster copies pay the network
	// latency instead.
	BypassLatency int
}

// Width is the cluster's total issue width (int + FP), the capacity
// weight the steering balancer normalizes DCOUNT by.
func (s ClusterSpec) Width() int { return s.IssueInt + s.IssueFP }

// DefaultSpec derives a cluster from its integer issue width and IQ
// size the way the spec-string parser does: IssueFP = width/2 (min 1),
// one integer unit per issue slot with half mul/div-capable, FP units
// matching the FP width with width/4 (min 1) FP mul/div units, and a
// register file sized 64+IQ (enough for the architectural spread plus a
// full queue of in-flight writers).
func DefaultSpec(width, iq int) ClusterSpec {
	half := width / 2
	if half < 1 {
		half = 1
	}
	quarter := width / 4
	if quarter < 1 {
		quarter = 1
	}
	return ClusterSpec{
		IQSize:   iq,
		PhysRegs: 64 + iq,
		IssueInt: width,
		IssueFP:  half,
		FUs:      FUCount{IntALU: width, IntMul: half, FPALU: half, FPMulDiv: quarter},
	}
}

// SpecString renders the spec in the ParseClusterSpecs grammar: the
// mandatory "<W>w<Q>q" core plus the optional suffixes that differ from
// the DefaultSpec derivation (f = FP width, r = physical registers,
// p = register ports, b = bypass latency). FU inventories beyond the
// derived defaults have no spec-string form and are not rendered —
// which is also why this is deliberately NOT a String method: fmt would
// adopt it and the grid fingerprint (a %+v of Config) would stop
// covering the FU fields.
func (s ClusterSpec) SpecString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dw%dq", s.IssueInt, s.IQSize)
	d := DefaultSpec(s.IssueInt, s.IQSize)
	if s.IssueFP != d.IssueFP {
		fmt.Fprintf(&sb, "f%d", s.IssueFP)
	}
	if s.PhysRegs != d.PhysRegs {
		fmt.Fprintf(&sb, "r%d", s.PhysRegs)
	}
	if s.RegPorts != 0 {
		fmt.Fprintf(&sb, "p%d", s.RegPorts)
	}
	if s.BypassLatency != 0 {
		fmt.Fprintf(&sb, "b%d", s.BypassLatency)
	}
	return sb.String()
}

// Validate checks one cluster spec. Every instruction class must be
// issuable in every cluster (at least one unit of each kind): steering
// is class-blind, so a cluster unable to execute, say, FP divides would
// deadlock the ROB the first time one is steered there.
func (s ClusterSpec) Validate() error {
	if s.IQSize < 1 || s.PhysRegs < 1 || s.IssueInt < 1 || s.IssueFP < 1 {
		return fmt.Errorf("cluster geometry must be positive (iq=%d regs=%d widths=%d/%d)",
			s.IQSize, s.PhysRegs, s.IssueInt, s.IssueFP)
	}
	if s.FUs.IntALU < 1 || s.FUs.IntMul < 1 || s.FUs.FPALU < 1 || s.FUs.FPMulDiv < 1 {
		return fmt.Errorf("every unit class needs at least one unit (steering is class-blind): %+v", s.FUs)
	}
	if s.FUs.IntMul > s.FUs.IntALU {
		return fmt.Errorf("mul/div units (%d) exceed int units (%d)", s.FUs.IntMul, s.FUs.IntALU)
	}
	if s.FUs.FPMulDiv > s.FUs.FPALU {
		return fmt.Errorf("FP mul/div units (%d) exceed FP units (%d)", s.FUs.FPMulDiv, s.FUs.FPALU)
	}
	if s.RegPorts < 0 || s.BypassLatency < 0 {
		return fmt.Errorf("register ports (%d) and bypass latency (%d) must be >= 0", s.RegPorts, s.BypassLatency)
	}
	return nil
}

// specSegment matches one spec-string segment:
// <W>w<Q>q [f<FP>] [r<Regs>] [p<Ports>] [b<Bypass>] [x<Repeat>].
var specSegment = regexp.MustCompile(
	`^(\d+)w(\d+)q(?:f(\d+))?(?:r(\d+))?(?:p(\d+))?(?:b(\d+))?(?:x(\d+))?$`)

// specGrammar documents the segment grammar in parse errors.
const specGrammar = "<W>w<Q>q[f<FP>][r<Regs>][p<Ports>][b<Bypass>][x<Repeat>]"

// ParseClusterSpecs parses a compact machine description: colon-
// separated cluster segments, each giving the integer issue width and
// IQ size with optional overrides, e.g.
//
//	4w16q:2w8q:2w8q    one 4-wide and two 2-wide clusters
//	2w16qr56x4         the 4-cluster Table 1 machine (56 registers)
//	8w64qf4:2w8qb1     an 8-wide leader plus a slow-bypass helper
//
// Everything not spelled out is derived by DefaultSpec.
func ParseClusterSpecs(s string) ([]ClusterSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("config: empty cluster spec (want %s segments separated by ':')", specGrammar)
	}
	var specs []ClusterSpec
	for _, seg := range strings.Split(s, ":") {
		m := specSegment.FindStringSubmatch(strings.TrimSpace(seg))
		if m == nil {
			return nil, fmt.Errorf("config: bad cluster spec segment %q (want %s)", seg, specGrammar)
		}
		// All numbers are bounded on both sides: widths/sizes above any
		// plausible machine are config typos, an unchecked repeat count
		// would let one CLI string drive an unbounded allocation loop
		// (strconv range errors must not be swallowed either), and f0/p0
		// would otherwise build a cluster that cannot issue FP at all or
		// silently mean "unbounded ports" — the opposite of the intent.
		var atoiErr error
		atoi := func(v string, lo, hi int) int {
			n, err := strconv.Atoi(v)
			if atoiErr == nil && (err != nil || n < lo || n > hi) {
				atoiErr = fmt.Errorf("config: spec segment %q: value %s out of range [%d, %d]", seg, v, lo, hi)
			}
			return n
		}
		spec := DefaultSpec(atoi(m[1], 1, 1024), atoi(m[2], 1, 1<<16))
		if m[3] != "" {
			spec.IssueFP = atoi(m[3], 1, 1024)
			spec.FUs.FPALU = spec.IssueFP
			if spec.FUs.FPMulDiv > spec.FUs.FPALU {
				spec.FUs.FPMulDiv = spec.FUs.FPALU
			}
		}
		if m[4] != "" {
			spec.PhysRegs = atoi(m[4], 1, 1<<20)
		}
		if m[5] != "" {
			spec.RegPorts = atoi(m[5], 1, 1024)
		}
		if m[6] != "" {
			spec.BypassLatency = atoi(m[6], 0, 1<<16)
		}
		repeat := 1
		if m[7] != "" {
			repeat = atoi(m[7], 1, MaxClusters)
		}
		if atoiErr != nil {
			return nil, atoiErr
		}
		if len(specs)+repeat > MaxClusters {
			return nil, fmt.Errorf("config: spec %q describes more than %d clusters", s, MaxClusters)
		}
		for i := 0; i < repeat; i++ {
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

// SpecsString renders specs in the ParseClusterSpecs grammar, collapsing
// consecutive identical clusters into an xN repeat.
func SpecsString(specs []ClusterSpec) string {
	var parts []string
	for i := 0; i < len(specs); {
		j := i
		for j < len(specs) && specs[j] == specs[i] {
			j++
		}
		seg := specs[i].SpecString()
		if n := j - i; n > 1 {
			seg += fmt.Sprintf("x%d", n)
		}
		parts = append(parts, seg)
		i = j
	}
	return strings.Join(parts, ":")
}

// Config is the full machine configuration.
type Config struct {
	Name string
	// Clusters describes each cluster; the machine has len(Clusters)
	// clusters. Treat the slice as immutable once the Config is built —
	// the With* builders copy it, direct element mutation aliases every
	// derived copy.
	Clusters []ClusterSpec

	FetchWidth  int
	DecodeWidth int
	RetireWidth int
	ROBSize     int
	// RenameCycles is the depth of the decode/rename/steer stage (1 by
	// default; §3.3 evaluates 2).
	RenameCycles int

	// CommLatency is the inter-cluster transfer latency in cycles (§4.1);
	// on multi-hop topologies it is the per-hop latency.
	CommLatency int
	// CommPaths is the per-cluster inter-cluster write-port/bus count
	// (§4.2), reused as the per-port or per-link width on the other
	// topologies; 0 means unbounded.
	CommPaths int
	// Topology selects the inter-cluster network model; the zero value is
	// the paper's N×B bus fabric (§2.1, §4.2), and ring, crossbar and
	// mesh are extensions beyond the paper.
	Topology interconnect.Kind

	// DCachePorts is the number of L1D read/write ports shared by all
	// clusters (Table 1: 3).
	DCachePorts int

	// VP selects the value predictor; VPTableEntries sizes the stride
	// table (§4.3). VPCoverFP extends prediction to FP operands (an
	// extension; the paper's predictor covers integers only, §3.3).
	VP             VPKind
	VPTableEntries int
	VPCoverFP      bool

	// Steering selects the heuristic; BalanceThreshold is the DCOUNT
	// threshold of rule 1 (32/16 for 4/2 clusters); VPBThreshold gates
	// the VPB M2 rule (16/8 for 4/2 clusters). On asymmetric machines
	// the DCOUNT counters are capacity-weighted (see internal/steer) but
	// keep the same scale as long as cluster widths share a common
	// factor.
	Steering         SteeringKind
	BalanceThreshold int
	VPBThreshold     int

	// PerfectCaches replaces the hierarchy with fixed 1-cycle accesses
	// (ablation only; the paper always simulates real caches).
	PerfectCaches bool

	// MaxCycles aborts runaway simulations; 0 means a large default.
	MaxCycles int64
}

// NumClusters is the machine's cluster count.
func (c Config) NumClusters() int { return len(c.Clusters) }

// Homogeneous reports whether every cluster has the same spec (the
// paper's machines; asymmetric machines return false).
func (c Config) Homogeneous() bool {
	for _, s := range c.Clusters[1:] {
		if s != c.Clusters[0] {
			return false
		}
	}
	return true
}

// IssueWeights returns each cluster's total issue width, the capacity
// weights the steering balancer normalizes DCOUNT by.
func (c Config) IssueWeights() []int {
	w := make([]int, len(c.Clusters))
	for i, s := range c.Clusters {
		w[i] = s.Width()
	}
	return w
}

// PhysRegsPerCluster returns each cluster's register-file size.
func (c Config) PhysRegsPerCluster() []int {
	r := make([]int, len(c.Clusters))
	for i, s := range c.Clusters {
		r[i] = s.PhysRegs
	}
	return r
}

// SpecString renders the machine's cluster specs in the
// ParseClusterSpecs grammar (repeats collapsed).
func (c Config) SpecString() string { return SpecsString(c.Clusters) }

// MaxClusters bounds the cluster count: steering and rename track
// cluster membership in uint32 bitmasks, so indexes >= 32 would be
// silently dropped from the masks rather than mis-simulated loudly.
const MaxClusters = 32

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	n := len(c.Clusters)
	if n < 1 {
		return fmt.Errorf("config %s: clusters must be >= 1", c.Name)
	}
	if n > MaxClusters {
		return fmt.Errorf("config %s: %d clusters exceed the supported maximum %d", c.Name, n, MaxClusters)
	}
	for i, cl := range c.Clusters {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("config %s: cluster %d: %w", c.Name, i, err)
		}
		// The rename scheme keeps at least one mapping per logical
		// register; the initial round-robin spread puts ceil(64/n)
		// registers in the low-index clusters and needs headroom on top.
		if perCluster := (64 + n - 1) / n; cl.PhysRegs < perCluster+8 {
			return fmt.Errorf("config %s: cluster %d: %d physical registers too few", c.Name, i, cl.PhysRegs)
		}
	}
	if c.FetchWidth < 1 || c.DecodeWidth < 1 || c.RetireWidth < 1 || c.ROBSize < 1 {
		return fmt.Errorf("config %s: pipeline widths must be positive", c.Name)
	}
	if c.RenameCycles < 1 {
		return fmt.Errorf("config %s: rename cycles must be >= 1", c.Name)
	}
	if err := c.Interconnect().Validate(); err != nil {
		return fmt.Errorf("config %s: %w", c.Name, err)
	}
	if c.DCachePorts < 1 {
		return fmt.Errorf("config %s: bad port counts", c.Name)
	}
	if (c.VP == VPStride || c.VP == VPTwoDelta) && (c.VPTableEntries <= 0 || c.VPTableEntries&(c.VPTableEntries-1) != 0) {
		return fmt.Errorf("config %s: VP table entries must be a power of two", c.Name)
	}
	return nil
}

// base is the Table 1 front end and knob defaults shared by every
// machine: presets and spec-built asymmetric configurations alike.
func base() Config {
	return Config{
		FetchWidth:     8,
		DecodeWidth:    8,
		RetireWidth:    8,
		ROBSize:        128,
		RenameCycles:   1,
		CommLatency:    1,
		CommPaths:      0,
		DCachePorts:    3,
		VP:             VPNone,
		VPTableEntries: 128 * 1024,
		Steering:       SteerBaseline,
	}
}

// repeatSpec builds n copies of one spec.
func repeatSpec(s ClusterSpec, n int) []ClusterSpec {
	specs := make([]ClusterSpec, n)
	for i := range specs {
		specs[i] = s
	}
	return specs
}

// Preset returns the paper's Table 1 configuration for 1, 2 or 4
// clusters — N copies of one ClusterSpec — with value prediction off,
// baseline steering, 1-cycle communication and unbounded bandwidth (the
// §3.1 starting point).
func Preset(clusters int) Config {
	c := base()
	switch clusters {
	case 1:
		c.Name = "1cluster"
		c.Clusters = repeatSpec(ClusterSpec{
			IQSize: 64, PhysRegs: 128, IssueInt: 8, IssueFP: 4,
			FUs: FUCount{IntALU: 8, IntMul: 4, FPALU: 4, FPMulDiv: 2},
		}, 1)
	case 2:
		c.Name = "2cluster"
		c.Clusters = repeatSpec(ClusterSpec{
			IQSize: 32, PhysRegs: 80, IssueInt: 4, IssueFP: 2,
			FUs: FUCount{IntALU: 4, IntMul: 2, FPALU: 2, FPMulDiv: 2},
		}, 2)
		c.BalanceThreshold = 16
		c.VPBThreshold = 8
	case 4:
		c.Name = "4cluster"
		c.Clusters = repeatSpec(ClusterSpec{
			IQSize: 16, PhysRegs: 56, IssueInt: 2, IssueFP: 1,
			FUs: FUCount{IntALU: 2, IntMul: 1, FPALU: 1, FPMulDiv: 1},
		}, 4)
		c.BalanceThreshold = 32
		c.VPBThreshold = 16
	default:
		panic(fmt.Sprintf("config: no Table 1 preset for %d clusters", clusters))
	}
	return c
}

// FromSpecs builds a machine from explicit cluster specs on the Table 1
// front end, with the steering thresholds scaled to the cluster count
// the way the paper scales them (8N balance, 4N VPB — matching the
// 32/16 and 16/8 values of the 4- and 2-cluster presets). The name is
// the spec string.
func FromSpecs(specs ...ClusterSpec) Config {
	return base().WithClusterSpecs(specs...)
}

// WithVP returns a copy with the given predictor enabled.
func (c Config) WithVP(kind VPKind) Config {
	c.VP = kind
	return c
}

// WithSteering returns a copy using the given steering scheme.
func (c Config) WithSteering(s SteeringKind) Config {
	c.Steering = s
	return c
}

// WithComm returns a copy with the given communication latency and
// per-cluster path count (0 = unbounded).
func (c Config) WithComm(latency, paths int) Config {
	c.CommLatency = latency
	c.CommPaths = paths
	return c
}

// WithTopology returns a copy using the given interconnect topology.
func (c Config) WithTopology(t interconnect.Kind) Config {
	c.Topology = t
	return c
}

// WithVPTable returns a copy with the given stride-table size.
func (c Config) WithVPTable(entries int) Config {
	c.VPTableEntries = entries
	return c
}

// WithClusterSpecs returns a copy whose clusters are exactly the given
// specs (cloned, so later mutation of the argument cannot alias the
// config). The steering thresholds are rescaled to 8N/4N and the name
// becomes the spec string; apply further With* builders on top.
func (c Config) WithClusterSpecs(specs ...ClusterSpec) Config {
	c.Clusters = append([]ClusterSpec(nil), specs...)
	n := len(specs)
	c.BalanceThreshold = 8 * n
	c.VPBThreshold = 4 * n
	c.Name = SpecsString(c.Clusters)
	return c
}

// WithAsymmetry returns a copy whose clusters are described by the
// compact spec string (see ParseClusterSpecs). It panics on a malformed
// spec, like Preset panics on an unknown cluster count; parse
// user-supplied strings with ParseClusterSpecs first.
func (c Config) WithAsymmetry(spec string) Config {
	specs, err := ParseClusterSpecs(spec)
	if err != nil {
		panic(err.Error())
	}
	return c.WithClusterSpecs(specs...)
}

// Interconnect derives the inter-cluster network configuration.
func (c Config) Interconnect() interconnect.Config {
	return interconnect.Config{
		Topology:        c.Topology,
		Clusters:        len(c.Clusters),
		PathsPerCluster: c.CommPaths,
		Latency:         c.CommLatency,
	}
}

// numSteerings/numVPs are sentinels for the parsers below; keep them in
// sync with the const blocks above.
const (
	numSteerings = int(SteerDepFIFO) + 1
	numVPs       = int(VPTwoDelta) + 1
)

// SteeringNames lists the selectable steering-scheme names.
func SteeringNames() []string {
	names := make([]string, numSteerings)
	for i := range names {
		names[i] = SteeringKind(i).String()
	}
	return names
}

// ParseSteering resolves a steering name (as printed by
// SteeringKind.String) to its kind; the error lists the valid names.
func ParseSteering(name string) (SteeringKind, error) {
	for i := 0; i < numSteerings; i++ {
		if SteeringKind(i).String() == name {
			return SteeringKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown steering %q (valid: %s)", name, strings.Join(SteeringNames(), ", "))
}

// VPNames lists the selectable value-predictor names.
func VPNames() []string {
	names := make([]string, numVPs)
	for i := range names {
		names[i] = VPKind(i).String()
	}
	return names
}

// ParseVP resolves a predictor name (as printed by VPKind.String) to its
// kind; the error lists the valid names.
func ParseVP(name string) (VPKind, error) {
	for i := 0; i < numVPs; i++ {
		if VPKind(i).String() == name {
			return VPKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown value predictor %q (valid: %s)", name, strings.Join(VPNames(), ", "))
}
