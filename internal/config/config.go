// Package config defines the simulator configuration — the paper's
// Table 1 machine presets for the 1-, 2- and 4-cluster configurations,
// the steering (§3), value-predictor (§2.2) and interconnect-topology
// (§4.2) selectors, validation, and the With* builder methods the
// experiments compose sweeps from.
package config

import (
	"fmt"
	"strings"

	"clustervp/internal/interconnect"
)

// SteeringKind selects the instruction-steering heuristic (§3).
type SteeringKind int

const (
	// SteerBaseline is the generalized "Advanced RMBS" heuristic of §3.1,
	// with no awareness of value prediction.
	SteerBaseline SteeringKind = iota
	// SteerModified applies both §3.2 modifications unconditionally:
	// predicted operands count as available (M1) and as mapped in all
	// clusters (M2).
	SteerModified
	// SteerVPB is the paper's Value Prediction Based scheme (§3.3): M1
	// always, M2 only when workload imbalance exceeds VPBThreshold.
	SteerVPB
	// SteerRoundRobin distributes instructions cyclically with no
	// dependence awareness (a trace-processor-style baseline, §5).
	SteerRoundRobin
	// SteerLoadOnly always picks the least loaded cluster (pure
	// balancing, no communication awareness).
	SteerLoadOnly
	// SteerDepFIFO approximates the Dependence-based paradigm's FIFO
	// steering (§5): follow the first pending operand's producer, start
	// new slices round-robin.
	SteerDepFIFO
)

// String names the steering scheme.
func (s SteeringKind) String() string {
	switch s {
	case SteerBaseline:
		return "baseline"
	case SteerModified:
		return "modified"
	case SteerVPB:
		return "vpb"
	case SteerRoundRobin:
		return "roundrobin"
	case SteerLoadOnly:
		return "loadonly"
	case SteerDepFIFO:
		return "depfifo"
	}
	return fmt.Sprintf("steer?%d", int(s))
}

// VPKind selects the value predictor.
type VPKind int

const (
	// VPNone disables value prediction.
	VPNone VPKind = iota
	// VPStride is the paper's stride predictor (§2.2).
	VPStride
	// VPPerfect is the Figure 3 upper bound: every integer operand
	// predicted correctly.
	VPPerfect
	// VPTwoDelta is the 2-delta stride extension (the paper's "more
	// complex and effective predictors" remark).
	VPTwoDelta
)

// String names the predictor kind.
func (v VPKind) String() string {
	switch v {
	case VPNone:
		return "none"
	case VPStride:
		return "stride"
	case VPPerfect:
		return "perfect"
	case VPTwoDelta:
		return "twodelta"
	}
	return fmt.Sprintf("vp?%d", int(v))
}

// FUCount is the per-cluster functional-unit inventory. MulDiv-capable
// units are a subset of the integer units, and FPMulDiv-capable units a
// subset of the FP units, as in Table 1 ("8 int (4 include mul/div)").
type FUCount struct {
	IntALU   int // total integer units
	IntMul   int // of which mul/div capable
	FPALU    int // total FP units
	FPMulDiv int // of which FP mul/div capable
}

// ClusterConfig sizes one cluster.
type ClusterConfig struct {
	// IQSize is the instruction-queue length.
	IQSize int
	// PhysRegs is the physical register file size.
	PhysRegs int
	// IssueInt and IssueFP are the per-cluster issue widths.
	IssueInt int
	IssueFP  int
	// FUs is the functional-unit inventory.
	FUs FUCount
}

// Config is the full machine configuration.
type Config struct {
	Name     string
	Clusters int
	Cluster  ClusterConfig

	FetchWidth  int
	DecodeWidth int
	RetireWidth int
	ROBSize     int
	// RenameCycles is the depth of the decode/rename/steer stage (1 by
	// default; §3.3 evaluates 2).
	RenameCycles int

	// CommLatency is the inter-cluster transfer latency in cycles (§4.1);
	// on multi-hop topologies it is the per-hop latency.
	CommLatency int
	// CommPaths is the per-cluster inter-cluster write-port/bus count
	// (§4.2), reused as the per-port or per-link width on the other
	// topologies; 0 means unbounded.
	CommPaths int
	// Topology selects the inter-cluster network model; the zero value is
	// the paper's N×B bus fabric (§2.1, §4.2), and ring, crossbar and
	// mesh are extensions beyond the paper.
	Topology interconnect.Kind

	// DCachePorts is the number of L1D read/write ports shared by all
	// clusters (Table 1: 3).
	DCachePorts int

	// VP selects the value predictor; VPTableEntries sizes the stride
	// table (§4.3). VPCoverFP extends prediction to FP operands (an
	// extension; the paper's predictor covers integers only, §3.3).
	VP             VPKind
	VPTableEntries int
	VPCoverFP      bool

	// Steering selects the heuristic; BalanceThreshold is the DCOUNT
	// threshold of rule 1 (32/16 for 4/2 clusters); VPBThreshold gates
	// the VPB M2 rule (16/8 for 4/2 clusters).
	Steering         SteeringKind
	BalanceThreshold int
	VPBThreshold     int

	// PerfectCaches replaces the hierarchy with fixed 1-cycle accesses
	// (ablation only; the paper always simulates real caches).
	PerfectCaches bool

	// MaxCycles aborts runaway simulations; 0 means a large default.
	MaxCycles int64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("config %s: clusters must be >= 1", c.Name)
	}
	cl := c.Cluster
	if cl.IQSize < 1 || cl.PhysRegs < 1 || cl.IssueInt < 1 {
		return fmt.Errorf("config %s: cluster geometry must be positive", c.Name)
	}
	if cl.FUs.IntMul > cl.FUs.IntALU {
		return fmt.Errorf("config %s: mul/div units (%d) exceed int units (%d)", c.Name, cl.FUs.IntMul, cl.FUs.IntALU)
	}
	if cl.FUs.FPMulDiv > cl.FUs.FPALU {
		return fmt.Errorf("config %s: FP mul/div units exceed FP units", c.Name)
	}
	if c.FetchWidth < 1 || c.DecodeWidth < 1 || c.RetireWidth < 1 || c.ROBSize < 1 {
		return fmt.Errorf("config %s: pipeline widths must be positive", c.Name)
	}
	if c.RenameCycles < 1 {
		return fmt.Errorf("config %s: rename cycles must be >= 1", c.Name)
	}
	if err := c.Interconnect().Validate(); err != nil {
		return fmt.Errorf("config %s: %w", c.Name, err)
	}
	if c.DCachePorts < 1 {
		return fmt.Errorf("config %s: bad port counts", c.Name)
	}
	if (c.VP == VPStride || c.VP == VPTwoDelta) && (c.VPTableEntries <= 0 || c.VPTableEntries&(c.VPTableEntries-1) != 0) {
		return fmt.Errorf("config %s: VP table entries must be a power of two", c.Name)
	}
	// The rename scheme keeps at least one mapping per logical register;
	// the initial round-robin spread needs enough physical registers.
	if perCluster := (64 + c.Clusters - 1) / c.Clusters; cl.PhysRegs < perCluster+8 {
		return fmt.Errorf("config %s: %d physical registers per cluster too few", c.Name, cl.PhysRegs)
	}
	return nil
}

// Preset returns the paper's Table 1 configuration for 1, 2 or 4
// clusters, with value prediction off, baseline steering, 1-cycle
// communication and unbounded bandwidth (the §3.1 starting point).
func Preset(clusters int) Config {
	c := Config{
		Clusters:       clusters,
		FetchWidth:     8,
		DecodeWidth:    8,
		RetireWidth:    8,
		ROBSize:        128,
		RenameCycles:   1,
		CommLatency:    1,
		CommPaths:      0,
		DCachePorts:    3,
		VP:             VPNone,
		VPTableEntries: 128 * 1024,
		Steering:       SteerBaseline,
	}
	switch clusters {
	case 1:
		c.Name = "1cluster"
		c.Cluster = ClusterConfig{
			IQSize: 64, PhysRegs: 128, IssueInt: 8, IssueFP: 4,
			FUs: FUCount{IntALU: 8, IntMul: 4, FPALU: 4, FPMulDiv: 2},
		}
	case 2:
		c.Name = "2cluster"
		c.Cluster = ClusterConfig{
			IQSize: 32, PhysRegs: 80, IssueInt: 4, IssueFP: 2,
			FUs: FUCount{IntALU: 4, IntMul: 2, FPALU: 2, FPMulDiv: 2},
		}
		c.BalanceThreshold = 16
		c.VPBThreshold = 8
	case 4:
		c.Name = "4cluster"
		c.Cluster = ClusterConfig{
			IQSize: 16, PhysRegs: 56, IssueInt: 2, IssueFP: 1,
			FUs: FUCount{IntALU: 2, IntMul: 1, FPALU: 1, FPMulDiv: 1},
		}
		c.BalanceThreshold = 32
		c.VPBThreshold = 16
	default:
		panic(fmt.Sprintf("config: no Table 1 preset for %d clusters", clusters))
	}
	return c
}

// WithVP returns a copy with the given predictor enabled.
func (c Config) WithVP(kind VPKind) Config {
	c.VP = kind
	return c
}

// WithSteering returns a copy using the given steering scheme.
func (c Config) WithSteering(s SteeringKind) Config {
	c.Steering = s
	return c
}

// WithComm returns a copy with the given communication latency and
// per-cluster path count (0 = unbounded).
func (c Config) WithComm(latency, paths int) Config {
	c.CommLatency = latency
	c.CommPaths = paths
	return c
}

// WithTopology returns a copy using the given interconnect topology.
func (c Config) WithTopology(t interconnect.Kind) Config {
	c.Topology = t
	return c
}

// WithVPTable returns a copy with the given stride-table size.
func (c Config) WithVPTable(entries int) Config {
	c.VPTableEntries = entries
	return c
}

// Interconnect derives the inter-cluster network configuration.
func (c Config) Interconnect() interconnect.Config {
	return interconnect.Config{
		Topology:        c.Topology,
		Clusters:        c.Clusters,
		PathsPerCluster: c.CommPaths,
		Latency:         c.CommLatency,
	}
}

// numSteerings/numVPs are sentinels for the parsers below; keep them in
// sync with the const blocks above.
const (
	numSteerings = int(SteerDepFIFO) + 1
	numVPs       = int(VPTwoDelta) + 1
)

// SteeringNames lists the selectable steering-scheme names.
func SteeringNames() []string {
	names := make([]string, numSteerings)
	for i := range names {
		names[i] = SteeringKind(i).String()
	}
	return names
}

// ParseSteering resolves a steering name (as printed by
// SteeringKind.String) to its kind; the error lists the valid names.
func ParseSteering(name string) (SteeringKind, error) {
	for i := 0; i < numSteerings; i++ {
		if SteeringKind(i).String() == name {
			return SteeringKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown steering %q (valid: %s)", name, strings.Join(SteeringNames(), ", "))
}

// VPNames lists the selectable value-predictor names.
func VPNames() []string {
	names := make([]string, numVPs)
	for i := range names {
		names[i] = VPKind(i).String()
	}
	return names
}

// ParseVP resolves a predictor name (as printed by VPKind.String) to its
// kind; the error lists the valid names.
func ParseVP(name string) (VPKind, error) {
	for i := 0; i < numVPs; i++ {
		if VPKind(i).String() == name {
			return VPKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown value predictor %q (valid: %s)", name, strings.Join(VPNames(), ", "))
}
