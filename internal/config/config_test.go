package config

import (
	"strings"
	"testing"

	"clustervp/internal/interconnect"
)

func TestTable1Presets(t *testing.T) {
	// The exact Table 1 numbers.
	cases := []struct {
		clusters                  int
		iq, regs, issInt, issFP   int
		intALU, intMul, fp, fpMul int
	}{
		{1, 64, 128, 8, 4, 8, 4, 4, 2},
		{2, 32, 80, 4, 2, 4, 2, 2, 2},
		{4, 16, 56, 2, 1, 2, 1, 1, 1},
	}
	for _, c := range cases {
		cfg := Preset(c.clusters)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%d clusters: %v", c.clusters, err)
		}
		if cfg.NumClusters() != c.clusters || !cfg.Homogeneous() {
			t.Fatalf("%dc: preset must be %d identical clusters, got %d (homogeneous=%v)",
				c.clusters, c.clusters, cfg.NumClusters(), cfg.Homogeneous())
		}
		cl := cfg.Clusters[0]
		if cl.IQSize != c.iq || cl.PhysRegs != c.regs {
			t.Errorf("%dc: IQ/regs = %d/%d, want %d/%d", c.clusters, cl.IQSize, cl.PhysRegs, c.iq, c.regs)
		}
		if cl.IssueInt != c.issInt || cl.IssueFP != c.issFP {
			t.Errorf("%dc: issue = %d/%d, want %d/%d", c.clusters, cl.IssueInt, cl.IssueFP, c.issInt, c.issFP)
		}
		if cl.FUs.IntALU != c.intALU || cl.FUs.IntMul != c.intMul || cl.FUs.FPALU != c.fp || cl.FUs.FPMulDiv != c.fpMul {
			t.Errorf("%dc: FUs = %+v", c.clusters, cl.FUs)
		}
		if cfg.ROBSize != 128 || cfg.FetchWidth != 8 || cfg.DecodeWidth != 8 || cfg.RetireWidth != 8 {
			t.Errorf("%dc: pipeline widths wrong: %+v", c.clusters, cfg)
		}
		if cfg.DCachePorts != 3 {
			t.Errorf("%dc: D-cache ports = %d, want 3", c.clusters, cfg.DCachePorts)
		}
	}
}

func TestPaperThresholds(t *testing.T) {
	// §3.1: DCOUNT=32/16 for rule 1 on 4/2 clusters; §3.3: VPB M2
	// thresholds 16/8.
	c4 := Preset(4)
	if c4.BalanceThreshold != 32 || c4.VPBThreshold != 16 {
		t.Errorf("4c thresholds = %d/%d, want 32/16", c4.BalanceThreshold, c4.VPBThreshold)
	}
	c2 := Preset(2)
	if c2.BalanceThreshold != 16 || c2.VPBThreshold != 8 {
		t.Errorf("2c thresholds = %d/%d, want 16/8", c2.BalanceThreshold, c2.VPBThreshold)
	}
}

func TestPresetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Preset(3) must panic: the paper has no 3-cluster machine")
		}
	}()
	Preset(3)
}

func TestWithersDoNotMutate(t *testing.T) {
	base := Preset(4)
	mod := base.WithVP(VPStride).WithSteering(SteerVPB).WithComm(4, 2).WithVPTable(1024)
	if base.VP != VPNone || base.Steering != SteerBaseline || base.CommLatency != 1 || base.VPTableEntries != 128*1024 {
		t.Error("With* must not mutate the receiver")
	}
	if mod.VP != VPStride || mod.Steering != SteerVPB || mod.CommLatency != 4 || mod.CommPaths != 2 || mod.VPTableEntries != 1024 {
		t.Error("With* must apply the change")
	}
}

func TestValidationCatchesBadConfigs(t *testing.T) {
	mk := func(f func(*Config)) Config {
		c := Preset(4)
		f(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.Clusters = nil }),
		mk(func(c *Config) { c.Clusters[0].IQSize = 0 }),
		mk(func(c *Config) { c.Clusters[0].FUs.IntMul = 3 }),
		mk(func(c *Config) { c.Clusters[0].FUs.FPMulDiv = 2 }),
		mk(func(c *Config) { c.Clusters[3].RegPorts = -1 }),
		mk(func(c *Config) { c.Clusters[3].BypassLatency = -2 }),
		mk(func(c *Config) { c.RetireWidth = 0 }),
		mk(func(c *Config) { c.RenameCycles = 0 }),
		mk(func(c *Config) { c.CommLatency = 0 }),
		mk(func(c *Config) { c.CommPaths = -1 }),
		mk(func(c *Config) { c.DCachePorts = 0 }),
		mk(func(c *Config) { c.VP = VPStride; c.VPTableEntries = 100 }),
		mk(func(c *Config) { c.Clusters[0].PhysRegs = 4 }),
		mk(func(c *Config) { c.Topology = interconnect.Kind(99) }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if SteerBaseline.String() != "baseline" || SteerVPB.String() != "vpb" || SteerModified.String() != "modified" {
		t.Error("steering names wrong")
	}
	if VPNone.String() != "none" || VPStride.String() != "stride" || VPPerfect.String() != "perfect" || VPTwoDelta.String() != "twodelta" {
		t.Error("VP names wrong")
	}
	if SteeringKind(99).String() == "" || VPKind(99).String() == "" {
		t.Error("unknown kinds must still render")
	}
}

func TestTopologyPlumbing(t *testing.T) {
	base := Preset(4)
	if base.Topology != interconnect.KindBus {
		t.Errorf("preset topology = %v, want the paper's bus", base.Topology)
	}
	mesh := base.WithTopology(interconnect.KindMesh)
	if base.Topology != interconnect.KindBus {
		t.Error("WithTopology must not mutate the receiver")
	}
	if mesh.Topology != interconnect.KindMesh {
		t.Error("WithTopology must apply the change")
	}
	if err := mesh.Validate(); err != nil {
		t.Errorf("4-cluster mesh must validate: %v", err)
	}
	// Mesh needs 4+ clusters; the 2-cluster preset must reject it.
	if err := Preset(2).WithTopology(interconnect.KindMesh).Validate(); err == nil {
		t.Error("2-cluster mesh must be rejected")
	}
	ic := Preset(2).WithComm(4, 2).WithTopology(interconnect.KindRing).Interconnect()
	want := interconnect.Config{Topology: interconnect.KindRing, Clusters: 2, PathsPerCluster: 2, Latency: 4}
	if ic != want {
		t.Errorf("Interconnect() = %+v, want %+v", ic, want)
	}
}

func TestParseClusterSpecs(t *testing.T) {
	specs, err := ParseClusterSpecs("4w16q:2w8q:2w8q")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if specs[0] != DefaultSpec(4, 16) || specs[1] != DefaultSpec(2, 8) || specs[2] != specs[1] {
		t.Errorf("specs = %+v", specs)
	}

	// Overrides and repeat counts.
	specs, err = ParseClusterSpecs("8w64qf4r128p6b1:2w8qx3")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("parsed %d specs, want 4", len(specs))
	}
	big := specs[0]
	if big.IssueInt != 8 || big.IQSize != 64 || big.IssueFP != 4 || big.PhysRegs != 128 ||
		big.RegPorts != 6 || big.BypassLatency != 1 {
		t.Errorf("override spec = %+v", big)
	}
	for i := 1; i < 4; i++ {
		if specs[i] != DefaultSpec(2, 8) {
			t.Errorf("repeat %d = %+v", i, specs[i])
		}
	}

	for _, bad := range []string{
		"", "4w", "w16q", "4w16q:", "zebra", "4w16qx0", "4w16q;2w8q",
		// Bounded: repeat counts past MaxClusters (or overflowing Atoi),
		// cluster totals past MaxClusters, absurd widths.
		"2w8qx33", "2w8qx4294967295", "2w8qx99999999999999999999",
		"2w8qx16:2w8qx17", "9999w8q", "2w8qf0", "2w8qp0", "0w8q",
	} {
		if _, err := ParseClusterSpecs(bad); err == nil {
			t.Errorf("ParseClusterSpecs(%q) must fail", bad)
		}
	}
	// MaxClusters itself is fine and validates.
	specs32, err := ParseClusterSpecs("2w8qx32")
	if err != nil {
		t.Fatalf("32 clusters must parse: %v", err)
	}
	if err := FromSpecs(specs32...).Validate(); err != nil {
		t.Errorf("32-cluster machine must validate: %v", err)
	}
	if err := FromSpecs(repeatSpec(DefaultSpec(2, 8), 33)...).Validate(); err == nil {
		t.Error("33-cluster machine must be rejected (uint32 steering masks)")
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	// Canonical strings reproduce themselves literally…
	for _, s := range []string{"4w16q:2w8qx2", "2w16qr56x4", "8w64qf3r100p6b1"} {
		specs, err := ParseClusterSpecs(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got := SpecsString(specs); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	// …and non-canonical ones (default-valued suffixes, expanded
	// repeats) re-parse to the same machine.
	for _, s := range []string{"8w64qf4r128p6b1", "2w8q:2w8q"} {
		specs, err := ParseClusterSpecs(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		again, err := ParseClusterSpecs(SpecsString(specs))
		if err != nil || len(again) != len(specs) {
			t.Fatalf("canonical form of %q does not re-parse: %v", s, err)
		}
		for i := range specs {
			if specs[i] != again[i] {
				t.Errorf("%q: canonicalization changed cluster %d: %+v -> %+v", s, i, specs[i], again[i])
			}
		}
	}
	// The 4-cluster preset renders as a parsable spec string and
	// round-trips to the same machine shape.
	p4 := Preset(4)
	specs, err := ParseClusterSpecs(p4.SpecString())
	if err != nil {
		t.Fatalf("preset spec string %q does not parse: %v", p4.SpecString(), err)
	}
	if len(specs) != 4 || specs[0].IssueInt != 2 || specs[0].IQSize != 16 || specs[0].PhysRegs != 56 {
		t.Errorf("preset spec string %q parsed to %+v", p4.SpecString(), specs)
	}
}

func TestFromSpecsAndBuilders(t *testing.T) {
	cfg := FromSpecs(DefaultSpec(4, 16), DefaultSpec(2, 8), DefaultSpec(2, 8))
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumClusters() != 3 || cfg.Homogeneous() {
		t.Errorf("asymmetric machine: n=%d homogeneous=%v", cfg.NumClusters(), cfg.Homogeneous())
	}
	if cfg.BalanceThreshold != 24 || cfg.VPBThreshold != 12 {
		t.Errorf("thresholds = %d/%d, want 8N/4N = 24/12", cfg.BalanceThreshold, cfg.VPBThreshold)
	}
	if cfg.Name != "4w16q:2w8qx2" {
		t.Errorf("name = %q", cfg.Name)
	}
	if w := cfg.IssueWeights(); len(w) != 3 || w[0] != 6 || w[1] != 3 || w[2] != 3 {
		t.Errorf("issue weights = %v", w)
	}

	// WithAsymmetry builds the same machine from the spec string.
	viaString := Preset(4).WithAsymmetry("4w16q:2w8q:2w8q")
	if viaString.NumClusters() != 3 || viaString.Clusters[0] != cfg.Clusters[0] {
		t.Errorf("WithAsymmetry = %+v", viaString.Clusters)
	}
	// The front end (fetch/retire widths, caches, VP table) rides along.
	if viaString.FetchWidth != 8 || viaString.DCachePorts != 3 {
		t.Error("WithAsymmetry must keep the base front end")
	}

	// WithClusterSpecs clones: mutating the argument afterwards must not
	// alias the config.
	arg := []ClusterSpec{DefaultSpec(2, 8), DefaultSpec(2, 8)}
	c2 := Preset(2).WithClusterSpecs(arg...)
	arg[0].IQSize = 99
	if c2.Clusters[0].IQSize == 99 {
		t.Error("WithClusterSpecs must copy the specs")
	}
}

func TestWithAsymmetryPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithAsymmetry on a malformed spec must panic")
		}
	}()
	Preset(4).WithAsymmetry("not-a-spec")
}

func TestParsersRoundTrip(t *testing.T) {
	for _, name := range SteeringNames() {
		k, err := ParseSteering(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseSteering(%q) = %v, %v", name, k, err)
		}
	}
	for _, name := range VPNames() {
		k, err := ParseVP(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseVP(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseSteering("nope"); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("ParseSteering error must list valid names, got %v", err)
	}
	if _, err := ParseVP("nope"); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Errorf("ParseVP error must list valid names, got %v", err)
	}
}
