package config

import (
	"strings"
	"testing"

	"clustervp/internal/interconnect"
)

func TestTable1Presets(t *testing.T) {
	// The exact Table 1 numbers.
	cases := []struct {
		clusters                  int
		iq, regs, issInt, issFP   int
		intALU, intMul, fp, fpMul int
	}{
		{1, 64, 128, 8, 4, 8, 4, 4, 2},
		{2, 32, 80, 4, 2, 4, 2, 2, 2},
		{4, 16, 56, 2, 1, 2, 1, 1, 1},
	}
	for _, c := range cases {
		cfg := Preset(c.clusters)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%d clusters: %v", c.clusters, err)
		}
		cl := cfg.Cluster
		if cl.IQSize != c.iq || cl.PhysRegs != c.regs {
			t.Errorf("%dc: IQ/regs = %d/%d, want %d/%d", c.clusters, cl.IQSize, cl.PhysRegs, c.iq, c.regs)
		}
		if cl.IssueInt != c.issInt || cl.IssueFP != c.issFP {
			t.Errorf("%dc: issue = %d/%d, want %d/%d", c.clusters, cl.IssueInt, cl.IssueFP, c.issInt, c.issFP)
		}
		if cl.FUs.IntALU != c.intALU || cl.FUs.IntMul != c.intMul || cl.FUs.FPALU != c.fp || cl.FUs.FPMulDiv != c.fpMul {
			t.Errorf("%dc: FUs = %+v", c.clusters, cl.FUs)
		}
		if cfg.ROBSize != 128 || cfg.FetchWidth != 8 || cfg.DecodeWidth != 8 || cfg.RetireWidth != 8 {
			t.Errorf("%dc: pipeline widths wrong: %+v", c.clusters, cfg)
		}
		if cfg.DCachePorts != 3 {
			t.Errorf("%dc: D-cache ports = %d, want 3", c.clusters, cfg.DCachePorts)
		}
	}
}

func TestPaperThresholds(t *testing.T) {
	// §3.1: DCOUNT=32/16 for rule 1 on 4/2 clusters; §3.3: VPB M2
	// thresholds 16/8.
	c4 := Preset(4)
	if c4.BalanceThreshold != 32 || c4.VPBThreshold != 16 {
		t.Errorf("4c thresholds = %d/%d, want 32/16", c4.BalanceThreshold, c4.VPBThreshold)
	}
	c2 := Preset(2)
	if c2.BalanceThreshold != 16 || c2.VPBThreshold != 8 {
		t.Errorf("2c thresholds = %d/%d, want 16/8", c2.BalanceThreshold, c2.VPBThreshold)
	}
}

func TestPresetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Preset(3) must panic: the paper has no 3-cluster machine")
		}
	}()
	Preset(3)
}

func TestWithersDoNotMutate(t *testing.T) {
	base := Preset(4)
	mod := base.WithVP(VPStride).WithSteering(SteerVPB).WithComm(4, 2).WithVPTable(1024)
	if base.VP != VPNone || base.Steering != SteerBaseline || base.CommLatency != 1 || base.VPTableEntries != 128*1024 {
		t.Error("With* must not mutate the receiver")
	}
	if mod.VP != VPStride || mod.Steering != SteerVPB || mod.CommLatency != 4 || mod.CommPaths != 2 || mod.VPTableEntries != 1024 {
		t.Error("With* must apply the change")
	}
}

func TestValidationCatchesBadConfigs(t *testing.T) {
	mk := func(f func(*Config)) Config {
		c := Preset(4)
		f(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.Clusters = 0 }),
		mk(func(c *Config) { c.Cluster.IQSize = 0 }),
		mk(func(c *Config) { c.Cluster.FUs.IntMul = 3 }),
		mk(func(c *Config) { c.Cluster.FUs.FPMulDiv = 2 }),
		mk(func(c *Config) { c.RetireWidth = 0 }),
		mk(func(c *Config) { c.RenameCycles = 0 }),
		mk(func(c *Config) { c.CommLatency = 0 }),
		mk(func(c *Config) { c.CommPaths = -1 }),
		mk(func(c *Config) { c.DCachePorts = 0 }),
		mk(func(c *Config) { c.VP = VPStride; c.VPTableEntries = 100 }),
		mk(func(c *Config) { c.Cluster.PhysRegs = 4 }),
		mk(func(c *Config) { c.Topology = interconnect.Kind(99) }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if SteerBaseline.String() != "baseline" || SteerVPB.String() != "vpb" || SteerModified.String() != "modified" {
		t.Error("steering names wrong")
	}
	if VPNone.String() != "none" || VPStride.String() != "stride" || VPPerfect.String() != "perfect" || VPTwoDelta.String() != "twodelta" {
		t.Error("VP names wrong")
	}
	if SteeringKind(99).String() == "" || VPKind(99).String() == "" {
		t.Error("unknown kinds must still render")
	}
}

func TestTopologyPlumbing(t *testing.T) {
	base := Preset(4)
	if base.Topology != interconnect.KindBus {
		t.Errorf("preset topology = %v, want the paper's bus", base.Topology)
	}
	mesh := base.WithTopology(interconnect.KindMesh)
	if base.Topology != interconnect.KindBus {
		t.Error("WithTopology must not mutate the receiver")
	}
	if mesh.Topology != interconnect.KindMesh {
		t.Error("WithTopology must apply the change")
	}
	if err := mesh.Validate(); err != nil {
		t.Errorf("4-cluster mesh must validate: %v", err)
	}
	// Mesh needs 4+ clusters; the 2-cluster preset must reject it.
	if err := Preset(2).WithTopology(interconnect.KindMesh).Validate(); err == nil {
		t.Error("2-cluster mesh must be rejected")
	}
	ic := Preset(2).WithComm(4, 2).WithTopology(interconnect.KindRing).Interconnect()
	want := interconnect.Config{Topology: interconnect.KindRing, Clusters: 2, PathsPerCluster: 2, Latency: 4}
	if ic != want {
		t.Errorf("Interconnect() = %+v, want %+v", ic, want)
	}
}

func TestParsersRoundTrip(t *testing.T) {
	for _, name := range SteeringNames() {
		k, err := ParseSteering(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseSteering(%q) = %v, %v", name, k, err)
		}
	}
	for _, name := range VPNames() {
		k, err := ParseVP(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseVP(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseSteering("nope"); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("ParseSteering error must list valid names, got %v", err)
	}
	if _, err := ParseVP("nope"); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Errorf("ParseVP error must list valid names, got %v", err)
	}
}
