package config

// The wire-format machine description: MachineSpec is the JSON schema
// the clusterd service accepts in job submissions, and ParseMachine is
// the single resolver for "cluster description strings" (Table 1
// preset counts or ParseClusterSpecs grammar) shared by clustersim's
// -clusters flag and the service. Both the CLI's local mode and its
// -remote mode build their Config through MachineSpec.Build, so a run
// submitted over HTTP is constructed exactly like the local one — the
// foundation of the bit-identical local/remote results guarantee.

import (
	"fmt"
	"strings"

	"clustervp/internal/interconnect"
)

// ParseMachine resolves a cluster description: "1", "2" or "4" select
// the paper's Table 1 presets, anything else is parsed as a cluster
// spec string building an arbitrary (possibly asymmetric) machine.
func ParseMachine(clusters string) (Config, error) {
	switch strings.TrimSpace(clusters) {
	case "1":
		return Preset(1), nil
	case "2":
		return Preset(2), nil
	case "4":
		return Preset(4), nil
	}
	specs, err := ParseClusterSpecs(clusters)
	if err != nil {
		return Config{}, err
	}
	return FromSpecs(specs...), nil
}

// MachineSpec is the JSON machine description of the simulation
// service: every field mirrors one clustersim flag, enums ride as
// their string names, and a zero value means "keep the preset
// default", so an empty spec is the paper's 4-cluster machine. It
// deliberately carries no FU-level detail beyond the spec-string
// grammar — jobs describe machines the way users do on the command
// line.
type MachineSpec struct {
	// Clusters is "1", "2", "4" (Table 1 presets) or a cluster spec
	// string like "4w16q:2w8q:2w8q"; empty means "4".
	Clusters string `json:"clusters,omitempty"`
	// VP, Steering and Topology are enum names as printed by the
	// corresponding String methods ("stride", "vpb", "mesh", ...).
	VP       string `json:"vp,omitempty"`
	Steering string `json:"steering,omitempty"`
	Topology string `json:"topology,omitempty"`
	// CommLatency and CommPaths configure the interconnect (§4); 0
	// keeps the defaults (1 cycle, unbounded paths).
	CommLatency int `json:"comm_latency,omitempty"`
	CommPaths   int `json:"comm_paths,omitempty"`
	// VPTableEntries sizes the value-prediction table (0 = 128K).
	VPTableEntries int `json:"vp_table_entries,omitempty"`
	// RenameCycles is the rename/steer stage depth (0 = 1).
	RenameCycles int `json:"rename_cycles,omitempty"`
	// MaxCycles aborts runaway simulations (0 = the default budget).
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// Build resolves the spec into a validated Config. Errors name the
// offending field the way the CLI errors name flags.
func (m MachineSpec) Build() (Config, error) {
	// Zero means "keep the default", so negative knobs can never mean
	// anything: reject them here — Config.Validate does not see
	// MaxCycles, and a job admitted with a negative budget could only
	// ever fail at simulation time.
	if m.CommLatency < 0 || m.CommPaths < 0 || m.VPTableEntries < 0 ||
		m.RenameCycles < 0 || m.MaxCycles < 0 {
		return Config{}, fmt.Errorf("config: machine knobs must be >= 0 "+
			"(comm_latency=%d comm_paths=%d vp_table_entries=%d rename_cycles=%d max_cycles=%d)",
			m.CommLatency, m.CommPaths, m.VPTableEntries, m.RenameCycles, m.MaxCycles)
	}
	clusters := m.Clusters
	if strings.TrimSpace(clusters) == "" {
		clusters = "4"
	}
	cfg, err := ParseMachine(clusters)
	if err != nil {
		return Config{}, fmt.Errorf("clusters: %w", err)
	}
	if m.VP != "" {
		kind, err := ParseVP(strings.ToLower(m.VP))
		if err != nil {
			return Config{}, fmt.Errorf("vp: %w", err)
		}
		cfg = cfg.WithVP(kind)
	}
	if m.Steering != "" {
		kind, err := ParseSteering(strings.ToLower(m.Steering))
		if err != nil {
			return Config{}, fmt.Errorf("steering: %w", err)
		}
		cfg = cfg.WithSteering(kind)
	}
	if m.Topology != "" {
		kind, err := interconnect.ParseKind(strings.ToLower(m.Topology))
		if err != nil {
			return Config{}, fmt.Errorf("topology: %w", err)
		}
		cfg = cfg.WithTopology(kind)
	}
	if m.CommLatency != 0 {
		cfg.CommLatency = m.CommLatency
	}
	if m.CommPaths != 0 {
		cfg.CommPaths = m.CommPaths
	}
	if m.VPTableEntries != 0 {
		cfg.VPTableEntries = m.VPTableEntries
	}
	if m.RenameCycles != 0 {
		cfg.RenameCycles = m.RenameCycles
	}
	if m.MaxCycles != 0 {
		cfg.MaxCycles = m.MaxCycles
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
