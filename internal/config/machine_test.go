package config

// MachineSpec/ParseMachine tests: the JSON machine schema must build
// exactly the same Config the CLI flag path builds, field for field —
// the local/remote bit-identical guarantee starts here.

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"clustervp/internal/interconnect"
)

func TestParseMachinePresets(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		got, err := ParseMachine(strings.TrimSpace(string(rune('0' + n))))
		if err != nil {
			t.Fatalf("ParseMachine(%d): %v", n, err)
		}
		if !reflect.DeepEqual(got, Preset(n)) {
			t.Errorf("ParseMachine(%d) != Preset(%d)", n, n)
		}
	}
	if _, err := ParseMachine("3"); err == nil {
		t.Error("ParseMachine(3) accepted a non-preset count as a spec string")
	}
	got, err := ParseMachine("4w16q:2w8qx2")
	if err != nil {
		t.Fatal(err)
	}
	specs, _ := ParseClusterSpecs("4w16q:2w8qx2")
	if !reflect.DeepEqual(got, FromSpecs(specs...)) {
		t.Error("ParseMachine(spec string) != FromSpecs(ParseClusterSpecs(...))")
	}
}

func TestMachineSpecDefaultsToPreset4(t *testing.T) {
	cfg, err := MachineSpec{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, Preset(4)) {
		t.Errorf("empty MachineSpec built %+v, want Preset(4)", cfg)
	}
}

// TestMachineSpecMatchesBuilderChain: a fully-populated spec must equal
// the equivalent With* builder chain, which is what clustersim used to
// construct inline.
func TestMachineSpecMatchesBuilderChain(t *testing.T) {
	spec := MachineSpec{
		Clusters:       "2",
		VP:             "stride",
		Steering:       "vpb",
		Topology:       "ring",
		CommLatency:    2,
		CommPaths:      1,
		VPTableEntries: 4096,
		RenameCycles:   2,
		MaxCycles:      1 << 20,
	}
	got, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := interconnect.ParseKind("ring")
	if err != nil {
		t.Fatal(err)
	}
	want := Preset(2).
		WithComm(2, 1).
		WithVPTable(4096).
		WithVP(VPStride).
		WithSteering(SteerVPB).
		WithTopology(topo)
	want.RenameCycles = 2
	want.MaxCycles = 1 << 20
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Build mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestMachineSpecJSONRoundTrip: the schema survives JSON and omits the
// zero-valued knobs so wire payloads stay minimal.
func TestMachineSpecJSONRoundTrip(t *testing.T) {
	in := MachineSpec{Clusters: "4w16q:2w8qx2", VP: "stride", Steering: "vpb"}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"comm_latency", "max_cycles", "topology", "rename_cycles"} {
		if strings.Contains(string(data), absent) {
			t.Errorf("zero-valued field %q serialized: %s", absent, data)
		}
	}
	var out MachineSpec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip mutated the spec: %+v -> %+v", in, out)
	}
	a, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := out.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("round-tripped spec built a different Config")
	}
}

// TestMachineSpecErrorsNameTheField pins the error attribution the
// service surfaces to HTTP clients.
func TestMachineSpecErrorsNameTheField(t *testing.T) {
	cases := []struct {
		spec MachineSpec
		want string
	}{
		{MachineSpec{Clusters: "zebra"}, "clusters:"},
		{MachineSpec{VP: "psychic"}, "vp:"},
		{MachineSpec{Steering: "sideways"}, "steering:"},
		{MachineSpec{Topology: "donut"}, "topology:"},
		{MachineSpec{VPTableEntries: 3, VP: "stride"}, "power of two"},
		// Negative knobs can never mean anything (zero already means
		// "default") and must be rejected at Build time — a job admitted
		// with max_cycles -1 could only ever fail at simulation time.
		{MachineSpec{MaxCycles: -1}, ">= 0"},
		{MachineSpec{CommLatency: -1}, ">= 0"},
		{MachineSpec{CommPaths: -2}, ">= 0"},
		{MachineSpec{RenameCycles: -1}, ">= 0"},
		{MachineSpec{VPTableEntries: -8}, ">= 0"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Build()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Build(%+v) error = %v, want mention of %q", tc.spec, err, tc.want)
		}
	}
}
