package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDerivedMetrics(t *testing.T) {
	r := Results{
		Cycles:       1000,
		Instructions: 2500,
		BusTransfers: 250,
		NReadySum:    500,
		BranchSeen:   100,
		BranchHit:    95,
	}
	if got := r.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := r.CommPerInstr(); got != 0.1 {
		t.Errorf("CommPerInstr = %v, want 0.1", got)
	}
	if got := r.Imbalance(); got != 0.5 {
		t.Errorf("Imbalance = %v, want 0.5", got)
	}
	if got := r.BranchAccuracy(); got != 0.95 {
		t.Errorf("BranchAccuracy = %v, want 0.95", got)
	}
}

func TestZeroSafeMetrics(t *testing.T) {
	var r Results
	if r.IPC() != 0 || r.CommPerInstr() != 0 || r.Imbalance() != 0 {
		t.Error("zero results must yield zero ratios")
	}
	if r.BranchAccuracy() != 1 {
		t.Error("no branches means accuracy 1")
	}
	if IPCR(r, r) != 0 {
		t.Error("IPCR with zero centralized IPC must be 0")
	}
}

func TestIPCR(t *testing.T) {
	clustered := Results{Cycles: 100, Instructions: 300}
	central := Results{Cycles: 100, Instructions: 400}
	if got := IPCR(clustered, central); got != 0.75 {
		t.Errorf("IPCR = %v, want 0.75", got)
	}
}

func TestAggregateSumsCounters(t *testing.T) {
	a := Results{Cycles: 100, Instructions: 200, Copies: 10, BusTransfers: 5, Reissues: 1, NReadySum: 50}
	b := Results{Cycles: 300, Instructions: 200, Copies: 30, BusTransfers: 15, Reissues: 2, NReadySum: 150}
	agg := Aggregate("suite", []Results{a, b})
	if agg.Cycles != 400 || agg.Instructions != 400 {
		t.Errorf("aggregate cycles/instrs = %d/%d", agg.Cycles, agg.Instructions)
	}
	if agg.IPC() != 1.0 {
		t.Errorf("aggregate IPC = %v, want 1.0 (400/400)", agg.IPC())
	}
	if agg.Copies != 40 || agg.BusTransfers != 20 || agg.Reissues != 3 || agg.NReadySum != 200 {
		t.Error("event counters must sum")
	}
	if agg.Config != "suite" || agg.Benchmark != "suite" {
		t.Error("aggregate labels wrong")
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := Aggregate("x", nil)
	if agg.IPC() != 0 {
		t.Error("empty aggregate must be zero")
	}
}

func TestResultsString(t *testing.T) {
	r := Results{Config: "4cluster", Benchmark: "cjpeg", Cycles: 10, Instructions: 20}
	s := r.String()
	for _, want := range []string{"4cluster", "cjpeg", "IPC=2.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"name", "value"}}
	tb.Add("abc", "1.0")
	tb.Add("a-very-long-label", "2.25")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("table lines = %d: %q", len(lines), s)
	}
	if lines[0] != "T" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if lines[3][idx-2:idx] != "  " && !strings.Contains(lines[3], "1.0") {
		t.Errorf("row misaligned: %q", lines[3])
	}
}

// Property: Aggregate's totals equal the sum of parts for arbitrary
// inputs.
func TestAggregateAdditivityProperty(t *testing.T) {
	f := func(cycles []uint16, instrs []uint16) bool {
		n := len(cycles)
		if len(instrs) < n {
			n = len(instrs)
		}
		var rs []Results
		var wantCyc int64
		var wantIns uint64
		for i := 0; i < n; i++ {
			r := Results{Cycles: int64(cycles[i]), Instructions: uint64(instrs[i])}
			wantCyc += r.Cycles
			wantIns += r.Instructions
			rs = append(rs, r)
		}
		agg := Aggregate("p", rs)
		return agg.Cycles == wantCyc && agg.Instructions == wantIns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Per-cluster breakdowns aggregate by position when every run has the
// same machine shape, and drop to nil when shapes mix.
func TestAggregatePerCluster(t *testing.T) {
	mk := func(d0, d1 uint64) Results {
		return Results{
			Cycles: 10, Instructions: d0 + d1,
			PerCluster: []ClusterStats{
				{Spec: "4w16q", Dispatched: d0, Issued: d0 + 1, CopiesOut: 2, IQOccSum: 30},
				{Spec: "2w8q", Dispatched: d1, Issued: d1, CopiesOut: 1, IQOccSum: 10},
			},
		}
	}
	agg := Aggregate("a", []Results{mk(6, 3), mk(4, 2)})
	if len(agg.PerCluster) != 2 {
		t.Fatalf("aggregate dropped the breakdown: %+v", agg.PerCluster)
	}
	if agg.PerCluster[0].Dispatched != 10 || agg.PerCluster[1].Dispatched != 5 ||
		agg.PerCluster[0].IQOccSum != 60 || agg.PerCluster[1].CopiesOut != 2 {
		t.Errorf("per-cluster sums wrong: %+v", agg.PerCluster)
	}
	if agg.PerCluster[0].Spec != "4w16q" {
		t.Errorf("spec label lost: %+v", agg.PerCluster[0])
	}
	shares := agg.DispatchShares()
	if len(shares) != 2 || shares[0] < 0.66 || shares[0] > 0.67 {
		t.Errorf("dispatch shares = %v", shares)
	}

	other := Results{PerCluster: []ClusterStats{{Spec: "8w64q", Dispatched: 1}}}
	mixed := Aggregate("m", []Results{mk(1, 1), other})
	if mixed.PerCluster != nil {
		t.Errorf("mixed shapes must drop the breakdown, got %+v", mixed.PerCluster)
	}
}
