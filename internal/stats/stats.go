// Package stats defines the measurement record the timing simulator
// produces and the derived metrics the paper reports: IPC, the normalized
// IPCR ratio (§2.4), communications per instruction (Figure 3b), the
// NREADY workload-imbalance figure (§2.3.2, Figure 3a) and value/branch
// predictor accounting (Figure 5b).
package stats

import (
	"fmt"
	"strings"

	"clustervp/internal/interconnect"
	"clustervp/internal/vpred"
)

// ClusterStats is the per-cluster breakdown of one run: how steering
// distributed instructions, how much each cluster actually issued, and
// how full its instruction queue ran. On heterogeneous machines these
// columns are how asymmetry is read — equal Dispatched counts on
// unequal clusters mean the steering ignored capacity.
type ClusterStats struct {
	// Spec is the cluster's shape in the config spec-string grammar
	// (e.g. "4w16q").
	Spec string `json:"spec"`
	// Dispatched counts program instructions steered to this cluster.
	Dispatched uint64 `json:"dispatched"`
	// Issued counts every issue in this cluster, copies included.
	Issued uint64 `json:"issued"`
	// CopiesOut counts copy and verification-copy instructions inserted
	// into this cluster's queue to export its values.
	CopiesOut uint64 `json:"copies_out"`
	// IQOccSum accumulates the cluster's instruction-queue occupancy
	// each cycle; divide by Cycles for the mean.
	IQOccSum uint64 `json:"iq_occ_sum"`
}

// MeanIQOcc is the mean instruction-queue occupancy over a run of the
// given length.
func (c ClusterStats) MeanIQOcc(cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(c.IQOccSum) / float64(cycles)
}

// Results holds all counters from one simulation run.
type Results struct {
	Config    string
	Benchmark string

	// Cycles is the total simulated cycles; Instructions the committed
	// program instructions (copies excluded).
	Cycles       int64
	Instructions uint64

	// Copies is the number of plain copy instructions dispatched;
	// VerifyCopies the number of verification-copy instructions
	// dispatched; BusTransfers the values actually sent over
	// inter-cluster wires (copies + mispredicted verification forwards).
	Copies       uint64
	VerifyCopies uint64
	BusTransfers uint64
	// BusStalls counts issue attempts blocked on interconnect bandwidth.
	BusStalls uint64
	// Topology names the interconnect model the run used ("bus", "ring",
	// "crossbar", "mesh"); aggregates over mixed topologies report
	// "mixed".
	Topology string
	// HopHistogram[h] counts inter-cluster transfers whose route crossed
	// h links; the paper's bus fabric is always single-hop.
	HopHistogram []uint64

	// Reissues counts selective-reissue events (value misspeculation
	// recovery, §2.2).
	Reissues uint64
	// PredictedOperandsUsed counts source operands dispatched with a
	// confident predicted value; PredictedOperandsWrong the subset that
	// later failed verification.
	PredictedOperandsUsed  uint64
	PredictedOperandsWrong uint64

	// NReadySum accumulates the per-cycle NREADY imbalance figure; the
	// reported imbalance is NReadySum/Cycles.
	NReadySum uint64

	// Branch predictor accounting.
	BranchSeen, BranchHit uint64

	// Value predictor accounting (Figure 5b).
	VP vpred.Stats

	// Cache accounting.
	L1IMisses, L1DMisses, L2Misses uint64

	// DispatchStallROB/IQ/Regs count cycles dispatch stopped for each
	// resource (diagnostics).
	DispatchStallROB, DispatchStallIQ, DispatchStallRegs uint64

	// PerCluster breaks dispatch/issue/occupancy down by cluster (one
	// entry per cluster, in cluster order). Aggregates over runs with
	// differing cluster shapes drop the breakdown (nil).
	PerCluster []ClusterStats
}

// DispatchShares returns each cluster's fraction of the steered program
// instructions (empty when the breakdown is unavailable).
func (r Results) DispatchShares() []float64 {
	var total uint64
	for _, c := range r.PerCluster {
		total += c.Dispatched
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(r.PerCluster))
	for i, c := range r.PerCluster {
		out[i] = float64(c.Dispatched) / float64(total)
	}
	return out
}

// IPC is committed instructions per cycle.
func (r Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CommPerInstr is inter-cluster value transfers per committed
// instruction (Figure 3b).
func (r Results) CommPerInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.BusTransfers) / float64(r.Instructions)
}

// Imbalance is the average NREADY figure per cycle (Figure 3a).
func (r Results) Imbalance() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.NReadySum) / float64(r.Cycles)
}

// MeanHops is the average links crossed per inter-cluster transfer
// (1 by construction on bus and crossbar fabrics).
func (r Results) MeanHops() float64 {
	return interconnect.Stats{Transfers: r.BusTransfers, Hops: r.HopHistogram}.MeanHops()
}

// BranchAccuracy is the control-flow prediction hit rate.
func (r Results) BranchAccuracy() float64 {
	if r.BranchSeen == 0 {
		return 1
	}
	return float64(r.BranchHit) / float64(r.BranchSeen)
}

// Derived bundles the metrics the paper reports, computed from the raw
// counters, in a serialization-friendly form for the grid exporter.
type Derived struct {
	IPC                 float64 `json:"ipc"`
	CommPerInstr        float64 `json:"comm_per_instr"`
	Imbalance           float64 `json:"imbalance"`
	MeanHops            float64 `json:"mean_hops"`
	BranchAccuracy      float64 `json:"branch_accuracy"`
	VPHitRatio          float64 `json:"vp_hit_ratio"`
	VPConfidentFraction float64 `json:"vp_confident_fraction"`
}

// Derived computes the reported metrics for this record.
func (r Results) Derived() Derived {
	return Derived{
		IPC:                 r.IPC(),
		CommPerInstr:        r.CommPerInstr(),
		Imbalance:           r.Imbalance(),
		MeanHops:            r.MeanHops(),
		BranchAccuracy:      r.BranchAccuracy(),
		VPHitRatio:          r.VP.HitRatio(),
		VPConfidentFraction: r.VP.ConfidentFraction(),
	}
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f cycles=%d instrs=%d comm/instr=%.4f imbalance=%.3f reissues=%d",
		r.Config, r.Benchmark, r.IPC(), r.Cycles, r.Instructions, r.CommPerInstr(), r.Imbalance(), r.Reissues)
}

// IPCR is the normalized N-cluster IPC ratio of §2.4: IPC of the
// clustered configuration over IPC of the centralized one. Its maximum
// meaningful value is 1.
func IPCR(clustered, centralized Results) float64 {
	c := centralized.IPC()
	if c == 0 {
		return 0
	}
	return clustered.IPC() / c
}

// Aggregate combines per-benchmark results into a suite-level record:
// cycles and instruction counts are summed (so IPC becomes the
// instruction-weighted harmonic-style suite IPC the paper plots as
// "average"), and the event counters are summed.
func Aggregate(name string, rs []Results) Results {
	agg := Results{Config: name, Benchmark: "suite"}
	mixedClusters := false
	for i, r := range rs {
		switch {
		case i == 0:
			agg.Topology = r.Topology
		case agg.Topology != r.Topology:
			agg.Topology = "mixed"
		}
		// Per-cluster breakdowns sum across benchmarks of one machine
		// shape; mixing shapes has no meaningful per-cluster view.
		switch {
		case mixedClusters:
		case i == 0:
			agg.PerCluster = append([]ClusterStats(nil), r.PerCluster...)
		case !sameShape(agg.PerCluster, r.PerCluster):
			agg.PerCluster = nil
			mixedClusters = true
		default:
			for c := range agg.PerCluster {
				agg.PerCluster[c].Dispatched += r.PerCluster[c].Dispatched
				agg.PerCluster[c].Issued += r.PerCluster[c].Issued
				agg.PerCluster[c].CopiesOut += r.PerCluster[c].CopiesOut
				agg.PerCluster[c].IQOccSum += r.PerCluster[c].IQOccSum
			}
		}
		for h, n := range r.HopHistogram {
			for len(agg.HopHistogram) <= h {
				agg.HopHistogram = append(agg.HopHistogram, 0)
			}
			agg.HopHistogram[h] += n
		}
		agg.Cycles += r.Cycles
		agg.Instructions += r.Instructions
		agg.Copies += r.Copies
		agg.VerifyCopies += r.VerifyCopies
		agg.BusTransfers += r.BusTransfers
		agg.BusStalls += r.BusStalls
		agg.Reissues += r.Reissues
		agg.PredictedOperandsUsed += r.PredictedOperandsUsed
		agg.PredictedOperandsWrong += r.PredictedOperandsWrong
		agg.NReadySum += r.NReadySum
		agg.BranchSeen += r.BranchSeen
		agg.BranchHit += r.BranchHit
		agg.VP.Lookups += r.VP.Lookups
		agg.VP.Confident += r.VP.Confident
		agg.VP.ConfidentCorrect += r.VP.ConfidentCorrect
		agg.L1IMisses += r.L1IMisses
		agg.L1DMisses += r.L1DMisses
		agg.L2Misses += r.L2Misses
		agg.DispatchStallROB += r.DispatchStallROB
		agg.DispatchStallIQ += r.DispatchStallIQ
		agg.DispatchStallRegs += r.DispatchStallRegs
	}
	return agg
}

// sameShape reports whether two per-cluster breakdowns describe the
// same machine shape (same length, same specs per position).
func sameShape(a, b []ClusterStats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Spec != b[i].Spec {
			return false
		}
	}
	return true
}

// Table formats rows of (label, values...) with a header into an aligned
// text table, used by cmd/experiments to print the paper's figures.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}
