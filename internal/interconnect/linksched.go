package interconnect

// linkSched tracks per-cycle launch reservations on a set of links (or
// ports). Because every topology here is fully pipelined, the only
// contended resource is the launch slot of each link in each cycle; the
// scheduler keeps, per link, how many launches have been booked for each
// cycle in a sliding ring-buffer window keyed by cycle, which makes both
// queries and bookings O(1) under a monotonically advancing core clock.
//
// A capacity of 0 means unbounded bandwidth: nothing is allocated and
// every query succeeds.
type linkSched struct {
	cap    int
	window int64
	// booked[link] maps cycle -> launches booked that cycle.
	booked [][]int
	base   []int64
}

const defaultWindow = 1024

func newLinkSched(links, capacity int) *linkSched {
	l := &linkSched{cap: capacity, window: defaultWindow}
	if capacity > 0 {
		l.booked = make([][]int, links)
		l.base = make([]int64, links)
		for i := range l.booked {
			l.booked[i] = make([]int, defaultWindow)
		}
	}
	return l
}

func (l *linkSched) unbounded() bool { return l.cap <= 0 }

func (l *linkSched) slot(link int, cycle int64) *int {
	// Advance the ring window if the cycle moved past it.
	for cycle >= l.base[link]+l.window {
		idx := l.base[link] % l.window
		l.booked[link][idx] = 0
		l.base[link]++
	}
	if cycle < l.base[link] {
		// Reservation in the already-expired past: treat as a fresh slot.
		// This cannot happen with a monotonically advancing core clock.
		return nil
	}
	return &l.booked[link][cycle%l.window]
}

// free reports whether the link has a launch slot left at cycle.
func (l *linkSched) free(link int, cycle int64) bool {
	if l.unbounded() {
		return true
	}
	s := l.slot(link, cycle)
	return s == nil || *s < l.cap
}

// book consumes one launch slot on the link at cycle.
func (l *linkSched) book(link int, cycle int64) {
	if l.unbounded() {
		return
	}
	if s := l.slot(link, cycle); s != nil {
		*s++
	}
}

// reset clears all bookings.
func (l *linkSched) reset() {
	for i := range l.booked {
		for j := range l.booked[i] {
			l.booked[i][j] = 0
		}
		l.base[i] = 0
	}
}
