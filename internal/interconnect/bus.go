package interconnect

// Bus is the paper's network (§2.1, §4.2): N×B independent
// fully-pipelined buses, where each bus can be driven by any cluster and
// terminates in one dedicated write port on a single destination
// cluster's register file. The source cluster is therefore irrelevant to
// arbitration — only the B launch slots per destination per cycle are
// contended — and every transfer is a single hop arriving Latency cycles
// after launch.
type Bus struct {
	cfg Config
	// ports books launch slots per destination write-port group.
	ports *linkSched
	stats Stats
}

var _ Topology = (*Bus)(nil)

// NewBus builds the paper's bus fabric; it panics on invalid
// configuration.
func NewBus(cfg Config) *Bus {
	cfg.Topology = KindBus
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{cfg: cfg, ports: newLinkSched(cfg.Clusters, cfg.PathsPerCluster)}
}

// Kind identifies the topology.
func (b *Bus) Kind() Kind { return KindBus }

// Config returns the network configuration.
func (b *Bus) Config() Config { return b.cfg }

// CanReserve reports whether a transfer toward cluster dst may launch at
// the given cycle; src does not matter on this fabric.
func (b *Bus) CanReserve(src, dst int, cycle int64) bool {
	return b.ports.free(dst, cycle)
}

// Reserve books a launch slot toward dst at cycle and returns the
// arrival cycle. ok is false when every bus toward dst is busy that
// cycle.
func (b *Bus) Reserve(src, dst int, cycle int64) (arrival int64, ok bool) {
	if !b.ports.free(dst, cycle) {
		b.stats.Stalls++
		return 0, false
	}
	b.ports.book(dst, cycle)
	b.stats.record(1)
	return cycle + int64(b.cfg.Latency), true
}

// Stats returns the accumulated measurements.
func (b *Bus) Stats() Stats { return b.stats }

// Reset clears reservations and statistics.
func (b *Bus) Reset() {
	b.ports.reset()
	b.stats = Stats{}
}
